(** Content-addressed cache keys for analysis results.

    A key is the MD5 digest of a canonical serialization of {e exactly the
    inputs that determine the cached result} — nothing more, nothing less:

    - the function's compiled form (blocks, instructions, terminators,
      source lines — renames and literal edits change it; formatting of
      the MC source does not, since the key hashes compiled code);
    - the cost-model identity (machine id, i-cache and optional d-cache
      configuration) and the per-block cost bounds the objective will
      use. Costs capture
      every cross-function influence on the local ILP — code layout,
      line-split refetch penalties from transitively reachable callees —
      so a change elsewhere in the program invalidates this function
      exactly when it changes what this function's solve would see;
    - the loop-bound annotations that apply to the function;
    - the per-entry [wcet, bcet] intervals of its direct callees, in call
      order: a callee edit whose interval is unchanged leaves every
      caller's key (and cached entry) valid.

    Two requests that agree on all of the above share the key and the
    cached per-function result, whatever else differs between them. *)

val schema : int
(** Bumped whenever the serialization or the cached value layout changes;
    part of every key, so stale cache dirs miss instead of mis-hit. *)

val func_key :
  mach:string ->
  cache:Ipet_machine.Icache.config ->
  dcache:Ipet_machine.Icache.config option ->
  costs:Ipet_machine.Cost.bounds array ->
  annotations:Ipet.Annotation.t list ->
  callees:(string * int * int) list ->
  Ipet_isa.Prog.func ->
  string
(** Hex digest for one function's per-entry analysis unit. [mach] is the
    machine id ({!Ipet_machine.Machine.id}) — two machines never share a
    cache entry even when their timings happen to agree. [annotations]
    may be the request's full list — only those naming the function are
    hashed. [callees] are [(name, wcet_per_entry, bcet_per_entry)] for the
    function's direct callees in call-site order. *)

val program_key :
  mach:string ->
  cache:Ipet_machine.Icache.config ->
  dcache:Ipet_machine.Icache.config option ->
  root:string ->
  annotations:Ipet.Annotation.t list ->
  functional:Ipet.Functional.t list ->
  Ipet_isa.Prog.t ->
  string
(** Hex digest for a whole-program (monolithic) analysis unit — the
    fallback granularity used when functionality constraints couple
    functions and a per-function decomposition would be unsound. *)

val func_bytes :
  mach:string ->
  cache:Ipet_machine.Icache.config ->
  dcache:Ipet_machine.Icache.config option ->
  costs:Ipet_machine.Cost.bounds array ->
  annotations:Ipet.Annotation.t list ->
  callees:(string * int * int) list ->
  Ipet_isa.Prog.func ->
  string
(** The canonical serialization {!func_key} digests — exposed so tests can
    assert that distinct serializations were never observed to collide. *)
