module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout
module Callgraph = Ipet_cfg.Callgraph
module Cost = Ipet_machine.Cost
module Machine = Ipet_machine.Machine
module L = Ipet_lp.Linexpr
module Lp = Ipet_lp.Lp_problem
module Ilp = Ipet_lp.Ilp
module Simplex = Ipet_lp.Simplex
module Rat = Ipet_num.Rat
module A = Ipet.Analysis
module Obs = Ipet_obs.Obs
module Cert = Ipet_cert.Certificate
module Checker = Ipet_cert.Checker
module Certify = Ipet_cert.Certify

exception Timeout

type stats = {
  units_total : int;
  units_cached : int;
  units_solved : int;
  ilp_solves : int;
  warm_lp_hits : int;
  simplex_pivots : int;
  certs_checked : int;
  certs_rejected : int;
}

type counter = {
  mutable cached : int;
  mutable solved : int;
  mutable solves : int;
  mutable warm : int;
  mutable pivots : int;
  mutable cert_checks : int;
  mutable cert_rejects : int;
}

let fail fmt = Printf.ksprintf (fun m -> raise (A.Analysis_error m)) fmt

let check_deadline = function
  | Some t when Unix.gettimeofday () > t -> raise Timeout
  | Some _ | None -> ()

(* one per-function extreme: per-entry cycles, per-entry witness block
   counts (zero counts omitted), origins of the binding constraints, and
   the serialized duality certificate proving the cycles *)
type extreme_pe = {
  cycles_pe : int;
  counts_pe : (int * int) list;
  binding_pe : string list;
  cert_pe : string;
}

type unit_result = { key : string; wcet : extreme_pe; bcet : extreme_pe }

(* --- JSON (de)serialization of cached unit results ----------------------- *)

let extreme_to_json e =
  Json.Obj
    [ ("cycles", Json.Int e.cycles_pe);
      ( "counts",
        Json.List
          (List.map
             (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
             e.counts_pe) );
      ("binding", Json.List (List.map (fun o -> Json.Str o) e.binding_pe));
      ("cert", Json.Str e.cert_pe) ]

let extreme_of_json j =
  match
    ( Option.bind (Json.member "cycles" j) Json.to_int,
      Option.bind (Json.member "counts" j) Json.to_list,
      Option.bind (Json.member "binding" j) Json.to_list,
      Option.bind (Json.member "cert" j) Json.to_str )
  with
  | Some cycles_pe, Some counts, Some binding, Some cert_pe ->
    let count = function
      | Json.List [ Json.Int b; Json.Int c ] -> Some (b, c)
      | _ -> None
    in
    let origin = function Json.Str s -> Some s | _ -> None in
    let counts_pe = List.filter_map count counts in
    let binding_pe = List.filter_map origin binding in
    if List.length counts_pe = List.length counts
       && List.length binding_pe = List.length binding
    then Some { cycles_pe; counts_pe; binding_pe; cert_pe }
    else None
  | _ -> None

let unit_to_json u =
  Json.Obj
    [ ("schema", Json.Int Key.schema);
      ("wcet", extreme_to_json u.wcet);
      ("bcet", extreme_to_json u.bcet) ]

let unit_of_json key j =
  match
    ( Option.bind (Json.member "schema" j) Json.to_int,
      Option.bind (Json.member "wcet" j) extreme_of_json,
      Option.bind (Json.member "bcet" j) extreme_of_json )
  with
  | Some s, Some wcet, Some bcet when s = Key.schema -> Some { key; wcet; bcet }
  | _ -> None

(* --- certificate validation ----------------------------------------------- *)

(* a fresh solve must come with a checkable proof before it is cached or
   reported; a cached entry must still carry one that checks against the
   problem this request would solve — either way the trusted checker, not
   the solver, has the last word on every bound the daemon hands out *)
let checked_cert ~counter ~what problem cert =
  counter.cert_checks <- counter.cert_checks + 1;
  Obs.add "serve.cert.checked" 1;
  match Checker.check problem cert with
  | Checker.Valid _ -> ()
  | Checker.Invalid reasons ->
    counter.cert_rejects <- counter.cert_rejects + 1;
    Obs.add "serve.cert.rejected" 1;
    fail "%s certificate rejected by the checker: %s" what
      (String.concat "; " reasons)

(* validation of a cached extreme: parse the stored certificate, require it
   to certify exactly the cached cycle count, and check it against the
   problem rebuilt for this request. Failure is not fatal — the entry is
   dropped and re-solved *)
let cached_extreme_valid ~counter problem (e : extreme_pe) =
  counter.cert_checks <- counter.cert_checks + 1;
  Obs.add "serve.cert.checked" 1;
  let ok =
    match Cert.of_string e.cert_pe with
    | Error _ -> false
    | Ok cert ->
      Rat.equal cert.Cert.bound (Rat.of_int e.cycles_pe)
      && (match Checker.check problem cert with
          | Checker.Valid _ -> true
          | Checker.Invalid _ -> false)
  in
  if not ok then begin
    counter.cert_rejects <- counter.cert_rejects + 1;
    Obs.add "serve.cert.rejected" 1
  end;
  ok

(* --- one per-function solve ---------------------------------------------- *)

let solve_unit ~pool ~counter ~deadline (spec : A.spec) problem (func : P.func)
    =
  check_deadline deadline;
  counter.solves <- counter.solves + 1;
  Obs.add "serve.ilp.solves" 1;
  match Ilp.solve ~presolve:spec.A.presolve ?pool problem with
  | Ilp.Optimal { value; assignment; stats } ->
    counter.warm <- counter.warm + stats.Ilp.warm_hits;
    counter.pivots <- counter.pivots + stats.Ilp.pivots;
    let env = Simplex.assignment_env assignment in
    let counts_pe =
      Array.to_list func.P.blocks
      |> List.filter_map (fun (b : P.block) ->
        let v =
          L.eval env
            (Ipet.Flowvar.var
               (Ipet.Flowvar.Block
                  { ctx = Ipet.Flowvar.root_ctx;
                    func = func.P.name;
                    block = b.P.id }))
        in
        let c = Rat.to_int v in
        if c = 0 then None else Some (b.P.id, c))
    in
    let binding_pe =
      List.filter_map
        (fun (c : Lp.constr) ->
          match c.Lp.rel with
          | Lp.Eq -> None
          | Lp.Le | Lp.Ge ->
            if c.Lp.origin <> "" && Rat.is_zero (L.eval env c.Lp.expr) then
              Some c.Lp.origin
            else None)
        problem.Lp.constraints
    in
    let cert =
      match Certify.certify problem ~witness:assignment ~bound:value with
      | Ok c -> c
      | Error m ->
        fail "%s certificate production failed: %s" func.P.name m
    in
    checked_cert ~counter ~what:func.P.name problem cert;
    { cycles_pe = Rat.to_int value;
      counts_pe;
      binding_pe;
      cert_pe = Cert.to_string cert }
  | Ilp.Infeasible _ -> fail "per-entry ILP for %s is infeasible" func.P.name
  | Ilp.Unbounded _ -> fail "per-entry ILP for %s is unbounded" func.P.name

let analyze_func ~pool ~counter ~deadline (spec : A.spec) layout
    (done_units : (string, unit_result) Hashtbl.t) (func : P.func) =
  let costs =
    Cost.func_bounds ~mach:spec.A.mach ?dcache:spec.A.dcache ~prog:spec.A.prog
      spec.A.cache layout func
  in
  (* direct callees in call order (duplicates kept: the key only needs to be
     a deterministic function of everything the solve reads) *)
  let callees =
    Array.to_list func.P.blocks
    |> List.concat_map (fun b ->
      List.map
        (fun g ->
          let u = Hashtbl.find done_units g in
          (g, u.wcet.cycles_pe, u.bcet.cycles_pe))
        (P.calls_of_block b))
  in
  let key =
    Key.func_key ~mach:(Machine.id spec.A.mach) ~cache:spec.A.cache
      ~dcache:spec.A.dcache ~costs ~annotations:spec.A.loop_bounds ~callees
      func
  in
  (* the unit's two ILPs are built eagerly — a cache hit needs them too,
     to validate the stored certificates against exactly the problems this
     request would otherwise solve. A hit implies the same annotations that
     previously solved (they are part of the key), so the missing-bound
     check cannot newly fire on the warm path *)
  let inst =
    { Ipet.Structural.ctx = Ipet.Flowvar.root_ctx; func; sites = [] }
  in
  let structural = Ipet.Structural.instance_constraints inst ~is_root:true in
  let loop_cs, unbounded =
    Ipet.Annotation.constraints spec.A.prog [ inst ] spec.A.loop_bounds
  in
  (match unbounded with
   | [] -> ()
   | us ->
     let render (u : Ipet.Annotation.unbounded) =
       if u.Ipet.Annotation.header_line > 0 then
         Printf.sprintf "%s (header at line %d)" u.Ipet.Annotation.ufunc
           u.Ipet.Annotation.header_line
       else
         Printf.sprintf "%s (header block %d)" u.Ipet.Annotation.ufunc
           u.Ipet.Annotation.header_block
     in
     fail "missing loop bounds for: %s"
       (String.concat ", " (List.map render us)));
  let constraints = structural @ loop_cs in
  let objective select_cost select_callee =
    Array.fold_left
      (fun acc (b : P.block) ->
        let c =
          List.fold_left
            (fun acc g ->
              acc + select_callee (Hashtbl.find done_units g))
            (select_cost costs.(b.P.id))
            (P.calls_of_block b)
        in
        if c = 0 then acc
        else
          L.add acc
            (L.var ~coeff:(Rat.of_int c)
               (Ipet.Flowvar.name
                  (Ipet.Flowvar.Block
                     { ctx = Ipet.Flowvar.root_ctx;
                       func = func.P.name;
                       block = b.P.id }))))
      L.zero func.P.blocks
  in
  let wcet_problem =
    Lp.make Lp.Maximize
      (objective (fun c -> c.Cost.worst) (fun u -> u.wcet.cycles_pe))
      constraints
  in
  let bcet_problem =
    Lp.make Lp.Minimize
      (objective (fun c -> c.Cost.best) (fun u -> u.bcet.cycles_pe))
      constraints
  in
  let solve () =
    let wcet = solve_unit ~pool ~counter ~deadline spec wcet_problem func in
    let bcet = solve_unit ~pool ~counter ~deadline spec bcet_problem func in
    { key; wcet; bcet }
  in
  (key, (wcet_problem, bcet_problem), solve)

(* --- aggregation --------------------------------------------------------- *)

(* scale each function's per-entry witness by the entry count its callers'
   witnesses induce, callers first; root enters once *)
let aggregate prog root topo (units : (string, unit_result) Hashtbl.t) select =
  let entries = Hashtbl.create 8 in
  Hashtbl.replace entries root 1;
  List.iter
    (fun fname ->
      match Hashtbl.find_opt entries fname with
      | None | Some 0 -> ()
      | Some e ->
        let u = select (Hashtbl.find units fname) in
        let func = P.find_func prog fname in
        List.iter
          (fun (b, c) ->
            List.iter
              (fun g ->
                Hashtbl.replace entries g
                  ((match Hashtbl.find_opt entries g with
                    | Some n -> n
                    | None -> 0)
                   + (e * c)))
              (P.calls_of_block func.P.blocks.(b)))
          u.counts_pe)
    (List.rev topo);
  let counts =
    List.concat_map
      (fun fname ->
        match Hashtbl.find_opt entries fname with
        | None | Some 0 -> []
        | Some e ->
          List.map
            (fun (b, c) -> ((fname, b), e * c))
            (select (Hashtbl.find units fname)).counts_pe)
      topo
    |> List.sort compare
  in
  let binding =
    List.concat_map
      (fun fname ->
        match Hashtbl.find_opt entries fname with
        | None | Some 0 -> []
        | Some _ -> (select (Hashtbl.find units fname)).binding_pe)
      topo
    |> List.sort_uniq compare
  in
  (counts, binding, entries)

(* --- report JSON --------------------------------------------------------- *)

let counts_json counts =
  Json.List
    (List.map
       (fun ((f, b), c) -> Json.List [ Json.Str f; Json.Int b; Json.Int c ])
       counts)

let binding_json binding = Json.List (List.map (fun o -> Json.Str o) binding)

let report ~root ~unit_kind ~bcet ~wcet ~wcet_counts ~wcet_binding ~bcet_counts
    ~bcet_binding ~units =
  Json.Obj
    [ ("schema", Json.Int Key.schema);
      ("root", Json.Str root);
      ("unit", Json.Str unit_kind);
      ("bcet", Json.Int bcet);
      ("wcet", Json.Int wcet);
      ("wcet_counts", counts_json wcet_counts);
      ("wcet_binding", binding_json wcet_binding);
      ("bcet_counts", counts_json bcet_counts);
      ("bcet_binding", binding_json bcet_binding);
      ("units", Json.List units) ]

let unit_row ~name ~key ~bcet_pe ~wcet_pe ~bcet_entries ~wcet_entries =
  Json.Obj
    [ ("name", Json.Str name);
      ("key", Json.Str key);
      ("bcet_pe", Json.Int bcet_pe);
      ("wcet_pe", Json.Int wcet_pe);
      ("bcet_entries", Json.Int bcet_entries);
      ("wcet_entries", Json.Int wcet_entries) ]

(* --- whole-program fallback ---------------------------------------------- *)

(* a cached whole-program extreme is validated by rebuilding the monolithic
   ILPs (one per surviving conjunctive set) and checking the stored
   certificate against the set whose digest it names — the winning set of
   the run that produced the entry *)
let monolithic_extreme_valid ~counter problems (e : extreme_pe) =
  counter.cert_checks <- counter.cert_checks + 1;
  Obs.add "serve.cert.checked" 1;
  let ok =
    match Cert.of_string e.cert_pe with
    | Error _ -> false
    | Ok cert ->
      Rat.equal cert.Cert.bound (Rat.of_int e.cycles_pe)
      && List.exists
           (fun p ->
             String.equal (Cert.digest_problem p) cert.Cert.digest
             && (match Checker.check p cert with
                 | Checker.Valid _ -> true
                 | Checker.Invalid _ -> false))
           problems
  in
  if not ok then begin
    counter.cert_rejects <- counter.cert_rejects + 1;
    Obs.add "serve.cert.rejected" 1
  end;
  ok

let monolithic ~pool ~cache ~deadline counter (spec : A.spec) =
  check_deadline deadline;
  let key =
    Key.program_key ~mach:(Machine.id spec.A.mach) ~cache:spec.A.cache
      ~dcache:spec.A.dcache ~root:spec.A.root
      ~annotations:spec.A.loop_bounds ~functional:spec.A.functional spec.A.prog
  in
  let prog_extreme (e : A.extreme) cert_pe =
    { cycles_pe = e.A.cycles;
      counts_pe = [];
      binding_pe = e.A.binding;
      cert_pe }
  in
  let cert_string what (c : A.certificate option) =
    match c with
    | None -> fail "monolithic analysis produced no %s certificate" what
    | Some c ->
      counter.cert_checks <- counter.cert_checks + 1;
      (match c.A.verdict with
       | Checker.Valid _ -> Cert.to_string c.A.cert
       | Checker.Invalid reasons ->
         counter.cert_rejects <- counter.cert_rejects + 1;
         Obs.add "serve.cert.rejected" 1;
         fail "%s certificate rejected by the checker: %s" what
           (String.concat "; " reasons))
  in
  let cached = Option.bind cache (fun c -> Cache.get c key) in
  let validated =
    match Option.bind cached (unit_of_json key) with
    | Some u
      when monolithic_extreme_valid ~counter (A.wcet_problems spec) u.wcet
           && monolithic_extreme_valid ~counter (A.bcet_problems spec) u.bcet
      ->
      Some u
    | Some _ ->
      (match cache with Some c -> Cache.remove c key | None -> ());
      None
    | None -> None
  in
  let u, counts =
    match validated with
    | Some u ->
      counter.cached <- counter.cached + 1;
      (* whole-program counts round-trip through a side field *)
      let counts ext =
        match Option.bind cached (Json.member ext) with
        | Some j ->
          Option.value ~default:[]
            (Option.map
               (List.filter_map (function
                 | Json.List [ Json.Str f; Json.Int b; Json.Int c ] ->
                   Some ((f, b), c)
                 | _ -> None))
               (Json.to_list j))
        | None -> []
      in
      (u, (counts "wcet_counts", counts "bcet_counts"))
    | None ->
      counter.solved <- counter.solved + 1;
      let r = A.analyze ?pool ~certify:true spec in
      counter.solves <-
        counter.solves + r.A.wcet_stats.A.sets_solved
        + r.A.bcet_stats.A.sets_solved;
      counter.warm <-
        counter.warm + r.A.wcet_stats.A.warm_hits
        + r.A.bcet_stats.A.warm_hits;
      counter.pivots <-
        counter.pivots + r.A.wcet_stats.A.simplex_pivots
        + r.A.bcet_stats.A.simplex_pivots;
      Obs.add "serve.ilp.solves"
        (r.A.wcet_stats.A.sets_solved + r.A.bcet_stats.A.sets_solved);
      let u =
        { key;
          wcet = prog_extreme r.A.wcet (cert_string "wcet" r.A.wcet_cert);
          bcet = prog_extreme r.A.bcet (cert_string "bcet" r.A.bcet_cert) }
      in
      let counts = (r.A.wcet.A.counts, r.A.bcet.A.counts) in
      (match cache with
       | Some c ->
         let with_counts =
           match unit_to_json u with
           | Json.Obj fields ->
             Json.Obj
               (fields
                @ [ ("wcet_counts", counts_json (fst counts));
                    ("bcet_counts", counts_json (snd counts)) ])
           | j -> j
         in
         Cache.put c key with_counts
       | None -> ());
      (u, counts)
  in
  let wcet_counts, bcet_counts = counts in
  let rep =
    report ~root:spec.A.root ~unit_kind:"program" ~bcet:u.bcet.cycles_pe
      ~wcet:u.wcet.cycles_pe ~wcet_counts ~wcet_binding:u.wcet.binding_pe
      ~bcet_counts ~bcet_binding:u.bcet.binding_pe
      ~units:
        [ unit_row ~name:spec.A.root ~key ~bcet_pe:u.bcet.cycles_pe
            ~wcet_pe:u.wcet.cycles_pe ~bcet_entries:1 ~wcet_entries:1 ]
  in
  rep

(* --- entry point --------------------------------------------------------- *)

let analyze ?pool ?cache ?deadline (spec : A.spec) =
  let counter =
    { cached = 0; solved = 0; solves = 0; warm = 0; pivots = 0;
      cert_checks = 0; cert_rejects = 0 }
  in
  let rep =
    if spec.A.functional <> [] || spec.A.first_miss_refinement then
      monolithic ~pool ~cache ~deadline counter spec
    else begin
      let prog = spec.A.prog in
      if not (Array.exists (fun (f : P.func) -> f.P.name = spec.A.root)
                prog.P.funcs)
      then fail "unknown root function %s" spec.A.root;
      let layout = Layout.make prog in
      let cg = Callgraph.of_program prog in
      let reach = Hashtbl.create 8 in
      let rec mark f =
        if not (Hashtbl.mem reach f) then begin
          Hashtbl.add reach f ();
          List.iter mark (Callgraph.callees cg f)
        end
      in
      mark spec.A.root;
      (* callees first; restricted to functions reachable from the root *)
      let topo =
        List.filter (Hashtbl.mem reach) (Callgraph.topological_order cg)
      in
      let units : (string, unit_result) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun fname ->
          let func = P.find_func prog fname in
          let key, (wcet_problem, bcet_problem), solve =
            analyze_func ~pool ~counter ~deadline spec layout units func
          in
          let u =
            match
              Option.bind
                (Option.bind cache (fun c -> Cache.get c key))
                (unit_of_json key)
            with
            | Some u
              when cached_extreme_valid ~counter wcet_problem u.wcet
                   && cached_extreme_valid ~counter bcet_problem u.bcet ->
              counter.cached <- counter.cached + 1;
              u
            | cached_u ->
              (* an entry whose certificate no longer checks is dropped and
                 the unit re-solved — a cache can be corrupted or tampered
                 with; the proof obligation cannot *)
              (match (cached_u, cache) with
               | Some _, Some c -> Cache.remove c key
               | _ -> ());
              counter.solved <- counter.solved + 1;
              let u = solve () in
              (match cache with
               | Some c -> Cache.put c key (unit_to_json u)
               | None -> ());
              u
          in
          Hashtbl.replace units fname u)
        topo;
      let root_unit = Hashtbl.find units spec.A.root in
      let wcet_counts, wcet_binding, wcet_entries =
        aggregate prog spec.A.root topo units (fun u -> u.wcet)
      in
      let bcet_counts, bcet_binding, bcet_entries =
        aggregate prog spec.A.root topo units (fun u -> u.bcet)
      in
      let entries tbl f =
        match Hashtbl.find_opt tbl f with Some n -> n | None -> 0
      in
      report ~root:spec.A.root ~unit_kind:"func"
        ~bcet:root_unit.bcet.cycles_pe ~wcet:root_unit.wcet.cycles_pe
        ~wcet_counts ~wcet_binding ~bcet_counts ~bcet_binding
        ~units:
          (List.map
             (fun fname ->
               let u = Hashtbl.find units fname in
               unit_row ~name:fname ~key:u.key ~bcet_pe:u.bcet.cycles_pe
                 ~wcet_pe:u.wcet.cycles_pe
                 ~bcet_entries:(entries bcet_entries fname)
                 ~wcet_entries:(entries wcet_entries fname))
             topo)
    end
  in
  ( rep,
    { units_total = counter.cached + counter.solved;
      units_cached = counter.cached;
      units_solved = counter.solved;
      ilp_solves = counter.solves;
      warm_lp_hits = counter.warm;
      simplex_pivots = counter.pivots;
      certs_checked = counter.cert_checks;
      certs_rejected = counter.cert_rejects } )
