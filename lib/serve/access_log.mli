(** Size-rotated JSONL access log for the daemon.

    One line per request, appended and flushed immediately (the log must
    survive a crash right after the write). When appending a line would
    push the file past the size cap, the current file is renamed to
    [path.1] (replacing any previous one) and a fresh file is started —
    so the disk footprint is bounded by roughly twice the cap and the most
    recent requests are always on disk. *)

type t

val open_ : path:string -> cap_bytes:int -> t
(** Open (creating or appending to) the log file. [cap_bytes] is clamped
    to at least 1024. *)

val write : t -> string -> unit
(** Append one pre-rendered line (without the trailing newline), rotating
    first if it would exceed the cap; a single line larger than the cap
    still lands (alone) in a fresh file. Flushes. *)

val path : t -> string

val close : t -> unit
