module Obs = Ipet_obs.Obs

type entry = { mutable size : int; mutable seq : int }

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  eviction_bytes : int;
}

type t = {
  dir : string;
  cap_bytes : int;
  table : (string, entry) Hashtbl.t;
  mutable next_seq : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable eviction_bytes : int;
}

let index_magic = "cinderella-cache-index v1"

let entry_path t key = Filename.concat t.dir (key ^ ".json")
let index_path t = Filename.concat t.dir "index"

let is_key key =
  String.length key = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       key

let mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Unix.mkdir parent 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* a writer that crashed between open and rename leaves a stale "*.tmp"
   behind; it is never a valid entry, so opening the cache sweeps them *)
let sweep_tmp dir =
  match Sys.readdir dir with
  | files ->
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files
  | exception Sys_error _ -> ()

(* atomic-enough write: temp file in the same directory, then rename *)
let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let load_index t =
  let adopt key seq =
    match Unix.stat (entry_path t key) with
    | { Unix.st_size; _ } ->
      Hashtbl.replace t.table key { size = st_size; seq };
      t.bytes <- t.bytes + st_size;
      if seq >= t.next_seq then t.next_seq <- seq + 1
    | exception Unix.Unix_error _ -> ()
  in
  let from_index =
    match read_file (index_path t) with
    | content ->
      (match String.split_on_char '\n' content with
       | magic :: lines when magic = index_magic ->
         List.iter
           (fun line ->
             match String.split_on_char ' ' line with
             | [ key; seq ] when is_key key ->
               (match int_of_string_opt seq with
                | Some seq -> adopt key seq
                | None -> ())
             | _ -> ())
           lines;
         true
       | _ -> false)
    | exception Sys_error _ -> false
  in
  if not from_index then
    (* no (or damaged) index: rebuild from the entry files, oldest-mtime
       first so eviction order stays sensible *)
    match Sys.readdir t.dir with
    | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
        if Filename.check_suffix f ".json" then begin
          let key = Filename.chop_suffix f ".json" in
          if is_key key then
            match Unix.stat (Filename.concat t.dir f) with
            | st -> Some (st.Unix.st_mtime, key)
            | exception Unix.Unix_error _ -> None
          else None
        end
        else None)
      |> List.sort compare
      |> List.iter (fun (_, key) ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        adopt key seq)
    | exception Sys_error _ -> ()

let create ~dir ~cap_bytes =
  mkdir_p dir;
  sweep_tmp dir;
  let t =
    { dir;
      cap_bytes;
      table = Hashtbl.create 64;
      next_seq = 0;
      bytes = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      eviction_bytes = 0 }
  in
  load_index t;
  t

let flush t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf index_magic;
  Buffer.add_char buf '\n';
  Hashtbl.iter
    (fun key e -> Buffer.add_string buf (Printf.sprintf "%s %d\n" key e.seq))
    t.table;
  write_file (index_path t) (Buffer.contents buf)

let touch t e =
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1

let drop t key e =
  Hashtbl.remove t.table key;
  t.bytes <- t.bytes - e.size;
  try Sys.remove (entry_path t key) with Sys_error _ -> ()

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    drop t key e;
    flush t
  | None -> ()

let miss t =
  t.misses <- t.misses + 1;
  Obs.add "serve.cache.misses" 1;
  None

let get t key =
  match Hashtbl.find_opt t.table key with
  | None -> miss t
  | Some e ->
    (match Json.parse (read_file (entry_path t key)) with
     | Ok v ->
       touch t e;
       t.hits <- t.hits + 1;
       Obs.add "serve.cache.hits" 1;
       Some v
     | Error _ | exception Sys_error _ ->
       (* damaged or vanished entry: self-heal to a miss *)
       drop t key e;
       miss t)

let evict_over_cap t ~keep =
  while
    t.bytes > t.cap_bytes
    && Hashtbl.length t.table > if Hashtbl.mem t.table keep then 1 else 0
  do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          if key = keep then acc
          else
            match acc with
            | Some (_, best) when best.seq <= e.seq -> acc
            | Some _ | None -> Some (key, e))
        t.table None
    in
    match victim with
    | None -> t.bytes <- min t.bytes t.cap_bytes (* only [keep] left *)
    | Some (key, e) ->
      let freed = e.size in
      drop t key e;
      t.evictions <- t.evictions + 1;
      t.eviction_bytes <- t.eviction_bytes + freed;
      Obs.add "serve.cache.evictions" 1;
      Obs.add "serve.cache.eviction_bytes" freed
  done

let put t key value =
  let content = Json.to_string value in
  let size = String.length content in
  (match Hashtbl.find_opt t.table key with
   | Some e ->
     (* same key, same content: refresh recency only *)
     touch t e
   | None ->
     write_file (entry_path t key) content;
     let e = { size; seq = 0 } in
     touch t e;
     Hashtbl.replace t.table key e;
     t.bytes <- t.bytes + size;
     evict_over_cap t ~keep:key);
  flush t

let stats t : stats =
  { entries = Hashtbl.length t.table;
    bytes = t.bytes;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    eviction_bytes = t.eviction_bytes }

let dir t = t.dir
let cap_bytes t = t.cap_bytes
