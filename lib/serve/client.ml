type t = { fd : Unix.file_descr; buf : Buffer.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = Buffer.create 256 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write t.fd b off (len - off))
  in
  go 0

let recv_line t =
  let chunk = Bytes.create 65536 in
  let rec take () =
    let content = Buffer.contents t.buf in
    match String.index_opt content '\n' with
    | Some nl ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf content (nl + 1)
        (String.length content - nl - 1);
      Some (String.sub content 0 nl)
    | None ->
      (match Unix.read t.fd chunk 0 (Bytes.length chunk) with
       | 0 ->
         Buffer.clear t.buf;
         if content = "" then None else Some content
       | n ->
         Buffer.add_subbytes t.buf chunk 0 n;
         take ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ())
  in
  take ()

let request t line =
  send_line t line;
  recv_line t

let one_shot ~socket line =
  let t = connect socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> request t line)
