type t = {
  path : string;
  cap_bytes : int;
  mutable oc : out_channel;
  mutable bytes : int;
}

let open_channel path = open_out_gen [ Open_append; Open_creat ] 0o644 path

let open_ ~path ~cap_bytes =
  let oc = open_channel path in
  let bytes = try out_channel_length oc with Sys_error _ -> 0 in
  { path; cap_bytes = max 1024 cap_bytes; oc; bytes }

let path t = t.path

(* one rotation generation is enough for a flight-data log: the previous
   file is the backstop, not an archive *)
let rotate t =
  close_out_noerr t.oc;
  let old = t.path ^ ".1" in
  (try Sys.remove old with Sys_error _ -> ());
  (try Sys.rename t.path old with Sys_error _ -> ());
  t.oc <- open_channel t.path;
  t.bytes <- 0

let write t line =
  let len = String.length line + 1 in
  if t.bytes > 0 && t.bytes + len > t.cap_bytes then rotate t;
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  t.bytes <- t.bytes + len

let close t = close_out_noerr t.oc
