module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Icache = Ipet_machine.Icache
module P = Ipet_isa.Prog
module Obs = Ipet_obs.Obs

type config = {
  pool : Ipet_par.Pool.t option;
  cache : Cache.t option;
  default_timeout_ms : int option;
}

type outcome = Continue | Shutdown

let version = 1

exception Reject of string * string  (* code, message *)

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let error_response ?id code message =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
     @ [ ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("code", Json.Str code); ("message", Json.Str message) ] ) ])

let ok_response ?id op fields =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
     @ [ ("ok", Json.Bool true); ("op", Json.Str op) ]
     @ fields)

(* --- request field access ------------------------------------------------ *)

let str_field req name =
  Option.bind (Json.member name req) Json.to_str

let require_str req name =
  match str_field req name with
  | Some s -> s
  | None -> reject "proto" "missing string field %S" name

let opt_int j name = Option.bind (Json.member name j) Json.to_int
let opt_bool j name = Option.bind (Json.member name j) Json.to_bool

(* --- analyze ------------------------------------------------------------- *)

let parse_icache options =
  match Option.bind options (Json.member "icache") with
  | None -> Icache.i960kb
  | Some j ->
    (match (opt_int j "size_bytes", opt_int j "line_bytes",
            opt_int j "miss_penalty")
     with
     | Some size_bytes, Some line_bytes, Some miss_penalty ->
       { Icache.size_bytes; line_bytes; miss_penalty }
     | _ ->
       reject "proto"
         "icache needs integer size_bytes, line_bytes, miss_penalty")

(* In-memory memo of compiled programs: an editor-driven client resends the
   same (or a near-identical) source on every keystroke, and compilation is
   pure, so keying on the digest of (lang, source) is exact. Bounded by a
   full reset — the memo is a throughput aid, not a store. *)
let compile_memo : (string, P.t) Hashtbl.t = Hashtbl.create 16
let compile_memo_cap = 64

let compile_uncached ~lang source =
  match lang with
  | "mc" ->
    (match Frontend.compile_string source with
     | Ok compiled -> compiled.Compile.prog
     | Error { Frontend.message; line } ->
       reject "input" "line %d: %s" line message)
  | "asm" ->
    (match Ipet_isa.Asm_parser.parse source with
     | prog -> prog
     | exception Ipet_isa.Asm_parser.Error (message, line) ->
       reject "input" "line %d: %s" line message)
  | lang -> reject "proto" "unknown lang %S (expected \"mc\" or \"asm\")" lang

let compile_source ~lang source =
  let key = Digest.string (lang ^ "\x00" ^ source) in
  match Hashtbl.find_opt compile_memo key with
  | Some prog -> prog
  | None ->
    let prog = compile_uncached ~lang source in
    if Hashtbl.length compile_memo >= compile_memo_cap then
      Hashtbl.reset compile_memo;
    Hashtbl.add compile_memo key prog;
    prog

let parse_annotations req =
  match str_field req "annotations" with
  | None ->
    { Ipet.Constraint_parser.root = None; loop_bounds = []; functional = [] }
  | Some text ->
    (match Ipet.Constraint_parser.parse_annotation_text text with
     | a -> a
     | exception Ipet.Constraint_parser.Parse_error msg ->
       reject "input" "%s" msg)

let analyze config req =
  let source = require_str req "source" in
  let lang = Option.value ~default:"mc" (str_field req "lang") in
  let options = Json.member "options" req in
  let annotations = parse_annotations req in
  let root =
    match (str_field req "root", annotations.Ipet.Constraint_parser.root) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None ->
      reject "input"
        "no analysis root: pass \"root\" or add a 'root' line to the \
         annotations"
  in
  let prog = compile_source ~lang source in
  if P.find_func_opt prog root = None then
    reject "input" "unknown function %s" root;
  let cache_config = parse_icache options in
  let first_miss =
    Option.value ~default:false
      (Option.bind options (fun o -> opt_bool o "first_miss"))
  in
  let use_cache =
    Option.value ~default:true
      (Option.bind options (fun o -> opt_bool o "use_cache"))
  in
  let timeout_ms =
    match Option.bind options (fun o -> opt_int o "timeout_ms") with
    | Some ms -> Some ms
    | None -> config.default_timeout_ms
  in
  let spec =
    Ipet.Analysis.spec ~cache:cache_config
      ~loop_bounds:annotations.Ipet.Constraint_parser.loop_bounds
      ~functional:annotations.Ipet.Constraint_parser.functional
      ~first_miss_refinement:first_miss ~root prog
  in
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      timeout_ms
  in
  let cache = if use_cache then config.cache else None in
  let t0 = Unix.gettimeofday () in
  let report, stats =
    match
      Obs.span "serve.analyze" ~args:[ ("root", root) ] (fun () ->
          Incremental.analyze ?pool:config.pool ?cache ?deadline spec)
    with
    | result -> result
    | exception Incremental.Timeout ->
      reject "timeout" "analysis exceeded %d ms"
        (Option.value ~default:0 timeout_ms)
    | exception Ipet.Analysis.Analysis_error msg ->
      reject "analysis" "analysis error: %s" msg
    | exception Ipet.Functional.Resolution_error msg ->
      reject "input" "constraint error: %s" msg
    | exception Ipet.Annotation.Bad_annotation msg ->
      reject "input" "annotation error: %s" msg
  in
  let wall_ms =
    int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1000.))
  in
  [ ("report", report);
    ( "stats",
      Json.Obj
        [ ("units_total", Json.Int stats.Incremental.units_total);
          ("units_cached", Json.Int stats.Incremental.units_cached);
          ("units_solved", Json.Int stats.Incremental.units_solved);
          ("ilp_solves", Json.Int stats.Incremental.ilp_solves);
          ("certs_checked", Json.Int stats.Incremental.certs_checked);
          ("certs_rejected", Json.Int stats.Incremental.certs_rejected);
          ("wall_ms", Json.Int wall_ms) ] ) ]

(* --- dispatch ------------------------------------------------------------ *)

let cache_stats_json = function
  | None -> Json.Null
  | Some cache ->
    let s = Cache.stats cache in
    Json.Obj
      [ ("dir", Json.Str (Cache.dir cache));
        ("cap_bytes", Json.Int (Cache.cap_bytes cache));
        ("entries", Json.Int s.Cache.entries);
        ("bytes", Json.Int s.Cache.bytes);
        ("hits", Json.Int s.Cache.hits);
        ("misses", Json.Int s.Cache.misses);
        ("evictions", Json.Int s.Cache.evictions) ]

let hello_fields =
  [ ("server", Json.Str "cinderella");
    ("version", Json.Str Version.version);
    ("protocol", Json.Int version);
    ("key_schema", Json.Int Key.schema) ]

let handle_request config req =
  match Json.member "v" req with
  | Some (Json.Int v) when v = version ->
    let id = Json.member "id" req in
    (match str_field req "op" with
     | Some "hello" -> (ok_response ?id "hello" hello_fields, Continue)
     | Some "analyze" ->
       Obs.add "serve.requests.analyze" 1;
       (ok_response ?id "analyze" (analyze config req), Continue)
     | Some "stats" ->
       ( ok_response ?id "stats"
           [ ("cache", cache_stats_json config.cache) ],
         Continue )
     | Some "shutdown" -> (ok_response ?id "shutdown" [], Shutdown)
     | Some op -> reject "proto" "unknown op %S" op
     | None -> reject "proto" "missing string field \"op\"")
  | Some (Json.Int v) ->
    reject "proto" "unsupported protocol version %d (server speaks %d)" v
      version
  | Some _ | None -> reject "proto" "missing integer field \"v\""

let handle_line config line =
  let id, result =
    match Json.parse line with
    | Error msg -> (None, Error ("proto", "bad JSON: " ^ msg))
    | Ok req ->
      let id = Json.member "id" req in
      (match handle_request config req with
       | response -> (id, Ok response)
       | exception Reject (code, message) -> (id, Error (code, message))
       | exception exn ->
         (id, Error ("internal", Printexc.to_string exn)))
  in
  match result with
  | Ok (response, outcome) -> (Json.to_string response, outcome)
  | Error (code, message) ->
    Obs.add "serve.requests.errors" 1;
    (Json.to_string (error_response ?id code message), Continue)
