module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine
module P = Ipet_isa.Prog
module Obs = Ipet_obs.Obs
module Flight = Ipet_obs.Flight

type totals = {
  mutable requests : int;
  mutable errors : int;
  mutable certs_checked : int;
  mutable certs_rejected : int;
}

type config = {
  pool : Ipet_par.Pool.t option;
  cache : Cache.t option;
  default_timeout_ms : int option;
  flight : Flight.t;
  access : Access_log.t option;
  totals : totals;
}

let make ?pool ?cache ?default_timeout_ms ?access ?(flight_cap = 512) () =
  { pool;
    cache;
    default_timeout_ms;
    flight = Flight.create ~cap:flight_cap ();
    access;
    totals = { requests = 0; errors = 0; certs_checked = 0; certs_rejected = 0 } }

type outcome = Continue | Shutdown

let version = 1

exception Reject of string * string  (* code, message *)

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let trace_field = function
  | None -> []
  | Some t -> [ ("trace", Json.Str t) ]

let error_response ?id ?trace code message =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
     @ trace_field trace
     @ [ ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("code", Json.Str code); ("message", Json.Str message) ] ) ])

let ok_response ?id ?trace op fields =
  Json.Obj
    ((match id with Some id -> [ ("id", id) ] | None -> [])
     @ trace_field trace
     @ [ ("ok", Json.Bool true); ("op", Json.Str op) ]
     @ fields)

(* --- request field access ------------------------------------------------ *)

let str_field req name =
  Option.bind (Json.member name req) Json.to_str

let require_str req name =
  match str_field req name with
  | Some s -> s
  | None -> reject "proto" "missing string field %S" name

let opt_int j name = Option.bind (Json.member name j) Json.to_int
let opt_bool j name = Option.bind (Json.member name j) Json.to_bool

(* --- flight-recorder note ------------------------------------------------- *)

(* what the dispatch learned about the request, harvested into the flight
   event once the latency is known; a handler fills what it can *)
type note = {
  mutable n_root : string;
  mutable n_digests : string list;
  mutable n_units_total : int;
  mutable n_units_cached : int;
  mutable n_units_solved : int;
  mutable n_warm : int;
  mutable n_pivots : int;
  mutable n_certs_checked : int;
  mutable n_certs_rejected : int;
}

let fresh_note () =
  { n_root = "";
    n_digests = [];
    n_units_total = 0;
    n_units_cached = 0;
    n_units_solved = 0;
    n_warm = 0;
    n_pivots = 0;
    n_certs_checked = 0;
    n_certs_rejected = 0 }

let digest_cap = 8

let report_digests report =
  match Option.bind (Json.member "units" report) Json.to_list with
  | None -> []
  | Some units ->
    List.filteri (fun i _ -> i < digest_cap) units
    |> List.filter_map (fun u -> Option.bind (Json.member "key" u) Json.to_str)

(* --- analyze ------------------------------------------------------------- *)

let parse_mach req =
  match str_field req "mach" with
  | None -> Machine.e32
  | Some s ->
    (match Machine.of_string s with
     | Ok m -> m
     | Error msg -> reject "proto" "%s" msg)

let parse_icache ~mach options =
  match Option.bind options (Json.member "icache") with
  | None -> Machine.fetch mach
  | Some j ->
    (match (opt_int j "size_bytes", opt_int j "line_bytes",
            opt_int j "miss_penalty")
     with
     | Some size_bytes, Some line_bytes, Some miss_penalty ->
       { Icache.size_bytes; line_bytes; miss_penalty }
     | _ ->
       reject "proto"
         "icache needs integer size_bytes, line_bytes, miss_penalty")

(* In-memory memo of compiled programs: an editor-driven client resends the
   same (or a near-identical) source on every keystroke, and compilation is
   pure, so keying on the digest of (lang, source) is exact. Bounded by a
   full reset — the memo is a throughput aid, not a store. *)
let compile_memo : (string, P.t) Hashtbl.t = Hashtbl.create 16
let compile_memo_cap = 64

let compile_uncached ~lang source =
  match lang with
  | "mc" ->
    (match Frontend.compile_string source with
     | Ok compiled -> compiled.Compile.prog
     | Error { Frontend.message; line } ->
       reject "input" "line %d: %s" line message)
  | "asm" ->
    (match Ipet_isa.Asm_parser.parse source with
     | prog -> prog
     | exception Ipet_isa.Asm_parser.Error (message, line) ->
       reject "input" "line %d: %s" line message)
  | lang -> reject "proto" "unknown lang %S (expected \"mc\" or \"asm\")" lang

let compile_source ~lang source =
  let key = Digest.string (lang ^ "\x00" ^ source) in
  match Hashtbl.find_opt compile_memo key with
  | Some prog -> prog
  | None ->
    let prog = compile_uncached ~lang source in
    if Hashtbl.length compile_memo >= compile_memo_cap then
      Hashtbl.reset compile_memo;
    Hashtbl.add compile_memo key prog;
    prog

let parse_annotations req =
  match str_field req "annotations" with
  | None ->
    { Ipet.Constraint_parser.root = None; loop_bounds = []; functional = [] }
  | Some text ->
    (match Ipet.Constraint_parser.parse_annotation_text text with
     | a -> a
     | exception Ipet.Constraint_parser.Parse_error msg ->
       reject "input" "%s" msg)

let span_json (s : Ipet_obs.Span.completed) =
  Json.Obj
    ([ ("name", Json.Str s.Ipet_obs.Span.name);
       ("start_us", Json.Int s.Ipet_obs.Span.start_us);
       ("dur_us", Json.Int s.Ipet_obs.Span.dur_us);
       ("depth", Json.Int s.Ipet_obs.Span.depth) ]
     @
     match s.Ipet_obs.Span.args with
     | [] -> []
     | args ->
       [ ( "args",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args) ) ])

let analyze config ~req_id ~(note : note) req =
  let source = require_str req "source" in
  let lang = Option.value ~default:"mc" (str_field req "lang") in
  let options = Json.member "options" req in
  let annotations = parse_annotations req in
  let root =
    match (str_field req "root", annotations.Ipet.Constraint_parser.root) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None ->
      reject "input"
        "no analysis root: pass \"root\" or add a 'root' line to the \
         annotations"
  in
  note.n_root <- root;
  let prog = compile_source ~lang source in
  if P.find_func_opt prog root = None then
    reject "input" "unknown function %s" root;
  let mach = parse_mach req in
  let cache_config = parse_icache ~mach options in
  let first_miss =
    Option.value ~default:false
      (Option.bind options (fun o -> opt_bool o "first_miss"))
  in
  let use_cache =
    Option.value ~default:true
      (Option.bind options (fun o -> opt_bool o "use_cache"))
  in
  let want_spans =
    Option.value ~default:false
      (Option.bind options (fun o -> opt_bool o "trace_spans"))
  in
  let timeout_ms =
    match Option.bind options (fun o -> opt_int o "timeout_ms") with
    | Some ms -> Some ms
    | None -> config.default_timeout_ms
  in
  let spec =
    Ipet.Analysis.spec ~mach ~cache:cache_config
      ~loop_bounds:annotations.Ipet.Constraint_parser.loop_bounds
      ~functional:annotations.Ipet.Constraint_parser.functional
      ~first_miss_refinement:first_miss ~root prog
  in
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      timeout_ms
  in
  let cache = if use_cache then config.cache else None in
  (* the whole request runs on its own named track, so one daemon trace
     interleaves every request as its own row *)
  let track = "req:" ^ req_id in
  let spans_before =
    if want_spans then List.length (Obs.track_spans track) else 0
  in
  let t0 = Unix.gettimeofday () in
  let report, stats =
    match
      Obs.with_track track (fun () ->
          Obs.span "serve.analyze" ~args:[ ("root", root) ] (fun () ->
              Incremental.analyze ?pool:config.pool ?cache ?deadline spec))
    with
    | result -> result
    | exception Incremental.Timeout ->
      reject "timeout" "analysis exceeded %d ms"
        (Option.value ~default:0 timeout_ms)
    | exception Ipet.Analysis.Analysis_error msg ->
      reject "analysis" "analysis error: %s" msg
    | exception Ipet.Functional.Resolution_error msg ->
      reject "input" "constraint error: %s" msg
    | exception Ipet.Annotation.Bad_annotation msg ->
      reject "input" "annotation error: %s" msg
  in
  let wall_ms =
    int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1000.))
  in
  note.n_digests <- report_digests report;
  note.n_units_total <- stats.Incremental.units_total;
  note.n_units_cached <- stats.Incremental.units_cached;
  note.n_units_solved <- stats.Incremental.units_solved;
  note.n_warm <- stats.Incremental.warm_lp_hits;
  note.n_pivots <- stats.Incremental.simplex_pivots;
  note.n_certs_checked <- stats.Incremental.certs_checked;
  note.n_certs_rejected <- stats.Incremental.certs_rejected;
  config.totals.certs_checked <-
    config.totals.certs_checked + stats.Incremental.certs_checked;
  config.totals.certs_rejected <-
    config.totals.certs_rejected + stats.Incremental.certs_rejected;
  let span_fields =
    if not want_spans then []
    else begin
      (* only this request's spans: the track accumulates across requests
         that share an id *)
      let all = Obs.track_spans track in
      let fresh = List.filteri (fun i _ -> i >= spans_before) all in
      [ ("trace_spans", Json.List (List.map span_json fresh)) ]
    end
  in
  [ ("report", report);
    ( "stats",
      Json.Obj
        [ ("units_total", Json.Int stats.Incremental.units_total);
          ("units_cached", Json.Int stats.Incremental.units_cached);
          ("units_solved", Json.Int stats.Incremental.units_solved);
          ("ilp_solves", Json.Int stats.Incremental.ilp_solves);
          ("warm_lp_hits", Json.Int stats.Incremental.warm_lp_hits);
          ("simplex_pivots", Json.Int stats.Incremental.simplex_pivots);
          ("certs_checked", Json.Int stats.Incremental.certs_checked);
          ("certs_rejected", Json.Int stats.Incremental.certs_rejected);
          ("wall_ms", Json.Int wall_ms) ] ) ]
  @ span_fields

(* --- dispatch ------------------------------------------------------------ *)

let cache_stats_json = function
  | None -> Json.Null
  | Some cache ->
    let s = Cache.stats cache in
    Json.Obj
      [ ("dir", Json.Str (Cache.dir cache));
        ("cap_bytes", Json.Int (Cache.cap_bytes cache));
        ("entries", Json.Int s.Cache.entries);
        ("bytes", Json.Int s.Cache.bytes);
        ("hits", Json.Int s.Cache.hits);
        ("misses", Json.Int s.Cache.misses);
        ("evictions", Json.Int s.Cache.evictions);
        ("eviction_bytes", Json.Int s.Cache.eviction_bytes) ]

let hello_fields =
  [ ("server", Json.Str "cinderella");
    ("version", Json.Str Version.version);
    ("protocol", Json.Int version);
    ("key_schema", Json.Int Key.schema) ]

let stats_fields config =
  [ ("requests", Json.Int config.totals.requests);
    ("errors", Json.Int config.totals.errors);
    ("certs_checked", Json.Int config.totals.certs_checked);
    ("certs_rejected", Json.Int config.totals.certs_rejected);
    ("flight_recorded", Json.Int (Flight.total config.flight));
    ("cache", cache_stats_json config.cache) ]

let metrics_fields () =
  let doc =
    Obs.Sink.metrics_json ~span_totals:(Obs.span_totals ()) Obs.metrics
  in
  let parsed = match Json.parse doc with Ok j -> j | Error _ -> Json.Null in
  [ ("metrics", parsed);
    ("prometheus", Json.Str (Obs.Sink.prometheus Obs.metrics)) ]

let flight_event_json (seq, (e : Flight.event)) =
  Json.Obj
    ([ ("seq", Json.Int seq);
       ("time", Json.Float e.Flight.time);
       ("id", Json.Str e.Flight.id);
       ("op", Json.Str e.Flight.op) ]
     @ (if e.Flight.root = "" then []
        else [ ("root", Json.Str e.Flight.root) ])
     @ [ ( "digests",
           Json.List (List.map (fun d -> Json.Str d) e.Flight.digests) );
         ("units_total", Json.Int e.Flight.units_total);
         ("units_cached", Json.Int e.Flight.units_cached);
         ("units_solved", Json.Int e.Flight.units_solved);
         ("warm_lp_hits", Json.Int e.Flight.warm_hits);
         ("pivots", Json.Int e.Flight.pivots);
         ("certs_checked", Json.Int e.Flight.certs_checked);
         ("certs_rejected", Json.Int e.Flight.certs_rejected);
         ("latency_ms", Json.Float e.Flight.latency_ms) ]
     @ (match e.Flight.error with
        | None -> []
        | Some code -> [ ("error", Json.Str code) ]))

let recent_fields config req =
  let n = Option.value ~default:50 (opt_int req "n") in
  [ ( "events",
      Json.List (List.map flight_event_json (Flight.recent ~n config.flight)) ) ]

let handle_request config ~trace ~req_id ~note req =
  match Json.member "v" req with
  | Some (Json.Int v) when v = version ->
    let id = Json.member "id" req in
    (match str_field req "op" with
     | Some "hello" -> (ok_response ?id ?trace "hello" hello_fields, Continue)
     | Some "analyze" ->
       Obs.add "serve.requests.analyze" 1;
       ( ok_response ?id ?trace "analyze" (analyze config ~req_id ~note req),
         Continue )
     | Some "stats" ->
       (ok_response ?id ?trace "stats" (stats_fields config), Continue)
     | Some "metrics" ->
       (ok_response ?id ?trace "metrics" (metrics_fields ()), Continue)
     | Some "recent" ->
       (ok_response ?id ?trace "recent" (recent_fields config req), Continue)
     | Some "shutdown" -> (ok_response ?id ?trace "shutdown" [], Shutdown)
     | Some op -> reject "proto" "unknown op %S" op
     | None -> reject "proto" "missing string field \"op\"")
  | Some (Json.Int v) ->
    reject "proto" "unsupported protocol version %d (server speaks %d)" v
      version
  | Some _ | None -> reject "proto" "missing integer field \"v\""

let access_entry ~time ~req_id ~op ~latency_ms ~error (note : note) =
  Json.Obj
    ([ ("ts", Json.Float time);
       ("id", Json.Str req_id);
       ("op", Json.Str op);
       ("ok", Json.Bool (error = None)) ]
     @ (match error with
        | None -> []
        | Some code -> [ ("code", Json.Str code) ])
     @ (if note.n_root = "" then [] else [ ("root", Json.Str note.n_root) ])
     @ (if note.n_units_total = 0 then []
        else
          [ ("units_total", Json.Int note.n_units_total);
            ("units_cached", Json.Int note.n_units_cached);
            ("units_solved", Json.Int note.n_units_solved) ])
     @ [ ("ms", Json.Float latency_ms) ])

let handle_line config line =
  let t0 = Unix.gettimeofday () in
  config.totals.requests <- config.totals.requests + 1;
  let note = fresh_note () in
  let parsed = Json.parse line in
  let id, trace, op =
    match parsed with
    | Error _ -> (None, None, None)
    | Ok req -> (Json.member "id" req, str_field req "trace", str_field req "op")
  in
  let req_id =
    match trace with
    | Some t -> t
    | None -> Printf.sprintf "req-%d" config.totals.requests
  in
  let result =
    match parsed with
    | Error msg -> Error ("proto", "bad JSON: " ^ msg)
    | Ok req ->
      (match handle_request config ~trace ~req_id ~note req with
       | response -> Ok response
       | exception Reject (code, message) -> Error (code, message)
       | exception exn ->
         Error ("internal", Printexc.to_string exn))
  in
  let latency_s = Unix.gettimeofday () -. t0 in
  let opname = Option.value ~default:"?" op in
  let error = match result with Ok _ -> None | Error (code, _) -> Some code in
  (* metrics and the flight recorder are unconditional: the daemon is
     observable whether or not span tracing was enabled at launch *)
  Obs.observe ~labels:[ ("op", opname) ] "serve.latency_seconds" latency_s;
  if error <> None then begin
    config.totals.errors <- config.totals.errors + 1;
    Obs.add "serve.requests.errors" 1
  end;
  Flight.record config.flight
    { Flight.time = t0;
      id = req_id;
      op = opname;
      root = note.n_root;
      digests = note.n_digests;
      units_total = note.n_units_total;
      units_cached = note.n_units_cached;
      units_solved = note.n_units_solved;
      warm_hits = note.n_warm;
      pivots = note.n_pivots;
      certs_checked = note.n_certs_checked;
      certs_rejected = note.n_certs_rejected;
      latency_ms = latency_s *. 1000.0;
      error };
  (match config.access with
   | None -> ()
   | Some log ->
     let entry =
       access_entry ~time:t0 ~req_id ~op:opname
         ~latency_ms:(latency_s *. 1000.0) ~error note
     in
     (try Access_log.write log (Json.to_string entry) with Sys_error _ -> ()));
  match result with
  | Ok (response, outcome) -> (Json.to_string response, outcome)
  | Error (code, message) ->
    (Json.to_string (error_response ?id ?trace code message), Continue)
