module Obs = Ipet_obs.Obs

type config = {
  socket_path : string;
  pool : Ipet_par.Pool.t option;
  cache : Cache.t option;
  default_timeout_ms : int option;
  max_request_bytes : int;
  access_log : string option;
  access_log_cap : int;
  flight_cap : int;
  flight_dump : string option;
}

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable closing : bool;
}

let stop = ref false

let install_signals () =
  let note _ = stop := true in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle note) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle note) with Invalid_argument _ -> ()

let close_conn conns conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  conns := List.filter (fun c -> c != conn) !conns

(* blocking write of the whole string; a client that stopped reading hits
   the socket send timeout and is treated as gone *)
let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      if n = 0 then raise Exit;
      go (off + n)
    end
  in
  go 0

let send conns conn line =
  match write_all conn.fd (line ^ "\n") with
  | () -> true
  | exception (Unix.Unix_error _ | Exit) ->
    close_conn conns conn;
    false

(* consume complete lines from the connection buffer *)
let take_lines conn =
  let content = Buffer.contents conn.buf in
  let rec split acc start =
    match String.index_from_opt content start '\n' with
    | Some nl -> split (String.sub content start (nl - start) :: acc) (nl + 1)
    | None ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf content start
        (String.length content - start);
      List.rev acc
  in
  split [] 0

let protocol_config config =
  let access =
    Option.map
      (fun path -> Access_log.open_ ~path ~cap_bytes:config.access_log_cap)
      config.access_log
  in
  Protocol.make ?pool:config.pool ?cache:config.cache
    ?default_timeout_ms:config.default_timeout_ms ?access
    ~flight_cap:config.flight_cap ()

let serve_conn config pconfig conns conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn conns conn
  | n ->
    Buffer.add_subbytes conn.buf chunk 0 n;
    let lines = take_lines conn in
    if lines = [] && Buffer.length conn.buf > config.max_request_bytes then begin
      let line =
        Json.to_string
          (Json.Obj
             [ ("ok", Json.Bool false);
               ( "error",
                 Json.Obj
                   [ ("code", Json.Str "proto");
                     ( "message",
                       Json.Str
                         (Printf.sprintf "request exceeds %d bytes"
                            config.max_request_bytes) ) ] ) ])
      in
      ignore (send conns conn line);
      close_conn conns conn
    end
    else
      List.iter
        (fun line ->
          if not conn.closing then begin
            Obs.add "serve.requests" 1;
            let response, outcome = Protocol.handle_line pconfig line in
            if send conns conn response then
              match outcome with
              | Protocol.Continue -> ()
              | Protocol.Shutdown ->
                conn.closing <- true;
                stop := true
          end)
        lines
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn conns conn

let run config =
  install_signals ();
  stop := false;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 16;
  let conns : conn list ref = ref [] in
  let pconfig = protocol_config config in
  (* cleanup runs on the graceful path and on an escaping exception alike:
     the flight recorder's whole point is surviving a crash *)
  let cleanup () =
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
    Option.iter Cache.flush config.cache;
    Option.iter
      (fun path -> Ipet_obs.Flight.write_dump pconfig.Protocol.flight path)
      config.flight_dump;
    Option.iter Access_log.close pconfig.Protocol.access
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  while not !stop do
    let fds = sock :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] 0.25 with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = sock then begin
            match Unix.accept sock with
            | client, _ ->
              Unix.set_close_on_exec client;
              (try Unix.setsockopt_float client Unix.SO_SNDTIMEO 30.0
               with Unix.Unix_error _ -> ());
              conns :=
                { fd = client; buf = Buffer.create 256; closing = false }
                :: !conns
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | Some conn -> serve_conn config pconfig conns conn
            | None -> ())
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
