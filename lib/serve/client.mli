(** Minimal blocking client for the serve protocol — used by
    [cinderella query], the load generator and the tests. *)

type t

val connect : string -> t
(** Connect to the daemon's unix-domain socket.
    @raise Unix.Unix_error when the daemon isn't there. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one request line (newline appended). *)

val recv_line : t -> string option
(** Read the next response line; [None] when the server closed the
    connection. *)

val request : t -> string -> string option
(** [send_line] then [recv_line]. *)

val one_shot : socket:string -> string -> string option
(** Connect, exchange a single request/response, disconnect. *)
