(** Minimal JSON values for the serve protocol: a parser and a
    deterministic printer, with no dependency beyond the stdlib.

    The printer is the inverse of the parser on the supported value space
    and renders object fields in the order given — responses built from
    the same data are byte-identical, which the cold/warm determinism
    guarantee of the analysis cache relies on. Integers are kept distinct
    from floats so execution counts round-trip exactly through cache
    files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** One JSON document; trailing whitespace allowed, anything else after
    the value is an error. Numbers without [.], [e] or [E] parse as
    {!Int}. Nesting depth is capped (malformed input cannot blow the
    stack). *)

val to_string : t -> string
(** Compact rendering (no added whitespace), object fields in order. *)

(** {1 Accessors} (all total; [None] on shape mismatch) *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] for absent fields and non-objects. *)

val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
