module P = Ipet_isa.Prog
module Instr = Ipet_isa.Instr
module Icache = Ipet_machine.Icache
module Cost = Ipet_machine.Cost

(* v3: the machine id joined the cost model (machine-parametric analysis) *)
let schema = 3

let add_cache buf (c : Icache.config) =
  Buffer.add_string buf
    (Printf.sprintf "cache %d %d %d\n" c.Icache.size_bytes c.Icache.line_bytes
       c.Icache.miss_penalty)

let add_cost_model buf ~mach ~cache ~dcache =
  Buffer.add_string buf (Printf.sprintf "mach %s\n" mach);
  add_cache buf cache;
  match dcache with
  | None -> Buffer.add_string buf "dcache none\n"
  | Some d ->
    Buffer.add_string buf "dcache ";
    add_cache buf d

(* the compiled form: every bit the local flow problem is built from *)
let add_func buf (f : P.func) =
  Buffer.add_string buf
    (Printf.sprintf "func %s params=%d frame=%d blocks=%d\n" f.P.name
       f.P.nparams f.P.frame_words (Array.length f.P.blocks));
  Array.iter
    (fun (b : P.block) ->
      Buffer.add_string buf (Printf.sprintf "B%d line=%d\n" b.P.id b.P.src_line);
      Array.iter
        (fun i -> Buffer.add_string buf (Format.asprintf "  %a\n" Instr.pp i))
        b.P.instrs;
      Buffer.add_string buf
        (Format.asprintf "  term %a\n" Instr.pp_terminator b.P.term))
    f.P.blocks

let add_costs buf (costs : Cost.bounds array) =
  Array.iteri
    (fun i (c : Cost.bounds) ->
      Buffer.add_string buf
        (Printf.sprintf "c%d %d %d %d\n" i c.Cost.best c.Cost.worst
           c.Cost.worst_warm))
    costs

let add_annotations buf fname (annotations : Ipet.Annotation.t list) =
  let mine =
    List.filter (fun (a : Ipet.Annotation.t) -> a.Ipet.Annotation.func = fname)
      annotations
  in
  let render (a : Ipet.Annotation.t) =
    let header =
      match a.Ipet.Annotation.header with
      | `Line l -> Printf.sprintf "line %d" l
      | `Block b -> Printf.sprintf "block %d" b
    in
    Printf.sprintf "loop %s [%d,%d]\n" header a.Ipet.Annotation.lo
      a.Ipet.Annotation.hi
  in
  (* several sound bounds on one loop intersect; their order is immaterial *)
  List.iter (Buffer.add_string buf) (List.sort compare (List.map render mine))

let add_callees buf callees =
  List.iter
    (fun (name, wcet_pe, bcet_pe) ->
      Buffer.add_string buf
        (Printf.sprintf "callee %s [%d,%d]\n" name bcet_pe wcet_pe))
    callees

let func_bytes ~mach ~cache ~dcache ~costs ~annotations ~callees (f : P.func) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "ipet-serve-key v%d unit=func\n" schema);
  add_cost_model buf ~mach ~cache ~dcache;
  add_func buf f;
  add_costs buf costs;
  add_annotations buf f.P.name annotations;
  add_callees buf callees;
  Buffer.contents buf

let func_key ~mach ~cache ~dcache ~costs ~annotations ~callees f =
  Digest.to_hex
    (Digest.string
       (func_bytes ~mach ~cache ~dcache ~costs ~annotations ~callees f))

let program_key ~mach ~cache ~dcache ~root ~annotations ~functional
    (prog : P.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "ipet-serve-key v%d unit=program root=%s\n" schema root);
  add_cost_model buf ~mach ~cache ~dcache;
  Array.iter
    (fun (f : P.func) ->
      add_func buf f;
      add_annotations buf f.P.name annotations)
    prog.P.funcs;
  List.iter
    (fun (g : P.global) ->
      Buffer.add_string buf
        (Printf.sprintf "global %s %d %d\n" g.P.gname g.P.addr g.P.size_words))
    prog.P.globals;
  List.iter
    (fun c -> Buffer.add_string buf (Format.asprintf "constr %a\n" Ipet.Functional.pp c))
    functional;
  Digest.to_hex (Digest.string (Buffer.contents buf))
