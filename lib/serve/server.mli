(** The analysis daemon: a single-threaded accept/select loop over a
    unix-domain socket, speaking {!Protocol} version 1.

    Requests on one connection are served in order; connections are
    multiplexed, so a slow analysis on one connection delays others (the
    solver itself still fans out across the shared domain pool). A
    malformed or failing request produces an error response on its own
    connection and nothing else — the daemon never dies with a client.

    Shutdown is graceful on SIGINT, SIGTERM or a [shutdown] request:
    in-flight responses are written, the socket file is unlinked, the
    cache index is flushed, the flight recorder is dumped (when
    [flight_dump] is set) and the access log is closed, and [run] returns
    (letting the caller's [at_exit] observability sinks render). The same
    cleanup runs when an exception escapes the serve loop — the flight
    dump exists precisely to survive a crash. SIGPIPE is ignored; a
    client that disappears mid-response just loses the response. *)

type config = {
  socket_path : string;
  pool : Ipet_par.Pool.t option;
  cache : Cache.t option;
  default_timeout_ms : int option;
  max_request_bytes : int;
      (** a connection whose pending line exceeds this is sent a [proto]
          error and closed (guards daemon memory against a stuck or
          malicious writer) *)
  access_log : string option;
      (** path of the size-rotated JSONL access log; [None] disables it *)
  access_log_cap : int;  (** rotation threshold in bytes *)
  flight_cap : int;      (** flight-recorder ring capacity (events) *)
  flight_dump : string option;
      (** where the flight recorder is dumped (JSONL, oldest first) on
          shutdown or crash; [None] disables the dump *)
}

val run : config -> unit
(** Bind [socket_path] (replacing a stale socket file), serve until told to
    stop, clean up. @raise Unix.Unix_error if the socket cannot be bound. *)
