type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* shortest representation that round-trips *)
      let s = Printf.sprintf "%.17g" f in
      let shorter = Printf.sprintf "%.15g" f in
      Buffer.add_string buf (if float_of_string shorter = f then shorter else s)
    else
      (* JSON has no nan/infinity literal; "0" would silently pass a bogus
         measurement off as a real one, so degrade to null instead *)
      Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

exception Bad of string

let max_depth = 512

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error "at byte %d: expected '%c', got '%c'" !pos c got
    | None -> error "at byte %d: expected '%c', got end of input" !pos c
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | Some _ | None -> false
    do
      advance ()
    done
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else error "at byte %d: malformed literal" !pos
  in
  (* encode a Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "at byte %d: truncated \\u escape" !pos;
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> error "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              let u = hex4 () in
              let u =
                (* surrogate pair *)
                if u >= 0xD800 && u <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00))
                  else error "at byte %d: invalid low surrogate" !pos
                end
                else if u >= 0xD800 && u <= 0xDFFF then
                  error "at byte %d: lone surrogate" !pos
                else u
              in
              add_utf8 buf u
            | c -> error "at byte %d: bad escape '\\%c'" !pos c);
           go ())
      | Some c when Char.code c < 0x20 -> error "control byte in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while match peek () with Some '0' .. '9' -> true | _ -> false do
        seen := true;
        advance ()
      done;
      if not !seen then error "at byte %d: malformed number" !pos
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "empty input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> error "at byte %d: expected ',' or ']'" !pos
        in
        elems ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> error "at byte %d: expected ',' or '}'" !pos
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some c -> error "at byte %d: unexpected '%c'" !pos c
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "at byte %d: trailing garbage" !pos;
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
