(* Build-time helper: extract the (version X) stanza from dune-project and
   print it as an OCaml module. Run by the dune rule in this directory. *)
let () =
  let ic = open_in Sys.argv.(1) in
  let version = ref "dev" in
  (try
     while true do
       let line = String.trim (input_line ic) in
       let prefix = "(version " in
       let np = String.length prefix in
       if
         String.length line > np + 1
         && String.sub line 0 np = prefix
         && line.[String.length line - 1] = ')'
       then version := String.trim (String.sub line np (String.length line - np - 1))
     done
   with End_of_file -> close_in ic);
  Printf.printf "let version = %S\n" !version
