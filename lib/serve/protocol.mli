(** The serve wire protocol, version 1.

    Transport is line-delimited JSON over a unix-domain socket: one request
    per line, one response line per request, in order. Every request is an
    object with ["v"] (protocol version, currently [1]) and ["op"], plus an
    optional ["id"] echoed verbatim in the response so clients can multiplex.

    Operations:
    - [hello] — handshake; returns server name, {!Version.version},
      protocol version and cache-key {!Key.schema};
    - [analyze] — ["source"] (MC program text, or an assembly listing when
      ["lang"] is ["asm"]), optional ["annotations"] (annotation-file text:
      [root]/[loop]/[constr] lines), optional ["root"] override, optional
      ["options"] object: [use_cache] (default true), [timeout_ms],
      [first_miss] (first-miss refinement), [icache]
      [{size_bytes, line_bytes, miss_penalty}] (default the paper's i960KB
      configuration);
    - [stats] — server counters and cache occupancy;
    - [shutdown] — acknowledge, then the server exits gracefully.

    A success response is [{"ok": true, "op": ..., ...}]; a failure is
    [{"ok": false, "error": {"code", "message"}}] with code [proto]
    (malformed JSON / unknown op / bad version), [input] (program or
    annotations don't parse, unknown root — the CLI's exit-2 class),
    [analysis] (the analysis itself failed — exit-1 class), [timeout], or
    [internal]. A request failure never terminates the server. *)

type config = {
  pool : Ipet_par.Pool.t option;  (** shared solver pool *)
  cache : Cache.t option;         (** [None]: caching disabled *)
  default_timeout_ms : int option;
      (** applied to analyze requests that don't set [timeout_ms] *)
}

type outcome = Continue | Shutdown

val handle_line : config -> string -> string * outcome
(** Process one request line, returning the response line (no trailing
    newline) and whether the server should keep going. Total: every
    exception is mapped to an error response. *)

val version : int
(** Protocol version this server speaks. *)
