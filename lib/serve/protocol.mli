(** The serve wire protocol, version 1.

    Transport is line-delimited JSON over a unix-domain socket: one request
    per line, one response line per request, in order. Every request is an
    object with ["v"] (protocol version, currently [1]) and ["op"], plus an
    optional ["id"] echoed verbatim in the response so clients can multiplex,
    and an optional ["trace"] string — a client-generated request id echoed
    verbatim in {e every} response, including errors, and used to tag the
    request's span track, flight-recorder event and access-log line. A
    request without ["trace"] is tagged [req-N] (N = server request count).

    Operations:
    - [hello] — handshake; returns server name, {!Version.version},
      protocol version and cache-key {!Key.schema};
    - [analyze] — ["source"] (MC program text, or an assembly listing when
      ["lang"] is ["asm"]), optional ["mach"] (machine-model id, [e32] by
      default; an unknown id is a [proto] error), optional ["annotations"]
      (annotation-file text: [root]/[loop]/[constr] lines), optional
      ["root"] override, optional ["options"] object: [use_cache] (default
      true), [timeout_ms], [first_miss] (first-miss refinement), [icache]
      [{size_bytes, line_bytes, miss_penalty}] (default the machine's own
      fetch configuration — the paper's i960KB cache for [e32]),
      [trace_spans] (default false — when true and span tracing is
      enabled on the server, the response carries the request's completed
      span tree as ["trace_spans"]);
    - [stats] — server totals (requests, errors, certificate checks and
      rejections, flight-recorder event count) and cache occupancy
      (entries, bytes, cap, hits, misses, evictions, eviction bytes);
    - [metrics] — live registry snapshot: ["metrics"] (the
      {!Ipet_obs.Sink.metrics_json} document, as JSON) and ["prometheus"]
      (the text exposition, as one string);
    - [recent] — the newest flight-recorder events (optional ["n"],
      default 50), newest first, each with its monotonic ["seq"];
    - [shutdown] — acknowledge, then the server exits gracefully.

    A success response is [{"ok": true, "op": ..., ...}]; a failure is
    [{"ok": false, "error": {"code", "message"}}] with code [proto]
    (malformed JSON / unknown op / bad version), [input] (program or
    annotations don't parse, unknown root — the CLI's exit-2 class),
    [analysis] (the analysis itself failed — exit-1 class), [timeout], or
    [internal]. A request failure never terminates the server.

    Every request — success or failure — is timed into the
    [serve.latency_seconds] histogram (labelled by op), recorded in the
    flight recorder, and appended to the access log when one is
    configured; none of that depends on span tracing being enabled. *)

type totals = {
  mutable requests : int;
  mutable errors : int;
  mutable certs_checked : int;
  mutable certs_rejected : int;
}

type config = {
  pool : Ipet_par.Pool.t option;  (** shared solver pool *)
  cache : Cache.t option;         (** [None]: caching disabled *)
  default_timeout_ms : int option;
      (** applied to analyze requests that don't set [timeout_ms] *)
  flight : Ipet_obs.Flight.t;    (** always-on per-request recorder *)
  access : Access_log.t option;  (** JSONL access log, when configured *)
  totals : totals;
}

val make :
  ?pool:Ipet_par.Pool.t ->
  ?cache:Cache.t ->
  ?default_timeout_ms:int ->
  ?access:Access_log.t ->
  ?flight_cap:int ->
  unit ->
  config
(** Build a config with a fresh flight recorder (ring capacity
    [flight_cap], default 512) and zeroed totals. *)

type outcome = Continue | Shutdown

val handle_line : config -> string -> string * outcome
(** Process one request line, returning the response line (no trailing
    newline) and whether the server should keep going. Total: every
    exception is mapped to an error response. *)

val version : int
(** Protocol version this server speaks. *)
