(** Incremental (cache-aware) analysis for the server.

    The monolithic {!Ipet.Analysis.analyze} expands every call path and
    solves one whole-program ILP — the right shape for a one-shot CLI run,
    the wrong shape for a daemon asked to re-analyze a program after a
    one-function edit. This module decomposes the analysis into {e units}
    keyed by {!Key} and persists each unit's result in a {!Cache}:

    - {b per-function units} (the common case): every function reachable
      from the root is solved in isolation with its entry edge pinned to 1,
      callees before callers; a call block's objective coefficient folds in
      the callee's per-entry extreme, so the root's per-entry bound is the
      whole-program bound. Because loop-bound constraints are homogeneous
      in the entry count ([lo·e ≤ iter ≤ hi·e]), the per-entry polytope of
      a function instance is the projection of the monolithic one — the
      decomposition reproduces the monolithic bounds exactly whenever the
      monolithic ILP decomposes by instance (empirically: on the whole
      benchmark suite the two agree). A request that edits one function
      re-solves only the units whose keys changed — typically exactly one.
    - {b one whole-program unit} (fallback): functionality constraints and
      the first-miss refinement couple flow variables across functions, so
      those requests run the monolithic analysis and cache it as a single
      unit keyed by {!Key.program_key}.

    Witness counts are aggregated callers-first: a function's per-entry
    witness counts are scaled by the number of entries its callers'
    witnesses induce. All report content is deterministic — a warm re-run
    of an identical request is byte-identical to the cold run. *)

exception Timeout
(** Raised (between unit solves — cooperative, never mid-simplex) when the
    [deadline] passes. *)

type stats = {
  units_total : int;   (** analysis units this request decomposed into *)
  units_cached : int;  (** served from the cache *)
  units_solved : int;  (** actually (re-)solved *)
  ilp_solves : int;    (** ILP solver invocations performed *)
  warm_lp_hits : int;
      (** branch-and-bound nodes re-optimized from a parent basis across
          those solves (0 on a fully cached request) *)
  simplex_pivots : int;
      (** simplex pivots spent on this request's fresh solves *)
  certs_checked : int;
      (** trusted-checker validations run — two per fresh solve (one per
          extreme) and two per cache hit: every bound the engine returns
          was just proven, whether it was computed or recalled *)
  certs_rejected : int;
      (** validations that failed. A rejected fresh certificate aborts the
          request ({!Ipet.Analysis.Analysis_error}); a rejected cached one
          drops the entry and re-solves, so it is self-healing *)
}

val analyze :
  ?pool:Ipet_par.Pool.t ->
  ?cache:Cache.t ->
  ?deadline:float ->
  Ipet.Analysis.spec ->
  Json.t * stats
(** Analyze a request, consulting and filling [cache] (no caching when
    omitted). [deadline] is an absolute {!Unix.gettimeofday} instant. The
    returned JSON is the report — schema, root, unit kind, [bcet]/[wcet]
    cycles, witness counts and binding constraints per extreme, and the
    per-unit summary table (name, key, per-entry bounds, entry counts).
    @raise Ipet.Analysis.Analysis_error as the monolithic analysis would
    (missing loop bounds, infeasible constraint sets, ...).
    @raise Timeout when the deadline passes. *)
