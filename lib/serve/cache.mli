(** Persistent content-addressed result store with size-capped LRU
    eviction.

    Each entry is one JSON file under the cache directory, named by its
    {!Key} digest; entries are immutable (same key, same content), so a
    crashed or concurrent writer can at worst leave a stale temp file,
    never a corrupt entry (writes go through rename). An index file
    records recency and sizes so LRU survives restarts; a missing or
    damaged index is rebuilt from the entry files, and an entry file that
    fails to parse is treated as a miss and deleted.

    Hit/miss/eviction counts are exposed via {!stats} and published as
    [serve.cache.*] metrics in the global {!Ipet_obs} registry. *)

type t

val create : dir:string -> cap_bytes:int -> t
(** Open (creating the directory if needed) a cache capped at [cap_bytes]
    of entry-file bytes. Stale ["*.tmp"] files left by a crashed writer
    are swept on open — they are rename-source temporaries, never valid
    entries. *)

val get : t -> string -> Json.t option
(** Look up a key, refreshing its recency. *)

val put : t -> string -> Json.t -> unit
(** Store a value under a key, evicting least-recently-used entries while
    the cap is exceeded (the new entry itself is never evicted by its own
    insertion). Idempotent for an existing key. *)

val flush : t -> unit
(** Persist the index file. Also called by {!put}. *)

val remove : t -> string -> unit
(** Delete an entry (no-op for an absent key). Used by the incremental
    engine to drop a cached result whose stored certificate fails
    validation, so the next lookup misses and re-solves. *)

type stats = {
  entries : int;
  bytes : int;       (** sum of entry-file sizes *)
  hits : int;
  misses : int;
  evictions : int;
  eviction_bytes : int;  (** entry-file bytes reclaimed by eviction *)
}

val stats : t -> stats

val dir : t -> string
val cap_bytes : t -> int
