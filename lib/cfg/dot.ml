module Prog = Ipet_isa.Prog

let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cfg_to_dot ?(highlight_loops = []) ?block_info ?hot cfg =
  let buf = Buffer.create 256 in
  let func = Cfg.func cfg in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" func.Prog.name);
  Buffer.add_string buf "  node [shape=box fontname=monospace];\n";
  for b = 0 to Cfg.nblocks cfg - 1 do
    let in_header =
      List.exists (fun (l : Loops.loop) -> l.Loops.header = b) highlight_loops
    in
    let is_hot = match hot with Some f -> f b | None -> false in
    let line = func.Prog.blocks.(b).Prog.src_line in
    let label =
      if line > 0 then Printf.sprintf "B%d\\nline %d" b line
      else Printf.sprintf "B%d" b
    in
    let label =
      match block_info with
      | None -> label
      | Some info ->
        List.fold_left
          (fun acc l -> acc ^ "\\n" ^ escape_label l)
          label (info b)
    in
    let style =
      if is_hot then " style=filled fillcolor=lightsalmon"
      else if in_header then " style=filled fillcolor=lightblue"
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  B%d [label=\"%s\"%s];\n" b label style)
  done;
  List.iter
    (fun { Cfg.src; dst } ->
      let back =
        List.exists
          (fun (l : Loops.loop) -> List.mem (src, dst) l.Loops.back_edges)
          highlight_loops
      in
      Buffer.add_string buf
        (Printf.sprintf "  B%d -> B%d%s;\n" src dst
           (if back then " [color=red]" else "")))
    (Cfg.edges cfg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let callgraph_to_dot cg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter
    (fun (s : Callgraph.site) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"B%d.%d\"];\n" s.Callgraph.caller
           s.Callgraph.callee s.Callgraph.block s.Callgraph.occurrence))
    (Callgraph.sites cg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
