(** Graphviz export of CFGs, for documentation and debugging. *)

val cfg_to_dot :
  ?highlight_loops:Loops.loop list ->
  ?block_info:(int -> string list) ->
  ?hot:(int -> bool) ->
  Cfg.t ->
  string
(** [block_info b] contributes extra label lines for block [b] (e.g. WCET
    witness counts and cost bounds); [hot b] fills the node when the block
    lies on the worst-case path. Both default to the bare rendering. *)

val callgraph_to_dot : Callgraph.t -> string
