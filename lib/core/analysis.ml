module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout
module Cost = Ipet_machine.Cost
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine
module L = Ipet_lp.Linexpr
module Lp = Ipet_lp.Lp_problem
module Ilp = Ipet_lp.Ilp
module Rat = Ipet_num.Rat
module Obs = Ipet_obs.Obs
module Pool = Ipet_par.Pool

exception Analysis_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Analysis_error s)) fmt

type spec = {
  prog : P.t;
  root : string;
  mach : Machine.t;
  cache : Icache.config;
  dcache : Icache.config option;
  loop_bounds : Annotation.t list;
  functional : Functional.t list;
  first_miss_refinement : bool;
  presolve : bool;
}

let spec ?(mach = Machine.e32) ?cache ?dcache ?(loop_bounds = [])
    ?(functional = []) ?(first_miss_refinement = false) ?(presolve = true)
    ~root prog =
  let cache = match cache with Some c -> c | None -> Machine.fetch mach in
  { prog; root; mach; cache; dcache; loop_bounds; functional;
    first_miss_refinement; presolve }

type solver_stats = {
  sets_total : int;
  sets_pruned : int;
  sets_solved : int;
  sets_infeasible : int;
  lp_calls : int;
  bnb_nodes : int;
  simplex_pivots : int;
  refactorizations : int;
  warm_hits : int;
  warm_misses : int;
  all_first_lp_integral : bool;
  presolve_vars_before : int;
  presolve_vars_after : int;
  presolve_constrs_before : int;
  presolve_constrs_after : int;
  presolve_rounds : int;
}

type extreme = {
  cycles : int;
  counts : ((string * int) * int) list;
  binding : string list;
}

type certificate = {
  cert : Ipet_cert.Certificate.t;
  verdict : Ipet_cert.Checker.verdict;
  emit_seconds : float;
  check_seconds : float;
}

type result = {
  wcet : extreme;
  bcet : extreme;
  wcet_stats : solver_stats;
  bcet_stats : solver_stats;
  wcet_cert : certificate option;
  bcet_cert : certificate option;
}

let instances spec = Structural.instances spec.prog ~root:spec.root

let structural_constraints spec =
  Structural.constraints spec.prog (instances spec)

let block_costs spec ~func =
  let layout = Layout.make spec.prog in
  Cost.func_bounds ~mach:spec.mach ?dcache:spec.dcache ~prog:spec.prog
    spec.cache layout (P.find_func spec.prog func)

(* The Section IV refinement: inside a loop whose code provably stays
   resident (region fits the cache, hence no self-conflicts, and the loop
   makes no calls), a block's lines can miss at most once per loop entry.
   The worst-case objective then charges the block's warm cost per
   execution plus its full line-fill cost per entry of the outermost such
   loop, expressed on the loop's entry-edge variables. *)
let refinement_plan spec layout (func : P.func) =
  let cfg = Ipet_cfg.Cfg.of_func func in
  let dom = Ipet_cfg.Dominators.compute cfg in
  let loops = Ipet_cfg.Loops.detect cfg dom in
  let eligible (l : Ipet_cfg.Loops.loop) =
    let no_calls = ref true in
    let lo_addr = ref max_int and hi_addr = ref 0 in
    Array.iteri
      (fun b inside ->
        if inside then begin
          if P.calls_of_block func.P.blocks.(b) <> [] then no_calls := false;
          let addr = Layout.block_addr layout ~func:func.P.name ~block:b in
          let size = Layout.block_size_bytes layout ~func:func.P.name ~block:b in
          if addr < !lo_addr then lo_addr := addr;
          if addr + size > !hi_addr then hi_addr := addr + size
        end)
      l.Ipet_cfg.Loops.body;
    let (module M : Machine.MACHINE) = spec.mach in
    !no_calls && M.resident_ok ~fetch:spec.cache ~lo:!lo_addr ~hi:!hi_addr
  in
  let eligible_loops = List.filter eligible loops in
  (* for each block, the outermost (smallest depth) eligible loop holding it *)
  let plan = Array.make (Array.length func.P.blocks) None in
  List.iter
    (fun (l : Ipet_cfg.Loops.loop) ->
      Array.iteri
        (fun b inside ->
          if inside then
            match plan.(b) with
            | Some (outer : Ipet_cfg.Loops.loop)
              when outer.Ipet_cfg.Loops.depth <= l.Ipet_cfg.Loops.depth -> ()
            | Some _ | None -> plan.(b) <- Some l)
        l.Ipet_cfg.Loops.body)
    eligible_loops;
  (cfg, plan)

(* objective: sum of cost * x over all blocks of all instances *)
let objective spec insts ~select =
  let layout = Layout.make spec.prog in
  let cost_table = Hashtbl.create 16 in
  let costs_for fname =
    match Hashtbl.find_opt cost_table fname with
    | Some c -> c
    | None ->
      let c =
        Cost.func_bounds ~mach:spec.mach ?dcache:spec.dcache ~prog:spec.prog
          spec.cache layout (P.find_func spec.prog fname)
      in
      Hashtbl.replace cost_table fname c;
      c
  in
  List.fold_left
    (fun acc (inst : Structural.instance) ->
      let fname = inst.Structural.func.P.name in
      let costs = costs_for fname in
      Array.fold_left
        (fun acc (b : P.block) ->
          let c = select costs.(b.P.id) in
          if c = 0 then acc
          else
            L.add acc
              (L.var ~coeff:(Rat.of_int c)
                 (Flowvar.name
                    (Flowvar.Block
                       { ctx = inst.Structural.ctx; func = fname; block = b.P.id }))))
        acc inst.Structural.func.P.blocks)
    L.zero insts

(* worst-case objective with the first-miss refinement enabled *)
let refined_wcet_objective spec insts =
  let layout = Layout.make spec.prog in
  let table = Hashtbl.create 16 in
  let for_func fname =
    match Hashtbl.find_opt table fname with
    | Some v -> v
    | None ->
      let func = P.find_func spec.prog fname in
      let costs =
        Cost.func_bounds ~mach:spec.mach ?dcache:spec.dcache ~prog:spec.prog
          spec.cache layout func
      in
      let cfg, plan = refinement_plan spec layout func in
      let v = (func, costs, cfg, plan) in
      Hashtbl.replace table fname v;
      v
  in
  List.fold_left
    (fun acc (inst : Structural.instance) ->
      let fname = inst.Structural.func.P.name in
      let ctx = inst.Structural.ctx in
      let _, costs, cfg, plan = for_func fname in
      Array.fold_left
        (fun acc (b : P.block) ->
          let x =
            Flowvar.var (Flowvar.Block { ctx; func = fname; block = b.P.id })
          in
          match plan.(b.P.id) with
          | None ->
            L.add acc (L.scale (Rat.of_int costs.(b.P.id).Cost.worst) x)
          | Some l ->
            (* warm cost per execution, plus a full line fill per entry of
               the resident loop *)
            let warm =
              L.scale (Rat.of_int costs.(b.P.id).Cost.worst_warm) x
            in
            let fill =
              costs.(b.P.id).Cost.worst - costs.(b.P.id).Cost.worst_warm
            in
            let entries =
              List.fold_left
                (fun e (src, dst) ->
                  L.add e
                    (Flowvar.var (Flowvar.Edge { ctx; func = fname; src; dst })))
                L.zero
                (Ipet_cfg.Loops.entry_edges cfg l)
            in
            L.add acc (L.add warm (L.scale (Rat.of_int fill) entries)))
        acc inst.Structural.func.P.blocks)
    L.zero insts

let wcet_objective spec =
  objective spec (instances spec) ~select:(fun b -> b.Cost.worst)

(* aggregate a solver assignment into per-(func, block) counts *)
let counts_of_assignment insts assignment =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (inst : Structural.instance) ->
      let fname = inst.Structural.func.P.name in
      Array.iter
        (fun (b : P.block) ->
          let name =
            Flowvar.name
              (Flowvar.Block
                 { ctx = inst.Structural.ctx; func = fname; block = b.P.id })
          in
          match List.assoc_opt name assignment with
          | Some v when not (Rat.is_zero v) ->
            let key = (fname, b.P.id) in
            let cur = Option.value ~default:0 (Hashtbl.find_opt table key) in
            Hashtbl.replace table key (cur + Rat.to_int v)
          | Some _ | None -> ())
        inst.Structural.func.P.blocks)
    insts;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare

(* constraints with zero slack at the optimum, excluding plain flow
   equations: these are the loop bounds and path facts that actually
   determine the reported extreme *)
let binding_constraints constraints assignment =
  let env = Ipet_lp.Simplex.assignment_env assignment in
  List.filter_map
    (fun (c : Lp.constr) ->
      match c.Lp.rel with
      | Lp.Eq -> None
      | Lp.Le | Lp.Ge ->
        if c.Lp.origin <> "" && Rat.is_zero (Ipet_lp.Linexpr.eval env c.Lp.expr)
        then Some c.Lp.origin
        else None)
    constraints
  |> List.sort_uniq compare

(* A canonical optimal witness: re-solve the winning ILP restricted to its
   optimal face (objective pinned to the optimal value) with a fixed
   pipeline. Optima of these flow systems are often degenerate — symmetric
   branches of equal cost admit several optimal vertices — and which one a
   simplex run lands on depends on incidental pivoting order. The face
   re-solve makes the reported witness a function of the problem and its
   optimal value only, so block counts are identical however the optimum
   was found (in particular, with and without presolve). *)
let canonical_witness ~pool problem value fallback =
  Obs.span "ilp.witness" (fun () ->
    let face =
      Lp.make problem.Lp.direction problem.Lp.objective
        (problem.Lp.constraints
         @ [ Lp.eq ~origin:"optimal-face" problem.Lp.objective
               (L.const value) ])
    in
    match Ilp.solve ~presolve:true ~pool face with
    | Ilp.Optimal { assignment; _ } -> assignment
    | Ilp.Infeasible _ | Ilp.Unbounded _ -> fallback)

(* Certify the winning bound: one un-presolved LP re-solve recovers exact
   dual multipliers for the original constraint set (Certify), then the
   trusted checker validates the whole package. Production failure is an
   analysis error — the ILP was just solved to optimality, so its LP
   relaxation cannot be infeasible or unbounded — while a rejected
   certificate is carried in the result for the caller to surface. *)
let certify_extreme ~dir_label problem value assignment =
  let produced, emit_seconds =
    Obs.timed (fun () ->
        Ipet_cert.Certify.certify problem ~witness:assignment ~bound:value)
  in
  match produced with
  | Error e -> fail "certificate production failed (%s): %s" dir_label e
  | Ok cert ->
    let verdict, check_seconds =
      Obs.timed (fun () -> Ipet_cert.Checker.check problem cert)
    in
    let labels = [ ("solver", dir_label) ] in
    Obs.observe ~labels "cert.emit_seconds" emit_seconds;
    Obs.observe ~labels "cert.check_seconds" check_seconds;
    Obs.add ~labels
      (match verdict with
       | Ipet_cert.Checker.Valid _ -> "cert.valid"
       | Ipet_cert.Checker.Invalid _ -> "cert.invalid")
      1;
    { cert; verdict; emit_seconds; check_seconds }

let solve_extreme spec insts base_constraints sets ~direction ~select ~pool
    ~certify =
  let obj =
    if spec.first_miss_refinement && direction = Lp.Maximize then
      refined_wcet_objective spec insts
    else objective spec insts ~select
  in
  let better a b =
    match direction with
    | Lp.Maximize -> Rat.compare a b > 0
    | Lp.Minimize -> Rat.compare a b < 0
  in
  let dir_label =
    match direction with Lp.Maximize -> "wcet" | Lp.Minimize -> "bcet"
  in
  let best = ref None in
  let lp_calls = ref 0 in
  let nodes = ref 0 in
  let pivots = ref 0 in
  let refactors = ref 0 in
  let whits = ref 0 in
  let wmisses = ref 0 in
  let infeasible = ref 0 in
  let all_first = ref true in
  let solved = ref 0 in
  let pv_before = ref 0 and pv_after = ref 0 in
  let pc_before = ref 0 and pc_after = ref 0 in
  let p_rounds = ref 0 in
  let record_presolve problem (stats : Ilp.stats) =
    match stats.Ilp.presolve with
    | Some p ->
      pv_before := !pv_before + p.Ipet_lp.Presolve.vars_before;
      pv_after := !pv_after + p.Ipet_lp.Presolve.vars_after;
      pc_before := !pc_before + p.Ipet_lp.Presolve.constrs_before;
      pc_after := !pc_after + p.Ipet_lp.Presolve.constrs_after;
      p_rounds := !p_rounds + p.Ipet_lp.Presolve.rounds
    | None ->
      let nv = Lp.num_variables problem and nc = Lp.num_constraints problem in
      pv_before := !pv_before + nv;
      pv_after := !pv_after + nv;
      pc_before := !pc_before + nc;
      pc_after := !pc_after + nc
  in
  (* Solving one set is pure: build the ILP, solve it, return everything
     the accumulation needs. Sets fan out over the pool — disjunctive DNF
     sets are independent problems — and the fold below walks the results
     in set order, so the incumbent choice, the statistics and the
     surfaced error are those of a sequential run whatever the job
     count. *)
  let solve_set set =
    let set_constraints =
      List.map
        (fun atom -> Functional.atom_to_constr spec.prog insts ~root:spec.root atom)
        set
    in
    let all_constraints = set_constraints @ base_constraints in
    let problem = Lp.make direction obj all_constraints in
    (problem, all_constraints, Ilp.solve ~presolve:spec.presolve ~pool problem)
  in
  let run_set (i, set) =
    if not (Obs.enabled ()) then solve_set set
    else
      Obs.span "ilp.solve"
        ~args:[ ("solver", dir_label); ("set", string_of_int i) ]
        (fun () ->
          let r, dt = Obs.timed (fun () -> solve_set set) in
          Obs.observe
            ~labels:
              [ ("solver", dir_label);
                ("domain", string_of_int (Ipet_par.Par_compat.domain_id ())) ]
            "lp.solve_seconds" dt;
          r)
  in
  let results =
    Pool.map_list pool run_set (List.mapi (fun i set -> (i, set)) sets)
  in
  List.iter
    (fun (problem, all_constraints, result) ->
      incr solved;
      match result with
      | Ilp.Optimal { value; assignment; stats } ->
        lp_calls := !lp_calls + stats.Ilp.lp_calls;
        nodes := !nodes + stats.Ilp.nodes;
        pivots := !pivots + stats.Ilp.pivots;
        refactors := !refactors + stats.Ilp.refactorizations;
        whits := !whits + stats.Ilp.warm_hits;
        wmisses := !wmisses + stats.Ilp.warm_misses;
        record_presolve problem stats;
        if not stats.Ilp.first_lp_integral then all_first := false;
        (match !best with
         | Some (v, _, _, _) when not (better value v) -> ()
         | Some _ | None ->
           best := Some (value, assignment, all_constraints, problem))
      | Ilp.Infeasible stats ->
        lp_calls := !lp_calls + stats.Ilp.lp_calls;
        nodes := !nodes + stats.Ilp.nodes;
        pivots := !pivots + stats.Ilp.pivots;
        refactors := !refactors + stats.Ilp.refactorizations;
        whits := !whits + stats.Ilp.warm_hits;
        wmisses := !wmisses + stats.Ilp.warm_misses;
        record_presolve problem stats;
        incr infeasible
      | Ilp.Unbounded _ ->
        fail
          "ILP unbounded while computing %s: a loop bound or functionality \
           constraint is missing"
          (match direction with Lp.Maximize -> "WCET" | Lp.Minimize -> "BCET"))
    results;
  match !best with
  | None -> fail "every functionality constraint set is infeasible"
  | Some (value, assignment, constraints, problem) ->
    let assignment = canonical_witness ~pool problem value assignment in
    let certificate =
      if certify then Some (certify_extreme ~dir_label problem value assignment)
      else None
    in
    let stats =
      { sets_total = 0;  (* filled by caller *)
        sets_pruned = 0;
        sets_solved = !solved;
        sets_infeasible = !infeasible;
        lp_calls = !lp_calls;
        bnb_nodes = !nodes;
        simplex_pivots = !pivots;
        refactorizations = !refactors;
        warm_hits = !whits;
        warm_misses = !wmisses;
        all_first_lp_integral = !all_first;
        presolve_vars_before = !pv_before;
        presolve_vars_after = !pv_after;
        presolve_constrs_before = !pc_before;
        presolve_constrs_after = !pc_after;
        presolve_rounds = !p_rounds }
    in
    ( { cycles = Rat.to_int value;
        counts = counts_of_assignment insts assignment;
        binding = binding_constraints constraints assignment },
      stats,
      certificate )

let prepare spec =
  Obs.span "analysis.prepare" ~args:[ ("root", spec.root) ] (fun () ->
  let insts = instances spec in
  let structural = Structural.constraints spec.prog insts in
  let loop_cs, unbounded = Annotation.constraints spec.prog insts spec.loop_bounds in
  (match unbounded with
   | [] -> ()
   | us ->
     let render (u : Annotation.unbounded) =
       if u.Annotation.header_line > 0 then
         Printf.sprintf "%s (header at line %d)" u.Annotation.ufunc
           u.Annotation.header_line
       else
         Printf.sprintf "%s (header block %d)" u.Annotation.ufunc
           u.Annotation.header_block
     in
     fail "missing loop bounds for: %s" (String.concat ", " (List.map render us)));
  let sets = Functional.dnf spec.functional in
  let total = List.length sets in
  let sets, pruned = Functional.prune_null_sets sets in
  if sets = [] then fail "all %d functionality constraint sets are null" total;
  (insts, structural @ loop_cs, sets, total, pruned))

let problems spec ~direction =
  let insts, base, sets, _, _ = prepare spec in
  let obj =
    match direction with
    | Lp.Maximize ->
      if spec.first_miss_refinement then refined_wcet_objective spec insts
      else objective spec insts ~select:(fun b -> b.Cost.worst)
    | Lp.Minimize -> objective spec insts ~select:(fun b -> b.Cost.best)
  in
  List.map
    (fun set ->
      let cs =
        List.map
          (fun atom -> Functional.atom_to_constr spec.prog insts ~root:spec.root atom)
          set
      in
      Lp.make direction obj (cs @ base))
    sets

let wcet_problems spec = problems spec ~direction:Lp.Maximize
let bcet_problems spec = problems spec ~direction:Lp.Minimize

let analyze ?pool ?(certify = false) spec =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let insts, base, sets, total, pruned = prepare spec in
  let wcet, wstats, wcet_cert =
    Obs.span "analysis.wcet" ~args:[ ("root", spec.root) ] (fun () ->
      solve_extreme spec insts base sets ~direction:Lp.Maximize
        ~select:(fun b -> b.Cost.worst) ~pool ~certify)
  in
  let bcet, bstats, bcet_cert =
    Obs.span "analysis.bcet" ~args:[ ("root", spec.root) ] (fun () ->
      solve_extreme spec insts base sets ~direction:Lp.Minimize
        ~select:(fun b -> b.Cost.best) ~pool ~certify)
  in
  { wcet;
    bcet;
    wcet_stats = { wstats with sets_total = total; sets_pruned = pruned };
    bcet_stats = { bstats with sets_total = total; sets_pruned = pruned };
    wcet_cert;
    bcet_cert }

let estimated_bound ?pool spec =
  let r = analyze ?pool spec in
  (r.bcet.cycles, r.wcet.cycles)

type sensitivity_row = {
  annotation : Annotation.t;
  base_wcet : int;
  tightened_wcet : int;  (** WCET with this loop's [hi] reduced by one *)
}

(* how much each loop bound is worth: re-solve the WCET with hi-1 for one
   annotation at a time (the exact discrete analogue of a shadow price) *)
let wcet_sensitivity ?pool spec =
  let base = (analyze ?pool spec).wcet.cycles in
  List.filteri (fun _ _ -> true) spec.loop_bounds
  |> List.map (fun (ann : Annotation.t) ->
    let tightened_wcet =
      if ann.Annotation.hi <= ann.Annotation.lo then base
      else begin
        let loop_bounds =
          List.map
            (fun (a : Annotation.t) ->
              if a == ann then { a with Annotation.hi = a.Annotation.hi - 1 }
              else a)
            spec.loop_bounds
        in
        match analyze ?pool { spec with loop_bounds } with
        | r -> r.wcet.cycles
        | exception Analysis_error _ -> base
      end
    in
    { annotation = ann; base_wcet = base; tightened_wcet })
