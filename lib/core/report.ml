module P = Ipet_isa.Prog

let annotated_source ~source prog ~func =
  let f = P.find_func prog func in
  let labels = Hashtbl.create 16 in
  Array.iter
    (fun (b : P.block) ->
      if b.P.src_line > 0 then begin
        let cur = Option.value ~default:[] (Hashtbl.find_opt labels b.P.src_line) in
        Hashtbl.replace labels b.P.src_line (cur @ [ b.P.id ])
      end)
    f.P.blocks;
  let buf = Buffer.create 256 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let tag =
        match Hashtbl.find_opt labels lineno with
        | Some blocks ->
          String.concat " " (List.map (Printf.sprintf "x%d") blocks)
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "%8s |%4d| %s\n" tag lineno line))
    lines;
  Buffer.contents buf

let constraints_listing constraints =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string buf (Format.asprintf "%a\n" Ipet_lp.Lp_problem.pp_constr c))
    constraints;
  Buffer.contents buf

let bound_summary (r : Analysis.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "estimated bound: [%d, %d] cycles\n" r.Analysis.bcet.Analysis.cycles
       r.Analysis.wcet.Analysis.cycles);
  Buffer.add_string buf "worst-case block counts:\n";
  List.iter
    (fun ((func, block), count) ->
      Buffer.add_string buf (Printf.sprintf "  %s B%d: %d\n" func block count))
    r.Analysis.wcet.Analysis.counts;
  if r.Analysis.wcet.Analysis.binding <> [] then begin
    Buffer.add_string buf "binding constraints at the WCET:\n";
    List.iter
      (fun origin -> Buffer.add_string buf (Printf.sprintf "  %s\n" origin))
      r.Analysis.wcet.Analysis.binding
  end;
  let s = r.Analysis.wcet_stats in
  Buffer.add_string buf
    (Printf.sprintf
       "constraint sets: %d total, %d pruned as null, %d solved (%d infeasible)\n"
       s.Analysis.sets_total s.Analysis.sets_pruned s.Analysis.sets_solved
       s.Analysis.sets_infeasible);
  Buffer.add_string buf
    (Printf.sprintf "LP calls: %d; first relaxation integral in every ILP: %b\n"
       s.Analysis.lp_calls s.Analysis.all_first_lp_integral);
  if s.Analysis.presolve_vars_before > s.Analysis.presolve_vars_after then
    Buffer.add_string buf
      (Printf.sprintf "presolve: %d -> %d variables, %d -> %d constraints\n"
         s.Analysis.presolve_vars_before s.Analysis.presolve_vars_after
         s.Analysis.presolve_constrs_before s.Analysis.presolve_constrs_after);
  Buffer.contents buf

let lp_stats (r : Analysis.result) =
  let buf = Buffer.create 256 in
  let pct before after =
    if before = 0 then 0.0
    else 100.0 *. float_of_int (before - after) /. float_of_int before
  in
  let section name (s : Analysis.solver_stats) =
    Buffer.add_string buf (Printf.sprintf "%s solver:\n" name);
    Buffer.add_string buf
      (Printf.sprintf "  ILPs solved:    %d (%d infeasible)\n"
         s.Analysis.sets_solved s.Analysis.sets_infeasible);
    Buffer.add_string buf
      (Printf.sprintf "  LP calls:       %d (first relaxation integral: %b)\n"
         s.Analysis.lp_calls s.Analysis.all_first_lp_integral);
    Buffer.add_string buf
      (Printf.sprintf "  variables:      %d -> %d  (-%.0f%%)\n"
         s.Analysis.presolve_vars_before s.Analysis.presolve_vars_after
         (pct s.Analysis.presolve_vars_before s.Analysis.presolve_vars_after));
    Buffer.add_string buf
      (Printf.sprintf "  constraints:    %d -> %d  (-%.0f%%)\n"
         s.Analysis.presolve_constrs_before s.Analysis.presolve_constrs_after
         (pct s.Analysis.presolve_constrs_before
            s.Analysis.presolve_constrs_after));
    Buffer.add_string buf
      (Printf.sprintf "  presolve rounds: %d\n" s.Analysis.presolve_rounds)
  in
  section "WCET" r.Analysis.wcet_stats;
  section "BCET" r.Analysis.bcet_stats;
  Buffer.contents buf
