module P = Ipet_isa.Prog

let annotated_source ~source prog ~func =
  let f = P.find_func prog func in
  let labels = Hashtbl.create 16 in
  Array.iter
    (fun (b : P.block) ->
      if b.P.src_line > 0 then begin
        let cur = Option.value ~default:[] (Hashtbl.find_opt labels b.P.src_line) in
        Hashtbl.replace labels b.P.src_line (cur @ [ b.P.id ])
      end)
    f.P.blocks;
  let buf = Buffer.create 256 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let tag =
        match Hashtbl.find_opt labels lineno with
        | Some blocks ->
          String.concat " " (List.map (Printf.sprintf "x%d") blocks)
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "%8s |%4d| %s\n" tag lineno line))
    lines;
  Buffer.contents buf

let constraints_listing constraints =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Buffer.add_string buf (Format.asprintf "%a\n" Ipet_lp.Lp_problem.pp_constr c))
    constraints;
  Buffer.contents buf

let bound_summary (r : Analysis.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "estimated bound: [%d, %d] cycles\n" r.Analysis.bcet.Analysis.cycles
       r.Analysis.wcet.Analysis.cycles);
  Buffer.add_string buf "worst-case block counts:\n";
  List.iter
    (fun ((func, block), count) ->
      Buffer.add_string buf (Printf.sprintf "  %s B%d: %d\n" func block count))
    r.Analysis.wcet.Analysis.counts;
  if r.Analysis.wcet.Analysis.binding <> [] then begin
    Buffer.add_string buf "binding constraints at the WCET:\n";
    List.iter
      (fun origin -> Buffer.add_string buf (Printf.sprintf "  %s\n" origin))
      r.Analysis.wcet.Analysis.binding
  end;
  let s = r.Analysis.wcet_stats in
  Buffer.add_string buf
    (Printf.sprintf
       "constraint sets: %d total, %d pruned as null, %d solved (%d infeasible)\n"
       s.Analysis.sets_total s.Analysis.sets_pruned s.Analysis.sets_solved
       s.Analysis.sets_infeasible);
  Buffer.add_string buf
    (Printf.sprintf "LP calls: %d; first relaxation integral in every ILP: %b\n"
       s.Analysis.lp_calls s.Analysis.all_first_lp_integral);
  if s.Analysis.presolve_vars_before > s.Analysis.presolve_vars_after then
    Buffer.add_string buf
      (Printf.sprintf "presolve: %d -> %d variables, %d -> %d constraints\n"
         s.Analysis.presolve_vars_before s.Analysis.presolve_vars_after
         s.Analysis.presolve_constrs_before s.Analysis.presolve_constrs_after);
  (* only present under --certify, so the default output (and the golden
     tables built from it) is untouched *)
  let cert_line side (c : Analysis.certificate) =
    Buffer.add_string buf
      (Format.asprintf
         "%s certificate: %a; %d duals, %d witness vars (emit %.1f ms, check %.2f ms)\n"
         side Ipet_cert.Checker.pp_verdict c.Analysis.verdict
         (Array.length c.Analysis.cert.Ipet_cert.Certificate.duals)
         (List.length c.Analysis.cert.Ipet_cert.Certificate.witness)
         (1000. *. c.Analysis.emit_seconds)
         (1000. *. c.Analysis.check_seconds))
  in
  Option.iter (cert_line "wcet") r.Analysis.wcet_cert;
  Option.iter (cert_line "bcet") r.Analysis.bcet_cert;
  Buffer.contents buf

module Metrics = Ipet_obs.Metrics
module Sink = Ipet_obs.Sink

let record_lp_metrics registry (r : Analysis.result) =
  let side solver (s : Analysis.solver_stats) =
    let labels = [ ("solver", solver) ] in
    let set name v = Metrics.set_gauge_int registry ~labels name v in
    set "lp.sets_total" s.Analysis.sets_total;
    set "lp.sets_pruned" s.Analysis.sets_pruned;
    set "lp.sets_solved" s.Analysis.sets_solved;
    set "lp.sets_infeasible" s.Analysis.sets_infeasible;
    set "lp.calls" s.Analysis.lp_calls;
    set "lp.bnb_nodes" s.Analysis.bnb_nodes;
    set "lp.simplex_pivots" s.Analysis.simplex_pivots;
    set "lp.refactorizations" s.Analysis.refactorizations;
    set "lp.warm_hits" s.Analysis.warm_hits;
    set "lp.warm_misses" s.Analysis.warm_misses;
    set "lp.first_integral" (if s.Analysis.all_first_lp_integral then 1 else 0);
    set "lp.presolve_vars_before" s.Analysis.presolve_vars_before;
    set "lp.presolve_vars_after" s.Analysis.presolve_vars_after;
    set "lp.presolve_constrs_before" s.Analysis.presolve_constrs_before;
    set "lp.presolve_constrs_after" s.Analysis.presolve_constrs_after;
    set "lp.presolve_rounds" s.Analysis.presolve_rounds
  in
  side "wcet" r.Analysis.wcet_stats;
  side "bcet" r.Analysis.bcet_stats;
  let cert_side solver (c : Analysis.certificate option) =
    match c with
    | None -> ()
    | Some c ->
      let labels = [ ("solver", solver) ] in
      let set name v = Metrics.set_gauge_int registry ~labels name v in
      set "cert.valid"
        (match c.Analysis.verdict with
         | Ipet_cert.Checker.Valid _ -> 1
         | Ipet_cert.Checker.Invalid _ -> 0);
      set "cert.gap_closed"
        (if Ipet_cert.Checker.gap_closed c.Analysis.verdict then 1 else 0);
      set "cert.emit_micros"
        (int_of_float (1e6 *. c.Analysis.emit_seconds));
      set "cert.check_micros"
        (int_of_float (1e6 *. c.Analysis.check_seconds))
  in
  cert_side "wcet" r.Analysis.wcet_cert;
  cert_side "bcet" r.Analysis.bcet_cert

let lp_stats (r : Analysis.result) =
  (* a fresh registry so repeated reports (wcet_sensitivity re-solves, the
     suite runner) never accumulate into the process-wide one *)
  let registry = Metrics.create () in
  record_lp_metrics registry r;
  Sink.human registry

type attribution_row = {
  attr_func : string;
  attr_block : int;
  wcet_count : int;
  wcet_cost : int;
  wcet_cycles : int;
  sim_count : int;
  sim_cycles : int;
  gap : int;
}

let attribution ~wcet_counts ~wcet_cost ~sim_counts ~sim_cycles =
  let tbl = Hashtbl.create 64 in
  let get key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref (0, 0, 0) in
      Hashtbl.replace tbl key r;
      r
  in
  List.iter
    (fun (key, n) ->
      let r = get key in
      let _, sc, scy = !r in
      r := (n, sc, scy))
    wcet_counts;
  List.iter
    (fun (key, n) ->
      let r = get key in
      let wc, _, scy = !r in
      r := (wc, n, scy))
    sim_counts;
  List.iter
    (fun (key, n) ->
      let r = get key in
      let wc, sc, _ = !r in
      r := (wc, sc, n))
    sim_cycles;
  let rows =
    Hashtbl.fold
      (fun (func, block) r acc ->
        let wc, sc, scy = !r in
        let cost = wcet_cost func block in
        let wcy = wc * cost in
        { attr_func = func; attr_block = block; wcet_count = wc;
          wcet_cost = cost; wcet_cycles = wcy; sim_count = sc;
          sim_cycles = scy; gap = wcy - scy }
        :: acc)
      tbl []
  in
  List.sort
    (fun a b ->
      match compare b.gap a.gap with
      | 0 -> compare (a.attr_func, a.attr_block) (b.attr_func, b.attr_block)
      | c -> c)
    rows

let pp_attribution ~wcet ~simulated rows =
  let buf = Buffer.create 512 in
  let total_gap = wcet - simulated in
  Buffer.add_string buf
    (Printf.sprintf "WCET estimate: %d cycles; simulated: %d cycles; gap: %d\n"
       wcet simulated total_gap);
  Buffer.add_string buf
    (Printf.sprintf "%-16s %6s | %9s %6s %10s | %9s %10s | %10s %6s\n"
       "block" "" "wcet cnt" "cost" "cycles" "sim cnt" "cycles" "gap" "share");
  List.iter
    (fun r ->
      if r.wcet_cycles <> 0 || r.sim_cycles <> 0 then begin
        let share =
          if total_gap <= 0 then 0.0
          else 100.0 *. float_of_int r.gap /. float_of_int total_gap
        in
        Buffer.add_string buf
          (Printf.sprintf "%-16s B%-5d | %9d %6d %10d | %9d %10d | %10d %5.1f%%\n"
             r.attr_func r.attr_block r.wcet_count r.wcet_cost r.wcet_cycles
             r.sim_count r.sim_cycles r.gap share)
      end)
    rows;
  Buffer.contents buf
