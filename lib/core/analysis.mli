(** The IPET timing analysis — the paper's main algorithm.

    For a program, a root function, a micro-architecture configuration,
    loop-bound annotations and optional functionality constraints, the
    analysis:

    + expands per-call-site instances and derives structural constraints;
    + computes per-block cost bounds [c_i] from the machine model;
    + expands the functionality constraints to DNF and prunes null sets;
    + for every surviving conjunctive set, solves one ILP maximizing (WCET)
      or minimizing (BCET) [Σ c_i·x_i];
    + reports the extreme bound over all sets, the witness block counts, and
      the solver statistics of Section VI.

    An estimated bound computed this way always encloses any simulated
    execution of the program whose loop iterations respect the annotations
    (soundness, Fig. 1). *)

exception Analysis_error of string

type spec = {
  prog : Ipet_isa.Prog.t;
  root : string;
  mach : Ipet_machine.Machine.t;
      (** the target micro-architecture supplying issue/stall/terminator
          timings, the default fetch configuration, and the first-miss
          residency predicate (default {!Ipet_machine.Machine.e32}) *)
  cache : Ipet_machine.Icache.config;
  dcache : Ipet_machine.Icache.config option;
      (** when set, loads are bounded by data-cache hit/miss times instead
          of the flat memory latency *)
  loop_bounds : Annotation.t list;
  functional : Functional.t list;
  first_miss_refinement : bool;
      (** Section IV's proposed refinement: inside a loop whose code
          provably stays cache-resident (its address range fits the cache
          and it makes no calls), charge each block its all-hit worst cost
          per execution plus one full line fill per {e loop entry} instead
          of per iteration. Off by default (the paper's baseline model). *)
  presolve : bool;
      (** run {!Ipet_lp.Presolve} on every ILP before the branch and bound
          (on by default); semantics-preserving, only affects solve time
          and the reduction statistics *)
}

val spec :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  ?dcache:Ipet_machine.Icache.config ->
  ?loop_bounds:Annotation.t list ->
  ?functional:Functional.t list ->
  ?first_miss_refinement:bool ->
  ?presolve:bool ->
  root:string ->
  Ipet_isa.Prog.t ->
  spec
(** [cache] defaults to the machine's own fetch configuration
    ({!Ipet_machine.Machine.fetch}); passing it explicitly overrides the
    geometry while keeping the machine's timings. *)

type solver_stats = {
  sets_total : int;      (** conjunctive sets after DNF expansion *)
  sets_pruned : int;     (** removed as trivially null *)
  sets_solved : int;     (** ILPs actually handed to the solver *)
  sets_infeasible : int; (** sets the simplex proved empty *)
  lp_calls : int;        (** total LP relaxations over all ILPs *)
  bnb_nodes : int;       (** branch-and-bound nodes over all ILPs *)
  simplex_pivots : int;  (** simplex pivots over all LP calls *)
  refactorizations : int;
      (** basis refactorizations over all LP calls (the revised simplex
          rebuilds its eta-file factorization periodically) *)
  warm_hits : int;
      (** branch-and-bound children re-optimized from the parent basis by
          the dual simplex *)
  warm_misses : int;     (** children that needed a cold fallback solve *)
  all_first_lp_integral : bool;
      (** the paper's observation: every first relaxation was integral *)
  presolve_vars_before : int;
      (** ILP variables handed to presolve, summed over the solved sets;
          when presolve is disabled, the raw problem sizes (and the
          [_after] fields repeat them) *)
  presolve_vars_after : int;   (** variables left for the simplex *)
  presolve_constrs_before : int;
  presolve_constrs_after : int;
  presolve_rounds : int;       (** total presolve fixpoint rounds *)
}

type extreme = {
  cycles : int;
  counts : ((string * int) * int) list;
      (** witness execution counts per (function, block), aggregated over
          instances; zero counts omitted. The witness is canonical: the
          winning ILP is re-solved on its optimal face with a fixed
          pipeline, so among alternate optima the reported counts depend
          only on the problem and the extreme value — not on solver
          configuration such as {!spec.presolve} *)
  binding : string list;
      (** origins of the inequality constraints that are tight at the
          optimum — the loop bounds and path facts that determine this
          extreme (flow equations excluded) *)
}

type certificate = {
  cert : Ipet_cert.Certificate.t;
      (** duals, witness, and digest for the winning constraint set's
          ILP — the problem the reported bound came from *)
  verdict : Ipet_cert.Checker.verdict;
      (** the trusted checker's validation, run eagerly at production *)
  emit_seconds : float;  (** certificate production time (one LP re-solve) *)
  check_seconds : float; (** trusted-checker validation time *)
}

type result = {
  wcet : extreme;
  bcet : extreme;
  wcet_stats : solver_stats;
  bcet_stats : solver_stats;
  wcet_cert : certificate option;  (** present when [certify] was set *)
  bcet_cert : certificate option;
}

val analyze : ?pool:Ipet_par.Pool.t -> ?certify:bool -> spec -> result
(** [pool] (default {!Ipet_par.Pool.default}) fans the disjunctive
    constraint sets out across domains and parallelizes each set's
    branch-and-bound ({!Ipet_lp.Ilp.solve}). The result — bounds,
    witnesses, and every statistic — is bit-identical for any pool size.
    [certify] (default [false]) additionally emits an exact duality
    certificate per extreme (see {!Ipet_cert.Certify}) and validates it
    with the trusted checker; check time and verdicts are surfaced as
    [cert.*] observability metrics.
    @raise Analysis_error when a loop lacks a bound annotation, a
    functionality constraint does not resolve, every constraint set is
    infeasible, the ILP is unbounded, or certificate production fails. *)

val estimated_bound : ?pool:Ipet_par.Pool.t -> spec -> int * int
(** [(bcet, wcet)] — the paper's estimated bound [[t_min, t_max]]. *)

type sensitivity_row = {
  annotation : Annotation.t;
  base_wcet : int;
  tightened_wcet : int;  (** WCET with this loop's [hi] reduced by one *)
}

val wcet_sensitivity : ?pool:Ipet_par.Pool.t -> spec -> sensitivity_row list
(** The discrete shadow price of each loop-bound annotation: how much the
    WCET drops if the bound is tightened by one iteration. Zero-impact
    bounds are off the critical path; the largest drop tells the user which
    loop deserves a more precise annotation (or faster code). Re-solves one
    ILP per annotation. *)

(** {1 Introspection} (used by the figure regeneration and the CLI) *)

val structural_constraints : spec -> Ipet_lp.Lp_problem.constr list
val instances : spec -> Structural.instance list

val wcet_objective : spec -> Ipet_lp.Linexpr.t
(** The expression (1): [Σ c_i·x_i] with worst-case costs. *)

val wcet_problems : spec -> Ipet_lp.Lp_problem.t list
(** The complete ILPs the WCET computation solves, one per surviving
    conjunctive constraint set — exportable with {!Ipet_lp.Lp_format}.
    @raise Analysis_error under the same conditions as {!analyze}. *)

val bcet_problems : spec -> Ipet_lp.Lp_problem.t list
(** The minimization counterparts of {!wcet_problems}. *)

val block_costs : spec -> func:string -> Ipet_machine.Cost.bounds array
(** Per-block cost bounds used for the objective. *)
