(** Structural constraints — Section III.B.

    Derived automatically from the CFG: at every basic block, the execution
    count equals both the inflow and the outflow (constraints (2)–(9) of the
    paper); the root's entry edge is pinned to 1 (constraint (13)); every
    call site's f-edge count equals the count of the block containing it,
    and feeds the entry edge of the callee's per-site instance (constraints
    (10)–(12) via virtual inlining). *)

type instance = {
  ctx : Flowvar.ctx;
  func : Ipet_isa.Prog.func;
  sites : (Callsite.t * string * Flowvar.ctx) list;
      (** call sites of this instance: site, callee name, and the callee
          instance's context *)
}

val instances : Ipet_isa.Prog.t -> root:string -> instance list
(** Every function instance reachable from the root, root first, one per
    call path (virtual inlining).
    @raise Invalid_argument on recursive programs or an unknown root. *)

val constraints :
  Ipet_isa.Prog.t -> instance list -> Ipet_lp.Lp_problem.constr list
(** All structural constraints of the expanded program. *)

val instance_constraints :
  instance -> is_root:bool -> Ipet_lp.Lp_problem.constr list
(** Structural constraints of a single instance: flow conservation at every
    block, call-site f-edge coupling, and — when [is_root] — the entry edge
    pinned to 1 (constraint (13)). Building one instance with [is_root:true]
    and no [sites] yields the per-entry flow problem of a function in
    isolation, the unit of the incremental server's decomposition. *)

val block_sum : instance list -> func:string -> block:int -> Ipet_lp.Linexpr.t
(** Sum of the block's count variable across every instance of [func] —
    what an unqualified [x_i] means in user constraints. *)

val instance_at :
  instance list -> root:string -> path:Callsite.t list -> instance option
(** Follow a call-site path from the root instance. *)
