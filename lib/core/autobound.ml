module Ast = Ipet_lang.Ast

(* does any statement in the list (recursively) assign to [name]? *)
let rec assigns_var name stmts = List.exists (assigns_in_stmt name) stmts

and assigns_in_stmt name (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Assign (Ast.Lvar v, _) -> v = name
  | Ast.Assign (Ast.Lindex _, _) -> false
  | Ast.Decl (_, v, _) -> v = name  (* shadowing would confuse the count *)
  | Ast.Decl_array (_, v, _) -> v = name
  | Ast.Expr_stmt _ | Ast.Return _ | Ast.Break | Ast.Continue -> false
  | Ast.If (_, then_b, else_b) -> assigns_var name then_b || assigns_var name else_b
  | Ast.While (_, body) | Ast.Do_while (body, _) -> assigns_var name body
  | Ast.For (init, _, step, body) ->
    (match init with Some s -> assigns_in_stmt name s | None -> false)
    || (match step with Some s -> assigns_in_stmt name s | None -> false)
    || assigns_var name body
  | Ast.Block stmts -> assigns_var name stmts

(* can control leave the loop early, other than by the loop condition?
   [break] and [return] directly in the body count; those inside a nested
   loop count only for that nested loop (break) but return always escapes. *)
let rec escapes stmts = List.exists escape_in_stmt stmts

and escape_in_stmt (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Break | Ast.Return _ -> true
  | Ast.Continue -> false
  | Ast.If (_, then_b, else_b) -> escapes then_b || escapes else_b
  | Ast.While (_, body) | Ast.Do_while (body, _) | Ast.For (_, _, _, body) ->
    (* a nested loop swallows breaks but not returns *)
    returns body
  | Ast.Block stmts -> escapes stmts
  | Ast.Assign _ | Ast.Decl _ | Ast.Decl_array _ | Ast.Expr_stmt _ -> false

and returns stmts = List.exists return_in_stmt stmts

and return_in_stmt (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Return _ -> true
  | Ast.Break | Ast.Continue -> false
  | Ast.If (_, then_b, else_b) -> returns then_b || returns else_b
  | Ast.While (_, body) | Ast.Do_while (body, _) | Ast.For (_, _, _, body) ->
    returns body
  | Ast.Block stmts -> returns stmts
  | Ast.Assign _ | Ast.Decl _ | Ast.Decl_array _ | Ast.Expr_stmt _ -> false

let ceil_div a b = if a <= 0 then 0 else (a + b - 1) / b

(* recognize [for (i = c0; i <(=) c1; i = i + c2)] and compute the trip
   count; [None] when the shape does not match *)
let counted_loop init cond step body =
  match (init, cond, step) with
  | ( Some { Ast.sdesc = Ast.Assign (Ast.Lvar i0, { Ast.desc = Ast.Int_lit c0; _ }); _ },
      Some { Ast.desc = Ast.Binop ((Ast.Lt | Ast.Le) as rel,
                                   { Ast.desc = Ast.Var i1; _ },
                                   { Ast.desc = Ast.Int_lit c1; _ });
             Ast.eline = cond_line },
      Some { Ast.sdesc = Ast.Assign (Ast.Lvar i2,
                                     { Ast.desc = Ast.Binop (Ast.Add,
                                                             { Ast.desc = Ast.Var i3; _ },
                                                             { Ast.desc = Ast.Int_lit c2; _ });
                                       _ });
             _ } )
    when i0 = i1 && i1 = i2 && i2 = i3 && c2 > 0 && not (assigns_var i0 body) ->
    let span = match rel with Ast.Lt -> c1 - c0 | _ -> c1 - c0 + 1 in
    Some (cond_line, ceil_div span c2)
  | _ -> None

(* How executing a statement (list) can end, relative to the innermost
   enclosing loop: fall through to the next statement, leave the loop
   ([break], or [return] which leaves every loop), or jump to the next
   iteration ([continue]). Needed for two reachability facts the CFG
   construction makes true and a purely syntactic inference must mirror:

   - statements after one that cannot fall through are never emitted, so a
     loop there has no blocks and a bound on it would name a dead line;
   - a loop whose body can neither fall through nor [continue] has no back
     edge — the compiled CFG contains no loop to attach the bound to. *)
type outcomes = { fall : bool; brk : bool; cont : bool }

let rec stmt_outcomes (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Break | Ast.Return _ -> { fall = false; brk = true; cont = false }
  | Ast.Continue -> { fall = false; brk = false; cont = true }
  | Ast.If (_, then_b, else_b) ->
    let a = list_outcomes then_b and b = list_outcomes else_b in
    { fall = a.fall || b.fall; brk = a.brk || b.brk; cont = a.cont || b.cont }
  | Ast.While (_, body) | Ast.Do_while (body, _) | Ast.For (_, _, _, body) ->
    (* a nested loop swallows its own break/continue; only a return still
       leaves the enclosing loop *)
    { fall = true; brk = returns body; cont = false }
  | Ast.Block stmts -> list_outcomes stmts
  | Ast.Assign _ | Ast.Decl _ | Ast.Decl_array _ | Ast.Expr_stmt _ ->
    { fall = true; brk = false; cont = false }

and list_outcomes = function
  | [] -> { fall = true; brk = false; cont = false }
  | s :: rest ->
    let o = stmt_outcomes s in
    if not o.fall then o
    else
      let r = list_outcomes rest in
      { fall = r.fall; brk = o.brk || r.brk; cont = o.cont || r.cont }

(* can the body reach the loop's step/header again, i.e. does the compiled
   loop have a back edge? *)
let may_iterate body =
  let o = list_outcomes body in
  o.fall || o.cont

let rec infer_stmts fname stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
    let here = infer_stmt fname s in
    if (stmt_outcomes s).fall then here @ infer_stmts fname rest else here

and infer_stmt fname (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.For (init, cond, step, body) ->
    let nested = infer_stmts fname body in
    (match counted_loop init cond step body with
     | Some _ when not (may_iterate body) ->
       (* no path reaches the step: the compiled CFG has no back edge here,
          so there is no loop to bound *)
       nested
     | Some (line, trips) ->
       let lo = if escapes body then 0 else trips in
       Annotation.loop ~func:fname ~line ~lo ~hi:trips :: nested
     | None -> nested)
  | Ast.While (_, body) | Ast.Do_while (body, _) -> infer_stmts fname body
  | Ast.If (_, then_b, else_b) -> infer_stmts fname then_b @ infer_stmts fname else_b
  | Ast.Block stmts -> infer_stmts fname stmts
  | Ast.Assign _ | Ast.Decl _ | Ast.Decl_array _ | Ast.Expr_stmt _
  | Ast.Return _ | Ast.Break | Ast.Continue -> []

(* A line-based annotation applies to every loop whose header sits on that
   line, so when two counted loops share a source line their inferred
   bounds must be merged into the (sound) envelope [min lo, max hi]. *)
let merge_same_line bounds =
  let table = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (b : Annotation.t) ->
      let key = (b.Annotation.func, b.Annotation.header) in
      match Hashtbl.find_opt table key with
      | None ->
        Hashtbl.replace table key b;
        order := key :: !order
      | Some prev ->
        Hashtbl.replace table key
          { prev with
            Annotation.lo = min prev.Annotation.lo b.Annotation.lo;
            Annotation.hi = max prev.Annotation.hi b.Annotation.hi })
    bounds;
  List.rev_map (fun key -> Hashtbl.find table key) !order

let infer_func (f : Ast.func) = merge_same_line (infer_stmts f.Ast.fname f.Ast.body)

let infer (program : Ast.program) =
  Ipet_obs.Obs.span "autobound.infer" (fun () ->
      List.concat_map infer_func program.Ast.funcs)
