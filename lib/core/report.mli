(** Cinderella-style reporting: annotated source listings (Fig. 5) and
    constraint dumps. *)

val annotated_source :
  source:string -> Ipet_isa.Prog.t -> func:string -> string
(** The function's source lines prefixed with the [x_i] labels of the basic
    blocks starting on each line, like the paper's Fig. 5. *)

val constraints_listing : Ipet_lp.Lp_problem.constr list -> string
(** One constraint per line, with provenance. *)

val bound_summary :
  Analysis.result -> string
(** Human-readable estimated bound, witness counts and solver statistics. *)

val record_lp_metrics : Ipet_obs.Metrics.t -> Analysis.result -> unit
(** Publish the solver statistics of both extremes into a metrics registry
    as [lp.*] gauges labelled [solver=wcet|bcet]. *)

val lp_stats : Analysis.result -> string
(** Detailed solver statistics for both extremes rendered through the
    metrics registry, one [name{labels} value] line per statistic
    (cinderella's [--lp-stats]). *)

(** {1 Pessimism attribution}

    Where does the gap between the WCET estimate and an actual simulated
    run come from?  Per basic block, compare the witness execution count
    times the worst-case cost bound against the simulator's measured count
    and cycles, and rank blocks by their contribution to the gap. *)

type attribution_row = {
  attr_func : string;
  attr_block : int;
  wcet_count : int;   (** witness execution count *)
  wcet_cost : int;    (** worst-case cycles per execution (bound) *)
  wcet_cycles : int;  (** [wcet_count * wcet_cost] *)
  sim_count : int;    (** simulated execution count *)
  sim_cycles : int;   (** simulated cycles attributed to the block,
                          callee time excluded *)
  gap : int;          (** [wcet_cycles - sim_cycles] *)
}

val attribution :
  wcet_counts:((string * int) * int) list ->
  wcet_cost:(string -> int -> int) ->
  sim_counts:((string * int) * int) list ->
  sim_cycles:((string * int) * int) list ->
  attribution_row list
(** Join the witness counts, the cost model and the simulator profile on
    (function, block) and return rows sorted by descending [gap]. *)

val pp_attribution : wcet:int -> simulated:int -> attribution_row list -> string
(** Render the attribution table; rows with no cycles on either side are
    omitted. *)
