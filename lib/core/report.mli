(** Cinderella-style reporting: annotated source listings (Fig. 5) and
    constraint dumps. *)

val annotated_source :
  source:string -> Ipet_isa.Prog.t -> func:string -> string
(** The function's source lines prefixed with the [x_i] labels of the basic
    blocks starting on each line, like the paper's Fig. 5. *)

val constraints_listing : Ipet_lp.Lp_problem.constr list -> string
(** One constraint per line, with provenance. *)

val bound_summary :
  Analysis.result -> string
(** Human-readable estimated bound, witness counts and solver statistics. *)

val lp_stats : Analysis.result -> string
(** Detailed solver statistics for both extremes: ILPs and LP relaxations
    solved, and the presolve variable/constraint reductions
    (cinderella's [--lp-stats]). *)
