(** Proof-carrying bound certificates.

    A certificate makes a reported WCET/BCET bound auditable without
    re-running the solver: it packages exact-rational dual multipliers
    (one per constraint of the original, pre-presolve problem), the
    integral witness assignment, and a digest of the constraint set the
    proof is about. {!Checker.check} validates all of it against the
    problem in exact arithmetic; nothing in this module or the checker
    depends on the simplex implementations. *)

open Ipet_num
open Ipet_lp

type t = {
  direction : Lp_problem.direction;
  bound : Rat.t;        (** the reported extreme: the witness objective *)
  dual_bound : Rat.t;
      (** what the duals prove: an upper bound on every feasible
          objective for [Maximize], a lower bound for [Minimize] *)
  duals : Rat.t array;
      (** one multiplier per constraint, in the problem's constraint
          order *)
  witness : (string * Rat.t) list;
      (** the integral optimal assignment, nonzeros only, sorted by
          variable name; absent variables are zero *)
  digest : string;
      (** MD5 hex of {!digest_problem} for the certified problem *)
}

val digest_problem : Lp_problem.t -> string
(** Canonical digest of direction, objective, and every constraint
    (coefficients, relation, origin) — computed from the problem
    representation only, so producer and checker agree on what exactly
    is being certified. *)

val witness_of_assignment : (string * Rat.t) list -> (string * Rat.t) list
(** Drop zeros, sort by name: the canonical witness form stored in a
    certificate. *)

val to_json_string : t -> string
(** Render as a single-line JSON object (rationals as strings), for
    [--cert-out] export and log artifacts. *)

val to_string : t -> string
(** Compact line-oriented serialization, round-tripped by {!of_string};
    used by the serve cache to persist certificates with entries. *)

val of_string : string -> (t, string) result
