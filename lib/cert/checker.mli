(** The trusted certificate checker.

    Validates a {!Certificate.t} against the original (pre-presolve)
    problem in exact rational arithmetic, using nothing but the problem
    representation — no {!Ipet_lp.Revised}, {!Ipet_lp.Dense} or
    {!Ipet_lp.Presolve} — so a bug in the solver chain cannot also hide
    in its own audit.

    What a [Valid] verdict establishes, for a [Maximize] problem (all
    comparisons are exact; [Minimize] is symmetric):

    + the certificate is about this problem: the digest matches;
    + the duals are a weak-duality proof: every multiplier has the sign
      its constraint's relation requires, covers every variable's
      objective coefficient, and the implied bound
      [Σ yᵢ·rhsᵢ + objective constant] equals the certificate's
      [dual_bound] — hence no feasible point (integral or not) exceeds
      [dual_bound];
    + the witness is a real execution-count assignment: non-negative,
      integral, satisfying every structural/loop-bound/functionality
      constraint, with objective exactly [bound];
    + therefore [bound <= optimum <= dual_bound]; when [gap = 0] the
      reported bound is the exact ILP optimum, not merely safe. *)

open Ipet_num
open Ipet_lp

type verdict =
  | Valid of { gap : Rat.t }
      (** [gap = |dual_bound - bound|]; zero means the bound is proved
          optimal *)
  | Invalid of string list  (** every failed check, not just the first *)

val check : Lp_problem.t -> Certificate.t -> verdict

val gap_closed : verdict -> bool
(** [Valid] with a zero gap. *)

val pp_verdict : Format.formatter -> verdict -> unit
