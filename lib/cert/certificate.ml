open Ipet_num
open Ipet_lp

type t = {
  direction : Lp_problem.direction;
  bound : Rat.t;
  dual_bound : Rat.t;
  duals : Rat.t array;
  witness : (string * Rat.t) list;
  digest : string;
}

(* Canonical rendering of a problem for digesting. Linexpr terms come out
   of a sorted map, so the rendering is a pure function of the problem
   value — no formatting heuristics, no float detours. *)
let add_expr buf e =
  Linexpr.fold_terms
    (fun v k () ->
      Buffer.add_string buf v;
      Buffer.add_char buf '*';
      Buffer.add_string buf (Rat.to_string k);
      Buffer.add_char buf ' ')
    e ();
  Buffer.add_string buf (Rat.to_string (Linexpr.constant e))

let rel_tag = function
  | Lp_problem.Le -> "<=0"
  | Lp_problem.Ge -> ">=0"
  | Lp_problem.Eq -> "=0"

let digest_problem (p : Lp_problem.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "ipet-cert problem v1\n";
  Buffer.add_string buf
    (match p.Lp_problem.direction with
     | Lp_problem.Maximize -> "maximize "
     | Lp_problem.Minimize -> "minimize ");
  add_expr buf p.Lp_problem.objective;
  Buffer.add_char buf '\n';
  List.iter
    (fun (c : Lp_problem.constr) ->
      add_expr buf c.Lp_problem.expr;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (rel_tag c.Lp_problem.rel);
      Buffer.add_char buf ' ';
      Buffer.add_string buf c.Lp_problem.origin;
      Buffer.add_char buf '\n')
    p.Lp_problem.constraints;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let witness_of_assignment assignment =
  List.filter (fun (_, v) -> not (Rat.is_zero v)) assignment
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dir_tag = function
  | Lp_problem.Maximize -> "max"
  | Lp_problem.Minimize -> "min"

let to_json_string t =
  let buf = Buffer.create 1024 in
  let str s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "{\"version\":1,\"direction\":";
  str (dir_tag t.direction);
  Buffer.add_string buf ",\"bound\":";
  str (Rat.to_string t.bound);
  Buffer.add_string buf ",\"dual_bound\":";
  str (Rat.to_string t.dual_bound);
  Buffer.add_string buf ",\"digest\":";
  str t.digest;
  Buffer.add_string buf ",\"witness\":{";
  List.iteri
    (fun i (v, x) ->
      if i > 0 then Buffer.add_char buf ',';
      str v;
      Buffer.add_char buf ':';
      str (Rat.to_string x))
    t.witness;
  Buffer.add_string buf "},\"duals\":[";
  Array.iteri
    (fun i y ->
      if i > 0 then Buffer.add_char buf ',';
      str (Rat.to_string y))
    t.duals;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Line-oriented round-trip format. Variable names contain no whitespace
   (they are flow-variable atoms), so space-separated fields suffice. *)
let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ipet-cert v1\n";
  Buffer.add_string buf ("direction " ^ dir_tag t.direction ^ "\n");
  Buffer.add_string buf ("bound " ^ Rat.to_string t.bound ^ "\n");
  Buffer.add_string buf ("dual-bound " ^ Rat.to_string t.dual_bound ^ "\n");
  Buffer.add_string buf ("digest " ^ t.digest ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "witness %d\n" (List.length t.witness));
  List.iter
    (fun (v, x) ->
      Buffer.add_string buf (v ^ " " ^ Rat.to_string x ^ "\n"))
    t.witness;
  Buffer.add_string buf (Printf.sprintf "duals %d\n" (Array.length t.duals));
  Array.iter (fun y -> Buffer.add_string buf (Rat.to_string y ^ "\n")) t.duals;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match lines with
  | "ipet-cert v1" :: rest ->
    (try
       let rest = ref rest in
       let next () =
         match !rest with
         | [] -> failwith "truncated certificate"
         | l :: tl ->
           rest := tl;
           l
       in
       let field name =
         let l = next () in
         match String.index_opt l ' ' with
         | Some i when String.sub l 0 i = name ->
           String.sub l (i + 1) (String.length l - i - 1)
         | _ -> failwith (Printf.sprintf "expected %s field" name)
       in
       let direction =
         match field "direction" with
         | "max" -> Lp_problem.Maximize
         | "min" -> Lp_problem.Minimize
         | d -> failwith ("bad direction " ^ d)
       in
       let bound = Rat.of_string (field "bound") in
       let dual_bound = Rat.of_string (field "dual-bound") in
       let digest = field "digest" in
       let nw = int_of_string (field "witness") in
       let witness =
         List.init nw (fun _ ->
             let l = next () in
             match String.rindex_opt l ' ' with
             | Some i ->
               ( String.sub l 0 i,
                 Rat.of_string
                   (String.sub l (i + 1) (String.length l - i - 1)) )
             | None -> failwith "bad witness line")
       in
       let nd = int_of_string (field "duals") in
       let duals = Array.init nd (fun _ -> Rat.of_string (next ())) in
       if next () <> "end" then failwith "missing end marker";
       (* strict: nothing may follow the end marker but the final newline *)
       (match !rest with
        | [] | [ "" ] -> ()
        | _ -> failwith "trailing content after end marker");
       Ok { direction; bound; dual_bound; duals; witness; digest }
     with Failure m -> error "certificate parse: %s" m)
  | _ -> error "certificate parse: bad header"
