(** Certificate production.

    [certify problem ~witness ~bound] re-solves the LP relaxation of the
    {e original, pre-presolve} problem once with the revised primal
    simplex and recovers the dual multipliers from its final basis (one
    BTRAN over exact rationals), then packages them with the witness and
    the problem digest.

    The extra cold solve is deliberate: the production solve runs on the
    presolved problem, and presolve rounds bounds to integers for ILPs —
    a rounded bound is a {e strictly stronger} constraint than the
    original row, so duals of the presolved LP do not in general certify
    the original one. Solving the untouched problem keeps the proof about
    exactly the constraint set the digest names (see DESIGN.md §5).

    The resulting certificate's [dual_bound] is the true LP-relaxation
    optimum: the gap closes exactly when the relaxation's optimum equals
    the integral bound (the paper's observation for all 13 benchmarks). *)

open Ipet_num
open Ipet_lp

val certify :
  ?refactor_every:int ->
  Lp_problem.t ->
  witness:(string * Rat.t) list ->
  bound:Rat.t ->
  (Certificate.t, string) result
(** [witness] is a solver assignment for [problem] (zeros allowed; it is
    canonicalized), [bound] its objective value. Fails when the LP
    relaxation is infeasible or unbounded — neither can happen for a
    problem whose ILP was solved to optimality. *)
