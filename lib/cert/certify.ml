open Ipet_num
open Ipet_lp

(* Sparse.build normalizes every row to a non-negative right-hand side by
   negating the row and flipping its relation; a negated row's recovered
   multiplier must be negated back before it can speak about the original
   constraint. This predicate mirrors the normalization condition exactly
   (rhs = -constant < 0). *)
let row_flipped (c : Lp_problem.constr) =
  Rat.sign (Rat.neg (Linexpr.constant c.Lp_problem.expr)) < 0

let certify ?refactor_every (problem : Lp_problem.t) ~witness ~bound =
  let vars = Lp_problem.variables problem in
  let maximize = problem.Lp_problem.direction = Lp_problem.Maximize in
  let inst = Sparse.build ~vars problem in
  (* the simplex maximizes; a Minimize objective is negated on the way in
     and its duals negated on the way out *)
  let cost =
    Array.map
      (fun v ->
        let c = Linexpr.coeff problem.Lp_problem.objective v in
        if maximize then c else Rat.neg c)
      inst.Sparse.vars
  in
  match (Revised.solve_primal ?refactor_every inst ~cost).Revised.verdict with
  | Revised.Infeasible -> Error "LP relaxation infeasible"
  | Revised.Unbounded -> Error "LP relaxation unbounded"
  | Revised.Optimal sol ->
    (match Revised.duals inst ~cost sol.Revised.snapshot with
     | exception Basis.Singular -> Error "final basis singular"
     | y ->
       let duals =
         Array.of_list
           (List.mapi
              (fun i c ->
                let yi = if row_flipped c then Rat.neg y.(i) else y.(i) in
                if maximize then yi else Rat.neg yi)
              problem.Lp_problem.constraints)
       in
       let dual_bound =
         List.fold_left
           (fun acc (i, (c : Lp_problem.constr)) ->
             Rat.add acc
               (Rat.mul duals.(i)
                  (Rat.neg (Linexpr.constant c.Lp_problem.expr))))
           (Linexpr.constant problem.Lp_problem.objective)
           (List.mapi (fun i c -> (i, c)) problem.Lp_problem.constraints)
       in
       Ok
         { Certificate.direction = problem.Lp_problem.direction;
           bound;
           dual_bound;
           duals;
           witness = Certificate.witness_of_assignment witness;
           digest = Certificate.digest_problem problem })
