(* The trusted base: this module must stay independent of the simplex
   implementations (Revised/Dense/Presolve/Sparse) — it sees only the
   problem representation and exact rationals. Keep it that way. *)

open Ipet_num
open Ipet_lp

type verdict = Valid of { gap : Rat.t } | Invalid of string list

let gap_closed = function
  | Valid { gap } -> Rat.is_zero gap
  | Invalid _ -> false

let pp_verdict fmt = function
  | Valid { gap } ->
    if Rat.is_zero gap then Format.fprintf fmt "valid, gap closed (optimal)"
    else Format.fprintf fmt "valid, gap %a (bound safe)" Rat.pp gap
  | Invalid errs ->
    Format.fprintf fmt "INVALID: %s" (String.concat "; " errs)

let check (p : Lp_problem.t) (cert : Certificate.t) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let maximize = p.Lp_problem.direction = Lp_problem.Maximize in
  if cert.Certificate.direction <> p.Lp_problem.direction then
    err "direction mismatch";
  if cert.Certificate.digest <> Certificate.digest_problem p then
    err "problem digest mismatch: certificate is about a different problem";
  let constraints = Array.of_list p.Lp_problem.constraints in
  let m = Array.length constraints in
  let duals = cert.Certificate.duals in
  if Array.length duals <> m then
    err "dual count %d does not match %d constraints" (Array.length duals) m
  else begin
    (* 1. dual signs: for Maximize, y >= 0 on Le rows, y <= 0 on Ge rows,
       free on Eq rows (Minimize flips the inequalities) *)
    Array.iteri
      (fun i (c : Lp_problem.constr) ->
        let s = Rat.sign duals.(i) in
        let bad =
          match c.Lp_problem.rel with
          | Lp_problem.Eq -> false
          | Lp_problem.Le -> if maximize then s < 0 else s > 0
          | Lp_problem.Ge -> if maximize then s > 0 else s < 0
        in
        if bad then
          err "dual %d (%s) has the wrong sign for a %s constraint" i
            c.Lp_problem.origin
            (match c.Lp_problem.rel with
             | Lp_problem.Le -> "<="
             | Lp_problem.Ge -> ">="
             | Lp_problem.Eq -> "="))
      constraints;
    (* 2. coverage: Σᵢ yᵢ·aᵢᵥ must dominate the objective coefficient of
       every variable (variables are implicitly non-negative, so a
       dominated coefficient can only lower the objective) *)
    let cover = Hashtbl.create 256 in
    Array.iteri
      (fun i (c : Lp_problem.constr) ->
        let y = duals.(i) in
        if not (Rat.is_zero y) then
          Linexpr.fold_terms
            (fun v a () ->
              let cur =
                Option.value ~default:Rat.zero (Hashtbl.find_opt cover v)
              in
              Hashtbl.replace cover v (Rat.add cur (Rat.mul y a)))
            c.Lp_problem.expr ())
      constraints;
    Lp_problem.Names.iter
      (fun v ->
        let lhs =
          Option.value ~default:Rat.zero (Hashtbl.find_opt cover v)
        in
        let cv = Linexpr.coeff p.Lp_problem.objective v in
        let covered =
          if maximize then Rat.compare lhs cv >= 0
          else Rat.compare lhs cv <= 0
        in
        if not covered then
          err "variable %s not covered: duals give %s against objective %s" v
            (Rat.to_string lhs) (Rat.to_string cv))
      (Lp_problem.variable_set p);
    (* 3. the bound the duals imply: constraints read [expr rel 0], i.e.
       [a·x rel -b], so each row contributes yᵢ·(-bᵢ) *)
    let implied = ref (Linexpr.constant p.Lp_problem.objective) in
    Array.iteri
      (fun i (c : Lp_problem.constr) ->
        implied :=
          Rat.add !implied
            (Rat.mul duals.(i)
               (Rat.neg (Linexpr.constant c.Lp_problem.expr))))
      constraints;
    let implied = !implied in
    if not (Rat.equal implied cert.Certificate.dual_bound) then
      err "stated dual bound %s differs from the implied bound %s"
        (Rat.to_string cert.Certificate.dual_bound) (Rat.to_string implied)
  end;
  (* 4. the witness: an integral, non-negative assignment that satisfies
     every constraint and whose objective is exactly the reported bound *)
  let wtbl = Hashtbl.create 256 in
  List.iter
    (fun (v, x) ->
      if Hashtbl.mem wtbl v then err "witness repeats variable %s" v;
      Hashtbl.replace wtbl v x;
      if Rat.sign x < 0 then err "witness has %s = %s < 0" v (Rat.to_string x);
      if not (Rat.is_integer x) then
        err "witness has non-integral %s = %s" v (Rat.to_string x))
    cert.Certificate.witness;
  let env v = Option.value ~default:Rat.zero (Hashtbl.find_opt wtbl v) in
  List.iteri
    (fun i (c : Lp_problem.constr) ->
      if not (Lp_problem.satisfies env c) then
        err "witness violates constraint %d (%s)" i c.Lp_problem.origin)
    p.Lp_problem.constraints;
  let wobj = Linexpr.eval env p.Lp_problem.objective in
  if not (Rat.equal wobj cert.Certificate.bound) then
    err "witness objective %s differs from the reported bound %s"
      (Rat.to_string wobj) (Rat.to_string cert.Certificate.bound);
  (* 5. the two sides must bracket the optimum the right way round *)
  let gap =
    if maximize then Rat.sub cert.Certificate.dual_bound cert.Certificate.bound
    else Rat.sub cert.Certificate.bound cert.Certificate.dual_bound
  in
  if Rat.sign gap < 0 then
    err "dual bound %s is beaten by the witness objective %s"
      (Rat.to_string cert.Certificate.dual_bound)
      (Rat.to_string cert.Certificate.bound);
  match !errs with [] -> Valid { gap } | errs -> Invalid (List.rev errs)
