(** Product-form (eta-file) factorization of the simplex basis inverse.

    The basis inverse is held as [B⁻¹ = P · Eₖ⁻¹ ⋯ E₁⁻¹] where each
    [Eᵢ] is an eta matrix (identity except for one column) and [P] a row
    permutation introduced by refactorization. Pivots append one eta;
    {!refactor} rebuilds the whole product by sparse Gaussian elimination
    over the current basis columns (processed sparsest-first), bounding
    both the eta file length and the accumulated fill.

    All arithmetic is exact rational, so the representation is only about
    speed, never about accuracy: FTRAN/BTRAN results are bit-identical to
    what a dense tableau would produce. *)

open Ipet_num

type t

exception Singular
(** Raised by {!refactor} when the supplied columns are linearly
    dependent (not a basis). *)

val create : int -> t
(** [create m] represents the identity basis of dimension [m]. *)

val dim : t -> int

val neta : t -> int
(** Current eta-file length (update etas since the last refactorization
    plus the refactorization's own etas). *)

val refactor : t -> col_of:(int -> Sparse.col) -> basis:int array -> unit
(** Rebuild the factorization from scratch for the basis matrix whose
    column in row [i] is [col_of basis.(i)]. *)

val ftran : t -> Rat.t array -> unit
(** [ftran t v] overwrites dense [v] with [B⁻¹ v]. *)

val btran : t -> Rat.t array -> unit
(** [btran t y] overwrites dense [y] with [B⁻ᵀ y]. *)

val append : t -> pivot_row:int -> alpha:Rat.t array -> unit
(** Rank-one basis change: the column basic in row [pivot_row] is
    replaced by a column whose current FTRAN image is [alpha]
    (so [alpha.(pivot_row)] must be nonzero). [alpha] is read, not
    retained. *)
