(* Exact-rational LP solve, now routed through the sparse revised simplex
   ({!Revised} over {!Sparse} instances with a {!Basis} eta-file
   factorization). The pivot trajectory — Bland entering rule, min-ratio
   leaving rule with ties to the smallest basic column, phase-1 then
   drive-artificials-out then phase-2 — replicates the historical dense
   tableau (kept as {!Dense}) exactly, so optimal assignments, not just
   values, are unchanged. *)

open Ipet_num

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list }
  | Infeasible
  | Unbounded

let assignment_env assignment =
  let tbl = Hashtbl.create (2 * List.length assignment + 1) in
  List.iter (fun (v, x) -> Hashtbl.replace tbl v x) assignment;
  fun name ->
    match Hashtbl.find_opt tbl name with Some v -> v | None -> Rat.zero

(* process-cumulative tallies across all domains; per-solve counts are
   folded in once at the end of each solve, so concurrent solves never
   interleave deltas *)
let total_pivots = Atomic.make 0
let total_refactors = Atomic.make 0

let pivots () = Atomic.get total_pivots
let refactorizations () = Atomic.get total_refactors

let record ?pivots:pivot_count ?refactors:refactor_count (run : Revised.run) =
  ignore (Atomic.fetch_and_add total_pivots run.Revised.pivots);
  ignore (Atomic.fetch_and_add total_refactors run.Revised.refactors);
  (match pivot_count with
   | Some r -> r := !r + run.Revised.pivots
   | None -> ());
  (match refactor_count with
   | Some r -> r := !r + run.Revised.refactors
   | None -> ())

let direction_cost inst problem =
  let obj =
    match problem.Lp_problem.direction with
    | Lp_problem.Maximize -> problem.Lp_problem.objective
    | Lp_problem.Minimize -> Linexpr.neg problem.Lp_problem.objective
  in
  let nstruct = inst.Sparse.nstruct in
  let cost = Array.make nstruct Rat.zero in
  Array.iteri
    (fun i v -> cost.(i) <- Linexpr.coeff obj v)
    inst.Sparse.vars;
  (cost, obj)

let assignment_of_xstruct inst xstruct =
  let out = ref [] in
  for i = Array.length xstruct - 1 downto 0 do
    if not (Rat.is_zero xstruct.(i)) then
      out := (inst.Sparse.vars.(i), xstruct.(i)) :: !out
  done;
  !out

let solve ?vars ?pivots:pivot_count ?refactors:refactor_count problem =
  let vars =
    match vars with Some vs -> vs | None -> Lp_problem.variables problem
  in
  let inst = Sparse.build ~vars problem in
  let cost, obj = direction_cost inst problem in
  let run = Revised.solve_primal inst ~cost in
  record ?pivots:pivot_count ?refactors:refactor_count run;
  match run.Revised.verdict with
  | Revised.Infeasible -> Infeasible
  | Revised.Unbounded -> Unbounded
  | Revised.Optimal sol ->
    let z = Rat.add sol.Revised.value (Linexpr.constant obj) in
    let value =
      match problem.Lp_problem.direction with
      | Lp_problem.Maximize -> z
      | Lp_problem.Minimize -> Rat.neg z
    in
    Optimal { value; assignment = assignment_of_xstruct inst sol.Revised.xstruct }
