open Ipet_num

type vstatus = Basic | Lower | Upper

type snapshot = { sbasis : int array; sstatus : vstatus array }

type solution = {
  value : Rat.t;
  xstruct : Rat.t array;
  snapshot : snapshot;
}

type verdict = Optimal of solution | Infeasible | Unbounded

type run = { verdict : verdict; pivots : int; refactors : int }

exception Stuck

type state = {
  inst : Sparse.t;
  lo : Rat.t array;          (* ncols *)
  up : Rat.t option array;   (* ncols *)
  status : vstatus array;    (* ncols *)
  basis : int array;         (* nrows: basic column of each row *)
  beta : Rat.t array;        (* nrows: values of the basic variables *)
  fac : Basis.t;
  refactor_every : int;
  mutable updates : int;     (* eta updates since the last refactorization *)
  mutable npivots : int;
  mutable nrefactors : int;
  (* dense scratch, length nrows *)
  y : Rat.t array;
  y2 : Rat.t array;
  alpha : Rat.t array;
}

let nonbasic_value st j =
  match st.status.(j) with
  | Lower -> st.lo.(j)
  | Upper -> (match st.up.(j) with Some u -> u | None -> assert false)
  | Basic -> assert false

(* a variable pinned by equal bounds can never usefully enter *)
let fixed st j =
  match st.up.(j) with
  | Some u -> Rat.equal u st.lo.(j)
  | None -> false

let load_col st dst j =
  let c = st.inst.Sparse.cols.(j) in
  for k = 0 to Array.length c.Sparse.rows - 1 do
    dst.(c.Sparse.rows.(k)) <- c.Sparse.vals.(k)
  done

let maybe_refactor st =
  st.updates <- st.updates + 1;
  if st.updates >= st.refactor_every then begin
    Basis.refactor st.fac
      ~col_of:(fun j -> st.inst.Sparse.cols.(j))
      ~basis:st.basis;
    st.nrefactors <- st.nrefactors + 1;
    st.updates <- 0
  end

(* One primal iteration for entering column [q] moving in direction
   [increasing] ([true] = up from its lower bound). Basic values follow
   x_B = beta - d*t*alpha with d = +/-1 and t >= 0 the move length. *)
let primal_step st ~q ~increasing =
  let m = st.inst.Sparse.nrows in
  Array.fill st.alpha 0 m Rat.zero;
  load_col st st.alpha q;
  Basis.ftran st.fac st.alpha;
  (* ratio test: min blocking t; ties to the smallest blocking variable
     index (Bland), which for row blockers is the basic column — exactly
     the dense tableau's tie-break *)
  let best = ref None in (* (t, blocking var, [Some (row, leaves_at_upper)]) *)
  let consider t idx blocker =
    match !best with
    | None -> best := Some (t, idx, blocker)
    | Some (bt, bidx, _) ->
      let c = Rat.compare t bt in
      if c < 0 || (c = 0 && idx < bidx) then best := Some (t, idx, blocker)
  in
  for i = 0 to m - 1 do
    let a = st.alpha.(i) in
    if not (Rat.is_zero a) then begin
      let da = if increasing then a else Rat.neg a in
      let bi = st.basis.(i) in
      if Rat.sign da > 0 then
        (* x_Bi decreases, blocked at its lower bound *)
        consider (Rat.div (Rat.sub st.beta.(i) st.lo.(bi)) da) bi
          (Some (i, false))
      else
        (* x_Bi increases, blocked at its upper bound when finite *)
        match st.up.(bi) with
        | Some u ->
          consider (Rat.div (Rat.sub u st.beta.(i)) (Rat.neg da)) bi
            (Some (i, true))
        | None -> ()
    end
  done;
  (* the entering variable can also stop at its own opposite bound *)
  (match st.up.(q) with
   | Some u -> consider (Rat.sub u st.lo.(q)) q None
   | None -> ());
  match !best with
  | None -> `Unbounded
  | Some (t, _, blocker) ->
    let d = if increasing then Rat.one else Rat.minus_one in
    let dt = Rat.mul d t in
    (match blocker with
     | None ->
       (* bound flip: x_q jumps to its other bound, no basis change *)
       if not (Rat.is_zero t) then
         for i = 0 to m - 1 do
           if not (Rat.is_zero st.alpha.(i)) then
             st.beta.(i) <- Rat.sub st.beta.(i) (Rat.mul dt st.alpha.(i))
         done;
       st.status.(q) <- (if st.status.(q) = Lower then Upper else Lower)
     | Some (r, to_upper) ->
       let xq_new = Rat.add (nonbasic_value st q) dt in
       for i = 0 to m - 1 do
         if i <> r && not (Rat.is_zero st.alpha.(i)) then
           st.beta.(i) <- Rat.sub st.beta.(i) (Rat.mul dt st.alpha.(i))
       done;
       let leaving = st.basis.(r) in
       st.beta.(r) <- xq_new;
       st.basis.(r) <- q;
       st.status.(q) <- Basic;
       st.status.(leaving) <- (if to_upper then Upper else Lower);
       Basis.append st.fac ~pivot_row:r ~alpha:st.alpha;
       st.npivots <- st.npivots + 1;
       maybe_refactor st);
    `Step

(* one phase of maximization; [allowed j] filters enterable columns *)
let rec phase st ~cost ~allowed =
  let m = st.inst.Sparse.nrows and ncols = st.inst.Sparse.ncols in
  (* pricing vector y = B^-T c_B, recomputed each iteration *)
  for i = 0 to m - 1 do
    st.y.(i) <- cost.(st.basis.(i))
  done;
  Basis.btran st.fac st.y;
  (* Bland: smallest column with a favourable reduced cost *)
  let rec entering j =
    if j >= ncols then None
    else if st.status.(j) <> Basic && allowed j && not (fixed st j) then begin
      let cb = Rat.sub cost.(j) (Sparse.col_dot st.inst st.y j) in
      let s = Rat.sign cb in
      if st.status.(j) = Lower && s > 0 then Some (j, true)
      else if st.status.(j) = Upper && s < 0 then Some (j, false)
      else entering (j + 1)
    end
    else entering (j + 1)
  in
  match entering 0 with
  | None -> `Optimal
  | Some (q, increasing) ->
    (match primal_step st ~q ~increasing with
     | `Unbounded -> `Unbounded
     | `Step -> phase st ~cost ~allowed)

(* After a feasible phase 1, pivot zero-level basic artificials onto the
   first real column with a nonzero tableau entry in their row, exactly
   like the dense solver; rows admitting no such column are redundant and
   keep their artificial basic at level zero. *)
let drive_out st =
  let m = st.inst.Sparse.nrows in
  let art_start = st.inst.Sparse.art_start in
  for i = 0 to m - 1 do
    if st.basis.(i) >= art_start then begin
      (* rho = row i of B^-1 *)
      Array.fill st.y 0 m Rat.zero;
      st.y.(i) <- Rat.one;
      Basis.btran st.fac st.y;
      let rec find j =
        if j >= art_start then None
        else if st.status.(j) <> Basic
                && not (Rat.is_zero (Sparse.col_dot st.inst st.y j))
        then Some j
        else find (j + 1)
      in
      match find 0 with
      | None -> () (* redundant row; harmless to keep *)
      | Some j ->
        let m' = m in
        Array.fill st.alpha 0 m' Rat.zero;
        load_col st st.alpha j;
        Basis.ftran st.fac st.alpha;
        (* the artificial sits at zero, so the swap moves nothing: the
           entering column keeps its current nonbasic value (its lower OR
           upper bound), which becomes the row's basic value *)
        let leaving = st.basis.(i) in
        st.beta.(i) <- nonbasic_value st j;
        st.basis.(i) <- j;
        st.status.(j) <- Basic;
        st.status.(leaving) <- Lower;
        Basis.append st.fac ~pivot_row:i ~alpha:st.alpha;
        st.npivots <- st.npivots + 1;
        maybe_refactor st
    end
  done

let extract st ~cost =
  let inst = st.inst in
  let m = inst.Sparse.nrows in
  let nstruct = inst.Sparse.nstruct in
  let xstruct =
    Array.init nstruct (fun j ->
        if st.status.(j) = Basic then Rat.zero else nonbasic_value st j)
  in
  for i = 0 to m - 1 do
    if st.basis.(i) < nstruct then xstruct.(st.basis.(i)) <- st.beta.(i)
  done;
  let value = ref Rat.zero in
  for i = 0 to m - 1 do
    let c = cost.(st.basis.(i)) in
    if not (Rat.is_zero c) then value := Rat.add !value (Rat.mul c st.beta.(i))
  done;
  for j = 0 to inst.Sparse.ncols - 1 do
    if st.status.(j) <> Basic && not (Rat.is_zero cost.(j)) then begin
      let x = nonbasic_value st j in
      if not (Rat.is_zero x) then value := Rat.add !value (Rat.mul cost.(j) x)
    end
  done;
  { value = !value;
    xstruct;
    snapshot =
      { sbasis = Array.copy st.basis; sstatus = Array.copy st.status } }

let make_state ?(refactor_every = 64) inst ~lo ~up ~status ~basis ~beta =
  let m = inst.Sparse.nrows in
  { inst; lo; up; status; basis; beta;
    fac = Basis.create m;
    refactor_every;
    updates = 0; npivots = 0; nrefactors = 0;
    y = Array.make m Rat.zero;
    y2 = Array.make m Rat.zero;
    alpha = Array.make m Rat.zero }

let full_cost inst cost =
  let cost_full = Array.make inst.Sparse.ncols Rat.zero in
  Array.blit cost 0 cost_full 0 inst.Sparse.nstruct;
  cost_full

let solve_primal ?upper ?refactor_every inst ~cost =
  let m = inst.Sparse.nrows and ncols = inst.Sparse.ncols in
  let nstruct = inst.Sparse.nstruct in
  let lo = Array.make ncols Rat.zero in
  let up = Array.make ncols None in
  (match upper with Some u -> Array.blit u 0 up 0 nstruct | None -> ());
  let status = Array.make ncols Lower in
  let basis = Array.copy inst.Sparse.row_basis in
  Array.iter (fun j -> status.(j) <- Basic) basis;
  let st =
    make_state ?refactor_every inst ~lo ~up ~status ~basis
      ~beta:(Array.copy inst.Sparse.rhs)
  in
  let cost_full = full_cost inst cost in
  let finish verdict =
    { verdict; pivots = st.npivots; refactors = st.nrefactors }
  in
  let art_start = inst.Sparse.art_start in
  let feasible =
    if art_start = ncols then true
    else begin
      (* phase 1: maximize -sum(artificials) up to 0 *)
      let cost1 = Array.make ncols Rat.zero in
      for j = art_start to ncols - 1 do
        cost1.(j) <- Rat.minus_one
      done;
      (match phase st ~cost:cost1 ~allowed:(fun _ -> true) with
       | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
       | `Optimal -> ());
      let art_level = ref Rat.zero in
      for i = 0 to m - 1 do
        if st.basis.(i) >= art_start then
          art_level := Rat.add !art_level st.beta.(i)
      done;
      if Rat.sign !art_level > 0 then false
      else begin
        drive_out st;
        true
      end
    end
  in
  if not feasible then finish Infeasible
  else
    match phase st ~cost:cost_full ~allowed:(fun j -> j < art_start) with
    | `Unbounded -> finish Unbounded
    | `Optimal -> finish (Optimal (extract st ~cost:cost_full))

(* Row prices of a finished solve: y = B^-T c_B for the snapshot's basis,
   one refactorization plus one BTRAN. This is the dual recovery the
   certificate producer uses; it never runs during the solve itself. *)
let duals inst ~cost (snap : snapshot) =
  let m = inst.Sparse.nrows in
  let fac = Basis.create m in
  Basis.refactor fac
    ~col_of:(fun j -> inst.Sparse.cols.(j))
    ~basis:snap.sbasis;
  let cost_full = full_cost inst cost in
  let y = Array.make m Rat.zero in
  for i = 0 to m - 1 do
    y.(i) <- cost_full.(snap.sbasis.(i))
  done;
  Basis.btran fac y;
  y

let solve_dual ?refactor_every ?max_iters inst ~cost ~lower ~upper ~warm =
  let m = inst.Sparse.nrows and ncols = inst.Sparse.ncols in
  let nstruct = inst.Sparse.nstruct in
  let art_start = inst.Sparse.art_start in
  let max_iters =
    match max_iters with Some n -> n | None -> 1000 + 20 * m
  in
  let contradictory = ref false in
  for j = 0 to nstruct - 1 do
    match upper.(j) with
    | Some u when Rat.compare lower.(j) u > 0 -> contradictory := true
    | _ -> ()
  done;
  if !contradictory then { verdict = Infeasible; pivots = 0; refactors = 0 }
  else begin
    let lo = Array.make ncols Rat.zero in
    let up = Array.make ncols None in
    Array.blit lower 0 lo 0 nstruct;
    Array.blit upper 0 up 0 nstruct;
    let status = Array.copy warm.sstatus in
    let basis = Array.copy warm.sbasis in
    let st =
      make_state ?refactor_every inst ~lo ~up ~status ~basis
        ~beta:(Array.make m Rat.zero)
    in
    (try
       Basis.refactor st.fac
         ~col_of:(fun j -> inst.Sparse.cols.(j))
         ~basis
     with Basis.Singular -> raise Stuck);
    st.nrefactors <- 1;
    (* beta = B^-1 (b - N x_N) *)
    for i = 0 to m - 1 do
      st.beta.(i) <- inst.Sparse.rhs.(i)
    done;
    for j = 0 to ncols - 1 do
      if st.status.(j) <> Basic then begin
        let x = nonbasic_value st j in
        if not (Rat.is_zero x) then begin
          let c = inst.Sparse.cols.(j) in
          for k = 0 to Array.length c.Sparse.rows - 1 do
            let r = c.Sparse.rows.(k) in
            st.beta.(r) <- Rat.sub st.beta.(r) (Rat.mul x c.Sparse.vals.(k))
          done
        end
      end
    done;
    Basis.ftran st.fac st.beta;
    let cost_full = full_cost inst cost in
    let finish verdict =
      { verdict; pivots = st.npivots; refactors = st.nrefactors }
    in
    let rec loop iter =
      if iter > max_iters then raise Stuck;
      (* leaving: most Bland-like deterministic choice — among rows whose
         basic variable violates a bound, the smallest basic column *)
      let r = ref (-1) and leaves_above = ref false in
      for i = 0 to m - 1 do
        let bi = st.basis.(i) in
        let below = Rat.compare st.beta.(i) st.lo.(bi) < 0 in
        let above =
          (not below)
          && (match st.up.(bi) with
              | Some u -> Rat.compare st.beta.(i) u > 0
              | None -> false)
        in
        if (below || above) && (!r = -1 || bi < st.basis.(!r)) then begin
          r := i;
          leaves_above := above
        end
      done;
      if !r = -1 then finish (Optimal (extract st ~cost:cost_full))
      else begin
        let r = !r in
        let above = !leaves_above in
        (* rho = row r of B^-1 *)
        Array.fill st.y 0 m Rat.zero;
        st.y.(r) <- Rat.one;
        Basis.btran st.fac st.y;
        (* reduced costs of candidates need y2 = B^-T c_B *)
        for i = 0 to m - 1 do
          st.y2.(i) <- cost_full.(st.basis.(i))
        done;
        Basis.btran st.fac st.y2;
        (* dual ratio test over allowed nonbasic columns: the entering
           move must push x_Br back toward the violated bound while
           keeping every reduced-cost sign condition; minimize
           |cbar_j|/|alpha_rj|, ties to the smallest column *)
        let best = ref None in (* (ratio, j, alpha_rj) *)
        for j = 0 to art_start - 1 do
          if st.status.(j) <> Basic && not (fixed st j) then begin
            let arj = Sparse.col_dot st.inst st.y j in
            let s = Rat.sign arj in
            if s <> 0 then begin
              let candidate =
                if above then
                  (st.status.(j) = Lower && s > 0)
                  || (st.status.(j) = Upper && s < 0)
                else
                  (st.status.(j) = Lower && s < 0)
                  || (st.status.(j) = Upper && s > 0)
              in
              if candidate then begin
                let cb =
                  Rat.sub cost_full.(j) (Sparse.col_dot st.inst st.y2 j)
                in
                let ratio = Rat.div (Rat.abs cb) (Rat.abs arj) in
                match !best with
                | None -> best := Some (ratio, j, arj)
                | Some (bratio, bj, _) ->
                  let c = Rat.compare ratio bratio in
                  if c < 0 || (c = 0 && j < bj) then
                    best := Some (ratio, j, arj)
              end
            end
          end
        done;
        match !best with
        | None ->
          (* the violated row cannot be repaired: primal infeasible *)
          finish Infeasible
        | Some (_, q, arq) ->
          Array.fill st.alpha 0 m Rat.zero;
          load_col st st.alpha q;
          Basis.ftran st.fac st.alpha;
          let bi = st.basis.(r) in
          let target =
            if above then
              match st.up.(bi) with
              | Some u -> u
              | None ->
                (* [above] promised an upper bound for the leaving basic;
                   a warm snapshot that does not match the problem (stale
                   bounds, wrong statuses) can break that promise. That is
                   a bad warm start, not a proof of anything — give up on
                   this start and let the caller fall back to a cold
                   primal solve rather than abort the process *)
                raise Stuck
            else st.lo.(bi)
          in
          let t = Rat.div (Rat.sub st.beta.(r) target) arq in
          let xq_new = Rat.add (nonbasic_value st q) t in
          for i = 0 to m - 1 do
            if i <> r && not (Rat.is_zero st.alpha.(i)) then
              st.beta.(i) <- Rat.sub st.beta.(i) (Rat.mul t st.alpha.(i))
          done;
          st.beta.(r) <- xq_new;
          st.basis.(r) <- q;
          st.status.(q) <- Basic;
          st.status.(bi) <- (if above then Upper else Lower);
          Basis.append st.fac ~pivot_row:r ~alpha:st.alpha;
          st.npivots <- st.npivots + 1;
          maybe_refactor st;
          loop (iter + 1)
      end
    in
    loop 0
  end
