open Ipet_num

exception Singular

type eta = {
  erow : int;            (* internal pivot row *)
  epiv : Rat.t;          (* pivot value, nonzero *)
  eidx : int array;      (* off-pivot internal rows *)
  evals : Rat.t array;   (* matching values *)
}

type t = {
  m : int;
  mutable etas : eta array;     (* in application (oldest-first) order *)
  mutable n : int;
  int_of_ext : int array;       (* internal position of external row i *)
  mutable perm_trivial : bool;
  scratch : Rat.t array;        (* length m, kept all-zero between uses *)
}

let dummy_eta = { erow = 0; epiv = Rat.one; eidx = [||]; evals = [||] }

let create m =
  { m;
    etas = Array.make (max 16 (m / 2)) dummy_eta;
    n = 0;
    int_of_ext = Array.init m (fun i -> i);
    perm_trivial = true;
    scratch = Array.make m Rat.zero }

let dim t = t.m
let neta t = t.n

let push t e =
  if t.n = Array.length t.etas then begin
    let bigger = Array.make (2 * t.n + 16) dummy_eta in
    Array.blit t.etas 0 bigger 0 t.n;
    t.etas <- bigger
  end;
  t.etas.(t.n) <- e;
  t.n <- t.n + 1

(* v := E⁻¹ v for one eta: v.(erow) <- v.(erow)/epiv, then eliminate *)
let apply_eta e v =
  let vr = v.(e.erow) in
  if not (Rat.is_zero vr) then begin
    let vr = Rat.div vr e.epiv in
    v.(e.erow) <- vr;
    for k = 0 to Array.length e.eidx - 1 do
      let i = Array.unsafe_get e.eidx k in
      v.(i) <- Rat.sub v.(i) (Rat.mul (Array.unsafe_get e.evals k) vr)
    done
  end

(* y := E⁻ᵀ y: only y.(erow) changes *)
let apply_eta_t e y =
  let acc = ref y.(e.erow) in
  for k = 0 to Array.length e.eidx - 1 do
    let yv = Array.unsafe_get y (Array.unsafe_get e.eidx k) in
    if not (Rat.is_zero yv) then
      acc := Rat.sub !acc (Rat.mul (Array.unsafe_get e.evals k) yv)
  done;
  y.(e.erow) <- Rat.div !acc e.epiv

let apply_perm t v =
  if not t.perm_trivial then begin
    let s = t.scratch in
    for i = 0 to t.m - 1 do
      s.(i) <- v.(i)
    done;
    for i = 0 to t.m - 1 do
      v.(i) <- s.(t.int_of_ext.(i))
    done;
    Array.fill s 0 t.m Rat.zero
  end

let apply_perm_t t v =
  if not t.perm_trivial then begin
    let s = t.scratch in
    for i = 0 to t.m - 1 do
      s.(i) <- v.(i)
    done;
    for i = 0 to t.m - 1 do
      v.(t.int_of_ext.(i)) <- s.(i)
    done;
    Array.fill s 0 t.m Rat.zero
  end

let ftran t v =
  for k = 0 to t.n - 1 do
    apply_eta t.etas.(k) v
  done;
  apply_perm t v

let btran t y =
  apply_perm_t t y;
  for k = t.n - 1 downto 0 do
    apply_eta_t t.etas.(k) y
  done

let append t ~pivot_row ~alpha =
  (* convert the externally-indexed column into internal indexing:
     α_int.(int_of_ext.(j)) = α.(j) *)
  let erow_int = t.int_of_ext.(pivot_row) in
  let count = ref 0 in
  for j = 0 to t.m - 1 do
    if j <> pivot_row && not (Rat.is_zero alpha.(j)) then incr count
  done;
  let eidx = Array.make !count 0 and evals = Array.make !count Rat.zero in
  let k = ref 0 in
  for j = 0 to t.m - 1 do
    if j <> pivot_row && not (Rat.is_zero alpha.(j)) then begin
      eidx.(!k) <- t.int_of_ext.(j);
      evals.(!k) <- alpha.(j);
      incr k
    end
  done;
  let epiv = alpha.(pivot_row) in
  assert (not (Rat.is_zero epiv));
  push t { erow = erow_int; epiv; eidx; evals }

let refactor t ~col_of ~basis =
  let m = t.m in
  t.n <- 0;
  (* process sparsest columns first: unit slack/artificial columns produce
     trivial etas and no fill; ties broken by row for determinism *)
  let order = Array.init m (fun i -> i) in
  Array.sort
    (fun i j ->
      let ni = Array.length (col_of basis.(i)).Sparse.rows
      and nj = Array.length (col_of basis.(j)).Sparse.rows in
      if ni <> nj then compare ni nj else compare i j)
    order;
  let row_pivoted = Array.make m false in
  let v = t.scratch in  (* all zeros on entry *)
  let touched = Array.make m 0 in
  let in_touch = Array.make m false in
  Array.iter
    (fun ext_row ->
      let c = col_of basis.(ext_row) in
      (* load the column and run it through the etas built so far,
         tracking the touched support to avoid O(m) clears *)
      let ntouch = ref 0 in
      let touch i =
        if not in_touch.(i) then begin
          in_touch.(i) <- true;
          touched.(!ntouch) <- i;
          incr ntouch
        end
      in
      for k = 0 to Array.length c.Sparse.rows - 1 do
        let i = c.Sparse.rows.(k) in
        touch i;
        v.(i) <- Rat.add v.(i) c.Sparse.vals.(k)
      done;
      for k = 0 to t.n - 1 do
        let e = t.etas.(k) in
        let vr = v.(e.erow) in
        if not (Rat.is_zero vr) then begin
          let vr = Rat.div vr e.epiv in
          v.(e.erow) <- vr;
          for l = 0 to Array.length e.eidx - 1 do
            let i = e.eidx.(l) in
            let d = Rat.mul e.evals.(l) vr in
            if not (Rat.is_zero d) then begin
              touch i;
              v.(i) <- Rat.sub v.(i) d
            end
          done
        end
      done;
      (* deterministic pivot: smallest unpivoted internal row with a
         nonzero transformed entry *)
      let pivot = ref (-1) in
      for k = 0 to !ntouch - 1 do
        let i = touched.(k) in
        if (not row_pivoted.(i)) && not (Rat.is_zero v.(i))
           && (!pivot = -1 || i < !pivot)
        then pivot := i
      done;
      if !pivot = -1 then begin
        (* clean up scratch before bailing out *)
        for k = 0 to !ntouch - 1 do
          v.(touched.(k)) <- Rat.zero;
          in_touch.(touched.(k)) <- false
        done;
        raise Singular
      end;
      let r = !pivot in
      let noff = ref 0 in
      for k = 0 to !ntouch - 1 do
        let i = touched.(k) in
        if i <> r && not (Rat.is_zero v.(i)) then incr noff
      done;
      let eidx = Array.make !noff 0 and evals = Array.make !noff Rat.zero in
      let l = ref 0 in
      for k = 0 to !ntouch - 1 do
        let i = touched.(k) in
        if i <> r && not (Rat.is_zero v.(i)) then begin
          eidx.(!l) <- i;
          evals.(!l) <- v.(i);
          incr l
        end
      done;
      push t { erow = r; epiv = v.(r); eidx; evals };
      row_pivoted.(r) <- true;
      t.int_of_ext.(ext_row) <- r;
      for k = 0 to !ntouch - 1 do
        v.(touched.(k)) <- Rat.zero;
        in_touch.(touched.(k)) <- false
      done)
    order;
  let trivial = ref true in
  for i = 0 to m - 1 do
    if t.int_of_ext.(i) <> i then trivial := false
  done;
  t.perm_trivial <- !trivial
