(** Branch-and-bound integer linear programming over the exact simplex.

    All variables are integer and non-negative. The solver records the
    statistics the paper reports in Section VI: how many LP relaxations were
    solved and whether the very first relaxation was already integral (which
    the paper observed to always be the case in practice for IPET
    problems).

    Unless disabled, every problem is first reduced by {!Presolve}: flow
    equalities are eliminated by substitution, bounds are propagated, and
    redundant rows dropped, after which the branch and bound runs on the
    (much smaller) residual problem. The reported assignment is always over
    the original variables. *)

open Ipet_num

type stats = {
  lp_calls : int;          (** number of LP relaxations solved *)
  nodes : int;             (** branch-and-bound nodes explored *)
  pivots : int;            (** simplex pivots over all relaxations *)
  refactorizations : int;  (** basis refactorizations over all relaxations *)
  warm_hits : int;
      (** non-root nodes re-optimized from the parent basis by the dual
          simplex, skipping phase 1 *)
  warm_misses : int;
      (** non-root nodes that fell back to a cold solve (dual gave up, or
          the parent itself was solved cold) *)
  first_lp_integral : bool;
      (** the root relaxation was already integer-valued *)
  presolve : Presolve.stats option;
      (** reduction statistics; [None] when presolve was disabled *)
}

type result =
  | Optimal of {
      value : Rat.t;  (** integral *)
      assignment : (string * Rat.t) list;
      stats : stats;
    }
  | Infeasible of stats
  | Unbounded of stats

exception Node_limit_exceeded

val solve :
  ?max_nodes:int -> ?presolve:bool -> ?pool:Ipet_par.Pool.t ->
  Lp_problem.t -> result
(** [solve problem] maximizes or minimizes the objective over non-negative
    integer assignments. [max_nodes] (default [100_000]) bounds the search;
    [presolve] (default [true]) runs {!Presolve.run} first. The optimal
    value, and the witness assignment modulo alternative optima, do not
    depend on [presolve].

    Branching tightens variable bounds on one shared sparse instance
    rather than adding constraint rows, and each child node warm-starts
    from its parent's optimal basis via the dual simplex
    ({!Revised.solve_dual}); {!stats} reports the resulting hit/miss
    split. The root relaxation is solved cold and pivot-for-pivot
    identically to the historical dense solver.

    [pool] (default {!Ipet_par.Pool.default}) supplies domains for
    speculative parallel branch-and-bound: node LP relaxations are
    pre-solved ahead of a deterministic sequential replay. The result
    {e and} the {!stats} are bit-identical whatever the pool size — a
    parallel solve visits the same nodes, performs the same per-node
    pivots and returns the same witness as a sequential one.
    @raise Node_limit_exceeded if the bound is hit. *)
