(** Two-phase primal simplex over exact rationals.

    Solves {!Lp_problem.t} instances (all variables implicitly
    non-negative). Bland's anti-cycling rule guarantees termination, and all
    arithmetic is exact, so the solver either returns a true optimum or a
    correct infeasible/unbounded verdict. *)

open Ipet_num

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list }
      (** Optimal objective value and one optimal vertex; variables absent
          from [assignment] are zero. *)
  | Infeasible
  | Unbounded

val solve : ?vars:string list -> ?pivots:int ref -> Lp_problem.t -> result
(** [vars], when given, must be {!Lp_problem.variables} of the problem (or
    a sorted superset of it); callers that solve many closely related
    problems — {!Ilp.solve}'s branch-and-bound nodes — pass it to avoid
    recomputing the sort-dedup per LP call.

    [pivots], when given, is incremented by the number of tableau pivots
    this call performed (phase 1 and 2 combined). This is the domain-safe
    way to attribute pivot effort to one solve: reading a before/after
    delta of {!pivots} counts other domains' concurrent work. *)

val assignment_env : (string * Rat.t) list -> string -> Rat.t
(** Turn an assignment into a total environment (absent variables are 0). *)

val pivots : unit -> int
(** Cumulative tableau pivots performed by this process across all
    domains, phase 1 and 2 combined. Updated once per solve, after the
    fact; for per-solve attribution pass [?pivots] to {!solve} instead of
    reading deltas. *)
