(** Exact-rational LP solving — the front door to the sparse revised
    simplex ({!Revised}).

    Solves {!Lp_problem.t} instances (all variables implicitly
    non-negative). Bland's anti-cycling rule guarantees termination, and
    all arithmetic is exact, so the solver either returns a true optimum
    or a correct infeasible/unbounded verdict. The pivot trajectory is
    identical to the historical dense tableau ({!Dense}), so results —
    including the particular optimal vertex returned — are unchanged;
    only the cost per pivot is: the constraint matrix is held as sparse
    columns and the basis inverse as an eta-file factorization with
    periodic refactorization. *)

open Ipet_num

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list }
      (** Optimal objective value and one optimal vertex; variables absent
          from [assignment] are zero. *)
  | Infeasible
  | Unbounded

val solve :
  ?vars:string list -> ?pivots:int ref -> ?refactors:int ref ->
  Lp_problem.t -> result
(** [vars], when given, must be {!Lp_problem.variables} of the problem (or
    a sorted superset of it); callers that solve many closely related
    problems — {!Ilp.solve}'s branch-and-bound nodes — pass it to avoid
    recomputing the sort-dedup per LP call.

    [pivots], when given, is incremented by the number of simplex pivots
    (basis changes) this call performed (phase 1 and 2 combined);
    [refactors] likewise by the number of basis refactorizations. This is
    the domain-safe way to attribute solver effort to one solve: reading
    a before/after delta of {!pivots} counts other domains' concurrent
    work. *)

val assignment_env : (string * Rat.t) list -> string -> Rat.t
(** Turn an assignment into a total environment (absent variables are 0).
    Backed by a hash table built once, so lookups are O(1) — this closure
    is hot in postsolve and witness checking. *)

val record : ?pivots:int ref -> ?refactors:int ref -> Revised.run -> unit
(** Fold a {!Revised} run's pivot/refactorization counts into the global
    counters (and the per-solve refs, when given). {!solve} does this
    itself; callers that drive {!Revised} directly — {!Ilp.solve}'s
    warm-started branch-and-bound nodes — must call it once per run so
    {!pivots} keeps counting every pivot in the process. *)

val pivots : unit -> int
(** Cumulative simplex pivots performed by this process across all
    domains, phase 1 and 2 combined. Updated once per solve, after the
    fact; for per-solve attribution pass [?pivots] to {!solve} instead of
    reading deltas. *)

val refactorizations : unit -> int
(** Cumulative basis refactorizations, with the same accounting contract
    as {!pivots}. *)
