(* Fixpoint presolve over exact rationals.

   Rows are normalized to [expr <= 0] / [expr = 0] (Ge rows are negated on
   intake). Three bound stores drive the reductions: explicit bounds come
   from singleton rows that were folded away (and are re-emitted on output,
   so dropping their rows never loses information), implied bounds come
   from propagation over multi-variable rows (valid consequences, used for
   forcing, fixing and infeasibility detection but never to justify
   dropping a row — that asymmetry is what makes removal safe), and the
   implicit [x >= 0] of every variable.

   Variable elimination records definitions most-recent-first; postsolve
   replays them in that order, so a definition may freely mention variables
   that were eliminated later. *)

open Ipet_num

type stats = {
  vars_before : int;
  vars_after : int;
  constrs_before : int;
  constrs_after : int;
  rounds : int;
  substituted : int;
  fixed : int;
}

type reduction = {
  problem : Lp_problem.t;
  postsolve : (string * Rat.t) list -> (string * Rat.t) list;
  stats : stats;
}

type outcome =
  | Reduced of reduction
  | Proved_infeasible of { stats : stats; reason : string }

exception Infeasible of string

let max_rounds = 20
let max_def_terms = 64

type row = {
  mutable expr : Linexpr.t;
  rel : Lp_problem.relation;  (* Le or Eq; never Ge *)
  origin : string;
  idx : int;  (* intake position, for order-preserving emission *)
  mutable live : bool;
}

type state = {
  integer : bool;
  mutable rows : row list;  (* in original order; killed rows keep their slot *)
  mutable objective : Linexpr.t;
  mutable defs : (string * Linexpr.t) list;  (* most recent first *)
  exp_ub : (string, Rat.t * string * int) Hashtbl.t;
  exp_lb : (string, Rat.t * string * int) Hashtbl.t;  (* always > 0 *)
  imp_ub : (string, Rat.t) Hashtbl.t;
  imp_lb : (string, Rat.t) Hashtbl.t;
  mutable changed : bool;
  mutable substituted : int;
  mutable fixed : int;
}

let round_down st b = if st.integer then Rat.of_bigint (Rat.floor b) else b
let round_up st b = if st.integer then Rat.of_bigint (Rat.ceil b) else b

(* --- bounds -------------------------------------------------------------- *)

let eff_lb st v =
  let l =
    match Hashtbl.find_opt st.exp_lb v with
    | Some (x, _, _) -> x
    | None -> Rat.zero
  in
  match Hashtbl.find_opt st.imp_lb v with Some x -> Rat.max l x | None -> l

let eff_ub st v =
  let meet a b = match a with None -> Some b | Some x -> Some (Rat.min x b) in
  let u =
    match Hashtbl.find_opt st.exp_ub v with
    | Some (x, _, _) -> Some x
    | None -> None
  in
  match Hashtbl.find_opt st.imp_ub v with Some x -> meet u x | None -> u

(* bounds safe for redundancy checks: only what the output re-emits *)
let safe_lb st v =
  match Hashtbl.find_opt st.exp_lb v with Some (x, _, _) -> x | None -> Rat.zero

let safe_ub st v =
  match Hashtbl.find_opt st.exp_ub v with Some (x, _, _) -> Some x | None -> None

let term_count e = Linexpr.fold_terms (fun _ _ n -> n + 1) e 0

let integral_expr e =
  Rat.is_integer (Linexpr.constant e)
  && Linexpr.fold_terms (fun _ c ok -> ok && Rat.is_integer c) e true

(* --- substitution -------------------------------------------------------- *)

let subst_expr expr v e =
  let c = Linexpr.coeff expr v in
  if Rat.is_zero c then expr
  else Linexpr.add expr (Linexpr.scale c (Linexpr.sub e (Linexpr.var v)))

let substitute st v e =
  st.defs <- (v, e) :: st.defs;
  Hashtbl.remove st.exp_ub v;
  Hashtbl.remove st.exp_lb v;
  Hashtbl.remove st.imp_ub v;
  Hashtbl.remove st.imp_lb v;
  st.objective <- subst_expr st.objective v e;
  List.iter (fun r -> if r.live then r.expr <- subst_expr r.expr v e) st.rows;
  st.changed <- true

let fix st v value ~why =
  if st.integer && not (Rat.is_integer value) then
    raise
      (Infeasible
         (Printf.sprintf "%s fixes %s to the fractional value %s" why v
            (Rat.to_string value)));
  if Rat.sign value < 0 then
    raise (Infeasible (Printf.sprintf "%s fixes %s to a negative value" why v));
  if Rat.compare value (eff_lb st v) < 0 then
    raise (Infeasible (Printf.sprintf "%s fixes %s below its lower bound" why v));
  (match eff_ub st v with
   | Some u when Rat.compare value u > 0 ->
     raise (Infeasible (Printf.sprintf "%s fixes %s above its upper bound" why v))
   | Some _ | None -> ());
  substitute st v (Linexpr.const value);
  st.fixed <- st.fixed + 1

(* after a bound update: detect conflicts and pinch-fixed variables *)
let check_bounds st v ~why =
  match eff_ub st v with
  | None -> ()
  | Some u ->
    let l = eff_lb st v in
    let c = Rat.compare u l in
    if c < 0 then
      raise
        (Infeasible (Printf.sprintf "%s leaves %s with an empty range" why v))
    else if c = 0 then fix st v l ~why

let tighten_exp_ub st v b ~origin ~idx =
  let b = round_down st b in
  (match Hashtbl.find_opt st.exp_ub v with
   | Some (cur, _, _) when Rat.compare cur b <= 0 -> ()
   | Some _ | None ->
     Hashtbl.replace st.exp_ub v (b, origin, idx);
     st.changed <- true);
  check_bounds st v ~why:origin

let tighten_exp_lb st v b ~origin ~idx =
  let b = round_up st b in
  if Rat.sign b > 0 then begin
    (match Hashtbl.find_opt st.exp_lb v with
     | Some (cur, _, _) when Rat.compare cur b >= 0 -> ()
     | Some _ | None ->
       Hashtbl.replace st.exp_lb v (b, origin, idx);
       st.changed <- true);
    check_bounds st v ~why:origin
  end

let tighten_imp_ub st v b ~why =
  let b = round_down st b in
  let improves = match eff_ub st v with
    | None -> true
    | Some cur -> Rat.compare b cur < 0
  in
  if improves then begin
    Hashtbl.replace st.imp_ub v b;
    st.changed <- true;
    check_bounds st v ~why
  end

let tighten_imp_lb st v b ~why =
  let b = round_up st b in
  if Rat.compare b (eff_lb st v) > 0 then begin
    Hashtbl.replace st.imp_lb v b;
    st.changed <- true;
    check_bounds st v ~why
  end

(* --- activities ---------------------------------------------------------- *)

(* min/max of [expr] over the box given by the bound accessors; [None] is
   the corresponding infinity *)
let min_activity lbf ubf expr =
  Linexpr.fold_terms
    (fun v c acc ->
      match acc with
      | None -> None
      | Some s ->
        if Rat.sign c > 0 then Some (Rat.add s (Rat.mul c (lbf v)))
        else (
          match ubf v with
          | None -> None
          | Some u -> Some (Rat.add s (Rat.mul c u))))
    expr
    (Some (Linexpr.constant expr))

let max_activity lbf ubf expr =
  Linexpr.fold_terms
    (fun v c acc ->
      match acc with
      | None -> None
      | Some s ->
        if Rat.sign c < 0 then Some (Rat.add s (Rat.mul c (lbf v)))
        else (
          match ubf v with
          | None -> None
          | Some u -> Some (Rat.add s (Rat.mul c u))))
    expr
    (Some (Linexpr.constant expr))

(* --- row processing ------------------------------------------------------ *)

let kill st r =
  r.live <- false;
  st.changed <- true

(* [expr <= 0] forces every variable to its min-side bound *)
let force_min st r =
  let pins =
    Linexpr.fold_terms
      (fun v c acc ->
        let value =
          if Rat.sign c > 0 then eff_lb st v
          else match eff_ub st v with Some u -> u | None -> assert false
        in
        (v, value) :: acc)
      r.expr []
  in
  kill st r;
  List.iter (fun (v, value) -> fix st v value ~why:("forcing row " ^ r.origin)) pins

let force_max st r =
  let pins =
    Linexpr.fold_terms
      (fun v c acc ->
        let value =
          if Rat.sign c < 0 then eff_lb st v
          else match eff_ub st v with Some u -> u | None -> assert false
        in
        (v, value) :: acc)
      r.expr []
  in
  kill st r;
  List.iter (fun (v, value) -> fix st v value ~why:("forcing row " ^ r.origin)) pins

(* propagate one direction of [expr <= 0] into implied bounds *)
let propagate_le st origin expr =
  let inf = ref 0 and sum_fin = ref (Linexpr.constant expr) in
  Linexpr.fold_terms
    (fun v c () ->
      if Rat.sign c > 0 then sum_fin := Rat.add !sum_fin (Rat.mul c (eff_lb st v))
      else
        match eff_ub st v with
        | Some u -> sum_fin := Rat.add !sum_fin (Rat.mul c u)
        | None -> incr inf)
    expr ();
  Linexpr.fold_terms
    (fun v c () ->
      let contrib =
        if Rat.sign c > 0 then Some (Rat.mul c (eff_lb st v))
        else
          match eff_ub st v with
          | Some u -> Some (Rat.mul c u)
          | None -> None
      in
      let residual =
        match contrib with
        | Some m when !inf = 0 -> Some (Rat.sub !sum_fin m)
        | None when !inf = 1 -> Some !sum_fin
        | Some _ | None -> None
      in
      match residual with
      | None -> ()
      | Some s ->
        let bound = Rat.div (Rat.neg s) c in
        let why = "propagation from " ^ origin in
        if Rat.sign c > 0 then tighten_imp_ub st v bound ~why
        else tighten_imp_lb st v bound ~why)
    expr ()

let process_le st r =
  (match min_activity (eff_lb st) (eff_ub st) r.expr with
   | Some m when Rat.sign m > 0 ->
     raise (Infeasible ("row cannot be satisfied: " ^ r.origin))
   | Some m when Rat.is_zero m -> force_min st r
   | Some _ | None -> ());
  if r.live then begin
    (match max_activity (safe_lb st) (safe_ub st) r.expr with
     | Some m when Rat.sign m <= 0 -> kill st r  (* implied by emitted bounds *)
     | Some _ | None -> ());
    if r.live then propagate_le st r.origin r.expr
  end

let process_eq st r =
  (match min_activity (eff_lb st) (eff_ub st) r.expr with
   | Some m when Rat.sign m > 0 ->
     raise (Infeasible ("row cannot be satisfied: " ^ r.origin))
   | Some m when Rat.is_zero m -> force_min st r
   | Some _ | None -> ());
  if r.live then begin
    match max_activity (eff_lb st) (eff_ub st) r.expr with
    | Some m when Rat.sign m < 0 ->
      raise (Infeasible ("row cannot be satisfied: " ^ r.origin))
    | Some m when Rat.is_zero m -> force_max st r
    | Some _ | None ->
      propagate_le st r.origin r.expr;
      propagate_le st r.origin (Linexpr.neg r.expr)
  end

let process_row st r =
  if r.live then begin
    if Linexpr.is_const r.expr then begin
      let c = Linexpr.constant r.expr in
      let sat =
        match r.rel with
        | Lp_problem.Le -> Rat.sign c <= 0
        | Lp_problem.Eq -> Rat.is_zero c
        | Lp_problem.Ge -> assert false
      in
      if not sat then
        raise (Infeasible ("row reduced to a false constant: " ^ r.origin));
      kill st r
    end
    else
      match Linexpr.vars r.expr with
      | [ v ] ->
        (* singleton: fold into the bound tables *)
        let a = Linexpr.coeff r.expr v in
        let b = Rat.div (Rat.neg (Linexpr.constant r.expr)) a in
        kill st r;
        (match r.rel with
         | Lp_problem.Eq -> fix st v b ~why:("row " ^ r.origin)
         | Lp_problem.Le ->
           if Rat.sign a > 0 then tighten_exp_ub st v b ~origin:r.origin ~idx:r.idx
           else tighten_exp_lb st v b ~origin:r.origin ~idx:r.idx
         | Lp_problem.Ge -> assert false)
      | _ ->
        (match r.rel with
         | Lp_problem.Le -> process_le st r
         | Lp_problem.Eq -> process_eq st r
         | Lp_problem.Ge -> assert false)
  end

(* --- variable elimination ------------------------------------------------ *)

(* the definition of [v] from equality row [expr = 0] *)
let definition_of expr v =
  let a = Linexpr.coeff expr v in
  Linexpr.scale
    (Rat.div Rat.minus_one a)
    (Linexpr.sub expr (Linexpr.var ~coeff:a v))

let try_eliminate st r =
  if r.live && r.rel = Lp_problem.Eq && term_count r.expr >= 2 then begin
    let candidates =
      Linexpr.fold_terms
        (fun v _ acc ->
          let e = definition_of r.expr v in
          if term_count e <= max_def_terms
             && ((not st.integer) || integral_expr e)
          then (v, e) :: acc
          else acc)
        r.expr []
      |> List.rev
    in
    (* [e >= 0] must be justified by bounds the output preserves (emitted
       explicit-bound rows, or postsolve defaults for vanished variables) —
       implied bounds may circularly depend on [v >= 0] itself *)
    let nonneg (_, e) =
      match min_activity (safe_lb st) (safe_ub st) e with
      | Some m -> Rat.sign m >= 0
      | None -> false
    in
    let choice =
      match List.find_opt nonneg candidates with
      | Some c -> Some (c, false)
      | None ->
        (match candidates with c :: _ -> Some (c, true) | [] -> None)
    in
    match choice with
    | None -> ()
    | Some ((v, e), needs_guard) ->
      kill st r;
      (* the eliminated variable's constraints move onto its definition *)
      let extra = ref [] in
      if needs_guard then
        extra :=
          { expr = Linexpr.neg e; rel = Lp_problem.Le; origin = r.origin;
            idx = r.idx; live = true }
          :: !extra;
      (match Hashtbl.find_opt st.exp_ub v with
       | Some (u, origin, idx) ->
         extra :=
           { expr = Linexpr.sub e (Linexpr.const u); rel = Lp_problem.Le;
             origin; idx; live = true }
           :: !extra
       | None -> ());
      (match Hashtbl.find_opt st.exp_lb v with
       | Some (l, origin, idx) ->
         extra :=
           { expr = Linexpr.sub (Linexpr.const l) e; rel = Lp_problem.Le;
             origin; idx; live = true }
           :: !extra
       | None -> ());
      st.rows <- st.rows @ !extra;
      substitute st v e;
      st.substituted <- st.substituted + 1
  end

(* --- driver -------------------------------------------------------------- *)

let dedup st =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if r.live then begin
        let key =
          (match r.rel with Lp_problem.Le -> "L" | Lp_problem.Eq -> "E"
                          | Lp_problem.Ge -> assert false)
          ^ Linexpr.to_string r.expr
        in
        if Hashtbl.mem seen key then kill st r else Hashtbl.add seen key ()
      end)
    st.rows

let intake idx (c : Lp_problem.constr) =
  match c.Lp_problem.rel with
  | Lp_problem.Le ->
    { expr = c.Lp_problem.expr; rel = Lp_problem.Le;
      origin = c.Lp_problem.origin; idx; live = true }
  | Lp_problem.Ge ->
    { expr = Linexpr.neg c.Lp_problem.expr; rel = Lp_problem.Le;
      origin = c.Lp_problem.origin; idx; live = true }
  | Lp_problem.Eq ->
    { expr = c.Lp_problem.expr; rel = Lp_problem.Eq;
      origin = c.Lp_problem.origin; idx; live = true }

(* Emission preserves the original constraint order: every output row —
   including a re-emitted bound — is placed at the intake position of the
   row it descends from. Keeping the reduced problem a subsequence of the
   original (same variable order, same row order) keeps the simplex
   pivoting deterministic in the same way with and without presolve, which
   is what lets an alternate-optima witness agree between the two paths. *)
let emit st =
  let rows =
    List.filter_map
      (fun r -> if r.live then Some (r.idx, r.expr, r.rel, r.origin) else None)
      st.rows
  in
  (* re-emit the explicit bounds of the variables that survived *)
  let live = Hashtbl.create 64 in
  let note e = Linexpr.fold_terms (fun v _ () -> Hashtbl.replace live v ()) e () in
  List.iter (fun (_, e, _, _) -> note e) rows;
  note st.objective;
  let bound_rows = ref [] in
  Hashtbl.iter
    (fun v (u, origin, idx) ->
      if Hashtbl.mem live v then
        bound_rows :=
          (idx, Linexpr.sub (Linexpr.var v) (Linexpr.const u), Lp_problem.Le,
           origin)
          :: !bound_rows)
    st.exp_ub;
  Hashtbl.iter
    (fun v (l, origin, idx) ->
      if Hashtbl.mem live v then
        bound_rows :=
          (idx, Linexpr.sub (Linexpr.const l) (Linexpr.var v), Lp_problem.Le,
           origin)
          :: !bound_rows)
    st.exp_lb;
  List.sort
    (fun (i, e1, _, _) (j, e2, _, _) ->
      match compare i j with
      | 0 -> compare (Linexpr.to_string e1) (Linexpr.to_string e2)
      | c -> c)
    (rows @ !bound_rows)
  |> List.map (fun (_, expr, rel, origin) -> Lp_problem.constr ~origin expr rel)

let run ?(integer = true) (problem : Lp_problem.t) =
  let vars_before = Lp_problem.num_variables problem in
  let constrs_before = Lp_problem.num_constraints problem in
  let st =
    { integer;
      rows = List.mapi intake problem.Lp_problem.constraints;
      objective = problem.Lp_problem.objective;
      defs = [];
      exp_ub = Hashtbl.create 64;
      exp_lb = Hashtbl.create 64;
      imp_ub = Hashtbl.create 64;
      imp_lb = Hashtbl.create 64;
      changed = true;
      substituted = 0;
      fixed = 0 }
  in
  let rounds = ref 0 in
  let stats_at ~vars_after ~constrs_after =
    { vars_before; vars_after; constrs_before; constrs_after;
      rounds = !rounds; substituted = st.substituted; fixed = st.fixed }
  in
  match
    while st.changed && !rounds < max_rounds do
      st.changed <- false;
      incr rounds;
      dedup st;
      List.iter (process_row st) st.rows;
      List.iter (try_eliminate st) st.rows
    done
  with
  | () ->
    let constraints = emit st in
    let reduced =
      Lp_problem.make problem.Lp_problem.direction st.objective constraints
    in
    let original_vars = Lp_problem.variables problem in
    let defs = st.defs in
    (* a variable that vanished from the reduced problem is unconstrained
       there, but its recorded explicit lower bound must still hold in the
       reconstruction *)
    let lb_defaults =
      Hashtbl.fold (fun v (l, _, _) acc -> (v, l) :: acc) st.exp_lb []
    in
    let postsolve assignment =
      let env = Hashtbl.create 64 in
      List.iter (fun (v, l) -> Hashtbl.replace env v l) lb_defaults;
      List.iter (fun (v, x) -> Hashtbl.replace env v x) assignment;
      let get v =
        match Hashtbl.find_opt env v with Some x -> x | None -> Rat.zero
      in
      List.iter (fun (v, e) -> Hashtbl.replace env v (Linexpr.eval get e)) defs;
      List.filter_map
        (fun v ->
          let x = get v in
          if Rat.is_zero x then None else Some (v, x))
        original_vars
    in
    Reduced
      { problem = reduced;
        postsolve;
        stats =
          stats_at
            ~vars_after:(Lp_problem.num_variables reduced)
            ~constrs_after:(List.length constraints) }
  | exception Infeasible reason ->
    let live_rows = List.length (List.filter (fun r -> r.live) st.rows) in
    Proved_infeasible
      { stats = stats_at ~vars_after:0 ~constrs_after:live_rows; reason }
