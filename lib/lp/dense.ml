(* Two-phase primal simplex on a dense rational tableau (historical
   implementation, superseded by Revised; see dense.mli).

   Layout: columns 0..n_struct-1 are the problem variables, then one
   slack/surplus column per inequality, then one artificial column per
   Ge/Eq row. Each row i stores the equation sum_j a.(i).(j) x_j = b.(i)
   with b.(i) >= 0 and basis.(i) the basic column of the row. Entering and
   leaving variables follow Bland's rule, which prevents cycling. *)

open Ipet_num

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list }
  | Infeasible
  | Unbounded

type tableau = {
  a : Rat.t array array;  (* m rows * ncols *)
  b : Rat.t array;        (* m, always >= 0 *)
  basis : int array;      (* m, column basic in each row *)
  ncols : int;
  art_start : int;        (* columns >= art_start are artificial *)
  mutable npivots : int;  (* pivots performed on this tableau *)
}

let pivot t ~row ~col =
  t.npivots <- t.npivots + 1;
  let m = Array.length t.a in
  let p = t.a.(row).(col) in
  assert (not (Rat.is_zero p));
  let inv_p = Rat.inv p in
  for j = 0 to t.ncols - 1 do
    t.a.(row).(j) <- Rat.mul t.a.(row).(j) inv_p
  done;
  t.b.(row) <- Rat.mul t.b.(row) inv_p;
  for i = 0 to m - 1 do
    if i <> row && not (Rat.is_zero t.a.(i).(col)) then begin
      let f = t.a.(i).(col) in
      for j = 0 to t.ncols - 1 do
        t.a.(i).(j) <- Rat.sub t.a.(i).(j) (Rat.mul f t.a.(row).(j))
      done;
      t.b.(i) <- Rat.sub t.b.(i) (Rat.mul f t.b.(row))
    end
  done;
  t.basis.(row) <- col

(* reduced costs cbar_j = c_j - sum_i c_{basis i} a_ij, and objective value *)
let reduced_costs t cost =
  let m = Array.length t.a in
  let cbar = Array.copy cost in
  let z = ref Rat.zero in
  for i = 0 to m - 1 do
    let cb = cost.(t.basis.(i)) in
    if not (Rat.is_zero cb) then begin
      z := Rat.add !z (Rat.mul cb t.b.(i));
      for j = 0 to t.ncols - 1 do
        cbar.(j) <- Rat.sub cbar.(j) (Rat.mul cb t.a.(i).(j))
      done
    end
  done;
  (cbar, !z)

(* one phase of maximization; [allowed j] filters enterable columns *)
let rec run_phase t cost ~allowed =
  let cbar, _ = reduced_costs t cost in
  (* Bland: smallest-index column with positive reduced cost *)
  let rec find_entering j =
    if j >= t.ncols then None
    else if allowed j && Rat.sign cbar.(j) > 0 then Some j
    else find_entering (j + 1)
  in
  match find_entering 0 with
  | None -> `Optimal
  | Some col ->
    let m = Array.length t.a in
    (* min-ratio test, ties broken by smallest basis column (Bland) *)
    let best = ref None in
    for i = 0 to m - 1 do
      if Rat.sign t.a.(i).(col) > 0 then begin
        let ratio = Rat.div t.b.(i) t.a.(i).(col) in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, bratio) ->
          let c = Rat.compare ratio bratio in
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then
            best := Some (i, ratio)
      end
    done;
    begin match !best with
    | None -> `Unbounded
    | Some (row, _) ->
      pivot t ~row ~col;
      run_phase t cost ~allowed
    end

(* Build the tableau from a problem; returns the tableau and the index of
   each structural variable. *)
let build ~vars problem =
  let n_struct = List.length vars in
  let var_index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add var_index v i) vars;
  let constraints = Array.of_list problem.Lp_problem.constraints in
  let m = Array.length constraints in
  (* normalized rows: coefficients over structural vars, rhs >= 0, rel *)
  let rows =
    Array.map
      (fun (c : Lp_problem.constr) ->
        let coeffs = Array.make n_struct Rat.zero in
        Linexpr.fold_terms
          (fun v k () -> coeffs.(Hashtbl.find var_index v) <- k)
          c.Lp_problem.expr ();
        let rhs = Rat.neg (Linexpr.constant c.Lp_problem.expr) in
        if Rat.sign rhs < 0 then begin
          let coeffs = Array.map Rat.neg coeffs in
          let rel = match c.rel with
            | Lp_problem.Le -> Lp_problem.Ge
            | Lp_problem.Ge -> Lp_problem.Le
            | Lp_problem.Eq -> Lp_problem.Eq
          in
          (coeffs, Rat.neg rhs, rel)
        end
        else (coeffs, rhs, c.rel))
      constraints
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, _, rel) ->
        match rel with Lp_problem.Le | Lp_problem.Ge -> acc + 1 | Lp_problem.Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, _, rel) ->
        match rel with Lp_problem.Ge | Lp_problem.Eq -> acc + 1 | Lp_problem.Le -> acc)
      0 rows
  in
  let art_start = n_struct + n_slack in
  let ncols = art_start + n_art in
  let a = Array.init m (fun _ -> Array.make ncols Rat.zero) in
  let b = Array.make m Rat.zero in
  let basis = Array.make m (-1) in
  let next_slack = ref n_struct and next_art = ref art_start in
  Array.iteri
    (fun i (coeffs, rhs, rel) ->
      Array.blit coeffs 0 a.(i) 0 n_struct;
      b.(i) <- rhs;
      (match rel with
       | Lp_problem.Le ->
         a.(i).(!next_slack) <- Rat.one;
         basis.(i) <- !next_slack;
         incr next_slack
       | Lp_problem.Ge ->
         a.(i).(!next_slack) <- Rat.minus_one;
         incr next_slack;
         a.(i).(!next_art) <- Rat.one;
         basis.(i) <- !next_art;
         incr next_art
       | Lp_problem.Eq ->
         a.(i).(!next_art) <- Rat.one;
         basis.(i) <- !next_art;
         incr next_art))
    rows;
  ({ a; b; basis; ncols; art_start; npivots = 0 }, vars)

let solve ?vars ?pivots:pivot_count problem =
  let vars =
    match vars with Some vs -> vs | None -> Lp_problem.variables problem
  in
  let t, vars = build ~vars problem in
  let m = Array.length t.a in
  let n_struct = List.length vars in
  (* phase 1: maximize -sum(artificials) up to 0 *)
  let feasible =
    if t.art_start = t.ncols then true
    else begin
      let cost1 = Array.make t.ncols Rat.zero in
      for j = t.art_start to t.ncols - 1 do
        cost1.(j) <- Rat.minus_one
      done;
      (match run_phase t cost1 ~allowed:(fun _ -> true) with
       | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
       | `Optimal -> ());
      let _, z = reduced_costs t cost1 in
      if Rat.sign z < 0 then false
      else begin
        (* drive remaining artificials (at zero level) out of the basis *)
        for i = 0 to m - 1 do
          if t.basis.(i) >= t.art_start then begin
            let rec find j =
              if j >= t.art_start then None
              else if not (Rat.is_zero t.a.(i).(j)) then Some j
              else find (j + 1)
            in
            match find 0 with
            | Some col -> pivot t ~row:i ~col
            | None -> () (* redundant row; harmless to keep *)
          end
        done;
        true
      end
    end
  in
  let result =
  if not feasible then Infeasible
  else begin
    let direction = problem.Lp_problem.direction in
    let obj = match direction with
      | Lp_problem.Maximize -> problem.Lp_problem.objective
      | Lp_problem.Minimize -> Linexpr.neg problem.Lp_problem.objective
    in
    let cost2 = Array.make t.ncols Rat.zero in
    List.iteri (fun i v -> cost2.(i) <- Linexpr.coeff obj v) vars;
    let allowed j =
      j < t.art_start
      (* an artificial stuck in a degenerate basis row must stay at zero *)
    in
    match run_phase t cost2 ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let _, z = reduced_costs t cost2 in
      let values = Array.make n_struct Rat.zero in
      for i = 0 to m - 1 do
        if t.basis.(i) < n_struct then values.(t.basis.(i)) <- t.b.(i)
      done;
      let assignment =
        List.mapi (fun i v -> (v, values.(i))) vars
        |> List.filter (fun (_, x) -> not (Rat.is_zero x))
      in
      let z = Rat.add z (Linexpr.constant obj) in
      let value = match direction with
        | Lp_problem.Maximize -> z
        | Lp_problem.Minimize -> Rat.neg z
      in
      Optimal { value; assignment }
  end
  in
  (match pivot_count with Some r -> r := !r + t.npivots | None -> ());
  result
