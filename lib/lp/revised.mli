(** Revised simplex over the sparse instance form, in exact rationals.

    Two entry points:

    - {!solve_primal}: two-phase bounded-variable primal simplex from the
      all-slack/artificial basis. With no upper bounds it replays the
      dense tableau's trajectory pivot for pivot — same Bland entering
      rule (smallest column with favourable reduced cost), same min-ratio
      leaving rule with ties broken by smallest basic column, same
      drive-artificials-out step — so optimal assignments (not just
      values) are bit-identical to the historical dense solver.

    - {!solve_dual}: bounded-variable dual simplex warm-started from a
      caller-supplied basis snapshot, for branch-and-bound children whose
      only change from the parent is tightened variable bounds: the
      parent's optimal basis stays dual feasible, so no phase 1 is
      needed. Variable bounds never become explicit rows.

    All pivot selection is deterministic, so both entry points are pure
    functions of their arguments — the property the speculative parallel
    branch-and-bound relies on. *)

open Ipet_num

type vstatus = Basic | Lower | Upper

type snapshot = {
  sbasis : int array;       (** basic column of each row *)
  sstatus : vstatus array;  (** status of every column *)
}

type solution = {
  value : Rat.t;            (** maximized objective, excluding any constant *)
  xstruct : Rat.t array;    (** value of each structural column *)
  snapshot : snapshot;      (** final basis, for warm-starting children *)
}

type verdict = Optimal of solution | Infeasible | Unbounded

type run = {
  verdict : verdict;
  pivots : int;             (** basis changes, phases 1 and 2 combined *)
  refactors : int;          (** basis refactorizations performed *)
}

exception Stuck
(** The dual simplex hit its iteration cap, the warm basis was singular,
    or the warm snapshot was inconsistent with the problem's bounds (a
    leaving basic flagged as above an upper bound it does not have); the
    caller should fall back to a cold solve. *)

val solve_primal :
  ?upper:Rat.t option array ->
  ?refactor_every:int ->
  Sparse.t -> cost:Rat.t array -> run
(** Maximize [cost] (length [nstruct], structural columns only; slack
    costs are zero) over the instance. [upper], when given, has length
    [nstruct] and supplies finite upper bounds for structural variables
    (handled in the ratio test, never as rows); lower bounds are 0. *)

val duals :
  Sparse.t -> cost:Rat.t array -> snapshot -> Rat.t array
(** Row prices [y = B⁻ᵀ c_B] of the basis in the snapshot, in row order
    of the instance — the dual multipliers of a finished {!solve_primal}
    run, recovered with one refactorization and one BTRAN. [cost] is the
    structural objective, as for {!solve_primal}.
    @raise Basis.Singular if the snapshot's basis is not a basis. *)

val solve_dual :
  ?refactor_every:int ->
  ?max_iters:int ->
  Sparse.t -> cost:Rat.t array ->
  lower:Rat.t array -> upper:Rat.t option array ->
  warm:snapshot -> run
(** Maximize [cost] subject to [lower.(j) <= x_j <= upper.(j)] for
    structural columns, starting from [warm] (a dual-feasible basis for
    this cost, typically the parent node's optimal basis). Returns
    [Infeasible] when the bounds cut off the feasible region.
    @raise Stuck when the warm start cannot be completed; correctness
    requires the caller to re-solve cold. *)
