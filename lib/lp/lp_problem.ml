open Ipet_num

type relation = Le | Ge | Eq

type constr = { expr : Linexpr.t; rel : relation; origin : string }

let constr ?(origin = "") expr rel = { expr; rel; origin }
let le ?origin a b = constr ?origin (Linexpr.sub a b) Le
let ge ?origin a b = constr ?origin (Linexpr.sub a b) Ge
let eq ?origin a b = constr ?origin (Linexpr.sub a b) Eq

type direction = Maximize | Minimize

type t = {
  direction : direction;
  objective : Linexpr.t;
  constraints : constr list;
}

let make direction objective constraints = { direction; objective; constraints }

module Names = Set.Make (String)

let variable_set problem =
  let add_vars expr acc =
    Linexpr.fold_terms (fun v _ acc -> Names.add v acc) expr acc
  in
  List.fold_left
    (fun acc c -> add_vars c.expr acc)
    (add_vars problem.objective Names.empty)
    problem.constraints

let variables problem = Names.elements (variable_set problem)

let num_variables problem = Names.cardinal (variable_set problem)

let num_constraints problem = List.length problem.constraints

let satisfies env c =
  let v = Linexpr.eval env c.expr in
  match c.rel with
  | Le -> Rat.sign v <= 0
  | Ge -> Rat.sign v >= 0
  | Eq -> Rat.is_zero v

let feasible env problem =
  List.for_all (satisfies env) problem.constraints
  && List.for_all (fun v -> Rat.sign (env v) >= 0) (variables problem)

let rel_string = function Le -> "<=" | Ge -> ">=" | Eq -> "="

let pp_constr fmt c =
  (* print as [terms rel -const] for readability *)
  let terms = Linexpr.sub c.expr (Linexpr.const (Linexpr.constant c.expr)) in
  let rhs = Rat.neg (Linexpr.constant c.expr) in
  Format.fprintf fmt "%a %s %a" Linexpr.pp terms (rel_string c.rel) Rat.pp rhs;
  if c.origin <> "" then Format.fprintf fmt "   [%s]" c.origin

let pp fmt problem =
  let dir = match problem.direction with Maximize -> "maximize" | Minimize -> "minimize" in
  Format.fprintf fmt "@[<v>%s %a@,subject to:@," dir Linexpr.pp problem.objective;
  List.iter (fun c -> Format.fprintf fmt "  %a@," pp_constr c) problem.constraints;
  Format.fprintf fmt "  (all variables >= 0)@]"
