(** Exact presolve for IPET-style (integer) linear programs.

    The ILPs of the paper are dominated by flow-conservation equalities
    [x_i = Σ d_in = Σ d_out]: most variables are determined by a small
    independent set, and the simplex spends its pivots walking through that
    redundancy. This module removes it up front, iterating to a fixpoint:

    + {b substitution} of variables defined by an equality row (Gaussian
      elimination restricted to definitions with integral coefficients, so
      integrality of the remaining variables implies integrality of the
      eliminated ones);
    + {b bound propagation} over inequality rows, deriving and tightening
      implied bounds on the remaining variables (rounded to integers when
      [integer] holds);
    + removal of {b empty}, {b duplicate}, {b redundant} and {b forcing}
      rows (a forcing row pins every variable it mentions, e.g. a loop
      bound of zero);
    + early {b infeasibility} detection (conflicting bounds, unsatisfiable
      rows, and — in integer mode — variables fixed to fractional values).

    All arithmetic is exact ({!Ipet_num.Rat}), every surviving row keeps its
    [origin] provenance label, and the transformation is reversible: the
    returned postsolve closure rebuilds a full assignment over the original
    variables from any solution of the reduced problem, so the objective
    value, the witness block counts and the binding-constraint report of the
    analysis are unchanged. *)

open Ipet_num

type stats = {
  vars_before : int;
  vars_after : int;
  constrs_before : int;
  constrs_after : int;
  rounds : int;        (** fixpoint iterations until nothing changed *)
  substituted : int;   (** variables eliminated via an equality row *)
  fixed : int;         (** variables pinned to a constant *)
}

type reduction = {
  problem : Lp_problem.t;  (** the reduced, equivalent problem *)
  postsolve : (string * Rat.t) list -> (string * Rat.t) list;
      (** maps an assignment of the reduced problem (zero-valued variables
          may be omitted) to a full assignment over the original variables,
          zero values filtered, sorted by name *)
  stats : stats;
}

type outcome =
  | Reduced of reduction
  | Proved_infeasible of { stats : stats; reason : string }
      (** the problem has no (integer) solution; [reason] names the
          conflicting row or variable *)

val run : ?integer:bool -> Lp_problem.t -> outcome
(** [run problem] presolves [problem]. With [integer] (the default) the
    reductions assume every variable ranges over non-negative integers, as
    in {!Ilp.solve}: derived bounds are rounded and a variable forced to a
    fractional value proves infeasibility. With [~integer:false] only
    relaxation-safe reductions are applied. *)
