(** LP/ILP problem representation.

    A problem maximizes or minimizes a linear objective subject to linear
    constraints, with every variable implicitly non-negative — the natural
    form for IPET flow variables (execution counts are counts). *)

open Ipet_num

type relation = Le | Ge | Eq

type constr = {
  expr : Linexpr.t;  (** interpreted as [expr rel 0] *)
  rel : relation;
  origin : string;  (** provenance label for diagnostics and reports *)
}

val constr : ?origin:string -> Linexpr.t -> relation -> constr

val le : ?origin:string -> Linexpr.t -> Linexpr.t -> constr
(** [le a b] is the constraint [a <= b]. *)

val ge : ?origin:string -> Linexpr.t -> Linexpr.t -> constr
val eq : ?origin:string -> Linexpr.t -> Linexpr.t -> constr

type direction = Maximize | Minimize

type t = {
  direction : direction;
  objective : Linexpr.t;
  constraints : constr list;
}

val make : direction -> Linexpr.t -> constr list -> t

module Names : Set.S with type elt = string

val variable_set : t -> Names.t
(** Every variable mentioned in the objective or a constraint. Built in one
    pass; prefer this (or pass {!variables} down explicitly, as
    {!Ilp.solve} does for its per-node LPs) over calling {!variables}
    repeatedly in hot paths. *)

val variables : t -> string list
(** All variables mentioned anywhere, sorted, without duplicates. *)

val num_variables : t -> int
val num_constraints : t -> int

val satisfies : (string -> Rat.t) -> constr -> bool
(** Does the assignment satisfy the constraint? *)

val feasible : (string -> Rat.t) -> t -> bool
(** Does the assignment satisfy every constraint and non-negativity of every
    variable of the problem? *)

val pp_constr : Format.formatter -> constr -> unit
val pp : Format.formatter -> t -> unit
