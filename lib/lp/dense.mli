(** The historical dense-tableau two-phase primal simplex, kept verbatim
    as a benchmark baseline and differential oracle for {!Revised}. The
    production entry point is {!Simplex.solve}, which runs the revised
    sparse solver; this module exists so `bench lp` can measure
    dense-vs-revised wall times on identical instances and so tests can
    assert the two produce identical vertices, not just values. *)

open Ipet_num

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list }
  | Infeasible
  | Unbounded

val solve : ?vars:string list -> ?pivots:int ref -> Lp_problem.t -> result
(** Identical contract to the historical [Simplex.solve]: [vars] must be
    {!Lp_problem.variables} of the problem (or a sorted superset);
    [pivots] is incremented by the tableau pivots performed. *)
