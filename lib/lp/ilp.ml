(* Depth-first branch and bound. Each node adds bound constraints
   [x <= floor v] / [x >= ceil v] for a fractional variable of the node's LP
   relaxation. Pruning uses the incumbent: for maximization a node whose
   relaxation value is <= the incumbent objective cannot improve it (the
   objective need not be integral in general, so we prune on <=, not on
   floor).

   Parallelism is speculative. The search itself is a sequential replay
   that visits nodes in exactly the order the single-threaded solver
   would, so node counts, pruning decisions, the incumbent trajectory and
   the returned witness are bit-identical at any --jobs. What runs on
   other domains is only the expensive part of each visit: node LP
   relaxations are pre-solved ahead of the replay, keyed by the node's
   tree path, gated by a snapshot of the best incumbent (so speculation
   prunes roughly where the replay will) and by a node budget. The replay
   awaits the pre-solved relaxation when one exists and solves inline
   otherwise; speculative results the replay never asks for are simply
   discarded. A solved relaxation is a pure function of the node, so it
   does not matter which domain produced it.

   By default the problem first goes through {!Presolve}, which eliminates
   the variables pinned down by flow-conservation equalities and tightens
   the rest; the branch and bound then runs on the reduced problem and the
   winning assignment is mapped back through the postsolve closure. *)

open Ipet_num
module Pool = Ipet_par.Pool
module Lock = Ipet_par.Par_compat.Lock

type stats = {
  lp_calls : int;
  nodes : int;
  pivots : int;
  first_lp_integral : bool;
  presolve : Presolve.stats option;
}

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

exception Node_limit_exceeded

let fractional_var assignment =
  let rec go = function
    | [] -> None
    | (v, x) :: rest -> if Rat.is_integer x then go rest else Some (v, x)
  in
  go assignment

let branch_constraints v x =
  let lo = Linexpr.sub (Linexpr.var v) (Linexpr.const (Rat.of_bigint (Rat.floor x))) in
  let hi = Linexpr.sub (Linexpr.const (Rat.of_bigint (Rat.ceil x))) (Linexpr.var v) in
  (Lp_problem.constr ~origin:"branch" lo Lp_problem.Le,
   Lp_problem.constr ~origin:"branch" hi Lp_problem.Le)

let solve_raw ?pool ~max_nodes problem =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let maximize = problem.Lp_problem.direction = Lp_problem.Maximize in
  (* normalize to maximization so that bounding logic is uniform *)
  let base = { problem with
               Lp_problem.direction = Lp_problem.Maximize;
               objective = (if maximize then problem.Lp_problem.objective
                            else Linexpr.neg problem.Lp_problem.objective) }
  in
  (* branch constraints only mention existing variables, so one sort-dedup
     serves every node's LP *)
  let vars = Lp_problem.variables base in
  let lp_calls = ref 0 in
  let nodes = ref 0 in
  let pivot_count = ref 0 in
  let first_lp_integral = ref false in
  let incumbent = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Rat.compare value best > 0
  in
  let stats () =
    { lp_calls = !lp_calls; nodes = !nodes; pivots = !pivot_count;
      first_lp_integral = !first_lp_integral; presolve = None }
  in
  (* A node's relaxation result together with the pivots it took; the
     simplex is deterministic, so the pair is a pure function of the node
     and identical whichever domain computes it. *)
  let solve_lp extra =
    let piv = ref 0 in
    let node_problem =
      { base with Lp_problem.constraints = extra @ base.Lp_problem.constraints }
    in
    let res = Simplex.solve ~vars ~pivots:piv node_problem in
    (res, !piv)
  in
  let speculating = Pool.parallel pool in
  (* shared state read by speculative tasks; written only as hints, never
     as results, so races cost work but not correctness *)
  let best_known : Rat.t option Atomic.t = Atomic.make None in
  let budget = Atomic.make max_nodes in
  let memo : (string, (Simplex.result * int) Pool.future) Hashtbl.t =
    Hashtbl.create 64
  in
  let memo_lock = Lock.create () in
  let memo_find key =
    Lock.with_lock memo_lock (fun () -> Hashtbl.find_opt memo key)
  in
  (* first submission wins; a racing duplicate burns one LP solve and is
     dropped, the replay only ever sees the memoized future *)
  let memo_add key fut =
    Lock.with_lock memo_lock (fun () ->
        if Hashtbl.mem memo key then false
        else begin Hashtbl.add memo key fut; true end)
  in
  let rec speculate key extra =
    if Atomic.fetch_and_add budget (-1) > 0 then begin
      let fut =
        Pool.submit pool (fun () ->
            let (res, _) as cell = solve_lp extra in
            (match res with
             | Simplex.Optimal { value; assignment } ->
               let dominated =
                 match Atomic.get best_known with
                 | Some best -> Rat.compare value best <= 0
                 | None -> false
               in
               if not dominated then begin
                 match fractional_var assignment with
                 | None -> ()
                 | Some (v, x) ->
                   let lo, hi = branch_constraints v x in
                   speculate (key ^ "l") (lo :: extra);
                   speculate (key ^ "r") (hi :: extra)
               end
             | Simplex.Infeasible | Simplex.Unbounded -> ());
            cell)
      in
      ignore (memo_add key fut)
    end
  in
  let unbounded = ref false in
  let rec explore key extra depth =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > max_nodes then raise Node_limit_exceeded;
      incr lp_calls;
      let res, piv =
        match (if speculating then memo_find key else None) with
        | Some fut -> Pool.await pool fut
        | None -> solve_lp extra
      in
      pivot_count := !pivot_count + piv;
      match res with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* The relaxation being unbounded at the root means the ILP is
           unbounded or infeasible; for IPET problems (flow polytopes with a
           unit source) feasibility is immediate, so report unbounded. *)
        if depth = 0 then unbounded := true
        else ()
      | Simplex.Optimal { value; assignment } ->
        if depth = 0 && fractional_var assignment = None then
          first_lp_integral := true;
        if !incumbent <> None && not (better value) then ()
        else begin
          match fractional_var assignment with
          | None ->
            if better value then begin
              incumbent := Some (value, assignment);
              Atomic.set best_known (Some value)
            end
          | Some (v, x) ->
            let lo, hi = branch_constraints v x in
            if speculating then begin
              speculate (key ^ "l") (lo :: extra);
              speculate (key ^ "r") (hi :: extra)
            end;
            explore (key ^ "l") (lo :: extra) (depth + 1);
            explore (key ^ "r") (hi :: extra) (depth + 1)
        end
    end
  in
  explore "" [] 0;
  if !unbounded then Unbounded (stats ())
  else
    match !incumbent with
    | None -> Infeasible (stats ())
    | Some (value, assignment) ->
      let value = if maximize then value else Rat.neg value in
      Optimal { value; assignment; stats = stats () }

let solve ?(max_nodes = 100_000) ?(presolve = true) ?pool problem =
  if not presolve then solve_raw ?pool ~max_nodes problem
  else
    match Presolve.run ~integer:true problem with
    | Presolve.Proved_infeasible { stats; reason = _ } ->
      Infeasible
        { lp_calls = 0; nodes = 0; pivots = 0; first_lp_integral = false;
          presolve = Some stats }
    | Presolve.Reduced { problem = reduced; postsolve; stats = pstats } ->
      (match solve_raw ?pool ~max_nodes reduced with
       | Optimal { value; assignment; stats } ->
         Optimal
           { value;
             assignment = postsolve assignment;
             stats = { stats with presolve = Some pstats } }
       | Infeasible stats -> Infeasible { stats with presolve = Some pstats }
       | Unbounded stats -> Unbounded { stats with presolve = Some pstats })
