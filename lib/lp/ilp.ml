(* Depth-first branch and bound. Each node adds bound constraints
   [x <= floor v] / [x >= ceil v] for a fractional variable of the node's LP
   relaxation. Pruning uses the incumbent: for maximization a node whose
   relaxation value is <= the incumbent objective cannot improve it (the
   objective need not be integral in general, so we prune on <=, not on
   floor).

   By default the problem first goes through {!Presolve}, which eliminates
   the variables pinned down by flow-conservation equalities and tightens
   the rest; the branch and bound then runs on the reduced problem and the
   winning assignment is mapped back through the postsolve closure. *)

open Ipet_num

type stats = {
  lp_calls : int;
  nodes : int;
  pivots : int;
  first_lp_integral : bool;
  presolve : Presolve.stats option;
}

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

exception Node_limit_exceeded

let fractional_var assignment =
  let rec go = function
    | [] -> None
    | (v, x) :: rest -> if Rat.is_integer x then go rest else Some (v, x)
  in
  go assignment

let solve_raw ~max_nodes problem =
  let maximize = problem.Lp_problem.direction = Lp_problem.Maximize in
  (* normalize to maximization so that bounding logic is uniform *)
  let base = { problem with
               Lp_problem.direction = Lp_problem.Maximize;
               objective = (if maximize then problem.Lp_problem.objective
                            else Linexpr.neg problem.Lp_problem.objective) }
  in
  (* branch constraints only mention existing variables, so one sort-dedup
     serves every node's LP *)
  let vars = Lp_problem.variables base in
  let pivots0 = Simplex.pivots () in
  let lp_calls = ref 0 in
  let nodes = ref 0 in
  let first_lp_integral = ref false in
  let incumbent = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Rat.compare value best > 0
  in
  let stats () =
    { lp_calls = !lp_calls; nodes = !nodes;
      pivots = Simplex.pivots () - pivots0;
      first_lp_integral = !first_lp_integral; presolve = None }
  in
  let unbounded = ref false in
  let rec explore extra depth =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > max_nodes then raise Node_limit_exceeded;
      incr lp_calls;
      let node_problem =
        { base with Lp_problem.constraints = extra @ base.Lp_problem.constraints }
      in
      match Simplex.solve ~vars node_problem with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* The relaxation being unbounded at the root means the ILP is
           unbounded or infeasible; for IPET problems (flow polytopes with a
           unit source) feasibility is immediate, so report unbounded. *)
        if depth = 0 then unbounded := true
        else ()
      | Simplex.Optimal { value; assignment } ->
        if depth = 0 && fractional_var assignment = None then
          first_lp_integral := true;
        if !incumbent <> None && not (better value) then ()
        else begin
          match fractional_var assignment with
          | None ->
            if better value then incumbent := Some (value, assignment)
          | Some (v, x) ->
            let lo = Linexpr.sub (Linexpr.var v) (Linexpr.const (Rat.of_bigint (Rat.floor x))) in
            let hi = Linexpr.sub (Linexpr.const (Rat.of_bigint (Rat.ceil x))) (Linexpr.var v) in
            let branch_le = Lp_problem.constr ~origin:"branch" lo Lp_problem.Le in
            let branch_ge = Lp_problem.constr ~origin:"branch" hi Lp_problem.Le in
            explore (branch_le :: extra) (depth + 1);
            explore (branch_ge :: extra) (depth + 1)
        end
    end
  in
  explore [] 0;
  if !unbounded then Unbounded (stats ())
  else
    match !incumbent with
    | None -> Infeasible (stats ())
    | Some (value, assignment) ->
      let value = if maximize then value else Rat.neg value in
      Optimal { value; assignment; stats = stats () }

let solve ?(max_nodes = 100_000) ?(presolve = true) problem =
  if not presolve then solve_raw ~max_nodes problem
  else
    match Presolve.run ~integer:true problem with
    | Presolve.Proved_infeasible { stats; reason = _ } ->
      Infeasible
        { lp_calls = 0; nodes = 0; pivots = 0; first_lp_integral = false;
          presolve = Some stats }
    | Presolve.Reduced { problem = reduced; postsolve; stats = pstats } ->
      (match solve_raw ~max_nodes reduced with
       | Optimal { value; assignment; stats } ->
         Optimal
           { value;
             assignment = postsolve assignment;
             stats = { stats with presolve = Some pstats } }
       | Infeasible stats -> Infeasible { stats with presolve = Some pstats }
       | Unbounded stats -> Unbounded { stats with presolve = Some pstats })
