(* Depth-first branch and bound with warm-started child solves.

   Branching tightens variable BOUNDS, never adds rows: a node is a pair
   of maps (raised lower bounds, lowered upper bounds) over the columns
   of one shared sparse instance built once per solve. The root
   relaxation is a cold primal solve ({!Revised.solve_primal}, the exact
   dense-trajectory-compatible path). Every child starts from its
   parent's optimal basis: only bounds changed, and the branched variable
   was basic in the parent, so the parent basis is still dual feasible
   and {!Revised.solve_dual} re-optimizes without a phase 1. If the dual
   gives up ({!Revised.Stuck} — iteration cap or singular warm basis),
   the node falls back to the historical cold solve with explicit bound
   rows; children of a fallback node inherit no snapshot and fall back
   too. Both paths are deterministic, so a node's result is a pure
   function of (bounds, parent snapshot).

   Pruning uses the incumbent: for maximization a node whose relaxation
   value is <= the incumbent objective cannot improve it (the objective
   need not be integral in general, so we prune on <=, not on floor).

   Parallelism is speculative. The search itself is a sequential replay
   that visits nodes in exactly the order the single-threaded solver
   would, so node counts, pruning decisions, warm-start accounting, the
   incumbent trajectory and the returned witness are bit-identical at any
   --jobs. What runs on other domains is only the expensive part of each
   visit: node solves are pre-computed ahead of the replay, keyed by the
   node's tree path, gated by a snapshot of the best incumbent (so
   speculation prunes roughly where the replay will) and by a node
   budget. The replay awaits the pre-solved node when one exists and
   solves inline otherwise; speculative results the replay never asks for
   are simply discarded.

   By default the problem first goes through {!Presolve}, which eliminates
   the variables pinned down by flow-conservation equalities and tightens
   the rest; the branch and bound then runs on the reduced problem and the
   winning assignment is mapped back through the postsolve closure. *)

open Ipet_num
module Pool = Ipet_par.Pool
module Lock = Ipet_par.Par_compat.Lock
module IMap = Map.Make (Int)

type stats = {
  lp_calls : int;
  nodes : int;
  pivots : int;
  refactorizations : int;
  warm_hits : int;
  warm_misses : int;
  first_lp_integral : bool;
  presolve : Presolve.stats option;
}

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

exception Node_limit_exceeded

let fractional_var assignment =
  let rec go = function
    | [] -> None
    | (v, x) :: rest -> if Rat.is_integer x then go rest else Some (v, x)
  in
  go assignment

(* node solve outcome: enough for pruning, branching and warm-starting *)
type node_sol = {
  nvalue : Rat.t;                       (* maximization value incl. constant *)
  nassign : (string * Rat.t) list;      (* vars-order nonzero assignment *)
  nsnap : Revised.snapshot option;      (* None after a row-based fallback *)
}

type node_res = NOptimal of node_sol | NInfeasible | NUnbounded

type warm_kind = Root | Hit | Miss

let solve_raw ?pool ~max_nodes problem =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let maximize = problem.Lp_problem.direction = Lp_problem.Maximize in
  (* normalize to maximization so that bounding logic is uniform *)
  let base = { problem with
               Lp_problem.direction = Lp_problem.Maximize;
               objective = (if maximize then problem.Lp_problem.objective
                            else Linexpr.neg problem.Lp_problem.objective) }
  in
  (* branch bounds only mention existing variables, so one sort-dedup and
     one sparse instance serve every node *)
  let vars = Lp_problem.variables base in
  let inst = Sparse.build ~vars base in
  let nstruct = inst.Sparse.nstruct in
  let col_of_var = Hashtbl.create (2 * nstruct + 1) in
  Array.iteri (fun i v -> Hashtbl.replace col_of_var v i) inst.Sparse.vars;
  let cost = Array.make nstruct Rat.zero in
  Array.iteri
    (fun i v -> cost.(i) <- Linexpr.coeff base.Lp_problem.objective v)
    inst.Sparse.vars;
  let obj_const = Linexpr.constant base.Lp_problem.objective in
  let lp_calls = ref 0 in
  let nodes = ref 0 in
  let pivot_count = ref 0 in
  let refactor_count = ref 0 in
  let warm_hits = ref 0 in
  let warm_misses = ref 0 in
  let first_lp_integral = ref false in
  let incumbent = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Rat.compare value best > 0
  in
  let stats () =
    { lp_calls = !lp_calls; nodes = !nodes; pivots = !pivot_count;
      refactorizations = !refactor_count;
      warm_hits = !warm_hits; warm_misses = !warm_misses;
      first_lp_integral = !first_lp_integral; presolve = None }
  in
  let assignment_of_xstruct xstruct =
    let out = ref [] in
    for i = Array.length xstruct - 1 downto 0 do
      if not (Rat.is_zero xstruct.(i)) then
        out := (inst.Sparse.vars.(i), xstruct.(i)) :: !out
    done;
    !out
  in
  (* cold re-solve with the node's bounds as explicit rows — the
     historical behaviour, kept as the fallback when a warm start cannot
     be completed *)
  let solve_fallback (lom, upm) piv refs =
    let extra = ref [] in
    for j = nstruct - 1 downto 0 do
      (match IMap.find_opt j upm with
       | Some u ->
         let e =
           Linexpr.sub (Linexpr.var inst.Sparse.vars.(j)) (Linexpr.const u)
         in
         extra := Lp_problem.constr ~origin:"branch" e Lp_problem.Le :: !extra
       | None -> ());
      (match IMap.find_opt j lom with
       | Some l when Rat.sign l > 0 ->
         let e =
           Linexpr.sub (Linexpr.const l) (Linexpr.var inst.Sparse.vars.(j))
         in
         extra := Lp_problem.constr ~origin:"branch" e Lp_problem.Le :: !extra
       | _ -> ());
    done;
    let node_problem =
      { base with Lp_problem.constraints = !extra @ base.Lp_problem.constraints }
    in
    match Simplex.solve ~vars ~pivots:piv ~refactors:refs node_problem with
    | Simplex.Optimal { value; assignment } ->
      NOptimal { nvalue = value; nassign = assignment; nsnap = None }
    | Simplex.Infeasible -> NInfeasible
    | Simplex.Unbounded -> NUnbounded
  in
  (* A node's result together with the work it took; every path is
     deterministic, so the tuple is a pure function of the node and
     identical whichever domain computes it. *)
  let solve_node ~warm bounds =
    let lom, upm = bounds in
    let piv = ref 0 and refs = ref 0 in
    let of_run (run : Revised.run) =
      Simplex.record ~pivots:piv ~refactors:refs run;
      match run.Revised.verdict with
      | Revised.Infeasible -> NInfeasible
      | Revised.Unbounded -> NUnbounded
      | Revised.Optimal sol ->
        NOptimal
          { nvalue = Rat.add sol.Revised.value obj_const;
            nassign = assignment_of_xstruct sol.Revised.xstruct;
            nsnap = Some sol.Revised.snapshot }
    in
    let res, kind =
      match warm with
      | Some snap ->
        let lower = Array.make nstruct Rat.zero in
        IMap.iter (fun j l -> lower.(j) <- l) lom;
        let upper = Array.make nstruct None in
        IMap.iter (fun j u -> upper.(j) <- Some u) upm;
        (try
           (of_run (Revised.solve_dual inst ~cost ~lower ~upper ~warm:snap),
            Hit)
         with Revised.Stuck -> (solve_fallback bounds piv refs, Miss))
      | None ->
        if IMap.is_empty lom && IMap.is_empty upm then
          (of_run (Revised.solve_primal inst ~cost), Root)
        else (solve_fallback bounds piv refs, Miss)
    in
    (res, !piv, !refs, kind)
  in
  let speculating = Pool.parallel pool in
  (* shared state read by speculative tasks; written only as hints, never
     as results, so races cost work but not correctness *)
  let best_known : Rat.t option Atomic.t = Atomic.make None in
  let budget = Atomic.make max_nodes in
  let memo : (string, (node_res * int * int * warm_kind) Pool.future) Hashtbl.t =
    Hashtbl.create 64
  in
  let memo_lock = Lock.create () in
  let memo_find key =
    Lock.with_lock memo_lock (fun () -> Hashtbl.find_opt memo key)
  in
  (* first submission wins; a racing duplicate burns one LP solve and is
     dropped, the replay only ever sees the memoized future *)
  let memo_add key fut =
    Lock.with_lock memo_lock (fun () ->
        if Hashtbl.mem memo key then false
        else begin Hashtbl.add memo key fut; true end)
  in
  let branch bounds v x =
    let lom, upm = bounds in
    let j = Hashtbl.find col_of_var v in
    let f = Rat.of_bigint (Rat.floor x) and c = Rat.of_bigint (Rat.ceil x) in
    let left =
      (lom,
       IMap.update j
         (function Some u -> Some (Rat.min u f) | None -> Some f)
         upm)
    in
    let right =
      (IMap.update j
         (function Some l -> Some (Rat.max l c) | None -> Some c)
         lom,
       upm)
    in
    (left, right)
  in
  let rec speculate key bounds warm =
    if Atomic.fetch_and_add budget (-1) > 0 then begin
      let fut =
        Pool.submit pool (fun () ->
            let (res, _, _, _) as cell = solve_node ~warm bounds in
            (match res with
             | NOptimal sol ->
               let dominated =
                 match Atomic.get best_known with
                 | Some best -> Rat.compare sol.nvalue best <= 0
                 | None -> false
               in
               if not dominated then begin
                 match fractional_var sol.nassign with
                 | None -> ()
                 | Some (v, x) ->
                   let left, right = branch bounds v x in
                   speculate (key ^ "l") left sol.nsnap;
                   speculate (key ^ "r") right sol.nsnap
               end
             | NInfeasible | NUnbounded -> ());
            cell)
      in
      ignore (memo_add key fut)
    end
  in
  let unbounded = ref false in
  let rec explore key bounds warm depth =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > max_nodes then raise Node_limit_exceeded;
      incr lp_calls;
      let res, piv, refs, kind =
        match (if speculating then memo_find key else None) with
        | Some fut -> Pool.await pool fut
        | None -> solve_node ~warm bounds
      in
      pivot_count := !pivot_count + piv;
      refactor_count := !refactor_count + refs;
      (match kind with
       | Hit -> incr warm_hits
       | Miss -> incr warm_misses
       | Root -> ());
      match res with
      | NInfeasible -> ()
      | NUnbounded ->
        (* The relaxation being unbounded at the root means the ILP is
           unbounded or infeasible; for IPET problems (flow polytopes with a
           unit source) feasibility is immediate, so report unbounded. *)
        if depth = 0 then unbounded := true
        else ()
      | NOptimal sol ->
        if depth = 0 && fractional_var sol.nassign = None then
          first_lp_integral := true;
        if !incumbent <> None && not (better sol.nvalue) then ()
        else begin
          match fractional_var sol.nassign with
          | None ->
            if better sol.nvalue then begin
              incumbent := Some (sol.nvalue, sol.nassign);
              Atomic.set best_known (Some sol.nvalue)
            end
          | Some (v, x) ->
            let left, right = branch bounds v x in
            if speculating then begin
              speculate (key ^ "l") left sol.nsnap;
              speculate (key ^ "r") right sol.nsnap
            end;
            explore (key ^ "l") left sol.nsnap (depth + 1);
            explore (key ^ "r") right sol.nsnap (depth + 1)
        end
    end
  in
  explore "" (IMap.empty, IMap.empty) None 0;
  if !unbounded then Unbounded (stats ())
  else
    match !incumbent with
    | None -> Infeasible (stats ())
    | Some (value, assignment) ->
      let value = if maximize then value else Rat.neg value in
      Optimal { value; assignment; stats = stats () }

let solve ?(max_nodes = 100_000) ?(presolve = true) ?pool problem =
  if not presolve then solve_raw ?pool ~max_nodes problem
  else
    match Presolve.run ~integer:true problem with
    | Presolve.Proved_infeasible { stats; reason = _ } ->
      Infeasible
        { lp_calls = 0; nodes = 0; pivots = 0; refactorizations = 0;
          warm_hits = 0; warm_misses = 0; first_lp_integral = false;
          presolve = Some stats }
    | Presolve.Reduced { problem = reduced; postsolve; stats = pstats } ->
      (match solve_raw ?pool ~max_nodes reduced with
       | Optimal { value; assignment; stats } ->
         Optimal
           { value;
             assignment = postsolve assignment;
             stats = { stats with presolve = Some pstats } }
       | Infeasible stats -> Infeasible { stats with presolve = Some pstats }
       | Unbounded stats -> Unbounded { stats with presolve = Some pstats })
