open Ipet_num

type col = { rows : int array; vals : Rat.t array }

type t = {
  nrows : int;
  nstruct : int;
  art_start : int;
  ncols : int;
  cols : col array;
  rhs : Rat.t array;
  row_basis : int array;
  vars : string array;
}

let unit_col row v = { rows = [| row |]; vals = [| v |] }

let build ~vars problem =
  let vars_arr = Array.of_list vars in
  let nstruct = Array.length vars_arr in
  let var_index = Hashtbl.create (2 * nstruct + 1) in
  Array.iteri (fun i v -> Hashtbl.replace var_index v i) vars_arr;
  let constraints = Array.of_list problem.Lp_problem.constraints in
  let m = Array.length constraints in
  (* normalized rows: (sparse terms over struct columns, rhs >= 0, rel) *)
  let terms = Array.make m [] in
  let rhs = Array.make m Rat.zero in
  let rels = Array.make m Lp_problem.Le in
  Array.iteri
    (fun i (c : Lp_problem.constr) ->
      let ts =
        Linexpr.fold_terms
          (fun v k acc ->
            if Rat.is_zero k then acc
            else (Hashtbl.find var_index v, k) :: acc)
          c.Lp_problem.expr []
      in
      let r = Rat.neg (Linexpr.constant c.Lp_problem.expr) in
      if Rat.sign r < 0 then begin
        terms.(i) <- List.map (fun (j, k) -> (j, Rat.neg k)) ts;
        rhs.(i) <- Rat.neg r;
        rels.(i) <-
          (match c.rel with
           | Lp_problem.Le -> Lp_problem.Ge
           | Lp_problem.Ge -> Lp_problem.Le
           | Lp_problem.Eq -> Lp_problem.Eq)
      end
      else begin
        terms.(i) <- ts;
        rhs.(i) <- r;
        rels.(i) <- c.rel
      end)
    constraints;
  let n_slack =
    Array.fold_left
      (fun acc rel ->
        match rel with
        | Lp_problem.Le | Lp_problem.Ge -> acc + 1
        | Lp_problem.Eq -> acc)
      0 rels
  in
  let n_art =
    Array.fold_left
      (fun acc rel ->
        match rel with
        | Lp_problem.Ge | Lp_problem.Eq -> acc + 1
        | Lp_problem.Le -> acc)
      0 rels
  in
  let art_start = nstruct + n_slack in
  let ncols = art_start + n_art in
  (* bucket row terms into columns; rows processed in increasing order and
     prepended, so each bucket ends up in decreasing row order *)
  let buckets = Array.make nstruct [] in
  Array.iteri
    (fun i ts ->
      List.iter (fun (j, k) -> buckets.(j) <- (i, k) :: buckets.(j)) ts)
    terms;
  let cols = Array.make ncols { rows = [||]; vals = [||] } in
  for j = 0 to nstruct - 1 do
    let entries = buckets.(j) in
    let n = List.length entries in
    let rows = Array.make n 0 and vals = Array.make n Rat.zero in
    (* reversed fill restores increasing row order *)
    let k = ref (n - 1) in
    List.iter
      (fun (r, v) ->
        rows.(!k) <- r;
        vals.(!k) <- v;
        decr k)
      entries;
    cols.(j) <- { rows; vals }
  done;
  let row_basis = Array.make m (-1) in
  let next_slack = ref nstruct and next_art = ref art_start in
  Array.iteri
    (fun i rel ->
      match rel with
      | Lp_problem.Le ->
        cols.(!next_slack) <- unit_col i Rat.one;
        row_basis.(i) <- !next_slack;
        incr next_slack
      | Lp_problem.Ge ->
        cols.(!next_slack) <- unit_col i Rat.minus_one;
        incr next_slack;
        cols.(!next_art) <- unit_col i Rat.one;
        row_basis.(i) <- !next_art;
        incr next_art
      | Lp_problem.Eq ->
        cols.(!next_art) <- unit_col i Rat.one;
        row_basis.(i) <- !next_art;
        incr next_art)
    rels;
  { nrows = m; nstruct; art_start; ncols; cols; rhs; row_basis;
    vars = vars_arr }

let nnz t =
  let n = ref 0 in
  for j = 0 to t.nstruct - 1 do
    n := !n + Array.length t.cols.(j).rows
  done;
  !n

let col_dot t y j =
  let c = t.cols.(j) in
  let acc = ref Rat.zero in
  for k = 0 to Array.length c.rows - 1 do
    let yv = Array.unsafe_get y (Array.unsafe_get c.rows k) in
    if not (Rat.is_zero yv) then
      acc := Rat.add !acc (Rat.mul yv (Array.unsafe_get c.vals k))
  done;
  !acc
