(** Sparse-column form of an LP instance.

    The column layout is exactly the dense tableau's: columns
    [0..nstruct-1] are the structural variables in [vars] order, then one
    slack/surplus column per inequality row (in row order), then one
    artificial column per [Ge]/[Eq] row (in row order). Rows are
    normalized so the right-hand side is non-negative (a row with a
    negative rhs is negated and its relation flipped), which makes the
    initial basis — slack for [Le] rows, artificial for [Ge]/[Eq] rows —
    the identity matrix at a feasible point when all variables sit at
    their lower bound 0.

    IPET constraint matrices are flow matrices: a handful of nonzeros per
    column regardless of program size, which is what the revised simplex
    exploits. *)

open Ipet_num

type col = {
  rows : int array;      (** row indices, strictly increasing *)
  vals : Rat.t array;    (** matching nonzero coefficients *)
}

type t = {
  nrows : int;
  nstruct : int;         (** structural columns: [0..nstruct-1] *)
  art_start : int;       (** columns [>= art_start] are artificial *)
  ncols : int;
  cols : col array;      (** length [ncols] *)
  rhs : Rat.t array;     (** length [nrows], all non-negative *)
  row_basis : int array; (** initial basic column of each row *)
  vars : string array;   (** structural variable names, index = column *)
}

val build : vars:string list -> Lp_problem.t -> t
(** [vars] must be {!Lp_problem.variables} of the problem or a sorted
    superset, exactly as for [Simplex.solve]. *)

val nnz : t -> int
(** Total structural nonzeros (excluding slack/artificial columns). *)

val col_dot : t -> Rat.t array -> int -> Rat.t
(** [col_dot t y j] is the dot product of dense vector [y] (length
    [nrows]) with column [j]. *)
