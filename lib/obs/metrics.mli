(** A registry of named metrics with optional labels.

    Three metric kinds, in the usual monitoring vocabulary:
    - {b counters} — monotonically increasing integers (events, LP calls,
      cache misses);
    - {b gauges} — last-write-wins numbers (problem sizes, block counts);
    - {b histograms} — running count/sum/min/max of observed samples
      (per-solve wall times).

    A metric is identified by its name plus its (sorted) label set, so
    [lp.calls{solver=wcet}] and [lp.calls{solver=bcet}] are independent.
    Handles ({!counter}, {!histogram}) are resolved once and then updated
    without further lookups, keeping updates cheap enough for cold and
    warm paths alike; truly hot loops (the simulator, simplex pivots)
    count locally and fold into the registry at phase end.

    Registries are deterministic: {!items} orders by (name, labels), so a
    rendered registry is stable across identical runs modulo the observed
    values themselves.

    Registries are domain-safe: the table is lock-guarded, counters and
    gauges are atomic, histograms take a per-cell lock, so handles may be
    updated concurrently from any {!Ipet_par.Pool} worker. *)

type t

type labels = (string * string) list

type counter
type histogram

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }

val create : unit -> t
val reset : t -> unit

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-create; repeated calls with the same name/labels return the
    same underlying cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : t -> ?labels:labels -> string -> float -> unit
val set_gauge_int : t -> ?labels:labels -> string -> int -> unit

val histogram : t -> ?labels:labels -> string -> histogram
val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile (q in [0,1]) of the observed
    samples from fixed geometric buckets (16 per octave, so each bucket is
    ~4.4% wide, covering 2^-30..2^30). The rank convention matches sorting
    the samples and taking entry [ceil(q*count)] (1-based); the estimate
    is the holding bucket's midpoint clamped to the exact observed
    [min]/[max], so for small sample counts the extremes are exact.
    Returns 0.0 for an empty histogram. *)

val items : t -> (string * labels * value) list
(** All metrics, sorted by (name, labels); labels are sorted by key. *)
