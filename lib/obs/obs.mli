(** Process-wide observability: spans, metrics, and their export.

    The subsystem is {e disabled} by default: {!span} then runs its thunk
    with nothing but a flag test, so instrumented library code costs
    effectively nothing in production and fuzzing loops. The CLI enables
    it when [--trace-out]/[--metrics-out] is given; benchmarks enable it
    to harvest phase timings.

    One span engine {e per domain} (created lazily, all sharing one time
    origin) and one global metrics registry serve the whole process —
    instrumentation points in the libraries write here without any
    plumbing, and the sinks read from here at exit. Spans carry the domain
    id as their [tid]; metrics cells are atomic or lock-guarded, so
    parallel analyses ({!Ipet_par.Pool}) can record freely from any
    domain. {!reset} restarts everything (used per-benchmark and by
    tests).

    The clock is injectable ({!set_clock}) so tests can drive spans
    deterministically; the default is [Unix.gettimeofday], with
    monotonicity enforced by clamping (see {!Span}). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans and metrics (enablement is unchanged). *)

val set_clock : (unit -> float) -> unit
(** Inject a clock (seconds); implies {!reset} of the span engine. *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span when enabled, exception-safely;
    when disabled it is [f ()]. *)

val with_track : string -> (unit -> 'a) -> 'a
(** [with_track name f] runs [f] with the calling domain's spans redirected
    to the named track — a dedicated span engine rendered as its own
    thread row (tid >= 1000) in the trace export, labeled [name] via
    {!track_names}. Tracks nest (the previous redirection is restored on
    exit, exception-safely) and are reused by name, so a daemon can land
    every request's span tree on a per-request row of one shared trace.
    When disabled it is [f ()] — the same single-branch cost as {!span}. *)

val track_names : unit -> (int * string) list
(** The (tid, name) pairs of every track created so far, sorted by tid —
    feed to {!Trace_event.to_string}'s [track_names]. *)

val track_spans : string -> Span.completed list
(** Completed spans recorded on the named track, in completion order;
    [[]] for an unknown track. *)

val timed : (unit -> 'a) -> 'a * float
(** [f ()] and its wall time in seconds, measured with the current clock
    (works whether or not observability is enabled). *)

val spans : unit -> Span.completed list
(** Completed spans so far: engines grouped by ascending domain id, each
    engine's spans in completion order. With a single domain this is plain
    completion order. *)

val span_totals : unit -> (string * (int * int)) list
(** {!Span.totals} of {!spans}. *)

val metrics : Metrics.t
(** The global registry. *)

(** {1 Convenience shorthands over the global registry} *)

val counter : ?labels:Metrics.labels -> string -> Metrics.counter
val add : ?labels:Metrics.labels -> string -> int -> unit
val set_gauge_int : ?labels:Metrics.labels -> string -> int -> unit
val observe : ?labels:Metrics.labels -> string -> float -> unit

(** {1 Re-exports} *)

module Span = Span
module Metrics = Metrics
module Sink = Sink
module Trace_event = Trace_event
module Flight = Flight
module Diag = Diag
