(** Structured command-line diagnostics.

    One formatting path for every message the tools print to stderr:
    [cinderella: error: msg], or [file:12: error: msg] when a source
    position is known — instead of ad-hoc [Printf.eprintf] with per-site
    formats.

    Exit codes are part of the contract:
    - {!exit_input} (2) — the user's input was wrong: unreadable or
      malformed source, annotations, CLI values, unknown functions;
    - {!exit_analysis} (1) — the input was well-formed but the run failed:
      analysis errors, simulator runtime errors, fuzzing counterexamples.

    Messages go through an injectable printer so tests can capture them. *)

type severity = Error | Warning | Note

val exit_input : int
val exit_analysis : int

val set_printer : (string -> unit) -> unit
(** Replace the stderr printer (tests). Default writes ["%s\n"] to stderr
    and flushes. *)

val emit :
  ?file:string -> ?line:int -> severity -> ('a, unit, string, unit) format4 -> 'a
(** Format and print one diagnostic. [line] is only shown with [file]. *)

val fail :
  ?file:string -> ?line:int -> code:int -> ('a, unit, string, 'b) format4 -> 'a
(** [emit Error] then [exit code]. *)
