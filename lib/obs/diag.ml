type severity = Error | Warning | Note

let exit_input = 2
let exit_analysis = 1

let default_printer msg =
  output_string stderr (msg ^ "\n");
  flush stderr

let printer = ref default_printer

let set_printer p = printer := p

let severity_tag = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let render ?file ?line severity msg =
  let where =
    match (file, line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, _ -> "cinderella: "
  in
  where ^ severity_tag severity ^ ": " ^ msg

let emit ?file ?line severity fmt =
  Printf.ksprintf (fun msg -> !printer (render ?file ?line severity msg)) fmt

let fail ?file ?line ~code fmt =
  Printf.ksprintf
    (fun msg ->
      !printer (render ?file ?line Error msg);
      exit code)
    fmt
