type completed = {
  name : string;
  args : (string * string) list;
  start_us : int;
  dur_us : int;
  depth : int;
  tid : int;
}

type open_span = { o_name : string; o_args : (string * string) list; o_start : int }

type t = {
  mutable clock : unit -> float;
  mutable origin : float;
  mutable last_us : int;  (* highest timestamp handed out; enforces monotony *)
  mutable stack : open_span list;
  mutable completed_rev : completed list;
  tid : int;
}

let create ?origin ?(tid = 0) ~clock () =
  let origin = match origin with Some o -> o | None -> clock () in
  { clock; origin; last_us = 0; stack = []; completed_rev = []; tid }

let origin t = t.origin

let reset ?origin t =
  t.origin <- (match origin with Some o -> o | None -> t.clock ());
  t.last_us <- 0;
  t.stack <- [];
  t.completed_rev <- []

let set_clock t clock =
  t.clock <- clock;
  reset t

let now_us t =
  let raw = int_of_float ((t.clock () -. t.origin) *. 1e6) in
  let us = if raw > t.last_us then raw else t.last_us in
  t.last_us <- us;
  us

let enter t ?(args = []) name =
  t.stack <- { o_name = name; o_args = args; o_start = now_us t } :: t.stack

let exit_ t =
  match t.stack with
  | [] -> ()
  | o :: rest ->
    let stop = now_us t in
    t.stack <- rest;
    t.completed_rev <-
      { name = o.o_name;
        args = o.o_args;
        start_us = o.o_start;
        dur_us = stop - o.o_start;
        depth = List.length rest;
        tid = t.tid }
      :: t.completed_rev

let depth t = List.length t.stack

let completed t = List.rev t.completed_rev

let totals spans =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let count, us = Option.value ~default:(0, 0) (Hashtbl.find_opt table s.name) in
      Hashtbl.replace table s.name (count + 1, us + s.dur_us))
    spans;
  Hashtbl.fold (fun name acc l -> (name, acc) :: l) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
