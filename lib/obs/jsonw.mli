(** Minimal JSON writing helpers shared by the sinks. Output is always
    valid JSON: strings are escaped, floats rendered without [nan]/[inf]
    (clamped to 0), no trailing commas. *)

val escape : string -> string
(** The body of a JSON string literal (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** A JSON number; non-finite values become [0]. *)

val obj : (string * string) list -> string
(** [obj fields] where each value is already-rendered JSON. *)

val arr : string list -> string
