let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let num f =
  if Float.is_finite f then
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  else "0"

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
