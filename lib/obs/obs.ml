module Pc = Ipet_par.Par_compat

let on = ref false

let clock = ref Unix.gettimeofday

(* One span engine per domain, created lazily on first use and sharing one
   origin so all timestamps live on a common axis. Each engine is touched
   only by its own domain (enter/exit are not synchronized); the table
   itself is the only shared structure and is lock-guarded. *)
let lock = Pc.Lock.create ()
let engines : (int, Span.t) Hashtbl.t = Hashtbl.create 8
let origin = ref (!clock ())

(* Named tracks are extra span engines living in the same table under
   synthetic tids (>= 1000, far above any real domain id), so they render
   as their own rows in the trace export. While a track is active on a
   domain, [overrides] redirects that domain's spans into the track's
   engine — that is how the daemon lands each request's span tree on a
   per-request row. *)
let track_base = 1000
let track_tids : (string, int) Hashtbl.t = Hashtbl.create 8
let next_track = ref track_base
let overrides : (int, Span.t) Hashtbl.t = Hashtbl.create 8

let engine_for_tid tid =
  match Hashtbl.find_opt engines tid with
  | Some e -> e
  | None ->
    let e = Span.create ~origin:!origin ~tid ~clock:(fun () -> !clock ()) () in
    Hashtbl.add engines tid e;
    e

let engine_for_caller () =
  let tid = Pc.domain_id () in
  Pc.Lock.with_lock lock (fun () ->
      match Hashtbl.find_opt overrides tid with
      | Some e -> e
      | None -> engine_for_tid tid)

let track_engine name =
  Pc.Lock.with_lock lock (fun () ->
      let tid =
        match Hashtbl.find_opt track_tids name with
        | Some tid -> tid
        | None ->
          let tid = !next_track in
          incr next_track;
          Hashtbl.add track_tids name tid;
          tid
      in
      engine_for_tid tid)

let metrics = Metrics.create ()

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  Pc.Lock.with_lock lock (fun () ->
      Hashtbl.reset engines;
      Hashtbl.reset track_tids;
      Hashtbl.reset overrides;
      next_track := track_base;
      origin := !clock ());
  Metrics.reset metrics

let set_clock c =
  clock := c;
  reset ()

let span ?args name f =
  if not !on then f ()
  else begin
    let engine = engine_for_caller () in
    Span.enter engine ?args name;
    match f () with
    | v ->
      Span.exit_ engine;
      v
    | exception e ->
      Span.exit_ engine;
      raise e
  end

let with_track name f =
  if not !on then f ()
  else begin
    let did = Pc.domain_id () in
    let e = track_engine name in
    let prev =
      Pc.Lock.with_lock lock (fun () ->
          let p = Hashtbl.find_opt overrides did in
          Hashtbl.replace overrides did e;
          p)
    in
    let restore () =
      Pc.Lock.with_lock lock (fun () ->
          match prev with
          | Some p -> Hashtbl.replace overrides did p
          | None -> Hashtbl.remove overrides did)
    in
    match f () with
    | v ->
      restore ();
      v
    | exception ex ->
      restore ();
      raise ex
  end

let track_names () =
  Pc.Lock.with_lock lock (fun () ->
      Hashtbl.fold (fun name tid acc -> (tid, name) :: acc) track_tids [])
  |> List.sort compare

let track_spans name =
  Pc.Lock.with_lock lock (fun () ->
      match Hashtbl.find_opt track_tids name with
      | None -> []
      | Some tid ->
        (match Hashtbl.find_opt engines tid with
         | Some e -> Span.completed e
         | None -> []))

let timed f =
  let t0 = !clock () in
  let v = f () in
  (v, !clock () -. t0)

(* engines grouped by domain id, each engine's spans in completion order;
   with a single domain this is exactly the engine's completion order *)
let spans () =
  let per_engine =
    Pc.Lock.with_lock lock (fun () ->
        Hashtbl.fold (fun tid e acc -> (tid, e) :: acc) engines [])
  in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) per_engine
  |> List.concat_map (fun (_, e) -> Span.completed e)

let span_totals () = Span.totals (spans ())

let counter ?labels name = Metrics.counter metrics ?labels name
let add ?labels name n = Metrics.add (Metrics.counter metrics ?labels name) n
let set_gauge_int ?labels name v = Metrics.set_gauge_int metrics ?labels name v
let observe ?labels name x = Metrics.observe (Metrics.histogram metrics ?labels name) x

module Span = Span
module Metrics = Metrics
module Sink = Sink
module Trace_event = Trace_event
module Flight = Flight
module Diag = Diag
