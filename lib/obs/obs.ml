module Pc = Ipet_par.Par_compat

let on = ref false

let clock = ref Unix.gettimeofday

(* One span engine per domain, created lazily on first use and sharing one
   origin so all timestamps live on a common axis. Each engine is touched
   only by its own domain (enter/exit are not synchronized); the table
   itself is the only shared structure and is lock-guarded. *)
let lock = Pc.Lock.create ()
let engines : (int, Span.t) Hashtbl.t = Hashtbl.create 8
let origin = ref (!clock ())

let engine_for_caller () =
  let tid = Pc.domain_id () in
  Pc.Lock.with_lock lock (fun () ->
      match Hashtbl.find_opt engines tid with
      | Some e -> e
      | None ->
        let e = Span.create ~origin:!origin ~tid ~clock:(fun () -> !clock ()) () in
        Hashtbl.add engines tid e;
        e)

let metrics = Metrics.create ()

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  Pc.Lock.with_lock lock (fun () ->
      Hashtbl.reset engines;
      origin := !clock ());
  Metrics.reset metrics

let set_clock c =
  clock := c;
  reset ()

let span ?args name f =
  if not !on then f ()
  else begin
    let engine = engine_for_caller () in
    Span.enter engine ?args name;
    match f () with
    | v ->
      Span.exit_ engine;
      v
    | exception e ->
      Span.exit_ engine;
      raise e
  end

let timed f =
  let t0 = !clock () in
  let v = f () in
  (v, !clock () -. t0)

(* engines grouped by domain id, each engine's spans in completion order;
   with a single domain this is exactly the engine's completion order *)
let spans () =
  let per_engine =
    Pc.Lock.with_lock lock (fun () ->
        Hashtbl.fold (fun tid e acc -> (tid, e) :: acc) engines [])
  in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) per_engine
  |> List.concat_map (fun (_, e) -> Span.completed e)

let span_totals () = Span.totals (spans ())

let counter ?labels name = Metrics.counter metrics ?labels name
let add ?labels name n = Metrics.add (Metrics.counter metrics ?labels name) n
let set_gauge_int ?labels name v = Metrics.set_gauge_int metrics ?labels name v
let observe ?labels name x = Metrics.observe (Metrics.histogram metrics ?labels name) x

module Span = Span
module Metrics = Metrics
module Sink = Sink
module Trace_event = Trace_event
module Diag = Diag
