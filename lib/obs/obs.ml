let on = ref false

let clock = ref Unix.gettimeofday

let engine = Span.create ~clock:(fun () -> !clock ())

let metrics = Metrics.create ()

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  Span.reset engine;
  Metrics.reset metrics

let set_clock c =
  clock := c;
  Span.reset engine

let span ?args name f =
  if not !on then f ()
  else begin
    Span.enter engine ?args name;
    match f () with
    | v ->
      Span.exit_ engine;
      v
    | exception e ->
      Span.exit_ engine;
      raise e
  end

let timed f =
  let t0 = !clock () in
  let v = f () in
  (v, !clock () -. t0)

let spans () = Span.completed engine
let span_totals () = Span.totals (spans ())

let counter ?labels name = Metrics.counter metrics ?labels name
let add ?labels name n = Metrics.add (Metrics.counter metrics ?labels name) n
let set_gauge_int ?labels name v = Metrics.set_gauge_int metrics ?labels name v
let observe ?labels name x = Metrics.observe (Metrics.histogram metrics ?labels name) x

module Span = Span
module Metrics = Metrics
module Sink = Sink
module Trace_event = Trace_event
module Diag = Diag
