(** Chrome trace-event export.

    Renders completed spans as the JSON Trace Event Format that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly: one complete ("ph":"X") event per span with microsecond
    [ts]/[dur] on the thread row of the domain that recorded it, plus
    process/thread metadata events (one thread row per domain id present).
    Events are sorted by start timestamp, which is non-decreasing per
    domain by construction (see {!Span}). *)

val to_string :
  ?process_name:string ->
  ?track_names:(int * string) list ->
  Span.completed list ->
  string
(** The full trace document: [{"displayTimeUnit": ..., "traceEvents": [...]}].
    [track_names] overrides the thread-row label for the given tids —
    {!Obs.track_names} supplies the per-request track labels; unlisted
    tids keep the default ["domain-N"]. *)
