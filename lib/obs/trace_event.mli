(** Chrome trace-event export.

    Renders completed spans as the JSON Trace Event Format that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly: one complete ("ph":"X") event per span with microsecond
    [ts]/[dur] on the thread row of the domain that recorded it, plus
    process/thread metadata events (one thread row per domain id present).
    Events are sorted by start timestamp, which is non-decreasing per
    domain by construction (see {!Span}). *)

val to_string : ?process_name:string -> Span.completed list -> string
(** The full trace document: [{"displayTimeUnit": ..., "traceEvents": [...]}]. *)
