type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }
type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type histogram = hist

type cell = C of counter | G of gauge | H of hist

type t = { table : (string * labels, cell) Hashtbl.t }

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }

let create () = { table = Hashtbl.create 64 }

let reset t = Hashtbl.reset t.table

let key name labels =
  (name, List.sort (fun (a, _) (b, _) -> compare a b) labels)

let find_or_add t name labels ~make ~cast =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some cell -> cast cell
  | None ->
    let fresh = make () in
    Hashtbl.add t.table k fresh;
    cast fresh

let counter t ?(labels = []) name =
  find_or_add t name labels
    ~make:(fun () -> C { c = 0 })
    ~cast:(function
      | C c -> c
      | G _ | H _ -> invalid_arg (name ^ ": registered with another kind"))

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t labels name =
  find_or_add t name labels
    ~make:(fun () -> G { g = 0.0 })
    ~cast:(function
      | G g -> g
      | C _ | H _ -> invalid_arg (name ^ ": registered with another kind"))

let set_gauge t ?(labels = []) name v = (gauge t labels name).g <- v
let set_gauge_int t ?labels name v = set_gauge t ?labels name (float_of_int v)

let histogram t ?(labels = []) name =
  find_or_add t name labels
    ~make:(fun () -> H { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity })
    ~cast:(function
      | H h -> h
      | C _ | G _ -> invalid_arg (name ^ ": registered with another kind"))

let observe h x =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x

let items t =
  Hashtbl.fold
    (fun (name, labels) cell acc ->
      let value =
        match cell with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h ->
          Histogram
            { count = h.h_count;
              sum = h.h_sum;
              min = (if h.h_count = 0 then 0.0 else h.h_min);
              max = (if h.h_count = 0 then 0.0 else h.h_max) }
      in
      (name, labels, value) :: acc)
    t.table []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
