module Lock = Ipet_par.Par_compat.Lock

type labels = (string * string) list

(* Cells are written from any domain: counters are atomic, gauges are a
   single atomic write, histograms update several fields together and take
   a tiny per-cell lock. The registry table is guarded by its own lock;
   handles resolved once are updated lock-free (counters/gauges) or under
   the cell lock (histograms). *)
type counter = { c : int Atomic.t }
type gauge = { g : float Atomic.t }

(* Quantiles come from a fixed geometric bucket array: 16 buckets per
   octave (each ~4.4% wide) covering 2^-30 .. 2^30, which spans sub-
   microsecond latencies in seconds up to cycle counts in the billions.
   An observation costs one array increment; a quantile read walks the
   array once. Out-of-range and non-positive samples land in the edge
   buckets — min/max still record them exactly, and quantile results are
   clamped to [min, max] so small samples stay sharp. *)
let nbuckets = 961
let buckets_per_octave = 16.0
let bucket_zero = 480 (* index of the bucket containing 1.0 *)

let bucket_of x =
  if x <= 0.0 || not (Float.is_finite x) then 0
  else begin
    let octaves = Float.log x /. Float.log 2.0 in
    let i = bucket_zero + int_of_float (Float.floor (octaves *. buckets_per_octave)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i
  end

let bucket_mid i =
  Float.pow 2.0 ((float_of_int (i - bucket_zero) +. 0.5) /. buckets_per_octave)

type hist = {
  h_lock : Lock.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type histogram = hist

type cell = C of counter | G of gauge | H of hist

type t = { lock : Lock.t; table : (string * labels, cell) Hashtbl.t }

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }

let create () = { lock = Lock.create (); table = Hashtbl.create 64 }

let reset t = Lock.with_lock t.lock (fun () -> Hashtbl.reset t.table)

let key name labels =
  (name, List.sort (fun (a, _) (b, _) -> compare a b) labels)

let find_or_add t name labels ~make ~cast =
  let k = key name labels in
  Lock.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some cell -> cast cell
      | None ->
        let fresh = make () in
        Hashtbl.add t.table k fresh;
        cast fresh)

let counter t ?(labels = []) name =
  find_or_add t name labels
    ~make:(fun () -> C { c = Atomic.make 0 })
    ~cast:(function
      | C c -> c
      | G _ | H _ -> invalid_arg (name ^ ": registered with another kind"))

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

let gauge t labels name =
  find_or_add t name labels
    ~make:(fun () -> G { g = Atomic.make 0.0 })
    ~cast:(function
      | G g -> g
      | C _ | H _ -> invalid_arg (name ^ ": registered with another kind"))

let set_gauge t ?(labels = []) name v = Atomic.set (gauge t labels name).g v
let set_gauge_int t ?labels name v = set_gauge t ?labels name (float_of_int v)

let histogram t ?(labels = []) name =
  find_or_add t name labels
    ~make:(fun () ->
      H { h_lock = Lock.create ();
          h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
          h_buckets = Array.make nbuckets 0 })
    ~cast:(function
      | H h -> h
      | C _ | G _ -> invalid_arg (name ^ ": registered with another kind"))

let observe h x =
  Lock.with_lock h.h_lock (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. x;
      if x < h.h_min then h.h_min <- x;
      if x > h.h_max then h.h_max <- x;
      let b = bucket_of x in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1)

(* rank = ceil(q * count), the same convention as sorting the samples and
   taking the rank-th one (1-based); the answer is the midpoint of the
   bucket holding that rank, clamped to the exact observed extremes *)
let quantile h q =
  Lock.with_lock h.h_lock (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let rank =
          let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
          if r < 1 then 1 else if r > h.h_count then h.h_count else r
        in
        let idx = ref (nbuckets - 1) in
        let cum = ref 0 in
        (try
           for i = 0 to nbuckets - 1 do
             cum := !cum + h.h_buckets.(i);
             if !cum >= rank then begin
               idx := i;
               raise Exit
             end
           done
         with Exit -> ());
        Float.max h.h_min (Float.min h.h_max (bucket_mid !idx))
      end)

let items t =
  Lock.with_lock t.lock (fun () ->
      Hashtbl.fold
        (fun (name, labels) cell acc ->
          let value =
            match cell with
            | C c -> Counter (Atomic.get c.c)
            | G g -> Gauge (Atomic.get g.g)
            | H h ->
              Lock.with_lock h.h_lock (fun () ->
                  Histogram
                    { count = h.h_count;
                      sum = h.h_sum;
                      min = (if h.h_count = 0 then 0.0 else h.h_min);
                      max = (if h.h_count = 0 then 0.0 else h.h_max) })
          in
          (name, labels, value) :: acc)
        t.table [])
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
