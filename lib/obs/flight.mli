(** Always-on flight recorder: a fixed-size ring of per-request events.

    The daemon records one compact structured {!event} for {e every}
    request it handles — independent of whether span tracing is enabled —
    so the last [cap] requests before a crash or shutdown are always
    reconstructible. A write is O(1) (one lock, one array store); the ring
    never allocates after {!create} beyond the event records themselves.

    Events carry a monotonically increasing sequence number starting at 0;
    once the ring wraps, only the newest [cap] events (and their original
    sequence numbers) survive. {!recent} answers the daemon's [recent]
    protocol op live; {!write_dump} renders the ring as JSONL on the
    shutdown/crash path. *)

type event = {
  time : float;             (** request arrival, Unix seconds *)
  id : string;              (** client trace id, or a server-assigned one *)
  op : string;              (** protocol op, ["?"] when unparsable *)
  root : string;            (** analysis root, [""] for non-analyze ops *)
  digests : string list;    (** per-function unit cache keys (capped) *)
  units_total : int;
  units_cached : int;
  units_solved : int;
  warm_hits : int;          (** warm-started LP solves *)
  pivots : int;             (** simplex pivots spent on this request *)
  certs_checked : int;
  certs_rejected : int;
  latency_ms : float;
  error : string option;    (** error-taxonomy code, [None] on success *)
}

type t

val create : ?cap:int -> unit -> t
(** A ring holding the last [cap] (default 256, minimum 1) events. *)

val cap : t -> int

val record : t -> event -> unit
(** Append an event, overwriting the oldest once the ring is full. *)

val total : t -> int
(** Events recorded over the ring's lifetime (not just those retained). *)

val recent : ?n:int -> t -> (int * event) list
(** The newest [n] (default: all retained) events, newest first, each with
    its sequence number. *)

val event_json : int * event -> string
(** One event as a single-line JSON object (the JSONL dump row). *)

val dump : t -> string
(** The retained events as JSONL, oldest first. *)

val write_dump : t -> string -> unit
(** Write {!dump} to a file; no-op when the ring is empty, best-effort on
    I/O errors (the crash path must not raise). *)
