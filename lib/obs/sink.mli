(** Rendering a metrics registry (and span aggregates) for humans and
    machines.

    Three formats share one source of truth:
    - {!human} — one [name{label=v,...} value] line per metric, sorted,
      for terminal output ([--lp-stats] and friends); histograms include
      p50/p90/p99 quantile estimates (see {!Metrics.quantile});
    - {!metrics_json} — a versioned JSON document with every metric and
      optional per-span-name duration aggregates, written by
      [--metrics-out]. Keys are emitted in sorted order, so two runs of
      the same workload produce documents that differ only in the observed
      values (and not at all under a deterministic clock);
    - {!prometheus} — the Prometheus text exposition format, served by the
      daemon's [metrics] op for scraping. Dotted names map to underscores;
      histograms render as summaries (quantile-labeled samples plus
      [_sum]/[_count]). *)

val human : ?filter:(string -> bool) -> Metrics.t -> string
(** Render the registry as text; [filter] selects metric names
    (default: all). *)

val metrics_json :
  ?span_totals:(string * (int * int)) list -> Metrics.t -> string
(** The machine document: [{"version": 1, "metrics": [...], "spans": [...]}].
    [span_totals] is {!Span.totals} output: per-name completion counts and
    total microseconds. *)

val prometheus : Metrics.t -> string
(** Render the registry in the Prometheus text exposition format: a
    [# TYPE] line per metric family (counter/gauge/summary) followed by
    its samples, in registry (sorted) order. *)

val write_file : string -> string -> unit
(** Create/truncate a file with the given content. *)
