let pp_labels labels =
  match labels with
  | [] -> ""
  | kvs ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"

(* histogram rendering needs the live cell (for quantiles), not just the
   snapshot value — [Metrics.histogram] on an already-registered name is a
   pure lookup *)
let pp_value registry name labels = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g ->
    if Float.is_integer g && Float.abs g < 1e15 then Printf.sprintf "%.0f" g
    else Printf.sprintf "%.6g" g
  | Metrics.Histogram { count; sum; min; max } ->
    let h = Metrics.histogram registry ~labels name in
    Printf.sprintf
      "count=%d sum=%.6g min=%.6g max=%.6g p50=%.6g p90=%.6g p99=%.6g" count
      sum min max
      (Metrics.quantile h 0.5)
      (Metrics.quantile h 0.9)
      (Metrics.quantile h 0.99)

let human ?(filter = fun _ -> true) registry =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, labels, value) ->
      if filter name then
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (pp_labels labels)
             (pp_value registry name labels value)))
    (Metrics.items registry);
  Buffer.contents buf

let json_value registry name labels = function
  | Metrics.Counter n ->
    [ ("type", Jsonw.str "counter"); ("value", string_of_int n) ]
  | Metrics.Gauge g -> [ ("type", Jsonw.str "gauge"); ("value", Jsonw.num g) ]
  | Metrics.Histogram { count; sum; min; max } ->
    let h = Metrics.histogram registry ~labels name in
    [ ("type", Jsonw.str "histogram");
      ("count", string_of_int count);
      ("sum", Jsonw.num sum);
      ("min", Jsonw.num min);
      ("max", Jsonw.num max);
      ("p50", Jsonw.num (Metrics.quantile h 0.5));
      ("p90", Jsonw.num (Metrics.quantile h 0.9));
      ("p99", Jsonw.num (Metrics.quantile h 0.99)) ]

let metrics_json ?(span_totals = []) registry =
  let metric (name, labels, value) =
    Jsonw.obj
      (( "name", Jsonw.str name )
       :: ( "labels",
            Jsonw.obj (List.map (fun (k, v) -> (k, Jsonw.str v)) labels) )
       :: json_value registry name labels value)
  in
  let span (name, (count, total_us)) =
    Jsonw.obj
      [ ("name", Jsonw.str name);
        ("count", string_of_int count);
        ("total_us", string_of_int total_us) ]
  in
  Printf.sprintf
    "{\n  \"version\": 1,\n  \"metrics\": [\n    %s\n  ],\n  \"spans\": [\n    %s\n  ]\n}\n"
    (String.concat ",\n    " (List.map metric (Metrics.items registry)))
    (String.concat ",\n    " (List.map span span_totals))

(* --- Prometheus text exposition format ----------------------------------- *)

(* metric names allow [a-zA-Z0-9_:]; our dotted names map '.' (and any
   other outsider) to '_'. None of our names start with a digit. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> prom_name k ^ "=\"" ^ prom_escape v ^ "\"")
           kvs)
    ^ "}"

let prom_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus registry =
  let buf = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let sample name labels v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (prom_labels labels) v)
  in
  List.iter
    (fun (name, labels, value) ->
      let pname = prom_name name in
      (* items are sorted by name, so every sample of a family follows its
         TYPE line *)
      if not (Hashtbl.mem typed pname) then begin
        Hashtbl.add typed pname ();
        let kind =
          match value with
          | Metrics.Counter _ -> "counter"
          | Metrics.Gauge _ -> "gauge"
          | Metrics.Histogram _ -> "summary"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" pname kind)
      end;
      match value with
      | Metrics.Counter n -> sample pname labels (string_of_int n)
      | Metrics.Gauge g -> sample pname labels (prom_num g)
      | Metrics.Histogram { count; sum; _ } ->
        let h = Metrics.histogram registry ~labels name in
        List.iter
          (fun q ->
            sample pname
              (labels @ [ ("quantile", Printf.sprintf "%g" q) ])
              (prom_num (Metrics.quantile h q)))
          [ 0.5; 0.9; 0.99 ];
        sample (pname ^ "_sum") labels (prom_num sum);
        sample (pname ^ "_count") labels (string_of_int count))
    (Metrics.items registry);
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc
