let pp_labels labels =
  match labels with
  | [] -> ""
  | kvs ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"

let pp_value = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g ->
    if Float.is_integer g && Float.abs g < 1e15 then Printf.sprintf "%.0f" g
    else Printf.sprintf "%.6g" g
  | Metrics.Histogram { count; sum; min; max } ->
    Printf.sprintf "count=%d sum=%.6g min=%.6g max=%.6g" count sum min max

let human ?(filter = fun _ -> true) registry =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, labels, value) ->
      if filter name then
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (pp_labels labels) (pp_value value)))
    (Metrics.items registry);
  Buffer.contents buf

let json_value = function
  | Metrics.Counter n ->
    [ ("type", Jsonw.str "counter"); ("value", string_of_int n) ]
  | Metrics.Gauge g -> [ ("type", Jsonw.str "gauge"); ("value", Jsonw.num g) ]
  | Metrics.Histogram { count; sum; min; max } ->
    [ ("type", Jsonw.str "histogram");
      ("count", string_of_int count);
      ("sum", Jsonw.num sum);
      ("min", Jsonw.num min);
      ("max", Jsonw.num max) ]

let metrics_json ?(span_totals = []) registry =
  let metric (name, labels, value) =
    Jsonw.obj
      (( "name", Jsonw.str name )
       :: ( "labels",
            Jsonw.obj (List.map (fun (k, v) -> (k, Jsonw.str v)) labels) )
       :: json_value value)
  in
  let span (name, (count, total_us)) =
    Jsonw.obj
      [ ("name", Jsonw.str name);
        ("count", string_of_int count);
        ("total_us", string_of_int total_us) ]
  in
  Printf.sprintf
    "{\n  \"version\": 1,\n  \"metrics\": [\n    %s\n  ],\n  \"spans\": [\n    %s\n  ]\n}\n"
    (String.concat ",\n    " (List.map metric (Metrics.items registry)))
    (String.concat ",\n    " (List.map span span_totals))

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc
