module Lock = Ipet_par.Par_compat.Lock

type event = {
  time : float;
  id : string;
  op : string;
  root : string;
  digests : string list;
  units_total : int;
  units_cached : int;
  units_solved : int;
  warm_hits : int;
  pivots : int;
  certs_checked : int;
  certs_rejected : int;
  latency_ms : float;
  error : string option;
}

type t = {
  lock : Lock.t;
  ring_cap : int;
  buf : event option array;
  mutable total : int;
}

let create ?(cap = 256) () =
  let cap = max 1 cap in
  { lock = Lock.create (); ring_cap = cap; buf = Array.make cap None; total = 0 }

let cap t = t.ring_cap

let record t e =
  Lock.with_lock t.lock (fun () ->
      t.buf.(t.total mod t.ring_cap) <- Some e;
      t.total <- t.total + 1)

let total t = Lock.with_lock t.lock (fun () -> t.total)

let recent ?(n = max_int) t =
  Lock.with_lock t.lock (fun () ->
      let available = min t.total t.ring_cap in
      let n = max 0 (min n available) in
      List.init n (fun i ->
          let seq = t.total - 1 - i in
          match t.buf.(seq mod t.ring_cap) with
          | Some e -> (seq, e)
          | None -> assert false (* slots below [total] are always filled *)))

let event_json (seq, e) =
  Jsonw.obj
    ([ ("seq", string_of_int seq);
       ("time", Jsonw.num e.time);
       ("id", Jsonw.str e.id);
       ("op", Jsonw.str e.op) ]
     @ (if e.root = "" then [] else [ ("root", Jsonw.str e.root) ])
     @ [ ("digests", Jsonw.arr (List.map Jsonw.str e.digests));
         ("units_total", string_of_int e.units_total);
         ("units_cached", string_of_int e.units_cached);
         ("units_solved", string_of_int e.units_solved);
         ("warm_lp_hits", string_of_int e.warm_hits);
         ("pivots", string_of_int e.pivots);
         ("certs_checked", string_of_int e.certs_checked);
         ("certs_rejected", string_of_int e.certs_rejected);
         ("latency_ms", Jsonw.num e.latency_ms) ]
     @ (match e.error with
        | None -> []
        | Some code -> [ ("error", Jsonw.str code) ]))

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_char buf '\n')
    (List.rev (recent t));
  Buffer.contents buf

let write_dump t path =
  if total t > 0 then
    try
      let oc = open_out path in
      output_string oc (dump t);
      close_out oc
    with Sys_error _ -> ()
