(** Hierarchical wall-clock spans.

    A span engine keeps a stack of open spans and a buffer of completed
    ones. Timestamps are microseconds since the engine's origin, read from
    an injectable clock and {e clamped to be monotonic}: a reading that
    goes backwards (NTP step, coarse clock) is raised to the previous
    reading, so exported traces always have non-decreasing, non-negative
    timestamps and durations.

    The engine itself is cheap but not free; {!Obs.span} is the user-facing
    entry point and bypasses the engine entirely when observability is
    disabled. *)

type completed = {
  name : string;
  args : (string * string) list;  (** free-form key/value annotations *)
  start_us : int;                 (** microseconds since the engine origin *)
  dur_us : int;
  depth : int;                    (** 0 for top-level spans *)
}

type t

val create : clock:(unit -> float) -> t
(** [clock] returns seconds (any epoch; only differences are used). *)

val set_clock : t -> (unit -> float) -> unit
(** Replace the clock and re-anchor the origin (tests inject a
    deterministic clock). Implies {!reset}. *)

val reset : t -> unit
(** Drop all open and completed spans and re-anchor the origin. *)

val enter : t -> ?args:(string * string) list -> string -> unit
val exit_ : t -> unit
(** Close the innermost open span. No-op on an empty stack. *)

val depth : t -> int
(** Number of currently open spans. *)

val completed : t -> completed list
(** Completed spans in completion order (children precede parents). *)

val totals : completed list -> (string * (int * int)) list
(** Aggregate by span name: [(name, (count, total_us))], sorted by name.
    Nested self-recursion counts each completion separately. *)
