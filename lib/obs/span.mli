(** Hierarchical wall-clock spans.

    A span engine keeps a stack of open spans and a buffer of completed
    ones. Timestamps are microseconds since the engine's origin, read from
    an injectable clock and {e clamped to be monotonic}: a reading that
    goes backwards (NTP step, coarse clock) is raised to the previous
    reading, so exported traces always have non-decreasing, non-negative
    timestamps and durations.

    The engine itself is cheap but not free; {!Obs.span} is the user-facing
    entry point and bypasses the engine entirely when observability is
    disabled. *)

type completed = {
  name : string;
  args : (string * string) list;  (** free-form key/value annotations *)
  start_us : int;                 (** microseconds since the engine origin *)
  dur_us : int;
  depth : int;                    (** 0 for top-level spans *)
  tid : int;                      (** the engine's thread/domain id *)
}

type t

val create : ?origin:float -> ?tid:int -> clock:(unit -> float) -> unit -> t
(** [clock] returns seconds (any epoch; only differences are used).
    [origin] (default [clock ()]) anchors timestamp zero — {!Obs} passes
    one shared origin to every per-domain engine so their spans line up on
    a common axis. [tid] (default [0]) stamps this engine's completed
    spans. An engine is single-owner: only the domain that entered a span
    may exit it. *)

val origin : t -> float

val set_clock : t -> (unit -> float) -> unit
(** Replace the clock and re-anchor the origin (tests inject a
    deterministic clock). Implies {!reset}. *)

val reset : ?origin:float -> t -> unit
(** Drop all open and completed spans and re-anchor the origin (to
    [origin] when given, the current clock otherwise). *)

val enter : t -> ?args:(string * string) list -> string -> unit
val exit_ : t -> unit
(** Close the innermost open span. No-op on an empty stack. *)

val depth : t -> int
(** Number of currently open spans. *)

val completed : t -> completed list
(** Completed spans in completion order (children precede parents). *)

val totals : completed list -> (string * (int * int)) list
(** Aggregate by span name: [(name, (count, total_us))], sorted by name.
    Nested self-recursion counts each completion separately. *)
