let event (s : Span.completed) =
  let args =
    match s.Span.args with
    | [] -> []
    | kvs -> [ ("args", Jsonw.obj (List.map (fun (k, v) -> (k, Jsonw.str v)) kvs)) ]
  in
  Jsonw.obj
    ([ ("name", Jsonw.str s.Span.name);
       ("cat", Jsonw.str "ipet");
       ("ph", Jsonw.str "X");
       ("pid", "1");
       ("tid", string_of_int s.Span.tid);
       ("ts", string_of_int s.Span.start_us);
       ("dur", string_of_int s.Span.dur_us) ]
     @ args)

let metadata ?(tid = 0) name value =
  Jsonw.obj
    [ ("name", Jsonw.str name);
      ("ph", Jsonw.str "M");
      ("pid", "1");
      ("tid", string_of_int tid);
      ("args", Jsonw.obj [ ("name", Jsonw.str value) ]) ]

let to_string ?(process_name = "cinderella") ?(track_names = []) spans =
  let sorted =
    List.stable_sort
      (fun (a : Span.completed) b -> compare a.Span.start_us b.Span.start_us)
      spans
  in
  let tids =
    List.sort_uniq compare (List.map (fun (s : Span.completed) -> s.Span.tid) sorted)
  in
  let track_name tid =
    match List.assoc_opt tid track_names with
    | Some name -> name
    | None -> Printf.sprintf "domain-%d" tid
  in
  let thread_names =
    List.map (fun tid -> metadata ~tid "thread_name" (track_name tid)) tids
  in
  let events =
    (metadata "process_name" process_name :: thread_names) @ List.map event sorted
  in
  "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n  "
  ^ String.concat ",\n  " events
  ^ "\n]}\n"
