type t = Vint of int | Vfloat of float

let zero = Vint 0

let min_int32 = -0x8000_0000
let max_int32 = 0x7FFF_FFFF

(* two's-complement truncation to 32 bits, sign-extended back into the
   native int: the single normalization point both the interpreter's ALU
   and the optimizer's constant folder must apply to every E32 integer
   result so the two can never drift *)
let wrap32 i = ((i land 0xFFFF_FFFF) lxor 0x8000_0000) - 0x8000_0000

let as_int = function
  | Vint i -> i
  | Vfloat _ -> invalid_arg "Value.as_int: float word"

let as_float = function
  | Vfloat f -> f
  | Vint _ -> invalid_arg "Value.as_float: int word"

let truthy = function Vint i -> i <> 0 | Vfloat f -> f <> 0.0

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vint _, Vfloat _ | Vfloat _, Vint _ -> false

let pp fmt = function
  | Vint i -> Format.fprintf fmt "%d" i
  | Vfloat f -> Format.fprintf fmt "%g" f
