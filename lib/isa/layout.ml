(* per-function dense arrays indexed by block id: the decode pass of the
   simulator walks every block once, and the analytical cost model queries
   per block, so lookups must not hash tuple keys *)
type entry = { faddr : int; addrs : int array; sizes : int array }

type t = {
  by_func : (string, entry) Hashtbl.t;
  code_size : int;
}

let make (program : Prog.t) =
  let by_func = Hashtbl.create 16 in
  let cursor = ref 0 in
  Array.iter
    (fun (f : Prog.func) ->
      let n = Array.length f.Prog.blocks in
      let addrs = Array.make n 0 in
      let sizes = Array.make n 0 in
      let faddr = !cursor in
      Array.iter
        (fun (b : Prog.block) ->
          let size = Prog.block_size_instrs b * Instr.bytes_per_instr in
          addrs.(b.Prog.id) <- !cursor;
          sizes.(b.Prog.id) <- size;
          cursor := !cursor + size)
        f.Prog.blocks;
      if not (Hashtbl.mem by_func f.Prog.name) then
        Hashtbl.add by_func f.Prog.name { faddr; addrs; sizes })
    program.Prog.funcs;
  { by_func; code_size = !cursor }

let entry t ~func ~block =
  match Hashtbl.find_opt t.by_func func with
  | Some e when block >= 0 && block < Array.length e.addrs -> e
  | Some _ | None -> raise Not_found

let block_addr t ~func ~block = (entry t ~func ~block).addrs.(block)

let block_size_bytes t ~func ~block = (entry t ~func ~block).sizes.(block)

let func_addr t name =
  match Hashtbl.find_opt t.by_func name with
  | Some e -> e.faddr
  | None -> raise Not_found

let code_size t = t.code_size
