(** Machine words: the contents of E32 registers and memory cells.

    E32 keeps integers and floats in the same register file and memory; a
    word is tagged so the simulator can detect type confusion (which would
    be a compiler bug). *)

type t = Vint of int | Vfloat of float

val zero : t

val min_int32 : int
val max_int32 : int

(** Truncate to 32-bit two's complement and sign-extend back into the
    native int — the E32 register width. Every integer ALU result (in the
    simulator and in the constant folder alike) is normalized through this
    function, so [Add]/[Sub]/[Mul] overflow wraps exactly as on a 32-bit
    machine instead of silently computing at OCaml's native width. *)
val wrap32 : int -> int
val as_int : t -> int
(** @raise Invalid_argument on a float word. *)

val as_float : t -> float
(** @raise Invalid_argument on an int word. *)

val truthy : t -> bool
(** Non-zero test used by conditional branches. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
