(** Per-basic-block execution-time bounds — the [c_i] of the objective
    function (1).

    Following Section IV, the cost of a block must be a constant, so:
    best case assumes every instruction fetch hits the cache; worst case
    charges a full line fill for {e every} cache line the block spans on
    {e every} execution. Deterministic pipeline stalls and terminator
    bounds are added to both. [worst_warm] is the worst case without the
    cache-miss component, used by the first-iteration-split refinement that
    Section IV suggests. *)

type bounds = {
  best : int;
  worst : int;
  worst_warm : int;  (** worst case assuming all fetches hit *)
}

module Int_set : Set.S with type elt = int

val reachable_slots :
  Icache.config -> Ipet_isa.Layout.t -> Ipet_isa.Prog.t -> string -> Int_set.t
(** For each function, the direct-mapped cache slots that code transitively
    reachable from it (itself plus all callees) can occupy. A call inside a
    block can fetch all of this before control returns. *)

val block_bounds :
  ?mach:Machine.t ->
  ?dcache:Icache.config ->
  ?callee_slots:(string -> Int_set.t) ->
  Icache.config ->
  Ipet_isa.Layout.t ->
  func:string ->
  Ipet_isa.Prog.block ->
  bounds
(** [mach] supplies the issue/stall/terminator timings (default
    {!Machine.e32}, byte-identical to the historical hard-wired model).

    [dcache] switches loads from the flat-latency memory model to
    hit-in-the-best-case / miss-in-the-worst-case data-cache bounds.

    [callee_slots] (from {!reachable_slots}) enables the mid-block call
    refetch charge: when a call splits a cache line — the fetch after the
    call resumes on the line the call sits on — and a reachable callee's
    code maps to that line's slot, the callee may evict the line while the
    block is suspended, so the worst case charges one extra fill per such
    call site. Without it blocks containing calls may be under-estimated
    (unsound) whenever callee code conflicts with the caller's lines. *)

val func_bounds :
  ?mach:Machine.t ->
  ?dcache:Icache.config ->
  ?prog:Ipet_isa.Prog.t ->
  Icache.config ->
  Ipet_isa.Layout.t ->
  Ipet_isa.Prog.func ->
  bounds array
(** Bounds for every block of the function, indexed by block id. [prog]
    supplies the call graph for the mid-block call refetch charge of
    {!block_bounds}; omitting it reproduces the bare lines-spanned model. *)
