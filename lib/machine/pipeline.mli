(** Intra-block pipeline hazard analysis (Section IV: "for each assembly
    instruction ... we analyze its adjacent instructions within the basic
    block").

    The only modelled hazard is the load-use interlock: it is deterministic
    (it depends on the instruction sequence, not on data), so the same stall
    count is added to both the best- and worst-case block cost and charged
    by the cycle simulator. *)

val stall_after : Ipet_isa.Instr.t -> Ipet_isa.Instr.t -> int
(** [stall_after prev cur] — stall cycles suffered by [cur] given the
    instruction just before it. *)

val stall_table : Ipet_isa.Instr.t array -> int array
(** Per-instruction stall cycles: entry [i] is [stall_after instrs.(i-1)
    instrs.(i)] (entry 0 is 0). Deterministic, so a decoded simulator can
    compute it once per block instead of per execution. *)

val block_stalls : Ipet_isa.Instr.t array -> int
(** Total deterministic stall cycles of a straight-line block body. *)
