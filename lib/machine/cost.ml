module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout

type bounds = { best : int; worst : int; worst_warm : int }

(* per-instruction cost bounds: identical except for loads when a data
   cache is modelled (best assumes hits, worst assumes misses) *)
let instr_bounds ?(mach = Machine.e32) ?dcache instr =
  let (module M : Machine.MACHINE) = mach in
  match (instr, dcache) with
  | Ipet_isa.Instr.Load _, Some d ->
    let base = M.issue ~dcache:true instr in
    (base, base + d.Icache.miss_penalty)
  | _, (Some _ | None) ->
    let c = M.issue ~dcache:false instr in
    (c, c)

module Int_set = Set.Make (Int)

(* cache slots (direct-mapped line indices) covered by a function's code *)
let own_slots cfg layout (f : P.func) =
  Array.fold_left
    (fun acc (b : P.block) ->
      let addr = Layout.block_addr layout ~func:f.P.name ~block:b.P.id in
      let size = Layout.block_size_bytes layout ~func:f.P.name ~block:b.P.id in
      let first = addr / cfg.Icache.line_bytes in
      let last = (addr + size - 1) / cfg.Icache.line_bytes in
      let rec add acc line =
        if line > last then acc
        else
          add (Int_set.add (fst (Icache.slot_of cfg (line * cfg.Icache.line_bytes))) acc)
            (line + 1)
      in
      add acc first)
    Int_set.empty f.P.blocks

(* slots any code reachable from each function can occupy: a call inside a
   block may (transitively) fetch all of this, evicting the caller's own
   lines mid-block *)
let reachable_slots cfg layout (prog : P.t) =
  let slots = Hashtbl.create 16 in
  Array.iter
    (fun (f : P.func) -> Hashtbl.replace slots f.P.name (own_slots cfg layout f))
    prog.P.funcs;
  let callees = Hashtbl.create 16 in
  Array.iter
    (fun (f : P.func) ->
      let cs =
        Array.fold_left
          (fun acc b -> List.rev_append (P.calls_of_block b) acc)
          [] f.P.blocks
        |> List.sort_uniq compare
      in
      Hashtbl.replace callees f.P.name cs)
    prog.P.funcs;
  (* fixpoint: sets only grow and are bounded by the number of slots *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (f : P.func) ->
        let cur = Hashtbl.find slots f.P.name in
        let next =
          List.fold_left
            (fun acc callee ->
              match Hashtbl.find_opt slots callee with
              | Some s -> Int_set.union acc s
              | None -> acc)
            cur
            (Hashtbl.find callees f.P.name)
        in
        if not (Int_set.equal next cur) then begin
          Hashtbl.replace slots f.P.name next;
          changed := true
        end)
      prog.P.funcs
  done;
  fun name ->
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> Int_set.empty

(* A call in the middle of a block hands the fetch stream to the callee;
   when control returns, a line the block had already fetched may have
   been evicted. Fetch addresses within a block only increase, so the only
   line that can miss twice is one a call {e splits} — the call and the
   next fetch (instruction or terminator) sharing a line — and only when
   some transitively reachable callee's code maps to that line's slot.
   One extra fill is charged per such call site. *)
let call_split_extra cfg ~callee_slots ~addr ~size (block : P.block) =
  let bpi = Ipet_isa.Instr.bytes_per_instr in
  let extra = ref 0 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Ipet_isa.Instr.Call (_, callee, _) when (i + 1) * bpi < size ->
        let call_addr = addr + (i * bpi) in
        let next_addr = call_addr + bpi in
        if
          call_addr / cfg.Icache.line_bytes = next_addr / cfg.Icache.line_bytes
          && Int_set.mem
               (fst (Icache.slot_of cfg call_addr))
               (callee_slots callee)
        then incr extra
      | _ -> ())
    block.P.instrs;
  !extra

let block_bounds ?(mach = Machine.e32) ?dcache ?callee_slots cfg layout ~func
    (block : P.block) =
  let (module M : Machine.MACHINE) = mach in
  let best_body, worst_body =
    Array.fold_left
      (fun (b, w) i ->
        let ib, iw = instr_bounds ~mach ?dcache i in
        (b + ib, w + iw))
      (0, 0) block.P.instrs
  in
  let stalls = Machine.block_stalls mach block.P.instrs in
  let term_best, term_worst = M.term_bounds block.P.term in
  let addr = Layout.block_addr layout ~func ~block:block.P.id in
  let size = Layout.block_size_bytes layout ~func ~block:block.P.id in
  let lines = Icache.lines_spanned cfg ~addr ~size in
  let refetches =
    match callee_slots with
    | None -> 0
    | Some callee_slots -> call_split_extra cfg ~callee_slots ~addr ~size block
  in
  { best = best_body + stalls + term_best;
    worst_warm = worst_body + stalls + term_worst;
    worst =
      worst_body + stalls + term_worst
      + ((lines + refetches) * cfg.Icache.miss_penalty) }

let func_bounds ?mach ?dcache ?prog cfg layout (func : P.func) =
  let callee_slots = Option.map (reachable_slots cfg layout) prog in
  Array.map
    (fun b ->
      block_bounds ?mach ?dcache ?callee_slots cfg layout ~func:func.P.name b)
    func.P.blocks
