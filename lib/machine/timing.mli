(** Per-instruction timing of the E32 micro-architecture.

    The numbers play the role of the "hardware manual" of Section IV: a
    4-stage pipelined RISC in the spirit of the i960KB, with single-cycle
    ALU operations, a multi-cycle multiplier/divider, a slow FPU, uncached
    data memory with a fixed access time, and expensive call/return (the
    i960 spills its register cache on call). All values are in cycles. *)

val issue : Ipet_isa.Instr.t -> int
(** Full (non-overlapped) execution cycles of one instruction, excluding
    instruction-fetch misses and pipeline stalls. *)

val term_bounds : Ipet_isa.Instr.terminator -> int * int
(** (best, worst) cycles of the block terminator; branches cost more when
    taken (pipeline refill). *)

val term_actual : Ipet_isa.Instr.terminator -> taken:bool -> int
(** Cycles actually spent by the terminator given the branch outcome; always
    within {!term_bounds}. *)

val load_base : int
(** Pipeline cost of a load excluding the memory access itself. *)

val flat_memory_latency : int
(** Data-memory access time without a data cache (the default model). *)

val load_use_stall : int
(** Extra cycles when an instruction consumes the result of the load
    immediately preceding it. *)

val issue_table : ?dcache:bool -> Ipet_isa.Instr.t array -> int array
(** Per-instruction issue cycles of a block body, precomputable at decode
    time. With [~dcache:true] loads cost only {!load_base}; their memory
    time is charged by the simulator's data-cache model. *)
