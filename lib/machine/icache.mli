(** Direct-mapped instruction cache, modelled after the i960KB's 512-byte
    on-chip cache. Used by the cycle simulator; the analytical cost model
    only uses the configuration (lines touched per block, miss penalty). *)

type config = {
  size_bytes : int;     (** total capacity; must be a multiple of line_bytes *)
  line_bytes : int;     (** must be a power of two *)
  miss_penalty : int;   (** cycles to fill one line *)
}

val i960kb : config
(** The paper's target: 512 bytes, 16-byte lines, 8-cycle fill. *)

type t

val create : config -> t
val config : t -> config

val access : t -> int -> bool
(** [access t byte_addr] simulates a fetch from the line containing the
    address and returns [true] on a hit. Statistics are updated. *)

val slot_of : config -> int -> int * int
(** [slot_of cfg byte_addr] is the [(tag_index, line)] pair [access] would
    probe — precomputable per static fetch address, so a decoded simulator
    can skip the per-access division. *)

val access_slot : t -> index:int -> line:int -> bool
(** [access_slot t ~index ~line] is [access] with the address mapping
    already done via {!slot_of} against the same configuration. *)

val lookup : t -> int -> bool
(** Hit test without state change. *)

val flush : t -> unit
(** Invalidate every line (the paper flushes before each worst-case
    measurement run). *)

val tag_array : t -> int array
(** The live tag store ([-1] = invalid), indexed by {!slot_of}'s tag index.
    A decoded simulator may probe and fill lines directly as an inlined
    fast path, keeping its own hit/miss tallies; {!flush} still applies. *)

val hits : t -> int
val misses : t -> int

val lines_spanned : config -> addr:int -> size:int -> int
(** Number of cache lines covered by a [size]-byte object at [addr]. *)
