module I = Ipet_isa.Instr

(* A machine model is everything the analysis, the cost bounds and the
   cycle simulator need to know about the target micro-architecture:
   per-instruction issue timings, the deterministic intra-block stall
   model, terminator costs, the default instruction-fetch hierarchy (a
   real i-cache or a degenerate one-line prefetch buffer), and the
   residency predicate that gates the first-miss refinement. The IPET
   formulation itself never looks inside: it only consumes the per-block
   [c_i] bounds these pieces produce. *)
module type MACHINE = sig
  val id : string
  (** Stable short name ("e32", "m7"): CLI value, serve-protocol field,
      and cache-key component — changing it invalidates cached bounds. *)

  val description : string

  val fetch : Icache.config
  (** Default instruction-fetch configuration. A direct-mapped i-cache
      for cached cores; a flash prefetch buffer is the degenerate case
      with exactly one line ([size_bytes = line_bytes]), which the
      shared {!Icache}/{!Cost} machinery models soundly unchanged. *)

  val issue : dcache:bool -> I.t -> int
  (** Full (non-overlapped) execution cycles of one instruction,
      excluding fetch misses and pipeline stalls. With [~dcache:true] a
      load costs only its pipeline base; the memory time is charged by
      the data-cache model (hit in the best case, miss in the worst). *)

  val term_bounds : I.terminator -> int * int
  (** (best, worst) cycles of a block terminator. *)

  val term_actual : I.terminator -> taken:bool -> int
  (** Cycles actually spent given the branch outcome; always within
      {!term_bounds}. *)

  val stall_after : I.t -> I.t -> int
  (** Deterministic stall suffered by the second instruction given the
      one just before it (load-use interlock and friends). *)

  val resident_ok : fetch:Icache.config -> lo:int -> hi:int -> bool
  (** May the first-miss refinement assume that code in the address
      range [lo, hi) stays fetch-resident across loop iterations under
      [fetch]? For a direct-mapped cache that is "the region fits in
      the cache"; for a one-line prefetch buffer only a single line
      ever survives. *)
end

type t = (module MACHINE)

(* --- e32: the i960KB-style core the repository grew up on ------------- *)

(* Delegates verbatim to {!Timing}/{!Pipeline}: the default machine must
   be byte-identical to the historical hard-wired model on every report,
   witness, golden table and certificate. *)
module E32 = struct
  let id = "e32"
  let description =
    "i960KB-style 4-stage RISC, 512 B direct-mapped i-cache"

  let fetch = Icache.i960kb

  let issue ~dcache instr =
    match instr with
    | I.Load _ when dcache -> Timing.load_base
    | _ -> Timing.issue instr

  let term_bounds = Timing.term_bounds
  let term_actual = Timing.term_actual
  let stall_after = Pipeline.stall_after

  (* the exact predicate the refinement used before machines existed:
     the loop's code fits in the cache, so after one full iteration
     every line it touches is resident *)
  let resident_ok ~fetch ~lo ~hi = hi - lo <= fetch.Icache.size_bytes
end

(* --- m7: an ARMv7-M-style core --------------------------------------- *)

(* Single-issue Cortex-M-flavoured pipeline: fast multiplier, early-out
   divider, a slower load-use interlock, cheap calls (no register-cache
   spill), and no i-cache — instructions come from wait-state flash
   behind a one-line prefetch buffer, modelled as the degenerate
   direct-mapped cache with a single 32 B line and the wait-state cost
   as its miss penalty (the shape platin uses for armv7m). *)
module M7 = struct
  let id = "m7"
  let description =
    "ARMv7-M-style core, wait-state flash behind a 32 B prefetch buffer"

  let fetch = { Icache.size_bytes = 32; line_bytes = 32; miss_penalty = 5 }

  let load_base = 1

  let issue ~dcache instr =
    match instr with
    | I.Alu ((I.Add | I.Sub | I.And | I.Or | I.Xor | I.Shl | I.Shr), _, _, _)
      -> 1
    | I.Alu (I.Mul, _, _, _) -> 1
    | I.Alu ((I.Div | I.Rem), _, _, _) -> 12
    | I.Fpu ((I.Fadd | I.Fsub), _, _, _) -> 2
    | I.Fpu (I.Fmul, _, _, _) -> 3
    | I.Fpu (I.Fdiv, _, _, _) -> 14
    | I.Icmp _ -> 1
    | I.Fcmp _ -> 2
    | I.Mov _ -> 1
    | I.Itof _ | I.Ftoi _ -> 2
    | I.Load _ -> if dcache then load_base else load_base + 1
    | I.Store _ -> 1
    | I.Call _ -> 4

  let term_bounds = function
    | I.Jump _ -> (2, 2)
    | I.Branch _ -> (1, 3) (* not taken 1, taken 3 (refill) *)
    | I.Return _ -> (4, 4)

  let term_actual term ~taken =
    match term with
    | I.Jump _ -> 2
    | I.Branch _ -> if taken then 3 else 1
    | I.Return _ -> 4

  let load_use_stall = 2

  let stall_after prev cur =
    match prev with
    | I.Load (dst, _) -> if List.mem dst (I.uses cur) then load_use_stall else 0
    | I.Alu _ | I.Fpu _ | I.Icmp _ | I.Fcmp _ | I.Mov _ | I.Itof _ | I.Ftoi _
    | I.Store _ | I.Call _ -> 0

  (* only one line survives in the prefetch buffer, so residency across
     iterations needs the whole region inside a single aligned line *)
  let resident_ok ~fetch ~lo ~hi =
    hi > lo
    && lo / fetch.Icache.line_bytes = (hi - 1) / fetch.Icache.line_bytes
end

let e32 : t = (module E32)
let m7 : t = (module M7)
let all = [ e32; m7 ]

let id (module M : MACHINE) = M.id
let description (module M : MACHINE) = M.description
let fetch (module M : MACHINE) = M.fetch

let of_string s =
  match List.find_opt (fun (module M : MACHINE) -> M.id = s) all with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown machine %S (expected %s)" s
         (String.concat " | " (List.map id all)))

(* --- machine-derived decode tables (simulator fast path) -------------- *)

let issue_table (module M : MACHINE) ?(dcache = false) instrs =
  Array.map (M.issue ~dcache) instrs

let stall_table (module M : MACHINE) instrs =
  let n = Array.length instrs in
  let t = Array.make n 0 in
  for i = 1 to n - 1 do
    t.(i) <- M.stall_after instrs.(i - 1) instrs.(i)
  done;
  t

let block_stalls (module M : MACHINE) instrs =
  let total = ref 0 in
  for i = 1 to Array.length instrs - 1 do
    total := !total + M.stall_after instrs.(i - 1) instrs.(i)
  done;
  !total
