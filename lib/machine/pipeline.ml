module I = Ipet_isa.Instr

let stall_after prev cur =
  match prev with
  | I.Load (dst, _) ->
    if List.mem dst (I.uses cur) then Timing.load_use_stall else 0
  | I.Alu _ | I.Fpu _ | I.Icmp _ | I.Fcmp _ | I.Mov _ | I.Itof _ | I.Ftoi _
  | I.Store _ | I.Call _ -> 0

let stall_table instrs =
  let n = Array.length instrs in
  let t = Array.make n 0 in
  for i = 1 to n - 1 do
    t.(i) <- stall_after instrs.(i - 1) instrs.(i)
  done;
  t

let block_stalls instrs =
  let total = ref 0 in
  for i = 1 to Array.length instrs - 1 do
    total := !total + stall_after instrs.(i - 1) instrs.(i)
  done;
  !total
