(** Machine models: everything the cost bounds, the analysis and the
    cycle simulator know about a target micro-architecture, behind one
    signature. The IPET formulation is target-agnostic — it consumes
    per-block [c_i] bounds — so a machine is exactly the producer of
    those bounds: issue timings, the deterministic stall model,
    terminator costs, the default fetch hierarchy, and the residency
    predicate used by the first-miss refinement.

    Two instances ship: {!e32}, the i960KB-style core this repository
    grew up on (delegating verbatim to {!Timing}/{!Pipeline}, so the
    default machine is byte-identical to the historical model), and
    {!m7}, an ARMv7-M-style core whose instruction fetch is wait-state
    flash behind a one-line prefetch buffer — the degenerate
    direct-mapped cache with [size_bytes = line_bytes], which the shared
    {!Icache}/{!Cost} machinery models soundly unchanged. *)

module type MACHINE = sig
  val id : string
  (** Stable short name ("e32", "m7"): CLI value, serve-protocol field,
      and serve cache-key component. *)

  val description : string

  val fetch : Icache.config
  (** Default instruction-fetch configuration (i-cache or one-line
      prefetch buffer). Overridable per run ([--cache-size] etc.). *)

  val issue : dcache:bool -> Ipet_isa.Instr.t -> int
  (** Non-overlapped execution cycles, excluding fetch misses and
      stalls. With [~dcache:true] loads cost only their pipeline base;
      memory time is charged by the data-cache model. *)

  val term_bounds : Ipet_isa.Instr.terminator -> int * int
  (** (best, worst) terminator cycles. *)

  val term_actual : Ipet_isa.Instr.terminator -> taken:bool -> int
  (** Actual terminator cycles given the branch outcome; within
      {!term_bounds}. *)

  val stall_after : Ipet_isa.Instr.t -> Ipet_isa.Instr.t -> int
  (** Deterministic stall of the second instruction given its
      predecessor. *)

  val resident_ok : fetch:Icache.config -> lo:int -> hi:int -> bool
  (** May the first-miss refinement assume code in [lo, hi) stays
      fetch-resident across loop iterations under [fetch]? *)
end

type t = (module MACHINE)

val e32 : t
val m7 : t

val all : t list
(** Every machine, in CLI/documentation order. *)

val id : t -> string
val description : t -> string
val fetch : t -> Icache.config

val of_string : string -> (t, string) result
(** Look a machine up by its {!id}; the error names the valid ids. *)

val issue_table : t -> ?dcache:bool -> Ipet_isa.Instr.t array -> int array
(** Per-instruction issue cycles of a block body, precomputable at
    decode time (generalizes {!Timing.issue_table}). *)

val stall_table : t -> Ipet_isa.Instr.t array -> int array
(** Per-instruction deterministic stalls (generalizes
    {!Pipeline.stall_table}). *)

val block_stalls : t -> Ipet_isa.Instr.t array -> int
(** Total deterministic stalls of a block body (generalizes
    {!Pipeline.block_stalls}). *)
