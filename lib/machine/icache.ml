type config = { size_bytes : int; line_bytes : int; miss_penalty : int }

let i960kb = { size_bytes = 512; line_bytes = 16; miss_penalty = 8 }

type t = {
  cfg : config;
  tags : int array;  (* -1 = invalid, otherwise the line tag *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create cfg =
  if cfg.line_bytes <= 0 || cfg.line_bytes land (cfg.line_bytes - 1) <> 0 then
    invalid_arg "Icache.create: line size must be a power of two";
  if cfg.size_bytes mod cfg.line_bytes <> 0 || cfg.size_bytes <= 0 then
    invalid_arg "Icache.create: capacity must be a positive multiple of the line size";
  { cfg;
    tags = Array.make (cfg.size_bytes / cfg.line_bytes) (-1);
    hit_count = 0;
    miss_count = 0 }

let config t = t.cfg

let slot_of cfg addr =
  let line = addr / cfg.line_bytes in
  let index = line mod (cfg.size_bytes / cfg.line_bytes) in
  (index, line)

let slot t addr =
  let line = addr / t.cfg.line_bytes in
  let index = line mod Array.length t.tags in
  (index, line)

let access_slot t ~index ~line =
  if t.tags.(index) = line then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.tags.(index) <- line;
    t.miss_count <- t.miss_count + 1;
    false
  end

let lookup t addr =
  let index, line = slot t addr in
  t.tags.(index) = line

let access t addr =
  let index, line = slot t addr in
  if t.tags.(index) = line then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.tags.(index) <- line;
    t.miss_count <- t.miss_count + 1;
    false
  end

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1)

let tag_array t = t.tags

let hits t = t.hit_count
let misses t = t.miss_count

let lines_spanned cfg ~addr ~size =
  if size <= 0 then 0
  else (addr + size - 1) / cfg.line_bytes - (addr / cfg.line_bytes) + 1
