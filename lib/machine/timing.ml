module I = Ipet_isa.Instr

(* loads on the uncached path pay [load_base + flat_memory_latency];
   with a data cache the latency term is replaced by hit/miss timing *)
let load_base = 2
let flat_memory_latency = 1

let issue = function
  | I.Alu ((I.Add | I.Sub | I.And | I.Or | I.Xor | I.Shl | I.Shr), _, _, _) -> 1
  | I.Alu (I.Mul, _, _, _) -> 4
  | I.Alu ((I.Div | I.Rem), _, _, _) -> 18
  | I.Fpu ((I.Fadd | I.Fsub), _, _, _) -> 4
  | I.Fpu (I.Fmul, _, _, _) -> 6
  | I.Fpu (I.Fdiv, _, _, _) -> 20
  | I.Icmp _ -> 1
  | I.Fcmp _ -> 3
  | I.Mov _ -> 1
  | I.Itof _ | I.Ftoi _ -> 3
  | I.Load _ -> load_base + flat_memory_latency
  | I.Store _ -> 2
  | I.Call _ -> 8

let term_bounds = function
  | I.Jump _ -> (2, 2)
  | I.Branch _ -> (1, 3)  (* not taken 1, taken 3 (refill) *)
  | I.Return _ -> (7, 7)

let term_actual term ~taken =
  match term with
  | I.Jump _ -> 2
  | I.Branch _ -> if taken then 3 else 1
  | I.Return _ -> 7

let load_use_stall = 1

(* with a data cache a load's memory time is charged separately once the
   effective address is known, so its issue cost drops to the base *)
let issue_table ?(dcache = false) instrs =
  Array.map
    (fun i ->
      match i with
      | I.Load _ when dcache -> load_base
      | _ -> issue i)
    instrs
