module P = Ipet_isa.Prog
module I = Ipet_isa.Instr

(* --- constant folding / copy propagation (per block) --------------------- *)

(* abstract register contents: a known immediate, a copy of another
   register, or unknown *)
type fact = Const of I.operand | Copy of I.reg

(* every result is normalized to 32-bit two's complement
   ([Ipet_isa.Value.wrap32]), including the overflowing division
   [min_int32 / -1] (wraps to [min_int32]; [min_int32 rem -1] is [0]) —
   must mirror the interpreter's Ipet_sim ALU exactly or folding changes
   semantics *)
let fold_alu op a b =
  let w = Ipet_isa.Value.wrap32 in
  match op with
  | I.Add -> Some (w (a + b))
  | I.Sub -> Some (w (a - b))
  | I.Mul -> Some (w (a * b))
  | I.Div -> if b = 0 then None else Some (w (a / b))
  | I.Rem -> if b = 0 then None else Some (w (a mod b))
  | I.And -> Some (w (a land b))
  | I.Or -> Some (w (a lor b))
  | I.Xor -> Some (w (a lxor b))
  (* 6-bit shift-amount mask with a clamp at 63 *)
  | I.Shl -> Some (let s = b land 63 in w (if s > 62 then 0 else a lsl s))
  | I.Shr -> Some (let s = b land 63 in w (a asr (if s > 62 then 62 else s)))

let fold_icmp op a b =
  let r = match op with
    | I.Ceq -> a = b | I.Cne -> a <> b
    | I.Clt -> a < b | I.Cle -> a <= b | I.Cgt -> a > b | I.Cge -> a >= b
  in
  if r then 1 else 0

let fold_constants (func : P.func) =
  let blocks =
    Array.map
      (fun (block : P.block) ->
        let facts : (I.reg, fact) Hashtbl.t = Hashtbl.create 16 in
        let kill d = Hashtbl.remove facts d in
        (* forget any copy facts that mention a redefined register *)
        let kill_copies_of d =
          let stale =
            Hashtbl.fold
              (fun r f acc -> match f with Copy s when s = d -> r :: acc | Copy _ | Const _ -> acc)
              facts []
          in
          List.iter (Hashtbl.remove facts) stale
        in
        let define d fact =
          kill d;
          kill_copies_of d;
          (match fact with Some f -> Hashtbl.replace facts d f | None -> ())
        in
        let rec resolve op =
          match op with
          | I.Imm _ | I.Fimm _ -> op
          | I.Reg r ->
            (match Hashtbl.find_opt facts r with
             | Some (Const c) -> c
             | Some (Copy s) -> resolve (I.Reg s)
             | None -> op)
        in
        let resolve_addr (a : I.addr) =
          { a with I.index = Option.map resolve a.I.index }
        in
        let rewrite instr =
          match instr with
          | I.Alu (op, d, a, b) ->
            let a = resolve a and b = resolve b in
            (match (a, b) with
             | I.Imm ia, I.Imm ib ->
               (match fold_alu op ia ib with
                | Some v ->
                  define d (Some (Const (I.Imm v)));
                  I.Mov (d, I.Imm v)
                | None ->
                  define d None;
                  I.Alu (op, d, a, b))
             | (I.Imm _ | I.Fimm _ | I.Reg _), (I.Imm _ | I.Fimm _ | I.Reg _) ->
               define d None;
               I.Alu (op, d, a, b))
          | I.Icmp (op, d, a, b) ->
            let a = resolve a and b = resolve b in
            (match (a, b) with
             | I.Imm ia, I.Imm ib ->
               let v = fold_icmp op ia ib in
               define d (Some (Const (I.Imm v)));
               I.Mov (d, I.Imm v)
             | (I.Imm _ | I.Fimm _ | I.Reg _), (I.Imm _ | I.Fimm _ | I.Reg _) ->
               define d None;
               I.Icmp (op, d, a, b))
          | I.Fpu (op, d, a, b) ->
            let a = resolve a and b = resolve b in
            define d None;
            I.Fpu (op, d, a, b)
          | I.Fcmp (op, d, a, b) ->
            let a = resolve a and b = resolve b in
            define d None;
            I.Fcmp (op, d, a, b)
          | I.Mov (d, a) ->
            let a = resolve a in
            (match a with
             | I.Imm _ | I.Fimm _ -> define d (Some (Const a))
             | I.Reg s -> if s <> d then define d (Some (Copy s)) else define d None);
            I.Mov (d, a)
          | I.Itof (d, a) ->
            let a = resolve a in
            (match a with
             | I.Imm i ->
               let c = I.Fimm (float_of_int i) in
               define d (Some (Const c));
               I.Mov (d, c)
             | I.Fimm _ | I.Reg _ ->
               define d None;
               I.Itof (d, a))
          | I.Ftoi (d, a) ->
            let a = resolve a in
            define d None;
            I.Ftoi (d, a)
          | I.Load (d, addr) ->
            let addr = resolve_addr addr in
            define d None;
            I.Load (d, addr)
          | I.Store (v, addr) -> I.Store (resolve v, resolve_addr addr)
          | I.Call (d, callee, args) ->
            let args = List.map resolve args in
            Option.iter (fun d -> define d None) d;
            I.Call (d, callee, args)
        in
        let instrs = Array.map rewrite block.P.instrs in
        let term =
          match block.P.term with
          | I.Branch (r, if_true, if_false) ->
            (match resolve (I.Reg r) with
             | I.Imm 0 -> I.Jump if_false
             | I.Imm _ -> I.Jump if_true
             | I.Fimm _ | I.Reg _ -> block.P.term)
          | I.Jump _ | I.Return _ as t ->
            (match t with
             | I.Return (Some op) -> I.Return (Some (resolve op))
             | I.Return None | I.Jump _ | I.Branch _ -> t)
        in
        { block with P.instrs; P.term })
      func.P.blocks
  in
  { func with P.blocks = blocks }

(* --- dead code elimination ------------------------------------------------ *)

let has_side_effect = function
  | I.Store _ | I.Call _ -> true
  | I.Alu _ | I.Fpu _ | I.Icmp _ | I.Fcmp _ | I.Mov _ | I.Itof _ | I.Ftoi _
  | I.Load _ -> false

let eliminate_dead_code (func : P.func) =
  let liveness = Ipet_cfg.Liveness.compute func in
  let blocks =
    Array.map
      (fun (block : P.block) ->
        let live_before = Ipet_cfg.Liveness.live_sets_through_block liveness block in
        let n = Array.length block.P.instrs in
        let keep = ref [] in
        for i = n - 1 downto 0 do
          let instr = block.P.instrs.(i) in
          let needed =
            has_side_effect instr
            || List.exists
              (fun d -> List.mem d live_before.(i + 1))
              (I.defs instr)
          in
          (* a removed instruction makes live_before stale for earlier
             indices only in ways that can delay removal to the next
             fixpoint round, never cause a wrong removal *)
          if needed then keep := instr :: !keep
        done;
        { block with P.instrs = Array.of_list !keep })
      func.P.blocks
  in
  { func with P.blocks = blocks }

(* --- unreachable block pruning -------------------------------------------- *)

let prune_unreachable (func : P.func) =
  let cfg = Ipet_cfg.Cfg.of_func func in
  let reachable = Ipet_cfg.Cfg.reachable cfg in
  if Array.for_all Fun.id reachable then func
  else begin
    let remap = Array.make (Array.length func.P.blocks) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun b r -> if r then begin remap.(b) <- !next; incr next end)
      reachable;
    let blocks =
      Array.to_list func.P.blocks
      |> List.filter (fun (b : P.block) -> reachable.(b.P.id))
      |> List.map (fun (b : P.block) ->
        let term =
          match b.P.term with
          | I.Jump t -> I.Jump remap.(t)
          | I.Branch (r, t, f) -> I.Branch (r, remap.(t), remap.(f))
          | I.Return _ as t -> t
        in
        { b with P.id = remap.(b.P.id); P.term })
      |> Array.of_list
    in
    { func with P.blocks = blocks }
  end

(* --- straight-line block merging ------------------------------------------- *)

(* merge [b -> jmp t] with [t] when t's only predecessor is b (and t is not
   the entry, whose id must stay 0) *)
let merge_blocks (func : P.func) =
  let blocks = Array.map (fun b -> b) func.P.blocks in
  let n = Array.length blocks in
  if n <= 1 then func
  else begin
    let alive = Array.make n true in
    let pred_count = Array.make n 0 in
    let count_preds () =
      Array.fill pred_count 0 n 0;
      Array.iteri
        (fun b (blk : P.block) ->
          if alive.(b) then
            match blk.P.term with
            | I.Jump t -> pred_count.(t) <- pred_count.(t) + 1
            | I.Branch (_, t, f) ->
              pred_count.(t) <- pred_count.(t) + 1;
              if f <> t then pred_count.(f) <- pred_count.(f) + 1
            | I.Return _ -> ())
        blocks
    in
    let changed = ref true in
    while !changed do
      changed := false;
      count_preds ();
      for b = 0 to n - 1 do
        if alive.(b) then
          match blocks.(b).P.term with
          | I.Jump t when t <> 0 && t <> b && alive.(t) && pred_count.(t) = 1 ->
            blocks.(b) <-
              { (blocks.(b)) with
                P.instrs = Array.append blocks.(b).P.instrs blocks.(t).P.instrs;
                P.term = blocks.(t).P.term };
            alive.(t) <- false;
            changed := true
          | I.Jump _ | I.Branch _ | I.Return _ -> ()
      done
    done;
    (* dead blocks are unreachable now; pruning renumbers *)
    { func with P.blocks = blocks }
  end

(* --- fixpoint driver -------------------------------------------------------- *)

let measure (func : P.func) =
  Array.fold_left
    (fun acc (b : P.block) -> acc + Array.length b.P.instrs + 1)
    (Array.length func.P.blocks)
    func.P.blocks

let func f =
  let rec iterate f budget =
    let f' =
      prune_unreachable (merge_blocks (eliminate_dead_code (fold_constants f)))
    in
    if budget = 0 || measure f' = measure f then f' else iterate f' (budget - 1)
  in
  iterate f 8

let program (prog : P.t) = { prog with P.funcs = Array.map func prog.P.funcs }
