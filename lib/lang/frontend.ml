module P = Ipet_isa.Prog
module Obs = Ipet_obs.Obs

type error = { message : string; line : int }

let parse_and_check src =
  let ast = Obs.span "frontend.parse" (fun () -> Parser.parse src) in
  Obs.span "frontend.typecheck" (fun () -> Typecheck.check ast)

let compile_string ?(optimize = false) ?registers src =
  try
    let checked = parse_and_check src in
    let compiled =
      Obs.span "frontend.compile" (fun () -> Compile.compile checked)
    in
    let prog = compiled.Compile.prog in
    let prog =
      if optimize then Obs.span "frontend.optimize" (fun () -> Optimize.program prog)
      else prog
    in
    let prog =
      match registers with
      | Some nregs ->
        Obs.span "frontend.regalloc" (fun () -> Regalloc.program ~nregs prog)
      | None -> prog
    in
    Ok { compiled with Compile.prog }
  with
  | Lexer.Error (message, line) -> Error { message = "lex error: " ^ message; line }
  | Parser.Error (message, line) -> Error { message = "parse error: " ^ message; line }
  | Typecheck.Error (message, line) -> Error { message = "type error: " ^ message; line }
  | Compile.Error (message, line) -> Error { message = "compile error: " ^ message; line }

let compile_string_exn ?optimize ?registers src =
  match compile_string ?optimize ?registers src with
  | Ok compiled -> compiled
  | Error { message; line } ->
    failwith (Printf.sprintf "line %d: %s" line message)

let blocks_at_line (func : P.func) line =
  Array.to_list func.P.blocks
  |> List.filter_map (fun (b : P.block) ->
    if b.P.src_line = line then Some b.P.id else None)

let block_at_line func line =
  match blocks_at_line func line with b :: _ -> Some b | [] -> None
