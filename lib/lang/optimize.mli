(** Local E32 optimizations: constant folding, copy propagation,
    branch simplification and dead-code elimination.

    The passes change the instruction stream (and hence the timing and the
    CFG shape), so they run {e before} the IPET analysis — the analysis must
    see exactly the code that executes, just like the paper insists on
    analyzing the assembly after compiler optimization (Section II). *)

val func : Ipet_isa.Prog.func -> Ipet_isa.Prog.func
(** Optimize one function to a fixpoint of the passes. *)

val program : Ipet_isa.Prog.t -> Ipet_isa.Prog.t

(** Individual passes, exposed for testing. *)

val fold_constants : Ipet_isa.Prog.func -> Ipet_isa.Prog.func
(** Forward, per-block: propagate known constants and register copies into
    operands, fold constant ALU/compare/select operations into moves, and
    turn branches on known conditions into jumps. *)

val eliminate_dead_code : Ipet_isa.Prog.func -> Ipet_isa.Prog.func
(** Remove side-effect-free instructions whose results are never used
    (stores and calls are always kept). *)

val prune_unreachable : Ipet_isa.Prog.func -> Ipet_isa.Prog.func
(** Drop blocks unreachable from the entry and renumber. *)

val fold_alu : Ipet_isa.Instr.alu_op -> int -> int -> int option
(** Compile-time evaluation of one integer ALU operation, [None] when the
    operation must be kept (division or modulo by zero). Kept in lockstep
    with the simulator's [Ipet_sim.Interp.alu]: 32-bit wrapping results,
    6-bit shift-amount masking with the 63 clamp, wrapping
    [min_int32 / -1]; the differential test in [test_optimize.ml] enforces
    the equivalence. *)
