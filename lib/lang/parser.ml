open Ast

exception Error of string * int

type state = { toks : Lexer.located array; mutable pos : int }

let peek st = st.toks.(st.pos).Lexer.tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.tok
  else Lexer.EOF
let line st = st.toks.(st.pos).Lexer.line
let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'" (Lexer.token_name tok)
         (Lexer.token_name (peek st)))

let accept st tok = if peek st = tok then (advance st; true) else false

let parse_type st =
  match peek st with
  | Lexer.KW_INT -> advance st; Tint
  | Lexer.KW_FLOAT -> advance st; Tfloat
  | Lexer.KW_VOID -> advance st; Tvoid
  | t -> fail st (Printf.sprintf "expected a type, found '%s'" (Lexer.token_name t))

let is_type_token = function
  | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_VOID -> true
  | _ -> false

let parse_ident st =
  match peek st with
  | Lexer.IDENT name -> advance st; name
  | t -> fail st (Printf.sprintf "expected an identifier, found '%s'" (Lexer.token_name t))

(* binary operator precedence: higher binds tighter *)
let binop_of_token = function
  | Lexer.BARBAR -> Some (Lor, 1)
  | Lexer.AMPAMP -> Some (Land, 2)
  | Lexer.BAR -> Some (Bor, 3)
  | Lexer.CARET -> Some (Bxor, 4)
  | Lexer.AMP -> Some (Band, 5)
  | Lexer.EQ -> Some (Eq, 6)
  | Lexer.NE -> Some (Ne, 6)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      let ln = line st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop { desc = Binop (op, lhs, rhs); eline = ln }
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let ln = line st in
  match peek st with
  | Lexer.MINUS ->
    advance st;
    (* fold minus into an integer literal so [-2147483648] is the literal
       min_int32 (wrapping again: the lexer wraps 2147483648 to min_int32,
       whose negation overflows back to itself) and negative literals
       round-trip through render/parse unchanged *)
    (match parse_unary st with
     | { desc = Int_lit i; _ } ->
       { desc = Int_lit (Ipet_isa.Value.wrap32 (-i)); eline = ln }
     | operand -> { desc = Unop (Neg, operand); eline = ln })
  | Lexer.BANG ->
    advance st;
    { desc = Unop (Lnot, parse_unary st); eline = ln }
  | Lexer.LPAREN when is_type_token (peek2 st) ->
    advance st;
    let typ = parse_type st in
    expect st Lexer.RPAREN;
    { desc = Cast (typ, parse_unary st); eline = ln }
  | _ -> parse_postfix st

and parse_postfix st =
  let ln = line st in
  match peek st with
  | Lexer.INT_LIT i -> advance st; { desc = Int_lit i; eline = ln }
  | Lexer.FLOAT_LIT f -> advance st; { desc = Float_lit f; eline = ln }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
     | Lexer.LPAREN ->
       advance st;
       let args =
         if peek st = Lexer.RPAREN then []
         else begin
           let rec more acc =
             let acc = parse_expr st :: acc in
             if accept st Lexer.COMMA then more acc else List.rev acc
           in
           more []
         end
       in
       expect st Lexer.RPAREN;
       { desc = Call (name, args); eline = ln }
     | Lexer.LBRACKET ->
       advance st;
       let idx = parse_expr st in
       expect st Lexer.RBRACKET;
       { desc = Index (name, idx); eline = ln }
     | _ -> { desc = Var name; eline = ln })
  | t -> fail st (Printf.sprintf "expected an expression, found '%s'" (Lexer.token_name t))

(* a "simple" statement usable as for-init / for-step: assignment or expr *)
let parse_simple st =
  let ln = line st in
  let e = parse_expr st in
  if peek st = Lexer.ASSIGN then begin
    let lv = match e.desc with
      | Var name -> Lvar name
      | Index (name, idx) -> Lindex (name, idx)
      | Int_lit _ | Float_lit _ | Unop _ | Binop _ | Call _ | Cast _ ->
        fail st "left-hand side of '=' is not assignable"
    in
    advance st;
    let rhs = parse_expr st in
    { sdesc = Assign (lv, rhs); sline = ln }
  end
  else { sdesc = Expr_stmt e; sline = ln }

let rec parse_stmt st =
  let ln = line st in
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    let stmts = parse_stmts_until st Lexer.RBRACE in
    expect st Lexer.RBRACE;
    { sdesc = Block stmts; sline = ln }
  | Lexer.KW_INT | Lexer.KW_FLOAT ->
    let typ = parse_type st in
    let name = parse_ident st in
    if accept st Lexer.LBRACKET then begin
      let size =
        match peek st with
        | Lexer.INT_LIT i -> advance st; i
        | _ -> fail st "array size must be an integer literal"
      in
      expect st Lexer.RBRACKET;
      expect st Lexer.SEMI;
      { sdesc = Decl_array (typ, name, size); sline = ln }
    end
    else begin
      let init = if accept st Lexer.ASSIGN then Some (parse_expr st) else None in
      expect st Lexer.SEMI;
      { sdesc = Decl (typ, name, init); sline = ln }
    end
  | Lexer.KW_VOID -> fail st "void is only valid as a return type"
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_branch = parse_branch st in
    let else_branch =
      if accept st Lexer.KW_ELSE then parse_branch st else []
    in
    { sdesc = If (cond, then_branch, else_branch); sline = ln }
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    { sdesc = While (cond, parse_branch st); sline = ln }
  | Lexer.KW_DO ->
    advance st;
    let body = parse_branch st in
    expect st Lexer.KW_WHILE;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    { sdesc = Do_while (body, cond); sline = ln }
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init = if peek st = Lexer.SEMI then None else Some (parse_simple st) in
    expect st Lexer.SEMI;
    let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    let step = if peek st = Lexer.RPAREN then None else Some (parse_simple st) in
    expect st Lexer.RPAREN;
    { sdesc = For (init, cond, step, parse_branch st); sline = ln }
  | Lexer.KW_RETURN ->
    advance st;
    let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    { sdesc = Return e; sline = ln }
  | Lexer.KW_BREAK ->
    advance st; expect st Lexer.SEMI;
    { sdesc = Break; sline = ln }
  | Lexer.KW_CONTINUE ->
    advance st; expect st Lexer.SEMI;
    { sdesc = Continue; sline = ln }
  | Lexer.IDENT _ | Lexer.INT_LIT _ | Lexer.FLOAT_LIT _ | Lexer.LPAREN
  | Lexer.MINUS | Lexer.BANG ->
    let s = parse_simple st in
    expect st Lexer.SEMI;
    s
  | t -> fail st (Printf.sprintf "expected a statement, found '%s'" (Lexer.token_name t))

(* body of if/while/for: either a braced block or a single statement *)
and parse_branch st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let stmts = parse_stmts_until st Lexer.RBRACE in
    expect st Lexer.RBRACE;
    stmts
  end
  else [ parse_stmt st ]

and parse_stmts_until st stop =
  let rec go acc =
    if peek st = stop || peek st = Lexer.EOF then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

let parse_const st =
  let negative = accept st Lexer.MINUS in
  match peek st with
  (* negating a wrapped literal can overflow 32 bits again (-(-2^31)) *)
  | Lexer.INT_LIT i ->
    advance st;
    Cint (if negative then Ipet_isa.Value.wrap32 (-i) else i)
  | Lexer.FLOAT_LIT f -> advance st; Cfloat (if negative then -.f else f)
  | _ -> fail st "expected a numeric constant"

let parse_initializer st =
  if accept st Lexer.LBRACE then begin
    let rec more acc =
      let acc = parse_const st :: acc in
      if accept st Lexer.COMMA then
        (* tolerate a trailing comma before '}' *)
        if peek st = Lexer.RBRACE then List.rev acc else more acc
      else List.rev acc
    in
    let consts = more [] in
    expect st Lexer.RBRACE;
    consts
  end
  else [ parse_const st ]

let parse_toplevel st program_globals program_funcs =
  let ln = line st in
  let typ = parse_type st in
  let name = parse_ident st in
  if peek st = Lexer.LPAREN then begin
    advance st;
    let params =
      if peek st = Lexer.RPAREN then []
      else begin
        let rec more acc =
          let ptyp = parse_type st in
          let pname = parse_ident st in
          let acc = (ptyp, pname) :: acc in
          if accept st Lexer.COMMA then more acc else List.rev acc
        in
        more []
      end
    in
    expect st Lexer.RPAREN;
    expect st Lexer.LBRACE;
    let body = parse_stmts_until st Lexer.RBRACE in
    expect st Lexer.RBRACE;
    program_funcs := { ret = typ; fname = name; params; body; fline = ln } :: !program_funcs
  end
  else begin
    let size =
      if accept st Lexer.LBRACKET then begin
        match peek st with
        | Lexer.INT_LIT i ->
          advance st;
          expect st Lexer.RBRACKET;
          Some i
        | _ -> fail st "array size must be an integer literal"
      end
      else None
    in
    let init = if accept st Lexer.ASSIGN then Some (parse_initializer st) else None in
    expect st Lexer.SEMI;
    program_globals :=
      { gtyp = typ; gname = name; gsize = size; ginit = init; gline = ln }
      :: !program_globals
  end

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let globals = ref [] and funcs = ref [] in
  while peek st <> Lexer.EOF do
    parse_toplevel st globals funcs
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }

let parse_expr_string src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
