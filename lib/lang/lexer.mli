(** Hand-written lexer for MC source text. *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_FLOAT | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | BANG
  | AMP | BAR | CARET | SHL | SHR
  | EOF

type located = { tok : token; line : int }

exception Error of string * int  (** message, line *)

val tokenize : string -> located list
(** Tokenize a whole compilation unit. Line numbers are 1-based. Supports
    [//] and [/* */] comments, decimal and hexadecimal integers, and
    decimal float literals. An integer literal may spell any 32-bit
    pattern (up to [0xFFFFFFFF] / [4294967295]) and is stored as its
    two's-complement value, so [0xFFFFFFFF] lexes as [-1]; wider literals
    are rejected with a positioned error rather than crashing or
    truncating silently.
    @raise Error on an illegal character, a malformed literal, or an
    integer literal outside the 32-bit range. *)

val token_name : token -> string
