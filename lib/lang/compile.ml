module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module V = Ipet_isa.Value

exception Error of string * int

type t = { prog : P.t; init_data : (int * V.t) list }

let err line fmt = Format.kasprintf (fun s -> raise (Error (s, line))) fmt

(* --- global segment layout --------------------------------------------- *)

type gslot = { gaddr : int; gsize : int }

let layout_globals (globals : Ast.global list) =
  let table = Hashtbl.create 16 in
  let init = ref [] in
  let cursor = ref 0 in
  let plist = ref [] in
  List.iter
    (fun (g : Ast.global) ->
      let size = match g.Ast.gsize with Some n -> n | None -> 1 in
      Hashtbl.replace table g.Ast.gname { gaddr = !cursor; gsize = size };
      plist := { P.gname = g.Ast.gname; P.addr = !cursor; P.size_words = size } :: !plist;
      let default =
        match g.Ast.gtyp with
        | Ast.Tfloat -> V.Vfloat 0.0
        | Ast.Tint | Ast.Tvoid -> V.Vint 0
      in
      let const_value c =
        match (g.Ast.gtyp, c) with
        | Ast.Tfloat, Ast.Cint i -> V.Vfloat (float_of_int i)
        | Ast.Tfloat, Ast.Cfloat f -> V.Vfloat f
        | _, Ast.Cint i -> V.Vint i
        | _, Ast.Cfloat f -> V.Vint (V.wrap32 (int_of_float f))
      in
      let provided = match g.Ast.ginit with Some l -> l | None -> [] in
      for k = 0 to size - 1 do
        let v =
          match List.nth_opt provided k with
          | Some c -> const_value c
          | None -> default
        in
        init := (!cursor + k, v) :: !init
      done;
      cursor := !cursor + size)
    globals;
  (table, List.rev !plist, List.rev !init, !cursor)

(* --- per-function builder ---------------------------------------------- *)

type builder = {
  mutable binstrs : I.t list;  (* reversed *)
  mutable bterm : I.terminator option;
  mutable bline : int;
}

type slot =
  | Reg_slot of I.reg
  | Global_scalar of int               (* word address *)
  | Global_array of int
  | Frame_array of int                 (* frame offset *)

type fstate = {
  fname : string;
  tenv : Typecheck.env;
  gslots : (string, gslot) Hashtbl.t;
  blocks : (int, builder) Hashtbl.t;
  mutable nblocks : int;
  mutable current : int;
  mutable next_reg : int;
  mutable frame_words : int;
  slots : (string, slot) Hashtbl.t;
}

let new_block st line =
  let id = st.nblocks in
  st.nblocks <- id + 1;
  Hashtbl.replace st.blocks id { binstrs = []; bterm = None; bline = line };
  id

let builder st id = Hashtbl.find st.blocks id

let set_current st id = st.current <- id

let current_terminated st = (builder st st.current).bterm <> None

let emit ?(line = 0) st instr =
  let b = builder st st.current in
  match b.bterm with
  | Some _ -> ()  (* unreachable code after return/break: drop *)
  | None ->
    if b.bline = 0 && line > 0 then b.bline <- line;
    b.binstrs <- instr :: b.binstrs

let terminate ?(line = 0) st term =
  let b = builder st st.current in
  if b.bterm = None then begin
    if b.bline = 0 && line > 0 then b.bline <- line;
    b.bterm <- Some term
  end

let fresh_reg st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let reg_of st (op : I.operand) =
  match op with
  | I.Reg r -> r
  | I.Imm _ | I.Fimm _ ->
    let r = fresh_reg st in
    emit st (I.Mov (r, op));
    r

let expr_type st (e : Ast.expr) = Typecheck.expr_type st.tenv ~func:st.fname e

let var_slot st line name =
  match Hashtbl.find_opt st.slots name with
  | Some s -> s
  | None ->
    (* a global not yet touched by this function *)
    (match Hashtbl.find_opt st.gslots name with
     | Some { gaddr; gsize } ->
       let info = Typecheck.lookup_var st.tenv ~func:st.fname name in
       let s =
         match info with
         | Some { Typecheck.array_size = Some _; _ } -> Global_array gaddr
         | Some { Typecheck.array_size = None; _ } ->
           ignore gsize;
           Global_scalar gaddr
         | None -> err line "compile: unbound %s" name
       in
       Hashtbl.replace st.slots name s;
       s
     | None -> err line "compile: unbound %s" name)

let array_addr st line name (index : I.operand) =
  match var_slot st line name with
  | Global_array addr -> { I.base = I.Abs addr; offset = 0; index = Some index }
  | Frame_array off -> { I.base = I.Frame_base; offset = off; index = Some index }
  | Global_scalar _ | Reg_slot _ -> err line "compile: %s is not an array" name

let cmp_of_binop = function
  | Ast.Lt -> I.Clt | Ast.Le -> I.Cle | Ast.Gt -> I.Cgt | Ast.Ge -> I.Cge
  | Ast.Eq -> I.Ceq | Ast.Ne -> I.Cne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Land | Ast.Lor
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    invalid_arg "cmp_of_binop"

let alu_of_binop = function
  | Ast.Add -> I.Add | Ast.Sub -> I.Sub | Ast.Mul -> I.Mul | Ast.Div -> I.Div
  | Ast.Mod -> I.Rem | Ast.Band -> I.And | Ast.Bor -> I.Or | Ast.Bxor -> I.Xor
  | Ast.Shl -> I.Shl | Ast.Shr -> I.Shr
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor ->
    invalid_arg "alu_of_binop"

let fpu_of_binop = function
  | Ast.Add -> I.Fadd | Ast.Sub -> I.Fsub | Ast.Mul -> I.Fmul | Ast.Div -> I.Fdiv
  | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Lt
  | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor ->
    invalid_arg "fpu_of_binop"

let rec compile_expr st (e : Ast.expr) : I.operand =
  let line = e.Ast.eline in
  match e.Ast.desc with
  | Ast.Int_lit i -> I.Imm i
  | Ast.Float_lit f -> I.Fimm f
  | Ast.Var name ->
    (match var_slot st line name with
     | Reg_slot r -> I.Reg r
     | Global_scalar addr ->
       let r = fresh_reg st in
       emit ~line st (I.Load (r, { I.base = I.Abs addr; offset = 0; index = None }));
       I.Reg r
     | Global_array _ | Frame_array _ -> err line "%s is an array" name)
  | Ast.Index (name, idx) ->
    let index = compile_expr st idx in
    let r = fresh_reg st in
    emit ~line st (I.Load (r, array_addr st line name index));
    I.Reg r
  | Ast.Unop (Ast.Neg, a) ->
    let op = compile_expr st a in
    let r = fresh_reg st in
    (match expr_type st a with
     | Ast.Tfloat -> emit ~line st (I.Fpu (I.Fsub, r, I.Fimm 0.0, op))
     | Ast.Tint | Ast.Tvoid -> emit ~line st (I.Alu (I.Sub, r, I.Imm 0, op)));
    I.Reg r
  | Ast.Unop (Ast.Lnot, a) ->
    let op = compile_expr st a in
    let r = fresh_reg st in
    emit ~line st (I.Icmp (I.Ceq, r, op, I.Imm 0));
    I.Reg r
  | Ast.Binop ((Ast.Land | Ast.Lor), _, _) ->
    (* materialize a short-circuit boolean through control flow *)
    let r = fresh_reg st in
    let true_b = new_block st line in
    let false_b = new_block st line in
    let join = new_block st line in
    compile_cond st e ~if_true:true_b ~if_false:false_b;
    set_current st true_b;
    emit ~line st (I.Mov (r, I.Imm 1));
    terminate st (I.Jump join);
    set_current st false_b;
    emit ~line st (I.Mov (r, I.Imm 0));
    terminate st (I.Jump join);
    set_current st join;
    I.Reg r
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, a, b) ->
    let oa = compile_expr st a in
    let ob = compile_expr st b in
    let r = fresh_reg st in
    (match expr_type st a with
     | Ast.Tfloat -> emit ~line st (I.Fcmp (cmp_of_binop op, r, oa, ob))
     | Ast.Tint | Ast.Tvoid -> emit ~line st (I.Icmp (cmp_of_binop op, r, oa, ob)));
    I.Reg r
  | Ast.Binop (op, a, b) ->
    let oa = compile_expr st a in
    let ob = compile_expr st b in
    let r = fresh_reg st in
    (match expr_type st e with
     | Ast.Tfloat -> emit ~line st (I.Fpu (fpu_of_binop op, r, oa, ob))
     | Ast.Tint | Ast.Tvoid -> emit ~line st (I.Alu (alu_of_binop op, r, oa, ob)));
    I.Reg r
  | Ast.Call (name, args) ->
    let arg_ops = List.map (compile_expr st) args in
    (match Typecheck.func_signature st.tenv name with
     | Some (_, Ast.Tvoid) -> err line "void call %s used as a value" name
     | Some (_, (Ast.Tint | Ast.Tfloat)) | None ->
       let r = fresh_reg st in
       emit ~line st (I.Call (Some r, name, arg_ops));
       I.Reg r)
  | Ast.Cast (to_t, a) ->
    let op = compile_expr st a in
    let from_t = expr_type st a in
    if from_t = to_t then op
    else begin
      let r = fresh_reg st in
      (match (from_t, to_t) with
       | Ast.Tint, Ast.Tfloat -> emit ~line st (I.Itof (r, op))
       | Ast.Tfloat, Ast.Tint -> emit ~line st (I.Ftoi (r, op))
       | (Ast.Tvoid, _ | _, Ast.Tvoid | Ast.Tint, Ast.Tint | Ast.Tfloat, Ast.Tfloat) ->
         err line "unsupported cast");
      I.Reg r
    end

(* compile a condition into branches, short-circuiting && and || *)
and compile_cond st (e : Ast.expr) ~if_true ~if_false =
  match e.Ast.desc with
  | Ast.Unop (Ast.Lnot, a) -> compile_cond st a ~if_true:if_false ~if_false:if_true
  | Ast.Binop (Ast.Land, a, b) ->
    let mid = new_block st b.Ast.eline in
    compile_cond st a ~if_true:mid ~if_false;
    set_current st mid;
    compile_cond st b ~if_true ~if_false
  | Ast.Binop (Ast.Lor, a, b) ->
    let mid = new_block st b.Ast.eline in
    compile_cond st a ~if_true ~if_false:mid;
    set_current st mid;
    compile_cond st b ~if_true ~if_false
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ | Ast.Index _ | Ast.Unop _
  | Ast.Binop _ | Ast.Call _ | Ast.Cast _ ->
    let op = compile_expr st e in
    let r = reg_of st op in
    terminate st (I.Branch (r, if_true, if_false))

type loop_ctx = { break_to : int; continue_to : int }

let rec compile_stmt st ~loop (s : Ast.stmt) =
  let line = s.Ast.sline in
  match s.Ast.sdesc with
  | Ast.Decl (_, name, init) ->
    let r = fresh_reg st in
    Hashtbl.replace st.slots name (Reg_slot r);
    (match init with
     | Some e ->
       let op = compile_expr st e in
       emit ~line st (I.Mov (r, op))
     | None -> ())
  | Ast.Decl_array (_, name, size) ->
    Hashtbl.replace st.slots name (Frame_array st.frame_words);
    st.frame_words <- st.frame_words + size
  | Ast.Assign (Ast.Lvar name, e) ->
    (match var_slot st line name with
     | Reg_slot r ->
       let op = compile_expr st e in
       emit ~line st (I.Mov (r, op))
     | Global_scalar addr ->
       let op = compile_expr st e in
       emit ~line st (I.Store (op, { I.base = I.Abs addr; offset = 0; index = None }))
     | Global_array _ | Frame_array _ -> err line "cannot assign to array %s" name)
  | Ast.Assign (Ast.Lindex (name, idx), e) ->
    let index = compile_expr st idx in
    let op = compile_expr st e in
    emit ~line st (I.Store (op, array_addr st line name index))
  | Ast.Expr_stmt e ->
    (match e.Ast.desc with
     | Ast.Call (name, args) ->
       let arg_ops = List.map (compile_expr st) args in
       (match Typecheck.func_signature st.tenv name with
        | Some (_, Ast.Tvoid) -> emit ~line st (I.Call (None, name, arg_ops))
        | Some (_, (Ast.Tint | Ast.Tfloat)) ->
          let r = fresh_reg st in
          emit ~line st (I.Call (Some r, name, arg_ops))
        | None -> err line "call to undefined function %s" name)
     | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ | Ast.Index _ | Ast.Unop _
     | Ast.Binop _ | Ast.Cast _ -> ignore (compile_expr st e))
  | Ast.If (cond, then_b, else_b) ->
    let then_blk = new_block st (match then_b with s :: _ -> s.Ast.sline | [] -> line) in
    let join = new_block st 0 in
    let else_blk =
      match else_b with
      | [] -> join
      | s :: _ -> new_block st s.Ast.sline
    in
    compile_cond st cond ~if_true:then_blk ~if_false:else_blk;
    set_current st then_blk;
    List.iter (compile_stmt st ~loop) then_b;
    if not (current_terminated st) then terminate st (I.Jump join);
    if else_b <> [] then begin
      set_current st else_blk;
      List.iter (compile_stmt st ~loop) else_b;
      if not (current_terminated st) then terminate st (I.Jump join)
    end;
    set_current st join
  | Ast.While (cond, body) ->
    let header = new_block st cond.Ast.eline in
    let body_blk = new_block st (match body with s :: _ -> s.Ast.sline | [] -> line) in
    let exit_blk = new_block st 0 in
    terminate st (I.Jump header);
    set_current st header;
    compile_cond st cond ~if_true:body_blk ~if_false:exit_blk;
    set_current st body_blk;
    let ctx = Some { break_to = exit_blk; continue_to = header } in
    List.iter (compile_stmt st ~loop:ctx) body;
    if not (current_terminated st) then terminate st (I.Jump header);
    set_current st exit_blk
  | Ast.Do_while (body, cond) ->
    (* header = body top: the back edge returns above the body, the
       condition is evaluated at the bottom (continue jumps to it) *)
    let body_blk = new_block st (match body with s :: _ -> s.Ast.sline | [] -> line) in
    let cond_blk = new_block st cond.Ast.eline in
    let exit_blk = new_block st 0 in
    terminate st (I.Jump body_blk);
    set_current st body_blk;
    let ctx = Some { break_to = exit_blk; continue_to = cond_blk } in
    List.iter (compile_stmt st ~loop:ctx) body;
    if not (current_terminated st) then terminate st (I.Jump cond_blk);
    set_current st cond_blk;
    compile_cond st cond ~if_true:body_blk ~if_false:exit_blk;
    set_current st exit_blk
  | Ast.For (init, cond, step, body) ->
    Option.iter (compile_stmt st ~loop) init;
    let header =
      new_block st
        (match cond with Some c -> c.Ast.eline | None -> line)
    in
    let body_blk = new_block st (match body with s :: _ -> s.Ast.sline | [] -> line) in
    let step_blk = new_block st (match step with Some s -> s.Ast.sline | None -> 0) in
    let exit_blk = new_block st 0 in
    terminate st (I.Jump header);
    set_current st header;
    (match cond with
     | Some c -> compile_cond st c ~if_true:body_blk ~if_false:exit_blk
     | None -> terminate st (I.Jump body_blk));
    set_current st body_blk;
    let ctx = Some { break_to = exit_blk; continue_to = step_blk } in
    List.iter (compile_stmt st ~loop:ctx) body;
    if not (current_terminated st) then terminate st (I.Jump step_blk);
    set_current st step_blk;
    Option.iter (compile_stmt st ~loop) step;
    if not (current_terminated st) then terminate st (I.Jump header);
    set_current st exit_blk
  | Ast.Return None -> terminate ~line st (I.Return None)
  | Ast.Return (Some e) ->
    let op = compile_expr st e in
    terminate ~line st (I.Return (Some op))
  | Ast.Break ->
    (match loop with
     | Some ctx -> terminate st (I.Jump ctx.break_to)
     | None -> err line "break outside of a loop")
  | Ast.Continue ->
    (match loop with
     | Some ctx -> terminate st (I.Jump ctx.continue_to)
     | None -> err line "continue outside of a loop")
  | Ast.Block stmts -> List.iter (compile_stmt st ~loop) stmts

(* drop unreachable blocks and renumber the rest in discovery order *)
let prune_and_freeze st ~ret_void =
  (* ensure every block is terminated (fall-off-the-end returns) *)
  for id = 0 to st.nblocks - 1 do
    let b = builder st id in
    if b.bterm = None then
      b.bterm <- Some (I.Return (if ret_void then None else Some (I.Imm 0)))
  done;
  let remap = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs id =
    if not (Hashtbl.mem remap id) then begin
      Hashtbl.replace remap id (Hashtbl.length remap);
      order := id :: !order;
      match (builder st id).bterm with
      | Some (I.Jump t) -> dfs t
      | Some (I.Branch (_, t, f)) -> dfs t; dfs f
      | Some (I.Return _) | None -> ()
    end
  in
  dfs 0;
  let ordered = List.rev !order in
  let lookup id = Hashtbl.find remap id in
  List.map
    (fun old_id ->
      let b = builder st old_id in
      let term =
        match b.bterm with
        | Some (I.Jump t) -> I.Jump (lookup t)
        | Some (I.Branch (r, t, f)) -> I.Branch (r, lookup t, lookup f)
        | Some (I.Return _ as t) -> t
        | None -> assert false
      in
      { P.id = lookup old_id;
        P.instrs = Array.of_list (List.rev b.binstrs);
        P.term = term;
        P.src_line = b.bline })
    ordered
  |> Array.of_list

let compile_func tenv gslots (f : Ast.func) =
  let st =
    { fname = f.Ast.fname;
      tenv;
      gslots;
      blocks = Hashtbl.create 32;
      nblocks = 0;
      current = 0;
      next_reg = List.length f.Ast.params;
      frame_words = 0;
      slots = Hashtbl.create 16 }
  in
  let entry = new_block st f.Ast.fline in
  set_current st entry;
  List.iteri
    (fun i (_, name) -> Hashtbl.replace st.slots name (Reg_slot i))
    f.Ast.params;
  List.iter (compile_stmt st ~loop:None) f.Ast.body;
  let blocks = prune_and_freeze st ~ret_void:(f.Ast.ret = Ast.Tvoid) in
  { P.name = f.Ast.fname;
    P.nparams = List.length f.Ast.params;
    P.frame_words = st.frame_words;
    P.blocks = blocks }

let compile ((program, tenv) : Ast.program * Typecheck.env) =
  let gslots, globals, init_data, globals_words = layout_globals program.Ast.globals in
  let funcs =
    Array.of_list (List.map (compile_func tenv gslots) program.Ast.funcs)
  in
  let prog = { P.funcs; P.globals; P.globals_words } in
  (match P.validate prog with
   | Ok () -> ()
   | Error msg -> err 0 "internal: generated invalid program: %s" msg);
  { prog; init_data }
