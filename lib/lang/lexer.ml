type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_FLOAT | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | BANG
  | AMP | BAR | CARET | SHL | SHR
  | EOF

type located = { tok : token; line : int }

exception Error of string * int

let keywords =
  [ ("int", KW_INT); ("float", KW_FLOAT); ("void", KW_VOID); ("if", KW_IF);
    ("else", KW_ELSE); ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE) ]

let is_digit c = c >= '0' && c <= '9'

(* MC integers are E32 words: a literal may spell any 32-bit pattern —
   up to 0xFFFFFFFF / 4294967295 — and is stored as its two's-complement
   value ([Value.wrap32]), so 0xFFFFFFFF reads back as -1 like a C
   [(int)0xFFFFFFFFu]. Anything wider (including literals too long for
   [int_of_string], which used to escape as an uncaught [Failure]) is a
   positioned diagnostic. *)
let int_literal text line =
  match int_of_string_opt text with
  | Some v when v >= 0 && v <= 0xFFFF_FFFF -> Ipet_isa.Value.wrap32 v
  | Some _ | None ->
    raise (Error (Printf.sprintf "integer literal %s out of 32-bit range" text, line))
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let peek i = if i < n then Some src.[i] else None in
  let rec go i =
    if i >= n then ()
    else begin
      match src.[i] with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when peek (i + 1) = Some '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '/' when peek (i + 1) = Some '*' ->
        let rec skip j =
          if j + 1 >= n then raise (Error ("unterminated comment", !line))
          else if src.[j] = '\n' then begin incr line; skip (j + 1) end
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else skip (j + 1)
        in
        go (skip (i + 2))
      | '0' when peek (i + 1) = Some 'x' || peek (i + 1) = Some 'X' ->
        let rec scan j = if j < n && is_hex src.[j] then scan (j + 1) else j in
        let stop = scan (i + 2) in
        if stop = i + 2 then raise (Error ("malformed hex literal", !line));
        emit (INT_LIT (int_literal (String.sub src i (stop - i)) !line));
        go stop
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let int_end = scan i in
        let is_float =
          int_end < n && src.[int_end] = '.'
          && int_end + 1 < n && is_digit src.[int_end + 1]
        in
        if is_float then begin
          let frac_end = scan (int_end + 1) in
          (* optional exponent *)
          let stop =
            if frac_end < n && (src.[frac_end] = 'e' || src.[frac_end] = 'E') then begin
              let j = frac_end + 1 in
              let j = if j < n && (src.[j] = '+' || src.[j] = '-') then j + 1 else j in
              let stop = scan j in
              if stop = j then raise (Error ("malformed exponent", !line));
              stop
            end
            else frac_end
          in
          emit (FLOAT_LIT (float_of_string (String.sub src i (stop - i))));
          go stop
        end
        else begin
          emit (INT_LIT (int_literal (String.sub src i (int_end - i)) !line));
          go int_end
        end
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let stop = scan i in
        let word = String.sub src i (stop - i) in
        (match List.assoc_opt word keywords with
         | Some kw -> emit kw
         | None -> emit (IDENT word));
        go stop
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '^' -> emit CARET; go (i + 1)
      | '<' when peek (i + 1) = Some '=' -> emit LE; go (i + 2)
      | '<' when peek (i + 1) = Some '<' -> emit SHL; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when peek (i + 1) = Some '=' -> emit GE; go (i + 2)
      | '>' when peek (i + 1) = Some '>' -> emit SHR; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '=' when peek (i + 1) = Some '=' -> emit EQ; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '!' when peek (i + 1) = Some '=' -> emit NE; go (i + 2)
      | '!' -> emit BANG; go (i + 1)
      | '&' when peek (i + 1) = Some '&' -> emit AMPAMP; go (i + 2)
      | '&' -> emit AMP; go (i + 1)
      | '|' when peek (i + 1) = Some '|' -> emit BARBAR; go (i + 2)
      | '|' -> emit BAR; go (i + 1)
      | c -> raise (Error (Printf.sprintf "illegal character %C" c, !line))
    end
  in
  go 0;
  emit EOF;
  List.rev !out

let token_name = function
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int" | KW_FLOAT -> "float" | KW_VOID -> "void"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> ","
  | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EQ -> "==" | NE -> "!=" | AMPAMP -> "&&" | BARBAR -> "||" | BANG -> "!"
  | AMP -> "&" | BAR -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"
