module Ast = Ipet_lang.Ast

(* MC source emission with two properties the oracle depends on:
   - every expression is fully parenthesized, so the reparsed AST has
     exactly the generated structure regardless of precedence;
   - every statement sits on its own line, so each loop header owns a
     distinct source line and the line-keyed Autobound annotations can
     never conflate two loops. *)

let typ = Ast.typ_name

let unop = function Ast.Neg -> "-" | Ast.Lnot -> "!"

let binop = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.Eq -> "==" | Ast.Ne -> "!="
  | Ast.Land -> "&&" | Ast.Lor -> "||"
  | Ast.Band -> "&" | Ast.Bor -> "|" | Ast.Bxor -> "^"
  | Ast.Shl -> "<<" | Ast.Shr -> ">>"

let float_lit f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ ".0"

let rec expr (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit n ->
    (* negative literals reparse as unary minus over the magnitude; for
       min_int32 the magnitude 2147483648 wraps back through the lexer
       and negation to min_int32 again, so the value round-trips *)
    if n < 0 then Printf.sprintf "(-%d)" (-n) else string_of_int n
  | Ast.Float_lit f -> float_lit f
  | Ast.Var v -> v
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" a (expr i)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" (unop op) (expr a)
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop op) (expr b)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Ast.Cast (t, a) -> Printf.sprintf "((%s) %s)" (typ t) (expr a)

let const = function
  | Ast.Cint n -> if n < 0 then Printf.sprintf "-%d" (-n) else string_of_int n
  | Ast.Cfloat f -> float_lit f

let lvalue = function
  | Ast.Lvar v -> v
  | Ast.Lindex (a, i) -> Printf.sprintf "%s[%s]" a (expr i)

let line buf indent s =
  Buffer.add_string buf (String.make (2 * indent) ' ');
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let rec stmt buf indent (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (t, v, init) ->
    let rhs = match init with None -> "" | Some e -> " = " ^ expr e in
    line buf indent (Printf.sprintf "%s %s%s;" (typ t) v rhs)
  | Ast.Decl_array (t, v, n) ->
    line buf indent (Printf.sprintf "%s %s[%d];" (typ t) v n)
  | Ast.Assign (lv, e) ->
    line buf indent (Printf.sprintf "%s = %s;" (lvalue lv) (expr e))
  | Ast.Expr_stmt e -> line buf indent (expr e ^ ";")
  | Ast.If (c, then_b, else_b) ->
    line buf indent (Printf.sprintf "if (%s) {" (expr c));
    List.iter (stmt buf (indent + 1)) then_b;
    if else_b <> [] then begin
      line buf indent "} else {";
      List.iter (stmt buf (indent + 1)) else_b
    end;
    line buf indent "}"
  | Ast.While (c, body) ->
    line buf indent (Printf.sprintf "while (%s) {" (expr c));
    List.iter (stmt buf (indent + 1)) body;
    line buf indent "}"
  | Ast.Do_while (body, c) ->
    line buf indent "do {";
    List.iter (stmt buf (indent + 1)) body;
    line buf indent (Printf.sprintf "} while (%s);" (expr c))
  | Ast.For (init, cond, step, body) ->
    let simple (st : Ast.stmt option) =
      match st with
      | None -> ""
      | Some { Ast.sdesc = Ast.Assign (lv, e); _ } ->
        Printf.sprintf "%s = %s" (lvalue lv) (expr e)
      | Some { Ast.sdesc = Ast.Expr_stmt e; _ } -> expr e
      | Some _ -> invalid_arg "Render: non-simple for-loop init/step"
    in
    line buf indent
      (Printf.sprintf "for (%s; %s; %s) {" (simple init)
         (match cond with None -> "" | Some c -> expr c)
         (simple step));
    List.iter (stmt buf (indent + 1)) body;
    line buf indent "}"
  | Ast.Return None -> line buf indent "return;"
  | Ast.Return (Some e) -> line buf indent (Printf.sprintf "return %s;" (expr e))
  | Ast.Break -> line buf indent "break;"
  | Ast.Continue -> line buf indent "continue;"
  | Ast.Block body ->
    line buf indent "{";
    List.iter (stmt buf (indent + 1)) body;
    line buf indent "}"

let global buf (g : Ast.global) =
  let dims = match g.Ast.gsize with None -> "" | Some n -> Printf.sprintf "[%d]" n in
  let init =
    match g.Ast.ginit with
    | None -> ""
    | Some [ c ] when g.Ast.gsize = None -> " = " ^ const c
    | Some cs ->
      " = { " ^ String.concat ", " (List.map const cs) ^ " }"
  in
  line buf 0 (Printf.sprintf "%s %s%s%s;" (typ g.Ast.gtyp) g.Ast.gname dims init)

let func buf (f : Ast.func) =
  let params =
    String.concat ", "
      (List.map (fun (t, v) -> Printf.sprintf "%s %s" (typ t) v) f.Ast.params)
  in
  line buf 0 (Printf.sprintf "%s %s(%s) {" (typ f.Ast.ret) f.Ast.fname params);
  List.iter (stmt buf 1) f.Ast.body;
  line buf 0 "}"

let program (p : Ast.program) =
  let buf = Buffer.create 1024 in
  List.iter (global buf) p.Ast.globals;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      func buf f)
    p.Ast.funcs;
  Buffer.contents buf
