(** MC source text from an AST.

    Fully parenthesized (the reparsed program has exactly the rendered
    structure) and one statement per line (each loop header owns its source
    line, as the line-keyed loop-bound annotations require). Feeding the
    render through the real lexer and parser keeps the whole frontend
    inside the fuzzing loop. *)

val expr : Ipet_lang.Ast.expr -> string

val program : Ipet_lang.Ast.program -> string
(** @raise Invalid_argument on for-loop init/step forms the concrete syntax
    cannot express (the generator never produces them). *)
