module Lang = Ipet_lang
module Isa = Ipet_isa
module P = Isa.Prog
module I = Isa.Instr
module V = Isa.Value
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine
module Interp = Ipet_sim.Interp
module Analysis = Ipet.Analysis
module Annotation = Ipet.Annotation
module Autobound = Ipet.Autobound
module Structural = Ipet.Structural
module Flowvar = Ipet.Flowvar
module Lp = Ipet_lp.Lp_problem
module Rat = Ipet_num.Rat

type failure_kind =
  | Frontend_reject
  | Analysis_reject
  | Sim_crash
  | Bound_violation
  | Constraint_violation
  | Optimizer_divergence
  | Presolve_divergence
  | Certificate_reject
  | Unexpected_exception

let kind_name = function
  | Frontend_reject -> "frontend-reject"
  | Analysis_reject -> "analysis-reject"
  | Sim_crash -> "sim-crash"
  | Bound_violation -> "bound-violation"
  | Constraint_violation -> "constraint-violation"
  | Optimizer_divergence -> "optimizer-divergence"
  | Presolve_divergence -> "presolve-divergence"
  | Certificate_reject -> "certificate-reject"
  | Unexpected_exception -> "unexpected-exception"

type failure = { kind : failure_kind; detail : string }

type stats = { bcet : int; wcet : int; cycles : int; instructions : int }

type verdict = Pass of stats | Fail of failure

exception Reject of failure

let fail kind fmt = Printf.ksprintf (fun detail -> raise (Reject { kind; detail })) fmt

(* --- frontend ------------------------------------------------------------ *)

let parse source =
  try Lang.Frontend.parse_and_check source with
  | Lang.Lexer.Error (m, l) -> fail Frontend_reject "lexer: line %d: %s" l m
  | Lang.Parser.Error (m, l) -> fail Frontend_reject "parser: line %d: %s" l m
  | Lang.Typecheck.Error (m, l) -> fail Frontend_reject "typecheck: line %d: %s" l m

let compile ~optimize source =
  match Lang.Frontend.compile_string ~optimize source with
  | Ok c -> c
  | Error { Lang.Frontend.message; line } ->
    fail Frontend_reject "compile: line %d: %s" line message

(* --- measured execution counts as an ILP assignment ---------------------- *)

(* every flow variable of every instance, valued from the simulator's
   context-qualified counters; names match Structural/Annotation exactly
   because both go through [Flowvar.name] *)
let measured_counts machine instances =
  let paths : (Flowvar.ctx, Interp.site list) Hashtbl.t = Hashtbl.create 16 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let add fv n = Hashtbl.replace counts (Flowvar.name fv) n in
  List.iter
    (fun (inst : Structural.instance) ->
      let ctx = inst.Structural.ctx in
      let func = inst.Structural.func in
      let fname = func.P.name in
      let path =
        match Hashtbl.find_opt paths ctx with
        | Some p -> p
        | None -> []  (* instances are root-first; the root's path is empty *)
      in
      List.iter
        (fun (site, _callee, callee_ctx) ->
          Hashtbl.replace paths callee_ctx
            (path @ [ (fname, site.Ipet.Callsite.block, site.Ipet.Callsite.occurrence) ]))
        inst.Structural.sites;
      add
        (Flowvar.Entry { ctx; func = fname })
        (Interp.ctx_entry_count machine ~path ~func:fname);
      Array.iter
        (fun (b : P.block) ->
          let bcount =
            Interp.ctx_block_count machine ~path ~func:fname ~block:b.P.id
          in
          add (Flowvar.Block { ctx; func = fname; block = b.P.id }) bcount;
          let edge dst =
            add
              (Flowvar.Edge { ctx; func = fname; src = b.P.id; dst })
              (Interp.ctx_edge_count machine ~path ~func:fname ~src:b.P.id ~dst)
          in
          (match b.P.term with
           | I.Jump t -> edge t
           | I.Branch (_, t1, t2) ->
             edge t1;
             if t2 <> t1 then edge t2
           | I.Return _ ->
             (* a return-terminated block always leaves by its exit edge *)
             add (Flowvar.Exit { ctx; func = fname; block = b.P.id }) bcount);
          List.iteri
            (fun occurrence _callee ->
              add
                (Flowvar.Fedge { ctx; func = fname; block = b.P.id; occurrence })
                (Interp.ctx_call_count machine ~path ~caller:fname ~block:b.P.id
                   ~occurrence))
            (P.calls_of_block b))
        func.P.blocks)
    instances;
  fun name ->
    match Hashtbl.find_opt counts name with
    | Some n -> Rat.of_int n
    | None -> Rat.zero

(* --- observable state comparison ----------------------------------------- *)

let compare_observables ~(prog : P.t) m_ref m_opt ret_ref ret_opt =
  let pp_ret = function
    | None -> "void"
    | Some v -> Format.asprintf "%a" V.pp v
  in
  if not (Option.equal V.equal ret_ref ret_opt) then
    fail Optimizer_divergence "return value: unoptimized %s, optimized %s"
      (pp_ret ret_ref) (pp_ret ret_opt);
  List.iter
    (fun (g : P.global) ->
      for i = 0 to g.P.size_words - 1 do
        let a = Interp.read_global m_ref g.P.gname i in
        let b = Interp.read_global m_opt g.P.gname i in
        if not (V.equal a b) then
          fail Optimizer_divergence "global %s[%d]: unoptimized %a, optimized %a"
            g.P.gname i
            (fun () v -> Format.asprintf "%a" V.pp v) a
            (fun () v -> Format.asprintf "%a" V.pp v) b
      done)
    prog.P.globals

(* --- the oracle ---------------------------------------------------------- *)

let run mach cache source =
  let ast, _env = parse source in
  let compiled = compile ~optimize:false source in
  let bounds = Autobound.infer ast in
  let spec =
    Analysis.spec ~mach ~cache ~loop_bounds:bounds ~root:"main"
      compiled.Lang.Compile.prog
  in
  (* the certifying run: every bound comes with an exact duality
     certificate, validated by the trusted checker — a reject here means
     the solver produced a value it cannot prove *)
  let result =
    try Analysis.analyze ~certify:true spec with
    | Analysis.Analysis_error m -> fail Analysis_reject "%s" m
    | Invalid_argument m -> fail Analysis_reject "%s" m
    | Annotation.Bad_annotation m -> fail Analysis_reject "annotation: %s" m
  in
  let bcet, wcet =
    (result.Analysis.bcet.Analysis.cycles, result.Analysis.wcet.Analysis.cycles)
  in
  let check_cert what (c : Analysis.certificate option) =
    match c with
    | None -> fail Certificate_reject "%s: no certificate was produced" what
    | Some c ->
      (match c.Analysis.verdict with
       | Ipet_cert.Checker.Valid _ -> ()
       | Ipet_cert.Checker.Invalid reasons ->
         fail Certificate_reject "%s certificate rejected: %s" what
           (String.concat "; " reasons))
  in
  check_cert "wcet" result.Analysis.wcet_cert;
  check_cert "bcet" result.Analysis.bcet_cert;
  (* presolve is required to be semantics-preserving: same bound either way *)
  let bcet_np, wcet_np =
    Analysis.estimated_bound { spec with Analysis.presolve = false }
  in
  if (bcet_np, wcet_np) <> (bcet, wcet) then
    fail Presolve_divergence
      "presolve on: [%d, %d]; presolve off: [%d, %d]" bcet wcet bcet_np wcet_np;
  (* measured run: fresh machine, cold cache — the configuration the WCET
     analysis models *)
  let machine =
    Interp.create ~mach ~cache compiled.Lang.Compile.prog
      ~init:compiled.Lang.Compile.init_data
  in
  let ret =
    try Interp.call machine "main" [] with
    | Interp.Runtime_error m -> fail Sim_crash "runtime error: %s" m
    | Interp.Out_of_fuel -> fail Sim_crash "out of fuel"
  in
  let cycles = Interp.cycles machine in
  if cycles < bcet || cycles > wcet then
    fail Bound_violation "simulated %d cycles outside estimated bound [%d, %d]"
      cycles bcet wcet;
  (* the measured block/edge counts must satisfy every constraint the ILP
     was built from — structural flow equations and loop bounds alike *)
  let instances = Analysis.instances spec in
  let lookup = measured_counts machine instances in
  let check_constr (c : Lp.constr) =
    if not (Lp.satisfies lookup c) then
      fail Constraint_violation "measured counts violate %s: %s" c.Lp.origin
        (Format.asprintf "%a" Lp.pp_constr c)
  in
  List.iter check_constr (Analysis.structural_constraints spec);
  let loop_constrs, _unbounded =
    Annotation.constraints compiled.Lang.Compile.prog instances bounds
  in
  List.iter check_constr loop_constrs;
  (* the optimizer must preserve observable behaviour: same return value,
     same final global memory *)
  let opt = compile ~optimize:true source in
  let machine_opt =
    Interp.create ~mach ~cache opt.Lang.Compile.prog
      ~init:opt.Lang.Compile.init_data
  in
  let ret_opt =
    try Interp.call machine_opt "main" [] with
    | Interp.Runtime_error m -> fail Optimizer_divergence "optimized run: %s" m
    | Interp.Out_of_fuel -> fail Optimizer_divergence "optimized run: out of fuel"
  in
  compare_observables ~prog:compiled.Lang.Compile.prog machine machine_opt ret
    ret_opt;
  Pass { bcet; wcet; cycles; instructions = Interp.instructions machine }

let check ?(mach = Machine.e32) ?cache source =
  let cache = match cache with Some c -> c | None -> Machine.fetch mach in
  match run mach cache source with
  | verdict -> verdict
  | exception Reject f -> Fail f
  | exception e ->
    Fail
      { kind = Unexpected_exception;
        detail = Printexc.to_string e }
