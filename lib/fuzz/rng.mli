(** Deterministic splitmix64 random source.

    Used instead of [Stdlib.Random] because the stdlib generator differs
    between OCaml 4.x and 5.x: a fuzz seed must replay the exact same
    program on every compiler of the CI matrix. *)

type t

val create : int -> t
(** A generator whose whole stream is a pure function of the seed. *)

val next64 : t -> int64

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [0, bound). @raise Invalid_argument
    when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is in [lo, hi], both inclusive. *)

val bool : t -> bool

val chance : t -> num:int -> den:int -> bool
(** True with probability [num/den]. *)

val choose : t -> 'a array -> 'a

val weighted : t -> (int * 'a) list -> 'a
(** Pick a value with probability proportional to its weight. *)
