(** Greedy program shrinking for fuzz failures.

    Repeatedly tries single edits — dropping a global, a helper function or
    a statement, replacing a conditional or loop with its body, reducing a
    loop bound, zeroing a right-hand side — and keeps an edit whenever the
    edited program still fails the same way. The measure (node count, then
    literal magnitude) strictly decreases on every accepted edit, so the
    process terminates; [max_attempts] additionally caps the number of
    oracle runs. *)

val prog_size : Ipet_lang.Ast.program -> int
(** AST node count — the primary component of the shrinking measure. *)

val minimize :
  ?max_attempts:int ->
  check:(Ipet_lang.Ast.program -> bool) ->
  Ipet_lang.Ast.program ->
  Ipet_lang.Ast.program
(** [minimize ~check p] where [check q] decides whether [q] reproduces the
    original failure (same {!Oracle.failure_kind}). [max_attempts] defaults
    to 2000 [check] calls. *)
