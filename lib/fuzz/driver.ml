module Ast = Ipet_lang.Ast
module Pool = Ipet_par.Pool

type failure_report = {
  case_seed : int;
  failure : Oracle.failure;
  mach : Ipet_machine.Machine.t;
  cache : Ipet_machine.Icache.config;
  source : string;
  shrunk_source : string option;
  shrink_attempts : int;
}

type outcome = {
  iters_run : int;
  passed : int;
  worst_wcet : int;    (** largest estimated WCET seen, a cheap progress signal *)
  report : failure_report option;  (** [None] when every case passed *)
}

let null_log _ = ()

let check_case ~mach (case : Gen.case) =
  Oracle.check ~mach ~cache:case.Gen.cache (Render.program case.Gen.prog)

let shrink_case ~mach ~(case : Gen.case) ~(failure : Oracle.failure)
    ~max_attempts =
  let attempts = ref 0 in
  let same_failure prog =
    incr attempts;
    match Oracle.check ~mach ~cache:case.Gen.cache (Render.program prog) with
    | Oracle.Fail f -> f.Oracle.kind = failure.Oracle.kind
    | Oracle.Pass _ -> false
  in
  let small = Shrink.minimize ~max_attempts ~check:same_failure case.Gen.prog in
  (Render.program small, !attempts)

let replay_hint seed = Printf.sprintf "replay: cinderella fuzz --seed %d --iters 1" seed

let run ?(log = null_log) ?(shrink = true) ?(shrink_attempts = 2000) ?pool
    ?(mach = Ipet_machine.Machine.e32) ~seed ~iters () =
  let pool =
    match pool with Some p -> p | None -> Ipet_par.Pool.default ()
  in
  (* Seeds are sharded across the pool. The smallest failing index seen so
     far is published so workers holding larger seeds can stop early —
     exactly the cases the sequential loop would never have run. The skip
     is conservative: an index below the final minimum always evaluates,
     because published failures only ever exceed it. *)
  let min_fail = Atomic.make max_int in
  let eval i =
    if i > Atomic.get min_fail then None
    else begin
      let case = Gen.case (seed + i) in
      let r = check_case ~mach case in
      (match r with
       | Oracle.Fail _ ->
         let rec publish () =
           let cur = Atomic.get min_fail in
           if i < cur && not (Atomic.compare_and_set min_fail cur i) then
             publish ()
         in
         publish ()
       | Oracle.Pass _ -> ());
      Some (case, r)
    end
  in
  let results = Pool.map_array pool eval (Array.init iters (fun i -> i)) in
  (* Fold in seed order: outcome, log stream and the shrink run are those
     of the sequential loop whatever the job count. *)
  let passed = ref 0 in
  let worst_wcet = ref 0 in
  let rec fold i =
    if i >= iters then
      { iters_run = iters; passed = !passed; worst_wcet = !worst_wcet;
        report = None }
    else
      match results.(i) with
      | None ->
        (* skipped ⇒ a smaller index failed ⇒ the fold returned before
           reaching this one *)
        assert false
      | Some (_, Oracle.Pass stats) ->
        incr passed;
        if stats.Oracle.wcet > !worst_wcet then worst_wcet := stats.Oracle.wcet;
        if (i + 1) mod 50 = 0 then
          log (Printf.sprintf "%d/%d cases passed" (i + 1) iters);
        fold (i + 1)
      | Some (case, Oracle.Fail failure) ->
        let case_seed = seed + i in
        log
          (Printf.sprintf "seed %d: %s: %s" case_seed
             (Oracle.kind_name failure.Oracle.kind) failure.Oracle.detail);
        let shrunk_source, attempts =
          if shrink then begin
            log "shrinking...";
            let src, n =
              shrink_case ~mach ~case ~failure ~max_attempts:shrink_attempts
            in
            (Some src, n)
          end
          else (None, 0)
        in
        { iters_run = i + 1;
          passed = !passed;
          worst_wcet = !worst_wcet;
          report =
            Some
              { case_seed;
                failure;
                mach;
                cache = case.Gen.cache;
                source = Render.program case.Gen.prog;
                shrunk_source;
                shrink_attempts = attempts } }
  in
  fold 0

let pp_report ppf (r : failure_report) =
  let cache = r.cache in
  Format.fprintf ppf "@[<v>seed %d failed: %s@,%s@,%s@,mach: %s@,cache: %dB, %dB lines, %d-cycle miss@,@,--- program ---@,%s"
    r.case_seed
    (Oracle.kind_name r.failure.Oracle.kind)
    r.failure.Oracle.detail
    (replay_hint r.case_seed)
    (Ipet_machine.Machine.id r.mach)
    cache.Ipet_machine.Icache.size_bytes cache.Ipet_machine.Icache.line_bytes
    cache.Ipet_machine.Icache.miss_penalty r.source;
  (match r.shrunk_source with
   | Some s ->
     Format.fprintf ppf "@,--- shrunk (%d oracle runs) ---@,%s" r.shrink_attempts s
   | None -> ());
  Format.fprintf ppf "@]"
