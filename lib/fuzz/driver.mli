(** The fuzzing loop: generate, check, and on failure shrink and report.

    Case [i] of a run uses seed [base_seed + i], so any failing case
    replays in isolation with [--seed <case_seed> --iters 1]. *)

type failure_report = {
  case_seed : int;          (** the exact seed that regenerates this case *)
  failure : Oracle.failure;
  mach : Ipet_machine.Machine.t;  (** the machine model the run targeted *)
  cache : Ipet_machine.Icache.config;
  source : string;          (** the failing program, rendered *)
  shrunk_source : string option;
  shrink_attempts : int;    (** oracle runs the shrinker spent *)
}

type outcome = {
  iters_run : int;
  passed : int;
  worst_wcet : int;
  report : failure_report option;  (** [None] when every case passed *)
}

val run :
  ?log:(string -> unit) ->
  ?shrink:bool ->
  ?shrink_attempts:int ->
  ?pool:Ipet_par.Pool.t ->
  ?mach:Ipet_machine.Machine.t ->
  seed:int ->
  iters:int ->
  unit ->
  outcome
(** Run [iters] cases starting at [seed]; stop at the first failure
    (shrinking it when [shrink], default true). [log] receives progress
    lines. [pool] (default {!Ipet_par.Pool.default}) shards the seeds
    across domains; the outcome — including which seed is reported when
    several fail, the pass/worst-WCET tallies, and the log stream — is
    that of the sequential loop at any job count. [mach] (default
    {!Ipet_machine.Machine.e32}) is the machine model every case —
    including the shrink runs — is checked against; the generated cache
    geometry still varies per case. *)

val replay_hint : int -> string
(** The command line that replays one case. *)

val pp_report : Format.formatter -> failure_report -> unit
