module Ast = Ipet_lang.Ast

(* Greedy first-improvement shrinking over whole-program edits. Progress is
   measured lexicographically by (AST node count, sum of literal
   magnitudes); every candidate strictly decreases the measure, so the loop
   terminates, and a candidate is adopted only when [check] says it still
   fails the same way. *)

(* --- measure ------------------------------------------------------------- *)

let rec expr_size (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> 1
  | Ast.Index (_, i) -> 1 + expr_size i
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> 1 + expr_size a
  | Ast.Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Ast.Call (_, args) -> 1 + List.fold_left (fun n a -> n + expr_size a) 0 args

let rec stmt_size (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (_, _, None) | Ast.Decl_array _ | Ast.Break | Ast.Continue
  | Ast.Return None -> 1
  | Ast.Decl (_, _, Some e) | Ast.Assign (Ast.Lvar _, e) | Ast.Expr_stmt e
  | Ast.Return (Some e) -> 1 + expr_size e
  | Ast.Assign (Ast.Lindex (_, i), e) -> 1 + expr_size i + expr_size e
  | Ast.If (c, t, e) -> 1 + expr_size c + body_size t + body_size e
  | Ast.While (c, b) | Ast.Do_while (b, c) -> 1 + expr_size c + body_size b
  | Ast.For (init, cond, step, b) ->
    1
    + (match init with None -> 0 | Some s -> stmt_size s)
    + (match cond with None -> 0 | Some e -> expr_size e)
    + (match step with None -> 0 | Some s -> stmt_size s)
    + body_size b
  | Ast.Block b -> 1 + body_size b

and body_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b

let prog_size (p : Ast.program) =
  List.length p.Ast.globals
  + List.fold_left (fun n (f : Ast.func) -> n + 1 + body_size f.Ast.body) 0
      p.Ast.funcs

let rec expr_lits (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit n -> abs n
  | Ast.Float_lit _ | Ast.Var _ -> 0
  | Ast.Index (_, i) -> expr_lits i
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> expr_lits a
  | Ast.Binop (_, a, b) -> expr_lits a + expr_lits b
  | Ast.Call (_, args) -> List.fold_left (fun n a -> n + expr_lits a) 0 args

let rec stmt_lits (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Decl (_, _, None) | Ast.Decl_array _ | Ast.Break | Ast.Continue
  | Ast.Return None -> 0
  | Ast.Decl (_, _, Some e) | Ast.Assign (Ast.Lvar _, e) | Ast.Expr_stmt e
  | Ast.Return (Some e) -> expr_lits e
  | Ast.Assign (Ast.Lindex (_, i), e) -> expr_lits i + expr_lits e
  | Ast.If (c, t, e) -> expr_lits c + body_lits t + body_lits e
  | Ast.While (c, b) | Ast.Do_while (b, c) -> expr_lits c + body_lits b
  | Ast.For (init, cond, step, b) ->
    (match init with None -> 0 | Some s -> stmt_lits s)
    + (match cond with None -> 0 | Some e -> expr_lits e)
    + (match step with None -> 0 | Some s -> stmt_lits s)
    + body_lits b
  | Ast.Block b -> body_lits b

and body_lits b = List.fold_left (fun n s -> n + stmt_lits s) 0 b

let prog_lits (p : Ast.program) =
  List.fold_left (fun n (f : Ast.func) -> n + body_lits f.Ast.body) 0 p.Ast.funcs

let measure p = (prog_size p, prog_lits p)

(* --- one-edit candidates ------------------------------------------------- *)

let mk_s sdesc = { Ast.sdesc; Ast.sline = 0 }
let int0 = { Ast.desc = Ast.Int_lit 0; Ast.eline = 0 }

let is_zero (e : Ast.expr) = match e.Ast.desc with Ast.Int_lit 0 -> true | _ -> false

(* all single-edit replacements of a statement; each candidate is a list of
   statements to splice in its place *)
let rec stmt_edits (s : Ast.stmt) : Ast.stmt list list =
  match s.Ast.sdesc with
  | Ast.Decl (t, v, Some e) when not (is_zero e) ->
    [ [ mk_s (Ast.Decl (t, v, Some int0)) ] ]
  | Ast.Decl _ | Ast.Decl_array _ | Ast.Break | Ast.Continue | Ast.Return None
  | Ast.Expr_stmt _ -> []
  | Ast.Assign (lv, e) when not (is_zero e) -> [ [ mk_s (Ast.Assign (lv, int0)) ] ]
  | Ast.Assign _ -> []
  | Ast.Return (Some e) when not (is_zero e) -> [ [ mk_s (Ast.Return (Some int0)) ] ]
  | Ast.Return _ -> []
  | Ast.If (c, then_b, else_b) ->
    [ then_b; else_b ]
    @ List.map (fun t -> [ mk_s (Ast.If (c, t, else_b)) ]) (body_edits then_b)
    @ List.map (fun e -> [ mk_s (Ast.If (c, then_b, e)) ]) (body_edits else_b)
  | Ast.While (c, b) ->
    [ b ] @ List.map (fun b -> [ mk_s (Ast.While (c, b)) ]) (body_edits b)
  | Ast.Do_while (b, c) ->
    [ b ] @ List.map (fun b -> [ mk_s (Ast.Do_while (b, c)) ]) (body_edits b)
  | Ast.For (init, cond, step, b) ->
    let bound_edits =
      match cond with
      | Some ({ Ast.desc = Ast.Binop (rel, iv, { Ast.desc = Ast.Int_lit c1; _ }); _ }
              as c)
        when c1 > 0 ->
        let with_bound c1' =
          let cond' =
            Some { c with Ast.desc = Ast.Binop (rel, iv, { Ast.desc = Ast.Int_lit c1'; Ast.eline = 0 }) }
          in
          [ mk_s (Ast.For (init, cond', step, b)) ]
        in
        let halved = c1 / 2 in
        (if halved < c1 then [ with_bound halved ] else [])
        @ (if halved <> 0 then [ with_bound 0 ] else [])
      | _ -> []
    in
    [ b ] @ bound_edits
    @ List.map (fun b -> [ mk_s (Ast.For (init, cond, step, b)) ]) (body_edits b)
  | Ast.Block b ->
    [ b ] @ List.map (fun b -> [ mk_s (Ast.Block b) ]) (body_edits b)

(* all single-edit variants of a statement list: drop one statement, or
   apply one edit to one statement *)
and body_edits (body : Ast.stmt list) : Ast.stmt list list =
  let rec go prefix = function
    | [] -> []
    | s :: rest ->
      (List.rev_append prefix rest
       :: List.map
            (fun repl -> List.rev_append prefix (repl @ rest))
            (stmt_edits s))
      @ go (s :: prefix) rest
  in
  go [] body

let candidates (p : Ast.program) : Ast.program list =
  let drop_global =
    List.mapi
      (fun k _ ->
        { p with Ast.globals = List.filteri (fun j _ -> j <> k) p.Ast.globals })
      p.Ast.globals
  in
  let drop_func =
    List.concat
      (List.mapi
         (fun k (f : Ast.func) ->
           if f.Ast.fname = "main" then []
           else
             [ { p with Ast.funcs = List.filteri (fun j _ -> j <> k) p.Ast.funcs } ])
         p.Ast.funcs)
  in
  let edit_func =
    List.concat
      (List.mapi
         (fun k (f : Ast.func) ->
           List.map
             (fun body ->
               { p with
                 Ast.funcs =
                   List.mapi
                     (fun j g -> if j = k then { f with Ast.body = body } else g)
                     p.Ast.funcs })
             (body_edits f.Ast.body))
         p.Ast.funcs)
  in
  drop_global @ drop_func @ edit_func

(* --- greedy loop --------------------------------------------------------- *)

let minimize ?(max_attempts = 2000) ~check p =
  let attempts = ref 0 in
  let rec go current =
    let m = measure current in
    let rec try_candidates = function
      | [] -> current
      | c :: rest ->
        if !attempts >= max_attempts then current
        else if measure c < m && (incr attempts; check c) then go c
        else try_candidates rest
    in
    try_candidates (candidates current)
  in
  go p
