(** The soundness oracle: one MC source through the whole pipeline, with
    every cross-check the paper's soundness argument rests on.

    For a program the generator guarantees to be well-formed and boundable,
    the oracle checks that:

    - the frontend accepts it and the analysis produces a bound;
    - both bounds come with duality certificates that the trusted checker
      ({!Ipet_cert.Checker}) accepts in exact rational arithmetic;
    - the ILP objective is identical with and without presolve;
    - a cold simulated run of [main] finishes and its cycle count lies
      inside the estimated bound [[BCET, WCET]] (Fig. 1);
    - the measured per-instance block/edge counts satisfy {e every}
      structural and loop-bound constraint the ILP was built from;
    - the optimized build returns the same value and leaves the same global
      memory as the unoptimized build.

    Any deviation — including an unexpected exception anywhere in the
    pipeline — is a classified failure. *)

type failure_kind =
  | Frontend_reject       (** lexer/parser/typecheck/compile refused it *)
  | Analysis_reject       (** analysis raised (e.g. a loop it cannot bound) *)
  | Sim_crash             (** runtime error or fuel exhaustion *)
  | Bound_violation       (** simulated cycles outside [BCET, WCET] *)
  | Constraint_violation  (** measured counts break an ILP constraint *)
  | Optimizer_divergence  (** optimized and unoptimized runs observably differ *)
  | Presolve_divergence   (** presolve changed an ILP objective value *)
  | Certificate_reject
      (** the trusted checker refused a bound's duality certificate *)
  | Unexpected_exception

val kind_name : failure_kind -> string

type failure = { kind : failure_kind; detail : string }

type stats = { bcet : int; wcet : int; cycles : int; instructions : int }

type verdict = Pass of stats | Fail of failure

val check :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  string ->
  verdict
(** Run every check on an MC source text (root function [main], no
    arguments). [mach] (default {!Ipet_machine.Machine.e32}) selects the
    machine model for both the analysis and the simulator; [cache]
    defaults to the machine's own fetch configuration. Never raises. *)
