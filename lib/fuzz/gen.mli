(** Random MC program generator for the soundness fuzzer.

    A generated case is constructed so that the whole pipeline must accept
    it: loops are Autobound-recognizable counted [for] loops, divisors are
    forced odd, array indices are masked to the (power-of-two) array size,
    and the call graph is a DAG. Within those guardrails operand values,
    operator mix, shift amounts, nesting and call placement are random —
    a frontend rejection, an analysis rejection or a crash on a generated
    case is therefore itself a bug.

    Generation is a pure function of the seed (via {!Rng}), so any failure
    replays bit-identically from the printed seed on any OCaml version. *)

type case = {
  seed : int;
  prog : Ipet_lang.Ast.program;
  cache : Ipet_machine.Icache.config;
      (** randomized but always valid: power-of-two lines, size a multiple
          of the line *)
}

val case : int -> case
(** The (deterministic) case for a seed. The program's root is [main]. *)

val case_sized : stmt_budget:int -> int -> case
(** [case_sized ~stmt_budget seed] — the same grammar and guardrails with
    a caller-chosen statement budget for [main], used by the [bench lp]
    scaling suite to produce programs whose ILPs are 10x–100x the fuzzing
    default. Deterministic in [(stmt_budget, seed)]; uses an RNG stream
    separate from {!case}, so recorded fuzz seeds replay unchanged. *)
