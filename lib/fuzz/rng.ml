(* Splitmix64. The OCaml stdlib [Random] changed algorithms between 4.x
   and 5.x, so a seed would not replay identically across the CI matrix;
   this generator is a page of Int64 arithmetic with the same output
   everywhere, which makes every fuzz failure reproducible from its
   printed seed on any host. *)

type t = { mutable state : int64 }

let create seed =
  (* one multiplicative scramble so that the consecutive seeds the driver
     uses (seed, seed+1, ...) start from well-separated states *)
  { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 62 non-negative bits: fits the native int of every 64-bit OCaml *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: empty interval";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t ~num ~den = int t den < num

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no weight";
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if pick < acc + w then v else go (acc + w) rest
  in
  go 0 choices
