module Ast = Ipet_lang.Ast
module Icache = Ipet_machine.Icache

type case = {
  seed : int;
  prog : Ast.program;
  cache : Icache.config;
}

(* Every generated program must be accepted by the whole pipeline, so the
   grammar below is the intersection of what the frontend allows and what
   the analysis can bound:

   - loops are exactly the counted [for (i = c0; i <(=) c1; i = i + c2)]
     shape that {!Ipet.Autobound} recognizes, with non-negative literal
     bounds and an induction variable that is declared at the top of the
     function and never assigned anywhere else;
   - division and modulo right-hand sides are [(e | 1)] — always odd,
     hence never zero;
   - array sizes are powers of two and every index is masked with
     [(e & (size-1))], so accesses are always in bounds;
   - the call graph is a DAG (function [k] may only call functions with a
     smaller index), which keeps the virtual-inlining instance expansion
     finite and recursion-free.

   Everything else — operand values, operator mix, shift amounts, nesting,
   call placement — is unconstrained, which is where the ALU edge cases
   (overflow, [min_int32 / -1], shifts past the register width) come
   from. *)

let no_pos = 0

let mk_e desc = { Ast.desc; Ast.eline = no_pos }
let mk_s sdesc = { Ast.sdesc; Ast.sline = no_pos }
let int_lit n = mk_e (Ast.Int_lit n)

let interesting =
  [| 0; 1; 2; 3; 5; 7; 8; 15; 16; 17; 31; 32; 33; 62; 63; 64; 65; 127; 128;
     255; 256; 1023; 4096; 65535; 65536; 0x7FFF_FFFF; 0x7FFF_FFFE;
     -0x8000_0000; -0x7FFF_FFFF; -1; -2; -3; -7; -31; -32; -63; -64; -255 |]

let literal rng =
  Rng.weighted rng
    [ (5, `Small); (4, `Interesting); (2, `Wide) ]
  |> function
  | `Small -> Rng.range rng 0 9
  | `Interesting -> Rng.choose rng interesting
  | `Wide ->
    let v = Rng.int rng 0x1_0000_0000 in
    Ipet_isa.Value.wrap32 v

type scope = {
  rng : Rng.t;
  ints : string list;           (* readable int scalars (incl. induction vars) *)
  assignable : string list;     (* writable int scalars (excl. induction vars) *)
  arrays : (string * int) list; (* readable/writable arrays with their size *)
  callees : (string * int) list;          (* (name, nparams), DAG-ordered *)
  call_budget : int ref;        (* static call sites left, shared program-wide *)
}

(* --- expressions --------------------------------------------------------- *)

let mask_index e size = mk_e (Ast.Binop (Ast.Band, e, int_lit (size - 1)))

let binops =
  [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Le; Ast.Gt;
     Ast.Ge; Ast.Eq; Ast.Ne; Ast.Land; Ast.Lor; Ast.Band; Ast.Bor; Ast.Bxor;
     Ast.Shl; Ast.Shr |]

let rec expr sc depth =
  let leafy = depth <= 0 in
  match
    Rng.weighted sc.rng
      (List.concat
         [ [ (4, `Lit) ];
           (if sc.ints = [] then [] else [ (4, `Var) ]);
           (if sc.arrays = [] then [] else [ (2, `Index) ]);
           (if leafy then [] else [ (2, `Unop); (8, `Binop) ]);
           (if leafy || sc.callees = [] || !(sc.call_budget) <= 0 then []
            else [ (1, `Call) ]) ])
  with
  | `Lit -> int_lit (literal sc.rng)
  | `Var -> mk_e (Ast.Var (Rng.choose sc.rng (Array.of_list sc.ints)))
  | `Index ->
    let name, size = Rng.choose sc.rng (Array.of_list sc.arrays) in
    mk_e (Ast.Index (name, mask_index (expr sc (depth - 1)) size))
  | `Unop ->
    let op = if Rng.bool sc.rng then Ast.Neg else Ast.Lnot in
    mk_e (Ast.Unop (op, expr sc (depth - 1)))
  | `Binop ->
    let op = Rng.choose sc.rng binops in
    let lhs = expr sc (depth - 1) in
    let rhs = expr sc (depth - 1) in
    let rhs =
      match op with
      | Ast.Div | Ast.Mod -> mk_e (Ast.Binop (Ast.Bor, rhs, int_lit 1))
      | _ -> rhs
    in
    mk_e (Ast.Binop (op, lhs, rhs))
  | `Call -> call_expr sc depth

and call_expr sc depth =
  decr sc.call_budget;
  let name, nparams = Rng.choose sc.rng (Array.of_list sc.callees) in
  let args = List.init nparams (fun _ -> expr sc (min depth 2 - 1)) in
  mk_e (Ast.Call (name, args))

(* --- statements ---------------------------------------------------------- *)

(* induction variables are one per nesting depth so that nested loops never
   collide; they are all declared (initialized) at the top of the function
   because Autobound requires the loop init to be a plain assignment *)
let ind_var depth = Printf.sprintf "i%d" depth

let max_loop_depth = 2

let rec stmts sc ~budget ~loop_depth ~in_loop =
  if !budget <= 0 then []
  else begin
    let n = Rng.range sc.rng 1 4 in
    let rec go k acc =
      if k = 0 || !budget <= 0 then List.rev acc
      else go (k - 1) (stmt sc ~budget ~loop_depth ~in_loop :: acc)
    in
    go n []
  end

and stmt sc ~budget ~loop_depth ~in_loop =
  decr budget;
  match
    Rng.weighted sc.rng
      (List.concat
         [ (if sc.assignable = [] then [] else [ (8, `Assign) ]);
           (if sc.arrays = [] then [] else [ (3, `Astore) ]);
           [ (3, `If) ];
           (if loop_depth < max_loop_depth then [ (3, `For) ] else []);
           (if in_loop then [ (1, `Break); (1, `Continue) ] else []);
           (if sc.callees = [] || !(sc.call_budget) <= 0 then []
            else [ (2, `CallStmt) ]) ])
  with
  | `Assign ->
    let target = Rng.choose sc.rng (Array.of_list sc.assignable) in
    mk_s (Ast.Assign (Ast.Lvar target, expr sc 3))
  | `Astore ->
    let name, size = Rng.choose sc.rng (Array.of_list sc.arrays) in
    let idx = mask_index (expr sc 2) size in
    mk_s (Ast.Assign (Ast.Lindex (name, idx), expr sc 3))
  | `If ->
    let cond = expr sc 2 in
    let then_b = stmts sc ~budget ~loop_depth ~in_loop in
    let else_b =
      if Rng.bool sc.rng then stmts sc ~budget ~loop_depth ~in_loop else []
    in
    (* a [return] deep in a branch is legal and exercises the early-exit
       (lo = 0) path of the loop-bound inference *)
    let then_b =
      if in_loop && Rng.chance sc.rng ~num:1 ~den:6 then
        then_b @ [ mk_s (Ast.Return (Some (expr sc 1))) ]
      else then_b
    in
    mk_s (Ast.If (cond, then_b, else_b))
  | `For ->
    let i = ind_var loop_depth in
    let c0 = Rng.range sc.rng 0 4 in
    let step = Rng.range sc.rng 1 3 in
    let le = Rng.bool sc.rng in
    (* bounds stay non-negative literals: a negative bound would render as
       a unary minus and no longer match Autobound's [Int_lit] pattern *)
    let c1 = Rng.range sc.rng 0 (c0 + 10) in
    let init = mk_s (Ast.Assign (Ast.Lvar i, int_lit c0)) in
    let rel = if le then Ast.Le else Ast.Lt in
    let cond = mk_e (Ast.Binop (rel, mk_e (Ast.Var i), int_lit c1)) in
    let inc =
      mk_s
        (Ast.Assign
           (Ast.Lvar i, mk_e (Ast.Binop (Ast.Add, mk_e (Ast.Var i), int_lit step))))
    in
    let body =
      stmts sc ~budget ~loop_depth:(loop_depth + 1) ~in_loop:true
    in
    mk_s (Ast.For (Some init, Some cond, Some inc, body))
  | `Break -> mk_s Ast.Break
  | `Continue -> mk_s Ast.Continue
  | `CallStmt -> mk_s (Ast.Expr_stmt (call_expr sc 2))

(* --- whole programs ------------------------------------------------------ *)

let global_scalar rng k =
  { Ast.gtyp = Ast.Tint;
    Ast.gname = Printf.sprintf "g%d" k;
    Ast.gsize = None;
    Ast.ginit = (if Rng.bool rng then Some [ Ast.Cint (literal rng) ] else None);
    Ast.gline = no_pos }

let global_array rng k =
  let size = Rng.choose rng [| 4; 8; 16 |] in
  let init =
    if Rng.bool rng then
      Some (List.init size (fun _ -> Ast.Cint (literal rng)))
    else None
  in
  { Ast.gtyp = Ast.Tint;
    Ast.gname = Printf.sprintf "a%d" k;
    Ast.gsize = Some size;
    Ast.ginit = init;
    Ast.gline = no_pos }

let func ?(fill = false) rng ~name ~nparams ~globals_int ~garrays ~callees
    ~call_budget ~stmt_budget =
  let params = List.init nparams (fun k -> Printf.sprintf "p%d" k) in
  let nlocals = Rng.range rng 1 3 in
  let locals = List.init nlocals (fun k -> Printf.sprintf "t%d" k) in
  let ind_vars = List.init max_loop_depth ind_var in
  let larray =
    if Rng.chance rng ~num:1 ~den:3 then
      [ (Printf.sprintf "l%d" 0, Rng.choose rng [| 4; 8 |]) ]
    else []
  in
  let sc =
    { rng;
      ints = params @ locals @ ind_vars @ globals_int;
      assignable = params @ locals @ globals_int;
      arrays = garrays @ larray;
      callees;
      call_budget }
  in
  let decls =
    List.map
      (fun (n, size) -> mk_s (Ast.Decl_array (Ast.Tint, n, size)))
      larray
    @ List.map
        (fun v -> mk_s (Ast.Decl (Ast.Tint, v, Some (int_lit (literal rng)))))
        locals
    @ List.map
        (fun v -> mk_s (Ast.Decl (Ast.Tint, v, Some (int_lit 0))))
        ind_vars
  in
  let budget = ref stmt_budget in
  (* one [stmts] run emits at most a handful of top-level statements; the
     sized generator keeps going until the budget is actually spent so
     program size scales linearly with it *)
  let body =
    if fill then begin
      let rec go acc =
        if !budget <= 0 then List.concat (List.rev acc)
        else go (stmts sc ~budget ~loop_depth:0 ~in_loop:false :: acc)
      in
      go []
    end
    else stmts sc ~budget ~loop_depth:0 ~in_loop:false
  in
  let body = decls @ body @ [ mk_s (Ast.Return (Some (expr sc 2))) ] in
  { Ast.ret = Ast.Tint;
    Ast.fname = name;
    Ast.params = List.map (fun p -> (Ast.Tint, p)) params;
    Ast.body;
    Ast.fline = no_pos }

let cache_config rng =
  let line_bytes = Rng.choose rng [| 8; 16; 32 |] in
  let nlines = Rng.choose rng [| 4; 8; 16; 32 |] in
  let miss_penalty = Rng.choose rng [| 2; 8; 20 |] in
  { Icache.size_bytes = line_bytes * nlines; Icache.line_bytes; miss_penalty }

let program rng =
  let nscalars = Rng.range rng 1 3 in
  let narrays = Rng.range rng 0 2 in
  let globals =
    List.init nscalars (global_scalar rng)
    @ List.init narrays (global_array rng)
  in
  let globals_int =
    List.filteri (fun k _ -> k < nscalars) globals
    |> List.map (fun g -> g.Ast.gname)
  in
  let garrays =
    List.filteri (fun k _ -> k >= nscalars) globals
    |> List.map (fun g -> (g.Ast.gname, Option.get g.Ast.gsize))
  in
  let nhelpers = Rng.range rng 0 3 in
  let call_budget = ref 6 in
  let rec build k callees acc =
    if k = nhelpers then List.rev acc
    else begin
      let nparams = Rng.range rng 0 2 in
      let name = Printf.sprintf "f%d" k in
      let f =
        func rng ~name ~nparams ~globals_int ~garrays ~callees ~call_budget
          ~stmt_budget:(Rng.range rng 3 8)
      in
      build (k + 1) ((name, nparams) :: callees) (f :: acc)
    end
  in
  let helpers = build 0 [] [] in
  let callees =
    List.map (fun (f : Ast.func) -> (f.Ast.fname, List.length f.Ast.params))
      helpers
  in
  let main =
    func rng ~name:"main" ~nparams:0 ~globals_int ~garrays ~callees
      ~call_budget ~stmt_budget:(Rng.range rng 6 14)
  in
  { Ast.globals; Ast.funcs = helpers @ [ main ] }

let case seed =
  let rng = Rng.create seed in
  let prog = program rng in
  let cache = cache_config rng in
  { seed; prog; cache }

(* Sized variant for the LP scaling benchmark: same grammar and the same
   pipeline guardrails, but the statement budget (and with it the CFG and
   therefore the ILP variable count) is caller-chosen instead of the
   small fuzzing default. A separate entry point so [case]'s RNG stream —
   and with it every recorded fuzz seed — is untouched. Helpers are kept
   few and the call budget tight: call sites multiply virtual-inlining
   instances, and the point here is to grow the per-instance constraint
   matrix, not the instance count. *)
let program_sized rng ~stmt_budget =
  let nscalars = 3 in
  let narrays = 2 in
  let globals =
    List.init nscalars (global_scalar rng)
    @ List.init narrays (global_array rng)
  in
  let globals_int =
    List.filteri (fun k _ -> k < nscalars) globals
    |> List.map (fun g -> g.Ast.gname)
  in
  let garrays =
    List.filteri (fun k _ -> k >= nscalars) globals
    |> List.map (fun g -> (g.Ast.gname, Option.get g.Ast.gsize))
  in
  let call_budget = ref 4 in
  let nhelpers = 2 in
  let helper_budget = max 4 (stmt_budget / 8) in
  let rec build k callees acc =
    if k = nhelpers then List.rev acc
    else begin
      let name = Printf.sprintf "f%d" k in
      let f =
        func ~fill:true rng ~name ~nparams:1 ~globals_int ~garrays ~callees
          ~call_budget ~stmt_budget:helper_budget
      in
      build (k + 1) ((name, 1) :: callees) (f :: acc)
    end
  in
  let helpers = build 0 [] [] in
  let callees =
    List.map (fun (f : Ast.func) -> (f.Ast.fname, List.length f.Ast.params))
      helpers
  in
  let main =
    func ~fill:true rng ~name:"main" ~nparams:0 ~globals_int ~garrays
      ~callees ~call_budget ~stmt_budget
  in
  { Ast.globals; Ast.funcs = helpers @ [ main ] }

let case_sized ~stmt_budget seed =
  let rng = Rng.create seed in
  let prog = program_sized rng ~stmt_budget in
  let cache = cache_config rng in
  { seed; prog; cache }
