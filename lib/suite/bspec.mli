(** Benchmark descriptors for the paper's evaluation set (Table I).

    Each benchmark bundles the MC source of the routine, the analysis root,
    the loop-bound annotations and functionality constraints a user of
    cinderella would supply, and the hand-identified extreme-case data sets
    used to form the paper's "calculated" and "measured" bounds.

    Loop bounds and constraint references are located by {e source markers}
    (unique substrings) rather than hard-coded line numbers, so the sources
    can be edited without silently invalidating annotations. *)

type dataset = {
  dname : string;
  setup : Ipet_sim.Interp.t -> unit;  (** write the input globals *)
  args : Ipet_isa.Value.t list;       (** arguments of the root call *)
}

type t = {
  name : string;
  description : string;  (** as in Table I *)
  source : string;
  root : string;
  loop_bounds : Ipet.Annotation.t list;
  functional : Ipet.Functional.t list;
  worst_data : dataset list;
      (** candidate worst-case data sets; the harness takes the slowest *)
  best_data : dataset list;
      (** candidate best-case data sets; the harness takes the fastest *)
}

val line_containing : source:string -> string -> int
(** 1-based line of the unique occurrence of a marker substring.
    @raise Failure if absent or ambiguous. *)

val loc : source:string -> string -> int
(** Alias of {!line_containing} for terse benchmark definitions. *)

val source_lines : t -> int
(** Non-blank source lines — the "Lines" column of Table I. *)

val no_setup : Ipet_sim.Interp.t -> unit

val dataset :
  ?setup:(Ipet_sim.Interp.t -> unit) ->
  ?args:Ipet_isa.Value.t list ->
  string ->
  dataset

val compile : t -> Ipet_lang.Compile.t
(** Compile the benchmark source (memoized per benchmark). *)

val spec :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  ?dcache:Ipet_machine.Icache.config ->
  t ->
  Ipet.Analysis.spec
(** The analysis specification for the benchmark. [mach] selects the
    machine model (default {!Ipet_machine.Machine.e32}); [cache] defaults
    to the machine's own fetch configuration. *)
