type dataset = {
  dname : string;
  setup : Ipet_sim.Interp.t -> unit;
  args : Ipet_isa.Value.t list;
}

type t = {
  name : string;
  description : string;
  source : string;
  root : string;
  loop_bounds : Ipet.Annotation.t list;
  functional : Ipet.Functional.t list;
  worst_data : dataset list;
  best_data : dataset list;
}

let line_containing ~source needle =
  let lines = String.split_on_char '\n' source in
  let contains hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  let hits =
    List.filteri (fun _ line -> contains line) lines
    |> List.length
  in
  if hits = 0 then failwith (Printf.sprintf "marker %S not found" needle);
  if hits > 1 then failwith (Printf.sprintf "marker %S is ambiguous (%d hits)" needle hits);
  let rec find i = function
    | [] -> assert false
    | line :: rest -> if contains line then i else find (i + 1) rest
  in
  find 1 lines

let loc = line_containing

let source_lines t =
  String.split_on_char '\n' t.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let no_setup (_ : Ipet_sim.Interp.t) = ()

let dataset ?(setup = no_setup) ?(args = []) dname = { dname; setup; args }

(* memo shared by every caller, including pool workers compiling
   different benchmarks concurrently, hence the lock; compilation is
   deterministic, so a racing duplicate would be harmless but the lock
   also keeps the Hashtbl's internals consistent *)
let cache_lock = Ipet_par.Par_compat.Lock.create ()
let cache_table : (string, Ipet_lang.Compile.t) Hashtbl.t = Hashtbl.create 16

let compile t =
  match
    Ipet_par.Par_compat.Lock.with_lock cache_lock (fun () ->
        Hashtbl.find_opt cache_table t.name)
  with
  | Some c -> c
  | None ->
    let c =
      try Ipet_lang.Frontend.compile_string_exn t.source with
      | Failure msg -> failwith (Printf.sprintf "benchmark %s: %s" t.name msg)
    in
    Ipet_par.Par_compat.Lock.with_lock cache_lock (fun () ->
        Hashtbl.replace cache_table t.name c);
    c

let spec ?mach ?cache ?dcache t =
  let compiled = compile t in
  Ipet.Analysis.spec ?mach ?cache ?dcache ~loop_bounds:t.loop_bounds
    ~functional:t.functional ~root:t.root compiled.Ipet_lang.Compile.prog
