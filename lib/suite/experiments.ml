module Interp = Ipet_sim.Interp
module Compile = Ipet_lang.Compile
module Analysis = Ipet.Analysis
module Cost = Ipet_machine.Cost

type interval = { lo : int; hi : int }

type row = {
  bench : string;
  lines : int;
  sets_total : int;
  sets_pruned : int;
  estimated : interval;
  calculated : interval;
  measured : interval;
  lp_calls : int;
  all_first_lp_integral : bool;
}

let pessimism ~estimated ~reference =
  let lo =
    if reference.lo = 0 then 0.0
    else float_of_int (reference.lo - estimated.lo) /. float_of_int reference.lo
  in
  let hi =
    if reference.hi = 0 then 0.0
    else float_of_int (estimated.hi - reference.hi) /. float_of_int reference.hi
  in
  (lo, hi)

(* run one data set and return (block counts, cycle-accurate time) *)
let simulate ?mach ?cache ?dcache compiled (bench : Bspec.t)
    (data : Bspec.dataset) ~flush ~warm =
  let machine =
    Interp.create ?mach ?cache ?dcache compiled.Compile.prog
      ~init:compiled.Compile.init_data
  in
  if warm then begin
    (* warm the cache with one throwaway run, then restore the data *)
    data.Bspec.setup machine;
    ignore (Interp.call machine bench.Bspec.root data.Bspec.args);
    Interp.reset_stats machine;
    Interp.reset_memory machine ~init:compiled.Compile.init_data
  end;
  data.Bspec.setup machine;
  if flush then Interp.flush_cache machine;
  ignore (Interp.call machine bench.Bspec.root data.Bspec.args);
  (Interp.block_counts machine, Interp.cycles machine)

let calculated_cost spec counts ~select =
  let table = Hashtbl.create 8 in
  let costs func =
    match Hashtbl.find_opt table func with
    | Some c -> c
    | None ->
      let c = Analysis.block_costs spec ~func in
      Hashtbl.replace table func c;
      c
  in
  List.fold_left
    (fun acc ((func, block), count) -> acc + (count * select (costs func).(block)))
    0 counts

let run ?mach ?cache ?dcache ?pool (bench : Bspec.t) =
  let compiled = Bspec.compile bench in
  let spec = Bspec.spec ?mach ?cache ?dcache bench in
  let result = Analysis.analyze ?pool spec in
  let worst_runs =
    List.map
      (fun d ->
        simulate ?mach ?cache ?dcache compiled bench d ~flush:true ~warm:false)
      bench.Bspec.worst_data
  in
  let best_runs =
    List.map
      (fun d ->
        simulate ?mach ?cache ?dcache compiled bench d ~flush:false ~warm:true)
      bench.Bspec.best_data
  in
  let max_list = List.fold_left max min_int in
  let min_list = List.fold_left min max_int in
  let calculated =
    { hi =
        max_list
          (List.map
             (fun (counts, _) ->
               calculated_cost spec counts ~select:(fun b -> b.Cost.worst))
             worst_runs);
      lo =
        min_list
          (List.map
             (fun (counts, _) ->
               calculated_cost spec counts ~select:(fun b -> b.Cost.best))
             best_runs) }
  in
  let measured =
    { hi = max_list (List.map snd worst_runs);
      lo = min_list (List.map snd best_runs) }
  in
  { bench = bench.Bspec.name;
    lines = Bspec.source_lines bench;
    sets_total = result.Analysis.wcet_stats.Analysis.sets_total;
    sets_pruned = result.Analysis.wcet_stats.Analysis.sets_pruned;
    estimated =
      { lo = result.Analysis.bcet.Analysis.cycles;
        hi = result.Analysis.wcet.Analysis.cycles };
    calculated;
    measured;
    lp_calls =
      result.Analysis.wcet_stats.Analysis.lp_calls
      + result.Analysis.bcet_stats.Analysis.lp_calls;
    all_first_lp_integral =
      result.Analysis.wcet_stats.Analysis.all_first_lp_integral
      && result.Analysis.bcet_stats.Analysis.all_first_lp_integral }

(* Benchmarks are sharded across the pool; each shard's analysis reuses
   the same pool for its inner fan-outs (helping awaits make the nesting
   safe). Results come back in suite order regardless of completion
   order, so the row list is identical at any job count. *)
let run_all ?mach ?cache ?dcache ?pool () =
  let pool =
    match pool with Some p -> p | None -> Ipet_par.Pool.default ()
  in
  Ipet_par.Pool.map_list pool
    (fun b -> run ?mach ?cache ?dcache ~pool b)
    Suite.all

(* --- table rendering ------------------------------------------------------ *)

let pp_interval { lo; hi } = Printf.sprintf "[%d, %d]" lo hi

let render_against ~reference_label ~reference rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %-17s %-24s %-24s %s\n" "Function" "Estimated Bound"
       reference_label "Pessimism");
  List.iter
    (fun row ->
      let plo, phi = pessimism ~estimated:row.estimated ~reference:(reference row) in
      Buffer.add_string buf
        (Printf.sprintf "  %-17s %-24s %-24s [%.2f, %.2f]\n" row.bench
           (pp_interval row.estimated) (pp_interval (reference row)) plo phi))
    rows;
  Buffer.contents buf

let render_table2 rows =
  render_against ~reference_label:"Calculated Bound"
    ~reference:(fun r -> r.calculated) rows

let render_table3 rows =
  render_against ~reference_label:"Measured Bound"
    ~reference:(fun r -> r.measured) rows
