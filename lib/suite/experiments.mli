(** The paper's two experiments (Section VI), runnable per benchmark.

    - {b Experiment 1} compares the ILP {e estimated} bound against the
      {e calculated} bound: simulated basic-block counts on the
      hand-identified extreme data sets, multiplied by the same per-block
      cost bounds the ILP used. The difference is pure path-analysis
      pessimism (Table II).
    - {b Experiment 2} compares the estimated bound against the
      {e measured} bound: cycle-accurate simulation with the real cache
      (flushed before the worst-case run, warmed for the best-case run, as
      on the paper's QT960 board). The difference adds the
      micro-architectural modelling pessimism (Table III). *)

type interval = { lo : int; hi : int }

type row = {
  bench : string;
  lines : int;                (** non-blank source lines (Table I) *)
  sets_total : int;           (** DNF constraint sets (Table I) *)
  sets_pruned : int;          (** null sets eliminated (Table I footnote) *)
  estimated : interval;       (** ILP bound *)
  calculated : interval;      (** Experiment 1 reference *)
  measured : interval;        (** Experiment 2 reference *)
  lp_calls : int;
  all_first_lp_integral : bool;
}

val pessimism : estimated:interval -> reference:interval -> float * float
(** The paper's pessimism metric:
    [( (Cl - El) / Cl, (Eu - Cu) / Cu )]. *)

val run :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  ?dcache:Ipet_machine.Icache.config ->
  ?pool:Ipet_par.Pool.t ->
  Bspec.t ->
  row
(** Analyze, simulate and measure one benchmark; [mach] selects the
    machine model for both the analysis and the simulation (default
    {!Ipet_machine.Machine.e32}); [dcache] enables the data-cache model
    in both. [pool] (default {!Ipet_par.Pool.default}) parallelizes the
    analysis. *)

val run_all :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  ?dcache:Ipet_machine.Icache.config ->
  ?pool:Ipet_par.Pool.t ->
  unit ->
  row list
(** Every suite benchmark, sharded across [pool]; the row list is in
    suite order and identical at any job count. *)

(** {1 Table rendering}

    Fixed-width plain text, exactly the paper's Tables II/III layout; used
    by the bench driver and checked against golden files by the test
    suite. *)

val render_table2 : row list -> string
(** Estimated vs calculated bound with path-analysis pessimism, one line
    per row, header included. *)

val render_table3 : row list -> string
(** Estimated vs measured bound with total pessimism. *)
