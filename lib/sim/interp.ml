module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module V = Ipet_isa.Value
module Layout = Ipet_isa.Layout
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine

exception Runtime_error of string
exception Out_of_fuel

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* --- decoded program ----------------------------------------------------
   [create] compiles the program once into flat, integer-indexed structures
   so the execution loop touches no hashtable, performs no per-instruction
   timing analysis and no layout lookups:
   - every (func, block) is interned into a dense block slot; plain counters
     are [int array]s indexed by slot, as are edge and call-site counters;
   - per block, the fetch addresses are pre-mapped to i-cache (tag index,
     line) pairs and each instruction's issue + load-use-stall cycles are
     summed into a static cost table;
   - call sites carry their resolved callee and statically-known occurrence
     slot, so a call performs no function-table search;
   - context-qualified counters live in a calling-context tree whose nodes
     are reached in O(1) from the per-site child arrays. *)

type dcall = {
  c_slot : int;                 (* call-site counter slot *)
  c_callee : int;               (* dfunc index, -1 if the name is unknown *)
  c_callee_name : string;
  c_nargs : int;
  c_args : I.operand array;
}

type dterm =
  | D_jump of int * int                       (* target block, edge slot *)
  | D_branch of I.reg * int * int * int * int (* reg, t_tgt, t_slot, f_tgt, f_slot *)
  | D_return of I.operand option

type dblock = {
  b_slot : int;                 (* dense block counter slot *)
  b_instrs : I.t array;
  b_fetch_idx : int array;      (* length n+1: i-cache tag index per fetch *)
  b_fetch_line : int array;     (* length n+1: i-cache line per fetch *)
  b_cost : int array;           (* length n: issue + stall-before cycles *)
  b_calls : dcall array;        (* in occurrence order *)
  b_term : dterm;
  b_term_taken : int;           (* terminator cycles (taken / any) *)
  b_term_nottaken : int;
}

type dfunc = {
  d_index : int;
  d_name : string;
  d_nparams : int;
  d_frame_words : int;
  d_nregs : int;                (* registers the function can touch *)
  d_blocks : dblock array;
}

(* calling-context tree node: one per distinct call path from the root.
   Counter arrays share the global slot numbering; [x_children] is indexed
   by call-site slot, so descending at a call is a single array read. *)
type ctx = {
  x_counts : int array;
  x_edges : int array;
  x_calls : int array;
  x_entries : int array;        (* per dfunc index *)
  x_children : ctx option array;
}

type t = {
  prog : P.t;
  layout : Layout.t;
  cache : Icache.t;
  dcache : Icache.t option;
  memory : V.t array;
  stack_base : int;
  mutable sp : int;
  mutable fuel : int;
  fuel_budget : int;
  mutable cycle_count : int;
  mutable instr_count : int;
  (* i-cache fetch path, fully inlined: [itags] aliases the cache's tag
     store; hits and misses are tallied here instead of in [cache] *)
  itags : int array;
  mutable ihits : int;
  mutable imisses : int;
  mutable hits0 : int;  (* cache stats baseline for reset_stats *)
  mutable misses0 : int;
  mutable block_hook : (string -> int -> int -> unit) option;
  miss_penalty : int;
  (* profile mode: per-block self cycles (callee time excluded) and per-set
     i-cache hit/miss tallies. The flag is immutable so the dispatch in
     [run_block] is a predictable branch; with it off the execution loop is
     byte-for-byte the unprofiled one. *)
  profile : bool;
  mutable prof_callee : int;     (* callee cycles within the current block *)
  prof_cycles : int array;       (* per block slot *)
  line_hits : int array;         (* per i-cache set *)
  line_misses : int array;
  (* decoded program *)
  dfuncs : dfunc array;
  func_index : (string, int) Hashtbl.t;
  nblocks : int;
  nedges : int;
  ncalls : int;
  block_key : (string * int) array;            (* slot -> key *)
  block_slot : (string * int, int) Hashtbl.t;  (* key -> slot (cold paths) *)
  edge_slot : (string * int * int, int) Hashtbl.t;
  call_slot : (string * int * int, int) Hashtbl.t;
  (* flat counters *)
  counts : int array;
  edge_counts : int array;
  call_counts : int array;
  (* context tree *)
  mutable root_ctx : ctx;
  mutable cur_ctx : ctx;
}

let intern table next key =
  match Hashtbl.find_opt table key with
  | Some slot -> slot
  | None ->
    let slot = !next in
    Hashtbl.add table key slot;
    incr next;
    slot

let decode_block ~mach ~cache_cfg ~dcache ~layout ~func_index ~block_slot
    ~edge_slot ~call_slot ~next_block ~next_edge ~next_call (f : P.func)
    (b : P.block) =
  let (module M : Machine.MACHINE) = mach in
  let fname = f.P.name in
  let n = Array.length b.P.instrs in
  let base = Layout.block_addr layout ~func:fname ~block:b.P.id in
  let fetch_idx = Array.make (n + 1) 0 in
  let fetch_line = Array.make (n + 1) 0 in
  for i = 0 to n do
    let index, line = Icache.slot_of cache_cfg (base + (i * I.bytes_per_instr)) in
    fetch_idx.(i) <- index;
    fetch_line.(i) <- line
  done;
  let issue = Machine.issue_table mach ~dcache b.P.instrs in
  let stall = Machine.stall_table mach b.P.instrs in
  let cost = Array.init n (fun i -> issue.(i) + stall.(i)) in
  let calls = ref [] in
  Array.iter
    (function
      | I.Call (_, callee, args) ->
        let occurrence = List.length !calls in
        calls :=
          { c_slot = intern call_slot next_call (fname, b.P.id, occurrence);
            c_callee =
              Option.value ~default:(-1)
                (Hashtbl.find_opt func_index callee);
            c_callee_name = callee;
            c_nargs = List.length args;
            c_args = Array.of_list args }
          :: !calls
      | I.Alu _ | I.Fpu _ | I.Icmp _ | I.Fcmp _ | I.Mov _ | I.Itof _
      | I.Ftoi _ | I.Load _ | I.Store _ -> ())
    b.P.instrs;
  let edge dst = intern edge_slot next_edge (fname, b.P.id, dst) in
  let term, taken, nottaken =
    match b.P.term with
    | I.Jump tgt ->
      let c = M.term_actual b.P.term ~taken:true in
      (D_jump (tgt, edge tgt), c, c)
    | I.Branch (r, t, f_) ->
      ( D_branch (r, t, edge t, f_, edge f_),
        M.term_actual b.P.term ~taken:true,
        M.term_actual b.P.term ~taken:false )
    | I.Return op ->
      let c = M.term_actual b.P.term ~taken:true in
      (D_return op, c, c)
  in
  { b_slot = intern block_slot next_block (fname, b.P.id);
    b_instrs = b.P.instrs;
    b_fetch_idx = fetch_idx;
    b_fetch_line = fetch_line;
    b_cost = cost;
    b_calls = Array.of_list (List.rev !calls);
    b_term = term;
    b_term_taken = taken;
    b_term_nottaken = nottaken }

let max_reg (f : P.func) =
  let m = ref (max 15 (f.P.nparams - 1)) in
  Array.iter
    (fun (b : P.block) ->
      Array.iter
        (fun i -> List.iter (fun d -> if d > !m then m := d) (I.defs i))
        b.P.instrs)
    f.P.blocks;
  !m

let decode ~mach ~cache_cfg ~dcache ~layout (prog : P.t) =
  let func_index = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : P.func) ->
      if not (Hashtbl.mem func_index f.P.name) then
        Hashtbl.add func_index f.P.name i)
    prog.P.funcs;
  let block_slot = Hashtbl.create 64 in
  let edge_slot = Hashtbl.create 64 in
  let call_slot = Hashtbl.create 16 in
  let next_block = ref 0 and next_edge = ref 0 and next_call = ref 0 in
  let dfuncs =
    Array.mapi
      (fun i (f : P.func) ->
        { d_index = i;
          d_name = f.P.name;
          d_nparams = f.P.nparams;
          d_frame_words = f.P.frame_words;
          d_nregs = max_reg f + 1;
          d_blocks =
            Array.map
              (decode_block ~mach ~cache_cfg ~dcache ~layout ~func_index
                 ~block_slot ~edge_slot ~call_slot ~next_block ~next_edge
                 ~next_call f)
              f.P.blocks })
      prog.P.funcs
  in
  let block_key = Array.make (max 1 !next_block) ("", 0) in
  Hashtbl.iter (fun key slot -> block_key.(slot) <- key) block_slot;
  (dfuncs, func_index, block_slot, edge_slot, call_slot, block_key,
   !next_block, !next_edge, !next_call)

let new_ctx m =
  { x_counts = Array.make m.nblocks 0;
    x_edges = Array.make m.nedges 0;
    x_calls = Array.make m.ncalls 0;
    x_entries = Array.make (Array.length m.dfuncs) 0;
    x_children = Array.make m.ncalls None }

let create ?(mach = Machine.e32) ?cache ?dcache ?(stack_words = 1 lsl 16)
    ?(fuel = 50_000_000) ?(profile = false) (prog : P.t) ~init =
  let cache = match cache with Some c -> c | None -> Machine.fetch mach in
  let memory = Array.make (prog.P.globals_words + stack_words) V.zero in
  List.iter (fun (addr, v) -> memory.(addr) <- v) init;
  let layout = Layout.make prog in
  let ( dfuncs, func_index, block_slot, edge_slot, call_slot, block_key,
        nblocks, nedges, ncalls ) =
    decode ~mach ~cache_cfg:cache ~dcache:(dcache <> None) ~layout prog
  in
  let icache = Icache.create cache in
  let itags = Icache.tag_array icache in
  let m =
    { prog;
      layout;
      cache = icache;
      dcache = Option.map Icache.create dcache;
      itags;
      ihits = 0;
      imisses = 0;
      memory;
      stack_base = prog.P.globals_words;
      sp = prog.P.globals_words;
      fuel;
      fuel_budget = fuel;
      cycle_count = 0;
      instr_count = 0;
      hits0 = 0;
      misses0 = 0;
      block_hook = None;
      miss_penalty = cache.Icache.miss_penalty;
      profile;
      prof_callee = 0;
      prof_cycles = Array.make (max 1 nblocks) 0;
      line_hits = Array.make (max 1 (Array.length itags)) 0;
      line_misses = Array.make (max 1 (Array.length itags)) 0;
      dfuncs;
      func_index;
      nblocks;
      nedges;
      ncalls;
      block_key;
      block_slot;
      edge_slot;
      call_slot;
      counts = Array.make (max 1 nblocks) 0;
      edge_counts = Array.make (max 1 nedges) 0;
      call_counts = Array.make (max 1 ncalls) 0;
      root_ctx =
        { x_counts = [||]; x_edges = [||]; x_calls = [||]; x_entries = [||];
          x_children = [||] };
      cur_ctx =
        { x_counts = [||]; x_edges = [||]; x_calls = [||]; x_entries = [||];
          x_children = [||] } }
  in
  let root = new_ctx m in
  m.root_ctx <- root;
  m.cur_ctx <- root;
  m

let program m = m.prog
let layout m = m.layout

let reset_memory m ~init =
  Array.fill m.memory 0 (Array.length m.memory) V.zero;
  List.iter (fun (addr, v) -> m.memory.(addr) <- v) init;
  m.sp <- m.stack_base

let reset_stats m =
  m.cycle_count <- 0;
  m.instr_count <- 0;
  m.fuel <- m.fuel_budget;
  m.hits0 <- m.ihits;
  m.misses0 <- m.imisses;
  Array.fill m.counts 0 (Array.length m.counts) 0;
  Array.fill m.edge_counts 0 (Array.length m.edge_counts) 0;
  Array.fill m.call_counts 0 (Array.length m.call_counts) 0;
  m.prof_callee <- 0;
  Array.fill m.prof_cycles 0 (Array.length m.prof_cycles) 0;
  Array.fill m.line_hits 0 (Array.length m.line_hits) 0;
  Array.fill m.line_misses 0 (Array.length m.line_misses) 0;
  let root = new_ctx m in
  m.root_ctx <- root;
  m.cur_ctx <- root

let set_block_hook m hook = m.block_hook <- Some hook
let clear_block_hook m = m.block_hook <- None

let flush_cache m =
  Icache.flush m.cache;
  Option.iter Icache.flush m.dcache

let dcache_hits m = match m.dcache with Some d -> Icache.hits d | None -> 0
let dcache_misses m = match m.dcache with Some d -> Icache.misses d | None -> 0

let global_slot m name =
  match P.find_global m.prog name with
  | g -> g
  | exception Not_found -> error "unknown global %s" name

let write_global m name index v =
  let g = global_slot m name in
  if index < 0 || index >= g.P.size_words then
    error "index %d out of bounds for global %s" index name;
  m.memory.(g.P.addr + index) <- v

let read_global m name index =
  let g = global_slot m name in
  if index < 0 || index >= g.P.size_words then
    error "index %d out of bounds for global %s" index name;
  m.memory.(g.P.addr + index)

let cycles m = m.cycle_count
let instructions m = m.instr_count
let cache_hits m = m.ihits - m.hits0
let cache_misses m = m.imisses - m.misses0

(* --- counter views ------------------------------------------------------ *)

let block_count m ~func ~block =
  match Hashtbl.find_opt m.block_slot (func, block) with
  | Some slot -> m.counts.(slot)
  | None -> 0

let block_counts m =
  let acc = ref [] in
  for slot = 0 to m.nblocks - 1 do
    if m.counts.(slot) > 0 then acc := (m.block_key.(slot), m.counts.(slot)) :: !acc
  done;
  List.sort compare !acc

let profiling m = m.profile

let block_cycles m =
  let acc = ref [] in
  for slot = 0 to m.nblocks - 1 do
    if m.prof_cycles.(slot) > 0 then
      acc := (m.block_key.(slot), m.prof_cycles.(slot)) :: !acc
  done;
  List.sort compare !acc

let icache_line_stats m =
  if not m.profile then [||]
  else
    Array.init (Array.length m.line_hits) (fun i ->
        (m.line_hits.(i), m.line_misses.(i)))

let edge_count m ~func ~src ~dst =
  match Hashtbl.find_opt m.edge_slot (func, src, dst) with
  | Some slot -> m.edge_counts.(slot)
  | None -> 0

let call_count m ~caller ~block ~occurrence =
  match Hashtbl.find_opt m.call_slot (caller, block, occurrence) with
  | Some slot -> m.call_counts.(slot)
  | None -> 0

type site = string * int * int

(* a path is given root-first; walk the tree downwards *)
let rec find_ctx m node = function
  | [] -> Some node
  | site :: rest ->
    (match Hashtbl.find_opt m.call_slot site with
     | None -> None
     | Some slot ->
       (match node.x_children.(slot) with
        | None -> None
        | Some child -> find_ctx m child rest))

let ctx_block_count m ~path ~func ~block =
  match find_ctx m m.root_ctx path with
  | None -> 0
  | Some node ->
    (match Hashtbl.find_opt m.block_slot (func, block) with
     | Some slot -> node.x_counts.(slot)
     | None -> 0)

let ctx_edge_count m ~path ~func ~src ~dst =
  match find_ctx m m.root_ctx path with
  | None -> 0
  | Some node ->
    (match Hashtbl.find_opt m.edge_slot (func, src, dst) with
     | Some slot -> node.x_edges.(slot)
     | None -> 0)

let ctx_call_count m ~path ~caller ~block ~occurrence =
  match find_ctx m m.root_ctx path with
  | None -> 0
  | Some node ->
    (match Hashtbl.find_opt m.call_slot (caller, block, occurrence) with
     | Some slot -> node.x_calls.(slot)
     | None -> 0)

let ctx_entry_count m ~path ~func =
  match find_ctx m m.root_ctx path with
  | None -> 0
  | Some node ->
    (match Hashtbl.find_opt m.func_index func with
     | Some fi -> node.x_entries.(fi)
     | None -> 0)

(* --- execution ---------------------------------------------------------- *)

type frame = { mutable regs : V.t array; fp : int }

let reg_value frame r =
  let a = frame.regs in
  if r < Array.length a then a.(r) else V.zero

let set_reg frame r v =
  let a = frame.regs in
  if r >= Array.length a then begin
    let bigger = Array.make (max (r + 1) (2 * Array.length a)) V.zero in
    Array.blit a 0 bigger 0 (Array.length a);
    frame.regs <- bigger
  end;
  frame.regs.(r) <- v

let operand_value frame = function
  | I.Reg r -> reg_value frame r
  | I.Imm i -> V.Vint i
  | I.Fimm f -> V.Vfloat f

(* unboxed operand reads for the hot ALU/compare paths: immediates skip the
   V.t round-trip entirely; the error behaviour of [V.as_int]/[V.as_float]
   on mistyped words is preserved *)
let int_operand frame = function
  | I.Imm i -> i
  | I.Reg r -> V.as_int (reg_value frame r)
  | I.Fimm f -> V.as_int (V.Vfloat f)

let float_operand frame = function
  | I.Fimm f -> f
  | I.Reg r -> V.as_float (reg_value frame r)
  | I.Imm i -> V.as_float (V.Vint i)

let mem_read m addr =
  if addr < 0 || addr >= Array.length m.memory then
    error "load from invalid address %d" addr;
  m.memory.(addr)

let mem_write m addr v =
  if addr < 0 || addr >= Array.length m.memory then
    error "store to invalid address %d" addr;
  m.memory.(addr) <- v

let effective_addr frame (a : I.addr) =
  let base = match a.I.base with I.Abs w -> w | I.Frame_base -> frame.fp in
  let index =
    match a.I.index with
    | None -> 0
    | Some op -> int_operand frame op
  in
  base + a.I.offset + index

(* every integer result is wrapped to 32-bit two's complement
   ([V.wrap32]): E32 registers are 32 bits wide, so Add/Sub/Mul overflow
   must wrap instead of growing to OCaml's native width.  Div/Rem wrap
   too, which defines the one overflowing case: [min_int32 / -1] wraps
   back to [min_int32] (and [min_int32 rem -1] is [0]), the usual
   non-trapping RISC behaviour.  Must mirror
   Ipet_lang.Optimize.fold_alu exactly. *)
let alu op a b =
  match op with
  | I.Add -> V.wrap32 (a + b)
  | I.Sub -> V.wrap32 (a - b)
  | I.Mul -> V.wrap32 (a * b)
  | I.Div -> if b = 0 then error "division by zero" else V.wrap32 (a / b)
  | I.Rem -> if b = 0 then error "modulo by zero" else V.wrap32 (a mod b)
  | I.And -> V.wrap32 (a land b)
  | I.Or -> V.wrap32 (a lor b)
  | I.Xor -> V.wrap32 (a lxor b)
  (* the E32 masks shift amounts to 6 bits; OCaml's lsl/asr are unspecified
     at >= Sys.int_size, so 63 is clamped (shl saturates to 0, shr to the
     sign). *)
  | I.Shl -> let s = b land 63 in V.wrap32 (if s > 62 then 0 else a lsl s)
  | I.Shr -> let s = b land 63 in V.wrap32 (a asr (if s > 62 then 62 else s))

let fpu op a b =
  match op with
  | I.Fadd -> a +. b
  | I.Fsub -> a -. b
  | I.Fmul -> a *. b
  | I.Fdiv -> a /. b

(* comparison results share two preallocated words instead of boxing a
   fresh Vint per executed compare *)
let v_one = V.Vint 1
let v_zero = V.zero

let icmp op a b =
  let r = match op with
    | I.Ceq -> a = b | I.Cne -> a <> b
    | I.Clt -> a < b | I.Cle -> a <= b | I.Cgt -> a > b | I.Cge -> a >= b
  in
  if r then v_one else v_zero

let fcmp op (a : float) (b : float) =
  let r = match op with
    | I.Ceq -> a = b | I.Cne -> a <> b
    | I.Clt -> a < b | I.Cle -> a <= b | I.Cgt -> a > b | I.Cge -> a >= b
  in
  if r then v_one else v_zero

let enter_func m (df : dfunc) =
  m.cur_ctx.x_entries.(df.d_index) <- m.cur_ctx.x_entries.(df.d_index) + 1;
  let frame = { regs = Array.make df.d_nregs V.zero; fp = m.sp } in
  if m.sp + df.d_frame_words > Array.length m.memory then
    error "stack overflow calling %s" df.d_name;
  m.sp <- m.sp + df.d_frame_words;
  frame

let rec call m fname args =
  let df =
    match Hashtbl.find_opt m.func_index fname with
    | Some i -> m.dfuncs.(i)
    | None -> error "call to unknown function %s" fname
  in
  if List.length args <> df.d_nparams then
    error "%s expects %d arguments, got %d" fname df.d_nparams (List.length args);
  let frame = enter_func m df in
  List.iteri (fun i v -> frame.regs.(i) <- v) args;
  let result = run_block m df frame 0 in
  m.sp <- m.sp - df.d_frame_words;
  result

and run_block m (df : dfunc) frame block_id =
  if m.fuel <= 0 then raise Out_of_fuel;
  m.fuel <- m.fuel - 1;
  let db = df.d_blocks.(block_id) in
  let slot = db.b_slot in
  m.counts.(slot) <- m.counts.(slot) + 1;
  let cx = m.cur_ctx in
  cx.x_counts.(slot) <- cx.x_counts.(slot) + 1;
  (match m.block_hook with
   | Some hook -> hook df.d_name block_id m.cycle_count
   | None -> ());
  if m.profile then run_block_profiled m df frame db
  else begin
  let instrs = db.b_instrs in
  let fetch_idx = db.b_fetch_idx in
  let fetch_line = db.b_fetch_line in
  let cost = db.b_cost in
  let tags = m.itags in
  let n = Array.length instrs in
  let call_i = ref 0 in
  for i = 0 to n - 1 do
    let idx = fetch_idx.(i) and line = fetch_line.(i) in
    if tags.(idx) = line then m.ihits <- m.ihits + 1
    else begin
      tags.(idx) <- line;
      m.imisses <- m.imisses + 1;
      m.cycle_count <- m.cycle_count + m.miss_penalty
    end;
    m.instr_count <- m.instr_count + 1;
    m.cycle_count <- m.cycle_count + cost.(i);
    execute m db frame call_i instrs.(i)
  done;
  (* terminator fetch and execution *)
  let idx = fetch_idx.(n) and line = fetch_line.(n) in
  if tags.(idx) = line then m.ihits <- m.ihits + 1
  else begin
    tags.(idx) <- line;
    m.imisses <- m.imisses + 1;
    m.cycle_count <- m.cycle_count + m.miss_penalty
  end;
  m.instr_count <- m.instr_count + 1;
  match db.b_term with
  | D_jump (target, eslot) ->
    m.cycle_count <- m.cycle_count + db.b_term_taken;
    m.edge_counts.(eslot) <- m.edge_counts.(eslot) + 1;
    let cx = m.cur_ctx in
    cx.x_edges.(eslot) <- cx.x_edges.(eslot) + 1;
    run_block m df frame target
  | D_branch (r, t_tgt, t_slot, f_tgt, f_slot) ->
    let taken = V.truthy (reg_value frame r) in
    let target, eslot, tcost =
      if taken then (t_tgt, t_slot, db.b_term_taken)
      else (f_tgt, f_slot, db.b_term_nottaken)
    in
    m.cycle_count <- m.cycle_count + tcost;
    m.edge_counts.(eslot) <- m.edge_counts.(eslot) + 1;
    let cx = m.cur_ctx in
    cx.x_edges.(eslot) <- cx.x_edges.(eslot) + 1;
    run_block m df frame target
  | D_return op ->
    m.cycle_count <- m.cycle_count + db.b_term_taken;
    Option.map (operand_value frame) op
  end

(* the profiled twin of [run_block]'s body: same semantics, plus per-set
   i-cache tallies and, at the terminator, attribution of the block's self
   cycles [delta - callee cycles] — so dcache penalties and miss refetches
   land on the block that incurred them, and callee time does not. *)
and run_block_profiled m (df : dfunc) frame db =
  let slot = db.b_slot in
  let c0 = m.cycle_count in
  m.prof_callee <- 0;
  let instrs = db.b_instrs in
  let fetch_idx = db.b_fetch_idx in
  let fetch_line = db.b_fetch_line in
  let cost = db.b_cost in
  let tags = m.itags in
  let n = Array.length instrs in
  let call_i = ref 0 in
  for i = 0 to n - 1 do
    let idx = fetch_idx.(i) and line = fetch_line.(i) in
    if tags.(idx) = line then begin
      m.ihits <- m.ihits + 1;
      m.line_hits.(idx) <- m.line_hits.(idx) + 1
    end
    else begin
      tags.(idx) <- line;
      m.imisses <- m.imisses + 1;
      m.line_misses.(idx) <- m.line_misses.(idx) + 1;
      m.cycle_count <- m.cycle_count + m.miss_penalty
    end;
    m.instr_count <- m.instr_count + 1;
    m.cycle_count <- m.cycle_count + cost.(i);
    execute m db frame call_i instrs.(i)
  done;
  let idx = fetch_idx.(n) and line = fetch_line.(n) in
  if tags.(idx) = line then begin
    m.ihits <- m.ihits + 1;
    m.line_hits.(idx) <- m.line_hits.(idx) + 1
  end
  else begin
    tags.(idx) <- line;
    m.imisses <- m.imisses + 1;
    m.line_misses.(idx) <- m.line_misses.(idx) + 1;
    m.cycle_count <- m.cycle_count + m.miss_penalty
  end;
  m.instr_count <- m.instr_count + 1;
  match db.b_term with
  | D_jump (target, eslot) ->
    m.cycle_count <- m.cycle_count + db.b_term_taken;
    m.edge_counts.(eslot) <- m.edge_counts.(eslot) + 1;
    let cx = m.cur_ctx in
    cx.x_edges.(eslot) <- cx.x_edges.(eslot) + 1;
    m.prof_cycles.(slot) <-
      m.prof_cycles.(slot) + (m.cycle_count - c0 - m.prof_callee);
    run_block m df frame target
  | D_branch (r, t_tgt, t_slot, f_tgt, f_slot) ->
    let taken = V.truthy (reg_value frame r) in
    let target, eslot, tcost =
      if taken then (t_tgt, t_slot, db.b_term_taken)
      else (f_tgt, f_slot, db.b_term_nottaken)
    in
    m.cycle_count <- m.cycle_count + tcost;
    m.edge_counts.(eslot) <- m.edge_counts.(eslot) + 1;
    let cx = m.cur_ctx in
    cx.x_edges.(eslot) <- cx.x_edges.(eslot) + 1;
    m.prof_cycles.(slot) <-
      m.prof_cycles.(slot) + (m.cycle_count - c0 - m.prof_callee);
    run_block m df frame target
  | D_return op ->
    m.cycle_count <- m.cycle_count + db.b_term_taken;
    m.prof_cycles.(slot) <-
      m.prof_cycles.(slot) + (m.cycle_count - c0 - m.prof_callee);
    Option.map (operand_value frame) op

and execute m db frame call_i instr =
  match instr with
  | I.Alu (op, d, a, b) ->
    let a = int_operand frame a in
    let b = int_operand frame b in
    set_reg frame d (V.Vint (alu op a b))
  | I.Fpu (op, d, a, b) ->
    let a = float_operand frame a in
    let b = float_operand frame b in
    set_reg frame d (V.Vfloat (fpu op a b))
  | I.Icmp (op, d, a, b) ->
    let a = int_operand frame a in
    let b = int_operand frame b in
    set_reg frame d (icmp op a b)
  | I.Fcmp (op, d, a, b) ->
    let a = float_operand frame a in
    let b = float_operand frame b in
    set_reg frame d (fcmp op a b)
  | I.Mov (d, a) -> set_reg frame d (operand_value frame a)
  | I.Itof (d, a) ->
    set_reg frame d (V.Vfloat (float_of_int (V.as_int (operand_value frame a))))
  | I.Ftoi (d, a) ->
    let f = V.as_float (operand_value frame a) in
    if Float.is_nan f || Float.abs f >= 4.611686018427388e18 then
      error "float->int conversion out of range";
    set_reg frame d (V.Vint (V.wrap32 (int_of_float f)))
  | I.Load (d, a) ->
    let addr = effective_addr frame a in
    (match m.dcache with
     | Some dc ->
       (* word-addressed memory, 4 bytes per word in the cache's eyes *)
       if not (Icache.access dc (addr * 4)) then
         m.cycle_count <- m.cycle_count + (Icache.config dc).Icache.miss_penalty
     | None -> ());
    set_reg frame d (mem_read m addr)
  | I.Store (v, a) ->
    mem_write m (effective_addr frame a) (operand_value frame v)
  | I.Call (dst, _, _) ->
    let dc = db.b_calls.(!call_i) in
    incr call_i;
    m.call_counts.(dc.c_slot) <- m.call_counts.(dc.c_slot) + 1;
    let cx = m.cur_ctx in
    cx.x_calls.(dc.c_slot) <- cx.x_calls.(dc.c_slot) + 1;
    let nargs = dc.c_nargs in
    let args = dc.c_args in
    (* descend into the callee's context instance for this call site *)
    let child =
      match cx.x_children.(dc.c_slot) with
      | Some c -> c
      | None ->
        let c = new_ctx m in
        cx.x_children.(dc.c_slot) <- Some c;
        c
    in
    m.cur_ctx <- child;
    let callee =
      if dc.c_callee >= 0 then m.dfuncs.(dc.c_callee)
      else error "call to unknown function %s" dc.c_callee_name
    in
    if nargs <> callee.d_nparams then
      error "%s expects %d arguments, got %d" callee.d_name callee.d_nparams
        nargs;
    let callee_frame = enter_func m callee in
    for i = 0 to nargs - 1 do
      callee_frame.regs.(i) <- operand_value frame args.(i)
    done;
    let result =
      if not m.profile then run_block m callee callee_frame 0
      else begin
        (* the callee's blocks clobber [prof_callee] for their own calls;
           charge the whole callee delta to the calling block on return *)
        let saved = m.prof_callee in
        let before = m.cycle_count in
        let r = run_block m callee callee_frame 0 in
        m.prof_callee <- saved + (m.cycle_count - before);
        r
      end
    in
    m.sp <- m.sp - callee.d_frame_words;
    m.cur_ctx <- cx;
    (match (dst, result) with
     | Some d, Some v -> set_reg frame d v
     | Some d, None -> set_reg frame d V.zero
     | None, (Some _ | None) -> ())
