(** Cycle-level simulator of E32 programs.

    Plays two roles from the paper's evaluation:
    - {b Experiment 1}: it inserts a (virtual) counter into each basic block
      and records execution counts, from which the "calculated bound" is
      formed.
    - {b Experiment 2}: it is the stand-in for the QT960 board — it executes
      the program with a concrete data set and charges cycles per
      instruction, including real i-cache behaviour, load-use stalls and
      branch outcomes, producing the "measured" time.

    The simulated time always lies within the analytical per-block bounds of
    {!Ipet_machine.Cost} by construction (same issue/stall/terminator model).
    Note a block's misses can exceed the lines it spans: a call that splits
    a cache line can evict that line mid-block, so the return re-fetches it
    — {!Ipet_machine.Cost.block_bounds} charges those refetches explicitly
    (found by [cinderella fuzz], see [test/corpus/regress_call_line_split.mc]).

    {b Implementation}: {!create} pre-decodes the program into flat,
    integer-indexed structures — dense block/edge/call-site counter slots,
    per-instruction i-cache (tag index, line) pairs, a static issue+stall
    cost table per block, and pre-resolved callees — and context-qualified
    counters live in a calling-context tree descended in O(1) per call.
    The execution loop touches no hashtable and performs no timing
    analysis; observable behaviour is identical to a direct interpreter,
    at roughly an order of magnitude higher throughput. *)

exception Runtime_error of string
exception Out_of_fuel

type t

val create :
  ?mach:Ipet_machine.Machine.t ->
  ?cache:Ipet_machine.Icache.config ->
  ?dcache:Ipet_machine.Icache.config ->
  ?stack_words:int ->
  ?fuel:int ->
  ?profile:bool ->
  Ipet_isa.Prog.t ->
  init:(int * Ipet_isa.Value.t) list ->
  t
(** Build a machine with initialized global memory. [mach] (default
    {!Ipet_machine.Machine.e32}) supplies the issue/stall/terminator
    timings the decode tables are built from; [cache] defaults to the
    machine's own fetch configuration. [fuel] bounds the number
    of executed basic blocks (default 50 million). Without [dcache], data
    accesses cost a flat latency; with it, loads are cached (write-through,
    no-allocate stores bypass it). With [profile] (default off), the machine
    additionally attributes cycles to basic blocks and tallies i-cache
    hits/misses per cache set — see {!block_cycles} and
    {!icache_line_stats}; timing and all other counters are unchanged. *)

val program : t -> Ipet_isa.Prog.t
val layout : t -> Ipet_isa.Layout.t

val call : t -> string -> Ipet_isa.Value.t list -> Ipet_isa.Value.t option
(** Execute a function with the given arguments; statistics accumulate.
    @raise Runtime_error on memory faults, division by zero, stack overflow,
    or argument mismatch.
    @raise Out_of_fuel when the fuel budget is exhausted (e.g. a loop whose
    bound annotation would have been wrong). *)

val reset_memory : t -> init:(int * Ipet_isa.Value.t) list -> unit
(** Restore global memory and the stack pointer; the cache keeps its state
    (used for warm-cache best-case measurements). *)

val reset_stats : t -> unit
(** Zero cycles and counters; cache contents are kept. *)

val flush_cache : t -> unit

val write_global : t -> string -> int -> Ipet_isa.Value.t -> unit
(** [write_global m name index v] stores into [name[index]] (index 0 for
    scalars). @raise Runtime_error on unknown globals or bad indices. *)

val read_global : t -> string -> int -> Ipet_isa.Value.t

val cycles : t -> int
val instructions : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
val dcache_hits : t -> int
val dcache_misses : t -> int

val block_count : t -> func:string -> block:int -> int
val block_counts : t -> ((string * int) * int) list
(** All (function, block) execution counts, including zero entries for
    never-executed blocks of functions that were entered. *)

val profiling : t -> bool
(** Whether the machine was created with [~profile:true]. *)

val block_cycles : t -> ((string * int) * int) list
(** Per (function, block): cycles attributed to the block itself — issue,
    stall, i-cache miss and dcache penalty cycles incurred while executing
    it, terminator included, callee time excluded. Empty unless profiling.
    Summing the list gives exactly {!cycles} of the run. *)

val icache_line_stats : t -> (int * int) array
(** Per i-cache set: (hits, misses) fetch tallies. Empty unless
    profiling. *)

val edge_count : t -> func:string -> src:int -> dst:int -> int
val call_count : t -> caller:string -> block:int -> occurrence:int -> int

val set_block_hook : t -> (string -> int -> int -> unit) -> unit
(** [set_block_hook m f] calls [f func block cycle_count] at every
    basic-block entry; used by {!Trace}. *)

val clear_block_hook : t -> unit

(** {1 Context-qualified counters}

    The IPET analysis gives each call path from the root its own copy of the
    callee's flow variables; these counters report executions per call path
    so the analysis' structural constraints can be validated against real
    runs instance by instance. A path is the chain of call sites
    [(caller, block, occurrence)] from the root call. *)

type site = string * int * int

val ctx_block_count : t -> path:site list -> func:string -> block:int -> int
val ctx_edge_count : t -> path:site list -> func:string -> src:int -> dst:int -> int
val ctx_call_count :
  t -> path:site list -> caller:string -> block:int -> occurrence:int -> int
val ctx_entry_count : t -> path:site list -> func:string -> int
(** How many times the instance at this path was entered. *)

(** {1 Exposed internals} *)

val alu : Ipet_isa.Instr.alu_op -> int -> int -> int
(** The integer ALU: 32-bit wrapping arithmetic ({!Ipet_isa.Value.wrap32}),
    6-bit shift-amount masking with the 63 clamp, and wrapping
    [min_int32 / -1]. Exposed so tests can assert it never drifts from
    {!Ipet_lang.Optimize.fold_alu}.
    @raise Runtime_error on division or modulo by zero. *)
