module Pc = Par_compat

type task = unit -> unit

(* one queue per worker; guarded by its own lock. Workers pop their own
   queue first and steal from siblings in ring order when it is empty. *)
type deque = { dlock : Pc.Lock.t; q : task Queue.t }

type t = {
  deques : deque array;  (* [||] for a sequential pool *)
  owners : int array;    (* domain id of each worker, written at startup *)
  mutable workers : unit Pc.handle array;
  waiter : Pc.Waiter.t;
  stop : bool Atomic.t;
  n_tasks : int Atomic.t;
  n_steals : int Atomic.t;
  rr : int Atomic.t;     (* round-robin slot for external submissions *)
}

type stats = { tasks : int; steals : int }

let parallel t = Array.length t.deques > 0
let jobs t = if parallel t then Array.length t.deques else 1
let stats t = { tasks = Atomic.get t.n_tasks; steals = Atomic.get t.n_steals }

(* --- futures -------------------------------------------------------------- *)

type 'a state =
  | Pending of (unit -> 'a)
  | Running
  | Done of 'a
  | Raised of exn

type 'a future = 'a state Atomic.t

(* Run the future's thunk if nobody else has claimed it. Exactly one
   claimant transitions Pending -> Running, so the thunk runs once. *)
let force t (fut : 'a future) =
  match Atomic.get fut with
  | Pending f as prev ->
    if Atomic.compare_and_set fut prev Running then begin
      (match f () with
       | v -> Atomic.set fut (Done v)
       | exception e -> Atomic.set fut (Raised e));
      if parallel t then Pc.Waiter.signal t.waiter
    end
  | Running | Done _ | Raised _ -> ()

(* --- queues --------------------------------------------------------------- *)

let my_worker_index t =
  let id = Pc.domain_id () in
  let n = Array.length t.owners in
  let rec find i = if i >= n then None else if t.owners.(i) = id then Some i else find (i + 1) in
  find 0

let push t slot task =
  let d = t.deques.(slot) in
  Pc.Lock.with_lock d.dlock (fun () -> Queue.push task d.q);
  Pc.Waiter.signal t.waiter

let try_pop t slot =
  let d = t.deques.(slot) in
  Pc.Lock.with_lock d.dlock (fun () -> Queue.take_opt d.q)

(* [me = Some i]: worker i (own queue first, then steal in ring order).
   [me = None]: an outsider helping during await (every take is a steal). *)
let take_task t ~me =
  let n = Array.length t.deques in
  let own, start =
    match me with
    | Some i -> (try_pop t i, i + 1)
    | None -> (None, Atomic.get t.rr)
  in
  match own with
  | Some _ as task -> task
  | None ->
    let skip = match me with Some i -> i | None -> -1 in
    let rec scan k =
      if k >= n then None
      else
        let slot = (start + k) mod n in
        if slot = skip then scan (k + 1)
        else
          match try_pop t slot with
          | Some _ as task ->
            Atomic.incr t.n_steals;
            task
          | None -> scan (k + 1)
    in
    scan 0

let worker_loop t i () =
  t.owners.(i) <- Pc.domain_id ();
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match take_task t ~me:(Some i) with
      | Some task -> task (); loop ()
      | None ->
        (* re-check under a fresh generation so a signal sent between the
           last empty scan and the wait is never missed *)
        let gen = Pc.Waiter.generation t.waiter in
        (match take_task t ~me:(Some i) with
         | Some task -> task (); loop ()
         | None ->
           if Atomic.get t.stop then ()
           else begin
             Pc.Waiter.wait t.waiter ~gen;
             loop ()
           end)
  in
  loop ()

(* --- lifecycle ------------------------------------------------------------ *)

let create ~jobs:n =
  let n = if n >= 2 && Pc.available then n else 1 in
  let t =
    { deques =
        (if n <= 1 then [||]
         else Array.init n (fun _ -> { dlock = Pc.Lock.create (); q = Queue.create () }));
      owners = Array.make n (-1);
      workers = [||];
      waiter = Pc.Waiter.create ();
      stop = Atomic.make false;
      n_tasks = Atomic.make 0;
      n_steals = Atomic.make 0;
      rr = Atomic.make 0 }
  in
  if n > 1 then t.workers <- Array.init n (fun i -> Pc.spawn (worker_loop t i));
  t

let shutdown t =
  if Array.length t.workers > 0 then begin
    Atomic.set t.stop true;
    Pc.Waiter.signal t.waiter;
    Array.iter Pc.join t.workers;
    t.workers <- [||]
  end

(* --- submission and await ------------------------------------------------- *)

let submit t f =
  let fut = Atomic.make (Pending f) in
  Atomic.incr t.n_tasks;
  if parallel t then begin
    let slot =
      match my_worker_index t with
      | Some i -> i
      | None ->
        (Atomic.fetch_and_add t.rr 1) mod Array.length t.deques
    in
    push t slot (fun () -> force t fut)
  end;
  fut

let rec await t fut =
  match Atomic.get fut with
  | Done v -> v
  | Raised e -> raise e
  | Pending _ ->
    force t fut;
    await t fut
  | Running ->
    (* someone else is computing it: help with other queued work, and only
       sleep when there is none *)
    let gen = Pc.Waiter.generation t.waiter in
    (match Atomic.get fut with
     | Done v -> v
     | Raised e -> raise e
     | Pending _ | Running ->
       (match take_task t ~me:(my_worker_index t) with
        | Some task -> task ()
        | None -> Pc.Waiter.wait t.waiter ~gen);
       await t fut)

let map_array t f arr =
  if not (parallel t) || Array.length arr <= 1 then Array.map f arr
  else begin
    let futures = Array.map (fun x -> submit t (fun () -> f x)) arr in
    (* awaiting by index makes results — and the surfaced exception, if
       any — independent of completion order *)
    Array.map (fun fut -> await t fut) futures
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* --- default pool --------------------------------------------------------- *)

let current_default = ref (create ~jobs:1)

let default () = !current_default

let set_default ~jobs =
  shutdown !current_default;
  current_default := create ~jobs

let () = at_exit (fun () -> shutdown !current_default)
