(** Build-time feature detection for shared-memory parallelism.

    The implementation behind this interface is selected by the build (see
    the dune rules): on OCaml 5 it wraps [Domain], the stdlib [Mutex] and
    [Condition]; on OCaml 4 every primitive degrades to its sequential
    meaning ([spawn] runs the thunk immediately, locks are no-ops). The
    degradation is sound because without domains there is no concurrency to
    guard against — a {!Pool} built on this shim simply runs everything on
    the calling thread, byte-identical to a [--jobs 1] run. *)

val available : bool
(** [true] when [spawn] creates a real domain; [false] on the sequential
    fallback. *)

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count ()], or [1] on the fallback. *)

val domain_id : unit -> int
(** A small integer identifying the calling domain ([0] on the fallback).
    Used to label spans, metrics and worker queues. *)

type 'a handle

val spawn : (unit -> 'a) -> 'a handle
(** Run a thunk on a fresh domain. On the fallback the thunk runs
    immediately on the calling thread and [join] returns its result. *)

val join : 'a handle -> 'a
(** Wait for a spawned thunk and return its result, re-raising its
    exception if it raised. *)

val cpu_relax : unit -> unit

(** A mutual-exclusion lock. On the fallback it is free (and safe: no
    concurrency exists without domains). *)
module Lock : sig
  type t

  val create : unit -> t

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Run the thunk holding the lock; always releases, even on raise. *)
end

(** A broadcast wakeup channel: generation-counted so sleepers never miss a
    signal sent between deciding to sleep and sleeping. *)
module Waiter : sig
  type t

  val create : unit -> t

  val generation : t -> int
  (** Read the current generation {e before} the final work re-check; pass
      it to {!wait}. *)

  val wait : t -> gen:int -> unit
  (** Block until {!signal} bumps the generation past [gen]. Returns
      immediately if it already has. *)

  val signal : t -> unit
  (** Bump the generation and wake every waiter. *)
end
