(** A work-stealing futures executor over OCaml 5 domains.

    A pool owns [jobs] worker domains, each with its own task queue;
    workers drain their own queue first and steal from siblings when it
    runs dry. Tasks may submit further tasks ({!map_array} nests freely),
    and {!await} {e helps}: a caller blocked on an unfinished future
    executes other queued tasks instead of sleeping, so nested fan-out
    cannot deadlock the pool.

    {b Determinism.} Results are delivered by position, never by completion
    order: [map_array pool f a] returns exactly [Array.map f a] whatever
    the interleaving, and if several [f x] raise, the exception of the
    smallest index is re-raised — the same one a sequential run would have
    surfaced. Everything layered on the pool (the ILP solver, the analysis
    fan-out, suite sharding) is built to keep that property end to end.

    {b Sequential mode.} With [jobs <= 1], or on OCaml 4 (see
    {!Par_compat.available}), no domains are spawned and futures become
    memoized thunks forced at {!await} — submission costs an allocation,
    and execution order is exactly the await order of the caller. Code
    written against the pool therefore needs no sequential special case. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains when [jobs >= 2] and
    domains are available; otherwise returns a sequential pool. *)

val jobs : t -> int
(** Effective parallelism: the worker count, or [1] for a sequential
    pool. *)

val parallel : t -> bool
(** [jobs t > 1] — real domains are running. *)

val shutdown : t -> unit
(** Stop and join the workers. Futures still queued are not executed by
    workers, but remain valid: {!await} forces them inline. Idempotent;
    a no-op on sequential pools. *)

(** {1 Futures} *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Schedule a thunk. On a parallel pool it is pushed on the submitting
    worker's queue (round-robin from outside the pool); on a sequential
    pool it is held unevaluated until awaited. *)

val await : t -> 'a future -> 'a
(** The thunk's result, re-raising its exception. Helps execute other
    queued tasks while waiting; forces the thunk inline if no worker has
    started it. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel map: same results, same exception behavior as
    [Array.map], in any interleaving. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Default pool}

    One process-wide pool shared by every [--jobs]-aware entry point, so
    nested parallel layers (suite sharding over constraint-set fan-out
    over branch-and-bound) share one set of domains instead of
    oversubscribing the machine. *)

val set_default : jobs:int -> unit
(** Replace the default pool (shutting the previous one down). Called once
    at CLI startup from [--jobs]. *)

val default : unit -> t
(** The current default pool; sequential until {!set_default}. *)

(** {1 Introspection} *)

type stats = {
  tasks : int;   (** futures submitted over the pool's lifetime *)
  steals : int;  (** tasks taken from a queue the taker does not own *)
}

val stats : t -> stats
