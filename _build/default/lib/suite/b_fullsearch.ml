(* fullsearch — the MPEG-2 encoder's exhaustive motion search: every
   position in a +/-4 window around the predicted block is scored with a
   16x16 sum of absolute differences, keeping the best. The SAD kernel's
   abs-branch and the min-update branch are the data-dependent parts. *)

module V = Ipet_isa.Value

let window = 4  (* +/- displacement, so (2*4+1)^2 = 81 positions *)

let source = {|int refframe[1024];
int blk[256];
int best_cost; int best_dx; int best_dy;

int dist1(int x, int y) {
  int i; int j; int t; int s;
  s = 0;
  for (j = 0; j < 16; j = j + 1) {
    for (i = 0; i < 16; i = i + 1) {
      t = blk[j * 16 + i] - refframe[(y + j) * 32 + (x + i)];
      if (t < 0)
        t = 0 - t;      /* negative-diff */
      s = s + t;
    }
  }
  return s;
}

void fullsearch() {
  int dx; int dy; int d;
  best_cost = 1000000000;
  best_dx = 0;
  best_dy = 0;
  for (dy = 0 - 4; dy <= 4; dy = dy + 1) {
    for (dx = 0 - 4; dx <= 4; dx = dx + 1) {
      d = dist1(8 + dx, 8 + dy);
      if (d < best_cost) {
        best_cost = d;    /* new-minimum */
        best_dx = dx;
        best_dy = dy;
      }
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let setup ~worst m =
  let w = Ipet_sim.Interp.write_global m in
  for i = 0 to 1023 do
    (* worst: reference bright, block dark -> every diff negative and large;
       best: both zero -> diffs zero, minimum found immediately *)
    w "refframe" i (V.Vint (if worst then 255 else 0))
  done;
  for i = 0 to 255 do
    w "blk" i (V.Vint 0)
  done

let benchmark =
  let func = "fullsearch" in
  { Bspec.name = "fullsearch";
    description = "MPEG2 encoder frame search routine";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"dist1" ~line:(l "for (j = 0") ~lo:16 ~hi:16;
        Ipet.Annotation.loop ~func:"dist1" ~line:(l "for (i = 0") ~lo:16 ~hi:16;
        Ipet.Annotation.loop ~func ~line:(l "for (dy = 0") ~lo:(2 * window + 1)
          ~hi:(2 * window + 1);
        Ipet.Annotation.loop ~func ~line:(l "for (dx = 0") ~lo:(2 * window + 1)
          ~hi:(2 * window + 1) ];
    functional = [];
    worst_data = [ Bspec.dataset "max-mismatch" ~setup:(setup ~worst:true) ];
    best_data = [ Bspec.dataset "perfect-match" ~setup:(setup ~worst:false) ] }
