(* ludcmp — LU decomposition with forward/backward substitution on a 5x5
   float system (Mälardalen ludcmp, without pivoting): triangular loop
   nests whose totals the functionality constraints pin down. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let n = 5

let source = {|float lu[25];
float b_vec[5];
float y_vec[5];
float x_vec[5];

void ludcmp() {
  int i; int j; int k;
  float w;
  /* decomposition */
  for (i = 0; i < 4; i = i + 1) {
    for (j = i + 1; j < 5; j = j + 1) {
      w = lu[j * 5 + i] / lu[i * 5 + i];
      lu[j * 5 + i] = w;
      for (k = i + 1; k < 5; k = k + 1) {
        lu[j * 5 + k] = lu[j * 5 + k] - w * lu[i * 5 + k];   /* elim */
      }
    }
  }
  /* forward substitution */
  for (i = 0; i < 5; i = i + 1) {
    w = b_vec[i];
    for (j = 0; j < i; j = j + 1) {
      w = w - lu[i * 5 + j] * y_vec[j];      /* fwd */
    }
    y_vec[i] = w;
  }
  /* backward substitution */
  for (i = 4; i >= 0; i = i - 1) {
    w = y_vec[i];
    for (j = i + 1; j <= 4; j = j + 1) {
      w = w - lu[i * 5 + j] * x_vec[j];      /* bwd */
    }
    x_vec[i] = w / lu[i * 5 + i];
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill m =
  for i = 0 to (n * n) - 1 do
    let r = i / n and c = i mod n in
    let v = if r = c then 10.0 +. float_of_int r else 1.0 /. float_of_int (1 + r + c) in
    Ipet_sim.Interp.write_global m "lu" i (V.Vfloat v)
  done;
  for i = 0 to n - 1 do
    Ipet_sim.Interp.write_global m "b_vec" i (V.Vfloat (float_of_int (i + 1)))
  done

let benchmark =
  let elim = F.x_at ~func:"ludcmp" ~line:(l "/* elim */") in
  let fwd = F.x_at ~func:"ludcmp" ~line:(l "/* fwd */") in
  let bwd = F.x_at ~func:"ludcmp" ~line:(l "/* bwd */") in
  let open F in
  { Bspec.name = "ludcmp";
    description = "5x5 LU decomposition and substitution (Malardalen)";
    source;
    root = "ludcmp";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (i = 0; i < 4") ~lo:(n - 1)
          ~hi:(n - 1);
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (j = i + 1; j < 5") ~lo:1
          ~hi:(n - 1);
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (k = i + 1") ~lo:1
          ~hi:(n - 1);
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (i = 0; i < 5") ~lo:n ~hi:n;
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (j = 0; j < i") ~lo:0
          ~hi:(n - 1);
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (i = 4") ~lo:n ~hi:n;
        Ipet.Annotation.loop ~func:"ludcmp" ~line:(l "for (j = i + 1; j <= 4") ~lo:0
          ~hi:(n - 1) ];
    functional =
      [ (* triangular totals for a 5x5 system *)
        elim =. const 30;  (* sum over i of (4-i)^2 = 16+9+4+1 *)
        fwd =. const 10;   (* 0+1+2+3+4 *)
        bwd =. const 10 ];
    worst_data = [ Bspec.dataset "spd-system" ~setup:fill ];
    best_data = [ Bspec.dataset "spd-system" ~setup:fill ] }
