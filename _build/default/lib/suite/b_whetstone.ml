(* whetstone — the classic synthetic floating-point benchmark, adapted to
   MC. The target has no libm, so sin/cos/exp/log/sqrt/atan are implemented
   as fixed-iteration series/Newton kernels (their loop bounds are exact,
   keeping the whole benchmark data-independent, as Table II's [0.00, 0.00]
   row requires). Module loop counts follow the classic weights for one
   "whetstone loop". *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let source = {|float e1[4];
float t; float t1; float t2;
float x; float y; float z;
float x1v; float x2v; float x3v; float x4v;
int jg; int kg; int lg;

float my_sqrt(float a) {
  float g; int it;
  if (a <= 0.0)
    return 0.0;               /* sqrt-guard */
  g = a;
  if (g > 1.0)
    g = a / 2.0;              /* sqrt-halve */
  for (it = 0; it < 6; it = it + 1)
    g = 0.5 * (g + a / g);
  return g;
}

float my_exp(float a) {
  float sum; float term; int it;
  sum = 1.0;
  term = 1.0;
  for (it = 1; it <= 12; it = it + 1) {
    term = term * a / it;
    sum = sum + term;
  }
  return sum;
}

float my_log(float a) {
  float u; float u2; float term; float sum; int it;
  if (a <= 0.0)
    return 0.0;               /* log-guard */
  u = (a - 1.0) / (a + 1.0);
  u2 = u * u;
  term = u;
  sum = 0.0;
  for (it = 0; it < 8; it = it + 1) {
    sum = sum + term / (2 * it + 1);
    term = term * u2;
  }
  return 2.0 * sum;
}

float my_sin(float a) {
  float term; float sum; int it;
  term = a;
  sum = a;
  for (it = 1; it <= 6; it = it + 1) {
    term = 0.0 - term * a * a / ((2 * it) * (2 * it + 1));
    sum = sum + term;
  }
  return sum;
}

float my_cos(float a) {
  float term; float sum; int it;
  term = 1.0;
  sum = 1.0;
  for (it = 1; it < 7; it = it + 1) {
    term = 0.0 - term * a * a / ((2 * it - 1) * (2 * it));
    sum = sum + term;
  }
  return sum;
}

float my_atan(float a) {
  float term; float sum; float a2; int it;
  term = a;
  sum = a;
  a2 = a * a;
  for (it = 1; it <= 9; it = it + 1) {
    term = 0.0 - term * a2;
    sum = sum + term / (2 * it + 1);
  }
  return sum;
}

void pa() {
  int jp;
  for (jp = 0; jp < 6; jp = jp + 1) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) / t2;
  }
}

void p0() {
  e1[jg] = e1[kg];
  e1[kg] = e1[lg];
  e1[lg] = e1[jg];
}

float p3(float a, float b) {
  float xt; float yt;
  xt = t * (a + b);
  yt = t * (xt + b);
  return (xt + yt) / t2;
}

void whetstone() {
  int i1; int i2; int i3; int i4; int i6; int i7; int i8; int i9; int i10; int i11;
  /* module 1: simple identifiers */
  x1v = 1.0; x2v = 0.0 - 1.0; x3v = 0.0 - 1.0; x4v = 0.0 - 1.0;
  for (i1 = 0; i1 < 10; i1 = i1 + 1) {
    x1v = (x1v + x2v + x3v - x4v) * t;
    x2v = (x1v + x2v - x3v + x4v) * t;
    x3v = (x1v - x2v + x3v + x4v) * t;
    x4v = (0.0 - x1v + x2v + x3v + x4v) * t;
  }
  /* module 2: array elements */
  e1[0] = 1.0; e1[1] = 0.0 - 1.0; e1[2] = 0.0 - 1.0; e1[3] = 0.0 - 1.0;
  for (i2 = 0; i2 < 12; i2 = i2 + 1) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) * t;
  }
  /* module 3: array as parameter */
  for (i3 = 0; i3 < 14; i3 = i3 + 1)
    pa();
  /* module 4: conditional jumps */
  jg = 1;
  for (i4 = 0; i4 < 345; i4 = i4 + 1) {
    if (jg == 1) jg = 2; else jg = 3;
    if (jg > 2) jg = 0; else jg = 1;
    if (jg < 1) jg = 1; else jg = 0;
  }
  /* module 6: integer arithmetic */
  jg = 1; kg = 2; lg = 3;
  for (i6 = 0; i6 < 210; i6 = i6 + 1) {
    jg = jg * (kg - jg) * (lg - kg);
    kg = lg * kg - (lg - jg) * kg;
    lg = (lg - kg) * (kg + jg);
    e1[lg & 3] = jg + kg + lg;
    e1[kg & 3] = jg * kg * lg;
  }
  /* module 7: trigonometric functions */
  x = 0.5; y = 0.5;
  for (i7 = 0; i7 < 32; i7 = i7 + 1) {
    x = t * my_atan(t2 * my_sin(x) * my_cos(x) / (my_cos(x + y) + my_cos(x - y) - 1.0));
    y = t * my_atan(t2 * my_sin(y) * my_cos(y) / (my_cos(x + y) + my_cos(x - y) - 1.0));
  }
  /* module 8: procedure calls */
  x = 1.0; y = 1.0; z = 1.0;
  for (i8 = 0; i8 < 899; i8 = i8 + 1)
    z = p3(x, y);
  /* module 9: array references */
  jg = 1; kg = 2; lg = 3;
  e1[0] = 1.0; e1[1] = 2.0; e1[2] = 3.0;
  for (i9 = 0; i9 < 616; i9 = i9 + 1)
    p0();
  /* module 10: integer arithmetic */
  jg = 2; kg = 3;
  for (i10 = 0; i10 < 10; i10 = i10 + 1) {
    jg = jg + kg;
    kg = jg + kg;
    jg = kg - jg;
    kg = kg - jg - jg;
  }
  /* module 11: standard functions */
  x = 0.75;
  for (i11 = 0; i11 < 93; i11 = i11 + 1)
    x = my_sqrt(my_exp(my_log(x) / t1));
}
|}

let l marker = Bspec.loc ~source marker

let setup m =
  let wf n v = Ipet_sim.Interp.write_global m n 0 (V.Vfloat v) in
  wf "t" 0.499975; wf "t1" 0.50025; wf "t2" 2.0

let benchmark =
  let func = "whetstone" in
  let sqrt_guard = F.x_at ~func:"my_sqrt" ~line:(l "sqrt-guard") in
  let sqrt_halve = F.x_at ~func:"my_sqrt" ~line:(l "sqrt-halve") in
  let log_guard = F.x_at ~func:"my_log" ~line:(l "log-guard") in
  let open F in
  let bound ~f marker count = Ipet.Annotation.loop ~func:f ~line:(l marker) ~lo:count ~hi:count in
  { Bspec.name = "whetstone";
    description = "Whetstone benchmark";
    source;
    root = func;
    loop_bounds =
      [ bound ~f:"my_sqrt" "for (it = 0; it < 6" 6;
        bound ~f:"my_exp" "for (it = 1; it <= 12" 12;
        bound ~f:"my_log" "for (it = 0; it < 8" 8;
        bound ~f:"my_sin" "it <= 6" 6;
        bound ~f:"my_cos" "it < 7" 6;
        bound ~f:"my_atan" "for (it = 1; it <= 9" 9;
        bound ~f:"pa" "for (jp = 0" 6;
        bound ~f:func "for (i1 = 0" 10;
        bound ~f:func "for (i2 = 0" 12;
        bound ~f:func "for (i3 = 0" 14;
        bound ~f:func "for (i4 = 0" 345;
        bound ~f:func "for (i6 = 0" 210;
        bound ~f:func "for (i7 = 0" 32;
        bound ~f:func "for (i8 = 0" 899;
        bound ~f:func "for (i9 = 0" 616;
        bound ~f:func "for (i10 = 0" 10;
        bound ~f:func "for (i11 = 0" 93 ];
    functional =
      [ (* module 11 always calls the math kernels with arguments in (0, 1),
           so the guards and the halving step never execute *)
        sqrt_guard =. const 0;
        sqrt_halve =. const 0;
        log_guard =. const 0 ];
    worst_data = [ Bspec.dataset "standard" ~setup ];
    best_data = [ Bspec.dataset "standard" ~setup ] }
