(* jpeg_fdct_islow — the accurate integer forward DCT of the IJG JPEG
   library (Loeffler-Ligtenberg-Moshovitz), adapted to MC: two passes of
   eight straight-line butterfly bodies over an 8x8 block. Control flow is
   completely data-independent. *)

module V = Ipet_isa.Value

let source = {|int data[64];

void jpeg_fdct_islow() {
  int ctr; int p;
  int tmp0; int tmp1; int tmp2; int tmp3; int tmp4; int tmp5; int tmp6; int tmp7;
  int tmp10; int tmp11; int tmp12; int tmp13;
  int z1; int z2; int z3; int z4; int z5;
  /* pass 1: process rows; gains 2 bits of precision */
  for (ctr = 0; ctr < 8; ctr = ctr + 1) {
    p = ctr * 8;
    tmp0 = data[p + 0] + data[p + 7];
    tmp7 = data[p + 0] - data[p + 7];
    tmp1 = data[p + 1] + data[p + 6];
    tmp6 = data[p + 1] - data[p + 6];
    tmp2 = data[p + 2] + data[p + 5];
    tmp5 = data[p + 2] - data[p + 5];
    tmp3 = data[p + 3] + data[p + 4];
    tmp4 = data[p + 3] - data[p + 4];
    tmp10 = tmp0 + tmp3;
    tmp13 = tmp0 - tmp3;
    tmp11 = tmp1 + tmp2;
    tmp12 = tmp1 - tmp2;
    data[p + 0] = (tmp10 + tmp11) * 4;
    data[p + 4] = (tmp10 - tmp11) * 4;
    z1 = (tmp12 + tmp13) * 4433;
    data[p + 2] = (z1 + tmp13 * 6270) >> 11;
    data[p + 6] = (z1 - tmp12 * 15137) >> 11;
    z1 = tmp4 + tmp7;
    z2 = tmp5 + tmp6;
    z3 = tmp4 + tmp6;
    z4 = tmp5 + tmp7;
    z5 = (z3 + z4) * 9633;
    tmp4 = tmp4 * 2446;
    tmp5 = tmp5 * 16819;
    tmp6 = tmp6 * 25172;
    tmp7 = tmp7 * 12299;
    z1 = 0 - z1 * 7373;
    z2 = 0 - z2 * 20995;
    z3 = 0 - z3 * 16069 + z5;
    z4 = 0 - z4 * 3196 + z5;
    data[p + 7] = (tmp4 + z1 + z3) >> 11;
    data[p + 5] = (tmp5 + z2 + z4) >> 11;
    data[p + 3] = (tmp6 + z2 + z3) >> 11;
    data[p + 1] = (tmp7 + z1 + z4) >> 11;
  }
  /* pass 2: process columns and descale */
  for (ctr = 7; ctr >= 0; ctr = ctr - 1) {
    tmp0 = data[ctr + 0] + data[ctr + 56];
    tmp7 = data[ctr + 0] - data[ctr + 56];
    tmp1 = data[ctr + 8] + data[ctr + 48];
    tmp6 = data[ctr + 8] - data[ctr + 48];
    tmp2 = data[ctr + 16] + data[ctr + 40];
    tmp5 = data[ctr + 16] - data[ctr + 40];
    tmp3 = data[ctr + 24] + data[ctr + 32];
    tmp4 = data[ctr + 24] - data[ctr + 32];
    tmp10 = tmp0 + tmp3;
    tmp13 = tmp0 - tmp3;
    tmp11 = tmp1 + tmp2;
    tmp12 = tmp1 - tmp2;
    data[ctr + 0] = (tmp10 + tmp11) >> 2;
    data[ctr + 32] = (tmp10 - tmp11) >> 2;
    z1 = (tmp12 + tmp13) * 4433;
    data[ctr + 16] = (z1 + tmp13 * 6270) >> 15;
    data[ctr + 48] = (z1 - tmp12 * 15137) >> 15;
    z1 = tmp4 + tmp7;
    z2 = tmp5 + tmp6;
    z3 = tmp4 + tmp6;
    z4 = tmp5 + tmp7;
    z5 = (z3 + z4) * 9633;
    tmp4 = tmp4 * 2446;
    tmp5 = tmp5 * 16819;
    tmp6 = tmp6 * 25172;
    tmp7 = tmp7 * 12299;
    z1 = 0 - z1 * 7373;
    z2 = 0 - z2 * 20995;
    z3 = 0 - z3 * 16069 + z5;
    z4 = 0 - z4 * 3196 + z5;
    data[ctr + 56] = (tmp4 + z1 + z3) >> 15;
    data[ctr + 40] = (tmp5 + z2 + z4) >> 15;
    data[ctr + 24] = (tmp6 + z2 + z3) >> 15;
    data[ctr + 8] = (tmp7 + z1 + z4) >> 15;
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill_block values m =
  List.iteri (fun i v -> Ipet_sim.Interp.write_global m "data" i (V.Vint v)) values

let gradient_block = List.init 64 (fun i -> ((i mod 8) * 16) + ((i / 8) * 7) - 64)

let benchmark =
  let func = "jpeg_fdct_islow" in
  { Bspec.name = "jpeg_fdct_islow";
    description = "JPEG forward discrete cosine transform";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (ctr = 0") ~lo:8 ~hi:8;
        Ipet.Annotation.loop ~func ~line:(l "for (ctr = 7") ~lo:8 ~hi:8 ];
    functional = [];
    worst_data = [ Bspec.dataset "gradient" ~setup:(fill_block gradient_block) ];
    best_data = [ Bspec.dataset "flat" ~setup:(fill_block (List.init 64 (fun _ -> 0))) ] }
