(* jpeg_idct_islow — the accurate integer inverse DCT of the IJG JPEG
   library. Unlike the forward transform it is data-dependent: a column
   whose AC terms are all zero takes a short-cut (constant fill). Worst case
   is a dense block, best case an all-DC block. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let source = {|int coef[64];
int output[64];
int ws[64];

void jpeg_idct_islow() {
  int ctr; int p;
  int tmp0; int tmp1; int tmp2; int tmp3;
  int tmp10; int tmp11; int tmp12; int tmp13;
  int z1; int z2; int z3; int z4; int z5;
  int dcval;
  /* pass 1: columns from coef to ws */
  for (ctr = 0; ctr < 8; ctr = ctr + 1) {
    if (coef[ctr + 8] == 0 && coef[ctr + 16] == 0 && coef[ctr + 24] == 0 &&
        coef[ctr + 32] == 0 && coef[ctr + 40] == 0 && coef[ctr + 48] == 0 &&
        coef[ctr + 56] == 0) {
      dcval = coef[ctr] * 4;                       /* sparse column */
      ws[ctr + 0] = dcval;
      ws[ctr + 8] = dcval;
      ws[ctr + 16] = dcval;
      ws[ctr + 24] = dcval;
      ws[ctr + 32] = dcval;
      ws[ctr + 40] = dcval;
      ws[ctr + 48] = dcval;
      ws[ctr + 56] = dcval;
    } else {
      z2 = coef[ctr + 16];                         /* dense column */
      z3 = coef[ctr + 48];
      z1 = (z2 + z3) * 4433;
      tmp2 = z1 + z3 * (0 - 15137);
      tmp3 = z1 + z2 * 6270;
      z2 = coef[ctr];
      z3 = coef[ctr + 32];
      tmp0 = (z2 + z3) * 8192;
      tmp1 = (z2 - z3) * 8192;
      tmp10 = tmp0 + tmp3;
      tmp13 = tmp0 - tmp3;
      tmp11 = tmp1 + tmp2;
      tmp12 = tmp1 - tmp2;
      tmp0 = coef[ctr + 56];
      tmp1 = coef[ctr + 40];
      tmp2 = coef[ctr + 24];
      tmp3 = coef[ctr + 8];
      z1 = tmp0 + tmp3;
      z2 = tmp1 + tmp2;
      z3 = tmp0 + tmp2;
      z4 = tmp1 + tmp3;
      z5 = (z3 + z4) * 9633;
      tmp0 = tmp0 * 2446;
      tmp1 = tmp1 * 16819;
      tmp2 = tmp2 * 25172;
      tmp3 = tmp3 * 12299;
      z1 = 0 - z1 * 7373;
      z2 = 0 - z2 * 20995;
      z3 = 0 - z3 * 16069 + z5;
      z4 = 0 - z4 * 3196 + z5;
      tmp0 = tmp0 + z1 + z3;
      tmp1 = tmp1 + z2 + z4;
      tmp2 = tmp2 + z2 + z3;
      tmp3 = tmp3 + z1 + z4;
      ws[ctr + 0] = (tmp10 + tmp3) >> 11;
      ws[ctr + 56] = (tmp10 - tmp3) >> 11;
      ws[ctr + 8] = (tmp11 + tmp2) >> 11;
      ws[ctr + 48] = (tmp11 - tmp2) >> 11;
      ws[ctr + 16] = (tmp12 + tmp1) >> 11;
      ws[ctr + 40] = (tmp12 - tmp1) >> 11;
      ws[ctr + 24] = (tmp13 + tmp0) >> 11;
      ws[ctr + 32] = (tmp13 - tmp0) >> 11;
    }
  }
  /* pass 2: rows from ws to output, with final descale */
  for (p = 0; p < 64; p = p + 8) {
    z2 = ws[p + 2];
    z3 = ws[p + 6];
    z1 = (z2 + z3) * 4433;
    tmp2 = z1 + z3 * (0 - 15137);
    tmp3 = z1 + z2 * 6270;
    tmp0 = (ws[p + 0] + ws[p + 4]) * 8192;
    tmp1 = (ws[p + 0] - ws[p + 4]) * 8192;
    tmp10 = tmp0 + tmp3;
    tmp13 = tmp0 - tmp3;
    tmp11 = tmp1 + tmp2;
    tmp12 = tmp1 - tmp2;
    tmp0 = ws[p + 7];
    tmp1 = ws[p + 5];
    tmp2 = ws[p + 3];
    tmp3 = ws[p + 1];
    z1 = tmp0 + tmp3;
    z2 = tmp1 + tmp2;
    z3 = tmp0 + tmp2;
    z4 = tmp1 + tmp3;
    z5 = (z3 + z4) * 9633;
    tmp0 = tmp0 * 2446;
    tmp1 = tmp1 * 16819;
    tmp2 = tmp2 * 25172;
    tmp3 = tmp3 * 12299;
    z1 = 0 - z1 * 7373;
    z2 = 0 - z2 * 20995;
    z3 = 0 - z3 * 16069 + z5;
    z4 = 0 - z4 * 3196 + z5;
    tmp0 = tmp0 + z1 + z3;
    tmp1 = tmp1 + z2 + z4;
    tmp2 = tmp2 + z2 + z3;
    tmp3 = tmp3 + z1 + z4;
    output[p + 0] = (tmp10 + tmp3) >> 18;
    output[p + 7] = (tmp10 - tmp3) >> 18;
    output[p + 1] = (tmp11 + tmp2) >> 18;
    output[p + 6] = (tmp11 - tmp2) >> 18;
    output[p + 2] = (tmp12 + tmp1) >> 18;
    output[p + 5] = (tmp12 - tmp1) >> 18;
    output[p + 3] = (tmp13 + tmp0) >> 18;
    output[p + 4] = (tmp13 - tmp0) >> 18;
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill values m =
  List.iteri (fun i v -> Ipet_sim.Interp.write_global m "coef" i (V.Vint v)) values

(* worst case: rows 1..6 all zero so every column walks the entire
   zero-test chain, but row 7 is non-zero so every column still takes the
   dense path *)
let dense_block =
  List.init 64 (fun i -> if i < 8 then 90 - i else if i >= 56 then 1 + i else 0)

let benchmark =
  let func = "jpeg_idct_islow" in
  let sparse = F.x_at ~func ~line:(l "/* sparse column */") in
  let dense = F.x_at ~func ~line:(l "/* dense column */") in
  let open F in
  { Bspec.name = "jpeg_idct_islow";
    description = "JPEG inverse discrete cosine transform";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (ctr = 0") ~lo:8 ~hi:8;
        Ipet.Annotation.loop ~func ~line:(l "for (p = 0") ~lo:8 ~hi:8 ];
    functional =
      [ (* every column takes exactly one of the two paths *)
        add sparse dense =. const 8 ];
    worst_data = [ Bspec.dataset "dense" ~setup:(fill dense_block) ];
    best_data =
      [ Bspec.dataset "dc-only"
          ~setup:(fill (List.init 64 (fun i -> if i = 0 then 123 else 0))) ] }
