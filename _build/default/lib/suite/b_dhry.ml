(* dhry — a Dhrystone-like synthetic mix (records and strings become arrays
   in MC): procedure calls, array shuffling, a bounded string comparison,
   and configuration-dependent setup branches. Three disjunctive
   functionality constraints describe the legal configurations; their DNF
   has 2^3 = 8 conjunctive sets of which 5 are null — reproducing the
   "8) -> 3" footnote of Table I. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let source = {|int int_glob;
int bool_glob;
int ch_1_glob; int ch_2_glob;
int arr_1_glob[50];
int arr_2_glob[2500];
int str_1_glob[30];
int str_2_glob[30];
int config_a; int config_b;

void proc_7(int in_1, int in_2) {
  int_glob = in_1 + 2 + in_2;
}

void proc_8(int loc) {
  int idx;
  idx = loc + 5;
  arr_1_glob[idx] = loc;
  arr_1_glob[idx + 1] = arr_1_glob[idx];
  arr_1_glob[idx + 30] = loc;
  arr_2_glob[idx * 50 + idx] = arr_1_glob[idx];
  arr_2_glob[idx * 50 + idx + 1] = arr_2_glob[idx * 50 + idx];
  arr_2_glob[(idx + 1) * 50 + idx] = loc;
  int_glob = 5;
}

int func_1(int ch_1, int ch_2) {
  int ch_1_loc; int ch_2_loc;
  ch_1_loc = ch_1;
  ch_2_loc = ch_1_loc;
  if (ch_2_loc != ch_2)
    return 0;                 /* chars-differ */
  ch_1_glob = ch_1_loc;
  return 1;
}

int func_2() {
  int i; int diff;
  diff = 0;
  for (i = 0; i < 30; i = i + 1) {
    if (str_1_glob[i] != str_2_glob[i]) {
      diff = diff + 1;        /* strings-differ */
    }
  }
  if (diff > 0) {
    int_glob = int_glob + diff;   /* some-differ */
    return 1;
  }
  return 0;                   /* all-equal */
}

void proc_6(int enum_val) {
  if (enum_val == 2) {
    bool_glob = 1;            /* enum-matched */
  } else {
    bool_glob = 0;            /* enum-other */
  }
}

void dhry() {
  int run; int loc_1; int loc_2; int loc_3;
  if (config_a != 0) {
    int_glob = 100;           /* cfg-a-set */
  } else {
    int_glob = 0;             /* cfg-a-clear */
  }
  if (config_b != 0) {
    bool_glob = 1;            /* cfg-b-set */
  } else {
    bool_glob = 0;            /* cfg-b-clear */
  }
  for (run = 0; run < 10; run = run + 1) {
    loc_1 = 2;
    loc_2 = 3;
    proc_7(loc_1, loc_2);
    proc_8(run % 5);
    proc_6(run % 3);
    if (func_1(65 + (run % 4), 66) != 0) {
      loc_3 = loc_1 + loc_2;  /* func1-true */
    } else {
      loc_3 = loc_1 - loc_2;  /* func1-false */
    }
    if (func_2() != 0) {
      int_glob = int_glob + loc_3;  /* func2-true */
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let setup (a, b) m =
  let w n v = Ipet_sim.Interp.write_global m n 0 (V.Vint v) in
  w "config_a" a;
  w "config_b" b;
  for i = 0 to 29 do
    Ipet_sim.Interp.write_global m "str_1_glob" i (V.Vint (65 + (i mod 26)));
    Ipet_sim.Interp.write_global m "str_2_glob" i
      (V.Vint (if i = 29 then 0 else 65 + (i mod 26)))
  done

let benchmark =
  let func = "dhry" in
  let a_set = F.x_at ~func ~line:(l "cfg-a-set") in
  let a_clear = F.x_at ~func ~line:(l "cfg-a-clear") in
  let b_set = F.x_at ~func ~line:(l "cfg-b-set") in
  let b_clear = F.x_at ~func ~line:(l "cfg-b-clear") in
  let chars_differ = F.x_at ~func:"func_1" ~line:(l "chars-differ") in
  let strings_differ = F.x_at ~func:"func_2" ~line:(l "strings-differ") in
  let some_differ = F.x_at ~func:"func_2" ~line:(l "some-differ") in
  let all_equal = F.x_at ~func:"func_2" ~line:(l "all-equal") in
  let enum_matched = F.x_at ~func:"proc_6" ~line:(l "enum-matched") in
  let func1_true = F.x_at ~func ~line:(l "func1-true") in
  let func1_false = F.x_at ~func ~line:(l "func1-false") in
  let func2_true = F.x_at ~func ~line:(l "func2-true") in
  let open F in
  { Bspec.name = "dhry";
    description = "Dhrystone benchmark";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (run = 0") ~lo:10 ~hi:10;
        Ipet.Annotation.loop ~func:"func_2" ~line:(l "for (i = 0") ~lo:30 ~hi:30 ];
    functional =
      [ (* each configuration bit takes exactly one branch *)
        (a_set =. const 1 &&. (a_clear =. const 0))
        ||. (a_set =. const 0 &&. (a_clear =. const 1));
        (b_set =. const 1 &&. (b_clear =. const 0))
        ||. (b_set =. const 0 &&. (b_clear =. const 1));
        (* deployment invariant: config_a implies config_b is clear *)
        a_set =. const 0 ||. (a_set =. const 1 &&. (b_set =. const 0));
        (* the comparison strings differ in exactly one position *)
        strings_differ =. const 10;
        some_differ =. const 10;
        all_equal =. const 0;
        func2_true =. const 10;
        (* run % 4 = 1 on 3 of the 10 runs; run % 3 = 2 on 3 of them *)
        func1_true =. const 3;
        func1_false =. const 7;
        chars_differ =. const 7;
        enum_matched =. const 3 ];
    worst_data =
      [ Bspec.dataset "a0-b0" ~setup:(setup (0, 0));
        Bspec.dataset "a0-b1" ~setup:(setup (0, 1));
        Bspec.dataset "a1-b0" ~setup:(setup (1, 0)) ];
    best_data =
      [ Bspec.dataset "a0-b0" ~setup:(setup (0, 0));
        Bspec.dataset "a1-b0" ~setup:(setup (1, 0)) ] }
