(* piksrt — straight insertion sort (Numerical Recipes' piksrt), N = 10.
   The inner while loop runs a data-dependent number of times; its total
   across the whole sort is at most N(N-1)/2, which the user supplies as a
   functionality constraint (the per-entry relative bound alone would be
   pessimistic). *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let n = 10

let source = {|int arr[10];

void piksrt() {
  int i; int j; int a;
  for (j = 1; j < 10; j = j + 1) {
    a = arr[j];
    i = j - 1;
    while (i >= 0 &&
           arr[i] > a) {
      arr[i + 1] = arr[i];    /* shift */
      i = i - 1;
    }
    arr[i + 1] = a;
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill values m =
  List.iteri (fun i v -> Ipet_sim.Interp.write_global m "arr" i (V.Vint v)) values

let benchmark =
  let func = "piksrt" in
  let shifts = F.x_at ~func ~line:(l "/* shift */") in
  let compare_test = F.x_at ~func ~line:(l "arr[i] > a") in
  let open F in
  { Bspec.name = "piksrt";
    description = "Insertion Sort";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (j = 1") ~lo:(n - 1) ~hi:(n - 1);
        Ipet.Annotation.loop ~func ~line:(l "while (i >= 0") ~lo:0 ~hi:(n - 1) ];
    functional =
      [ (* the full condition is evaluated at most Sum_j j = N(N-1)/2 times
           (the scan for element j looks at no more than j predecessors),
           and at least once per outer iteration since i = j-1 >= 0 *)
        compare_test <=. const (n * (n - 1) / 2);
        compare_test >=. const (n - 1);
        shifts <=. const (n * (n - 1) / 2) ];
    worst_data =
      [ Bspec.dataset "reverse-sorted" ~setup:(fill (List.init n (fun i -> n - i))) ];
    best_data =
      [ Bspec.dataset "already-sorted" ~setup:(fill (List.init n (fun i -> i))) ] }
