(* recon — the MPEG-2 decoder's motion-compensated prediction
   (form_component_prediction): copies a 16x16 block out of a 32x32
   reference area, with optional horizontal/vertical half-pel averaging.
   Exactly one of the four interpolation variants runs, selected by the
   half-pel flags; the worst case is the 4-point average, the best the
   plain copy. *)

module V = Ipet_isa.Value

let source = {|int refframe[1024];
int cur[256];
int px; int py; int xh; int yh;

void recon() {
  int i0; int j0; int i1; int j1; int i2; int j2; int i3; int j3;
  int s;
  s = py * 32 + px;
  if (xh == 0 && yh == 0) {
    for (j0 = 0; j0 < 16; j0 = j0 + 1) {
      for (i0 = 0; i0 < 16; i0 = i0 + 1) {
        cur[j0 * 16 + i0] = refframe[s + j0 * 32 + i0];
      }
    }
  } else {
    if (xh != 0 && yh == 0) {
      for (j1 = 0; j1 < 16; j1 = j1 + 1) {
        for (i1 = 0; i1 < 16; i1 = i1 + 1) {
          cur[j1 * 16 + i1] =
            (refframe[s + j1 * 32 + i1] + refframe[s + j1 * 32 + i1 + 1] + 1) / 2;
        }
      }
    } else {
      if (xh == 0) {
        for (j2 = 0; j2 < 16; j2 = j2 + 1) {
          for (i2 = 0; i2 < 16; i2 = i2 + 1) {
            cur[j2 * 16 + i2] =
              (refframe[s + j2 * 32 + i2] + refframe[s + (j2 + 1) * 32 + i2] + 1) / 2;
          }
        }
      } else {
        for (j3 = 0; j3 < 16; j3 = j3 + 1) {
          for (i3 = 0; i3 < 16; i3 = i3 + 1) {
            cur[j3 * 16 + i3] =
              (refframe[s + j3 * 32 + i3] + refframe[s + j3 * 32 + i3 + 1]
               + refframe[s + (j3 + 1) * 32 + i3]
               + refframe[s + (j3 + 1) * 32 + i3 + 1] + 2) / 4;
          }
        }
      }
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let setup (x, y, hx, hy) m =
  let w n v = Ipet_sim.Interp.write_global m n 0 (V.Vint v) in
  w "px" x; w "py" y; w "xh" hx; w "yh" hy;
  for i = 0 to 1023 do
    Ipet_sim.Interp.write_global m "refframe" i (V.Vint ((i * 7) mod 256))
  done

let benchmark =
  let func = "recon" in
  let bound v = Ipet.Annotation.loop ~func ~line:(l v) ~lo:16 ~hi:16 in
  { Bspec.name = "recon";
    description = "MPEG2 decoder reconstruction routine";
    source;
    root = func;
    loop_bounds =
      [ bound "for (j0"; bound "for (i0"; bound "for (j1"; bound "for (i1";
        bound "for (j2"; bound "for (i2"; bound "for (j3"; bound "for (i3" ];
    functional = [];
    worst_data = [ Bspec.dataset "both-half-pel" ~setup:(setup (7, 7, 1, 1)) ];
    best_data = [ Bspec.dataset "aligned-copy" ~setup:(setup (8, 8, 0, 0)) ] }
