(* fibcall — iterative Fibonacci (the Mälardalen WCET benchmark): a single
   counted loop, fully analyzable without any manual annotation. *)

module V = Ipet_isa.Value

let source = {|int result;

int fib(int n) {
  int i; int f0; int f1; int t;
  f0 = 0;
  f1 = 1;
  for (i = 0; i < 30; i = i + 1) {
    if (i >= n)
      return f0;
    t = f0 + f1;
    f0 = f1;
    f1 = t;
  }
  return f0;
}

void fibcall() {
  result = fib(26);
}
|}

let l marker = Bspec.loc ~source marker

let benchmark =
  { Bspec.name = "fibcall";
    description = "Iterative Fibonacci (Malardalen)";
    source;
    root = "fibcall";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"fib" ~line:(l "for (i = 0") ~lo:0 ~hi:30 ];
    functional = [];
    worst_data = [ Bspec.dataset "n=26" ];
    best_data = [ Bspec.dataset "n=26" ] }
