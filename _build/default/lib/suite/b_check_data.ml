(* check_data — the running example from Park's thesis (paper Fig. 5).
   Scans data[] for a negative element; the loop runs between 1 and DATASIZE
   iterations. Functionality constraints (16) and (17) of the paper make the
   path analysis exact. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let datasize = 10

let source = {|int data[10];

int check_data() {
  int i; int morecheck; int wrongone;
  morecheck = 1;
  i = 0;
  wrongone = 0 - 1;
  while (morecheck) {
    if (data[i] < 0) {
      wrongone = i;           /* found-negative */
      morecheck = 0;
    } else {
      i = i + 1;
      if (i >= 10)
        morecheck = 0;        /* scanned-everything */
    }
  }
  if (wrongone >= 0)
    return 0;                 /* bad-return */
  else
    return 1;
}
|}

let l marker = Bspec.loc ~source marker

let fill_data values m =
  List.iteri (fun i v -> Ipet_sim.Interp.write_global m "data" i (V.Vint v)) values

let benchmark =
  let func = "check_data" in
  let found = F.x_at ~func ~line:(l "found-negative") in
  let scanned = F.x_at ~func ~line:(l "scanned-everything") in
  let bad_return = F.x_at ~func ~line:(l "bad-return") in
  let open F in
  { Bspec.name = "check_data";
    description = "Example from Park's thesis";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "while (morecheck)") ~lo:1 ~hi:datasize ];
    functional =
      [ (* (16): the two loop exits are mutually exclusive, each at most once *)
        (found =. const 0 &&. (scanned =. const 1))
        ||. (found =. const 1 &&. (scanned =. const 0));
        (* (17): 'return 0' runs exactly when a negative was found *)
        found =. bad_return ];
    worst_data =
      [ Bspec.dataset "all-valid" ~setup:(fill_data (List.init datasize (fun i -> i)));
        Bspec.dataset "negative-last"
          ~setup:(fill_data (List.init datasize (fun i -> if i = datasize - 1 then -1 else i))) ];
    best_data =
      [ Bspec.dataset "negative-first"
          ~setup:(fill_data (List.init datasize (fun i -> if i = 0 then -7 else i))) ] }
