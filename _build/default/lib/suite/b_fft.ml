(* fft — iterative radix-2 decimation-in-time FFT on 32 complex points.
   Stage twiddle roots are precomputed constants (the target has no libm).
   All loop totals are fixed by N, which the functionality constraints
   state; only the carry loop of the bit reversal needs them (its per-entry
   trip count is data... index-dependent). *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let n = 32

let source = {|float xr[32];
float xi[32];
float wr_s[5] = { -1.0, 0.0, 0.70710678118654752, 0.92387953251128674, 0.98078528040323044 };
float wi_s[5] = { 0.0, -1.0, -0.70710678118654752, -0.38268343236508977, -0.19509032201612825 };

void fft() {
  int i; int j; int k; int s; int le; int le2; int ip;
  float tr; float ti; float ur; float ui; float sr; float si; float t;
  j = 0;
  for (i = 0; i < 31; i = i + 1) {
    if (i < j) {
      tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;   /* swap */
      ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    k = 16;
    while (k <= j) {    /* carry */
      j = j - k;
      k = k / 2;
    }
    j = j + k;
  }
  le = 1;
  for (s = 0; s < 5; s = s + 1) {
    le2 = le;
    le = le * 2;
    ur = 1.0;
    ui = 0.0;
    sr = wr_s[s];
    si = wi_s[s];
    for (j = 0; j < le2; j = j + 1) {
      for (k = j; k < 32; k = k + le) {
        ip = k + le2;                            /* butterfly */
        tr = xr[ip] * ur - xi[ip] * ui;
        ti = xr[ip] * ui + xi[ip] * ur;
        xr[ip] = xr[k] - tr;
        xi[ip] = xi[k] - ti;
        xr[k] = xr[k] + tr;
        xi[k] = xi[k] + ti;
      }
      t = ur * sr - ui * si;                     /* twiddle update */
      ui = ur * si + ui * sr;
      ur = t;
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill_signal m =
  (* a deterministic non-trivial test signal *)
  for i = 0 to n - 1 do
    let t = float_of_int i in
    Ipet_sim.Interp.write_global m "xr" i (V.Vfloat (sin (0.7 *. t) +. (0.25 *. t)));
    Ipet_sim.Interp.write_global m "xi" i (V.Vfloat 0.0)
  done

let benchmark =
  let func = "fft" in
  let swap = F.x_at ~func ~line:(l "/* swap */") in
  let carry = F.x_at ~func ~line:(l "j = j - k;") in
  let butterfly = F.x_at ~func ~line:(l "/* butterfly */") in
  let twiddle = F.x_at ~func ~line:(l "/* twiddle update */") in
  let open F in
  { Bspec.name = "fft";
    description = "Fast Fourier Transform";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (i = 0") ~lo:(n - 1) ~hi:(n - 1);
        Ipet.Annotation.loop ~func ~line:(l "while (k <= j)") ~lo:0 ~hi:4;
        Ipet.Annotation.loop ~func ~line:(l "for (s = 0") ~lo:5 ~hi:5;
        Ipet.Annotation.loop ~func ~line:(l "for (j = 0") ~lo:1 ~hi:(n / 2);
        Ipet.Annotation.loop ~func ~line:(l "for (k = j") ~lo:1 ~hi:(n / 2) ];
    functional =
      [ (* totals fixed by N = 32 *)
        swap =. const 12;
        carry =. const 26;
        butterfly =. const ((n / 2) * 5);
        twiddle =. const 31 ];
    worst_data = [ Bspec.dataset "test-signal" ~setup:fill_signal ];
    best_data = [ Bspec.dataset "test-signal" ~setup:fill_signal ] }
