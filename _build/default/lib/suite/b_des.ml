(* des — a Feistel block cipher with the exact structure of the Data
   Encryption Standard: initial/final permutations, 16 rounds of
   expansion + key mixing + S-box substitution + P permutation, and an
   on-the-fly key schedule with per-round rotations. The permutation and
   S-box tables are synthetic (generated with a fixed seed) - DESIGN.md
   documents the substitution; what the benchmark exercises is the table
   lookups, bit loops and the 16-round structure, all of which are
   data-independent. *)

module V = Ipet_isa.Value

let source = {|int ip_tab[64] = {
  26, 6, 2, 45, 38, 11, 37, 53, 3, 10, 14, 59, 55, 9, 63, 48,
  52, 18, 60, 7, 44, 28, 20, 13, 40, 21, 15, 41, 50, 58, 56, 17,
  46, 33, 8, 24, 61, 35, 36, 4, 27, 31, 43, 22, 34, 51, 47, 16,
  54, 12, 5, 23, 30, 42, 19, 29, 25, 62, 49, 39, 32, 57, 0, 1 };
int fp_tab[64] = {
  62, 63, 2, 8, 39, 50, 1, 19, 34, 13, 9, 5, 49, 23, 10, 26,
  47, 31, 17, 54, 22, 25, 43, 51, 35, 56, 0, 40, 21, 55, 52, 41,
  60, 33, 44, 37, 38, 6, 4, 59, 24, 27, 53, 42, 20, 3, 32, 46,
  15, 58, 28, 45, 16, 7, 48, 12, 30, 61, 29, 11, 18, 36, 57, 14 };
int e_tab[48] = {
  3, 28, 10, 19, 2, 6, 4, 11, 7, 30, 22, 20, 3, 28, 31, 9,
  12, 4, 11, 29, 19, 0, 19, 17, 26, 23, 14, 17, 7, 15, 18, 14,
  31, 19, 4, 31, 25, 12, 6, 28, 21, 4, 23, 25, 12, 16, 8, 12 };
int p_tab[32] = {
  22, 27, 12, 10, 31, 11, 24, 2, 23, 5, 3, 30, 20, 14, 1, 13,
  21, 7, 18, 9, 25, 4, 16, 19, 8, 6, 15, 0, 29, 17, 26, 28 };
int sbox[512] = {
  14, 5, 14, 14, 2, 1, 3, 5, 12, 1, 1, 7, 6, 8, 6, 15, 11, 12, 7, 12, 8, 7, 13, 2, 5, 6, 12, 11, 1, 9, 15, 2,
  2, 2, 9, 9, 12, 12, 2, 10, 9, 6, 9, 5, 10, 8, 1, 8, 3, 0, 8, 3, 8, 2, 15, 15, 2, 7, 7, 3, 9, 15, 3, 7,
  11, 11, 10, 6, 5, 1, 10, 2, 7, 2, 0, 8, 0, 14, 9, 15, 15, 11, 8, 3, 13, 6, 7, 0, 7, 15, 14, 2, 12, 0, 13, 1,
  6, 5, 1, 8, 2, 11, 9, 6, 2, 12, 10, 11, 0, 9, 0, 10, 0, 10, 6, 8, 14, 3, 3, 3, 6, 13, 10, 4, 0, 7, 9, 10,
  3, 7, 9, 9, 14, 10, 6, 9, 0, 10, 2, 10, 6, 2, 8, 10, 3, 6, 9, 8, 10, 12, 12, 6, 15, 15, 8, 10, 9, 4, 5, 10,
  12, 7, 0, 9, 13, 6, 8, 9, 5, 0, 1, 9, 10, 2, 8, 1, 14, 10, 8, 11, 7, 9, 7, 14, 9, 14, 14, 5, 4, 9, 2, 8,
  0, 2, 12, 15, 8, 2, 13, 7, 0, 1, 14, 7, 4, 9, 3, 10, 6, 10, 14, 12, 7, 5, 6, 6, 1, 15, 14, 2, 13, 0, 0, 0,
  12, 4, 6, 12, 13, 7, 3, 5, 15, 0, 11, 3, 13, 11, 9, 9, 10, 13, 6, 6, 0, 8, 3, 12, 3, 5, 5, 10, 15, 4, 8, 4,
  14, 6, 6, 4, 1, 14, 1, 7, 0, 4, 14, 0, 14, 5, 1, 2, 7, 15, 7, 8, 2, 1, 9, 12, 5, 12, 0, 1, 15, 4, 11, 9,
  1, 15, 8, 9, 10, 15, 6, 9, 13, 3, 15, 15, 1, 13, 3, 14, 9, 5, 12, 9, 3, 2, 10, 8, 11, 9, 14, 10, 12, 3, 8, 1,
  8, 11, 7, 12, 5, 1, 11, 5, 11, 15, 13, 3, 15, 12, 4, 2, 3, 10, 10, 6, 13, 12, 6, 14, 8, 15, 3, 6, 11, 8, 7, 9,
  2, 8, 14, 3, 10, 0, 3, 5, 4, 1, 10, 4, 14, 1, 4, 6, 0, 3, 4, 9, 6, 8, 12, 10, 6, 13, 6, 7, 10, 8, 1, 7,
  6, 0, 11, 6, 4, 5, 7, 8, 15, 3, 9, 10, 3, 1, 0, 5, 4, 7, 14, 10, 14, 10, 2, 6, 12, 4, 11, 8, 2, 7, 4, 15,
  3, 11, 5, 12, 11, 10, 5, 0, 15, 2, 0, 15, 3, 8, 2, 11, 9, 10, 2, 1, 10, 14, 12, 6, 4, 1, 3, 5, 1, 5, 0, 10,
  10, 0, 12, 5, 10, 7, 11, 1, 11, 5, 0, 7, 1, 13, 4, 12, 6, 15, 4, 3, 7, 5, 4, 0, 1, 8, 4, 4, 13, 1, 0, 2,
  6, 13, 8, 7, 6, 5, 2, 0, 11, 3, 2, 5, 13, 13, 15, 9, 2, 12, 10, 9, 7, 6, 9, 3, 12, 14, 0, 4, 3, 6, 10, 6 };
int pc2a[24] = {
  1, 3, 14, 18, 8, 21, 16, 13, 10, 24, 27, 8, 6, 20, 13, 10,
  12, 11, 3, 24, 4, 6, 8, 12 };
int pc2b[24] = {
  16, 23, 3, 3, 22, 14, 8, 20, 10, 4, 21, 21, 10, 0, 18, 19,
  12, 20, 21, 1, 20, 2, 20, 25 };
int shifts[16] = {
  1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1 };
int key_c; int key_d;
int in_hi; int in_lo;
int out_hi; int out_lo;
int subkey_a[16];
int subkey_b[16];

int rotl28(int v, int by) {
  return ((v << by) | (v >> (28 - by))) & 268435455;
}

void key_schedule() {
  int r; int k; int c; int d; int ka; int kb;
  c = key_c;
  d = key_d;
  for (r = 0; r != 16; r = r + 1) {
    c = rotl28(c, shifts[r]);
    d = rotl28(d, shifts[r]);
    ka = 0;
    for (k = 0; k < 24; k = k + 1) {       /* pc2a loop */
      ka = (ka << 1) | ((c >> pc2a[k]) & 1);
    }
    kb = 0;
    for (k = 0; k != 24; k = k + 1) {      /* pc2b loop */
      kb = (kb << 1) | ((d >> pc2b[k]) & 1);
    }
    subkey_a[r] = ka;
    subkey_b[r] = kb;
  }
}

int feistel(int r, int ka, int kb) {
  int k; int expanded_hi; int expanded_lo; int sboxed; int result; int chunk;
  expanded_hi = 0;
  for (k = 0; k <= 23; k = k + 1) {        /* expand hi */
    expanded_hi = (expanded_hi << 1) | ((r >> e_tab[k]) & 1);
  }
  expanded_lo = 0;
  for (k = 24; k < 48; k = k + 1) {
    expanded_lo = (expanded_lo << 1) | ((r >> e_tab[k]) & 1);
  }
  expanded_hi = expanded_hi ^ ka;
  expanded_lo = expanded_lo ^ kb;
  sboxed = 0;
  for (k = 0; k < 4; k = k + 1) {
    chunk = (expanded_hi >> (k * 6)) & 63;
    sboxed = (sboxed << 4) | sbox[k * 64 + chunk];
  }
  for (k = 4; k < 8; k = k + 1) {
    chunk = (expanded_lo >> ((k - 4) * 6)) & 63;
    sboxed = (sboxed << 4) | sbox[k * 64 + chunk];
  }
  result = 0;
  for (k = 0; k <= 31; k = k + 1) {        /* p loop */
    result = (result << 1) | ((sboxed >> p_tab[k]) & 1);
  }
  return result;
}

void des() {
  int r; int k; int bit; int left; int right; int tmp;
  key_schedule();
  left = 0;
  right = 0;
  for (k = 0; k < 32; k = k + 1) {
    bit = ip_tab[k];
    if (bit < 32) {
      left = (left << 1) | ((in_lo >> bit) & 1);
    } else {
      left = (left << 1) | ((in_hi >> (bit - 32)) & 1);
    }
  }
  for (k = 32; k < 64; k = k + 1) {
    bit = ip_tab[k];
    if (bit < 32) {
      right = (right << 1) | ((in_lo >> bit) & 1);
    } else {
      right = (right << 1) | ((in_hi >> (bit - 32)) & 1);
    }
  }
  for (r = 0; r < 16; r = r + 1) {
    tmp = right;
    right = left ^ feistel(right, subkey_a[r], subkey_b[r]);
    left = tmp;
  }
  out_hi = 0;
  out_lo = 0;
  for (k = 0; k != 32; k = k + 1) {        /* fp hi */
    bit = fp_tab[k];
    if (bit < 32) {
      out_hi = (out_hi << 1) | ((right >> bit) & 1);
    } else {
      out_hi = (out_hi << 1) | ((left >> (bit - 32)) & 1);
    }
  }
  for (k = 32; k != 64; k = k + 1) {       /* fp lo */
    bit = fp_tab[k];
    if (bit < 32) {
      out_lo = (out_lo << 1) | ((right >> bit) & 1);
    } else {
      out_lo = (out_lo << 1) | ((left >> (bit - 32)) & 1);
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let setup (khi, klo, phi, plo) m =
  let w n v = Ipet_sim.Interp.write_global m n 0 (V.Vint v) in
  w "key_c" khi; w "key_d" klo; w "in_hi" phi; w "in_lo" plo

let benchmark =
  let func = "des" in
  let bound ~f marker count =
    Ipet.Annotation.loop ~func:f ~line:(l marker) ~lo:count ~hi:count
  in
  { Bspec.name = "des";
    description = "Data Encryption Standard";
    source;
    root = func;
    loop_bounds =
      [ bound ~f:"key_schedule" "for (r = 0; r != 16" 16;
        bound ~f:"key_schedule" "/* pc2a loop */" 24;
        bound ~f:"key_schedule" "/* pc2b loop */" 24;
        bound ~f:"feistel" "/* expand hi */" 24;
        bound ~f:"feistel" "for (k = 24; k < 48" 24;
        bound ~f:"feistel" "for (k = 0; k < 4;" 4;
        bound ~f:"feistel" "for (k = 4; k < 8" 4;
        bound ~f:"feistel" "/* p loop */" 32;
        bound ~f:"des" "for (r = 0; r < 16" 16;
        bound ~f:"des" "for (k = 0; k < 32" 32;
        bound ~f:"des" "for (k = 32; k < 64" 32;
        bound ~f:"des" "/* fp hi */" 32;
        bound ~f:"des" "/* fp lo */" 32 ];
    functional = [];
    worst_data =
      [ Bspec.dataset "vector-1"
          ~setup:(setup (0x0F1E2D3, 0x4C5B6A7, 0x13579BDF, 0x2468ACE0)) ];
    best_data =
      [ Bspec.dataset "vector-1"
          ~setup:(setup (0x0F1E2D3, 0x4C5B6A7, 0x13579BDF, 0x2468ACE0)) ] }
