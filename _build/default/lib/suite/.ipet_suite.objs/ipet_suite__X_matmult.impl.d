lib/suite/x_matmult.ml: Bspec Ipet Ipet_isa Ipet_sim
