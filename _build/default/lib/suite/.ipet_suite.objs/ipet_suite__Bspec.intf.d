lib/suite/bspec.mli: Ipet Ipet_isa Ipet_lang Ipet_machine Ipet_sim
