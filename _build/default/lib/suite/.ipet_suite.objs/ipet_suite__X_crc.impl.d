lib/suite/x_crc.ml: Bspec Ipet Ipet_isa Ipet_sim List
