lib/suite/b_recon.ml: Bspec Ipet Ipet_isa Ipet_sim
