lib/suite/b_matgen.ml: Bspec Ipet Ipet_isa Ipet_sim
