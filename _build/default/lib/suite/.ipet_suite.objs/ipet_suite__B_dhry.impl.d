lib/suite/b_dhry.ml: Bspec Ipet Ipet_isa Ipet_sim
