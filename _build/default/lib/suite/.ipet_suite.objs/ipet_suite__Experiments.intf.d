lib/suite/experiments.mli: Bspec Ipet_machine
