lib/suite/suite.mli: Bspec
