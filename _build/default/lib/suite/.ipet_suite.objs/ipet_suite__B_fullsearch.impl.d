lib/suite/b_fullsearch.ml: Bspec Ipet Ipet_isa Ipet_sim
