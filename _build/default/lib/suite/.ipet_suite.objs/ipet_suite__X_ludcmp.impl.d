lib/suite/x_ludcmp.ml: Bspec Ipet Ipet_isa Ipet_sim
