lib/suite/b_jpeg_fdct.ml: Bspec Ipet Ipet_isa Ipet_sim List
