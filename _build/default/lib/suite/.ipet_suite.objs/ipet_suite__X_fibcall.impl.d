lib/suite/x_fibcall.ml: Bspec Ipet Ipet_isa
