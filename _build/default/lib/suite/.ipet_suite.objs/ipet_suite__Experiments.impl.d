lib/suite/experiments.ml: Array Bspec Hashtbl Ipet Ipet_lang Ipet_machine Ipet_sim List Suite
