lib/suite/b_piksrt.ml: Bspec Ipet Ipet_isa Ipet_sim List
