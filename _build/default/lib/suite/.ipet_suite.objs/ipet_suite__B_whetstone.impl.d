lib/suite/b_whetstone.ml: Bspec Ipet Ipet_isa Ipet_sim
