lib/suite/bspec.ml: Hashtbl Ipet Ipet_isa Ipet_lang Ipet_sim List Printf String
