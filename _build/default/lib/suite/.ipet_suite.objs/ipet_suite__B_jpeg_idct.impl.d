lib/suite/b_jpeg_idct.ml: Bspec Ipet Ipet_isa Ipet_sim List
