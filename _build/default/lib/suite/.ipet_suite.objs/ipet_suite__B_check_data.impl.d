lib/suite/b_check_data.ml: Bspec Ipet Ipet_isa Ipet_sim List
