lib/suite/x_bs.ml: Bspec Ipet Ipet_isa Ipet_sim
