lib/suite/x_fir.ml: Bspec Ipet Ipet_isa Ipet_sim
