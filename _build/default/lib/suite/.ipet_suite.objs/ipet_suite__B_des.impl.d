lib/suite/b_des.ml: Bspec Ipet Ipet_isa Ipet_sim
