lib/suite/x_bsort.ml: Bspec Ipet Ipet_isa Ipet_sim List
