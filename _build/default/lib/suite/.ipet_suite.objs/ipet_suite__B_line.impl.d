lib/suite/b_line.ml: Bspec Ipet Ipet_isa Ipet_sim
