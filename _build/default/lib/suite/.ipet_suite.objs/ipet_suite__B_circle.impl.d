lib/suite/b_circle.ml: Bspec Ipet Ipet_isa Ipet_sim
