lib/suite/x_expint.ml: Bspec Ipet Ipet_isa Ipet_sim
