lib/suite/b_fft.ml: Bspec Ipet Ipet_isa Ipet_sim
