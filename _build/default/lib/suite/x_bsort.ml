(* bsort — bubble sort with the early-exit flag (Mälardalen bsort100, at
   n = 20): the outer while runs a data-dependent number of passes, at most
   n-1; sorted input exits after one pass. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let n = 20

let source = {|int arr[20];

void bsort() {
  int i; int pass; int sorted; int t;
  sorted = 0;
  pass = 0;
  while (sorted == 0 && pass < 19) {
    sorted = 1;
    for (i = 0; i < 19; i = i + 1) {
      if (arr[i] > arr[i + 1]) {
        t = arr[i];              /* swap */
        arr[i] = arr[i + 1];
        arr[i + 1] = t;
        sorted = 0;
      }
    }
    pass = pass + 1;
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill values m =
  List.iteri (fun i v -> Ipet_sim.Interp.write_global m "arr" i (V.Vint v)) values

let benchmark =
  let swaps = F.x_at ~func:"bsort" ~line:(l "/* swap */") in
  let first_pass = F.x_at ~func:"bsort" ~line:(l "sorted = 1;") in
  let open F in
  { Bspec.name = "bsort";
    description = "Bubble sort with early exit (Malardalen)";
    source;
    root = "bsort";
    loop_bounds =
      [ (* the header is the first test of a && condition, so its in-loop
           edge can be traversed once more than the body runs (the final
           pass < 19 exit): bound n, not n-1 *)
        Ipet.Annotation.loop ~func:"bsort" ~line:(l "while (sorted == 0")
          ~lo:1 ~hi:n;
        Ipet.Annotation.loop ~func:"bsort" ~line:(l "for (i = 0") ~lo:(n - 1)
          ~hi:(n - 1) ];
    functional =
      [ swaps <=. const (n * (n - 1) / 2);
        (* sorted = 0 and pass = 0 on entry: the body runs at least once *)
        first_pass >=. const 1 ];
    worst_data =
      [ Bspec.dataset "reverse-sorted" ~setup:(fill (List.init n (fun i -> n - i))) ];
    best_data =
      [ Bspec.dataset "already-sorted" ~setup:(fill (List.init n (fun i -> i))) ] }
