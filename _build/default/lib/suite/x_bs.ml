(* bs — binary search over a sorted table of 15 entries (Mälardalen): the
   loop halves the interval, so it runs at most ceil(log2(15)) + 1 = 4
   times; the user supplies that bound, exactly the kind of non-obvious
   fact the paper's annotations exist for. *)

module V = Ipet_isa.Value

let source = {|int keys[15];
int values[15];
int found_value;

int bs(int key) {
  int low; int up; int mid; int result;
  low = 0;
  up = 14;
  result = 0 - 1;
  while (low <= up) {
    mid = (low + up) / 2;
    if (keys[mid] == key) {
      result = values[mid];
      up = low - 1;            /* force exit */
    } else {
      if (keys[mid] > key) {
        up = mid - 1;
      } else {
        low = mid + 1;
      }
    }
  }
  found_value = result;
  return result;
}
|}

let l marker = Bspec.loc ~source marker

let fill m =
  for i = 0 to 14 do
    Ipet_sim.Interp.write_global m "keys" i (V.Vint (i * 10));
    Ipet_sim.Interp.write_global m "values" i (V.Vint (i * 100))
  done

let benchmark =
  { Bspec.name = "bs";
    description = "Binary search, 15 entries (Malardalen)";
    source;
    root = "bs";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"bs" ~line:(l "while (low <= up)") ~lo:1 ~hi:4 ];
    functional = [];
    worst_data =
      [ Bspec.dataset "absent-key" ~setup:fill ~args:[ V.Vint 135 ];
        Bspec.dataset "absent-low" ~setup:fill ~args:[ V.Vint (-1) ] ];
    best_data = [ Bspec.dataset "middle-key" ~setup:fill ~args:[ V.Vint 70 ] ] }
