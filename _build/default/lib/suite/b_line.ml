(* line — Bresenham line rasterizer from Gupta's thesis, drawing into a
   64x64 framebuffer. The main loop runs max(|dx|, |dy|) times, bounded by
   the framebuffer width. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let width = 64

let source = {|int frame[4096];
int x0; int y0; int x1; int y1;

void line() {
  int dx; int dy; int stepx; int stepy; int fraction;
  dx = x1 - x0;
  dy = y1 - y0;
  if (dy < 0) { dy = 0 - dy; stepy = 0 - 1; } else { stepy = 1; }
  if (dx < 0) { dx = 0 - dx; stepx = 0 - 1; } else { stepx = 1; }
  dy = dy * 2;
  dx = dx * 2;
  frame[y0 * 64 + x0] = 1;
  if (dx > dy) {
    fraction = dy - dx / 2;
    while (x0 != x1) {
      if (fraction >= 0) {
        y0 = y0 + stepy;
        fraction = fraction - dx;
      }
      x0 = x0 + stepx;
      fraction = fraction + dy;
      frame[y0 * 64 + x0] = 1;    /* x-major plot */
    }
  } else {
    fraction = dx - dy / 2;
    while (y0 != y1) {
      if (fraction >= 0) {
        x0 = x0 + stepx;
        fraction = fraction - dy;
      }
      y0 = y0 + stepy;
      fraction = fraction + dx;
      frame[y0 * 64 + x0] = 1;    /* y-major plot */
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let endpoints (ax, ay, bx, by) m =
  let w n v = Ipet_sim.Interp.write_global m n 0 (V.Vint v) in
  w "x0" ax; w "y0" ay; w "x1" bx; w "y1" by

let benchmark =
  let func = "line" in
  { Bspec.name = "line";
    description = "Line drawing routine in Gupta's thesis";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "while (x0 != x1)") ~lo:0 ~hi:(width - 1);
        Ipet.Annotation.loop ~func ~line:(l "while (y0 != y1)") ~lo:0 ~hi:(width - 1) ];
    functional = [];
    worst_data =
      [ Bspec.dataset "full-diagonal" ~setup:(endpoints (0, 0, 63, 63));
        Bspec.dataset "full-horizontal" ~setup:(endpoints (0, 0, 63, 0));
        Bspec.dataset "full-vertical" ~setup:(endpoints (0, 0, 0, 63)) ];
    best_data =
      [ Bspec.dataset "single-pixel" ~setup:(endpoints (7, 7, 7, 7)) ] }
