(** The complete benchmark set of Table I. *)

val all : Bspec.t list
(** In the paper's order: check_data, fft, piksrt, des, line, circle,
    jpeg_fdct_islow, jpeg_idct_islow, recon, fullsearch, whetstone, dhry,
    matgen. *)

val extended : Bspec.t list
(** Additional classic WCET benchmarks (Mälardalen-style): fibcall, bs,
    bsort, crc, matmult, expint, fir, ludcmp — beyond the paper's own
    evaluation set. *)

val find : string -> Bspec.t
(** Search {!all} and {!extended}.
    @raise Not_found for unknown benchmark names. *)
