(* matgen — the matrix-generation routine of the Linpack benchmark: fills an
   n x n matrix with pseudo-random values from an integer congruential
   generator and records the column norms. Control flow is data-independent,
   so the path analysis is exact. *)

module V = Ipet_isa.Value

let n = 20

let source = {|float a[400];
float bnorm[20];
int seed;

float matgen() {
  int i; int j; int init;
  float v; float norm; float total;
  init = seed;
  total = 0.0;
  for (j = 0; j < 20; j = j + 1) {
    norm = 0.0;
    for (i = 0; i < 20; i = i + 1) {
      init = (3125 * init) % 65536;
      v = ((float) init - 32768.0) / 16384.0;
      a[i * 20 + j] = v;
      norm = norm + v * v;
    }
    bnorm[j] = norm;
    total = total + norm;
  }
  return total;
}
|}

let l marker = Bspec.loc ~source marker

let benchmark =
  let func = "matgen" in
  { Bspec.name = "matgen";
    description = "Matrix routine in Linpack benchmark";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "for (j = 0") ~lo:n ~hi:n;
        Ipet.Annotation.loop ~func ~line:(l "for (i = 0") ~lo:n ~hi:n ];
    functional = [];
    worst_data =
      [ Bspec.dataset "seed-1325"
          ~setup:(fun m -> Ipet_sim.Interp.write_global m "seed" 0 (V.Vint 1325)) ];
    best_data =
      [ Bspec.dataset "seed-zero"
          ~setup:(fun m -> Ipet_sim.Interp.write_global m "seed" 0 (V.Vint 0)) ] }
