(* matmult — 5x5 integer matrix multiplication (Mälardalen matmult, scaled
   down): a fully data-independent triple loop; the analysis should be
   exact. *)

module V = Ipet_isa.Value

let n = 5

let source = {|int a_mat[25];
int b_mat[25];
int c_mat[25];

void matmult() {
  int i; int j; int k; int acc;
  for (i = 0; i < 5; i = i + 1) {
    for (j = 0; j < 5; j = j + 1) {
      acc = 0;
      for (k = 0; k < 5; k = k + 1) {
        acc = acc + a_mat[i * 5 + k] * b_mat[k * 5 + j];
      }
      c_mat[i * 5 + j] = acc;
    }
  }
}
|}

let l marker = Bspec.loc ~source marker

let fill m =
  for i = 0 to (n * n) - 1 do
    Ipet_sim.Interp.write_global m "a_mat" i (V.Vint (i + 1));
    Ipet_sim.Interp.write_global m "b_mat" i (V.Vint (2 * i))
  done

let benchmark =
  { Bspec.name = "matmult";
    description = "5x5 matrix multiplication (Malardalen)";
    source;
    root = "matmult";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"matmult" ~line:(l "for (i = 0") ~lo:n ~hi:n;
        Ipet.Annotation.loop ~func:"matmult" ~line:(l "for (j = 0") ~lo:n ~hi:n;
        Ipet.Annotation.loop ~func:"matmult" ~line:(l "for (k = 0") ~lo:n ~hi:n ];
    functional = [];
    worst_data = [ Bspec.dataset "fixed" ~setup:fill ];
    best_data = [ Bspec.dataset "fixed" ~setup:fill ] }
