(* expint — exponential integral by series (after Mälardalen expint):
   an outer term loop with an inner data-dependent branch, float-heavy. *)

module V = Ipet_isa.Value

let terms = 25

let source = {|float x_in;
float e_out;

void expint() {
  float x; float sum; float term; float fact;
  int i;
  x = x_in;
  sum = 0.0;
  fact = 1.0;
  term = 1.0;
  for (i = 1; i <= 25; i = i + 1) {
    fact = fact * i;
    term = term * x;
    if (i & 1) {
      sum = sum + term / (fact * i);      /* odd term */
    } else {
      sum = sum - term / (fact * i);      /* even term */
    }
  }
  e_out = sum;
}
|}

let l marker = Bspec.loc ~source marker

let set x m = Ipet_sim.Interp.write_global m "x_in" 0 (V.Vfloat x)

let benchmark =
  { Bspec.name = "expint";
    description = "Exponential-integral series (Malardalen)";
    source;
    root = "expint";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"expint" ~line:(l "for (i = 1") ~lo:terms
          ~hi:terms ];
    functional = [];
    worst_data = [ Bspec.dataset "x=0.8" ~setup:(set 0.8) ];
    best_data = [ Bspec.dataset "x=0.8" ~setup:(set 0.8) ] }
