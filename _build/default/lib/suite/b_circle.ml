(* circle — midpoint circle rasterizer from Gupta's thesis, plotting eight
   octant points per iteration into a 64x64 framebuffer. The loop runs while
   x <= y, i.e. about r/sqrt(2) + 1 iterations; the user bounds it by the
   value for the largest radius that fits the framebuffer. *)

module V = Ipet_isa.Value

(* radius at most 31; iterations = floor(31 / sqrt 2) + 2 = 23 *)
let max_radius = 31
let max_iters = 23

let source = {|int frame[4096];
int cx; int cy; int radius;

void plot8(int x, int y) {
  frame[(cy + y) * 64 + (cx + x)] = 1;
  frame[(cy + y) * 64 + (cx - x)] = 1;
  frame[(cy - y) * 64 + (cx + x)] = 1;
  frame[(cy - y) * 64 + (cx - x)] = 1;
  frame[(cy + x) * 64 + (cx + y)] = 1;
  frame[(cy + x) * 64 + (cx - y)] = 1;
  frame[(cy - x) * 64 + (cx + y)] = 1;
  frame[(cy - x) * 64 + (cx - y)] = 1;
}

void circle() {
  int x; int y; int d;
  x = 0;
  y = radius;
  d = 1 - radius;
  while (x <= y) {
    plot8(x, y);
    if (d < 0) {
      d = d + 2 * x + 3;        /* go east */
    } else {
      d = d + 2 * (x - y) + 5;  /* go south-east */
      y = y - 1;
    }
    x = x + 1;
  }
}
|}

let l marker = Bspec.loc ~source marker

let set_circle (x, y, r) m =
  let w n v = Ipet_sim.Interp.write_global m n 0 (V.Vint v) in
  w "cx" x; w "cy" y; w "radius" r

let benchmark =
  let func = "circle" in
  { Bspec.name = "circle";
    description = "Circle drawing routine in Gupta's thesis";
    source;
    root = func;
    loop_bounds =
      [ Ipet.Annotation.loop ~func ~line:(l "while (x <= y)") ~lo:1 ~hi:max_iters ];
    functional = [];
    worst_data =
      [ Bspec.dataset "largest-radius" ~setup:(set_circle (32, 32, max_radius)) ];
    best_data =
      [ Bspec.dataset "radius-zero" ~setup:(set_circle (32, 32, 0)) ] }
