let all =
  [ B_check_data.benchmark;
    B_fft.benchmark;
    B_piksrt.benchmark;
    B_des.benchmark;
    B_line.benchmark;
    B_circle.benchmark;
    B_jpeg_fdct.benchmark;
    B_jpeg_idct.benchmark;
    B_recon.benchmark;
    B_fullsearch.benchmark;
    B_whetstone.benchmark;
    B_dhry.benchmark;
    B_matgen.benchmark ]

(* classic WCET benchmarks beyond the paper's own set (Malardalen-style) *)
let extended =
  [ X_fibcall.benchmark;
    X_bs.benchmark;
    X_bsort.benchmark;
    X_crc.benchmark;
    X_matmult.benchmark;
    X_expint.benchmark;
    X_fir.benchmark;
    X_ludcmp.benchmark ]

let find name =
  match
    List.find_opt (fun (b : Bspec.t) -> b.Bspec.name = name) (all @ extended)
  with
  | Some b -> b
  | None -> raise Not_found
