(* fir — 16-tap finite impulse response filter over a 64-sample buffer
   (Mälardalen fir): a classic DSP double loop where the inner trip count
   is clipped near the buffer start — a bound the user must supply. *)

module V = Ipet_isa.Value
module F = Ipet.Functional

let taps = 16
let samples = 64

let source = {|int coef_q[16];
int in_buf[64];
int out_buf[64];

void fir() {
  int n; int k; int acc; int kmax;
  for (n = 0; n < 64; n = n + 1) {
    acc = 0;
    kmax = taps_avail(n);
    for (k = 0; k < kmax; k = k + 1) {
      acc = acc + coef_q[k] * in_buf[n - k];   /* mac */
    }
    out_buf[n] = acc >> 8;
  }
}

int taps_avail(int n) {
  if (n < 15)
    return n + 1;
  return 16;
}
|}

let l marker = Bspec.loc ~source marker

let fill m =
  for i = 0 to taps - 1 do
    Ipet_sim.Interp.write_global m "coef_q" i (V.Vint (128 - (i * 9)))
  done;
  for i = 0 to samples - 1 do
    Ipet_sim.Interp.write_global m "in_buf" i (V.Vint ((i * 31) land 255))
  done

let benchmark =
  let macs = F.x_at ~func:"fir" ~line:(l "/* mac */") in
  let open F in
  { Bspec.name = "fir";
    description = "16-tap FIR filter over 64 samples (Malardalen)";
    source;
    root = "fir";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"fir" ~line:(l "for (n = 0") ~lo:samples
          ~hi:samples;
        Ipet.Annotation.loop ~func:"fir" ~line:(l "for (k = 0") ~lo:1 ~hi:taps ];
    functional =
      [ (* total multiply-accumulates: 1+2+...+15 for the warm-up plus
           16 per steady-state sample *)
        macs =. const ((taps * (taps - 1) / 2) + (taps * (samples - taps + 1))) ];
    worst_data = [ Bspec.dataset "signal" ~setup:fill ];
    best_data = [ Bspec.dataset "signal" ~setup:fill ] }
