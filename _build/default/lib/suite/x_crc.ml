(* crc — CRC-16 (CCITT polynomial) over a 40-byte message, bit-serial
   (Mälardalen crc): fixed byte and bit loops, with a data-dependent
   feedback branch per bit. *)

module V = Ipet_isa.Value

let message_len = 40

let source = {|int message[40];
int crc_out;

void crc() {
  int crc; int i; int k; int byte; int xbit;
  crc = 0xffff;
  for (i = 0; i < 40; i = i + 1) {
    byte = message[i] & 0xff;
    crc = crc ^ (byte << 8);
    for (k = 0; k < 8; k = k + 1) {
      xbit = crc & 0x8000;
      crc = (crc << 1) & 0xffff;
      if (xbit != 0) {
        crc = crc ^ 0x1021;      /* feedback */
      }
    }
  }
  crc_out = crc;
}
|}

let l marker = Bspec.loc ~source marker

let fill values m =
  List.iteri
    (fun i v -> Ipet_sim.Interp.write_global m "message" i (V.Vint v))
    values

let benchmark =
  { Bspec.name = "crc";
    description = "CRC-16 over a 40-byte message (Malardalen)";
    source;
    root = "crc";
    loop_bounds =
      [ Ipet.Annotation.loop ~func:"crc" ~line:(l "for (i = 0") ~lo:message_len
          ~hi:message_len;
        Ipet.Annotation.loop ~func:"crc" ~line:(l "for (k = 0") ~lo:8 ~hi:8 ];
    functional = [];
    worst_data =
      [ Bspec.dataset "all-ones" ~setup:(fill (List.init message_len (fun _ -> 0xff)));
        Bspec.dataset "zeros" ~setup:(fill (List.init message_len (fun _ -> 0)));
        Bspec.dataset "pattern"
          ~setup:(fill (List.init message_len (fun i -> (i * 37) land 0xff))) ];
    best_data =
      [ (* the feedback branch depends on the evolving register, not simply
           on the message, so several candidates are tried *)
        Bspec.dataset "zeros" ~setup:(fill (List.init message_len (fun _ -> 0)));
        Bspec.dataset "all-ones" ~setup:(fill (List.init message_len (fun _ -> 0xff)));
        Bspec.dataset "pattern"
          ~setup:(fill (List.init message_len (fun i -> (i * 37) land 0xff))) ] }
