open Ipet_num
module SMap = Map.Make (String)

type t = { terms : Rat.t SMap.t; const : Rat.t }

let zero = { terms = SMap.empty; const = Rat.zero }
let const c = { terms = SMap.empty; const = c }
let of_int i = const (Rat.of_int i)

let var ?(coeff = Rat.one) name =
  if Rat.is_zero coeff then zero
  else { terms = SMap.singleton name coeff; const = Rat.zero }

let drop_zero c = if Rat.is_zero c then None else Some c

let add a b =
  let terms =
    SMap.union (fun _ ca cb -> drop_zero (Rat.add ca cb)) a.terms b.terms
  in
  { terms; const = Rat.add a.const b.const }

let scale k e =
  if Rat.is_zero k then zero
  else { terms = SMap.map (Rat.mul k) e.terms; const = Rat.mul k e.const }

let neg e = scale Rat.minus_one e
let sub a b = add a (neg b)

let coeff e name =
  match SMap.find_opt name e.terms with Some c -> c | None -> Rat.zero

let constant e = e.const
let vars e = List.map fst (SMap.bindings e.terms)
let fold_terms f e init = SMap.fold f e.terms init

let eval env e =
  SMap.fold (fun name c acc -> Rat.add acc (Rat.mul c (env name))) e.terms e.const

let is_const e = SMap.is_empty e.terms

let equal a b = SMap.equal Rat.equal a.terms b.terms && Rat.equal a.const b.const

let pp fmt e =
  let pp_term first name c =
    let s = Rat.sign c in
    let mag = Rat.abs c in
    if first then begin
      if s < 0 then Format.pp_print_string fmt "-";
      if not (Rat.equal mag Rat.one) then Format.fprintf fmt "%a " Rat.pp mag;
      Format.pp_print_string fmt name
    end else begin
      Format.pp_print_string fmt (if s < 0 then " - " else " + ");
      if not (Rat.equal mag Rat.one) then Format.fprintf fmt "%a " Rat.pp mag;
      Format.pp_print_string fmt name
    end
  in
  if SMap.is_empty e.terms then Rat.pp fmt e.const
  else begin
    let _ =
      SMap.fold (fun name c first -> pp_term first name c; false) e.terms true
    in
    if not (Rat.is_zero e.const) then begin
      let s = Rat.sign e.const in
      Format.pp_print_string fmt (if s < 0 then " - " else " + ");
      Format.fprintf fmt "%a" Rat.pp (Rat.abs e.const)
    end
  end

let to_string e = Format.asprintf "%a" pp e

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) k e = scale (Rat.of_int k) e
  let int = of_int
  let v name = var name
end
