(** Export of problems in the CPLEX LP text format, so that the ILPs the
    analysis builds can be inspected or handed to an external solver (the
    paper used a stand-alone ILP package). Variable names are sanitized to
    the LP-format alphabet; a name table is emitted as comments. *)

val to_string : ?name:string -> Lp_problem.t -> string
(** A complete LP file: objective, [Subject To], [General] (all variables
    are integers) and [End], preceded by a comment block mapping sanitized
    names back to the original ones. *)
