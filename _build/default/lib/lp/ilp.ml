(* Depth-first branch and bound. Each node adds bound constraints
   [x <= floor v] / [x >= ceil v] for a fractional variable of the node's LP
   relaxation. Pruning uses the incumbent: for maximization a node whose
   relaxation value is <= the incumbent objective cannot improve it (the
   objective need not be integral in general, so we prune on <=, not on
   floor). *)

open Ipet_num

type stats = { lp_calls : int; nodes : int; first_lp_integral : bool }

type result =
  | Optimal of { value : Rat.t; assignment : (string * Rat.t) list; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

exception Node_limit_exceeded

let fractional_var assignment =
  let rec go = function
    | [] -> None
    | (v, x) :: rest -> if Rat.is_integer x then go rest else Some (v, x)
  in
  go assignment

let solve ?(max_nodes = 100_000) problem =
  let maximize = problem.Lp_problem.direction = Lp_problem.Maximize in
  (* normalize to maximization so that bounding logic is uniform *)
  let base = { problem with
               Lp_problem.direction = Lp_problem.Maximize;
               objective = (if maximize then problem.Lp_problem.objective
                            else Linexpr.neg problem.Lp_problem.objective) }
  in
  let lp_calls = ref 0 in
  let nodes = ref 0 in
  let first_lp_integral = ref false in
  let incumbent = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Rat.compare value best > 0
  in
  let stats () =
    { lp_calls = !lp_calls; nodes = !nodes; first_lp_integral = !first_lp_integral }
  in
  let unbounded = ref false in
  let rec explore extra depth =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > max_nodes then raise Node_limit_exceeded;
      incr lp_calls;
      let node_problem =
        { base with Lp_problem.constraints = extra @ base.Lp_problem.constraints }
      in
      match Simplex.solve node_problem with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* The relaxation being unbounded at the root means the ILP is
           unbounded or infeasible; for IPET problems (flow polytopes with a
           unit source) feasibility is immediate, so report unbounded. *)
        if depth = 0 then unbounded := true
        else ()
      | Simplex.Optimal { value; assignment } ->
        if depth = 0 && fractional_var assignment = None then
          first_lp_integral := true;
        if !incumbent <> None && not (better value) then ()
        else begin
          match fractional_var assignment with
          | None ->
            if better value then incumbent := Some (value, assignment)
          | Some (v, x) ->
            let lo = Linexpr.sub (Linexpr.var v) (Linexpr.const (Rat.of_bigint (Rat.floor x))) in
            let hi = Linexpr.sub (Linexpr.const (Rat.of_bigint (Rat.ceil x))) (Linexpr.var v) in
            let branch_le = Lp_problem.constr ~origin:"branch" lo Lp_problem.Le in
            let branch_ge = Lp_problem.constr ~origin:"branch" hi Lp_problem.Le in
            explore (branch_le :: extra) (depth + 1);
            explore (branch_ge :: extra) (depth + 1)
        end
    end
  in
  explore [] 0;
  if !unbounded then Unbounded (stats ())
  else
    match !incumbent with
    | None -> Infeasible (stats ())
    | Some (value, assignment) ->
      let value = if maximize then value else Rat.neg value in
      Optimal { value; assignment; stats = stats () }
