open Ipet_num

(* LP-format names must start with a letter and avoid operators; our flow
   variables contain ':' and '@', so each distinct variable gets an alias *)
let build_aliases problem =
  let table = Hashtbl.create 32 in
  List.iteri
    (fun i v -> Hashtbl.replace table v (Printf.sprintf "v%d" i))
    (Lp_problem.variables problem);
  table

let append_linexpr buf aliases expr =
  let first = ref true in
  Linexpr.fold_terms
    (fun v c () ->
      let sign = Rat.sign c in
      let mag = Rat.abs c in
      if !first then begin
        first := false;
        if sign < 0 then Buffer.add_string buf "- "
      end
      else Buffer.add_string buf (if sign < 0 then " - " else " + ");
      if not (Rat.equal mag Rat.one) then begin
        Buffer.add_string buf (Rat.to_string mag);
        Buffer.add_char buf ' '
      end;
      Buffer.add_string buf (Hashtbl.find aliases v))
    expr ();
  if !first then Buffer.add_string buf "0"

let to_string ?(name = "ipet") problem =
  let aliases = build_aliases problem in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\\ %s\n" name);
  Buffer.add_string buf "\\ variable aliases:\n";
  List.iter
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "\\   %s = %s\n" (Hashtbl.find aliases v) v))
    (Lp_problem.variables problem);
  (match problem.Lp_problem.direction with
   | Lp_problem.Maximize -> Buffer.add_string buf "Maximize\n obj: "
   | Lp_problem.Minimize -> Buffer.add_string buf "Minimize\n obj: ");
  append_linexpr buf aliases problem.Lp_problem.objective;
  Buffer.add_string buf "\nSubject To\n";
  List.iteri
    (fun i (c : Lp_problem.constr) ->
      Buffer.add_string buf (Printf.sprintf " c%d: " i);
      let terms = Linexpr.sub c.Lp_problem.expr
          (Linexpr.const (Linexpr.constant c.Lp_problem.expr))
      in
      let rhs = Rat.neg (Linexpr.constant c.Lp_problem.expr) in
      append_linexpr buf aliases terms;
      let rel = match c.Lp_problem.rel with
        | Lp_problem.Le -> "<="
        | Lp_problem.Ge -> ">="
        | Lp_problem.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf " %s %s" rel (Rat.to_string rhs));
      if c.Lp_problem.origin <> "" then
        Buffer.add_string buf (Printf.sprintf "  \\ %s" c.Lp_problem.origin);
      Buffer.add_char buf '\n')
    problem.Lp_problem.constraints;
  Buffer.add_string buf "General\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (Hashtbl.find aliases v)))
    (Lp_problem.variables problem);
  Buffer.add_string buf "End\n";
  Buffer.contents buf
