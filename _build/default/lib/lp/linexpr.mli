(** Linear expressions [c + Σ aᵢ·xᵢ] over named variables with exact
    rational coefficients. The building block of LP/ILP problems and of the
    IPET structural/functionality constraints. *)

open Ipet_num

type t

val zero : t
val const : Rat.t -> t
val of_int : int -> t

val var : ?coeff:Rat.t -> string -> t
(** [var x] is the expression [1·x]; [var ~coeff x] is [coeff·x]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t

val coeff : t -> string -> Rat.t
(** Coefficient of a variable, [Rat.zero] when absent. *)

val constant : t -> Rat.t

val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val fold_terms : (string -> Rat.t -> 'a -> 'a) -> t -> 'a -> 'a

val eval : (string -> Rat.t) -> t -> Rat.t
(** Evaluate under an assignment. *)

val is_const : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Combinators for readable construction, e.g.
    [Infix.(var "x1" + int 2 * var "x2" - int 10)]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : int -> t -> t
  val int : int -> t
  val v : string -> t
end
