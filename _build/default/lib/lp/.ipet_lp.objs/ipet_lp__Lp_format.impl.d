lib/lp/lp_format.ml: Buffer Hashtbl Ipet_num Linexpr List Lp_problem Printf Rat
