lib/lp/lp_problem.mli: Format Ipet_num Linexpr Rat
