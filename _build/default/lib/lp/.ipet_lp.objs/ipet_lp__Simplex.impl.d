lib/lp/simplex.ml: Array Hashtbl Ipet_num Linexpr List Lp_problem Rat
