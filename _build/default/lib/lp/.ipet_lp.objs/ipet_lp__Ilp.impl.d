lib/lp/ilp.ml: Ipet_num Linexpr Lp_problem Rat Simplex
