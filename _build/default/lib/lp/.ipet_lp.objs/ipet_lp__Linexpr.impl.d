lib/lp/linexpr.ml: Format Ipet_num List Map Rat String
