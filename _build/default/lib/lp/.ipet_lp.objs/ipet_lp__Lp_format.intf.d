lib/lp/lp_format.mli: Lp_problem
