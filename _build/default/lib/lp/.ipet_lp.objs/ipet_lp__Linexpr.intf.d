lib/lp/linexpr.mli: Format Ipet_num Rat
