lib/lp/ilp.mli: Ipet_num Lp_problem Rat
