lib/lp/simplex.mli: Ipet_num Lp_problem Rat
