lib/lp/lp_problem.ml: Format Ipet_num Linexpr List Rat String
