type reg = int

type operand = Reg of reg | Imm of int | Fimm of float

type base = Abs of int | Frame_base

type addr = { base : base; offset : int; index : operand option }

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type fpu_op = Fadd | Fsub | Fmul | Fdiv
type cmp_op = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | Alu of alu_op * reg * operand * operand
  | Fpu of fpu_op * reg * operand * operand
  | Icmp of cmp_op * reg * operand * operand
  | Fcmp of cmp_op * reg * operand * operand
  | Mov of reg * operand
  | Itof of reg * operand
  | Ftoi of reg * operand
  | Load of reg * addr
  | Store of operand * addr
  | Call of reg option * string * operand list

type terminator =
  | Jump of int
  | Branch of reg * int * int
  | Return of operand option

let bytes_per_instr = 4

let operand_uses = function Reg r -> [ r ] | Imm _ | Fimm _ -> []

let addr_uses a = match a.index with Some op -> operand_uses op | None -> []

let defs = function
  | Alu (_, d, _, _) | Fpu (_, d, _, _) | Icmp (_, d, _, _) | Fcmp (_, d, _, _)
  | Mov (d, _) | Itof (d, _) | Ftoi (d, _) | Load (d, _) -> [ d ]
  | Store (_, _) -> []
  | Call (Some d, _, _) -> [ d ]
  | Call (None, _, _) -> []

let uses = function
  | Alu (_, _, a, b) | Fpu (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, _, a, b) ->
    operand_uses a @ operand_uses b
  | Mov (_, a) | Itof (_, a) | Ftoi (_, a) -> operand_uses a
  | Load (_, addr) -> addr_uses addr
  | Store (v, addr) -> operand_uses v @ addr_uses addr
  | Call (_, _, args) -> List.concat_map operand_uses args

let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_call = function Call _ -> true | _ -> false

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let fpu_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmp_name = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt" | Cge -> "ge"

let float_literal f =
  (* keep float immediates distinguishable from ints in the listing *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ "."

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm i -> Format.fprintf fmt "#%d" i
  | Fimm f -> Format.fprintf fmt "#%s" (float_literal f)

let pp_addr fmt a =
  (match a.base with
   | Abs w -> Format.fprintf fmt "[%d" w
   | Frame_base -> Format.fprintf fmt "[fp");
  if a.offset <> 0 then Format.fprintf fmt "+%d" a.offset;
  (match a.index with
   | Some op -> Format.fprintf fmt "+%a" pp_operand op
   | None -> ());
  Format.fprintf fmt "]"

let pp fmt = function
  | Alu (op, d, a, b) ->
    Format.fprintf fmt "%s r%d, %a, %a" (alu_name op) d pp_operand a pp_operand b
  | Fpu (op, d, a, b) ->
    Format.fprintf fmt "%s r%d, %a, %a" (fpu_name op) d pp_operand a pp_operand b
  | Icmp (op, d, a, b) ->
    Format.fprintf fmt "cmp.%s r%d, %a, %a" (cmp_name op) d pp_operand a pp_operand b
  | Fcmp (op, d, a, b) ->
    Format.fprintf fmt "fcmp.%s r%d, %a, %a" (cmp_name op) d pp_operand a pp_operand b
  | Mov (d, a) -> Format.fprintf fmt "mov r%d, %a" d pp_operand a
  | Itof (d, a) -> Format.fprintf fmt "itof r%d, %a" d pp_operand a
  | Ftoi (d, a) -> Format.fprintf fmt "ftoi r%d, %a" d pp_operand a
  | Load (d, a) -> Format.fprintf fmt "ld r%d, %a" d pp_addr a
  | Store (v, a) -> Format.fprintf fmt "st %a, %a" pp_operand v pp_addr a
  | Call (dst, f, args) ->
    (match dst with
     | Some d -> Format.fprintf fmt "call r%d, %s(" d f
     | None -> Format.fprintf fmt "call %s(" f);
    List.iteri
      (fun i a -> Format.fprintf fmt "%s%a" (if i > 0 then ", " else "") pp_operand a)
      args;
    Format.fprintf fmt ")"

let pp_terminator fmt = function
  | Jump b -> Format.fprintf fmt "jmp B%d" b
  | Branch (r, t, f) -> Format.fprintf fmt "br r%d ? B%d : B%d" r t f
  | Return None -> Format.fprintf fmt "ret"
  | Return (Some op) -> Format.fprintf fmt "ret %a" pp_operand op
