(** Machine words: the contents of E32 registers and memory cells.

    E32 keeps integers and floats in the same register file and memory; a
    word is tagged so the simulator can detect type confusion (which would
    be a compiler bug). *)

type t = Vint of int | Vfloat of float

val zero : t
val as_int : t -> int
(** @raise Invalid_argument on a float word. *)

val as_float : t -> float
(** @raise Invalid_argument on an int word. *)

val truthy : t -> bool
(** Non-zero test used by conditional branches. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
