(** E32 program containers: basic blocks, functions, whole programs.

    A basic block is a maximal straight-line instruction sequence ended by a
    single terminator, exactly the unit the paper attaches the [x_i]
    variables and the [c_i] costs to. Function calls appear {e inside}
    blocks (they do not end a block), mirroring the paper's f-edges. *)

type block = {
  id : int;                    (** index within the function *)
  instrs : Instr.t array;
  term : Instr.terminator;
  src_line : int;              (** source line of the block's first statement; 0 if unknown *)
}

type func = {
  name : string;
  nparams : int;               (** parameters are registers [0 .. nparams-1] *)
  frame_words : int;           (** words of per-activation storage (local arrays) *)
  blocks : block array;        (** entry is [blocks.(0)] *)
}

type global = {
  gname : string;
  addr : int;                  (** word address in the global segment *)
  size_words : int;
}

type t = {
  funcs : func array;
  globals : global list;
  globals_words : int;         (** total size of the global segment *)
}

val find_func : t -> string -> func
(** @raise Not_found if the program has no function of that name. *)

val find_func_opt : t -> string -> func option

val find_global : t -> string -> global
(** @raise Not_found if absent. *)

val block_size_instrs : block -> int
(** Number of fetched instructions: the block's body plus its terminator. *)

val calls_of_block : block -> string list
(** Callee names, in order of the call sites within the block. *)

val validate : t -> (unit, string) result
(** Structural sanity: non-empty functions, in-range branch targets,
    resolvable call targets, in-range global addresses. *)

val pp : Format.formatter -> t -> unit
(** Assembly-style listing of the whole program. *)

val pp_func : Format.formatter -> func -> unit
