type t = Vint of int | Vfloat of float

let zero = Vint 0

let as_int = function
  | Vint i -> i
  | Vfloat _ -> invalid_arg "Value.as_int: float word"

let as_float = function
  | Vfloat f -> f
  | Vint _ -> invalid_arg "Value.as_float: int word"

let truthy = function Vint i -> i <> 0 | Vfloat f -> f <> 0.0

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vint _, Vfloat _ | Vfloat _, Vint _ -> false

let pp fmt = function
  | Vint i -> Format.fprintf fmt "%d" i
  | Vfloat f -> Format.fprintf fmt "%g" f
