type block = {
  id : int;
  instrs : Instr.t array;
  term : Instr.terminator;
  src_line : int;
}

type func = {
  name : string;
  nparams : int;
  frame_words : int;
  blocks : block array;
}

type global = { gname : string; addr : int; size_words : int }

type t = { funcs : func array; globals : global list; globals_words : int }

let find_func_opt program name =
  Array.find_opt (fun f -> f.name = name) program.funcs

let find_func program name =
  match find_func_opt program name with
  | Some f -> f
  | None -> raise Not_found

let find_global program name =
  match List.find_opt (fun g -> g.gname = name) program.globals with
  | Some g -> g
  | None -> raise Not_found

let block_size_instrs block = Array.length block.instrs + 1

let calls_of_block block =
  Array.to_list block.instrs
  |> List.filter_map (function
    | Instr.Call (_, callee, _) -> Some callee
    | Instr.Alu _ | Instr.Fpu _ | Instr.Icmp _ | Instr.Fcmp _ | Instr.Mov _
    | Instr.Itof _ | Instr.Ftoi _ | Instr.Load _ | Instr.Store _ -> None)

let validate program =
  let error fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_func f =
    if Array.length f.blocks = 0 then error "function %s has no blocks" f.name
    else begin
      let n = Array.length f.blocks in
      let check_block acc b =
        match acc with
        | Error _ as e -> e
        | Ok () ->
          if b.id < 0 || b.id >= n then
            error "%s: block id %d out of range" f.name b.id
          else begin
            let target_ok t = t >= 0 && t < n in
            let term_ok = match b.term with
              | Instr.Jump t -> target_ok t
              | Instr.Branch (_, t1, t2) -> target_ok t1 && target_ok t2
              | Instr.Return _ -> true
            in
            if not term_ok then
              error "%s: block %d has out-of-range branch target" f.name b.id
            else begin
              let bad_call =
                List.find_opt
                  (fun callee -> find_func_opt program callee = None)
                  (calls_of_block b)
              in
              match bad_call with
              | Some callee -> error "%s: call to unknown function %s" f.name callee
              | None -> Ok ()
            end
          end
      in
      Array.fold_left check_block (Ok ()) f.blocks
    end
  in
  let funcs_ok =
    Array.fold_left
      (fun acc f -> match acc with Error _ -> acc | Ok () -> check_func f)
      (Ok ()) program.funcs
  in
  match funcs_ok with
  | Error _ as e -> e
  | Ok () ->
    let bad_global =
      List.find_opt
        (fun g -> g.addr < 0 || g.addr + g.size_words > program.globals_words)
        program.globals
    in
    (match bad_global with
     | Some g -> error "global %s out of segment bounds" g.gname
     | None -> Ok ())

let pp_func fmt f =
  Format.fprintf fmt "@[<v>%s(%d params, %d frame words):@," f.name f.nparams
    f.frame_words;
  Array.iter
    (fun b ->
      Format.fprintf fmt "B%d:" b.id;
      if b.src_line > 0 then Format.fprintf fmt "   ; line %d" b.src_line;
      Format.fprintf fmt "@,";
      Array.iter (fun i -> Format.fprintf fmt "  %a@," Instr.pp i) b.instrs;
      Format.fprintf fmt "  %a@," Instr.pp_terminator b.term)
    f.blocks;
  Format.fprintf fmt "@]"

let pp fmt program =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf fmt ".global %s @@ %d (%d words)@," g.gname g.addr
        g.size_words)
    program.globals;
  Array.iter (fun f -> Format.fprintf fmt "%a@," pp_func f) program.funcs;
  Format.fprintf fmt "@]"
