lib/isa/value.mli: Format
