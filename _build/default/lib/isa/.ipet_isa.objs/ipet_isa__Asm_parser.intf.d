lib/isa/asm_parser.mli: Prog
