lib/isa/instr.ml: Format List Printf String
