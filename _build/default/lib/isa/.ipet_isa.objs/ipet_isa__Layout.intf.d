lib/isa/layout.mli: Prog
