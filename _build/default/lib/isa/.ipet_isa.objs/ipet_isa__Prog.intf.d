lib/isa/prog.mli: Format Instr
