lib/isa/value.ml: Float Format
