lib/isa/prog.ml: Array Format Instr List
