(** Parser for the textual E32 assembly emitted by {!Prog.pp}.

    The paper's cinderella "first reads the executable code for the
    program"; this module provides the equivalent entry point — an E32
    program can be analyzed from an assembly listing alone, without MC
    source. The format round-trips: [parse (Format.asprintf "%a" Prog.pp p)]
    reconstructs [p].

    {v
    .global name @ addr (size words)
    func(nparams params, frame words frame words):
    B0:   ; line 12            -- the line comment is optional
      add r1, r2, #3
      ld r4, [8+r2]            -- absolute base, optional +offset, +index
      st r4, [fp+2+r5]         -- frame base
      call r0, callee(r1, #2)  -- result register optional
      br r3 ? B1 : B2
    B1:
      ret r1
    v} *)

exception Error of string * int  (** message, line *)

val parse : string -> Prog.t
(** @raise Error on malformed input. *)

val parse_func : string -> Prog.func
(** Parse a single function listing. @raise Error on malformed input. *)
