type t = {
  block_addrs : (string * int, int) Hashtbl.t;
  block_sizes : (string * int, int) Hashtbl.t;
  func_addrs : (string, int) Hashtbl.t;
  code_size : int;
}

let make (program : Prog.t) =
  let block_addrs = Hashtbl.create 64 in
  let block_sizes = Hashtbl.create 64 in
  let func_addrs = Hashtbl.create 16 in
  let cursor = ref 0 in
  Array.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace func_addrs f.Prog.name !cursor;
      Array.iter
        (fun (b : Prog.block) ->
          let size = Prog.block_size_instrs b * Instr.bytes_per_instr in
          Hashtbl.replace block_addrs (f.Prog.name, b.Prog.id) !cursor;
          Hashtbl.replace block_sizes (f.Prog.name, b.Prog.id) size;
          cursor := !cursor + size)
        f.Prog.blocks)
    program.Prog.funcs;
  { block_addrs; block_sizes; func_addrs; code_size = !cursor }

let block_addr t ~func ~block =
  match Hashtbl.find_opt t.block_addrs (func, block) with
  | Some a -> a
  | None -> raise Not_found

let block_size_bytes t ~func ~block =
  match Hashtbl.find_opt t.block_sizes (func, block) with
  | Some s -> s
  | None -> raise Not_found

let func_addr t name =
  match Hashtbl.find_opt t.func_addrs name with
  | Some a -> a
  | None -> raise Not_found

let code_size t = t.code_size
