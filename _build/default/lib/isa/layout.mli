(** Code-address layout.

    Assigns every basic block a byte address in a flat code space (functions
    laid out in program order, blocks in block order, fixed 4-byte
    instructions). The instruction-cache model maps these addresses to cache
    lines, so two blocks conflict in the cache exactly when their address
    ranges collide modulo the cache size — as on the real i960KB. *)

type t

val make : Prog.t -> t

val block_addr : t -> func:string -> block:int -> int
(** Byte address of the block's first instruction.
    @raise Not_found for an unknown function. *)

val block_size_bytes : t -> func:string -> block:int -> int

val func_addr : t -> string -> int
(** @raise Not_found for an unknown function. *)

val code_size : t -> int
(** Total code size in bytes. *)
