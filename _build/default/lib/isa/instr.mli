(** The E32 instruction set.

    E32 is the repo's stand-in for the Intel i960KB of the paper: a 32-bit
    load/store RISC with integer ALU, FPU, and fixed 4-byte instruction
    encoding. Programs operate over an unbounded file of virtual registers
    (the compiler is register-allocating in spirit: scalars live in
    registers, arrays in memory), a word-addressed data memory, and a
    byte-addressed code space used by the instruction cache model. *)

type reg = int
(** Virtual register number, per-function. Parameters of a function with
    [k] parameters are registers [0 .. k-1]. *)

type operand =
  | Reg of reg
  | Imm of int        (** integer immediate *)
  | Fimm of float     (** floating-point immediate *)

type base =
  | Abs of int        (** absolute word address in the global segment *)
  | Frame_base        (** base of the current activation's frame *)

type addr = {
  base : base;
  offset : int;               (** static word offset *)
  index : operand option;     (** dynamic word offset, if any *)
}
(** Effective word address: [base + offset + index]. *)

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type fpu_op = Fadd | Fsub | Fmul | Fdiv
type cmp_op = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | Alu of alu_op * reg * operand * operand
  | Fpu of fpu_op * reg * operand * operand
  | Icmp of cmp_op * reg * operand * operand  (** integer compare, result 0/1 *)
  | Fcmp of cmp_op * reg * operand * operand  (** float compare, result 0/1 *)
  | Mov of reg * operand
  | Itof of reg * operand                     (** int to float conversion *)
  | Ftoi of reg * operand                     (** float to int (truncate) *)
  | Load of reg * addr
  | Store of operand * addr
  | Call of reg option * string * operand list
      (** call a named function; the result register receives the returned
          value, if any *)

type terminator =
  | Jump of int                (** unconditional jump to a block index *)
  | Branch of reg * int * int  (** if reg <> 0 then first else second *)
  | Return of operand option

val bytes_per_instr : int
(** Fixed encoding size (4), used by the code layout and i-cache model. *)

val defs : t -> reg list
(** Registers written by the instruction. *)

val uses : t -> reg list
(** Registers read by the instruction (including address indices). *)

val is_load : t -> bool
val is_store : t -> bool
val is_call : t -> bool

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
