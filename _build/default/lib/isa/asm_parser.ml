exception Error of string * int

let fail line fmt = Format.kasprintf (fun s -> raise (Error (s, line))) fmt

(* --- per-line scanner ------------------------------------------------------ *)

type scanner = { text : string; mutable pos : int; line : int }

let skip_ws sc =
  while sc.pos < String.length sc.text
        && (sc.text.[sc.pos] = ' ' || sc.text.[sc.pos] = '\t') do
    sc.pos <- sc.pos + 1
  done

let at_end sc =
  skip_ws sc;
  sc.pos >= String.length sc.text

let peek_char sc =
  skip_ws sc;
  if sc.pos < String.length sc.text then Some sc.text.[sc.pos] else None

let expect_char sc c =
  skip_ws sc;
  if sc.pos < String.length sc.text && sc.text.[sc.pos] = c then sc.pos <- sc.pos + 1
  else fail sc.line "expected %C" c

let accept_char sc c =
  skip_ws sc;
  if sc.pos < String.length sc.text && sc.text.[sc.pos] = c then begin
    sc.pos <- sc.pos + 1;
    true
  end
  else false

let accept_string sc s =
  skip_ws sc;
  let n = String.length s in
  if sc.pos + n <= String.length sc.text && String.sub sc.text sc.pos n = s then begin
    sc.pos <- sc.pos + n;
    true
  end
  else false

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let word sc =
  skip_ws sc;
  let start = sc.pos in
  while sc.pos < String.length sc.text && is_word_char sc.text.[sc.pos] do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then fail sc.line "expected a word";
  String.sub sc.text start (sc.pos - start)

let integer sc =
  skip_ws sc;
  let start = sc.pos in
  if sc.pos < String.length sc.text && sc.text.[sc.pos] = '-' then sc.pos <- sc.pos + 1;
  while sc.pos < String.length sc.text && sc.text.[sc.pos] >= '0'
        && sc.text.[sc.pos] <= '9' do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then fail sc.line "expected an integer";
  int_of_string (String.sub sc.text start (sc.pos - start))

(* a numeric literal after '#': float when it contains . e n i *)
let immediate sc =
  skip_ws sc;
  expect_char sc '#';
  let start = sc.pos in
  let numeric c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
    || c = 'n' || c = 'a' || c = 'i' || c = 'f'
  in
  while sc.pos < String.length sc.text && numeric sc.text.[sc.pos] do
    sc.pos <- sc.pos + 1
  done;
  let lit = String.sub sc.text start (sc.pos - start) in
  if lit = "" then fail sc.line "expected a literal after #";
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') lit then
    Instr.Fimm (float_of_string lit)
  else Instr.Imm (int_of_string lit)

let register sc =
  skip_ws sc;
  if not (accept_char sc 'r') then fail sc.line "expected a register";
  integer sc

let operand sc =
  match peek_char sc with
  | Some '#' -> immediate sc
  | Some 'r' -> Instr.Reg (register sc)
  | Some c -> fail sc.line "expected an operand, found %C" c
  | None -> fail sc.line "expected an operand at end of line"

let block_ref sc =
  skip_ws sc;
  if not (accept_char sc 'B') then fail sc.line "expected a block label";
  integer sc

(* [base(+offset)?(+index)?] *)
let address sc =
  expect_char sc '[';
  let base =
    if accept_string sc "fp" then Instr.Frame_base
    else Instr.Abs (integer sc)
  in
  let offset = ref 0 in
  let index = ref None in
  while accept_char sc '+' do
    match peek_char sc with
    | Some ('#' | 'r') -> index := Some (operand sc)
    | Some _ | None -> offset := !offset + integer sc
  done;
  expect_char sc ']';
  { Instr.base; offset = !offset; index = !index }

(* --- instruction / terminator lines ---------------------------------------- *)

let alu_ops =
  [ ("add", Instr.Add); ("sub", Instr.Sub); ("mul", Instr.Mul);
    ("div", Instr.Div); ("rem", Instr.Rem); ("and", Instr.And);
    ("or", Instr.Or); ("xor", Instr.Xor); ("shl", Instr.Shl);
    ("shr", Instr.Shr) ]

let fpu_ops =
  [ ("fadd", Instr.Fadd); ("fsub", Instr.Fsub); ("fmul", Instr.Fmul);
    ("fdiv", Instr.Fdiv) ]

let cmp_ops =
  [ ("eq", Instr.Ceq); ("ne", Instr.Cne); ("lt", Instr.Clt);
    ("le", Instr.Cle); ("gt", Instr.Cgt); ("ge", Instr.Cge) ]

let three_address sc make =
  let d = register sc in
  expect_char sc ',';
  let a = operand sc in
  expect_char sc ',';
  let b = operand sc in
  make d a b

type parsed_line =
  | Pinstr of Instr.t
  | Pterm of Instr.terminator

let parse_mnemonic sc mnemonic =
  match mnemonic with
  | "mov" ->
    let d = register sc in
    expect_char sc ',';
    Pinstr (Instr.Mov (d, operand sc))
  | "itof" ->
    let d = register sc in
    expect_char sc ',';
    Pinstr (Instr.Itof (d, operand sc))
  | "ftoi" ->
    let d = register sc in
    expect_char sc ',';
    Pinstr (Instr.Ftoi (d, operand sc))
  | "ld" ->
    let d = register sc in
    expect_char sc ',';
    Pinstr (Instr.Load (d, address sc))
  | "st" ->
    let v = operand sc in
    expect_char sc ',';
    Pinstr (Instr.Store (v, address sc))
  | "call" ->
    (* either [call rD, callee(args)] or [call callee(args)] *)
    skip_ws sc;
    let saved = sc.pos in
    let dst, callee =
      if peek_char sc = Some 'r' then begin
        let w = word sc in
        if accept_char sc ',' then
          (* the word was the result register, e.g. "r0" *)
          (match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
           | Some r when w.[0] = 'r' -> (Some r, word sc)
           | Some _ | None -> fail sc.line "malformed call result register")
        else begin
          (* the word was already the callee name (starting with r) *)
          sc.pos <- saved;
          (None, word sc)
        end
      end
      else (None, word sc)
    in
    expect_char sc '(';
    let args = ref [] in
    if not (accept_char sc ')') then begin
      let rec more () =
        args := operand sc :: !args;
        if accept_char sc ',' then more () else expect_char sc ')'
      in
      more ()
    end;
    Pinstr (Instr.Call (dst, callee, List.rev !args))
  | "jmp" -> Pterm (Instr.Jump (block_ref sc))
  | "br" ->
    let r = register sc in
    expect_char sc '?';
    let t = block_ref sc in
    expect_char sc ':';
    let f = block_ref sc in
    Pterm (Instr.Branch (r, t, f))
  | "ret" ->
    if at_end sc then Pterm (Instr.Return None)
    else Pterm (Instr.Return (Some (operand sc)))
  | _ ->
    (match String.index_opt mnemonic '.' with
     | Some i ->
       let head = String.sub mnemonic 0 i in
       let tail = String.sub mnemonic (i + 1) (String.length mnemonic - i - 1) in
       let cmp =
         match List.assoc_opt tail cmp_ops with
         | Some c -> c
         | None -> fail sc.line "unknown comparison %s" tail
       in
       (match head with
        | "cmp" -> Pinstr (three_address sc (fun d a b -> Instr.Icmp (cmp, d, a, b)))
        | "fcmp" -> Pinstr (three_address sc (fun d a b -> Instr.Fcmp (cmp, d, a, b)))
        | _ -> fail sc.line "unknown mnemonic %s" mnemonic)
     | None ->
       (match List.assoc_opt mnemonic alu_ops with
        | Some op -> Pinstr (three_address sc (fun d a b -> Instr.Alu (op, d, a, b)))
        | None ->
          (match List.assoc_opt mnemonic fpu_ops with
           | Some op ->
             Pinstr (three_address sc (fun d a b -> Instr.Fpu (op, d, a, b)))
           | None -> fail sc.line "unknown mnemonic %s" mnemonic)))

(* --- whole-listing parser ---------------------------------------------------- *)

type pending_block = {
  pid : int;
  pline : int;
  mutable pinstrs : Instr.t list;  (* reversed *)
  mutable pterm : Instr.terminator option;
}

type pending_func = {
  fname : string;
  nparams : int;
  frame_words : int;
  mutable blocks : pending_block list;  (* reversed *)
}

let strip_comment text =
  (* an instruction line never contains ';' outside a comment *)
  match String.index_opt text ';' with
  | Some i -> String.sub text 0 i
  | None -> text

let header_comment_line text =
  (* "B0:   ; line 12" -> the source line number, if present *)
  match String.index_opt text ';' with
  | None -> 0
  | Some i ->
    let sc =
      { text = String.sub text (i + 1) (String.length text - i - 1); pos = 0; line = 0 }
    in
    if accept_string sc "line" then (try integer sc with Error _ -> 0) else 0

let finish_block line (b : pending_block) =
  match b.pterm with
  | None -> fail line "block B%d has no terminator" b.pid
  | Some term ->
    { Prog.id = b.pid;
      instrs = Array.of_list (List.rev b.pinstrs);
      term;
      src_line = b.pline }

let finish_func line (f : pending_func) =
  let blocks = List.rev_map (finish_block line) f.blocks in
  let blocks = List.sort (fun a b -> compare a.Prog.id b.Prog.id) blocks in
  List.iteri
    (fun i (b : Prog.block) ->
      if b.Prog.id <> i then fail line "function %s: block ids not contiguous" f.fname)
    blocks;
  { Prog.name = f.fname;
    nparams = f.nparams;
    frame_words = f.frame_words;
    blocks = Array.of_list blocks }

let parse text =
  let globals = ref [] in
  let globals_words = ref 0 in
  let funcs = ref [] in
  let current_func : pending_func option ref = ref None in
  let current_block : pending_block option ref = ref None in
  let close_func lineno =
    (match !current_func with
     | Some f -> funcs := finish_func lineno f :: !funcs
     | None -> ());
    current_func := None;
    current_block := None
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let trimmed = String.trim raw in
      if trimmed = "" then ()
      else if String.length trimmed > 7 && String.sub trimmed 0 7 = ".global" then begin
        (* .global name @ addr (size words) *)
        let sc = { text = trimmed; pos = 7; line = lineno } in
        let name = word sc in
        expect_char sc '@';
        let addr = integer sc in
        expect_char sc '(';
        let size = integer sc in
        if not (accept_string sc "words") then fail lineno "expected 'words'";
        expect_char sc ')';
        globals := { Prog.gname = name; addr; size_words = size } :: !globals;
        globals_words := max !globals_words (addr + size)
      end
      else if trimmed.[0] = 'B' && String.contains trimmed ':'
              && (match int_of_string_opt
                       (String.sub trimmed 1 (String.index trimmed ':' - 1))
                  with Some _ -> true | None -> false)
      then begin
        (* block header *)
        let colon = String.index trimmed ':' in
        let id = int_of_string (String.sub trimmed 1 (colon - 1)) in
        let src_line = header_comment_line trimmed in
        match !current_func with
        | None -> fail lineno "block header outside of a function"
        | Some f ->
          let b = { pid = id; pline = src_line; pinstrs = []; pterm = None } in
          f.blocks <- b :: f.blocks;
          current_block := Some b
      end
      else if String.length trimmed > 1
              && trimmed.[String.length trimmed - 1] = ':'
              && String.contains trimmed '(' then begin
        (* function header: name(N params, M frame words): *)
        close_func lineno;
        let sc = { text = trimmed; pos = 0; line = lineno } in
        let name = word sc in
        expect_char sc '(';
        let nparams = integer sc in
        if not (accept_string sc "params") then fail lineno "expected 'params'";
        expect_char sc ',';
        let frame = integer sc in
        if not (accept_string sc "frame") then fail lineno "expected 'frame'";
        if not (accept_string sc "words") then fail lineno "expected 'words'";
        expect_char sc ')';
        expect_char sc ':';
        current_func := Some { fname = name; nparams; frame_words = frame; blocks = [] }
      end
      else begin
        (* instruction or terminator *)
        let body = strip_comment trimmed in
        if String.trim body = "" then ()
        else begin
          let sc = { text = body; pos = 0; line = lineno } in
          let mnemonic = word sc in
          match !current_block with
          | None -> fail lineno "instruction outside of a block"
          | Some b ->
            if b.pterm <> None then fail lineno "instruction after the terminator";
            (match parse_mnemonic sc mnemonic with
             | Pinstr i -> b.pinstrs <- i :: b.pinstrs
             | Pterm t -> b.pterm <- Some t);
            if not (at_end sc) then fail lineno "trailing input"
        end
      end)
    (String.split_on_char '\n' text);
  close_func (1 + List.length (String.split_on_char '\n' text));
  let prog =
    { Prog.funcs = Array.of_list (List.rev !funcs);
      globals = List.rev !globals;
      globals_words = !globals_words }
  in
  (match Prog.validate prog with
   | Ok () -> ()
   | Error msg -> fail 0 "invalid program: %s" msg);
  prog

let parse_func text =
  let prog = parse text in
  match prog.Prog.funcs with
  | [| f |] -> f
  | _ -> fail 0 "expected exactly one function"
