open Ast

exception Error of string * int

type var_info = { vtyp : typ; array_size : int option }

type env = {
  globals : (string, var_info) Hashtbl.t;
  funcs : (string, typ list * typ) Hashtbl.t;
  locals : (string, (string, var_info) Hashtbl.t) Hashtbl.t;
      (* per-function symbol tables, including parameters *)
}

let err line fmt = Format.kasprintf (fun s -> raise (Error (s, line))) fmt

let lookup_var env ~func name =
  let local =
    match Hashtbl.find_opt env.locals func with
    | Some table -> Hashtbl.find_opt table name
    | None -> None
  in
  match local with
  | Some _ as v -> v
  | None -> Hashtbl.find_opt env.globals name

let func_signature env name = Hashtbl.find_opt env.funcs name

let scalar_or_err line name = function
  | { array_size = None; vtyp } -> vtyp
  | { array_size = Some _; _ } ->
    err line "%s is an array and cannot be used as a scalar" name

let rec expr_type env ~func (e : expr) =
  match e.desc with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var name ->
    (match lookup_var env ~func name with
     | Some info -> scalar_or_err e.eline name info
     | None -> err e.eline "unbound variable %s" name)
  | Index (name, _) ->
    (match lookup_var env ~func name with
     | Some { array_size = Some _; vtyp } -> vtyp
     | Some { array_size = None; _ } -> err e.eline "%s is not an array" name
     | None -> err e.eline "unbound array %s" name)
  | Unop (Neg, a) -> expr_type env ~func a
  | Unop (Lnot, _) -> Tint
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | Land | Lor), _, _) -> Tint
  | Binop ((Mod | Band | Bor | Bxor | Shl | Shr), _, _) -> Tint
  | Binop ((Add | Sub | Mul | Div), a, _) -> expr_type env ~func a
  | Call (name, _) ->
    (match func_signature env name with
     | Some (_, ret) -> ret
     | None -> err e.eline "call to undefined function %s" name)
  | Cast (typ, _) -> typ

(* --- checking + elaboration ------------------------------------------- *)

let cast_to typ (e : expr) = { desc = Cast (typ, e); eline = e.eline }

(* promote [e] of type [from_t] to [to_t], or fail *)
let coerce line ~what ~from_t ~to_t e =
  if from_t = to_t then e
  else
    match (from_t, to_t) with
    | Tint, Tfloat -> cast_to Tfloat e
    | Tfloat, Tint ->
      err line "%s: implicit float->int conversion; use an explicit (int) cast" what
    | (Tvoid, _ | _, Tvoid) -> err line "%s: void value used" what
    | (Tint, Tint | Tfloat, Tfloat) -> e

let rec check_expr env ~func (e : expr) : expr * typ =
  let line = e.eline in
  match e.desc with
  | Int_lit _ -> (e, Tint)
  | Float_lit _ -> (e, Tfloat)
  | Var name ->
    (match lookup_var env ~func name with
     | Some info -> (e, scalar_or_err line name info)
     | None -> err line "unbound variable %s" name)
  | Index (name, idx) ->
    (match lookup_var env ~func name with
     | Some { array_size = Some _; vtyp } ->
       let idx, idx_t = check_expr env ~func idx in
       if idx_t <> Tint then err line "array index must be an int";
       ({ e with desc = Index (name, idx) }, vtyp)
     | Some { array_size = None; _ } -> err line "%s is not an array" name
     | None -> err line "unbound array %s" name)
  | Unop (Neg, a) ->
    let a, t = check_expr env ~func a in
    if t = Tvoid then err line "cannot negate a void value";
    ({ e with desc = Unop (Neg, a) }, t)
  | Unop (Lnot, a) ->
    let a, t = check_expr env ~func a in
    if t <> Tint then err line "'!' requires an int operand";
    ({ e with desc = Unop (Lnot, a) }, Tint)
  | Binop (op, a, b) ->
    let a, ta = check_expr env ~func a in
    let b, tb = check_expr env ~func b in
    if ta = Tvoid || tb = Tvoid then err line "void value in expression";
    let int_only what =
      if ta <> Tint || tb <> Tint then err line "'%s' requires int operands" what
    in
    (match op with
     | Land | Lor -> int_only "&&/||"
     | Mod -> int_only "%"
     | Band | Bor | Bxor -> int_only "&/|/^"
     | Shl | Shr -> int_only "shift"
     | Add | Sub | Mul | Div | Lt | Le | Gt | Ge | Eq | Ne -> ());
    let result_arith = if ta = Tfloat || tb = Tfloat then Tfloat else Tint in
    (match op with
     | Add | Sub | Mul | Div ->
       let a = coerce line ~what:"arithmetic" ~from_t:ta ~to_t:result_arith a in
       let b = coerce line ~what:"arithmetic" ~from_t:tb ~to_t:result_arith b in
       ({ e with desc = Binop (op, a, b) }, result_arith)
     | Lt | Le | Gt | Ge | Eq | Ne ->
       let a = coerce line ~what:"comparison" ~from_t:ta ~to_t:result_arith a in
       let b = coerce line ~what:"comparison" ~from_t:tb ~to_t:result_arith b in
       ({ e with desc = Binop (op, a, b) }, Tint)
     | Land | Lor | Mod | Band | Bor | Bxor | Shl | Shr ->
       ({ e with desc = Binop (op, a, b) }, Tint))
  | Call (name, args) ->
    (match func_signature env name with
     | None -> err line "call to undefined function %s" name
     | Some (param_types, ret) ->
       if List.length args <> List.length param_types then
         err line "%s expects %d arguments, got %d" name
           (List.length param_types) (List.length args);
       let args =
         List.map2
           (fun arg pt ->
             let arg, at = check_expr env ~func arg in
             coerce line ~what:("argument of " ^ name) ~from_t:at ~to_t:pt arg)
           args param_types
       in
       ({ e with desc = Call (name, args) }, ret))
  | Cast (typ, a) ->
    let a, t = check_expr env ~func a in
    if typ = Tvoid then err line "cannot cast to void";
    if t = Tvoid then err line "cannot cast a void value";
    ({ e with desc = Cast (typ, a) }, typ)

let check_cond env ~func cond =
  let cond, t = check_expr env ~func cond in
  if t <> Tint then
    err cond.eline "conditions must be int-valued (compare floats explicitly)";
  cond

let rec check_stmt env ~func ~ret ~in_loop (s : stmt) : stmt =
  let line = s.sline in
  let table = Hashtbl.find env.locals func in
  match s.sdesc with
  | Decl (typ, name, init) ->
    if typ = Tvoid then err line "variables cannot have type void";
    if Hashtbl.mem table name then err line "redeclaration of %s" name;
    let init =
      Option.map
        (fun e ->
          let e, t = check_expr env ~func e in
          coerce line ~what:("initializer of " ^ name) ~from_t:t ~to_t:typ e)
        init
    in
    Hashtbl.replace table name { vtyp = typ; array_size = None };
    { s with sdesc = Decl (typ, name, init) }
  | Decl_array (typ, name, size) ->
    if typ = Tvoid then err line "arrays cannot have type void";
    if size <= 0 then err line "array %s must have positive size" name;
    if Hashtbl.mem table name then err line "redeclaration of %s" name;
    Hashtbl.replace table name { vtyp = typ; array_size = Some size };
    s
  | Assign (lv, e) ->
    let target_t =
      match lv with
      | Lvar name ->
        (match lookup_var env ~func name with
         | Some info -> scalar_or_err line name info
         | None -> err line "assignment to unbound variable %s" name)
      | Lindex (name, _) ->
        (match lookup_var env ~func name with
         | Some { array_size = Some _; vtyp } -> vtyp
         | Some { array_size = None; _ } -> err line "%s is not an array" name
         | None -> err line "assignment to unbound array %s" name)
    in
    let lv =
      match lv with
      | Lvar _ -> lv
      | Lindex (name, idx) ->
        let idx, idx_t = check_expr env ~func idx in
        if idx_t <> Tint then err line "array index must be an int";
        Lindex (name, idx)
    in
    let e, t = check_expr env ~func e in
    let e = coerce line ~what:"assignment" ~from_t:t ~to_t:target_t e in
    { s with sdesc = Assign (lv, e) }
  | Expr_stmt e ->
    let e, _ = check_expr env ~func e in
    { s with sdesc = Expr_stmt e }
  | If (cond, then_b, else_b) ->
    let cond = check_cond env ~func cond in
    let then_b = List.map (check_stmt env ~func ~ret ~in_loop) then_b in
    let else_b = List.map (check_stmt env ~func ~ret ~in_loop) else_b in
    { s with sdesc = If (cond, then_b, else_b) }
  | While (cond, body) ->
    let cond = check_cond env ~func cond in
    let body = List.map (check_stmt env ~func ~ret ~in_loop:true) body in
    { s with sdesc = While (cond, body) }
  | Do_while (body, cond) ->
    let body = List.map (check_stmt env ~func ~ret ~in_loop:true) body in
    let cond = check_cond env ~func cond in
    { s with sdesc = Do_while (body, cond) }
  | For (init, cond, step, body) ->
    let init = Option.map (check_stmt env ~func ~ret ~in_loop) init in
    let cond = Option.map (check_cond env ~func) cond in
    let step = Option.map (check_stmt env ~func ~ret ~in_loop) step in
    let body = List.map (check_stmt env ~func ~ret ~in_loop:true) body in
    { s with sdesc = For (init, cond, step, body) }
  | Return None ->
    if ret <> Tvoid then err line "non-void function must return a value";
    s
  | Return (Some e) ->
    if ret = Tvoid then err line "void function cannot return a value";
    let e, t = check_expr env ~func e in
    let e = coerce line ~what:"return" ~from_t:t ~to_t:ret e in
    { s with sdesc = Return (Some e) }
  | Break ->
    if not in_loop then err line "break outside of a loop";
    s
  | Continue ->
    if not in_loop then err line "continue outside of a loop";
    s
  | Block stmts ->
    { s with sdesc = Block (List.map (check_stmt env ~func ~ret ~in_loop) stmts) }

let check (program : program) =
  let env =
    { globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      locals = Hashtbl.create 16 }
  in
  List.iter
    (fun g ->
      if g.gtyp = Tvoid then err g.gline "globals cannot have type void";
      if Hashtbl.mem env.globals g.gname then
        err g.gline "redeclaration of global %s" g.gname;
      (match (g.gsize, g.ginit) with
       | Some size, _ when size <= 0 ->
         err g.gline "array %s must have positive size" g.gname
       | Some size, Some init when List.length init > size ->
         err g.gline "initializer of %s has %d elements for size %d" g.gname
           (List.length init) size
       | None, Some init when List.length init <> 1 ->
         err g.gline "scalar %s takes a single initializer" g.gname
       | (None | Some _), (None | Some _) -> ());
      Hashtbl.replace env.globals g.gname { vtyp = g.gtyp; array_size = g.gsize })
    program.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.fname then
        err f.fline "redefinition of function %s" f.fname;
      Hashtbl.replace env.funcs f.fname (List.map fst f.params, f.ret))
    program.funcs;
  let funcs =
    List.map
      (fun f ->
        let table = Hashtbl.create 16 in
        Hashtbl.replace env.locals f.fname table;
        List.iter
          (fun (typ, name) ->
            if typ = Tvoid then err f.fline "parameters cannot have type void";
            if Hashtbl.mem table name then
              err f.fline "duplicate parameter %s" name;
            Hashtbl.replace table name { vtyp = typ; array_size = None })
          f.params;
        let body =
          List.map (check_stmt env ~func:f.fname ~ret:f.ret ~in_loop:false) f.body
        in
        { f with body })
      program.funcs
  in
  ({ program with funcs }, env)
