(** Register allocation onto a finite register file.

    The code generator uses unlimited virtual registers; real E32 hardware
    (like the i960's local-register window) has a fixed file. [allocate]
    rewrites a function so every register index is below [nregs]: the most
    frequently used virtual registers stay {e resident} (parameters always
    do — the calling convention pins them to [0 .. nparams-1]), the rest are
    {e demoted} to frame slots with a load before each use and a store after
    each definition. The added memory traffic is exactly what register
    pressure costs on the real machine, which makes the allocator a useful
    knob for timing-sensitivity experiments (see the bench's
    ablation-regalloc target). *)

val allocate : ?nregs:int -> Ipet_isa.Prog.func -> Ipet_isa.Prog.func
(** Default [nregs] is 16.
    @raise Invalid_argument when [nregs] is too small for the function's
    parameters plus the scratch registers its widest instruction needs. *)

val program : ?nregs:int -> Ipet_isa.Prog.t -> Ipet_isa.Prog.t

val max_reg : Ipet_isa.Prog.func -> int
(** Highest register index mentioned, [-1] for none. *)
