(** One-call frontend: source text to compiled E32 program, plus the
    line-based lookups that the annotation layer and the cinderella CLI use
    to let users talk about "the block at line 12" the way the paper's
    annotated listings do (Fig. 5). *)

type error = { message : string; line : int }

val parse_and_check : string -> Ast.program * Typecheck.env
(** Lex, parse, type-check and elaborate, exposing the AST (used e.g. by
    automatic loop-bound inference).
    @raise Lexer.Error / @raise Parser.Error / @raise Typecheck.Error *)

val compile_string :
  ?optimize:bool -> ?registers:int -> string -> (Compile.t, error) result
(** Lex, parse, type-check, elaborate and compile a compilation unit.
    [optimize] (default false) additionally runs the {!Optimize} passes —
    the analysis then sees the optimized code, as the paper requires.
    [registers] runs {!Regalloc} onto a file of that many registers. *)

val compile_string_exn : ?optimize:bool -> ?registers:int -> string -> Compile.t
(** @raise Failure with a rendered error message. *)

val block_at_line : Ipet_isa.Prog.func -> int -> int option
(** First block whose recorded source line matches, if any. *)

val blocks_at_line : Ipet_isa.Prog.func -> int -> int list
