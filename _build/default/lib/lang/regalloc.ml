module P = Ipet_isa.Prog
module I = Ipet_isa.Instr

let term_uses = function
  | I.Jump _ -> []
  | I.Branch (r, _, _) -> [ r ]
  | I.Return (Some (I.Reg r)) -> [ r ]
  | I.Return (Some (I.Imm _ | I.Fimm _)) | I.Return None -> []

let instr_regs instr = I.defs instr @ I.uses instr

let max_reg (func : P.func) =
  Array.fold_left
    (fun acc (b : P.block) ->
      let acc =
        Array.fold_left
          (fun acc instr -> List.fold_left max acc (instr_regs instr))
          acc b.P.instrs
      in
      List.fold_left max acc (term_uses b.P.term))
    (-1) func.P.blocks

(* distinct registers one instruction touches, for scratch sizing *)
let instr_width instr =
  List.length (List.sort_uniq compare (instr_regs instr))

let usage_counts (func : P.func) =
  let counts = Hashtbl.create 64 in
  let bump r =
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  in
  Array.iter
    (fun (b : P.block) ->
      Array.iter (fun instr -> List.iter bump (instr_regs instr)) b.P.instrs;
      List.iter bump (term_uses b.P.term))
    func.P.blocks;
  counts

let allocate ?(nregs = 16) (func : P.func) =
  if max_reg func < nregs then func
  else begin
    let scratch_needed =
      Array.fold_left
        (fun acc (b : P.block) ->
          Array.fold_left (fun acc instr -> max acc (instr_width instr)) acc b.P.instrs)
        2 func.P.blocks
    in
    let resident_budget = nregs - scratch_needed in
    if resident_budget < func.P.nparams then
      invalid_arg
        (Printf.sprintf
           "Regalloc.allocate: %d registers cannot hold %d parameters plus %d scratch"
           nregs func.P.nparams scratch_needed);
    (* pick the hottest non-parameter registers to stay resident *)
    let counts = usage_counts func in
    let candidates =
      Hashtbl.fold
        (fun r c acc -> if r >= func.P.nparams then (c, r) :: acc else acc)
        counts []
      |> List.sort (fun (c1, r1) (c2, r2) -> compare (c2, r1) (c1, r2))
    in
    let resident = Hashtbl.create 32 in
    for p = 0 to func.P.nparams - 1 do
      Hashtbl.replace resident p p
    done;
    let next_resident = ref func.P.nparams in
    List.iter
      (fun (_, r) ->
        if !next_resident < resident_budget then begin
          Hashtbl.replace resident r !next_resident;
          incr next_resident
        end)
      candidates;
    (* frame slots for everything else *)
    let slots = Hashtbl.create 32 in
    let frame_words = ref func.P.frame_words in
    let slot_of r =
      match Hashtbl.find_opt slots r with
      | Some s -> s
      | None ->
        let s = !frame_words in
        incr frame_words;
        Hashtbl.replace slots r s;
        s
    in
    let scratch_base = nregs - scratch_needed in
    let blocks =
      Array.map
        (fun (block : P.block) ->
          let out = ref [] in
          let emit i = out := i :: !out in
          let rewrite_instr instr =
            (* per-instruction scratch assignment: distinct demoted regs of
               this instruction each get one scratch slot *)
            let assignment = Hashtbl.create 4 in
            let next = ref scratch_base in
            let map_reg ~is_use r =
              match Hashtbl.find_opt resident r with
              | Some phys -> phys
              | None ->
                (match Hashtbl.find_opt assignment r with
                 | Some s -> s
                 | None ->
                   let s = !next in
                   incr next;
                   assert (s < nregs);
                   Hashtbl.replace assignment r s;
                   if is_use then
                     emit
                       (I.Load
                          (s, { I.base = I.Frame_base; offset = slot_of r; index = None }));
                   s)
            in
            let map_operand op =
              match op with
              | I.Reg r -> I.Reg (map_reg ~is_use:true r)
              | I.Imm _ | I.Fimm _ -> op
            in
            let map_addr (a : I.addr) =
              { a with I.index = Option.map map_operand a.I.index }
            in
            (* loads for uses happen first, so map uses before defs *)
            let rewritten =
              match instr with
              | I.Alu (op, d, a, b) ->
                let a = map_operand a and b = map_operand b in
                I.Alu (op, map_reg ~is_use:false d, a, b)
              | I.Fpu (op, d, a, b) ->
                let a = map_operand a and b = map_operand b in
                I.Fpu (op, map_reg ~is_use:false d, a, b)
              | I.Icmp (op, d, a, b) ->
                let a = map_operand a and b = map_operand b in
                I.Icmp (op, map_reg ~is_use:false d, a, b)
              | I.Fcmp (op, d, a, b) ->
                let a = map_operand a and b = map_operand b in
                I.Fcmp (op, map_reg ~is_use:false d, a, b)
              | I.Mov (d, a) ->
                let a = map_operand a in
                I.Mov (map_reg ~is_use:false d, a)
              | I.Itof (d, a) ->
                let a = map_operand a in
                I.Itof (map_reg ~is_use:false d, a)
              | I.Ftoi (d, a) ->
                let a = map_operand a in
                I.Ftoi (map_reg ~is_use:false d, a)
              | I.Load (d, addr) ->
                let addr = map_addr addr in
                I.Load (map_reg ~is_use:false d, addr)
              | I.Store (v, addr) -> I.Store (map_operand v, map_addr addr)
              | I.Call (d, callee, args) ->
                let args = List.map map_operand args in
                I.Call (Option.map (map_reg ~is_use:false) d, callee, args)
            in
            emit rewritten;
            (* spill stores for demoted definitions *)
            List.iter
              (fun d ->
                match Hashtbl.find_opt resident d with
                | Some _ -> ()
                | None ->
                  let s = Hashtbl.find assignment d in
                  emit
                    (I.Store
                       (I.Reg s, { I.base = I.Frame_base; offset = slot_of d; index = None })))
              (I.defs instr)
          in
          Array.iter rewrite_instr block.P.instrs;
          (* terminator register uses need a reload too *)
          let term =
            match block.P.term with
            | I.Branch (r, t, f) ->
              (match Hashtbl.find_opt resident r with
               | Some phys -> I.Branch (phys, t, f)
               | None ->
                 emit
                   (I.Load
                      (scratch_base,
                       { I.base = I.Frame_base; offset = slot_of r; index = None }));
                 I.Branch (scratch_base, t, f))
            | I.Return (Some (I.Reg r)) ->
              (match Hashtbl.find_opt resident r with
               | Some phys -> I.Return (Some (I.Reg phys))
               | None ->
                 emit
                   (I.Load
                      (scratch_base,
                       { I.base = I.Frame_base; offset = slot_of r; index = None }));
                 I.Return (Some (I.Reg scratch_base)))
            | I.Jump _ | I.Return _ as t -> t
          in
          { block with P.instrs = Array.of_list (List.rev !out); P.term = term })
        func.P.blocks
    in
    { func with P.blocks = blocks; P.frame_words = !frame_words }
  end

let program ?nregs (prog : P.t) =
  { prog with P.funcs = Array.map (allocate ?nregs) prog.P.funcs }
