(** Recursive-descent parser for MC.

    Grammar (C-like, braces optional around single statements; EBNF with
    [{..}] = repetition and [[..]] = option):
    {v
    program  ::= { global | func }
    global   ::= type ident [ '[' int ']' ] [ '=' init ] ';'
    func     ::= type ident '(' [ type ident { ',' type ident } ] ')' block
    stmt     ::= type ident [ '[' int ']' ] [ '=' expr ] ';'
               | lvalue '=' expr ';'  |  expr ';'
               | 'if' '(' expr ')' stmt [ 'else' stmt ]
               | 'while' '(' expr ')' stmt
               | 'for' '(' [simple] ';' [expr] ';' [simple] ')' stmt
               | 'return' [expr] ';'  |  'break' ';'  |  'continue' ';'
               | '{' { stmt } '}'
    v}
    Expressions use C precedence ([||], [&&], [|], [^], [&], equality,
    relational, shifts, additive, multiplicative, unary, postfix). *)

exception Error of string * int  (** message, line *)

val parse : string -> Ast.program
(** Parse a complete compilation unit.
    @raise Error on a syntax error.
    @raise Lexer.Error on a lexical error. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (used by tests and tooling).
    @raise Error / @raise Lexer.Error as for {!parse}. *)
