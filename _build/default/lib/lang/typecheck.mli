(** Static checking and elaboration of MC programs.

    Beyond the usual checks (declaration before use, operator/assignment
    typing, arity, [break]/[continue] placement, array/scalar usage), the
    checker {e elaborates} the program: every implicit [int]→[float]
    promotion becomes an explicit {!Ast.Cast}, so that later phases can
    synthesize expression types without re-running inference. *)

exception Error of string * int  (** message, line *)

type var_info = { vtyp : Ast.typ; array_size : int option }

type env
(** Typing environment of a checked program. *)

val check : Ast.program -> Ast.program * env
(** @raise Error on an ill-typed program. *)

val lookup_var : env -> func:string -> string -> var_info option
(** Look up a local (including parameters), falling back to globals. *)

val func_signature : env -> string -> (Ast.typ list * Ast.typ) option

val expr_type : env -> func:string -> Ast.expr -> Ast.typ
(** Type of an elaborated expression (no implicit promotions remain).
    @raise Error on unbound names — cannot happen on checked programs. *)
