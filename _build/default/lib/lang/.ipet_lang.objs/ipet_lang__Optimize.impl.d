lib/lang/optimize.ml: Array Fun Hashtbl Ipet_cfg Ipet_isa List Option
