lib/lang/frontend.mli: Ast Compile Ipet_isa Typecheck
