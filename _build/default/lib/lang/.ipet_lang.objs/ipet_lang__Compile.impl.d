lib/lang/compile.ml: Array Ast Format Hashtbl Ipet_isa List Option Typecheck
