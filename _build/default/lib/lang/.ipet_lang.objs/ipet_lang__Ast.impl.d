lib/lang/ast.ml:
