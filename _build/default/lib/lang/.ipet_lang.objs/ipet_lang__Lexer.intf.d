lib/lang/lexer.mli:
