lib/lang/regalloc.mli: Ipet_isa
