lib/lang/typecheck.ml: Ast Format Hashtbl List Option
