lib/lang/ast.mli:
