lib/lang/optimize.mli: Ipet_isa
