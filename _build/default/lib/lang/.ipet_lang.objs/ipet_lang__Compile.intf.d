lib/lang/compile.mli: Ast Ipet_isa Typecheck
