lib/lang/regalloc.ml: Array Hashtbl Ipet_isa List Option Printf
