lib/lang/frontend.ml: Array Compile Ipet_isa Lexer List Optimize Parser Printf Regalloc Typecheck
