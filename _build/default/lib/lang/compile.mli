(** Compilation of checked MC programs to E32.

    The code generator is deliberately simple but structurally faithful:
    scalars live in virtual registers, arrays in memory (globals in the
    global segment, locals in the frame), short-circuit booleans and all
    control flow become real basic blocks and branches — the CFG that the
    IPET structural constraints are derived from. *)

exception Error of string * int

type t = {
  prog : Ipet_isa.Prog.t;
  init_data : (int * Ipet_isa.Value.t) list;
      (** initial contents of the global segment (word address, value);
          unlisted words default to integer 0 *)
}

val compile : Ast.program * Typecheck.env -> t
(** Compile an elaborated program (the result of {!Typecheck.check}).
    @raise Error on constructs the backend cannot compile. *)
