type typ = Tint | Tfloat | Tvoid

type unop = Neg | Lnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Cast of typ * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Decl of typ * string * expr option
  | Decl_array of typ * string * int
  | Assign of lvalue * expr
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list

type const = Cint of int | Cfloat of float

type global = {
  gtyp : typ;
  gname : string;
  gsize : int option;
  ginit : const list option;
  gline : int;
}

type func = {
  ret : typ;
  fname : string;
  params : (typ * string) list;
  body : stmt list;
  fline : int;
}

type program = { globals : global list; funcs : func list }

let typ_name = function Tint -> "int" | Tfloat -> "float" | Tvoid -> "void"
