(* Sign-magnitude bignum over base-2^30 limbs, little-endian, no leading
   zero limbs; [sign] is 0 exactly when the magnitude is empty. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else begin
    (* native ints are 63-bit, so the magnitude always fits in an Int64 *)
    let sign = if i < 0 then -1 else 1 in
    let rec limbs v acc =
      if Int64.equal v 0L then List.rev acc
      else
        limbs (Int64.shift_right_logical v limb_bits)
          (Int64.to_int (Int64.logand v (Int64.of_int limb_mask)) :: acc)
    in
    normalize sign (Array.of_list (limbs (Int64.abs (Int64.of_int i)) []))
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign v = v.sign
let is_zero v = v.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  out

(* requires mag a >= mag b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin out.(i) <- s + base; borrow := 1 end
    else begin out.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  out

let neg v = if v.sign = 0 then v else { v with sign = - v.sign }
let abs v = if v.sign < 0 then neg v else v

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        (* ai, bj < 2^30 so the product fits in 60 bits + carry/acc headroom *)
        let acc = out.(i + j) + (ai * b.mag.(j)) + !carry in
        out.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = out.(!k) + !carry in
        out.(!k) <- acc land limb_mask;
        carry := acc lsr limb_bits;
        incr k
      done
    done;
    normalize (a.sign * b.sign) out
  end

let bit_length_mag m =
  let n = Array.length m in
  if n = 0 then 0
  else begin
    let top = m.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    (n - 1) * limb_bits + bits top 0
  end

(* magnitude shifted left by [k] bits *)
let shl_mag m k =
  if Array.length m = 0 then m
  else begin
    let words = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length m in
    let out = Array.make (n + words + 1) 0 in
    for i = 0 to n - 1 do
      let v = m.(i) lsl bits in
      out.(i + words) <- out.(i + words) lor (v land limb_mask);
      out.(i + words + 1) <- out.(i + words + 1) lor (v lsr limb_bits)
    done;
    out
  end

(* in-place logical shift right by one bit; [m] must be mutable scratch *)
let shr1_mag_inplace m =
  let n = Array.length m in
  for i = 0 to n - 1 do
    let hi = if i + 1 < n then m.(i + 1) land 1 else 0 in
    m.(i) <- (m.(i) lsr 1) lor (hi lsl (limb_bits - 1))
  done

let set_bit_mag m k =
  m.(k / limb_bits) <- m.(k / limb_bits) lor (1 lsl (k mod limb_bits))

(* binary long division on magnitudes: returns (quotient, remainder) *)
let divmod_mag n d =
  if compare_mag n d < 0 then ([||], Array.copy n)
  else begin
    let shift = bit_length_mag n - bit_length_mag d in
    let r = Array.make (Array.length n + 1) 0 in
    Array.blit n 0 r 0 (Array.length n);
    let dd = shl_mag d shift in
    let dd = Array.append dd (Array.make (Stdlib.max 0 (Array.length r - Array.length dd)) 0) in
    let r = Array.append r (Array.make (Stdlib.max 0 (Array.length dd - Array.length r)) 0) in
    let q = Array.make (shift / limb_bits + 1) 0 in
    for i = shift downto 0 do
      if compare_mag r dd >= 0 then begin
        let diff = sub_mag r dd in
        Array.blit diff 0 r 0 (Array.length diff);
        (* sub_mag result has same length as r, so no stale high limbs *)
        set_bit_mag q i
      end;
      shr1_mag_inplace dd
    done;
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt v =
  (* accumulate the magnitude negated so that min_int stays representable *)
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let limb = v.mag.(i) in
      if acc < min_int / base then None
      else begin
        let shifted = acc * base in
        if shifted < min_int + limb then None else go (i - 1) (shifted - limb)
      end
    end
  in
  match go (Array.length v.mag - 1) 0 with
  | None -> None
  | Some m ->
    if v.sign < 0 then Some m else if m = min_int then None else Some (-m)

let to_int v =
  match to_int_opt v with
  | Some i -> i
  | None -> failwith "Bigint.to_int: overflow"

let ten = of_int 10

let to_string v =
  if v.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec digits x = if is_zero x then () else begin
        let q, r = divmod x ten in
        digits q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    digits (abs v);
    (if v.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then failwith "Bigint.of_string: empty";
  let sign, start = match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | '0' .. '9' -> (1, 0)
    | _ -> failwith "Bigint.of_string: malformed"
  in
  if start >= n then failwith "Bigint.of_string: malformed";
  let acc = ref zero in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' as c -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
    | _ -> failwith "Bigint.of_string: malformed"
  done;
  if sign < 0 then neg !acc else !acc

let to_float v =
  let m = ref 0.0 in
  for i = Array.length v.mag - 1 downto 0 do
    m := (!m *. float_of_int base) +. float_of_int v.mag.(i)
  done;
  if v.sign < 0 then -. !m else !m

let pp fmt v = Format.pp_print_string fmt (to_string v)
