(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is strictly positive and
    coprime with the numerator. This is the scalar field of the simplex
    solver, so every arithmetic operation is exact. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den] = [num/den]. @raise Division_by_zero if [den = 0]. *)

val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val floor : t -> Bigint.t
(** Largest integer [<=] the rational. *)

val ceil : t -> Bigint.t
(** Smallest integer [>=] the rational. *)

val to_int : t -> int
(** @raise Failure if not an integer or out of native range. *)

val to_float : t -> float
val to_string : t -> string

val of_string : string -> t
(** Accepts ["p"], ["p/q"], and decimal ["p.q"] forms with optional sign.
    @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit

(** Infix operators, intended for local [open Rat.Infix]. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
