module B = Bigint

type t = { n : B.t; d : B.t }  (* invariant: d > 0, gcd (n, d) = 1 *)

let make num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { n = B.zero; d = B.one }
  else begin
    let g = B.gcd num den in
    { n = B.div num g; d = B.div den g }
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }

let of_int i = { n = B.of_int i; d = B.one }
let of_ints num den = make (B.of_int num) (B.of_int den)
let of_bigint b = { n = b; d = B.one }

let num v = v.n
let den v = v.d

let neg v = { v with n = B.neg v.n }
let abs v = { v with n = B.abs v.n }
let sign v = B.sign v.n
let is_zero v = B.is_zero v.n

let add a b = make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let sub a b = add a (neg b)
let mul a b = make (B.mul a.n b.n) (B.mul a.d b.d)
let inv v = make v.d v.n
let div a b = mul a (inv b)

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = B.equal a.n b.n && B.equal a.d b.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_integer v = B.equal v.d B.one

let floor v =
  let q, r = B.divmod v.n v.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil v =
  let q, r = B.divmod v.n v.d in
  if B.sign r > 0 then B.add q B.one else q

let to_int v =
  if not (is_integer v) then failwith "Rat.to_int: not an integer";
  B.to_int v.n

let to_float v = B.to_float v.n /. B.to_float v.d

let to_string v =
  if is_integer v then B.to_string v.n
  else B.to_string v.n ^ "/" ^ B.to_string v.d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let num = B.of_string (String.sub s 0 i) in
    let den = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make num den
  | None ->
    match String.index_opt s '.' with
    | None -> of_bigint (B.of_string s)
    | Some i ->
      let whole = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      if frac = "" then failwith "Rat.of_string: malformed";
      let scale = B.of_string ("1" ^ String.make (String.length frac) '0') in
      let negative = String.length whole > 0 && whole.[0] = '-' in
      let whole_b = if whole = "" || whole = "-" || whole = "+" then B.zero else B.of_string whole in
      let frac_b = B.of_string frac in
      let mag = B.add (B.mul (B.abs whole_b) scale) frac_b in
      make (if negative then B.neg mag else mag) scale

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) a b = equal a b
  let ( </ ) a b = compare a b < 0
  let ( <=/ ) a b = compare a b <= 0
  let ( >/ ) a b = compare a b > 0
  let ( >=/ ) a b = compare a b >= 0
end
