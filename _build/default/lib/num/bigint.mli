(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^30] limbs. This module is the
    numeric substrate of the exact rational simplex ({!Rat}, {!Ipet_lp}): the
    pivot operations of the simplex multiply loop-bound coefficients together
    and native [int]s could overflow on adversarial inputs. Only the
    operations the solver needs are provided. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int v] is the native-int value of [v].
    @raise Failure if [v] does not fit in a native [int]. *)

val to_int_opt : t -> int option

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated toward zero and
    [r] carrying the sign of [a] (OCaml [(/)]/[(mod)] semantics).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor, always non-negative. [gcd zero zero = zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_string : t -> string

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Failure on malformed input. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
