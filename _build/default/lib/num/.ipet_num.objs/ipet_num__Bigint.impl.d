lib/num/bigint.ml: Array Buffer Char Format Int64 List Stdlib String
