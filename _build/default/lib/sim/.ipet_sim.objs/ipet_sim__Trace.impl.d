lib/sim/trace.ml: Format Hashtbl Interp List Option
