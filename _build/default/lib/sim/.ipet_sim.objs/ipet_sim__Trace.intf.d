lib/sim/trace.mli: Format Interp
