lib/sim/interp.ml: Array Float Format Hashtbl Ipet_isa Ipet_machine List Option
