lib/sim/interp.mli: Ipet_isa Ipet_machine
