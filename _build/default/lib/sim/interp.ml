module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module V = Ipet_isa.Value
module Layout = Ipet_isa.Layout
module Icache = Ipet_machine.Icache
module Timing = Ipet_machine.Timing
module Pipeline = Ipet_machine.Pipeline

exception Runtime_error of string
exception Out_of_fuel

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type t = {
  prog : P.t;
  layout : Layout.t;
  cache : Icache.t;
  dcache : Icache.t option;
  memory : V.t array;
  stack_base : int;
  mutable sp : int;
  mutable fuel : int;
  fuel_budget : int;
  mutable cycle_count : int;
  mutable instr_count : int;
  mutable hits0 : int;  (* cache stats baseline for reset_stats *)
  mutable misses0 : int;
  mutable block_hook : (string -> int -> int -> unit) option;
  counts : (string * int, int) Hashtbl.t;
  edges : (string * int * int, int) Hashtbl.t;
  calls : (string * int * int, int) Hashtbl.t;
  (* context-qualified counters: keys carry the call path from the root *)
  mutable path : (string * int * int) list;  (* reversed: innermost first *)
  ctx_counts : ((string * int * int) list * string * int, int) Hashtbl.t;
  ctx_edges : ((string * int * int) list * string * int * int, int) Hashtbl.t;
  ctx_calls : ((string * int * int) list * string * int * int, int) Hashtbl.t;
  ctx_entries : ((string * int * int) list * string, int) Hashtbl.t;
}

let create ?(cache = Icache.i960kb) ?dcache ?(stack_words = 1 lsl 16)
    ?(fuel = 50_000_000) (prog : P.t) ~init =
  let memory = Array.make (prog.P.globals_words + stack_words) V.zero in
  List.iter (fun (addr, v) -> memory.(addr) <- v) init;
  { prog;
    layout = Layout.make prog;
    cache = Icache.create cache;
    dcache = Option.map Icache.create dcache;
    memory;
    stack_base = prog.P.globals_words;
    sp = prog.P.globals_words;
    fuel;
    fuel_budget = fuel;
    cycle_count = 0;
    instr_count = 0;
    hits0 = 0;
    misses0 = 0;
    block_hook = None;
    counts = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    calls = Hashtbl.create 16;
    path = [];
    ctx_counts = Hashtbl.create 64;
    ctx_edges = Hashtbl.create 64;
    ctx_calls = Hashtbl.create 16;
    ctx_entries = Hashtbl.create 16 }

let program m = m.prog
let layout m = m.layout

let reset_memory m ~init =
  Array.fill m.memory 0 (Array.length m.memory) V.zero;
  List.iter (fun (addr, v) -> m.memory.(addr) <- v) init;
  m.sp <- m.stack_base

let reset_stats m =
  m.cycle_count <- 0;
  m.instr_count <- 0;
  m.fuel <- m.fuel_budget;
  m.hits0 <- Icache.hits m.cache;
  m.misses0 <- Icache.misses m.cache;
  Hashtbl.reset m.counts;
  Hashtbl.reset m.edges;
  Hashtbl.reset m.calls;
  m.path <- [];
  Hashtbl.reset m.ctx_counts;
  Hashtbl.reset m.ctx_edges;
  Hashtbl.reset m.ctx_calls;
  Hashtbl.reset m.ctx_entries

let set_block_hook m hook = m.block_hook <- Some hook
let clear_block_hook m = m.block_hook <- None

let flush_cache m =
  Icache.flush m.cache;
  Option.iter Icache.flush m.dcache

let dcache_hits m = match m.dcache with Some d -> Icache.hits d | None -> 0
let dcache_misses m = match m.dcache with Some d -> Icache.misses d | None -> 0

let global_slot m name =
  match P.find_global m.prog name with
  | g -> g
  | exception Not_found -> error "unknown global %s" name

let write_global m name index v =
  let g = global_slot m name in
  if index < 0 || index >= g.P.size_words then
    error "index %d out of bounds for global %s" index name;
  m.memory.(g.P.addr + index) <- v

let read_global m name index =
  let g = global_slot m name in
  if index < 0 || index >= g.P.size_words then
    error "index %d out of bounds for global %s" index name;
  m.memory.(g.P.addr + index)

let cycles m = m.cycle_count
let instructions m = m.instr_count
let cache_hits m = Icache.hits m.cache - m.hits0
let cache_misses m = Icache.misses m.cache - m.misses0

let bump table key =
  let v = Option.value ~default:0 (Hashtbl.find_opt table key) in
  Hashtbl.replace table key (v + 1)

let block_count m ~func ~block =
  Option.value ~default:0 (Hashtbl.find_opt m.counts (func, block))

let block_counts m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.counts []
  |> List.sort compare

let edge_count m ~func ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt m.edges (func, src, dst))

let call_count m ~caller ~block ~occurrence =
  Option.value ~default:0 (Hashtbl.find_opt m.calls (caller, block, occurrence))

type site = string * int * int

let ctx_block_count m ~path ~func ~block =
  Option.value ~default:0 (Hashtbl.find_opt m.ctx_counts (List.rev path, func, block))

let ctx_edge_count m ~path ~func ~src ~dst =
  Option.value ~default:0 (Hashtbl.find_opt m.ctx_edges (List.rev path, func, src, dst))

let ctx_call_count m ~path ~caller ~block ~occurrence =
  Option.value ~default:0
    (Hashtbl.find_opt m.ctx_calls (List.rev path, caller, block, occurrence))

let ctx_entry_count m ~path ~func =
  Option.value ~default:0 (Hashtbl.find_opt m.ctx_entries (List.rev path, func))

(* --- execution ---------------------------------------------------------- *)

type frame = { regs : V.t array ref; fp : int }

let reg_value frame r =
  let a = !(frame.regs) in
  if r < Array.length a then a.(r) else V.zero

let set_reg frame r v =
  let a = !(frame.regs) in
  if r >= Array.length a then begin
    let bigger = Array.make (max (r + 1) (2 * Array.length a)) V.zero in
    Array.blit a 0 bigger 0 (Array.length a);
    frame.regs := bigger
  end;
  !(frame.regs).(r) <- v

let operand_value frame = function
  | I.Reg r -> reg_value frame r
  | I.Imm i -> V.Vint i
  | I.Fimm f -> V.Vfloat f

let mem_read m addr =
  if addr < 0 || addr >= Array.length m.memory then
    error "load from invalid address %d" addr;
  m.memory.(addr)

let mem_write m addr v =
  if addr < 0 || addr >= Array.length m.memory then
    error "store to invalid address %d" addr;
  m.memory.(addr) <- v

let effective_addr frame (a : I.addr) =
  let base = match a.I.base with I.Abs w -> w | I.Frame_base -> frame.fp in
  let index =
    match a.I.index with
    | None -> 0
    | Some op -> V.as_int (operand_value frame op)
  in
  base + a.I.offset + index

let alu op a b =
  match op with
  | I.Add -> a + b
  | I.Sub -> a - b
  | I.Mul -> a * b
  | I.Div -> if b = 0 then error "division by zero" else a / b
  | I.Rem -> if b = 0 then error "modulo by zero" else a mod b
  | I.And -> a land b
  | I.Or -> a lor b
  | I.Xor -> a lxor b
  | I.Shl -> a lsl (b land 62)
  | I.Shr -> a asr (b land 62)

let fpu op a b =
  match op with
  | I.Fadd -> a +. b
  | I.Fsub -> a -. b
  | I.Fmul -> a *. b
  | I.Fdiv -> a /. b

let icmp op a b =
  let r = match op with
    | I.Ceq -> a = b | I.Cne -> a <> b
    | I.Clt -> a < b | I.Cle -> a <= b | I.Cgt -> a > b | I.Cge -> a >= b
  in
  if r then 1 else 0

let fcmp op (a : float) (b : float) =
  let r = match op with
    | I.Ceq -> a = b | I.Cne -> a <> b
    | I.Clt -> a < b | I.Cle -> a <= b | I.Cgt -> a > b | I.Cge -> a >= b
  in
  if r then 1 else 0

let fetch m ~addr =
  if not (Icache.access m.cache addr) then
    m.cycle_count <- m.cycle_count + (Icache.config m.cache).Icache.miss_penalty

let rec call m fname args =
  let func =
    match P.find_func_opt m.prog fname with
    | Some f -> f
    | None -> error "call to unknown function %s" fname
  in
  if List.length args <> func.P.nparams then
    error "%s expects %d arguments, got %d" fname func.P.nparams (List.length args);
  bump m.ctx_entries (m.path, fname);
  let frame = { regs = ref (Array.make 16 V.zero); fp = m.sp } in
  if m.sp + func.P.frame_words > Array.length m.memory then
    error "stack overflow calling %s" fname;
  m.sp <- m.sp + func.P.frame_words;
  List.iteri (fun i v -> set_reg frame i v) args;
  let result = run_block m func frame 0 in
  m.sp <- m.sp - func.P.frame_words;
  result

and run_block m (func : P.func) frame block_id =
  if m.fuel <= 0 then raise Out_of_fuel;
  m.fuel <- m.fuel - 1;
  bump m.counts (func.P.name, block_id);
  bump m.ctx_counts (m.path, func.P.name, block_id);
  (match m.block_hook with
   | Some hook -> hook func.P.name block_id m.cycle_count
   | None -> ());
  let block = func.P.blocks.(block_id) in
  let base_addr = Layout.block_addr m.layout ~func:func.P.name ~block:block_id in
  let n = Array.length block.P.instrs in
  let call_occurrence = ref 0 in
  let prev = ref None in
  for idx = 0 to n - 1 do
    let instr = block.P.instrs.(idx) in
    fetch m ~addr:(base_addr + (idx * I.bytes_per_instr));
    m.instr_count <- m.instr_count + 1;
    (* with a data cache, a load's memory time is charged in [execute]
       where the effective address is known *)
    let issue_cycles =
      match (instr, m.dcache) with
      | I.Load _, Some _ -> Timing.load_base
      | _, (Some _ | None) -> Timing.issue instr
    in
    m.cycle_count <- m.cycle_count + issue_cycles;
    (match !prev with
     | Some p -> m.cycle_count <- m.cycle_count + Pipeline.stall_after p instr
     | None -> ());
    prev := Some instr;
    execute m func frame block_id call_occurrence instr
  done;
  (* terminator fetch and execution *)
  fetch m ~addr:(base_addr + (n * I.bytes_per_instr));
  m.instr_count <- m.instr_count + 1;
  match block.P.term with
  | I.Jump target ->
    m.cycle_count <- m.cycle_count + Timing.term_actual block.P.term ~taken:true;
    bump m.edges (func.P.name, block_id, target);
    bump m.ctx_edges (m.path, func.P.name, block_id, target);
    run_block m func frame target
  | I.Branch (r, if_true, if_false) ->
    let taken = V.truthy (reg_value frame r) in
    m.cycle_count <- m.cycle_count + Timing.term_actual block.P.term ~taken;
    let target = if taken then if_true else if_false in
    bump m.edges (func.P.name, block_id, target);
    bump m.ctx_edges (m.path, func.P.name, block_id, target);
    run_block m func frame target
  | I.Return op ->
    m.cycle_count <- m.cycle_count + Timing.term_actual block.P.term ~taken:true;
    Option.map (operand_value frame) op

and execute m func frame block_id call_occurrence instr =
  match instr with
  | I.Alu (op, d, a, b) ->
    let a = V.as_int (operand_value frame a) in
    let b = V.as_int (operand_value frame b) in
    set_reg frame d (V.Vint (alu op a b))
  | I.Fpu (op, d, a, b) ->
    let a = V.as_float (operand_value frame a) in
    let b = V.as_float (operand_value frame b) in
    set_reg frame d (V.Vfloat (fpu op a b))
  | I.Icmp (op, d, a, b) ->
    let a = V.as_int (operand_value frame a) in
    let b = V.as_int (operand_value frame b) in
    set_reg frame d (V.Vint (icmp op a b))
  | I.Fcmp (op, d, a, b) ->
    let a = V.as_float (operand_value frame a) in
    let b = V.as_float (operand_value frame b) in
    set_reg frame d (V.Vint (fcmp op a b))
  | I.Mov (d, a) -> set_reg frame d (operand_value frame a)
  | I.Itof (d, a) ->
    set_reg frame d (V.Vfloat (float_of_int (V.as_int (operand_value frame a))))
  | I.Ftoi (d, a) ->
    let f = V.as_float (operand_value frame a) in
    if Float.is_nan f || Float.abs f >= 4.611686018427388e18 then
      error "float->int conversion out of range";
    set_reg frame d (V.Vint (int_of_float f))
  | I.Load (d, a) ->
    let addr = effective_addr frame a in
    (match m.dcache with
     | Some dc ->
       (* word-addressed memory, 4 bytes per word in the cache's eyes *)
       if not (Icache.access dc (addr * 4)) then
         m.cycle_count <- m.cycle_count + (Icache.config dc).Icache.miss_penalty
     | None -> ());
    set_reg frame d (mem_read m addr)
  | I.Store (v, a) ->
    mem_write m (effective_addr frame a) (operand_value frame v)
  | I.Call (dst, callee, args) ->
    let occurrence = !call_occurrence in
    incr call_occurrence;
    bump m.calls (func.P.name, block_id, occurrence);
    bump m.ctx_calls (m.path, func.P.name, block_id, occurrence);
    let arg_values = List.map (operand_value frame) args in
    let saved_path = m.path in
    m.path <- (func.P.name, block_id, occurrence) :: m.path;
    let result = call m callee arg_values in
    m.path <- saved_path;
    (match (dst, result) with
     | Some d, Some v -> set_reg frame d v
     | Some d, None -> set_reg frame d V.zero
     | None, (Some _ | None) -> ())
