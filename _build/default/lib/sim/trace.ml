type event = { func : string; block : int; at_cycle : int }

let record machine thunk =
  let events = ref [] in
  Interp.set_block_hook machine (fun func block at_cycle ->
      events := { func; block; at_cycle } :: !events);
  let finish () = Interp.clear_block_hook machine in
  match thunk () with
  | result ->
    finish ();
    (result, List.rev !events)
  | exception e ->
    finish ();
    raise e

type profile_row = { pfunc : string; pblock : int; executions : int; cycles : int }

let profile machine thunk =
  let start = Interp.cycles machine in
  let result, events = record machine thunk in
  let stop = Interp.cycles machine in
  let table = Hashtbl.create 64 in
  let attribute key delta =
    let execs, cyc = Option.value ~default:(0, 0) (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (execs + 1, cyc + delta)
  in
  (* each event owns the cycles from its entry to the next event's entry;
     the last one owns the tail up to the final cycle count *)
  let rec walk = function
    | [] -> ()
    | [ e ] -> attribute (e.func, e.block) (stop - e.at_cycle)
    | e :: (next :: _ as rest) ->
      attribute (e.func, e.block) (next.at_cycle - e.at_cycle);
      walk rest
  in
  walk events;
  ignore start;
  let rows =
    Hashtbl.fold
      (fun (pfunc, pblock) (executions, cycles) acc ->
        { pfunc; pblock; executions; cycles } :: acc)
      table []
    |> List.sort (fun a b -> compare (b.cycles, a.pfunc, a.pblock) (a.cycles, b.pfunc, b.pblock))
  in
  (result, rows)

let by_function rows =
  let table = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt table r.pfunc) in
      Hashtbl.replace table r.pfunc (cur + r.cycles))
    rows;
  Hashtbl.fold (fun f c acc -> (f, c) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp_profile fmt rows =
  let total = List.fold_left (fun acc r -> acc + r.cycles) 0 rows in
  Format.fprintf fmt "@[<v>%-20s %-6s %10s %10s %7s@," "function" "block"
    "executions" "cycles" "share";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s B%-5d %10d %10d %6.1f%%@," r.pfunc r.pblock
        r.executions r.cycles
        (if total = 0 then 0.0 else 100.0 *. float_of_int r.cycles /. float_of_int total))
    rows;
  Format.fprintf fmt "@]"
