(** Execution tracing and cycle profiling on top of the simulator.

    A trace records every basic-block entry with its cycle timestamp; the
    profile attributes elapsed cycles to the block that was executing,
    giving the "where does the time go" view that motivates which loops
    deserve tighter annotations. *)

type event = {
  func : string;
  block : int;
  at_cycle : int;  (** cycle count when the block was entered *)
}

val record : Interp.t -> (unit -> 'a) -> 'a * event list
(** Run the thunk with tracing enabled and return its result plus the
    events in execution order. Nested/previous hooks are not preserved. *)

type profile_row = {
  pfunc : string;
  pblock : int;
  executions : int;
  cycles : int;    (** cycles attributed to this block *)
}

val profile : Interp.t -> (unit -> 'a) -> 'a * profile_row list
(** Like {!record} but aggregated: one row per executed block, cycles
    attributed to the block that was running, sorted by descending cycle
    count. The row cycles sum to the cycles elapsed during the thunk. *)

val by_function : profile_row list -> (string * int) list
(** Total attributed cycles per function, descending. *)

val pp_profile : Format.formatter -> profile_row list -> unit
