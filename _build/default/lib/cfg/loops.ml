type loop = {
  header : int;
  body : bool array;
  back_edges : (int * int) list;
  depth : int;
}

let in_loop loop b = loop.body.(b)

let detect cfg dom =
  let n = Cfg.nblocks cfg in
  let reachable = Cfg.reachable cfg in
  (* back edges grouped by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun { Cfg.src; dst } ->
      if reachable.(src) && Dominators.dominates dom dst src then begin
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_header dst) in
        Hashtbl.replace by_header dst ((src, dst) :: existing)
      end)
    (Cfg.edges cfg);
  let natural_loop header back_edges =
    let body = Array.make n false in
    body.(header) <- true;
    let rec mark b =
      if not body.(b) then begin
        body.(b) <- true;
        List.iter mark (Cfg.preds cfg b)
      end
    in
    List.iter (fun (src, _) -> mark src) back_edges;
    { header; body; back_edges = List.rev back_edges; depth = 0 }
  in
  let loops =
    Hashtbl.fold (fun header bes acc -> natural_loop header bes :: acc) by_header []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  (* nesting depth: number of loops whose body contains this header *)
  List.map
    (fun l ->
      let depth =
        List.length (List.filter (fun outer -> outer.body.(l.header)) loops)
      in
      { l with depth })
    loops

let entry_edges cfg loop =
  List.filter_map
    (fun p -> if loop.body.(p) then None else Some (p, loop.header))
    (Cfg.preds cfg loop.header)

let iteration_edges cfg loop =
  List.filter_map
    (fun s -> if loop.body.(s) then Some (loop.header, s) else None)
    (Cfg.succs cfg loop.header)
