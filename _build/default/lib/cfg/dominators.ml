(* Cooper-Harvey-Kennedy: iterate [idom(b) = intersect of processed preds]
   over reverse postorder until fixpoint, with the classic two-finger
   intersection walking up the idom tree by RPO number. *)

type t = { idoms : int array; rpo_number : int array }

let compute cfg =
  let n = Cfg.nblocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_number = Array.make n max_int in
  Array.iteri (fun i b -> rpo_number.(b) <- i) rpo;
  let idoms = Array.make n (-1) in
  let entry = Cfg.entry cfg in
  idoms.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_number.(a) > rpo_number.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idoms.(p) >= 0) (Cfg.preds cfg b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idoms.(b) <> new_idom then begin
              idoms.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  (* unreachable blocks: make them self-dominating so queries terminate *)
  for b = 0 to n - 1 do
    if idoms.(b) < 0 then idoms.(b) <- b
  done;
  { idoms; rpo_number }

let idom t b = t.idoms.(b)

let dominates t a b =
  let rec climb x =
    if x = a then true
    else begin
      let up = t.idoms.(x) in
      if up = x then false else climb up
    end
  in
  climb b

let dominance_depth t b =
  let rec climb x acc =
    let up = t.idoms.(x) in
    if up = x then acc else climb up (acc + 1)
  in
  climb b 0
