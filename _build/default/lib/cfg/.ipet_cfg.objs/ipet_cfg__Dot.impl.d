lib/cfg/dot.ml: Array Buffer Callgraph Cfg Ipet_isa List Loops Printf
