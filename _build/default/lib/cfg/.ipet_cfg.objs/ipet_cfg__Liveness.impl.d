lib/cfg/liveness.ml: Array Cfg Int Ipet_isa List Set
