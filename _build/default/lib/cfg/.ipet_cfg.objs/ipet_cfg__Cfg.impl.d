lib/cfg/cfg.ml: Array Format Ipet_isa List Printf String
