lib/cfg/callgraph.mli: Ipet_isa
