lib/cfg/callgraph.ml: Array Hashtbl Ipet_isa List String
