lib/cfg/cfg.mli: Format Ipet_isa
