lib/cfg/loops.ml: Array Cfg Dominators Hashtbl List Option
