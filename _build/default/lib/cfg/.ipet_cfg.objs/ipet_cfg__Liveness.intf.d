lib/cfg/liveness.mli: Ipet_isa
