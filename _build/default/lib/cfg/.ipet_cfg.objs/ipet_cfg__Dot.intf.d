lib/cfg/dot.mli: Callgraph Cfg Loops
