(** Per-block register liveness (backward may-analysis over the CFG).

    Used by the dead-code-elimination pass and the register allocator. A
    register is live at a point if some path from there reads it before
    writing it. Function parameters are live at entry by definition;
    registers are function-local in E32, so calls neither read nor clobber
    the caller's registers beyond their explicit operands. *)

type t

val compute : Ipet_isa.Prog.func -> t

val live_in : t -> block:int -> Ipet_isa.Instr.reg list
(** Registers live at the block's entry, sorted. *)

val live_out : t -> block:int -> Ipet_isa.Instr.reg list
(** Registers live after the block's terminator, sorted. *)

val live_sets_through_block :
  t -> Ipet_isa.Prog.block -> Ipet_isa.Instr.reg list array
(** [sets.(i)] = registers live just {e before} instruction [i]; the last
    entry (index [Array.length instrs]) is the set live just before the
    terminator. *)
