(** Control-flow-graph view of an E32 function.

    Nodes are the function's basic blocks; edges are the paper's
    [d]-variables. Every CFG also carries one virtual {e entry edge} into
    block 0 and one virtual {e exit edge} out of each returning block —
    these become [d_1] and the outgoing sink edges of the structural
    constraints. *)

type edge = { src : int; dst : int }
(** A d-edge from block [src] to block [dst]. *)

type t

val of_func : Ipet_isa.Prog.func -> t

val func : t -> Ipet_isa.Prog.func
val nblocks : t -> int
val entry : t -> int

val succs : t -> int -> int list
(** Successor blocks, in terminator order, duplicates removed. *)

val preds : t -> int -> int list

val edges : t -> edge list
(** All intra-function edges, deterministically ordered. *)

val exit_blocks : t -> int list
(** Blocks whose terminator is a return. *)

val reverse_postorder : t -> int array
(** Blocks reachable from the entry, in reverse postorder (entry first). *)

val reachable : t -> bool array

val pp : Format.formatter -> t -> unit
