module Prog = Ipet_isa.Prog
module Instr = Ipet_isa.Instr

type site = { caller : string; block : int; occurrence : int; callee : string }

type t = { program : Prog.t; all_sites : site list }

let of_program (program : Prog.t) =
  let all_sites =
    Array.to_list program.Prog.funcs
    |> List.concat_map (fun (f : Prog.func) ->
      Array.to_list f.Prog.blocks
      |> List.concat_map (fun (b : Prog.block) ->
        Prog.calls_of_block b
        |> List.mapi (fun occurrence callee ->
          { caller = f.Prog.name; block = b.Prog.id; occurrence; callee })))
  in
  { program; all_sites }

let sites t = t.all_sites

let sites_of_caller t name = List.filter (fun s -> s.caller = name) t.all_sites

let callees t name =
  sites_of_caller t name |> List.map (fun s -> s.callee) |> List.sort_uniq compare

let check_acyclic t =
  (* DFS with colors; on a back edge reconstruct the cycle from the stack *)
  let color = Hashtbl.create 16 in
  let cycle = ref None in
  let rec visit stack name =
    match Hashtbl.find_opt color name with
    | Some `Done -> ()
    | Some `Active ->
      if !cycle = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: _ when x = name -> x :: acc
          | x :: rest -> take (x :: acc) rest
        in
        cycle := Some (take [ name ] stack)
      end
    | None ->
      Hashtbl.replace color name `Active;
      List.iter (visit (name :: stack)) (callees t name);
      Hashtbl.replace color name `Done
  in
  Array.iter (fun (f : Prog.func) -> visit [] f.Prog.name) t.program.Prog.funcs;
  match !cycle with Some c -> Error c | None -> Ok ()

let topological_order t =
  (match check_acyclic t with
   | Ok () -> ()
   | Error cycle ->
     invalid_arg
       ("Callgraph.topological_order: recursive cycle " ^ String.concat " -> " cycle));
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter visit (callees t name);
      order := name :: !order
    end
  in
  Array.iter (fun (f : Prog.func) -> visit f.Prog.name) t.program.Prog.funcs;
  List.rev !order
