(** Graphviz export of CFGs, for documentation and debugging. *)

val cfg_to_dot : ?highlight_loops:Loops.loop list -> Cfg.t -> string

val callgraph_to_dot : Callgraph.t -> string
