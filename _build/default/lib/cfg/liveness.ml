module P = Ipet_isa.Prog
module I = Ipet_isa.Instr
module RSet = Set.Make (Int)

type t = { ins : RSet.t array; outs : RSet.t array }

let term_uses = function
  | I.Jump _ -> []
  | I.Branch (r, _, _) -> [ r ]
  | I.Return (Some (I.Reg r)) -> [ r ]
  | I.Return (Some (I.Imm _ | I.Fimm _)) | I.Return None -> []

(* transfer one instruction backwards over a live set *)
let transfer instr live =
  let live = List.fold_left (fun s d -> RSet.remove d s) live (I.defs instr) in
  List.fold_left (fun s u -> RSet.add u s) live (I.uses instr)

let block_transfer (block : P.block) live_out =
  let live = List.fold_left (fun s u -> RSet.add u s) live_out (term_uses block.P.term) in
  let n = Array.length block.P.instrs in
  let rec go i live = if i < 0 then live else go (i - 1) (transfer block.P.instrs.(i) live) in
  go (n - 1) live

let compute (func : P.func) =
  let cfg = Cfg.of_func func in
  let n = Array.length func.P.blocks in
  let ins = Array.make n RSet.empty in
  let outs = Array.make n RSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left (fun s succ -> RSet.union s ins.(succ)) RSet.empty
          (Cfg.succs cfg b)
      in
      let inn = block_transfer func.P.blocks.(b) out in
      if not (RSet.equal out outs.(b)) || not (RSet.equal inn ins.(b)) then begin
        outs.(b) <- out;
        ins.(b) <- inn;
        changed := true
      end
    done
  done;
  { ins; outs }

let live_in t ~block = RSet.elements t.ins.(block)
let live_out t ~block = RSet.elements t.outs.(block)

let live_sets_through_block t (block : P.block) =
  let n = Array.length block.P.instrs in
  let sets = Array.make (n + 1) [] in
  let live =
    List.fold_left (fun s u -> RSet.add u s) t.outs.(block.P.id)
      (term_uses block.P.term)
  in
  sets.(n) <- RSet.elements live;
  let live = ref live in
  for i = n - 1 downto 0 do
    live := transfer block.P.instrs.(i) !live;
    sets.(i) <- RSet.elements !live
  done;
  sets
