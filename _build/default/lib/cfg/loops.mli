(** Natural-loop detection.

    The paper's tool detects and marks loops automatically, then asks the
    user only for iteration bounds (Section III.B). A natural loop is the
    set of blocks that can reach a back edge [u -> h] (where [h] dominates
    [u]) without passing through [h]. Loops sharing a header are merged. *)

type loop = {
  header : int;
  body : bool array;           (** membership per block, header included *)
  back_edges : (int * int) list;
  depth : int;                 (** nesting depth, outermost = 1 *)
}

val detect : Cfg.t -> Dominators.t -> loop list
(** Loops ordered by header block id. *)

val entry_edges : Cfg.t -> loop -> (int * int) list
(** Edges into the header from outside the loop — the loop-entry count of
    constraints (14)–(15). *)

val iteration_edges : Cfg.t -> loop -> (int * int) list
(** Edges from the header into the loop body (header self-loops included) —
    each traversal is one loop iteration. *)

val in_loop : loop -> int -> bool
