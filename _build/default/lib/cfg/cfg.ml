module Prog = Ipet_isa.Prog
module Instr = Ipet_isa.Instr

type edge = { src : int; dst : int }

type t = {
  func : Prog.func;
  succs : int list array;
  preds : int list array;
}

let term_targets = function
  | Instr.Jump b -> [ b ]
  | Instr.Branch (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Instr.Return _ -> []

let of_func (func : Prog.func) =
  let n = Array.length func.Prog.blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun (b : Prog.block) -> succs.(b.Prog.id) <- term_targets b.Prog.term)
    func.Prog.blocks;
  for src = n - 1 downto 0 do
    List.iter (fun dst -> preds.(dst) <- src :: preds.(dst)) succs.(src)
  done;
  { func; succs; preds }

let func t = t.func
let nblocks t = Array.length t.func.Prog.blocks
let entry _ = 0
let succs t b = t.succs.(b)
let preds t b = t.preds.(b)

let edges t =
  let acc = ref [] in
  for src = nblocks t - 1 downto 0 do
    List.iter (fun dst -> acc := { src; dst } :: !acc) (List.rev t.succs.(src))
  done;
  List.rev !acc

let exit_blocks t =
  Array.to_list t.func.Prog.blocks
  |> List.filter_map (fun (b : Prog.block) ->
    match b.Prog.term with
    | Instr.Return _ -> Some b.Prog.id
    | Instr.Jump _ | Instr.Branch _ -> None)

let reverse_postorder t =
  let n = nblocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs t.succs.(b);
      order := b :: !order
    end
  in
  dfs (entry t);
  Array.of_list !order

let reachable t =
  let n = nblocks t in
  let seen = Array.make n false in
  Array.iter (fun b -> seen.(b) <- true) (reverse_postorder t);
  seen

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg %s:@," t.func.Prog.name;
  for b = 0 to nblocks t - 1 do
    Format.fprintf fmt "  B%d -> %s@," b
      (String.concat ", " (List.map (Printf.sprintf "B%d") t.succs.(b)))
  done;
  Format.fprintf fmt "@]"
