(** Call graph over an E32 program.

    Call sites are the f-edges of the paper (Fig. 4). The analysis requires
    a recursion-free program (Section II's decidability restriction), which
    {!check_acyclic} enforces. *)

type site = {
  caller : string;
  block : int;        (** block containing the call instruction *)
  occurrence : int;   (** 0-based occurrence of a call within that block *)
  callee : string;
}

type t

val of_program : Ipet_isa.Prog.t -> t

val sites : t -> site list
(** Every call site in the program, in program order. *)

val sites_of_caller : t -> string -> site list
val callees : t -> string -> string list

val check_acyclic : t -> (unit, string list) result
(** [Error cycle] reports one recursive cycle of function names. *)

val topological_order : t -> string list
(** Callees before callers; only meaningful on acyclic graphs.
    @raise Invalid_argument on recursive programs. *)
