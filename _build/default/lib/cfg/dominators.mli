(** Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

    Needed to identify back edges and natural loops, which is how the tool
    finds the loops the user must annotate with bounds. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int
(** Immediate dominator of a block; the entry is its own idom. Unreachable
    blocks report themselves. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b]? Every reachable block is
    dominated by itself and the entry. *)

val dominance_depth : t -> int -> int
(** Length of the idom chain to the entry (entry = 0). *)
