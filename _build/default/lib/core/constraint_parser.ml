exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- tokens -------------------------------------------------------------- *)

type token =
  | Tint of int
  | Tx of [ `Block of int | `Line of int ]
  | Tplus | Tminus
  | Teq | Tle | Tge
  | Tamp | Tbar
  | Tlparen | Trparen
  | Tend

let tokenize text =
  let n = String.length text in
  let out = ref [] in
  let rec scan_int i acc =
    if i < n && text.[i] >= '0' && text.[i] <= '9' then
      scan_int (i + 1) ((acc * 10) + (Char.code text.[i] - Char.code '0'))
    else (i, acc)
  in
  let rec go i =
    if i >= n then ()
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '0' .. '9' ->
        let j, v = scan_int i 0 in
        out := Tint v :: !out;
        go j
      | 'x' ->
        if i + 1 < n && text.[i + 1] = '@' then begin
          let j, v = scan_int (i + 2) 0 in
          if j = i + 2 then fail "expected a line number after x@";
          out := Tx (`Line v) :: !out;
          go j
        end
        else begin
          let j, v = scan_int (i + 1) 0 in
          if j = i + 1 then fail "expected a block id after x";
          out := Tx (`Block v) :: !out;
          go j
        end
      | '+' -> out := Tplus :: !out; go (i + 1)
      | '-' -> out := Tminus :: !out; go (i + 1)
      | '=' -> out := Teq :: !out; go (i + 1)
      | '<' when i + 1 < n && text.[i + 1] = '=' -> out := Tle :: !out; go (i + 2)
      | '>' when i + 1 < n && text.[i + 1] = '=' -> out := Tge :: !out; go (i + 2)
      | '&' -> out := Tamp :: !out; go (i + 1)
      | '|' -> out := Tbar :: !out; go (i + 1)
      | '(' -> out := Tlparen :: !out; go (i + 1)
      | ')' -> out := Trparen :: !out; go (i + 1)
      | c -> fail "illegal character %C in constraint" c
  in
  go 0;
  Array.of_list (List.rev (Tend :: !out))

(* --- parser -------------------------------------------------------------- *)

type state = { toks : token array; mutable pos : int; func : string }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let ref_lin st r =
  match r with
  | `Block b -> Functional.x ~func:st.func b
  | `Line l -> Functional.x_at ~func:st.func ~line:l

(* term := INT | [INT] ref *)
let parse_term st ~sign =
  match peek st with
  | Tint k ->
    advance st;
    (match peek st with
     | Tx r ->
       advance st;
       Functional.scale (sign * k) (ref_lin st r)
     | Tint _ | Tplus | Tminus | Teq | Tle | Tge | Tamp | Tbar | Tlparen
     | Trparen | Tend -> Functional.const (sign * k))
  | Tx r ->
    advance st;
    Functional.scale sign (ref_lin st r)
  | Tplus | Tminus | Teq | Tle | Tge | Tamp | Tbar | Tlparen | Trparen | Tend ->
    fail "expected a term"

let parse_lin st =
  let first_sign = if peek st = Tminus then (advance st; -1) else 1 in
  let acc = ref (parse_term st ~sign:first_sign) in
  let rec loop () =
    match peek st with
    | Tplus ->
      advance st;
      acc := Functional.add !acc (parse_term st ~sign:1);
      loop ()
    | Tminus ->
      advance st;
      acc := Functional.add !acc (parse_term st ~sign:(-1));
      loop ()
    | Tint _ | Tx _ | Teq | Tle | Tge | Tamp | Tbar | Tlparen | Trparen | Tend -> ()
  in
  loop ();
  !acc

let rec parse_disj st =
  let first = parse_conj st in
  let rec loop acc =
    if peek st = Tbar then begin
      advance st;
      loop (parse_conj st :: acc)
    end
    else List.rev acc
  in
  match loop [ first ] with
  | [ single ] -> single
  | several -> Functional.disj several

and parse_conj st =
  let first = parse_atom st in
  let rec loop acc =
    if peek st = Tamp then begin
      advance st;
      loop (parse_atom st :: acc)
    end
    else List.rev acc
  in
  match loop [ first ] with
  | [ single ] -> single
  | several -> Functional.conj several

and parse_atom st =
  if peek st = Tlparen then begin
    advance st;
    let inner = parse_disj st in
    if peek st <> Trparen then fail "expected ')'";
    advance st;
    inner
  end
  else begin
    let lhs = parse_lin st in
    let rel =
      match peek st with
      | Teq -> Functional.Eq
      | Tle -> Functional.Le
      | Tge -> Functional.Ge
      | Tint _ | Tx _ | Tplus | Tminus | Tamp | Tbar | Tlparen | Trparen | Tend ->
        fail "expected '=', '<=' or '>='"
    in
    advance st;
    let rhs = parse_lin st in
    Functional.Rel { Functional.lhs; rel; rhs }
  end

let parse_constraint ~func text =
  let st = { toks = tokenize text; pos = 0; func } in
  let c = parse_disj st in
  if peek st <> Tend then fail "trailing input in constraint %S" text;
  c

(* --- annotation files ---------------------------------------------------- *)

type annotation_file = {
  root : string option;
  loop_bounds : Annotation.t list;
  functional : Functional.t list;
}

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_annotation_text text =
  let root = ref None in
  let loops = ref [] in
  let constraints = ref [] in
  List.iteri
    (fun lineno raw ->
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        let context_fail fmt =
          Format.kasprintf
            (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" (lineno + 1) s)))
            fmt
        in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "root"; name ] -> root := Some name
        | "root" :: _ -> context_fail "root takes exactly one function name"
        | [ "loop"; func; hline; lo; hi ] ->
          (match (int_of_string_opt hline, int_of_string_opt lo, int_of_string_opt hi) with
           | Some hline, Some lo, Some hi ->
             loops := Annotation.loop ~func ~line:hline ~lo ~hi :: !loops
           | _ -> context_fail "loop expects: loop <func> <line> <lo> <hi>")
        | "loop" :: _ -> context_fail "loop expects: loop <func> <line> <lo> <hi>"
        | "constr" :: func :: rest when rest <> [] ->
          let body = String.concat " " rest in
          (try constraints := parse_constraint ~func body :: !constraints
           with Parse_error msg -> context_fail "%s" msg)
        | "constr" :: _ -> context_fail "constr expects: constr <func> <constraint>"
        | word :: _ -> context_fail "unknown directive %s" word
        | [] -> ()
      end)
    (String.split_on_char '\n' text);
  { root = !root; loop_bounds = List.rev !loops; functional = List.rev !constraints }
