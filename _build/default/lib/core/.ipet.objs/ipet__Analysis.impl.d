lib/core/analysis.ml: Annotation Array Flowvar Format Functional Hashtbl Ipet_cfg Ipet_isa Ipet_lp Ipet_machine Ipet_num List Option Printf String Structural
