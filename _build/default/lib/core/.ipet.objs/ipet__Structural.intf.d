lib/core/structural.mli: Callsite Flowvar Ipet_isa Ipet_lp
