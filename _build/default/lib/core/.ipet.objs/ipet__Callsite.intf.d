lib/core/callsite.mli: Format
