lib/core/functional.mli: Callsite Format Ipet_isa Ipet_lp Structural
