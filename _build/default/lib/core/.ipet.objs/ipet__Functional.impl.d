lib/core/functional.ml: Array Callsite Flowvar Format Hashtbl Ipet_isa Ipet_lang Ipet_lp Ipet_num List Option String Structural
