lib/core/callsite.ml: Format
