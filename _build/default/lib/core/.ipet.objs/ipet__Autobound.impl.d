lib/core/autobound.ml: Annotation Hashtbl Ipet_lang List
