lib/core/flowvar.mli: Ipet_lp
