lib/core/analysis.mli: Annotation Functional Ipet_isa Ipet_lp Ipet_machine Structural
