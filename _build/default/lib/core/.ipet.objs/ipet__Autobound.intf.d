lib/core/autobound.mli: Annotation Ipet_lang
