lib/core/constraint_parser.mli: Annotation Functional
