lib/core/annotation.ml: Array Flowvar Format Ipet_cfg Ipet_isa Ipet_lp Ipet_num List Printf Structural
