lib/core/annotation.mli: Ipet_isa Ipet_lp Structural
