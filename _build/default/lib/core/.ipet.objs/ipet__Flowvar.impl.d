lib/core/flowvar.ml: Ipet_lp Printf
