lib/core/report.mli: Analysis Ipet_isa Ipet_lp
