lib/core/structural.ml: Array Callsite Flowvar Ipet_cfg Ipet_isa Ipet_lp List Printf String
