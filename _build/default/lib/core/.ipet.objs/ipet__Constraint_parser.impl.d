lib/core/constraint_parser.ml: Annotation Array Char Format Functional List Printf String
