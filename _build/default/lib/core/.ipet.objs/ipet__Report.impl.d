lib/core/report.ml: Analysis Array Buffer Format Hashtbl Ipet_isa Ipet_lp List Option Printf String
