type t = { block : int; occurrence : int }

let make ?(occurrence = 0) block = { block; occurrence }

let pp fmt t = Format.fprintf fmt "B%d.%d" t.block t.occurrence
