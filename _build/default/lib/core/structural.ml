module P = Ipet_isa.Prog
module Cfg = Ipet_cfg.Cfg
module L = Ipet_lp.Linexpr
module Lp = Ipet_lp.Lp_problem

type instance = {
  ctx : Flowvar.ctx;
  func : P.func;
  sites : (Callsite.t * string * Flowvar.ctx) list;
}

let func_sites (func : P.func) =
  Array.to_list func.P.blocks
  |> List.concat_map (fun (b : P.block) ->
    P.calls_of_block b
    |> List.mapi (fun occurrence callee ->
      ({ Callsite.block = b.P.id; occurrence }, callee)))

let instances prog ~root =
  (match Ipet_cfg.Callgraph.check_acyclic (Ipet_cfg.Callgraph.of_program prog) with
   | Ok () -> ()
   | Error cycle ->
     invalid_arg
       ("Structural.instances: recursive program: " ^ String.concat " -> " cycle));
  let root_func =
    match P.find_func_opt prog root with
    | Some f -> f
    | None -> invalid_arg ("Structural.instances: unknown root " ^ root)
  in
  let rec expand ctx (func : P.func) =
    let sites =
      List.map
        (fun (site, callee) ->
          let label =
            Flowvar.site_label ~caller:func.P.name ~block:site.Callsite.block
              ~occurrence:site.Callsite.occurrence
          in
          (site, callee, Flowvar.extend_ctx ctx ~site:label))
        (func_sites func)
    in
    let self = { ctx; func; sites } in
    self
    :: List.concat_map
      (fun (_, callee, child_ctx) -> expand child_ctx (P.find_func prog callee))
      sites
  in
  expand Flowvar.root_ctx root_func

let instance_constraints (inst : instance) ~is_root =
  let fname = inst.func.P.name in
  let ctx = inst.ctx in
  let cfg = Cfg.of_func inst.func in
  let reachable = Cfg.reachable cfg in
  let x block = Flowvar.var (Flowvar.Block { ctx; func = fname; block }) in
  let d src dst = Flowvar.var (Flowvar.Edge { ctx; func = fname; src; dst }) in
  let entry = Flowvar.var (Flowvar.Entry { ctx; func = fname }) in
  let exit_edge block = Flowvar.var (Flowvar.Exit { ctx; func = fname; block }) in
  let origin what block = Printf.sprintf "structural:%s:B%d:%s" fname block what in
  let acc = ref [] in
  let push c = acc := c :: !acc in
  let n = Cfg.nblocks cfg in
  for b = 0 to n - 1 do
    if not reachable.(b) then
      push (Lp.eq ~origin:(origin "unreachable" b) (x b) L.zero)
    else begin
      (* inflow *)
      let inflow =
        List.fold_left (fun acc p -> L.add acc (d p b)) L.zero (Cfg.preds cfg b)
      in
      let inflow = if b = Cfg.entry cfg then L.add inflow entry else inflow in
      push (Lp.eq ~origin:(origin "in" b) (x b) inflow);
      (* outflow *)
      let outflow =
        List.fold_left (fun acc s -> L.add acc (d b s)) L.zero (Cfg.succs cfg b)
      in
      let is_exit = match inst.func.P.blocks.(b).P.term with
        | Ipet_isa.Instr.Return _ -> true
        | Ipet_isa.Instr.Jump _ | Ipet_isa.Instr.Branch _ -> false
      in
      let outflow = if is_exit then L.add outflow (exit_edge b) else outflow in
      push (Lp.eq ~origin:(origin "out" b) (x b) outflow)
    end
  done;
  (* f-edges: each call site executes once per execution of its block, and
     feeds the callee instance's entry edge *)
  List.iter
    (fun (site, callee, child_ctx) ->
      let f =
        Flowvar.var
          (Flowvar.Fedge
             { ctx; func = fname; block = site.Callsite.block;
               occurrence = site.Callsite.occurrence })
      in
      push
        (Lp.eq
           ~origin:(Printf.sprintf "call:%s:B%d.%d" fname site.Callsite.block
                      site.Callsite.occurrence)
           f (x site.Callsite.block));
      let callee_entry = Flowvar.var (Flowvar.Entry { ctx = child_ctx; func = callee }) in
      push (Lp.eq ~origin:(Printf.sprintf "entry:%s" callee) callee_entry f))
    inst.sites;
  if is_root then
    push (Lp.eq ~origin:"root-entry" entry (L.of_int 1));
  List.rev !acc

let constraints _prog insts =
  List.concat
    (List.mapi (fun i inst -> instance_constraints inst ~is_root:(i = 0)) insts)

let block_sum insts ~func ~block =
  List.fold_left
    (fun acc inst ->
      if inst.func.P.name = func then
        L.add acc (Flowvar.var (Flowvar.Block { ctx = inst.ctx; func; block }))
      else acc)
    L.zero insts

let instance_at insts ~root ~path =
  let rec follow ctx fname = function
    | [] ->
      List.find_opt (fun inst -> inst.ctx = ctx && inst.func.P.name = fname) insts
    | (site : Callsite.t) :: rest ->
      (match
         List.find_opt
           (fun inst -> inst.ctx = ctx && inst.func.P.name = fname)
           insts
       with
       | None -> None
       | Some inst ->
         (match
            List.find_opt
              (fun (s, _, _) ->
                s.Callsite.block = site.Callsite.block
                && s.Callsite.occurrence = site.Callsite.occurrence)
              inst.sites
          with
          | None -> None
          | Some (_, callee, child_ctx) -> follow child_ctx callee rest))
  in
  follow Flowvar.root_ctx root path
