(** Loop-bound annotations — the minimum user information the paper requires
    (Section III.C): for every loop, how many iterations per entry.

    A bound [lo..hi] on a loop with header [h] becomes, in every instance of
    the containing function (constraints (14)–(15) generalized):
    {v  lo * (entries into h)  <=  (header->body traversals)  <=  hi * (entries into h)  v}

    Caveat for compound conditions: [while (a && b)] compiles to two test
    blocks and the header is the [a] test, so the bounded edge counts
    {e a-true evaluations}. When the loop can exit through [b], that count
    can exceed the body executions by one per entry — size [hi]
    accordingly. *)

type t = {
  func : string;
  header : [ `Line of int | `Block of int ];
      (** loop identified by its header's source line (recommended — stable
          across compiler changes) or raw block id *)
  lo : int;
  hi : int;
}

val loop : func:string -> line:int -> lo:int -> hi:int -> t
val loop_at_block : func:string -> block:int -> lo:int -> hi:int -> t

type unbounded = {
  ufunc : string;
  header_block : int;
  header_line : int;  (** 0 when unknown *)
}

val constraints :
  Ipet_isa.Prog.t ->
  Structural.instance list ->
  t list ->
  Ipet_lp.Lp_problem.constr list * unbounded list
(** Loop-bound constraints for every loop of every instance, plus the list
    of loops that no annotation covers (the caller should refuse to analyze
    if it is non-empty — otherwise the ILP is unbounded). *)

exception Bad_annotation of string
(** Raised for annotations that match no loop, or with [lo > hi] / negative
    bounds. *)
