(** A call site within a function: which block, and which call occurrence
    inside that block (blocks may contain several calls). Paths of call
    sites starting at the analysis root identify function instances — the
    paper's [x8.f1] notation. *)

type t = { block : int; occurrence : int }

val make : ?occurrence:int -> int -> t
(** [make block] is the first call in that block. *)

val pp : Format.formatter -> t -> unit
