module P = Ipet_isa.Prog
module Cfg = Ipet_cfg.Cfg
module Loops = Ipet_cfg.Loops
module L = Ipet_lp.Linexpr
module Lp = Ipet_lp.Lp_problem

type t = {
  func : string;
  header : [ `Line of int | `Block of int ];
  lo : int;
  hi : int;
}

let loop ~func ~line ~lo ~hi = { func; header = `Line line; lo; hi }
let loop_at_block ~func ~block ~lo ~hi = { func; header = `Block block; lo; hi }

type unbounded = { ufunc : string; header_block : int; header_line : int }

exception Bad_annotation of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_annotation s)) fmt

let check_sane ann =
  if ann.lo < 0 || ann.hi < ann.lo then
    fail "loop bound [%d, %d] on %s is malformed" ann.lo ann.hi ann.func

let matches (func : P.func) (loop : Loops.loop) ann =
  ann.func = func.P.name
  && (match ann.header with
      | `Block b -> b = loop.Loops.header
      | `Line l -> func.P.blocks.(loop.Loops.header).P.src_line = l)

let constraints _prog insts annotations =
  List.iter check_sane annotations;
  let used = Array.make (List.length annotations) false in
  let acc = ref [] and unbounded = ref [] in
  List.iter
    (fun (inst : Structural.instance) ->
      let func = inst.Structural.func in
      let ctx = inst.Structural.ctx in
      let cfg = Cfg.of_func func in
      let dom = Ipet_cfg.Dominators.compute cfg in
      let loops = Loops.detect cfg dom in
      List.iter
        (fun (l : Loops.loop) ->
          let edge_sum edges =
            List.fold_left
              (fun e (src, dst) ->
                L.add e
                  (Flowvar.var
                     (Flowvar.Edge { ctx; func = func.P.name; src; dst })))
              L.zero edges
          in
          let entry = edge_sum (Loops.entry_edges cfg l) in
          let iter = edge_sum (Loops.iteration_edges cfg l) in
          (* apply every matching annotation: several sound bounds on the
             same loop (e.g. manual + inferred) intersect *)
          let matched = ref false in
          List.iteri
            (fun i ann ->
              if matches func l ann then begin
                matched := true;
                used.(i) <- true;
                let origin =
                  Printf.sprintf "loop-bound:%s:B%d:[%d,%d]" func.P.name
                    l.Loops.header ann.lo ann.hi
                in
                acc :=
                  Lp.ge ~origin iter (L.scale (Ipet_num.Rat.of_int ann.lo) entry)
                  :: Lp.le ~origin iter (L.scale (Ipet_num.Rat.of_int ann.hi) entry)
                  :: !acc
              end)
            annotations;
          if not !matched then begin
            let u =
              { ufunc = func.P.name;
                header_block = l.Loops.header;
                header_line = func.P.blocks.(l.Loops.header).P.src_line }
            in
            if not (List.mem u !unbounded) then unbounded := u :: !unbounded
          end)
        loops)
    insts;
  (* an unused annotation is an error only when its function is part of the
     analyzed call tree: annotations for other roots are simply ignored *)
  let analyzed =
    List.map (fun (i : Structural.instance) -> i.Structural.func.P.name) insts
  in
  List.iteri
    (fun i u ->
      if not u then begin
        let ann = List.nth annotations i in
        if List.mem ann.func analyzed then begin
          let where = match ann.header with
            | `Line l -> Printf.sprintf "line %d" l
            | `Block b -> Printf.sprintf "block %d" b
          in
          fail "annotation on %s at %s matches no loop" ann.func where
        end
      end)
    (Array.to_list used);
  (List.rev !acc, List.rev !unbounded)
