type ctx = string

let root_ctx = ""

let site_label ~caller ~block ~occurrence =
  Printf.sprintf "%s.B%d.%d" caller block occurrence

let extend_ctx ctx ~site = if ctx = "" then site else ctx ^ "/" ^ site

type t =
  | Block of { ctx : ctx; func : string; block : int }
  | Edge of { ctx : ctx; func : string; src : int; dst : int }
  | Entry of { ctx : ctx; func : string }
  | Exit of { ctx : ctx; func : string; block : int }
  | Fedge of { ctx : ctx; func : string; block : int; occurrence : int }

let with_ctx ctx s = if ctx = "" then s else s ^ "@" ^ ctx

let name = function
  | Block { ctx; func; block } -> with_ctx ctx (Printf.sprintf "x:%s:%d" func block)
  | Edge { ctx; func; src; dst } ->
    with_ctx ctx (Printf.sprintf "d:%s:%d:%d" func src dst)
  | Entry { ctx; func } -> with_ctx ctx (Printf.sprintf "d:%s:in" func)
  | Exit { ctx; func; block } -> with_ctx ctx (Printf.sprintf "d:%s:out:%d" func block)
  | Fedge { ctx; func; block; occurrence } ->
    with_ctx ctx (Printf.sprintf "f:%s:%d:%d" func block occurrence)

let var v = Ipet_lp.Linexpr.var (name v)

let pretty = function
  | Block { ctx; func; block } -> with_ctx ctx (Printf.sprintf "x_%s_%d" func block)
  | Edge { ctx; func; src; dst } ->
    with_ctx ctx (Printf.sprintf "d_%s_%d_%d" func src dst)
  | Entry { ctx; func } -> with_ctx ctx (Printf.sprintf "d_%s_in" func)
  | Exit { ctx; func; block } -> with_ctx ctx (Printf.sprintf "d_%s_out%d" func block)
  | Fedge { ctx; func; block; occurrence } ->
    with_ctx ctx (Printf.sprintf "f_%s_%d_%d" func block occurrence)
