(** Automatic loop-bound inference — the paper's Section VII future work
    ("using symbolic analysis techniques to automatically derive some of the
    functionality constraints").

    The analyzer recognizes counted [for] loops of the shape

    {v for (i = c0; i < c1; i = i + c2) body      (also <=) v}

    with integer-literal [c0], [c1], [c2 > 0] and an induction variable that
    the body never reassigns (MC has no pointers, so a call cannot modify a
    local either — the check is purely syntactic and sound). Such a loop
    runs exactly [ceil((c1 - c0) / c2)] (resp. [+1] for [<=]) iterations per
    entry, unless a [break] or [return] inside the body can leave early, in
    which case only the upper bound is kept.

    Bounds the user supplies explicitly always take precedence: pass the
    inferred list {e after} the manual one to {!Analysis.spec} — annotation
    matching picks the first match. *)

val infer : Ipet_lang.Ast.program -> Annotation.t list
(** Inferred bounds for every recognizable loop of every function. *)

val infer_func : Ipet_lang.Ast.func -> Annotation.t list
