(** Program functionality constraints — Section III.C.

    Users express path facts as linear (in)equalities over execution counts,
    combined with conjunction ([&]) and disjunction ([|]). A disjunctive
    constraint system expands into a {e set of conjunctive constraint sets}
    (DNF); each set is combined with the structural constraints and solved
    as a separate ILP, exactly as the paper describes. Trivially
    contradictory sets (e.g. [x3 = 0 & x3 = 1]) are pruned before reaching
    the solver — the mechanism that reduces dhry's 2³ sets to 3. *)

type count_ref =
  | Block_ref of { func : string; block : int }
      (** [x_i]: count of a block, summed over every instance of the
          function *)
  | Line_ref of { func : string; line : int }
      (** the block starting at a source line (as shown by {!Report}) *)
  | Scoped_ref of { path : Callsite.t list; func : string; block : int }
      (** [x8.f1]-style: the block's count within the instance reached by
          the given call path from the analysis root *)
  | Scoped_line_ref of { path : Callsite.t list; func : string; line : int }

type lin = { terms : (int * count_ref) list; const : int }

type rel = Le | Ge | Eq

type atom = { lhs : lin; rel : rel; rhs : lin }

type t = Rel of atom | And of t list | Or of t list

(** {1 Construction} *)

val x : func:string -> int -> lin
val x_at : func:string -> line:int -> lin
val x_in : path:Callsite.t list -> func:string -> int -> lin
val x_at_in : path:Callsite.t list -> func:string -> line:int -> lin
val const : int -> lin
val scale : int -> lin -> lin
val add : lin -> lin -> lin
val sub : lin -> lin -> lin

val ( =. ) : lin -> lin -> t
val ( <=. ) : lin -> lin -> t
val ( >=. ) : lin -> lin -> t
val ( &&. ) : t -> t -> t
val ( ||. ) : t -> t -> t
val conj : t list -> t
val disj : t list -> t

(** {1 DNF expansion and pruning} *)

type conj_set = atom list
(** One conjunctive constraint set. *)

val dnf : t list -> conj_set list
(** Expand the conjunction of the given constraints into disjunctive normal
    form. With no disjunctions the result is a single set. *)

val prune_null_sets : conj_set list -> conj_set list * int
(** Drop sets whose single-variable atoms are contradictory (interval
    emptiness), returning survivors and the number pruned. *)

(** {1 Resolution to LP constraints} *)

exception Resolution_error of string

val atom_to_constr :
  Ipet_isa.Prog.t ->
  Structural.instance list ->
  root:string ->
  atom ->
  Ipet_lp.Lp_problem.constr
(** @raise Resolution_error on dangling block/line/path references. *)

val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> atom -> unit
