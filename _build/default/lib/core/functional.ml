module P = Ipet_isa.Prog
module L = Ipet_lp.Linexpr
module Lp = Ipet_lp.Lp_problem

type count_ref =
  | Block_ref of { func : string; block : int }
  | Line_ref of { func : string; line : int }
  | Scoped_ref of { path : Callsite.t list; func : string; block : int }
  | Scoped_line_ref of { path : Callsite.t list; func : string; line : int }

type lin = { terms : (int * count_ref) list; const : int }

type rel = Le | Ge | Eq

type atom = { lhs : lin; rel : rel; rhs : lin }

type t = Rel of atom | And of t list | Or of t list

let x ~func block = { terms = [ (1, Block_ref { func; block }) ]; const = 0 }
let x_at ~func ~line = { terms = [ (1, Line_ref { func; line }) ]; const = 0 }

let x_in ~path ~func block =
  { terms = [ (1, Scoped_ref { path; func; block }) ]; const = 0 }

let x_at_in ~path ~func ~line =
  { terms = [ (1, Scoped_line_ref { path; func; line }) ]; const = 0 }

let const c = { terms = []; const = c }

let scale k lin =
  { terms = List.map (fun (c, r) -> (k * c, r)) lin.terms; const = k * lin.const }

let add a b = { terms = a.terms @ b.terms; const = a.const + b.const }
let sub a b = add a (scale (-1) b)

let ( =. ) lhs rhs = Rel { lhs; rel = Eq; rhs }
let ( <=. ) lhs rhs = Rel { lhs; rel = Le; rhs }
let ( >=. ) lhs rhs = Rel { lhs; rel = Ge; rhs }
let ( &&. ) a b = And [ a; b ]
let ( ||. ) a b = Or [ a; b ]
let conj ts = And ts
let disj ts = Or ts

type conj_set = atom list

(* DNF of one constraint: a list of alternative conjunctive sets *)
let rec dnf_one = function
  | Rel a -> [ [ a ] ]
  | And ts ->
    List.fold_left
      (fun acc t ->
        let alts = dnf_one t in
        List.concat_map (fun set -> List.map (fun alt -> set @ alt) alts) acc)
      [ [] ] ts
  | Or ts -> List.concat_map dnf_one ts

let dnf constraints = dnf_one (And constraints)

(* --- null-set pruning --------------------------------------------------- *)

(* normalize an atom into (terms, rel, bound): sum(terms) rel bound *)
let normalize { lhs; rel; rhs } =
  let d = sub lhs rhs in
  (d.terms, rel, -d.const)

(* merge duplicate refs so that [x - x <= -1] style contradictions and
   single-variable bounds are recognized *)
let merge_terms terms =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (c, r) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt table r) in
      Hashtbl.replace table r (cur + c))
    terms;
  Hashtbl.fold (fun r c acc -> if c = 0 then acc else (c, r) :: acc) table []

exception Contradiction

let prune_null_sets sets =
  let is_null set =
    (* intervals per single-variable ref; execution counts are >= 0 *)
    let lo = Hashtbl.create 8 and hi = Hashtbl.create 8 in
    let tighten_lo r v =
      let cur = Option.value ~default:0 (Hashtbl.find_opt lo r) in
      if v > cur then Hashtbl.replace lo r v
    in
    let tighten_hi r v =
      match Hashtbl.find_opt hi r with
      | Some cur when cur <= v -> ()
      | Some _ | None -> Hashtbl.replace hi r v
    in
    try
      List.iter
        (fun atom ->
          let terms, rel, bound = normalize atom in
          match merge_terms terms with
          | [] ->
            (* constant atom: 0 rel bound *)
            let sat = match rel with
              | Le -> 0 <= bound
              | Ge -> 0 >= bound
              | Eq -> bound = 0
            in
            if not sat then raise Contradiction
          | [ (c, r) ] ->
            (* c*x rel bound; only exact integer deductions *)
            let le v = tighten_hi r v and ge v = tighten_lo r v in
            (match rel with
             | Eq ->
               if bound mod c <> 0 then raise Contradiction
               else begin
                 le (bound / c);
                 ge (bound / c)
               end
             | Le ->
               if c > 0 then begin
                 (* x <= floor(bound/c) *)
                 let q = if bound >= 0 then bound / c else -(((-bound) + c - 1) / c) in
                 le q
               end
               else begin
                 let c = -c in
                 (* x >= ceil(-bound'/...) : -c x <= bound => x >= -bound/c *)
                 let v = -bound in
                 let q = if v >= 0 then (v + c - 1) / c else -((-v) / c) in
                 ge q
               end
             | Ge ->
               if c > 0 then begin
                 let q = if bound >= 0 then (bound + c - 1) / c else -((-bound) / c) in
                 ge q
               end
               else begin
                 let c = -c in
                 let v = -bound in
                 let q = if v >= 0 then v / c else -(((-v) + c - 1) / c) in
                 le q
               end)
          | _ :: _ :: _ -> ())
        set;
      (* empty interval? (counts are naturally >= 0, so hi < 0 is null too) *)
      Hashtbl.iter
        (fun r h ->
          if h < 0 then raise Contradiction;
          let l = Option.value ~default:0 (Hashtbl.find_opt lo r) in
          if l > h then raise Contradiction)
        hi;
      false
    with Contradiction -> true
  in
  let survivors = List.filter (fun s -> not (is_null s)) sets in
  (survivors, List.length sets - List.length survivors)

(* --- resolution --------------------------------------------------------- *)

exception Resolution_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Resolution_error s)) fmt

let resolve_line prog ~func ~line =
  let f =
    match P.find_func_opt prog func with
    | Some f -> f
    | None -> fail "unknown function %s" func
  in
  match Ipet_lang.Frontend.block_at_line f line with
  | Some b -> b
  | None -> fail "no basic block of %s starts at line %d" func line

let check_block prog ~func ~block =
  match P.find_func_opt prog func with
  | None -> fail "unknown function %s" func
  | Some f ->
    if block < 0 || block >= Array.length f.P.blocks then
      fail "%s has no block %d" func block

let ref_to_linexpr prog insts ~root r =
  let scoped path func block =
    match Structural.instance_at insts ~root ~path with
    | Some inst when inst.Structural.func.P.name = func ->
      Flowvar.var
        (Flowvar.Block { ctx = inst.Structural.ctx; func; block })
    | Some inst ->
      fail "call path reaches %s, not %s" inst.Structural.func.P.name func
    | None -> fail "no instance of %s on the given call path" func
  in
  match r with
  | Block_ref { func; block } ->
    check_block prog ~func ~block;
    let sum = Structural.block_sum insts ~func ~block in
    if L.equal sum L.zero then fail "function %s is never called from the root" func;
    sum
  | Line_ref { func; line } ->
    let block = resolve_line prog ~func ~line in
    let sum = Structural.block_sum insts ~func ~block in
    if L.equal sum L.zero then fail "function %s is never called from the root" func;
    sum
  | Scoped_ref { path; func; block } ->
    check_block prog ~func ~block;
    scoped path func block
  | Scoped_line_ref { path; func; line } ->
    scoped path func (resolve_line prog ~func ~line)

let lin_to_linexpr prog insts ~root lin =
  List.fold_left
    (fun acc (c, r) ->
      L.add acc (L.scale (Ipet_num.Rat.of_int c) (ref_to_linexpr prog insts ~root r)))
    (L.of_int lin.const) lin.terms

let atom_to_constr prog insts ~root atom =
  let lhs = lin_to_linexpr prog insts ~root atom.lhs in
  let rhs = lin_to_linexpr prog insts ~root atom.rhs in
  let origin = "functional" in
  match atom.rel with
  | Le -> Lp.le ~origin lhs rhs
  | Ge -> Lp.ge ~origin lhs rhs
  | Eq -> Lp.eq ~origin lhs rhs

(* --- printing ----------------------------------------------------------- *)

let pp_ref fmt = function
  | Block_ref { func; block } -> Format.fprintf fmt "x_%s_%d" func block
  | Line_ref { func; line } -> Format.fprintf fmt "x_%s@L%d" func line
  | Scoped_ref { path; func; block } ->
    Format.fprintf fmt "x_%s_%d.%s" func block
      (String.concat "." (List.map (Format.asprintf "%a" Callsite.pp) path))
  | Scoped_line_ref { path; func; line } ->
    Format.fprintf fmt "x_%s@L%d.%s" func line
      (String.concat "." (List.map (Format.asprintf "%a" Callsite.pp) path))

let pp_lin fmt lin =
  let first = ref true in
  let sep sign =
    if !first then begin
      first := false;
      if sign < 0 then Format.pp_print_string fmt "-"
    end
    else Format.pp_print_string fmt (if sign < 0 then " - " else " + ")
  in
  List.iter
    (fun (c, r) ->
      if c <> 0 then begin
        sep c;
        if abs c <> 1 then Format.fprintf fmt "%d " (abs c);
        pp_ref fmt r
      end)
    lin.terms;
  if lin.const <> 0 || !first then begin
    sep lin.const;
    Format.fprintf fmt "%d" (abs lin.const)
  end

let rel_string = function Le -> "<=" | Ge -> ">=" | Eq -> "="

let pp_atom fmt a =
  Format.fprintf fmt "%a %s %a" pp_lin a.lhs (rel_string a.rel) pp_lin a.rhs

let rec pp fmt = function
  | Rel a -> pp_atom fmt a
  | And ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
         pp)
      ts
  | Or ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
         pp)
      ts
