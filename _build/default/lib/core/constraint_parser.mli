(** Text syntax for functionality constraints and annotation files, used by
    the cinderella CLI.

    Constraint grammar (within a function scope):
    {v
    constraint ::= conj { '|' conj }
    conj       ::= atom { '&' atom }
    atom       ::= '(' constraint ')'  |  lin rel lin
    rel        ::= '='  |  '<='  |  '>='
    lin        ::= ['-'] term { ('+'|'-') term }
    term       ::= INT  |  [INT] ref
    ref        ::= 'x' INT        block by id (as printed in the listing)
                |  'x' '@' INT    block by source line
    v}

    Annotation files are line oriented; [#] starts a comment:
    {v
    root <function>
    loop <function> <header-line> <lo> <hi>
    constr <function> <constraint>
    v} *)

exception Parse_error of string

val parse_constraint : func:string -> string -> Functional.t
(** @raise Parse_error on malformed input. *)

type annotation_file = {
  root : string option;
  loop_bounds : Annotation.t list;
  functional : Functional.t list;
}

val parse_annotation_text : string -> annotation_file
(** @raise Parse_error on malformed input (with the offending line). *)
