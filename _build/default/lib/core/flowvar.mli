(** Names of the ILP flow variables.

    The paper attaches [x_i] to basic blocks, [d_i] to CFG edges and [f_i]
    to call edges. Because caller/callee constraints like [x8.f1] need
    per-call-site instances of the callee's variables, every variable is
    additionally qualified by a {e context}: the chain of call sites from
    the analysis root (virtual inlining). *)

type ctx = string
(** Context key: [""] for the root instance; extended by {!extend_ctx} for
    each call site on the path. *)

val root_ctx : ctx

val site_label : caller:string -> block:int -> occurrence:int -> string

val extend_ctx : ctx -> site:string -> ctx

type t =
  | Block of { ctx : ctx; func : string; block : int }
  | Edge of { ctx : ctx; func : string; src : int; dst : int }
  | Entry of { ctx : ctx; func : string }  (** virtual edge into block 0 *)
  | Exit of { ctx : ctx; func : string; block : int }
      (** virtual edge out of a returning block *)
  | Fedge of { ctx : ctx; func : string; block : int; occurrence : int }

val name : t -> string
(** Unique LP variable name. *)

val var : t -> Ipet_lp.Linexpr.t
(** The variable as a linear expression. *)

val pretty : t -> string
(** Paper-style rendering: [x_3], [d_2], [f_1], with context suffix when not
    in the root context. *)
