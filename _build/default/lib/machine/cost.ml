module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout

type bounds = { best : int; worst : int; worst_warm : int }

(* per-instruction cost bounds: identical except for loads when a data
   cache is modelled (best assumes hits, worst assumes misses) *)
let instr_bounds ?dcache instr =
  match (instr, dcache) with
  | Ipet_isa.Instr.Load _, Some d ->
    let base = Timing.load_base in
    (base, base + d.Icache.miss_penalty)
  | _, (Some _ | None) ->
    let c = Timing.issue instr in
    (c, c)

let block_bounds ?dcache cfg layout ~func (block : P.block) =
  let best_body, worst_body =
    Array.fold_left
      (fun (b, w) i ->
        let ib, iw = instr_bounds ?dcache i in
        (b + ib, w + iw))
      (0, 0) block.P.instrs
  in
  let stalls = Pipeline.block_stalls block.P.instrs in
  let term_best, term_worst = Timing.term_bounds block.P.term in
  let addr = Layout.block_addr layout ~func ~block:block.P.id in
  let size = Layout.block_size_bytes layout ~func ~block:block.P.id in
  let lines = Icache.lines_spanned cfg ~addr ~size in
  { best = best_body + stalls + term_best;
    worst_warm = worst_body + stalls + term_worst;
    worst = worst_body + stalls + term_worst + (lines * cfg.Icache.miss_penalty) }

let func_bounds ?dcache cfg layout (func : P.func) =
  Array.map
    (fun b -> block_bounds ?dcache cfg layout ~func:func.P.name b)
    func.P.blocks
