(** Per-basic-block execution-time bounds — the [c_i] of the objective
    function (1).

    Following Section IV, the cost of a block must be a constant, so:
    best case assumes every instruction fetch hits the cache; worst case
    charges a full line fill for {e every} cache line the block spans on
    {e every} execution. Deterministic pipeline stalls and terminator
    bounds are added to both. [worst_warm] is the worst case without the
    cache-miss component, used by the first-iteration-split refinement that
    Section IV suggests. *)

type bounds = {
  best : int;
  worst : int;
  worst_warm : int;  (** worst case assuming all fetches hit *)
}

val block_bounds :
  ?dcache:Icache.config ->
  Icache.config ->
  Ipet_isa.Layout.t ->
  func:string ->
  Ipet_isa.Prog.block ->
  bounds
(** [dcache] switches loads from the flat-latency memory model to
    hit-in-the-best-case / miss-in-the-worst-case data-cache bounds. *)

val func_bounds :
  ?dcache:Icache.config ->
  Icache.config ->
  Ipet_isa.Layout.t ->
  Ipet_isa.Prog.func ->
  bounds array
(** Bounds for every block of the function, indexed by block id. *)
