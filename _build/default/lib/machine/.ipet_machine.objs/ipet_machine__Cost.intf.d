lib/machine/cost.mli: Icache Ipet_isa
