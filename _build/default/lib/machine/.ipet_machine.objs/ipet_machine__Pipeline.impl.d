lib/machine/pipeline.ml: Array Ipet_isa List Timing
