lib/machine/cost.ml: Array Icache Ipet_isa Pipeline Timing
