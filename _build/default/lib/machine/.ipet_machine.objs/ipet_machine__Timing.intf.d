lib/machine/timing.mli: Ipet_isa
