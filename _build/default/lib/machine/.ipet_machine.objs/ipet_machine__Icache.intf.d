lib/machine/icache.mli:
