lib/machine/timing.ml: Ipet_isa
