lib/machine/pipeline.mli: Ipet_isa
