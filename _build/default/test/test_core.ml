(* Tests of the IPET core: structural constraints, functionality
   constraints, loop bounds, and full analyses — including the paper's
   check_data example (Fig. 5) end to end. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module P = Ipet_isa.Prog
module V = Ipet_isa.Value
module Interp = Ipet_sim.Interp
module Lp = Ipet_lp.Lp_problem
module Simplex = Ipet_lp.Simplex
module Rat = Ipet_num.Rat
module Flowvar = Ipet.Flowvar
module Structural = Ipet.Structural
module Functional = Ipet.Functional
module Annotation = Ipet.Annotation
module Analysis = Ipet.Analysis
module Cost = Ipet_machine.Cost

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = Frontend.compile_string_exn src

(* Build an exact environment for structural constraints from a simulation,
   using the interpreter's context-qualified counters: each per-call-path
   instance variable maps to the count observed on exactly that path. *)
let env_of_sim m _root =
  (* "caller.B3.1" -> (caller, 3, 1) *)
  let parse_site s =
    match String.split_on_char '.' s with
    | [ caller; blk; occ ] when String.length blk > 1 && blk.[0] = 'B' ->
      (caller, int_of_string (String.sub blk 1 (String.length blk - 1)),
       int_of_string occ)
    | _ -> failwith ("bad site label " ^ s)
  in
  fun name ->
    let base, path =
      match String.index_opt name '@' with
      | Some i ->
        let ctx = String.sub name (i + 1) (String.length name - i - 1) in
        (String.sub name 0 i, List.map parse_site (String.split_on_char '/' ctx))
      | None -> (name, [])
    in
    match String.split_on_char ':' base with
    | [ "x"; func; block ] ->
      Rat.of_int (Interp.ctx_block_count m ~path ~func ~block:(int_of_string block))
    | [ "d"; func; "in" ] ->
      Rat.of_int (Interp.ctx_entry_count m ~path ~func)
    | [ "d"; func; "out"; block ] ->
      (* exit edge of a return block = its execution count *)
      Rat.of_int (Interp.ctx_block_count m ~path ~func ~block:(int_of_string block))
    | [ "d"; func; src; dst ] ->
      Rat.of_int
        (Interp.ctx_edge_count m ~path ~func ~src:(int_of_string src)
           ~dst:(int_of_string dst))
    | [ "f"; func; block; occ ] ->
      Rat.of_int
        (Interp.ctx_call_count m ~path ~caller:func ~block:(int_of_string block)
           ~occurrence:(int_of_string occ))
    | _ -> Rat.zero

let simulate src root args =
  let compiled = compile src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  ignore (Interp.call m root (List.map (fun i -> V.Vint i) args));
  m

(* --- structural constraints -------------------------------------------- *)

let assert_structural_satisfied src root args =
  let m = simulate src root args in
  let prog = Interp.program m in
  let insts = Structural.instances prog ~root in
  let constraints = Structural.constraints prog insts in
  let env = env_of_sim m root in
  List.iter
    (fun c ->
      if not (Lp.satisfies env c) then
        Alcotest.fail
          (Format.asprintf "violated: %a" Lp.pp_constr c))
    constraints

let test_structural_if_else () =
  assert_structural_satisfied
    "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }" "f" [ 1 ];
  assert_structural_satisfied
    "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }" "f" [ 0 ]

let test_structural_while () =
  assert_structural_satisfied
    "int g(int p) { int q; q = p; while (q < 10) q = q + 1; return q; }" "g" [ 0 ];
  assert_structural_satisfied
    "int g(int p) { int q; q = p; while (q < 10) q = q + 1; return q; }" "g" [ 42 ]

let test_structural_calls () =
  let src = {|
    int store_cnt;
    void store(int i) { store_cnt = store_cnt + i; }
    void main_task() {
      int i; int n;
      i = 10;
      store(i);
      n = 2 * i;
      store(n);
    }
  |} in
  assert_structural_satisfied src "main_task" []

let test_structural_fig2_shape () =
  (* the paper's Fig. 2: if-then-else gives x1 = d1 = d2 + d3 etc. *)
  let compiled = compile "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }" in
  let insts = Structural.instances compiled.Compile.prog ~root:"f" in
  let cs = Structural.constraints compiled.Compile.prog insts in
  (* 4 blocks -> 8 flow equations + root entry pin *)
  check_int "constraint count" 9 (List.length cs)

let prop_structural_random =
  (* random structured programs: simulation counts satisfy every structural
     constraint for random arguments *)
  QCheck.Test.make ~name:"structural constraints hold on random programs"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range (-4) 12))
    (fun (seed, arg) ->
      let src = Test_cfg.random_program_src seed in
      let m = simulate src "f" [ arg ] in
      let prog = Interp.program m in
      let insts = Structural.instances prog ~root:"f" in
      let constraints = Structural.constraints prog insts in
      let env = env_of_sim m "f" in
      List.for_all (Lp.satisfies env) constraints)

(* --- functionality constraints ------------------------------------------ *)

let test_dnf_counts () =
  let open Functional in
  let a = x ~func:"f" 1 =. const 0 in
  let b = x ~func:"f" 2 =. const 0 in
  let c = x ~func:"f" 3 =. const 0 in
  (* three binary disjunctions expand to 8 sets, like dhry in Table I *)
  let sets = dnf [ a ||. b; b ||. c; a ||. c ] in
  check_int "2^3 sets" 8 (List.length sets);
  (* a single conjunction stays a single set *)
  check_int "conjunction" 1 (List.length (dnf [ a &&. b; c ]))

let test_null_pruning () =
  let open Functional in
  (* (x1=0 & x1=1) is null; (x1=0 & x2=1) is not *)
  let x1 = x ~func:"f" 1 and x2 = x ~func:"f" 2 in
  let c = (x1 =. const 0 ||. (x1 =. const 1)) &&. (x1 =. const 0 ||. (x2 =. const 1)) in
  let sets = dnf [ c ] in
  check_int "4 sets before pruning" 4 (List.length sets);
  let survivors, pruned = prune_null_sets sets in
  (* x1=0&x1=0 ok; x1=0&x2=1 ok; x1=1&x1=0 null; x1=1&x2=1 ok *)
  check_int "pruned" 1 pruned;
  check_int "survivors" 3 (List.length survivors)

let test_null_pruning_negative_count () =
  let open Functional in
  (* execution counts are non-negative: x <= -1 is null *)
  let survivors, pruned = prune_null_sets (dnf [ x ~func:"f" 1 <=. const (-1) ]) in
  check_int "pruned" 1 pruned;
  check_int "none survive" 0 (List.length survivors)

(* --- check_data: the paper's running example ---------------------------- *)

(* Line numbers matter: the loop header (while) is on line 8, the negative
   branch on line 10, the increment branch on line 13, return 0 on line 18,
   return 1 on line 20. *)
let check_data_src = {|
int data[10];

int check_data() {
  int i; int morecheck; int wrongone;
  morecheck = 1;
  i = 0;
  wrongone = 0 - 1;
  while (morecheck) {
    if (data[i] < 0) {
      wrongone = i;
      morecheck = 0;
    } else {
      i = i + 1;
      if (i >= 10)
        morecheck = 0;
    }
  }
  if (wrongone >= 0)
    return 0;
  else
    return 1;
}
|}

let check_data_spec ?(functional = []) prog =
  Analysis.spec prog ~root:"check_data"
    ~loop_bounds:[ Annotation.loop ~func:"check_data" ~line:9 ~lo:1 ~hi:10 ]
    ~functional

let test_check_data_bounds_enclose_simulation () =
  let compiled = compile check_data_src in
  let result = Analysis.analyze (check_data_spec compiled.Compile.prog) in
  let wcet = result.Analysis.wcet.Analysis.cycles in
  let bcet = result.Analysis.bcet.Analysis.cycles in
  check_bool "bcet <= wcet" true (bcet <= wcet);
  (* simulate a batch of data sets; every run must fall inside the bound *)
  let datasets =
    [ Array.make 10 1;                          (* worst: full scan *)
      Array.init 10 (fun i -> if i = 0 then -1 else 1);  (* best: stop at once *)
      Array.init 10 (fun i -> if i = 5 then -3 else i);
      Array.init 10 (fun i -> i - 9) ]
  in
  List.iter
    (fun data ->
      let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
      Array.iteri (fun i v -> Interp.write_global m "data" i (V.Vint v)) data;
      Interp.flush_cache m;
      ignore (Interp.call m "check_data" []);
      let t = Interp.cycles m in
      check_bool (Printf.sprintf "run (%d cycles) within [%d, %d]" t bcet wcet)
        true (bcet <= t && t <= wcet))
    datasets

let check_data_paper_constraints =
  (* the paper's constraints (16) and (17), expressed on source lines *)
  let open Functional in
  let neg_block = x_at ~func:"check_data" ~line:11 in
  let stop_block = x_at ~func:"check_data" ~line:16 in
  let exclusive =
    (neg_block =. const 0 &&. (stop_block =. const 1))
    ||. (neg_block =. const 1 &&. (stop_block =. const 0))
  in
  let same = neg_block =. x_at ~func:"check_data" ~line:20 in
  [ exclusive; same ]

let test_check_data_wcet_equals_calculated () =
  (* Experiment 1's methodology: calculated bound = simulated counts times
     per-block worst costs, over the hand-identified extreme data sets.
     With the paper's functionality constraints the path analysis is exact
     for check_data, so estimated = calculated (pessimism [0.00, 0.00]). *)
  let compiled = compile check_data_src in
  let prog = compiled.Compile.prog in
  let spec = check_data_spec ~functional:check_data_paper_constraints prog in
  let result = Analysis.analyze spec in
  let costs = Analysis.block_costs spec ~func:"check_data" in
  let calculated_for data select =
    let m = Interp.create prog ~init:compiled.Compile.init_data in
    Array.iteri (fun i v -> Interp.write_global m "data" i (V.Vint v)) data;
    ignore (Interp.call m "check_data" []);
    List.fold_left
      (fun acc ((func, block), count) ->
        if func = "check_data" then acc + (count * select costs.(block)) else acc)
      0 (Interp.block_counts m)
  in
  (* candidate worst data sets, per the paper's "careful study": all valid
     (10 else-iterations), or negative in the last slot (9 else + 1 then) *)
  let all_ok = Array.make 10 1 in
  let neg_last = Array.init 10 (fun i -> if i = 9 then -1 else 1) in
  let calculated_worst =
    max
      (calculated_for all_ok (fun b -> b.Cost.worst))
      (calculated_for neg_last (fun b -> b.Cost.worst))
  in
  check_int "estimated WCET = calculated WCET" calculated_worst
    result.Analysis.wcet.Analysis.cycles;
  (* best case: negative in the first slot, a single iteration *)
  let neg_first = Array.init 10 (fun i -> if i = 0 then -1 else 1) in
  let calculated_best = calculated_for neg_first (fun b -> b.Cost.best) in
  check_int "estimated BCET = calculated BCET" calculated_best
    result.Analysis.bcet.Analysis.cycles

let test_check_data_functionality_tightens () =
  let compiled = compile check_data_src in
  let prog = compiled.Compile.prog in
  let plain = Analysis.analyze (check_data_spec prog) in
  (* the paper's constraint (16): the 'found negative' block (line 11) and
     the 'i hits DATASIZE' block (line 15... the inner if-true block) are
     mutually exclusive, each executed at most once *)
  let open Functional in
  let neg_block = x_at ~func:"check_data" ~line:11 in
  let stop_block = x_at ~func:"check_data" ~line:16 in
  let exclusive =
    (neg_block =. const 0 &&. (stop_block =. const 1))
    ||. (neg_block =. const 1 &&. (stop_block =. const 0))
  in
  (* the paper's constraint (17): line 11 runs iff return 0 runs *)
  let same = neg_block =. x_at ~func:"check_data" ~line:20 in
  let tightened =
    Analysis.analyze (check_data_spec ~functional:[ exclusive; same ] prog)
  in
  check_bool "tightened WCET <= plain WCET" true
    (tightened.Analysis.wcet.Analysis.cycles <= plain.Analysis.wcet.Analysis.cycles);
  check_bool "tightened BCET >= plain BCET" true
    (tightened.Analysis.bcet.Analysis.cycles >= plain.Analysis.bcet.Analysis.cycles);
  (* two disjuncts -> two constraint sets, none pruned *)
  check_int "two sets" 2 tightened.Analysis.wcet_stats.Analysis.sets_total;
  check_bool "first LP integral everywhere (paper's Section VI observation)"
    true tightened.Analysis.wcet_stats.Analysis.all_first_lp_integral

let test_missing_loop_bound_detected () =
  let compiled = compile check_data_src in
  check_bool "raises" true
    (try
       ignore (Analysis.analyze (Analysis.spec compiled.Compile.prog ~root:"check_data"));
       false
     with Analysis.Analysis_error msg ->
       (* the message should name the function *)
       String.length msg > 0)

(* --- caller/callee constraints (Fig. 6) --------------------------------- *)

let fig6_src = {|
int data[10];
int cleared;

int check_data() {
  int i; int morecheck; int wrongone;
  morecheck = 1;
  i = 0;
  wrongone = 0 - 1;
  while (morecheck) {
    if (data[i] < 0) {
      wrongone = i;
      morecheck = 0;
    } else {
      i = i + 1;
      if (i >= 10)
        morecheck = 0;
    }
  }
  if (wrongone >= 0)
    return 0;
  else
    return 1;
}

void clear_data() {
  int i;
  for (i = 0; i < 10; i = i + 1)
    data[i] = 0;
  cleared = 1;
}

void task() {
  int status;
  status = check_data();
  if (!status)
    clear_data();
}
|}

let test_fig6_scoped_constraint () =
  let compiled = compile fig6_src in
  let prog = compiled.Compile.prog in
  let loop_bounds =
    [ Annotation.loop ~func:"check_data" ~line:10 ~lo:1 ~hi:10;
      Annotation.loop ~func:"clear_data" ~line:28 ~lo:10 ~hi:10 ]
  in
  let plain = Analysis.analyze (Analysis.spec prog ~root:"task" ~loop_bounds) in
  (* Fig. 6 / constraint (18): clear_data runs iff check_data returned 0,
     i.e. x12 = x8.f1 - the 'return 0' block of the check_data instance
     called from task. *)
  let insts = Structural.instances prog ~root:"task" in
  check_int "three instances" 3 (List.length insts);
  let task_f = P.find_func prog "task" in
  (* find the call site of check_data in task *)
  let call_site =
    let found = ref None in
    Array.iter
      (fun (b : P.block) ->
        List.iteri
          (fun occ callee ->
            if callee = "check_data" then
              found := Some (Ipet.Callsite.make ~occurrence:occ b.P.id))
          (P.calls_of_block b))
      task_f.P.blocks;
    match !found with Some s -> s | None -> Alcotest.fail "no call site"
  in
  let open Functional in
  let x_return0 = x_at_in ~path:[ call_site ] ~func:"check_data" ~line:21 in
  let x_clear_entry = x ~func:"clear_data" 0 in
  let linked = Analysis.analyze
      (Analysis.spec prog ~root:"task" ~loop_bounds
         ~functional:[ x_clear_entry =. x_return0 ])
  in
  check_bool "constraint solvable" true
    (linked.Analysis.wcet.Analysis.cycles > 0);
  check_bool "tightens or equals" true
    (linked.Analysis.wcet.Analysis.cycles <= plain.Analysis.wcet.Analysis.cycles);
  (* simulate both outcomes and check enclosure *)
  let run data0 =
    let m = Interp.create prog ~init:compiled.Compile.init_data in
    Interp.write_global m "data" 0 (V.Vint data0);
    ignore (Interp.call m "task" []);
    Interp.cycles m
  in
  let t_clear = run (-5) (* negative -> check fails -> clear_data runs *) in
  let t_ok = run 5 in
  List.iter
    (fun t ->
      check_bool "simulation within linked bound" true
        (linked.Analysis.bcet.Analysis.cycles <= t
         && t <= linked.Analysis.wcet.Analysis.cycles))
    [ t_clear; t_ok ]

(* --- soundness property -------------------------------------------------- *)

let prop_soundness_random_programs =
  (* For random loop-free programs (no annotations needed), the analysis
     bound must enclose the simulated time for any argument. *)
  QCheck.Test.make ~name:"WCET/BCET enclose simulation (loop-free programs)"
    ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range (-8) 8))
    (fun (seed, arg) ->
      (* reuse the random generator but strip while loops by seeding only
         if/else shapes: regenerate until loop-free *)
      let rec loop_free_src s =
        let src = Test_cfg.random_program_src s in
        let compiled = compile src in
        let f = P.find_func compiled.Compile.prog "f" in
        let cfg = Ipet_cfg.Cfg.of_func f in
        let dom = Ipet_cfg.Dominators.compute cfg in
        if Ipet_cfg.Loops.detect cfg dom = [] then (src, compiled)
        else loop_free_src (s + 7919)
      in
      let src, compiled = loop_free_src seed in
      ignore src;
      let spec = Analysis.spec compiled.Compile.prog ~root:"f" in
      let result = Analysis.analyze spec in
      let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
      Interp.flush_cache m;
      ignore (Interp.call m "f" [ V.Vint arg ]);
      let t = Interp.cycles m in
      result.Analysis.bcet.Analysis.cycles <= t
      && t <= result.Analysis.wcet.Analysis.cycles)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_structural_random; prop_soundness_random_programs ]

let suite =
  [ ("structural if-else", `Quick, test_structural_if_else);
    ("structural while", `Quick, test_structural_while);
    ("structural with calls", `Quick, test_structural_calls);
    ("structural fig2 count", `Quick, test_structural_fig2_shape);
    ("dnf expansion counts", `Quick, test_dnf_counts);
    ("null-set pruning", `Quick, test_null_pruning);
    ("negative count pruning", `Quick, test_null_pruning_negative_count);
    ("check_data bound encloses runs", `Quick, test_check_data_bounds_enclose_simulation);
    ("check_data WCET = calculated", `Quick, test_check_data_wcet_equals_calculated);
    ("check_data functionality tightens", `Quick, test_check_data_functionality_tightens);
    ("missing loop bound detected", `Quick, test_missing_loop_bound_detected);
    ("fig6 caller/callee constraint", `Quick, test_fig6_scoped_constraint) ]
  @ props
