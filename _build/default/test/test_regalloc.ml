(* Register allocator tests: register-file bound respected, semantics
   preserved (including on random programs), and the expected spill traffic
   appears. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Regalloc = Ipet_lang.Regalloc
module Interp = Ipet_sim.Interp
module P = Ipet_isa.Prog
module I = Ipet_isa.Instr
module V = Ipet_isa.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let heavy_src = {|int buf[16];

int f(int a, int b) {
  int c; int d; int e; int g; int h; int i; int j; int k;
  c = a + b;
  d = c * 2;
  e = d - a;
  g = e + c;
  h = g * d;
  i = h - e;
  j = i + g;
  k = j * 2 + h - i + c * d - e + g;
  buf[a & 15] = k;
  return k + buf[b & 15];
}
|}

let run compiled fname args =
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  let r = Interp.call m fname (List.map (fun i -> V.Vint i) args) in
  (r, Interp.instructions m)

let test_bound_respected () =
  let compiled = Frontend.compile_string_exn ~registers:10 heavy_src in
  let f = P.find_func compiled.Compile.prog "f" in
  check_bool "max reg < 10" true (Regalloc.max_reg f < 10);
  check_bool "frame grew for spills" true (f.P.frame_words > 0)

let test_noop_when_fits () =
  let src = "int f(int a) { return a + 1; }" in
  let plain = Frontend.compile_string_exn src in
  let alloc = Frontend.compile_string_exn ~registers:16 src in
  let count c =
    let f = P.find_func c.Compile.prog "f" in
    Array.fold_left (fun acc (b : P.block) -> acc + Array.length b.P.instrs) 0 f.P.blocks
  in
  check_int "unchanged when under budget" (count plain) (count alloc)

let test_semantics_preserved () =
  let plain = Frontend.compile_string_exn heavy_src in
  let alloc = Frontend.compile_string_exn ~registers:10 heavy_src in
  List.iter
    (fun (a, b) ->
      let r1, n1 = run plain "f" [ a; b ] in
      let r2, n2 = run alloc "f" [ a; b ] in
      check_bool "same result" true
        (match (r1, r2) with
         | Some x, Some y -> V.equal x y
         | _ -> false);
      check_bool "spill traffic costs instructions" true (n2 > n1))
    [ (1, 2); (0, 0); (-7, 31); (100, 3) ]

let test_too_small_rejected () =
  check_bool "raises" true
    (try ignore (Frontend.compile_string_exn ~registers:3 heavy_src); false
     with Failure _ | Invalid_argument _ -> true)

let test_spills_are_loads_and_stores () =
  let compiled = Frontend.compile_string_exn ~registers:10 heavy_src in
  let f = P.find_func compiled.Compile.prog "f" in
  let frame_ops =
    Array.fold_left
      (fun acc (b : P.block) ->
        Array.fold_left
          (fun acc instr ->
            match instr with
            | I.Load (_, { I.base = I.Frame_base; _ })
            | I.Store (_, { I.base = I.Frame_base; _ }) -> acc + 1
            | I.Load _ | I.Store _ | I.Alu _ | I.Fpu _ | I.Icmp _ | I.Fcmp _
            | I.Mov _ | I.Itof _ | I.Ftoi _ | I.Call _ -> acc)
          acc b.P.instrs)
      0 f.P.blocks
  in
  check_bool "spill code present" true (frame_ops > 4)

let prop_regalloc_preserves_semantics =
  QCheck.Test.make ~name:"regalloc preserves semantics on random programs"
    ~count:60
    QCheck.(triple (int_bound 1_000_000) (int_range (-4) 12) (int_range 8 14))
    (fun (seed, arg, nregs) ->
      let src = Test_cfg.random_program_src seed in
      let plain = Frontend.compile_string_exn src in
      match Frontend.compile_string ~registers:nregs src with
      | Error _ -> QCheck.assume_fail ()
      | Ok alloc ->
        let f = P.find_func alloc.Compile.prog "f" in
        let r1, _ = run plain "f" [ arg ] in
        let r2, _ = run alloc "f" [ arg ] in
        Regalloc.max_reg f < nregs
        && (match (r1, r2) with
            | Some x, Some y -> V.equal x y
            | None, None -> true
            | Some _, None | None, Some _ -> false))

let test_analysis_on_allocated_code () =
  (* the whole pipeline composes: optimize, allocate, analyze, simulate *)
  let src =
    "int f(int a) { int s; int i; s = a;\n\
     for (i = 0; i < 20; i = i + 1) {\n\
     s = s * 3 + i - a; s = s - s / 2; }\n\
     return s; }"
  in
  let compiled = Frontend.compile_string_exn ~optimize:true ~registers:8 src in
  let ast, _ = Frontend.parse_and_check src in
  let loop_bounds = Ipet.Autobound.infer ast in
  let result =
    Ipet.Analysis.analyze
      (Ipet.Analysis.spec compiled.Compile.prog ~root:"f" ~loop_bounds)
  in
  List.iter
    (fun arg ->
      let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
      Interp.flush_cache m;
      ignore (Interp.call m "f" [ V.Vint arg ]);
      let t = Interp.cycles m in
      check_bool "bound holds on allocated code" true
        (result.Ipet.Analysis.bcet.Ipet.Analysis.cycles <= t
         && t <= result.Ipet.Analysis.wcet.Ipet.Analysis.cycles))
    [ 0; 5; -9 ]

let props = List.map QCheck_alcotest.to_alcotest [ prop_regalloc_preserves_semantics ]

let suite =
  [ ("register bound respected", `Quick, test_bound_respected);
    ("no-op when program fits", `Quick, test_noop_when_fits);
    ("semantics preserved", `Quick, test_semantics_preserved);
    ("too-small file rejected", `Quick, test_too_small_rejected);
    ("spill code present", `Quick, test_spills_are_loads_and_stores);
    ("analysis on allocated code", `Quick, test_analysis_on_allocated_code) ]
  @ props
