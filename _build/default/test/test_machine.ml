(* Micro-architecture model tests: i-cache, pipeline hazards, cost bounds. *)

module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout
module Icache = Ipet_machine.Icache
module Timing = Ipet_machine.Timing
module Pipeline = Ipet_machine.Pipeline
module Cost = Ipet_machine.Cost

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- icache -------------------------------------------------------------- *)

let small_cache = { Icache.size_bytes = 64; line_bytes = 16; miss_penalty = 8 }

let test_cache_hit_after_miss () =
  let c = Icache.create small_cache in
  check_bool "first access misses" false (Icache.access c 0);
  check_bool "same line hits" true (Icache.access c 4);
  check_bool "line end hits" true (Icache.access c 15);
  check_bool "next line misses" false (Icache.access c 16);
  check_int "hits" 2 (Icache.hits c);
  check_int "misses" 2 (Icache.misses c)

let test_cache_conflict () =
  let c = Icache.create small_cache in
  (* 64-byte cache, 16-byte lines -> 4 slots; addresses 0 and 64 conflict *)
  check_bool "miss 0" false (Icache.access c 0);
  check_bool "conflict evicts" false (Icache.access c 64);
  check_bool "0 evicted" false (Icache.access c 0);
  check_bool "48 independent" false (Icache.access c 48);
  check_bool "48 hits now" true (Icache.access c 48)

let test_cache_flush () =
  let c = Icache.create small_cache in
  ignore (Icache.access c 0);
  check_bool "hit before flush" true (Icache.lookup c 0);
  Icache.flush c;
  check_bool "miss after flush" false (Icache.lookup c 0)

let test_cache_validation () =
  check_bool "bad line size" true
    (try ignore (Icache.create { small_cache with Icache.line_bytes = 12 }); false
     with Invalid_argument _ -> true);
  check_bool "bad capacity" true
    (try ignore (Icache.create { small_cache with Icache.size_bytes = 40 }); false
     with Invalid_argument _ -> true)

let test_lines_spanned () =
  check_int "one instr" 1 (Icache.lines_spanned small_cache ~addr:0 ~size:4);
  check_int "full line" 1 (Icache.lines_spanned small_cache ~addr:0 ~size:16);
  check_int "crosses boundary" 2 (Icache.lines_spanned small_cache ~addr:12 ~size:8);
  check_int "three lines" 3 (Icache.lines_spanned small_cache ~addr:8 ~size:40);
  check_int "empty" 0 (Icache.lines_spanned small_cache ~addr:8 ~size:0)

(* --- timing / pipeline ---------------------------------------------------- *)

let test_timing_orders () =
  let add = I.Alu (I.Add, 0, I.Reg 1, I.Reg 2) in
  let mul = I.Alu (I.Mul, 0, I.Reg 1, I.Reg 2) in
  let div = I.Alu (I.Div, 0, I.Reg 1, I.Reg 2) in
  let fdiv = I.Fpu (I.Fdiv, 0, I.Reg 1, I.Reg 2) in
  check_bool "add < mul < div" true (Timing.issue add < Timing.issue mul);
  check_bool "mul < div" true (Timing.issue mul < Timing.issue div);
  check_bool "div <= fdiv" true (Timing.issue div <= Timing.issue fdiv)

let test_term_bounds_enclose_actual () =
  List.iter
    (fun term ->
      let best, worst = Timing.term_bounds term in
      List.iter
        (fun taken ->
          let t = Timing.term_actual term ~taken in
          check_bool "within bounds" true (best <= t && t <= worst))
        [ true; false ])
    [ I.Jump 0; I.Branch (0, 1, 2); I.Return None ]

let test_load_use_stall () =
  let load = I.Load (3, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Alu (I.Add, 4, I.Reg 3, I.Imm 1) in
  let no_use = I.Alu (I.Add, 4, I.Reg 5, I.Imm 1) in
  check_int "stall" Timing.load_use_stall (Pipeline.stall_after load use);
  check_int "no stall" 0 (Pipeline.stall_after load no_use);
  check_int "alu-alu no stall" 0 (Pipeline.stall_after use no_use);
  check_int "block stalls" Timing.load_use_stall
    (Pipeline.block_stalls [| load; use; no_use |])

let test_load_use_through_address () =
  (* the stall also applies when the loaded register is an address index *)
  let load = I.Load (3, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Load (4, { I.base = I.Abs 8; offset = 0; index = Some (I.Reg 3) }) in
  check_int "address-use stalls" Timing.load_use_stall (Pipeline.stall_after load use)

(* --- cost bounds ----------------------------------------------------------- *)

let block instrs term = { P.id = 0; instrs = Array.of_list instrs; term; src_line = 1 }

let one_block_prog instrs term =
  { P.funcs =
      [| { P.name = "f"; nparams = 0; frame_words = 0;
           blocks = [| block instrs term |] } |];
    P.globals = [];
    P.globals_words = 0 }

let test_cost_ordering () =
  let instrs =
    [ I.Mov (0, I.Imm 1);
      I.Load (1, { I.base = I.Abs 0; offset = 0; index = None });
      I.Alu (I.Add, 2, I.Reg 1, I.Reg 0) ]
  in
  let prog = one_block_prog instrs (I.Branch (2, 0, 0)) in
  let layout = Layout.make prog in
  let costs = Cost.func_bounds Icache.i960kb layout prog.P.funcs.(0) in
  let b = costs.(0) in
  check_bool "best <= warm worst" true (b.Cost.best <= b.Cost.worst_warm);
  check_bool "warm worst <= worst" true (b.Cost.worst_warm < b.Cost.worst);
  (* difference between worst and warm worst is exactly the line fills *)
  let lines = Icache.lines_spanned Icache.i960kb ~addr:0 ~size:(4 * 4) in
  check_int "miss component" (lines * Icache.i960kb.Icache.miss_penalty)
    (b.Cost.worst - b.Cost.worst_warm)

let test_cost_includes_stall () =
  let load = I.Load (1, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Alu (I.Add, 2, I.Reg 1, I.Imm 1) in
  let prog_hazard = one_block_prog [ load; use ] (I.Return None) in
  let prog_clean =
    one_block_prog [ load; I.Alu (I.Add, 2, I.Reg 9, I.Imm 1) ] (I.Return None)
  in
  let cost p =
    (Cost.func_bounds Icache.i960kb (Layout.make p) p.P.funcs.(0)).(0)
  in
  check_int "hazard adds exactly the stall" Timing.load_use_stall
    ((cost prog_hazard).Cost.best - (cost prog_clean).Cost.best)

let test_layout_addresses () =
  let f1_block = block [ I.Mov (0, I.Imm 1) ] (I.Return None) in
  let prog =
    { P.funcs =
        [| { P.name = "a"; nparams = 0; frame_words = 0; blocks = [| f1_block |] };
           { P.name = "b"; nparams = 0; frame_words = 0; blocks = [| f1_block |] } |];
      P.globals = [];
      P.globals_words = 0 }
  in
  let layout = Layout.make prog in
  check_int "a at 0" 0 (Layout.block_addr layout ~func:"a" ~block:0);
  (* block 'a' has 2 instructions (mov + ret) = 8 bytes *)
  check_int "b after a" 8 (Layout.block_addr layout ~func:"b" ~block:0);
  check_int "code size" 16 (Layout.code_size layout);
  check_bool "unknown func" true
    (try ignore (Layout.func_addr layout "zzz"); false with Not_found -> true)

(* property: simulated per-run cost of a straight-line block stays within
   the analytical bounds for random instruction sequences *)
let random_instr rng =
  match Random.State.int rng 6 with
  | 0 -> I.Mov (Random.State.int rng 8, I.Imm (Random.State.int rng 100))
  | 1 -> I.Alu (I.Add, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 1)
  | 2 -> I.Alu (I.Mul, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 3)
  | 3 -> I.Load (Random.State.int rng 8,
                 { I.base = I.Abs (Random.State.int rng 4); offset = 0; index = None })
  | 4 -> I.Store (I.Reg (Random.State.int rng 8),
                  { I.base = I.Abs (Random.State.int rng 4); offset = 0; index = None })
  | _ -> I.Icmp (I.Clt, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 5)

let prop_simulated_block_within_bounds =
  QCheck.Test.make ~name:"simulated block cost within analytical bounds" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed |] in
      let instrs = List.init len (fun _ -> random_instr rng) in
      let prog = one_block_prog instrs (I.Return (Some (I.Imm 0))) in
      let prog = { prog with P.globals_words = 8 } in
      let bounds =
        (Cost.func_bounds Icache.i960kb (Layout.make prog) prog.P.funcs.(0)).(0)
      in
      let m = Ipet_sim.Interp.create prog ~init:[] in
      Ipet_sim.Interp.flush_cache m;
      ignore (Ipet_sim.Interp.call m "f" []);
      let cold = Ipet_sim.Interp.cycles m in
      Ipet_sim.Interp.reset_stats m;
      ignore (Ipet_sim.Interp.call m "f" []);
      let warm = Ipet_sim.Interp.cycles m in
      bounds.Cost.best <= warm && warm <= bounds.Cost.worst_warm
      && bounds.Cost.best <= cold && cold <= bounds.Cost.worst)

let props = List.map QCheck_alcotest.to_alcotest [ prop_simulated_block_within_bounds ]

let suite =
  [ ("icache hit after miss", `Quick, test_cache_hit_after_miss);
    ("icache conflict eviction", `Quick, test_cache_conflict);
    ("icache flush", `Quick, test_cache_flush);
    ("icache config validation", `Quick, test_cache_validation);
    ("lines spanned", `Quick, test_lines_spanned);
    ("timing orders", `Quick, test_timing_orders);
    ("terminator bounds enclose actual", `Quick, test_term_bounds_enclose_actual);
    ("load-use stall", `Quick, test_load_use_stall);
    ("load-use through address", `Quick, test_load_use_through_address);
    ("cost ordering", `Quick, test_cost_ordering);
    ("cost includes stall", `Quick, test_cost_includes_stall);
    ("layout addresses", `Quick, test_layout_addresses) ]
  @ props

(* --- data cache -------------------------------------------------------------- *)

let dcache_cfg = { Icache.size_bytes = 256; line_bytes = 16; miss_penalty = 6 }

let test_dcache_enclosure () =
  (* with the data cache enabled everywhere, the suite invariant must hold *)
  List.iter
    (fun name ->
      let bench = Ipet_suite.Suite.find name in
      let row = Ipet_suite.Experiments.run ~dcache:dcache_cfg bench in
      let e = row.Ipet_suite.Experiments.estimated in
      let m = row.Ipet_suite.Experiments.measured in
      check_bool (name ^ ": measured within estimated (dcache)") true
        (e.Ipet_suite.Experiments.lo <= m.Ipet_suite.Experiments.lo
         && m.Ipet_suite.Experiments.hi <= e.Ipet_suite.Experiments.hi))
    [ "check_data"; "piksrt"; "matgen" ]

let test_dcache_speeds_hot_loops () =
  (* a loop re-reading the same small array: the cached run beats the flat
     model once warm *)
  let src = "int buf[8];\nint f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + buf[i & 7]; return s; }"
  in
  let compiled = Ipet_lang.Frontend.compile_string_exn src in
  let run dcache =
    let m = Ipet_sim.Interp.create ?dcache compiled.Ipet_lang.Compile.prog
        ~init:compiled.Ipet_lang.Compile.init_data
    in
    ignore (Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint 500 ]);
    Ipet_sim.Interp.cycles m
  in
  let flat = run None in
  let cached = run (Some dcache_cfg) in
  check_bool "cached run faster on a hot array" true (cached < flat)

let test_dcache_stats () =
  let src = "int buf[64];\nint f() { int i; int s; s = 0; \
             for (i = 0; i < 64; i = i + 1) s = s + buf[i]; return s; }"
  in
  let compiled = Ipet_lang.Frontend.compile_string_exn src in
  let m = Ipet_sim.Interp.create ~dcache:dcache_cfg compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  ignore (Ipet_sim.Interp.call m "f" []);
  (* 64 words = 256 bytes = 16 lines: one miss per line, 3 hits per line *)
  check_int "dcache misses" 16 (Ipet_sim.Interp.dcache_misses m);
  check_int "dcache hits" 48 (Ipet_sim.Interp.dcache_hits m)

let suite =
  suite
  @ [ ("dcache enclosure", `Slow, test_dcache_enclosure);
      ("dcache speeds hot loops", `Quick, test_dcache_speeds_hot_loops);
      ("dcache stats", `Quick, test_dcache_stats) ]
