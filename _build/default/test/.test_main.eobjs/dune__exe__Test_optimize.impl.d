test/test_optimize.ml: Alcotest Array Ipet Ipet_cfg Ipet_isa Ipet_lang Ipet_sim List QCheck QCheck_alcotest Test_cfg
