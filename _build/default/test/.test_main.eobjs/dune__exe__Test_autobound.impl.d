test/test_autobound.ml: Alcotest Buffer Ipet Ipet_isa Ipet_lang Ipet_sim List Printf QCheck QCheck_alcotest Random
