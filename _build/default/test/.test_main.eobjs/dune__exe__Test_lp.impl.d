test/test_lp.ml: Alcotest Ipet_lp Ipet_num List QCheck QCheck_alcotest Rat String
