test/test_cfg.ml: Alcotest Array Buffer Ipet_cfg Ipet_isa Ipet_lang List QCheck QCheck_alcotest Random String
