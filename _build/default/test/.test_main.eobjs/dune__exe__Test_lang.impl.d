test/test_lang.ml: Alcotest Array Ipet Ipet_cfg Ipet_isa Ipet_lang Ipet_sim List Printf String
