test/test_asm.ml: Alcotest Array Float Format Ipet Ipet_cfg Ipet_isa Ipet_lang Ipet_sim List Printf QCheck QCheck_alcotest Test_cfg
