test/test_sim.ml: Alcotest Array Float Format Ipet_isa Ipet_lang Ipet_machine Ipet_sim List String
