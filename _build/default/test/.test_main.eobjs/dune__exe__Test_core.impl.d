test/test_core.ml: Alcotest Array Format Ipet Ipet_cfg Ipet_isa Ipet_lang Ipet_lp Ipet_machine Ipet_num Ipet_sim List Printf QCheck QCheck_alcotest String Test_cfg
