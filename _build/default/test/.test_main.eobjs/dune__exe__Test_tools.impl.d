test/test_tools.ml: Alcotest Format Ipet Ipet_isa Ipet_lang Ipet_sim Ipet_suite List String
