test/test_regalloc.ml: Alcotest Array Ipet Ipet_isa Ipet_lang Ipet_sim List QCheck QCheck_alcotest Test_cfg
