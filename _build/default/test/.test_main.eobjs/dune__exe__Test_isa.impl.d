test/test_isa.ml: Alcotest Array Format Ipet_isa List Result
