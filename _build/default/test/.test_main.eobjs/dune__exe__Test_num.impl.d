test/test_num.ml: Alcotest Ipet_num List Printf QCheck QCheck_alcotest
