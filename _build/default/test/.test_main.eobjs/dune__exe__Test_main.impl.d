test/test_main.ml: Alcotest Test_asm Test_autobound Test_cfg Test_core Test_edge Test_isa Test_lang Test_lp Test_machine Test_num Test_optimize Test_regalloc Test_sim Test_suite Test_tools
