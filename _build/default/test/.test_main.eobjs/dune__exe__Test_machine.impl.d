test/test_machine.ml: Alcotest Array Ipet_isa Ipet_lang Ipet_machine Ipet_sim Ipet_suite List QCheck QCheck_alcotest Random
