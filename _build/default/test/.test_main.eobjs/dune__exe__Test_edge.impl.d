test/test_edge.ml: Alcotest Ipet Ipet_isa Ipet_lang Ipet_num Ipet_sim Ipet_suite
