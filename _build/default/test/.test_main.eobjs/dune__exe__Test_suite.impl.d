test/test_suite.ml: Alcotest Hashtbl Ipet_suite List Printf
