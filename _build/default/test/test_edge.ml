(* Edge cases and error paths across the libraries: resolution failures,
   runtime faults, malformed inputs — the behaviour a user hits when they
   hold the tool wrong must be a clear error, never a wrong answer. *)

module B = Ipet_num.Bigint
module Q = Ipet_num.Rat
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module P = Ipet_isa.Prog
module I = Ipet_isa.Instr
module V = Ipet_isa.Value
module F = Ipet.Functional
module Analysis = Ipet.Analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- numeric parsing errors -------------------------------------------- *)

let test_numeric_parse_errors () =
  let bad_big s = try ignore (B.of_string s); false with Failure _ -> true in
  check_bool "empty" true (bad_big "");
  check_bool "letters" true (bad_big "12a3");
  check_bool "lone sign" true (bad_big "-");
  let bad_rat s = try ignore (Q.of_string s); false with Failure _ | Division_by_zero -> true in
  check_bool "trailing dot" true (bad_rat "3.");
  check_bool "zero denominator" true (bad_rat "1/0")

(* --- functionality constraint resolution -------------------------------- *)

let check_data_prog () =
  let bench = Ipet_suite.Suite.find "check_data" in
  ((Ipet_suite.Bspec.compile bench).Compile.prog, bench)

let expect_resolution_error functional =
  let prog, bench = check_data_prog () in
  let spec =
    Analysis.spec prog ~root:"check_data"
      ~loop_bounds:bench.Ipet_suite.Bspec.loop_bounds ~functional
  in
  check_bool "resolution error" true
    (try ignore (Analysis.analyze spec); false
     with F.Resolution_error _ -> true)

let test_unknown_function_in_constraint () =
  expect_resolution_error F.[ x ~func:"nonexistent" 0 =. const 1 ]

let test_unknown_block_in_constraint () =
  expect_resolution_error F.[ x ~func:"check_data" 999 =. const 1 ]

let test_unknown_line_in_constraint () =
  expect_resolution_error F.[ x_at ~func:"check_data" ~line:9999 =. const 1 ]

let test_bad_call_path_in_constraint () =
  expect_resolution_error
    F.[ x_in ~path:[ Ipet.Callsite.make 0 ] ~func:"check_data" 0 =. const 1 ]

let test_infeasible_sets_reported () =
  (* a functionality constraint contradicting the structure (entry is 1) in
     a way the syntactic pruner cannot see *)
  let prog, bench = check_data_prog () in
  let spec =
    Analysis.spec prog ~root:"check_data"
      ~loop_bounds:bench.Ipet_suite.Bspec.loop_bounds
      ~functional:F.[ add (x ~func:"check_data" 0) (x ~func:"check_data" 1) =. const 0 ]
  in
  check_bool "all sets infeasible is an analysis error" true
    (try ignore (Analysis.analyze spec); false with Analysis.Analysis_error _ -> true)

(* --- interpreter faults -------------------------------------------------- *)

let test_stack_overflow () =
  let src = "int f() { int big[100000]; big[0] = 1; return big[0]; }" in
  let compiled = Frontend.compile_string_exn src in
  let m =
    Interp.create ~stack_words:1024 compiled.Compile.prog
      ~init:compiled.Compile.init_data
  in
  check_bool "stack overflow detected" true
    (try ignore (Interp.call m "f" []); false with Interp.Runtime_error _ -> true)

let test_bad_arity_call () =
  let compiled = Frontend.compile_string_exn "int f(int a) { return a; }" in
  let m = Interp.create compiled.Compile.prog ~init:[] in
  check_bool "arity mismatch" true
    (try ignore (Interp.call m "f" []); false with Interp.Runtime_error _ -> true)

let test_unknown_root_call () =
  let compiled = Frontend.compile_string_exn "int f() { return 1; }" in
  let m = Interp.create compiled.Compile.prog ~init:[] in
  check_bool "unknown function" true
    (try ignore (Interp.call m "zzz" []); false with Interp.Runtime_error _ -> true)

let test_global_access_errors () =
  let compiled = Frontend.compile_string_exn "int g[4];\nint f() { return g[0]; }" in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  check_bool "unknown global" true
    (try Interp.write_global m "nope" 0 (V.Vint 1); false
     with Interp.Runtime_error _ -> true);
  check_bool "index out of bounds" true
    (try Interp.write_global m "g" 4 (V.Vint 1); false
     with Interp.Runtime_error _ -> true)

let test_out_of_bounds_memory () =
  (* negative index drives the effective address below the segment *)
  let src = "int g[4];\nint f(int i) { return g[i]; }" in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  check_bool "negative address traps" true
    (try ignore (Interp.call m "f" [ V.Vint (-10) ]); false
     with Interp.Runtime_error _ -> true)

(* --- analysis error paths ------------------------------------------------- *)

let test_unknown_root_analysis () =
  let compiled = Frontend.compile_string_exn "int f() { return 1; }" in
  check_bool "unknown root" true
    (try ignore (Analysis.analyze (Analysis.spec compiled.Compile.prog ~root:"zzz"));
       false
     with Invalid_argument _ -> true)

let test_recursive_program_rejected () =
  let compiled =
    Frontend.compile_string_exn
      "int f(int n) { if (n == 0) return 1; return n * f(n - 1); }"
  in
  check_bool "recursion rejected" true
    (try ignore (Analysis.analyze (Analysis.spec compiled.Compile.prog ~root:"f"));
       false
     with Invalid_argument _ -> true)

let test_bad_annotation_rejected () =
  let compiled = Frontend.compile_string_exn "int f() { return 1; }" in
  check_bool "lo > hi" true
    (try
       ignore
         (Analysis.analyze
            (Analysis.spec compiled.Compile.prog ~root:"f"
               ~loop_bounds:[ Ipet.Annotation.loop ~func:"f" ~line:1 ~lo:5 ~hi:2 ]));
       false
     with Ipet.Annotation.Bad_annotation _ -> true);
  check_bool "annotation on loop-free analyzed function" true
    (try
       ignore
         (Analysis.analyze
            (Analysis.spec compiled.Compile.prog ~root:"f"
               ~loop_bounds:[ Ipet.Annotation.loop ~func:"f" ~line:1 ~lo:1 ~hi:2 ]));
       false
     with Ipet.Annotation.Bad_annotation _ -> true)

(* --- marker helper -------------------------------------------------------- *)

let test_marker_errors () =
  let source = "aaa\nbbb\naaa\n" in
  check_bool "missing marker" true
    (try ignore (Ipet_suite.Bspec.line_containing ~source "zzz"); false
     with Failure _ -> true);
  check_bool "ambiguous marker" true
    (try ignore (Ipet_suite.Bspec.line_containing ~source "aaa"); false
     with Failure _ -> true);
  check_int "unique marker" 2 (Ipet_suite.Bspec.line_containing ~source "bbb")

(* --- structural queries ----------------------------------------------------- *)

let test_instance_at_misses () =
  let prog, _ = check_data_prog () in
  let insts = Ipet.Structural.instances prog ~root:"check_data" in
  check_bool "bad path" true
    (Ipet.Structural.instance_at insts ~root:"check_data"
       ~path:[ Ipet.Callsite.make 42 ]
     = None)

let suite =
  [ ("numeric parse errors", `Quick, test_numeric_parse_errors);
    ("unknown function in constraint", `Quick, test_unknown_function_in_constraint);
    ("unknown block in constraint", `Quick, test_unknown_block_in_constraint);
    ("unknown line in constraint", `Quick, test_unknown_line_in_constraint);
    ("bad call path in constraint", `Quick, test_bad_call_path_in_constraint);
    ("infeasible sets reported", `Quick, test_infeasible_sets_reported);
    ("stack overflow", `Quick, test_stack_overflow);
    ("bad arity call", `Quick, test_bad_arity_call);
    ("unknown root call", `Quick, test_unknown_root_call);
    ("global access errors", `Quick, test_global_access_errors);
    ("out-of-bounds memory", `Quick, test_out_of_bounds_memory);
    ("unknown analysis root", `Quick, test_unknown_root_analysis);
    ("recursion rejected", `Quick, test_recursive_program_rejected);
    ("bad annotations rejected", `Quick, test_bad_annotation_rejected);
    ("marker errors", `Quick, test_marker_errors);
    ("instance_at misses", `Quick, test_instance_at_misses) ]
