(* Assembly text round-trip tests: print with Prog.pp, parse with
   Asm_parser, compare — for hand-written listings, compiled programs, and
   an execution-equivalence check. *)

module P = Ipet_isa.Prog
module I = Ipet_isa.Instr
module Asm = Ipet_isa.Asm_parser
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let render prog = Format.asprintf "%a" P.pp prog

let test_hand_written () =
  let text = {|
.global counter @ 0 (1 words)
f(1 params, 2 frame words):
B0:   ; line 3
  mov r1, #5
  add r2, r0, r1
  ld r3, [0]
  st r2, [fp+1]
  br r2 ? B1 : B2
B1:
  cmp.lt r4, r2, #100
  jmp B2
B2:
  ret r2
|} in
  let prog = Asm.parse text in
  check_int "one function" 1 (Array.length prog.P.funcs);
  let f = prog.P.funcs.(0) in
  check_int "three blocks" 3 (Array.length f.P.blocks);
  check_int "params" 1 f.P.nparams;
  check_int "frame" 2 f.P.frame_words;
  check_int "src line kept" 3 f.P.blocks.(0).P.src_line;
  check_int "globals" 1 (List.length prog.P.globals)

let test_roundtrip_compiled () =
  let sources =
    [ "int f(int a) { int s; int i; s = 0; \
       for (i = 0; i < 10; i = i + 1) s = s + a; return s; }";
      "float g(float x) { return x * 2.0 + 0.5; }\n\
       int f(int a) { return (int) g((float) a); }";
      "int buf[4];\nvoid f(int a) { buf[a & 3] = a; }" ]
  in
  List.iter
    (fun src ->
      let compiled = Frontend.compile_string_exn src in
      let text = render compiled.Compile.prog in
      let reparsed = Asm.parse text in
      (* compare by re-rendering: Prog has arrays inside, structural compare
         via the canonical text is the honest check *)
      Alcotest.(check string) "roundtrip" text (render reparsed))
    sources

let test_roundtrip_executes_identically () =
  let src =
    "int f(int a) { int s; int i; s = 1; \
     for (i = 0; i < 8; i = i + 1) { if (a > i) s = s * 2; else s = s + 3; } \
     return s; }"
  in
  let compiled = Frontend.compile_string_exn src in
  let reparsed = Asm.parse (render compiled.Compile.prog) in
  List.iter
    (fun arg ->
      let run prog =
        let m = Interp.create prog ~init:compiled.Compile.init_data in
        (Interp.call m "f" [ V.Vint arg ], Interp.cycles m)
      in
      let r1, c1 = run compiled.Compile.prog in
      let r2, c2 = run reparsed in
      check_bool "same result" true
        (match (r1, r2) with Some a, Some b -> V.equal a b | _ -> false);
      check_int "same cycles" c1 c2)
    [ 0; 4; 100 ]

let test_float_immediates_roundtrip () =
  List.iter
    (fun f ->
      let prog =
        { P.funcs =
            [| { P.name = "f"; nparams = 0; frame_words = 0;
                 blocks =
                   [| { P.id = 0; instrs = [| I.Mov (0, I.Fimm f) |];
                        term = I.Return (Some (I.Reg 0)); src_line = 0 } |] } |];
          P.globals = [];
          P.globals_words = 0 }
      in
      let reparsed = Asm.parse (render prog) in
      match reparsed.P.funcs.(0).P.blocks.(0).P.instrs.(0) with
      | I.Mov (0, I.Fimm f') ->
        check_bool (Printf.sprintf "float %h" f) true (Float.equal f f')
      | _ -> Alcotest.fail "wrong instruction")
    [ 0.0; 1.0; -1.0; 0.5; 3.25; 1e10; -7.125e-3; 0.499975 ]

let test_parse_errors () =
  let bad text =
    try ignore (Asm.parse text); false with Asm.Error _ -> true
  in
  check_bool "unknown mnemonic" true
    (bad "f(0 params, 0 frame words):\nB0:\n  frobnicate r1, r2, r3\n  ret\n");
  check_bool "missing terminator" true
    (bad "f(0 params, 0 frame words):\nB0:\n  mov r1, #2\n");
  check_bool "instr after terminator" true
    (bad "f(0 params, 0 frame words):\nB0:\n  ret\n  mov r1, #2\n");
  check_bool "bad branch target" true
    (bad "f(0 params, 0 frame words):\nB0:\n  jmp B7\n");
  check_bool "orphan block" true (bad "B0:\n  ret\n")

let test_analyze_from_assembly () =
  (* the cinderella use case: no source, just a listing with line comments *)
  let src =
    "int f(int n) { int i; int s; s = 0; \
     for (i = 0; i < 6; i = i + 1) s = s + n; return s; }"
  in
  let compiled = Frontend.compile_string_exn src in
  let reparsed = Asm.parse (render compiled.Compile.prog) in
  (* annotate by block id, since assembly has no source lines to refer to *)
  let f = reparsed.P.funcs.(0) in
  let cfg = Ipet_cfg.Cfg.of_func f in
  let dom = Ipet_cfg.Dominators.compute cfg in
  let header = (List.hd (Ipet_cfg.Loops.detect cfg dom)).Ipet_cfg.Loops.header in
  let result =
    Ipet.Analysis.analyze
      (Ipet.Analysis.spec reparsed ~root:"f"
         ~loop_bounds:
           [ Ipet.Annotation.loop_at_block ~func:"f" ~block:header ~lo:6 ~hi:6 ])
  in
  let m = Interp.create reparsed ~init:compiled.Compile.init_data in
  Interp.flush_cache m;
  ignore (Interp.call m "f" [ V.Vint 3 ]);
  check_bool "bound holds" true
    (result.Ipet.Analysis.bcet.Ipet.Analysis.cycles <= Interp.cycles m
     && Interp.cycles m <= result.Ipet.Analysis.wcet.Ipet.Analysis.cycles)

(* property: compiled random programs round-trip through the text format *)
let prop_roundtrip_random =
  QCheck.Test.make ~name:"assembly roundtrip on random programs" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Test_cfg.random_program_src seed in
      let compiled = Frontend.compile_string_exn src in
      let text = render compiled.Compile.prog in
      text = render (Asm.parse text))

let props = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ]

let suite =
  [ ("hand-written listing", `Quick, test_hand_written);
    ("roundtrip compiled programs", `Quick, test_roundtrip_compiled);
    ("roundtrip executes identically", `Quick, test_roundtrip_executes_identically);
    ("float immediates roundtrip", `Quick, test_float_immediates_roundtrip);
    ("parse errors", `Quick, test_parse_errors);
    ("analyze from assembly alone", `Quick, test_analyze_from_assembly) ]
  @ props
