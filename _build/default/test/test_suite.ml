(* Per-benchmark integration tests: every Table I routine compiles,
   analyzes, and satisfies the paper's enclosure invariants:
     estimated.lo <= calculated.lo <= measured.lo
                 <= measured.hi <= calculated.hi <= estimated.hi *)

module E = Ipet_suite.Experiments
module Bspec = Ipet_suite.Bspec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rows : (string, E.row) Hashtbl.t = Hashtbl.create 16

let row name =
  match Hashtbl.find_opt rows name with
  | Some r -> r
  | None ->
    let r = E.run (Ipet_suite.Suite.find name) in
    Hashtbl.replace rows name r;
    r

let paper_benchmarks =
  List.map (fun (b : Bspec.t) -> b.Bspec.name) Ipet_suite.Suite.all

let assert_invariants name =
  let r = row name in
  let e = r.E.estimated and c = r.E.calculated and m = r.E.measured in
  check_bool (Printf.sprintf "%s: estimated.lo <= calculated.lo (%d <= %d)" name
                e.E.lo c.E.lo) true (e.E.lo <= c.E.lo);
  check_bool (Printf.sprintf "%s: calculated.hi <= estimated.hi (%d <= %d)" name
                c.E.hi e.E.hi) true (c.E.hi <= e.E.hi);
  check_bool (Printf.sprintf "%s: measured.lo within calculated (%d <= %d)" name
                c.E.lo m.E.lo) true (c.E.lo <= m.E.lo);
  check_bool (Printf.sprintf "%s: measured.hi within calculated (%d <= %d)" name
                m.E.hi c.E.hi) true (m.E.hi <= c.E.hi);
  check_bool (Printf.sprintf "%s: measured.lo <= measured.hi" name) true
    (m.E.lo <= m.E.hi);
  (* the Section VI first-LP-integral observation is the paper's, about its
     own benchmark set; extended benchmarks may legitimately branch (ludcmp's
     triangular-loop constraints do) *)
  if List.mem name paper_benchmarks then
    check_bool (name ^ ": first LP integral (paper section VI)") true
      r.E.all_first_lp_integral

let invariant_test name = (name, `Slow, fun () -> assert_invariants name)

(* path analysis must be exact (pessimism 0.00) for these, as in Table II *)
let assert_exact name =
  let r = row name in
  let plo, phi = E.pessimism ~estimated:r.E.estimated ~reference:r.E.calculated in
  check_bool (Printf.sprintf "%s: lower pessimism %.4f < 0.005" name plo) true
    (plo < 0.005);
  check_bool (Printf.sprintf "%s: upper pessimism %.4f < 0.005" name phi) true
    (phi < 0.005)

let exact_test name = (name ^ " path-exact", `Slow, fun () -> assert_exact name)

let test_dhry_pruning () =
  let r = row "dhry" in
  check_int "8 sets before pruning" 8 r.E.sets_total;
  check_int "5 pruned" 5 r.E.sets_pruned

let test_check_data_sets () =
  let r = row "check_data" in
  check_int "2 sets" 2 r.E.sets_total

let test_all_benchmarks_present () =
  check_int "13 benchmarks" 13 (List.length Ipet_suite.Suite.all);
  check_int "8 extended benchmarks" 8 (List.length Ipet_suite.Suite.extended);
  List.iter
    (fun (b : Bspec.t) ->
      check_bool (b.Bspec.name ^ " has worst data") true (b.Bspec.worst_data <> []);
      check_bool (b.Bspec.name ^ " has best data") true (b.Bspec.best_data <> []))
    (Ipet_suite.Suite.all @ Ipet_suite.Suite.extended)

let exact_names =
  (* Table II reports [0.00, 0.00] for these *)
  [ "check_data"; "piksrt"; "line"; "jpeg_fdct_islow"; "jpeg_idct_islow";
    "recon"; "fullsearch"; "whetstone"; "dhry"; "matgen"; "des" ]

let suite =
  [ ("13 benchmarks present", `Quick, test_all_benchmarks_present) ]
  @ List.map invariant_test
      (List.map (fun (b : Bspec.t) -> b.Bspec.name)
         (Ipet_suite.Suite.all @ Ipet_suite.Suite.extended))
  @ List.map exact_test exact_names
  @ [ ("dhry 8->3 pruning", `Slow, test_dhry_pruning);
      ("check_data 2 sets", `Slow, test_check_data_sets) ]
