(* Tests for the user-facing tooling: constraint text parser, annotation
   files, reports, and the first-miss refinement. *)

module CP = Ipet.Constraint_parser
module F = Ipet.Functional
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module Analysis = Ipet.Analysis
module V = Ipet_isa.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- constraint parser ----------------------------------------------------- *)

let roundtrip text = Format.asprintf "%a" F.pp (CP.parse_constraint ~func:"f" text)

let test_parse_simple () =
  check_bool "equality" true (roundtrip "x3 = x8" = "x_f_3 = x_f_8");
  check_bool "le with coeff" true (roundtrip "x2 <= 10 x1" = "x_f_2 <= 10 x_f_1");
  check_bool "line refs" true (roundtrip "x@12 >= 1" = "x_f@L12 >= 1")

let test_parse_sums () =
  check_bool "sum" true (roundtrip "x1 + x2 - 3 x4 = 7" = "x_f_1 + x_f_2 - 3 x_f_4 = 7");
  check_bool "leading minus" true (roundtrip "-x1 + 5 = 0" = "-x_f_1 + 5 = 0")

let test_parse_boolean () =
  let c = CP.parse_constraint ~func:"f" "(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)" in
  (match c with
   | F.Or [ F.And [ F.Rel _; F.Rel _ ]; F.And [ F.Rel _; F.Rel _ ] ] -> ()
   | F.Or _ | F.And _ | F.Rel _ -> Alcotest.fail "wrong shape");
  (* precedence: & binds tighter than | *)
  let c2 = CP.parse_constraint ~func:"f" "x1 = 0 & x2 = 0 | x3 = 0" in
  match c2 with
  | F.Or [ F.And _; F.Rel _ ] -> ()
  | F.Or _ | F.And _ | F.Rel _ -> Alcotest.fail "precedence wrong"

let test_parse_errors () =
  let bad text =
    try ignore (CP.parse_constraint ~func:"f" text); false
    with CP.Parse_error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "no rel" true (bad "x1 + x2");
  check_bool "bad char" true (bad "x1 = $");
  check_bool "unclosed" true (bad "(x1 = 0");
  check_bool "bare x" true (bad "x = 1");
  check_bool "trailing" true (bad "x1 = 0 )")

let test_annotation_file () =
  let text = {|
# a comment
root check_data
loop check_data 8 1 10
constr check_data (x@10 = 0 & x@15 = 1) | (x@10 = 1 & x@15 = 0)
constr check_data x@10 = x@19
|} in
  let parsed = CP.parse_annotation_text text in
  check_bool "root" true (parsed.CP.root = Some "check_data");
  check_int "loops" 1 (List.length parsed.CP.loop_bounds);
  check_int "constraints" 2 (List.length parsed.CP.functional)

let test_annotation_file_errors () =
  let bad text =
    try ignore (CP.parse_annotation_text text); false
    with CP.Parse_error _ -> true
  in
  check_bool "bad loop arity" true (bad "loop f 3 4");
  check_bool "bad directive" true (bad "frob f");
  check_bool "bad constraint" true (bad "constr f x1 &");
  check_bool "error names line" true
    (try ignore (CP.parse_annotation_text "\n\nloop f 1");
       false
     with CP.Parse_error msg ->
       String.length msg > 6 && String.sub msg 0 6 = "line 3")

(* --- reports ---------------------------------------------------------------- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_annotated_source () =
  let src = "int f(int p) {\n  if (p)\n    return 1;\n  return 0;\n}\n" in
  let compiled = Frontend.compile_string_exn src in
  let listing = Ipet.Report.annotated_source ~source:src compiled.Compile.prog ~func:"f" in
  check_bool "labels entry" true (contains ~needle:"x0" listing);
  check_bool "has line numbers" true (contains ~needle:"|   3|" listing)

(* --- first-miss refinement --------------------------------------------------- *)

let refinement_src = {|int buf[128];

int scan() {
  int i; int s;
  s = 0;
  for (i = 0; i < 128; i = i + 1)
    s = s + buf[i];
  return s;
}
|}

let refinement_specs () =
  let compiled = Frontend.compile_string_exn refinement_src in
  let prog = compiled.Compile.prog in
  let line = Ipet_suite.Bspec.line_containing ~source:refinement_src "for (i = 0" in
  let loop_bounds = [ Ipet.Annotation.loop ~func:"scan" ~line ~lo:128 ~hi:128 ] in
  let mk refined =
    Analysis.spec prog ~root:"scan" ~loop_bounds ~first_miss_refinement:refined
  in
  (compiled, mk false, mk true)

let test_refinement_tightens_and_sound () =
  let compiled, plain_spec, refined_spec = refinement_specs () in
  let plain = Analysis.analyze plain_spec in
  let refined = Analysis.analyze refined_spec in
  let wp = plain.Analysis.wcet.Analysis.cycles in
  let wr = refined.Analysis.wcet.Analysis.cycles in
  check_bool "refined < baseline" true (wr < wp);
  check_bool "substantial gain (>2x)" true (2 * wr < wp);
  (* soundness: cold-cache simulation stays below the refined WCET *)
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  for i = 0 to 127 do
    Interp.write_global m "buf" i (V.Vint i)
  done;
  Interp.flush_cache m;
  ignore (Interp.call m "scan" []);
  check_bool "sound" true (Interp.cycles m <= wr);
  (* BCET is unchanged by the refinement (best case was already all-hit) *)
  check_int "bcet unchanged" plain.Analysis.bcet.Analysis.cycles
    refined.Analysis.bcet.Analysis.cycles

let test_refinement_skips_loops_with_calls () =
  (* a loop containing a call must not be refined (the callee may evict) *)
  let src = {|int buf[16];
int touch(int i) { return buf[i & 15]; }
int scan() {
  int i; int s;
  s = 0;
  for (i = 0; i < 16; i = i + 1)
    s = s + touch(i);
  return s;
}
|} in
  let compiled = Frontend.compile_string_exn src in
  let prog = compiled.Compile.prog in
  let line = Ipet_suite.Bspec.line_containing ~source:src "for (i = 0" in
  let loop_bounds = [ Ipet.Annotation.loop ~func:"scan" ~line ~lo:16 ~hi:16 ] in
  let solve refined =
    (Analysis.analyze
       (Analysis.spec prog ~root:"scan" ~loop_bounds ~first_miss_refinement:refined))
      .Analysis.wcet.Analysis.cycles
  in
  (* the only loop has a call, so the refinement must change nothing *)
  check_int "no effect on call-bearing loops" (solve false) (solve true)

let suite =
  [ ("parse simple constraints", `Quick, test_parse_simple);
    ("parse sums", `Quick, test_parse_sums);
    ("parse boolean structure", `Quick, test_parse_boolean);
    ("parse errors", `Quick, test_parse_errors);
    ("annotation file", `Quick, test_annotation_file);
    ("annotation file errors", `Quick, test_annotation_file_errors);
    ("annotated source listing", `Quick, test_annotated_source);
    ("refinement tightens and stays sound", `Quick, test_refinement_tightens_and_sound);
    ("refinement skips call-bearing loops", `Quick, test_refinement_skips_loops_with_calls) ]

(* --- WCET sensitivity --------------------------------------------------- *)

let test_sensitivity () =
  let src = {|int a_arr[16];
int f() {
  int i; int j; int s;
  s = 0;
  for (i = 0; i < 16; i = i + 1)
    s = s + a_arr[i] * a_arr[i];
  for (j = 0; j < 4; j = j + 1)
    s = s / 2;
  return s;
}
|} in
  let compiled = Frontend.compile_string_exn src in
  let line marker = Ipet_suite.Bspec.line_containing ~source:src marker in
  let big = Ipet.Annotation.loop ~func:"f" ~line:(line "for (i = 0") ~lo:16 ~hi:16 in
  let small = Ipet.Annotation.loop ~func:"f" ~line:(line "for (j = 0") ~lo:0 ~hi:4 in
  let spec =
    Analysis.spec compiled.Compile.prog ~root:"f" ~loop_bounds:[ big; small ]
  in
  let rows = Analysis.wcet_sensitivity spec in
  check_int "one row per annotation" 2 (List.length rows);
  let drop ann_line =
    let row =
      List.find
        (fun (r : Analysis.sensitivity_row) ->
          r.Analysis.annotation.Ipet.Annotation.header = `Line ann_line)
        rows
    in
    row.Analysis.base_wcet - row.Analysis.tightened_wcet
  in
  (* tightening lo = hi on the first loop is not allowed (hi <= lo): drop 0 *)
  check_int "exact bound cannot tighten" 0 (drop (line "for (i = 0"));
  (* the second loop's bound is slack upward: one fewer iteration saves
     a positive number of cycles *)
  check_bool "slack bound has positive price" true (drop (line "for (j = 0") > 0)

let suite =
  suite @ [ ("wcet sensitivity", `Quick, test_sensitivity) ]
