(* CFG, dominator, loop and call-graph tests. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module P = Ipet_isa.Prog
module Cfg = Ipet_cfg.Cfg
module Dominators = Ipet_cfg.Dominators
module Loops = Ipet_cfg.Loops
module Callgraph = Ipet_cfg.Callgraph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg_of src name =
  let compiled = Frontend.compile_string_exn src in
  Cfg.of_func (P.find_func compiled.Compile.prog name)

let prog_of src = (Frontend.compile_string_exn src).Compile.prog

let diamond_src =
  "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }"

let while_src =
  "int g(int p) { int q; q = p; while (q < 10) q = q + 1; return q; }"

let nested_src = {|
int h(int n) {
  int i; int j; int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      s = s + j;
    }
  }
  return s;
}
|}

let test_diamond_structure () =
  let cfg = cfg_of diamond_src "f" in
  check_int "blocks" 4 (Cfg.nblocks cfg);
  check_int "entry succs" 2 (List.length (Cfg.succs cfg 0));
  check_int "edges (fig 2 has d1..d6 incl. virtual)" 4 (List.length (Cfg.edges cfg));
  check_int "exits" 1 (List.length (Cfg.exit_blocks cfg))

let test_preds_are_inverse () =
  let cfg = cfg_of while_src "g" in
  List.iter
    (fun { Cfg.src; dst } ->
      check_bool "pred edge exists" true (List.mem src (Cfg.preds cfg dst)))
    (Cfg.edges cfg)

let test_rpo_starts_at_entry () =
  let cfg = cfg_of while_src "g" in
  let rpo = Cfg.reverse_postorder cfg in
  check_int "entry first" 0 rpo.(0);
  check_int "all reachable" (Cfg.nblocks cfg) (Array.length rpo)

let test_dominators_diamond () =
  let cfg = cfg_of diamond_src "f" in
  let dom = Dominators.compute cfg in
  (* entry dominates everything; neither branch dominates the join *)
  for b = 0 to Cfg.nblocks cfg - 1 do
    check_bool "entry dominates" true (Dominators.dominates dom 0 b)
  done;
  let join =
    (* the block with two predecessors *)
    let rec find b = if List.length (Cfg.preds cfg b) = 2 then b else find (b + 1) in
    find 0
  in
  List.iter
    (fun branch ->
      check_bool "branch does not dominate join" false
        (Dominators.dominates dom branch join))
    (Cfg.succs cfg 0);
  check_int "idom of join is entry" 0 (Dominators.idom dom join)

let test_loop_detection_while () =
  let cfg = cfg_of while_src "g" in
  let dom = Dominators.compute cfg in
  let loops = Loops.detect cfg dom in
  check_int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check_int "depth" 1 l.Loops.depth;
  check_int "one back edge" 1 (List.length l.Loops.back_edges);
  check_int "one entry edge" 1 (List.length (Loops.entry_edges cfg l));
  check_int "one iteration edge" 1 (List.length (Loops.iteration_edges cfg l));
  (* the iteration edge leaves the header into the body *)
  let (hdr, body) = List.hd (Loops.iteration_edges cfg l) in
  check_int "from header" l.Loops.header hdr;
  check_bool "into body" true (Loops.in_loop l body)

let test_nested_loops () =
  let cfg = cfg_of nested_src "h" in
  let dom = Dominators.compute cfg in
  let loops = Loops.detect cfg dom in
  check_int "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Loops.depth) loops) in
  check_bool "depths 1 and 2" true (depths = [ 1; 2 ]);
  (* the inner loop's body is contained in the outer loop's body *)
  let outer = List.find (fun l -> l.Loops.depth = 1) loops in
  let inner = List.find (fun l -> l.Loops.depth = 2) loops in
  Array.iteri
    (fun b inside ->
      if inside then check_bool "containment" true outer.Loops.body.(b))
    inner.Loops.body

let test_self_loop () =
  (* a loop whose body is just the header: do-style via for with empty body *)
  let src = "int f(int n) { int i; for (i = 0; i < n; i = i + 1) { } return i; }" in
  let cfg = cfg_of src "f" in
  let dom = Dominators.compute cfg in
  let loops = Loops.detect cfg dom in
  check_int "one loop" 1 (List.length loops)

let test_callgraph () =
  let src = {|
    int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int top(int x) { return mid(leaf(x)); }
  |} in
  let cg = Callgraph.of_program (prog_of src) in
  check_int "sites" 4 (List.length (Callgraph.sites cg));
  check_bool "acyclic" true (Callgraph.check_acyclic cg = Ok ());
  let order = Callgraph.topological_order cg in
  let pos name =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = name then i else go (i + 1) rest
    in
    go 0 order
  in
  check_bool "leaf before mid" true (pos "leaf" < pos "mid");
  check_bool "mid before top" true (pos "mid" < pos "top")

let test_callgraph_two_calls_one_block () =
  let src = {|
    int leaf(int x) { return x + 1; }
    int two(int x) { return leaf(x) + leaf(x); }
  |} in
  let cg = Callgraph.of_program (prog_of src) in
  let sites = Callgraph.sites_of_caller cg "two" in
  check_int "two sites" 2 (List.length sites);
  let occs = List.sort compare (List.map (fun s -> s.Callgraph.occurrence) sites) in
  check_bool "occurrences 0 and 1" true (occs = [ 0; 1 ])

let test_recursion_detected () =
  let src = {|
    int odd(int n) { if (n == 0) return 0; return even(n - 1); }
    int even(int n) { if (n == 0) return 1; return odd(n - 1); }
  |} in
  let cg = Callgraph.of_program (prog_of src) in
  match Callgraph.check_acyclic cg with
  | Error cycle -> check_bool "cycle found" true (List.length cycle >= 2)
  | Ok () -> Alcotest.fail "expected a recursive cycle"

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_export () =
  let cfg = cfg_of while_src "g" in
  let dom = Dominators.compute cfg in
  let loops = Loops.detect cfg dom in
  let dot = Ipet_cfg.Dot.cfg_to_dot ~highlight_loops:loops cfg in
  check_bool "has digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  check_bool "highlights a back edge" true (contains ~needle:"color=red" dot)

(* property: dominator sets on random structured programs are consistent:
   idom(b) dominates b, and every predecessor path respects dominance *)
let random_program_src seed =
  (* generate a random nest of if/while statements over a few variables *)
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create 128 in
  let rec stmts depth budget =
    if budget <= 0 then Buffer.add_string buf "s = s + 1;\n"
    else begin
      for _ = 1 to 1 + Random.State.int st 2 do
        match Random.State.int st (if depth > 2 then 2 else 4) with
        | 0 -> Buffer.add_string buf "s = s + a;\n"
        | 1 -> Buffer.add_string buf "a = a - 1;\n"
        | 2 ->
          Buffer.add_string buf "if (a > 0) {\n";
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "} else {\n";
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "}\n"
        | _ ->
          Buffer.add_string buf "while (a > 0) {\na = a - 1;\n";
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "}\n"
      done
    end
  in
  Buffer.add_string buf "int f(int a) {\nint s;\ns = 0;\n";
  stmts 0 3;
  Buffer.add_string buf "return s;\n}\n";
  Buffer.contents buf

let prop_dominators_consistent =
  QCheck.Test.make ~name:"dominators consistent on random programs" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cfg = cfg_of (random_program_src seed) "f" in
      let dom = Dominators.compute cfg in
      let ok = ref true in
      for b = 0 to Cfg.nblocks cfg - 1 do
        if b <> 0 then begin
          (* idom dominates b and differs from b *)
          let i = Dominators.idom dom b in
          if not (Dominators.dominates dom i b) then ok := false;
          (* every predecessor of b is dominated by idom(b) too *)
          List.iter
            (fun p -> if not (Dominators.dominates dom i p) && i <> b then ok := false)
            (Cfg.preds cfg b)
        end
      done;
      !ok)

let props = List.map QCheck_alcotest.to_alcotest [ prop_dominators_consistent ]

let suite =
  [ ("diamond structure", `Quick, test_diamond_structure);
    ("preds inverse of succs", `Quick, test_preds_are_inverse);
    ("rpo starts at entry", `Quick, test_rpo_starts_at_entry);
    ("dominators on diamond", `Quick, test_dominators_diamond);
    ("while loop detection", `Quick, test_loop_detection_while);
    ("nested loops", `Quick, test_nested_loops);
    ("empty-body loop", `Quick, test_self_loop);
    ("call graph", `Quick, test_callgraph);
    ("two calls in one block", `Quick, test_callgraph_two_calls_one_block);
    ("recursion detected", `Quick, test_recursion_detected);
    ("dot export", `Quick, test_dot_export) ]
  @ props
