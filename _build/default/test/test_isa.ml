(* Unit tests for the ISA layer: instruction metadata, values, program
   validation, and the assembly printer's operand conventions. *)

module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module V = Ipet_isa.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let addr ?(offset = 0) ?index base = { I.base = I.Abs base; offset; index }

(* --- defs / uses ------------------------------------------------------------ *)

let test_defs_uses () =
  let check instr defs uses =
    check_bool "defs" true (List.sort compare (I.defs instr) = List.sort compare defs);
    check_bool "uses" true (List.sort compare (I.uses instr) = List.sort compare uses)
  in
  check (I.Alu (I.Add, 1, I.Reg 2, I.Reg 3)) [ 1 ] [ 2; 3 ];
  check (I.Alu (I.Add, 1, I.Imm 5, I.Reg 3)) [ 1 ] [ 3 ];
  check (I.Mov (4, I.Fimm 2.5)) [ 4 ] [];
  check (I.Load (5, addr ~index:(I.Reg 6) 0)) [ 5 ] [ 6 ];
  check (I.Store (I.Reg 7, addr ~index:(I.Reg 8) 0)) [] [ 7; 8 ];
  check (I.Call (Some 9, "f", [ I.Reg 1; I.Imm 2; I.Reg 3 ])) [ 9 ] [ 1; 3 ];
  check (I.Call (None, "g", [])) [] [];
  check (I.Fcmp (I.Cle, 2, I.Reg 0, I.Reg 1)) [ 2 ] [ 0; 1 ]

let test_predicates () =
  check_bool "load" true (I.is_load (I.Load (0, addr 0)));
  check_bool "store" true (I.is_store (I.Store (I.Imm 1, addr 0)));
  check_bool "call" true (I.is_call (I.Call (None, "f", [])));
  check_bool "alu is not a load" false (I.is_load (I.Alu (I.Add, 0, I.Imm 1, I.Imm 2)))

(* --- printer conventions ---------------------------------------------------- *)

let render instr = Format.asprintf "%a" I.pp instr

let test_printing () =
  check_str "alu" "add r1, r2, #3" (render (I.Alu (I.Add, 1, I.Reg 2, I.Imm 3)));
  check_str "cmp" "cmp.lt r1, r2, r3" (render (I.Icmp (I.Clt, 1, I.Reg 2, I.Reg 3)));
  check_str "load abs" "ld r1, [5+r2]"
    (render (I.Load (1, addr ~index:(I.Reg 2) 5)));
  check_str "store frame" "st r3, [fp+2]"
    (render (I.Store (I.Reg 3, { I.base = I.Frame_base; offset = 2; index = None })));
  check_str "call" "call r0, f(r1, #2)"
    (render (I.Call (Some 0, "f", [ I.Reg 1; I.Imm 2 ])));
  (* float immediates always carry a decimal marker (parser relies on it) *)
  check_str "whole float" "mov r0, #3." (render (I.Mov (0, I.Fimm 3.0)));
  check_str "terminator" "br r1 ? B2 : B3"
    (Format.asprintf "%a" I.pp_terminator (I.Branch (1, 2, 3)))

(* --- values ------------------------------------------------------------------ *)

let test_values () =
  check_int "as_int" 7 (V.as_int (V.Vint 7));
  check_bool "as_int on float raises" true
    (try ignore (V.as_int (V.Vfloat 1.0)); false with Invalid_argument _ -> true);
  check_bool "truthy int" true (V.truthy (V.Vint (-3)));
  check_bool "falsy zero" false (V.truthy (V.Vint 0));
  check_bool "truthy float" true (V.truthy (V.Vfloat 0.1));
  check_bool "cross-type not equal" false (V.equal (V.Vint 0) (V.Vfloat 0.0));
  check_bool "float equal" true (V.equal (V.Vfloat 2.5) (V.Vfloat 2.5))

(* --- program validation ------------------------------------------------------ *)

let block ?(id = 0) instrs term = { P.id; instrs = Array.of_list instrs; term; src_line = 0 }

let func ?(name = "f") blocks =
  { P.name; nparams = 0; frame_words = 0; blocks = Array.of_list blocks }

let prog ?(globals = []) ?(globals_words = 0) funcs =
  { P.funcs = Array.of_list funcs; globals; globals_words }

let test_validate_ok () =
  let p =
    prog [ func [ block [ I.Mov (0, I.Imm 1) ] (I.Return (Some (I.Reg 0))) ] ]
  in
  check_bool "valid" true (P.validate p = Ok ())

let test_validate_catches () =
  let bad_target = prog [ func [ block [] (I.Jump 3) ] ] in
  check_bool "branch target" true (Result.is_error (P.validate bad_target));
  let empty_func = prog [ func [] ] in
  check_bool "empty function" true (Result.is_error (P.validate empty_func));
  let bad_call =
    prog [ func [ block [ I.Call (None, "missing", []) ] (I.Return None) ] ]
  in
  check_bool "unknown callee" true (Result.is_error (P.validate bad_call));
  let bad_global =
    prog ~globals:[ { P.gname = "g"; addr = 5; size_words = 4 } ] ~globals_words:6
      [ func [ block [] (I.Return None) ] ]
  in
  check_bool "global out of segment" true (Result.is_error (P.validate bad_global))

let test_calls_of_block () =
  let b =
    block
      [ I.Mov (0, I.Imm 1);
        I.Call (None, "a", []);
        I.Alu (I.Add, 1, I.Reg 0, I.Imm 2);
        I.Call (Some 2, "b", [ I.Reg 1 ]) ]
      (I.Return None)
  in
  check_bool "in order" true (P.calls_of_block b = [ "a"; "b" ])

let suite =
  [ ("defs and uses", `Quick, test_defs_uses);
    ("instruction predicates", `Quick, test_predicates);
    ("printer conventions", `Quick, test_printing);
    ("machine words", `Quick, test_values);
    ("validate accepts good programs", `Quick, test_validate_ok);
    ("validate rejects bad programs", `Quick, test_validate_catches);
    ("calls of a block", `Quick, test_calls_of_block) ]
