(* Unit and property tests for the bignum / rational substrate. *)

module B = Ipet_num.Bigint
module Q = Ipet_num.Rat

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* --- Bigint unit tests ------------------------------------------------ *)

let test_of_to_int () =
  List.iter
    (fun i -> check_int (Printf.sprintf "roundtrip %d" i) i (B.to_int (B.of_int i)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31;
      max_int; min_int; min_int + 1; 123456789012345678 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> check_str ("roundtrip " ^ s) s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "99999999999999999999999999999999";
      "-123456789123456789123456789"; "1000000000000000000000000000000" ]

let test_big_arithmetic () =
  let a = B.of_string "123456789123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check_str "mul" "121932631356500531469135800347203169112635269"
    (B.to_string (B.mul a b));
  check_str "add" "123456790111111111111111110" (B.to_string (B.add a b));
  let q, r = B.divmod a b in
  check_bool "reconstruct" true (B.equal a (B.add (B.mul q b) r));
  check_str "quot" "124999998" (B.to_string q)

let test_divmod_signs () =
  (* truncated division must match native semantics on small values *)
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      check_int (Printf.sprintf "%d quot %d" a b) (a / b) (B.to_int q);
      check_int (Printf.sprintf "%d rem %d" a b) (a mod b) (B.to_int r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (6, 3); (-6, 3); (1, 7) ]

let test_div_by_zero () =
  Alcotest.check_raises "divmod 0" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd () =
  let g a b = B.to_int (B.gcd (B.of_int a) (B.of_int b)) in
  check_int "gcd 12 18" 6 (g 12 18);
  check_int "gcd -12 18" 6 (g (-12) 18);
  check_int "gcd 0 5" 5 (g 0 5);
  check_int "gcd 0 0" 0 (g 0 0);
  check_int "gcd 17 13" 1 (g 17 13)

let test_to_int_overflow () =
  let huge = B.of_string "99999999999999999999999999999999" in
  check_bool "overflow detected" true (B.to_int_opt huge = None);
  check_bool "max_int fits" true (B.to_int_opt (B.of_int max_int) = Some max_int)

(* --- Bigint properties ------------------------------------------------ *)

let small = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add = int add" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> B.to_int (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul = int mul" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod = int divmod" ~count:500
    (QCheck.pair small small)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int q = a / b && B.to_int r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) small)
    (fun xs ->
      (* build a large number as a polynomial in 10^9 to exercise carries *)
      let big =
        List.fold_left
          (fun acc x -> B.add (B.mul acc (B.of_int 1_000_000_000)) (B.of_int x))
          B.zero xs
      in
      B.equal big (B.of_string (B.to_string big)))

let prop_mul_div_roundtrip =
  QCheck.Test.make ~name:"(a*b)/b = a for big operands" ~count:200
    (QCheck.pair (QCheck.pair small small) (QCheck.pair small small))
    (fun ((a1, a2), (b1, b2)) ->
      let big x y = B.add (B.mul (B.of_int x) (B.of_string "1000000000000000000000")) (B.of_int y) in
      let a = big a1 a2 and b = big b1 b2 in
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod (B.mul a b) b in
      B.equal q a && B.is_zero r)

let prop_compare_total =
  QCheck.Test.make ~name:"bigint compare matches int compare" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> compare a b = B.compare (B.of_int a) (B.of_int b))

(* --- Rat unit tests ---------------------------------------------------- *)

let q = Q.of_ints

let test_rat_normalization () =
  check_str "6/4 = 3/2" "3/2" (Q.to_string (q 6 4));
  check_str "-6/-4 = 3/2" "3/2" (Q.to_string (q (-6) (-4)));
  check_str "6/-4 = -3/2" "-3/2" (Q.to_string (q 6 (-4)));
  check_str "0/7 = 0" "0" (Q.to_string (q 0 7));
  check_str "8/4 = 2" "2" (Q.to_string (q 8 4))

let test_rat_arith () =
  check_bool "1/2 + 1/3 = 5/6" true Q.(equal (add (q 1 2) (q 1 3)) (q 5 6));
  check_bool "1/2 * 2/3 = 1/3" true Q.(equal (mul (q 1 2) (q 2 3)) (q 1 3));
  check_bool "(1/2) / (3/4) = 2/3" true Q.(equal (div (q 1 2) (q 3 4)) (q 2 3));
  check_bool "1/2 - 1/2 = 0" true (Q.is_zero (Q.sub (q 1 2) (q 1 2)))

let test_rat_floor_ceil () =
  let fl a b = B.to_int (Q.floor (q a b)) and ce a b = B.to_int (Q.ceil (q a b)) in
  check_int "floor 7/2" 3 (fl 7 2);
  check_int "ceil 7/2" 4 (ce 7 2);
  check_int "floor -7/2" (-4) (fl (-7) 2);
  check_int "ceil -7/2" (-3) (ce (-7) 2);
  check_int "floor 6/2" 3 (fl 6 2);
  check_int "ceil 6/2" 3 (ce 6 2)

let test_rat_of_string () =
  check_bool "3/4" true (Q.equal (Q.of_string "3/4") (q 3 4));
  check_bool "-3/4" true (Q.equal (Q.of_string "-3/4") (q (-3) 4));
  check_bool "2.5" true (Q.equal (Q.of_string "2.5") (q 5 2));
  check_bool "-0.25" true (Q.equal (Q.of_string "-0.25") (q (-1) 4));
  check_bool "42" true (Q.equal (Q.of_string "42") (Q.of_int 42))

let test_rat_compare () =
  check_bool "1/3 < 1/2" true (Q.compare (q 1 3) (q 1 2) < 0);
  check_bool "-1/2 < 1/3" true (Q.compare (q (-1) 2) (q 1 3) < 0);
  check_bool "min" true (Q.equal (Q.min (q 1 3) (q 1 2)) (q 1 3));
  check_bool "max" true (Q.equal (Q.max (q 1 3) (q 1 2)) (q 1 2))

(* --- Rat properties ---------------------------------------------------- *)

let rat_gen =
  QCheck.map
    (fun (n, d) -> Q.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range (-100) 100))

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat add associative" ~count:300
    (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_rat_mul_distrib =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:300
    (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_rat_inverse =
  QCheck.Test.make ~name:"rat a * (1/a) = 1" ~count:300 rat_gen
    (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_rat_floor_le =
  QCheck.Test.make ~name:"floor <= x <= ceil, within 1" ~count:300 rat_gen
    (fun a ->
      let fl = Q.of_bigint (Q.floor a) and ce = Q.of_bigint (Q.ceil a) in
      Q.compare fl a <= 0 && Q.compare a ce <= 0
      && Q.compare (Q.sub ce fl) Q.one <= 0)

let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat string roundtrip" ~count:300 rat_gen
    (fun a -> Q.equal a (Q.of_string (Q.to_string a)))

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_matches_int;
      prop_string_roundtrip; prop_mul_div_roundtrip; prop_compare_total;
      prop_rat_add_assoc; prop_rat_mul_distrib; prop_rat_inverse;
      prop_rat_floor_le; prop_rat_string_roundtrip ]

let suite =
  [ ("bigint int roundtrip", `Quick, test_of_to_int);
    ("bigint string roundtrip", `Quick, test_string_roundtrip);
    ("bigint big arithmetic", `Quick, test_big_arithmetic);
    ("bigint divmod signs", `Quick, test_divmod_signs);
    ("bigint division by zero", `Quick, test_div_by_zero);
    ("bigint gcd", `Quick, test_gcd);
    ("bigint to_int overflow", `Quick, test_to_int_overflow);
    ("rat normalization", `Quick, test_rat_normalization);
    ("rat arithmetic", `Quick, test_rat_arith);
    ("rat floor/ceil", `Quick, test_rat_floor_ceil);
    ("rat of_string", `Quick, test_rat_of_string);
    ("rat compare/min/max", `Quick, test_rat_compare) ]
  @ props
