(* A hard-real-time use case from the paper's introduction: a periodic
   engine-control task must finish before its deadline on a 20 MHz
   processor. The task filters a sensor ring buffer, looks up an injection
   table, and applies a rate limiter. We bound its WCET with IPET and
   answer the schedulability question (can it run at 2 kHz?).

     dune exec examples/engine_control.exe *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value
module F = Ipet.Functional

let source = {|int rpm_samples[8];
int map_table[64];
int last_output;
int output;

int median_filter() {
  int window[8];
  int i; int j; int t; int swapped;
  for (i = 0; i < 8; i = i + 1)
    window[i] = rpm_samples[i];
  /* bubble sort the window: at most 7 passes */
  swapped = 1;
  j = 0;
  while (swapped == 1 && j < 7) {
    swapped = 0;
    for (i = 0; i < 7; i = i + 1) {
      if (window[i] > window[i + 1]) {
        t = window[i];            /* swap */
        window[i] = window[i + 1];
        window[i + 1] = t;
        swapped = 1;
      }
    }
    j = j + 1;
  }
  return (window[3] + window[4]) / 2;
}

int lookup(int rpm) {
  int idx;
  idx = rpm / 128;
  if (idx > 63)
    idx = 63;
  if (idx < 0)
    idx = 0;
  return map_table[idx];
}

void engine_step() {
  int rpm; int target; int delta;
  rpm = median_filter();
  target = lookup(rpm);
  delta = target - last_output;
  /* rate limiter: clamp the change to +/- 16 per period */
  if (delta > 16)
    delta = 16;
  if (delta < 0 - 16)
    delta = 0 - 16;
  output = last_output + delta;
  last_output = output;
}
|}

let clock_hz = 20_000_000 (* the QT960's 20 MHz *)
let period_hz = 2_000

let () =
  let compiled = Frontend.compile_string_exn source in
  let prog = compiled.Compile.prog in
  let line marker = Ipet_suite.Bspec.line_containing ~source marker in
  let loop_bounds =
    [ Ipet.Annotation.loop ~func:"median_filter" ~line:(line "for (i = 0; i < 8")
        ~lo:8 ~hi:8;
      (* && condition: the first test can pass one extra time (the final
         j < 7 exit), so the edge bound is 8, not 7 *)
      Ipet.Annotation.loop ~func:"median_filter" ~line:(line "while (swapped == 1")
        ~lo:1 ~hi:8;
      Ipet.Annotation.loop ~func:"median_filter" ~line:(line "for (i = 0; i < 7")
        ~lo:7 ~hi:7 ]
  in
  (* a sorting fact: over the whole sort there are at most 8*7/2 swaps *)
  let swaps = F.x_at ~func:"median_filter" ~line:(line "/* swap */") in
  let functional = F.[ swaps <=. const 28 ] in
  let spec =
    Ipet.Analysis.spec prog ~root:"engine_step" ~loop_bounds ~functional
  in
  let result = Ipet.Analysis.analyze spec in
  let wcet = result.Ipet.Analysis.wcet.Ipet.Analysis.cycles in
  let bcet = result.Ipet.Analysis.bcet.Ipet.Analysis.cycles in
  Printf.printf "engine_step estimated bound: [%d, %d] cycles\n" bcet wcet;
  let budget = clock_hz / period_hz in
  Printf.printf "period budget at %d Hz on a %d MHz core: %d cycles\n" period_hz
    (clock_hz / 1_000_000) budget;
  Printf.printf "utilization (WCET/budget): %.1f%%\n"
    (100.0 *. float_of_int wcet /. float_of_int budget);
  Printf.printf "schedulable: %b\n" (wcet <= budget);
  (* sanity: simulate the nastiest input we can think of (reverse-sorted
     window forces the most bubble-sort work) and check it fits the bound *)
  let m = Interp.create prog ~init:compiled.Compile.init_data in
  for i = 0 to 7 do
    Interp.write_global m "rpm_samples" i (V.Vint (8000 - (i * 700)))
  done;
  for i = 0 to 63 do
    Interp.write_global m "map_table" i (V.Vint (i * 9))
  done;
  Interp.flush_cache m;
  ignore (Interp.call m "engine_step" []);
  Printf.printf "simulated worst-ish input: %d cycles (within bound: %b)\n"
    (Interp.cycles m)
    (bcet <= Interp.cycles m && Interp.cycles m <= wcet)
