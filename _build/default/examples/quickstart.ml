(* Quickstart: bound the running time of a small routine in five steps.

     dune exec examples/quickstart.exe

   1. write (or load) MC source;
   2. compile it;
   3. annotate the loops;
   4. analyze - WCET and BCET come from one ILP each;
   5. cross-check against the cycle-accurate simulator. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value

let source = {|int samples[16];
int threshold;

int count_over() {
  int i; int n;
  n = 0;
  for (i = 0; i < 16; i = i + 1) {
    if (samples[i] > threshold)
      n = n + 1;
  }
  return n;
}
|}

let () =
  (* 2. compile *)
  let compiled = Frontend.compile_string_exn source in
  let prog = compiled.Compile.prog in

  (* 3. loop bounds: the only loop here is a counted for-loop, which the
     automatic inference recognizes - no manual annotation needed *)
  let ast, _env = Frontend.parse_and_check source in
  let loop_bounds = Ipet.Autobound.infer ast in

  (* 4. analyze *)
  let spec = Ipet.Analysis.spec prog ~root:"count_over" ~loop_bounds in
  let result = Ipet.Analysis.analyze spec in
  print_string (Ipet.Report.annotated_source ~source prog ~func:"count_over");
  print_newline ();
  print_string (Ipet.Report.bound_summary result);

  (* 5. simulate a few inputs; every run must land inside the bound *)
  let simulate data =
    let m = Interp.create prog ~init:compiled.Compile.init_data in
    Array.iteri (fun i v -> Interp.write_global m "samples" i (V.Vint v)) data;
    Interp.write_global m "threshold" 0 (V.Vint 50);
    Interp.flush_cache m;
    ignore (Interp.call m "count_over" []);
    Interp.cycles m
  in
  print_newline ();
  List.iter
    (fun (name, data) ->
      let t = simulate data in
      Printf.printf "simulated %-12s %5d cycles (inside bound: %b)\n" name t
        (result.Ipet.Analysis.bcet.Ipet.Analysis.cycles <= t
         && t <= result.Ipet.Analysis.wcet.Ipet.Analysis.cycles))
    [ ("all-over", Array.make 16 100);
      ("all-under", Array.make 16 0);
      ("alternating", Array.init 16 (fun i -> if i mod 2 = 0 then 100 else 0)) ]
