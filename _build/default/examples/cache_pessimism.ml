(* Section IV observes that assuming a cache miss on every execution "can be
   very pessimistic" for loops, and proposes treating the first iteration
   separately. This example quantifies that: a tight loop over an array is
   analyzed with the baseline all-miss model and with the first-miss
   refinement (Analysis.first_miss_refinement), and both bounds are compared
   against cycle-accurate simulation.

     dune exec examples/cache_pessimism.exe *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value

let source = {|int signal[256];

int energy() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 256; i = i + 1)
    acc = acc + signal[i] * signal[i];
  return acc;
}
|}

let () =
  let compiled = Frontend.compile_string_exn source in
  let prog = compiled.Compile.prog in
  let line = Ipet_suite.Bspec.line_containing ~source "for (i = 0" in
  let loop_bounds =
    [ Ipet.Annotation.loop ~func:"energy" ~line ~lo:256 ~hi:256 ]
  in
  let analyze ~refined =
    Ipet.Analysis.analyze
      (Ipet.Analysis.spec prog ~root:"energy" ~loop_bounds
         ~first_miss_refinement:refined)
  in
  let baseline = analyze ~refined:false in
  let refined = analyze ~refined:true in
  (* ground truth: cold-cache simulation of the worst case *)
  let m = Interp.create prog ~init:compiled.Compile.init_data in
  for i = 0 to 255 do
    Interp.write_global m "signal" i (V.Vint (i - 128))
  done;
  Interp.flush_cache m;
  ignore (Interp.call m "energy" []);
  let measured = Interp.cycles m in
  let w r = r.Ipet.Analysis.wcet.Ipet.Analysis.cycles in
  Printf.printf "measured worst case (cold cache):   %7d cycles\n" measured;
  Printf.printf "WCET, all-miss model (paper SecIV): %7d cycles (%.2fx)\n"
    (w baseline)
    (float_of_int (w baseline) /. float_of_int measured);
  Printf.printf "WCET, first-miss refinement:        %7d cycles (%.2fx)\n"
    (w refined)
    (float_of_int (w refined) /. float_of_int measured);
  assert (measured <= w refined && w refined <= w baseline);
  Printf.printf
    "\nThe refinement charges the loop's cache misses once per loop entry\n\
     instead of once per iteration, and stays a sound upper bound.\n"
