examples/rtos_schedule.ml: Ipet Ipet_lang List Printf
