examples/cache_pessimism.mli:
