examples/tighten.ml: Ipet Ipet_lang Ipet_suite List Printf
