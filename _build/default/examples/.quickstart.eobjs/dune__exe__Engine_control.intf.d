examples/engine_control.mli:
