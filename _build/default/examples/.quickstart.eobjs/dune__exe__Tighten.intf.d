examples/tighten.mli:
