examples/quickstart.mli:
