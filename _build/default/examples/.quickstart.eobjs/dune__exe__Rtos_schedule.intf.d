examples/rtos_schedule.mli:
