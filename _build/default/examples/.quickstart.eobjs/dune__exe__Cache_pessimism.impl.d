examples/cache_pessimism.ml: Ipet Ipet_isa Ipet_lang Ipet_sim Ipet_suite Printf
