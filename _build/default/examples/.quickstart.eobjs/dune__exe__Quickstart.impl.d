examples/quickstart.ml: Array Ipet Ipet_isa Ipet_lang Ipet_sim List Printf
