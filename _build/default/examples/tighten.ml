(* The cinderella workflow of Section V: start with loop bounds only (the
   mandatory minimum), look at the estimated bound, then add functionality
   constraints one at a time and watch the bound tighten. Uses the paper's
   own running example, check_data.

     dune exec examples/tighten.exe *)

module Bspec = Ipet_suite.Bspec
module Analysis = Ipet.Analysis
module F = Ipet.Functional

let bench = Ipet_suite.Suite.find "check_data"

let analyze functional =
  let compiled = Bspec.compile bench in
  let spec =
    Analysis.spec compiled.Ipet_lang.Compile.prog ~root:bench.Bspec.root
      ~loop_bounds:bench.Bspec.loop_bounds ~functional
  in
  Analysis.estimated_bound spec

let () =
  let source = bench.Bspec.source in
  let line marker = Bspec.line_containing ~source marker in
  let found = F.x_at ~func:"check_data" ~line:(line "found-negative") in
  let scanned = F.x_at ~func:"check_data" ~line:(line "scanned-everything") in
  let bad_return = F.x_at ~func:"check_data" ~line:(line "bad-return") in
  let open F in
  let c16 =
    (found =. const 0 &&. (scanned =. const 1))
    ||. (found =. const 1 &&. (scanned =. const 0))
  in
  let c17 = found =. bad_return in
  let steps =
    [ ("loop bounds only (mandatory minimum)", []);
      ("+ (16): the loop exits are mutually exclusive", [ c16 ]);
      ("+ (17): 'return 0' iff a negative was found", [ c16; c17 ]) ]
  in
  Printf.printf "%-48s %s\n" "information provided" "estimated bound";
  List.iter
    (fun (label, functional) ->
      let bcet, wcet = analyze functional in
      Printf.printf "%-48s [%d, %d]\n" label bcet wcet)
    steps;
  print_newline ();
  print_endline
    "Each added constraint can only shrink (or keep) the interval: the ILP\n\
     maximum is taken over a smaller feasible set of paths."
