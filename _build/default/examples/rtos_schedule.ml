(* The paper's introduction: "These bounds are also required by schedulers
   in real-time operating systems." This example computes the WCET of three
   periodic tasks with IPET and runs the classic fixed-priority
   response-time analysis (rate-monotonic priorities) to decide
   schedulability — the downstream consumer of the bounds this library
   produces.

     dune exec examples/rtos_schedule.exe *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module F = Ipet.Functional

let source = {|int adc_raw[4];
int adc_filtered[4];
int pwm_out;
int log_buf[32];
int log_head;
int comm_word;
int crc_acc;

/* task 1: sample conditioning, highest rate */
void sample_task() {
  int i; int acc;
  for (i = 0; i < 4; i = i + 1) {
    acc = adc_raw[i];
    if (acc < 0)
      acc = 0;
    if (acc > 4095)
      acc = 4095;
    adc_filtered[i] = (adc_filtered[i] * 3 + acc) / 4;
  }
}

/* task 2: control law, middle rate */
void control_task() {
  int err; int p; int d;
  err = 2048 - adc_filtered[0];
  p = err * 5 / 8;
  d = (adc_filtered[1] - adc_filtered[2]) * 3 / 16;
  pwm_out = p + d;
  if (pwm_out > 255)
    pwm_out = 255;
  if (pwm_out < 0 - 255)
    pwm_out = 0 - 255;
  log_buf[log_head & 31] = pwm_out;
  log_head = log_head + 1;
}

/* task 3: telemetry CRC, lowest rate */
void comm_task() {
  int i; int k; int crc;
  crc = crc_acc;
  for (i = 0; i < 32; i = i + 1) {
    crc = crc ^ (log_buf[i] << 8);
    for (k = 0; k < 8; k = k + 1) {
      if ((crc & 0x8000) != 0) {
        crc = ((crc << 1) ^ 0x1021) & 0xffff;
      } else {
        crc = (crc << 1) & 0xffff;
      }
    }
  }
  crc_acc = crc;
}
|}

(* periods in cycles on the 20 MHz core *)
let tasks = [ ("sample_task", 4_000); ("control_task", 10_000); ("comm_task", 40_000) ]

(* fixed-priority response-time analysis: R_i = C_i + sum_{j higher} ceil(R_i/T_j) C_j *)
let response_time ~own ~higher =
  let rec iterate r =
    let interference =
      List.fold_left
        (fun acc (c, t) -> acc + (((r + t - 1) / t) * c))
        0 higher
    in
    let r' = own + interference in
    if r' = r then Some r
    else if r' > 1_000_000 then None
    else iterate r'
  in
  iterate own

let () =
  let compiled = Frontend.compile_string_exn source in
  let prog = compiled.Compile.prog in
  let ast, _ = Frontend.parse_and_check source in
  let loop_bounds = Ipet.Autobound.infer ast in
  let wcet name =
    let result = Ipet.Analysis.analyze (Ipet.Analysis.spec prog ~root:name ~loop_bounds) in
    result.Ipet.Analysis.wcet.Ipet.Analysis.cycles
  in
  let with_wcet = List.map (fun (name, period) -> (name, period, wcet name)) tasks in
  Printf.printf "%-14s %10s %10s %12s %12s\n" "task" "period" "WCET" "response" "deadline ok";
  let utilization =
    List.fold_left
      (fun acc (_, period, c) -> acc +. (float_of_int c /. float_of_int period))
      0.0 with_wcet
  in
  let rec analyze_each acc = function
    | [] -> true
    | (name, period, c) :: rest ->
      let r = response_time ~own:c ~higher:acc in
      (match r with
       | Some r ->
         Printf.printf "%-14s %10d %10d %12d %12b\n" name period c r (r <= period)
       | None -> Printf.printf "%-14s %10d %10d %12s %12b\n" name period c "diverges" false);
      let ok = match r with Some r -> r <= period | None -> false in
      ok && analyze_each ((c, period) :: acc) rest
  in
  let schedulable = analyze_each [] with_wcet in
  Printf.printf "\ntotal utilization: %.1f%%\n" (100.0 *. utilization);
  Printf.printf "task set schedulable under rate-monotonic priorities: %b\n" schedulable;
  print_endline
    "\nEvery number above is an IPET bound (loop bounds inferred\n\
     automatically); a measurement-based estimate could not promise the\n\
     deadlines hold for every input.";
  if not schedulable then exit 1
