(* Regenerates every table and figure of the paper's evaluation:

     fig1..fig6   the illustrative figures (bound enclosure, structural
                  constraints of Figs. 2-4, the annotated listing of Fig. 5,
                  the caller/callee constraint of Fig. 6)
     table1       benchmark set with lines and constraint-set counts
     table2       estimated vs calculated bound, path-analysis pessimism
     table3       estimated vs measured bound, total pessimism
     stats        the Section VI solver observations (LP calls, first-LP
                  integrality)
     bechamel     micro-benchmarks (one Bechamel test per table)

   Run with no argument to produce everything in order. *)

module P = Ipet_isa.Prog
module V = Ipet_isa.Value
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module Analysis = Ipet.Analysis
module Structural = Ipet.Structural
module Report = Ipet.Report
module E = Ipet_suite.Experiments
module Bspec = Ipet_suite.Bspec
module Obs = Ipet_obs.Obs
module Pool = Ipet_par.Pool
module Rat = Ipet_num.Rat
module Lp = Ipet_lp.Lp_problem
module Linexpr = Ipet_lp.Linexpr
module Sparse = Ipet_lp.Sparse
module Revised = Ipet_lp.Revised

let domains_available () = Ipet_par.Par_compat.recommended_domain_count ()

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- figures ------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1: estimated bound encloses the actual bound (check_data)";
  let r = E.run (Ipet_suite.Suite.find "check_data") in
  let bar name { E.lo; hi } =
    Printf.printf "  %-12s [%6d, %6d]\n" name lo hi
  in
  bar "estimated" r.E.estimated;
  bar "calculated" r.E.calculated;
  bar "measured" r.E.measured;
  Printf.printf
    "  estimated.lo <= calculated.lo <= measured.lo <= measured.hi <= \
     calculated.hi <= estimated.hi : %b\n"
    (r.E.estimated.E.lo <= r.E.calculated.E.lo
     && r.E.calculated.E.lo <= r.E.measured.E.lo
     && r.E.measured.E.lo <= r.E.measured.E.hi
     && r.E.measured.E.hi <= r.E.calculated.E.hi
     && r.E.calculated.E.hi <= r.E.estimated.E.hi)

let show_structure title src root =
  header title;
  let compiled = Frontend.compile_string_exn src in
  let prog = compiled.Compile.prog in
  print_string (Report.annotated_source ~source:src prog ~func:root);
  let insts = Structural.instances prog ~root in
  let constraints = Structural.constraints prog insts in
  print_string (Report.constraints_listing constraints)

let fig2 () =
  show_structure
    "Figure 2: if-then-else structural constraints (paper eqs. 2-5)"
    "int f(int p) {\n\
    \  int q;\n\
    \  if (p)\n\
    \    q = 1;\n\
    \  else\n\
    \    q = 2;\n\
    \  return q;\n\
     }\n"
    "f"

let fig3 () =
  show_structure
    "Figure 3: while-loop structural constraints (paper eqs. 6-9)"
    "int f(int p) {\n\
    \  int q;\n\
    \  q = p;\n\
    \  while (q < 10)\n\
    \    q = q + 1;\n\
    \  return q;\n\
     }\n"
    "f"

let fig4 () =
  show_structure
    "Figure 4: function-call f-edge constraints (paper eqs. 10-13)"
    "int acc;\n\
     void store(int i) {\n\
    \  acc = acc + i;\n\
     }\n\
     void main_task() {\n\
    \  int i;\n\
    \  int n;\n\
    \  i = 10;\n\
    \  store(i);\n\
    \  n = 2 * i;\n\
    \  store(n);\n\
     }\n"
    "main_task"

let fig5 () =
  header "Figure 5: annotated check_data listing (cinderella output)";
  let bench = Ipet_suite.Suite.find "check_data" in
  let compiled = Bspec.compile bench in
  print_string
    (Report.annotated_source ~source:bench.Bspec.source compiled.Compile.prog
       ~func:"check_data")

let fig6_src = {|int data[10];
int cleared;
int check_data() {
  int i; int morecheck; int wrongone;
  morecheck = 1;
  i = 0;
  wrongone = 0 - 1;
  while (morecheck) {
    if (data[i] < 0) {
      wrongone = i;
      morecheck = 0;
    } else {
      i = i + 1;
      if (i >= 10)
        morecheck = 0;
    }
  }
  if (wrongone >= 0)
    return 0;
  else
    return 1;
}
void clear_data() {
  int i;
  for (i = 0; i < 10; i = i + 1)
    data[i] = 0;
  cleared = 1;
}
void task() {
  int status;
  status = check_data();
  if (!status)
    clear_data();
}
|}

let fig6 () =
  header "Figure 6: caller/callee functionality constraint (x12 = x8.f1)";
  let src = fig6_src in
  let compiled = Frontend.compile_string_exn src in
  let prog = compiled.Compile.prog in
  let loop_bounds =
    [ Ipet.Annotation.loop ~func:"check_data"
        ~line:(Bspec.line_containing ~source:src "while (morecheck)") ~lo:1 ~hi:10;
      Ipet.Annotation.loop ~func:"clear_data"
        ~line:(Bspec.line_containing ~source:src "for (i = 0; i < 10") ~lo:10 ~hi:10 ]
  in
  let task_f = P.find_func prog "task" in
  let call_site =
    let found = ref None in
    Array.iter
      (fun (b : P.block) ->
        List.iteri
          (fun occ callee ->
            if callee = "check_data" then
              found := Some (Ipet.Callsite.make ~occurrence:occ b.P.id))
          (P.calls_of_block b))
      task_f.P.blocks;
    Option.get !found
  in
  let open Ipet.Functional in
  let x_return0 =
    x_at_in ~path:[ call_site ] ~func:"check_data"
      ~line:(Bspec.line_containing ~source:src "return 0;")
  in
  let scoped = x ~func:"clear_data" 0 =. x_return0 in
  Format.printf "constraint (18): %a@." Ipet.Functional.pp scoped;
  (* the paper's constraints (16) and (17) inside check_data, so that the
     caller/callee link is the only difference between the two solves *)
  let found =
    x_at ~func:"check_data"
      ~line:(Bspec.line_containing ~source:src "wrongone = i;")
  in
  let stop =
    x_at ~func:"check_data"
      ~line:(Bspec.line_containing ~source:src "        morecheck = 0;")
  in
  let intra =
    [ (found =. const 0 &&. (stop =. const 1))
      ||. (found =. const 1 &&. (stop =. const 0));
      found =. x_return0 ]
  in
  let solve functional =
    Analysis.analyze (Analysis.spec prog ~root:"task" ~loop_bounds ~functional)
  in
  let plain = solve intra in
  let linked = solve (scoped :: intra) in
  Printf.printf "estimated bound without it: [%d, %d]\n"
    plain.Analysis.bcet.Analysis.cycles plain.Analysis.wcet.Analysis.cycles;
  Printf.printf "estimated bound with it:    [%d, %d]\n"
    linked.Analysis.bcet.Analysis.cycles linked.Analysis.wcet.Analysis.cycles

(* --- tables ------------------------------------------------------------- *)

let rows = ref None
let table_mach = ref Ipet_machine.Machine.e32

let all_rows () =
  match !rows with
  | Some r -> r
  | None ->
    let r = E.run_all ~mach:!table_mach () in
    rows := Some r;
    r

let table1 () =
  header "Table I: set of benchmark examples";
  Printf.printf "  %-17s %-42s %6s %10s\n" "Function" "Description" "Lines" "Sets";
  List.iter2
    (fun (row : E.row) (bench : Bspec.t) ->
      let sets =
        if row.E.sets_pruned > 0 then
          Printf.sprintf "%d (of %d)" (row.E.sets_total - row.E.sets_pruned)
            row.E.sets_total
        else string_of_int row.E.sets_total
      in
      Printf.printf "  %-17s %-42s %6d %10s\n" row.E.bench bench.Bspec.description
        row.E.lines sets)
    (all_rows ()) Ipet_suite.Suite.all

let pp_interval { E.lo; hi } = Printf.sprintf "[%d, %d]" lo hi

let table2 () =
  header "Table II: pessimism in path analysis (estimated vs calculated)";
  print_string (E.render_table2 (all_rows ()))

let table3 () =
  header "Table III: estimated vs measured bound (cycle-accurate simulation)";
  print_string (E.render_table3 (all_rows ()))

let stats () =
  header "Section VI: ILP solver statistics";
  Printf.printf "  %-17s %9s %13s\n" "Function" "LP calls" "1st integral";
  List.iter
    (fun (row : E.row) ->
      Printf.printf "  %-17s %9d %13b\n" row.E.bench row.E.lp_calls
        row.E.all_first_lp_integral)
    (all_rows ());
  let all_integral =
    List.for_all (fun (r : E.row) -> r.E.all_first_lp_integral) (all_rows ())
  in
  Printf.printf
    "\n  Paper, Section VI: \"the branch-and-bound ILP solver finds that the\n\
    \  solution of the very first linear program call it makes is integer\n\
    \  valued\"; reproduced here: %b\n" all_integral

(* --- ablations ----------------------------------------------------------- *)

let ablation_cache () =
  header "Ablation: i-cache capacity vs Table III upper pessimism";
  let names = [ "check_data"; "piksrt"; "jpeg_fdct_islow"; "matgen" ] in
  Printf.printf "  %-17s" "cache bytes";
  List.iter (fun n -> Printf.printf " %16s" n) names;
  print_newline ();
  List.iter
    (fun size ->
      let cache =
        { Ipet_machine.Icache.i960kb with Ipet_machine.Icache.size_bytes = size }
      in
      Printf.printf "  %-17d" size;
      List.iter
        (fun name ->
          let row = E.run ~cache (Ipet_suite.Suite.find name) in
          let _, phi = E.pessimism ~estimated:row.E.estimated ~reference:row.E.measured in
          Printf.printf " %16.2f" phi)
        names;
      print_newline ())
    [ 32; 64; 128; 512; 2048 ];
  print_endline
    "
  A larger cache speeds the measured run but the all-miss WCET model
    \  never benefits, so the upper pessimism grows with capacity - the
    \  motivation for the cache modelling future work of Section VII."

let ablation_refine () =
  header "Ablation: Section IV first-miss refinement across the suite";
  Printf.printf "  %-17s %12s %12s %12s
" "Function" "baseline" "refined"
    "measured";
  List.iter
    (fun (bench : Bspec.t) ->
      let compiled = Bspec.compile bench in
      let prog = compiled.Compile.prog in
      let wcet refined =
        let spec =
          Analysis.spec prog ~root:bench.Bspec.root
            ~loop_bounds:bench.Bspec.loop_bounds ~functional:bench.Bspec.functional
            ~first_miss_refinement:refined
        in
        (Analysis.analyze spec).Analysis.wcet.Analysis.cycles
      in
      let measured =
        List.fold_left
          (fun acc (d : Bspec.dataset) ->
            let m = Interp.create prog ~init:compiled.Compile.init_data in
            d.Bspec.setup m;
            Interp.flush_cache m;
            ignore (Interp.call m bench.Bspec.root d.Bspec.args);
            max acc (Interp.cycles m))
          0 bench.Bspec.worst_data
      in
      Printf.printf "  %-17s %12d %12d %12d
" bench.Bspec.name (wcet false)
        (wcet true) measured)
    Ipet_suite.Suite.all;
  print_endline
    "
  The refinement is sound (refined >= measured) and tightens every
    \  benchmark whose hot loops are cache-resident and call-free."

let table_extra () =
  header "Extended suite (Malardalen-style): estimated vs measured";
  Printf.printf "  %-12s %-24s %-24s %s\n" "Function" "Estimated Bound"
    "Measured Bound" "Pessimism";
  List.iter
    (fun (bench : Bspec.t) ->
      let row = E.run bench in
      let plo, phi =
        E.pessimism ~estimated:row.E.estimated ~reference:row.E.measured
      in
      Printf.printf "  %-12s %-24s %-24s [%.2f, %.2f]\n" row.E.bench
        (pp_interval row.E.estimated) (pp_interval row.E.measured) plo phi)
    Ipet_suite.Suite.extended

let ablation_dcache () =
  header "Ablation: adding a data cache to the micro-architecture model";
  let dcache =
    { Ipet_machine.Icache.size_bytes = 256; line_bytes = 16; miss_penalty = 6 }
  in
  Printf.printf "  %-17s %-24s %-24s\n" "Function" "flat memory" "with 256B dcache";
  List.iter
    (fun name ->
      let bench = Ipet_suite.Suite.find name in
      let flat = E.run bench in
      let cached = E.run ~dcache bench in
      Printf.printf "  %-17s %-24s %-24s\n" name
        (pp_interval flat.E.estimated) (pp_interval cached.E.estimated))
    [ "check_data"; "piksrt"; "matgen"; "recon" ];
  print_endline
    "\n  The flat model charges every load a fixed latency; the cached model\n\
    \  widens the interval (best case hits, worst case misses) - the data\n\
    \  side of the cache-modelling future work of Section VII."

let ablation_compile () =
  header "Ablation: optimizer and register pressure vs WCET";
  Printf.printf "  %-17s %-10s %12s %12s %9s
" "Function" "variant" "WCET"
    "measured" "instrs";
  let variants =
    [ ("-O0", false, None); ("-O1", true, None); ("-O1 r16", true, Some 16);
      ("-O1 r8", true, Some 8) ]
  in
  List.iter
    (fun name ->
      let bench = Ipet_suite.Suite.find name in
      List.iter
        (fun (label, optimize, registers) ->
          let compiled =
            Frontend.compile_string_exn ~optimize ?registers bench.Bspec.source
          in
          let prog = compiled.Compile.prog in
          let spec =
            Analysis.spec prog ~root:bench.Bspec.root
              ~loop_bounds:bench.Bspec.loop_bounds
              ~functional:bench.Bspec.functional
          in
          let wcet = (Analysis.analyze spec).Analysis.wcet.Analysis.cycles in
          let measured, instrs =
            List.fold_left
              (fun (acc, ins) (d : Bspec.dataset) ->
                let m = Interp.create prog ~init:compiled.Compile.init_data in
                d.Bspec.setup m;
                Interp.flush_cache m;
                ignore (Interp.call m bench.Bspec.root d.Bspec.args);
                (max acc (Interp.cycles m), max ins (Interp.instructions m)))
              (0, 0) bench.Bspec.worst_data
          in
          Printf.printf "  %-17s %-10s %12d %12d %9d
" name label wcet measured
            instrs)
        variants)
    [ "matgen"; "recon"; "jpeg_fdct_islow" ];
  print_endline
    "
  The analysis consumes whatever code the compiler produced: the
    \  optimizer shrinks both the WCET and the measured time, while an
    \  8-register file adds spill traffic that both numbers track."

(* --- machine-readable perf snapshot ------------------------------------- *)

(* Writes BENCH_ipet.json: per-benchmark wall time of the full analysis with
   and without presolve, LP calls, and the presolve variable/constraint
   reductions (WCET and BCET stats summed) — a perf trajectory future
   changes can be compared against. Per-benchmark analyses use the default
   pool (--jobs), and a suite-level probe records the parallel speedup:
   wall time of analyzing the whole suite sharded across the pool vs
   sequentially. *)
let json () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Obs.enable ();
  let entries =
    List.map
      (fun (bench : Bspec.t) ->
        let spec = Bspec.spec bench in
        let run presolve =
          Obs.reset ();
          time (fun () ->
            Analysis.analyze { spec with Analysis.presolve })
        in
        let with_pre, t_pre = run true in
        (* phase wall times of the presolve run, from the span engine *)
        let phase name =
          match List.assoc_opt name (Obs.span_totals ()) with
          | Some (_count, us) -> float_of_int us /. 1e6
          | None -> 0.0
        in
        let t_prepare = phase "analysis.prepare" in
        let t_wcet = phase "analysis.wcet" in
        let t_bcet = phase "analysis.bcet" in
        let _, t_plain = run false in
        let sum f =
          f with_pre.Analysis.wcet_stats + f with_pre.Analysis.bcet_stats
        in
        let vars_before = sum (fun s -> s.Analysis.presolve_vars_before) in
        let vars_after = sum (fun s -> s.Analysis.presolve_vars_after) in
        let reduction =
          if vars_before = 0 then 0.0
          else float_of_int (vars_before - vars_after) /. float_of_int vars_before
        in
        ( bench.Bspec.name,
          Printf.sprintf
            "    { \"name\": %S, \"wall_s_presolve\": %.4f, \
             \"wall_s_no_presolve\": %.4f, \"phase_prepare_s\": %.4f, \
             \"phase_wcet_s\": %.4f, \"phase_bcet_s\": %.4f, \
             \"lp_calls\": %d, \
             \"vars_before\": %d, \"vars_after\": %d, \
             \"constrs_before\": %d, \"constrs_after\": %d, \
             \"var_reduction\": %.3f }"
            bench.Bspec.name t_pre t_plain t_prepare t_wcet t_bcet
            (sum (fun s -> s.Analysis.lp_calls))
            vars_before vars_after
            (sum (fun s -> s.Analysis.presolve_constrs_before))
            (sum (fun s -> s.Analysis.presolve_constrs_after))
            reduction,
          reduction, t_pre, t_plain ))
      Ipet_suite.Suite.all
  in
  Obs.disable ();
  Obs.reset ();
  (* suite-level parallel speedup probe: analyze every benchmark, sharded
     across the pool, vs strictly sequentially *)
  let suite_analyze pool =
    ignore
      (Pool.map_list pool
         (fun b -> ignore (Analysis.analyze ~pool (Bspec.spec b)))
         Ipet_suite.Suite.all)
  in
  let jobs = Pool.jobs (Pool.default ()) in
  let (), wall_seq =
    let seq = Pool.create ~jobs:1 in
    time (fun () -> suite_analyze seq)
  in
  let (), wall_par =
    if jobs <= 1 then ((), wall_seq)
    else time (fun () -> suite_analyze (Pool.default ()))
  in
  let reductions =
    List.sort compare (List.map (fun (_, _, r, _, _) -> r) entries)
  in
  let median = List.nth reductions (List.length reductions / 2) in
  let total f = List.fold_left (fun acc e -> acc +. f e) 0.0 entries in
  let out =
    Printf.sprintf
      "{\n  \"suite\": \"ipet\",\n  \"benchmarks\": [\n%s\n  ],\n  \
       \"median_var_reduction\": %.3f,\n  \"total_wall_s_presolve\": %.4f,\n  \
       \"total_wall_s_no_presolve\": %.4f,\n  \"jobs\": %d,\n  \
       \"domains_available\": %d,\n  \
       \"suite_wall_s_jobs1\": %.4f,\n  \"suite_wall_s_jobsN\": %.4f,\n  \
       \"suite_speedup\": %.2f\n}\n"
      (String.concat ",\n" (List.map (fun (_, j, _, _, _) -> j) entries))
      median
      (total (fun (_, _, _, t, _) -> t))
      (total (fun (_, _, _, _, t) -> t))
      jobs (domains_available ()) wall_seq wall_par
      (if wall_par > 0.0 then wall_seq /. wall_par else 1.0)
  in
  let oc = open_out "BENCH_ipet.json" in
  output_string oc out;
  close_out oc;
  Printf.printf "wrote BENCH_ipet.json (%d benchmarks, median variable \
                 reduction %.0f%%)\n"
    (List.length entries) (100.0 *. median)

(* Writes BENCH_sim.json: the cycle-level simulator throughput probe —
   repeated worst-case runs of the three largest benchmarks, reporting wall
   time, simulated instruction count and Minstr/s per benchmark.  The
   numbers trace the simulator's perf trajectory the same way
   BENCH_ipet.json traces the ILP side's. *)
let sim_bench () =
  let repeats = 50 in
  let probe name =
    let bench = Ipet_suite.Suite.find name in
    let compiled = Bspec.compile bench in
    let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
    let d = List.hd bench.Bspec.worst_data in
    (* one warmup run keeps decode/GC noise out of the measurement *)
    d.Bspec.setup m;
    Interp.flush_cache m;
    ignore (Interp.call m bench.Bspec.root d.Bspec.args);
    let t0 = Unix.gettimeofday () in
    let instrs = ref 0 in
    for _ = 1 to repeats do
      Interp.reset_stats m;
      Interp.reset_memory m ~init:compiled.Compile.init_data;
      d.Bspec.setup m;
      Interp.flush_cache m;
      ignore (Interp.call m bench.Bspec.root d.Bspec.args);
      instrs := !instrs + Interp.instructions m
    done;
    let wall = Unix.gettimeofday () -. t0 in
    (name, !instrs, wall, float_of_int !instrs /. wall /. 1e6)
  in
  let probes = List.map probe [ "fullsearch"; "whetstone"; "des" ] in
  let total_instrs = List.fold_left (fun a (_, i, _, _) -> a + i) 0 probes in
  let total_wall = List.fold_left (fun a (_, _, w, _) -> a +. w) 0.0 probes in
  let out =
    Printf.sprintf
      "{\n  \"suite\": \"ipet-sim\",\n  \"repeats\": %d,\n  \
       \"benchmarks\": [\n%s\n  ],\n  \"total_instructions\": %d,\n  \
       \"total_wall_s\": %.4f,\n  \"minstr_per_s\": %.2f\n}\n"
      repeats
      (String.concat ",\n"
         (List.map
            (fun (name, instrs, wall, rate) ->
              Printf.sprintf
                "    { \"name\": %S, \"instructions\": %d, \
                 \"wall_s\": %.4f, \"minstr_per_s\": %.2f }"
                name instrs wall rate)
            probes))
      total_instrs total_wall
      (float_of_int total_instrs /. total_wall /. 1e6)
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc out;
  close_out oc;
  Printf.printf
    "wrote BENCH_sim.json (%d instructions in %.2fs, %.2f Minstr/s)\n"
    total_instrs total_wall
    (float_of_int total_instrs /. total_wall /. 1e6)

(* Regression guard for the simulator's instrumentation-disabled hot path:
   re-measure throughput with a few repeats and compare against the
   committed BENCH_sim.json baseline. CI machines differ wildly from the
   one that wrote the baseline, so the default floor is a generous ratio
   (override with SIM_CHECK_RATIO); the point is to catch the simulator
   accidentally paying for profiling it was not asked for. *)
let sim_check () =
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    content
  in
  let baseline =
    let content =
      try read_file "BENCH_sim.json"
      with Sys_error _ ->
        prerr_endline "sim-check: BENCH_sim.json not found (run 'sim' first)";
        exit 1
    in
    (* the total rate is the last "minstr_per_s" in the document *)
    let key = "\"minstr_per_s\":" in
    let rec last_occurrence from acc =
      match
        if from > String.length content - String.length key then None
        else if String.sub content from (String.length key) = key then
          Some from
        else None
      with
      | Some at -> last_occurrence (at + 1) (Some at)
      | None ->
        if from >= String.length content - String.length key then acc
        else last_occurrence (from + 1) acc
    in
    match last_occurrence 0 None with
    | None ->
      prerr_endline "sim-check: no minstr_per_s in BENCH_sim.json";
      exit 1
    | Some at ->
      let start = at + String.length key in
      let stop = ref start in
      while
        !stop < String.length content
        && (match content.[!stop] with
            | '0' .. '9' | '.' | ' ' | '-' -> true
            | _ -> false)
      do incr stop done;
      float_of_string (String.trim (String.sub content start (!stop - start)))
  in
  let ratio_floor =
    match Sys.getenv_opt "SIM_CHECK_RATIO" with
    | Some s -> float_of_string s
    | None -> 0.5
  in
  let repeats = 10 in
  let measure name =
    let bench = Ipet_suite.Suite.find name in
    let compiled = Bspec.compile bench in
    let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
    let d = List.hd bench.Bspec.worst_data in
    d.Bspec.setup m;
    Interp.flush_cache m;
    ignore (Interp.call m bench.Bspec.root d.Bspec.args);
    let t0 = Unix.gettimeofday () in
    let instrs = ref 0 in
    for _ = 1 to repeats do
      Interp.reset_stats m;
      Interp.reset_memory m ~init:compiled.Compile.init_data;
      d.Bspec.setup m;
      Interp.flush_cache m;
      ignore (Interp.call m bench.Bspec.root d.Bspec.args);
      instrs := !instrs + Interp.instructions m
    done;
    (!instrs, Unix.gettimeofday () -. t0)
  in
  let instrs, wall =
    List.fold_left
      (fun (ai, aw) name ->
        let i, w = measure name in
        (ai + i, aw +. w))
      (0, 0.0)
      [ "fullsearch"; "whetstone"; "des" ]
  in
  let rate = float_of_int instrs /. wall /. 1e6 in
  Printf.printf
    "sim-check: %.2f Minstr/s measured, %.2f baseline (floor ratio %.2f)\n"
    rate baseline ratio_floor;
  if rate < ratio_floor *. baseline then begin
    if domains_available () <= 1 then
      (* baselines are written on multi-core machines; a single-core CI
         container measuring below the floor tells us nothing about the
         simulator, so report the numbers but do not fail *)
      print_endline "sim-check: below floor, skipped (single core available)"
    else begin
      Printf.printf
        "sim-check: FAIL — throughput fell below %.0f%% of the baseline\n"
        (100.0 *. ratio_floor);
      exit 1
    end
  end
  else print_endline "sim-check: ok"

(* Writes each paper benchmark as a standalone NAME.mc + NAME.ann pair so
   the cinderella CLI can be driven over the whole suite from the shell
   (loop bounds only: the functional-constraint DSL values have no textual
   serialization, and boundedness needs only the loop bounds). *)
let render_ann (bench : Bspec.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "root %s\n" bench.Bspec.root);
  List.iter
    (fun (a : Ipet.Annotation.t) ->
      match a.Ipet.Annotation.header with
      | `Line l ->
        Buffer.add_string buf
          (Printf.sprintf "loop %s %d %d %d\n" a.Ipet.Annotation.func l
             a.Ipet.Annotation.lo a.Ipet.Annotation.hi)
      | `Block b ->
        Buffer.add_string buf
          (Printf.sprintf
             "# block-addressed bound skipped: %s B%d [%d,%d]\n"
             a.Ipet.Annotation.func b a.Ipet.Annotation.lo
             a.Ipet.Annotation.hi))
    bench.Bspec.loop_bounds;
  let nfun = List.length bench.Bspec.functional in
  if nfun > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "# %d functionality constraint(s) omitted (no textual form)\n"
         nfun);
  Buffer.contents buf

let export dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* render in parallel (pure), write sequentially in suite order *)
  let rendered =
    Pool.map_list (Pool.default ())
      (fun (bench : Bspec.t) ->
        (bench.Bspec.name, bench.Bspec.source, render_ann bench))
      Ipet_suite.Suite.all
  in
  List.iter
    (fun (name, source, ann) ->
      let write path content =
        let oc = open_out path in
        output_string oc content;
        close_out oc
      in
      write (Filename.concat dir (name ^ ".mc")) source;
      write (Filename.concat dir (name ^ ".ann")) ann)
    rendered;
  Printf.printf "exported %d benchmarks to %s\n"
    (List.length Ipet_suite.Suite.all) dir

(* --- serve load generator ------------------------------------------------ *)

module J = Ipet_serve.Json

(* One analyze request line per paper benchmark (loop bounds only, like
   [export]: the functional-constraint DSL has no textual serialization).
   [tag] becomes the request's trace id prefix, so the daemon-side trace
   shows every pass/benchmark pair as its own track. *)
let serve_requests ~tag ~use_cache =
  List.map
    (fun (bench : Bspec.t) ->
      ( bench.Bspec.name,
        J.to_string
          (J.Obj
             [ ("v", J.Int Ipet_serve.Protocol.version);
               ("op", J.Str "analyze");
               ("id", J.Str bench.Bspec.name);
               ("trace", J.Str (tag ^ ":" ^ bench.Bspec.name));
               ("source", J.Str bench.Bspec.source);
               ("annotations", J.Str (render_ann bench));
               ("options", J.Obj [ ("use_cache", J.Bool use_cache) ]) ]) ))
    Ipet_suite.Suite.all

(* client-side latency quantiles go through the same histogram the daemon
   uses — one estimator, no ad-hoc sorting to disagree with it *)
module M = Ipet_obs.Metrics

let latency_quantiles latencies =
  let reg = M.create () in
  let h = M.histogram reg "latency_ms" in
  List.iter (fun ms -> M.observe h ms) latencies;
  (M.quantile h 0.50, M.quantile h 0.99)

(* One client process: drive the whole request list sequentially over a
   single connection, appending "name ms" latency lines to [out]. *)
let serve_client ~socket ~out requests =
  let t = Ipet_serve.Client.connect socket in
  let oc = open_out out in
  List.iter
    (fun (name, line) ->
      let t0 = Unix.gettimeofday () in
      match Ipet_serve.Client.request t line with
      | Some response ->
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let ok =
          match J.parse response with
          | Ok j -> (match J.member "ok" j with
                     | Some (J.Bool true) -> true
                     | _ -> false)
          | Error _ -> false
        in
        if not ok then begin
          Printf.eprintf "serve bench: %s failed: %s\n%!" name response;
          exit 1
        end;
        Printf.fprintf oc "%s %.3f\n" name ms
      | None ->
        Printf.eprintf "serve bench: server hung up on %s\n%!" name;
        exit 1)
    requests;
  close_out oc;
  Ipet_serve.Client.close t

(* Run one pass: [clients] forked client processes, each sending the full
   suite concurrently. Returns (wall seconds, latencies in ms). *)
let serve_pass ~socket ~dir ~clients ~pass requests =
  let t0 = Unix.gettimeofday () in
  let pids =
    List.init clients (fun i ->
        let out = Filename.concat dir (Printf.sprintf "%s_%d.lat" pass i) in
        match Unix.fork () with
        | 0 ->
          (try serve_client ~socket ~out requests
           with e ->
             Printf.eprintf "serve bench client: %s\n%!" (Printexc.to_string e);
             Unix._exit 1);
          Unix._exit 0
        | pid -> (pid, out))
  in
  List.iter
    (fun (pid, _) ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ ->
        prerr_endline "serve bench: a client failed";
        exit 1)
    pids;
  let wall = Unix.gettimeofday () -. t0 in
  let latencies =
    List.concat_map
      (fun (_, out) ->
        let ic = open_in out in
        let rec lines acc =
          match input_line ic with
          | line ->
            (match String.split_on_char ' ' line with
             | [ _; ms ] -> lines (float_of_string ms :: acc)
             | _ -> lines acc)
          | exception End_of_file -> acc
        in
        let l = lines [] in
        close_in ic;
        l)
      pids
  in
  (wall, latencies)

let pass_json name wall latencies =
  let n = List.length latencies in
  let rps = float_of_int n /. wall in
  let p50, p99 = latency_quantiles latencies in
  Printf.printf
    "%s: %d analyses in %.2fs (%.1f/s), p50 %.1fms, p99 %.1fms\n" name n wall
    rps p50 p99;
  Printf.sprintf
    "  \"%s\": { \"analyses\": %d, \"wall_s\": %.4f, \"per_s\": %.2f, \
     \"p50_ms\": %.3f, \"p99_ms\": %.3f }"
    name n wall rps p50 p99

(* Load-test the daemon: fork it (before any domain is spawned in this
   process — OCaml 5 domains and fork do not mix), run a cold pass with an
   empty cache and a warm pass over the identical requests, and report the
   cold-vs-warm throughput ratio. With [check], enforce a floor on that
   ratio (override with SERVE_CHECK_RATIO) — the regression this guards is
   the cache silently losing its hits. *)
let bench_serve ~jobs ~check =
  let clients =
    match Sys.getenv_opt "SERVE_CLIENTS" with
    | Some s -> max 1 (int_of_string s)
    | None -> 4
  in
  let dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "cinderella-serve-bench-%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d
  in
  let socket = Filename.concat dir "serve.sock" in
  match Unix.fork () with
  | 0 ->
    (* daemon child: safe to spawn domains now *)
    Pool.set_default ~jobs;
    Ipet_obs.Obs.enable ();
    (try
       Ipet_serve.Server.run
         { Ipet_serve.Server.socket_path = socket;
           pool = Some (Pool.default ());
           cache =
             Some
               (Ipet_serve.Cache.create ~dir:(Filename.concat dir "cache")
                  ~cap_bytes:(64 * 1024 * 1024));
           default_timeout_ms = None;
           max_request_bytes = 16 * 1024 * 1024;
           access_log = None;
           access_log_cap = 8 * 1024 * 1024;
           flight_cap = 512;
           flight_dump = None };
       (* per-request tracks, one row per pass:benchmark trace id *)
       let oc = open_out "BENCH_serve_trace.json" in
       output_string oc
         (Ipet_obs.Obs.Trace_event.to_string
            ~track_names:(Ipet_obs.Obs.track_names ())
            (Ipet_obs.Obs.spans ()));
       close_out oc
     with e ->
       Printf.eprintf "serve bench daemon: %s\n%!" (Printexc.to_string e);
       Unix._exit 1);
    Unix._exit 0
  | daemon ->
    let rec await tries =
      if Sys.file_exists socket then ()
      else if tries = 0 then begin
        prerr_endline "serve bench: daemon socket never appeared";
        exit 1
      end
      else begin
        ignore (Unix.select [] [] [] 0.1);
        await (tries - 1)
      end
    in
    await 100;
    (* cold: every request solves from scratch (cache bypassed — with N
       clients sending the same suite, later duplicates would otherwise
       ride on earlier clients' cache fills and understate the cold cost);
       fill (untimed): one sequential pass populates the cache;
       warm: every request is a cache hit *)
    let cold_wall, cold_lat =
      serve_pass ~socket ~dir ~clients ~pass:"cold"
        (serve_requests ~tag:"cold" ~use_cache:false)
    in
    let _, fill_lat =
      serve_pass ~socket ~dir ~clients:1 ~pass:"fill"
        (serve_requests ~tag:"fill" ~use_cache:true)
    in
    let warm_wall, warm_lat =
      serve_pass ~socket ~dir ~clients ~pass:"warm"
        (serve_requests ~tag:"warm" ~use_cache:true)
    in
    (* cross-check: the daemon's own latency histogram must agree with
       what the clients measured. The daemon times only the handler, the
       clients also see queueing behind the single-threaded loop, so
       daemon p99 <= client p99 modulo bucket width and wire overhead. *)
    let daemon_p99_ms =
      match
        Ipet_serve.Client.one_shot ~socket
          (J.to_string
             (J.Obj
                [ ("v", J.Int Ipet_serve.Protocol.version);
                  ("op", J.Str "metrics") ]))
      with
      | None | exception Unix.Unix_error _ -> None
      | Some response ->
        (match J.parse response with
         | Error _ -> None
         | Ok j ->
           Option.bind
             (Option.bind
                (Option.bind (J.member "metrics" j) (J.member "metrics"))
                J.to_list)
             (fun items ->
               List.find_map
                 (fun m ->
                   match
                     ( Option.bind (J.member "name" m) J.to_str,
                       Option.bind
                         (Option.bind (J.member "labels" m) (J.member "op"))
                         J.to_str )
                   with
                   | Some "serve.latency_seconds", Some "analyze" ->
                     (match J.member "p99" m with
                      | Some (J.Float s) -> Some (s *. 1000.0)
                      | Some (J.Int s) -> Some (float_of_int s *. 1000.0)
                      | _ -> None)
                   | _ -> None)
                 items))
    in
    ignore
      (Ipet_serve.Client.one_shot ~socket
         (J.to_string
            (J.Obj
               [ ("v", J.Int Ipet_serve.Protocol.version);
                 ("op", J.Str "shutdown") ])));
    ignore (Unix.waitpid [] daemon);
    let _, client_p99_ms =
      latency_quantiles (cold_lat @ fill_lat @ warm_lat)
    in
    (match daemon_p99_ms with
     | None ->
       prerr_endline "serve bench: daemon metrics op returned no analyze p99";
       exit 1
     | Some d_p99 ->
       Printf.printf "analyze p99: daemon-side %.1fms, client-side %.1fms\n"
         d_p99 client_p99_ms;
       if not (d_p99 > 0.0 && d_p99 <= (client_p99_ms *. 1.5) +. 5.0) then begin
         Printf.printf
           "serve bench: FAIL — daemon-side p99 %.1fms inconsistent with \
            client-side %.1fms\n"
           d_p99 client_p99_ms;
         exit 1
       end);
    let speedup = cold_wall /. warm_wall in
    let cold_json = pass_json "cold" cold_wall cold_lat in
    let warm_json = pass_json "warm" warm_wall warm_lat in
    Printf.printf "warm-cache speedup: %.1fx\n" speedup;
    let oc = open_out "BENCH_serve.json" in
    Printf.fprintf oc
      "{\n  \"clients\": %d,\n  \"benchmarks\": %d,\n%s,\n%s,\n  \
       \"warm_speedup\": %.2f\n}\n"
      clients
      (List.length Ipet_suite.Suite.all)
      cold_json warm_json speedup;
    close_out oc;
    print_endline "wrote BENCH_serve.json";
    if check then begin
      let floor =
        match Sys.getenv_opt "SERVE_CHECK_RATIO" with
        | Some s -> float_of_string s
        | None -> 3.0
      in
      if speedup < floor then begin
        if domains_available () <= 1 then
          (* on a single-core box the cold pass is serialized too, which
             compresses the ratio; the numbers are still written to
             BENCH_serve.json, only the assertion is waived *)
          Printf.printf
            "serve-check: %.1fx below the %.1fx floor, skipped (single \
             core available)\n"
            speedup floor
        else begin
          Printf.printf
            "serve-check: FAIL — warm-cache speedup %.1fx below the %.1fx \
             floor\n"
            speedup floor;
          exit 1
        end
      end
      else Printf.printf "serve-check: ok (floor %.1fx)\n" floor
    end

(* --- LP scaling benchmark ------------------------------------------------ *)

(* Fuzz-generated programs at multiples of the fuzzing default size
   ([Gen.case_sized]), analyzed with presolve disabled so the raw LP
   dimensions reach the solver. Per tier, every WCET ILP relaxation is
   solved by the historical dense tableau ({!Ipet_lp.Dense}) and by the
   sparse revised simplex ({!Ipet_lp.Simplex}), checking the optima
   agree; the branch-and-bound warm-start path is probed by re-solving
   child problems — the parent with one structural variable's upper
   bound tightened below its optimal value — both cold from scratch and
   warm from the parent basis via the dual simplex. Results are written
   to BENCH_lp.json; [lp-check] enforces an LP_CHECK_RATIO floor
   (default 5x) on the revised-vs-dense ratio of the largest
   dense-measured tier. *)

let lp_seed = 7

(* (name, stmt budget, dense measured?): budgets sized so the largest
   dense-measured tier stays within tens of seconds of dense tableau
   time while the top revised-only tier reaches ~100x the fuzzing
   default's pre-presolve variable count. Budget 1200 is avoided: that
   seed draws a pathological instance whose Bland pivot sequence is an
   order of magnitude longer than either neighbouring budget's. *)
let lp_tiers =
  [ ("base", 12, true); ("5x", 200, true); ("30x", 1300, false);
    ("100x", 4500, false) ]

let lp_time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let lp_spec_of_case (c : Ipet_fuzz.Gen.case) =
  let source = Ipet_fuzz.Render.program c.Ipet_fuzz.Gen.prog in
  let ast, _env = Frontend.parse_and_check source in
  let bounds = Ipet.Autobound.infer ast in
  let compiled =
    match Frontend.compile_string ~optimize:false source with
    | Ok compiled -> compiled
    | Error { Frontend.message; line } ->
      Printf.eprintf "bench lp: generated program rejected (line %d): %s\n"
        line message;
      exit 1
  in
  Analysis.spec ~cache:c.Ipet_fuzz.Gen.cache ~loop_bounds:bounds
    ~presolve:false ~root:"main" compiled.Compile.prog

(* Build the same sparse instance and direction-normalized cost vector
   the production solver uses, exposing the snapshot for warm starts. *)
let lp_instance problem =
  let vars = Lp.variables problem in
  let inst = Sparse.build ~vars problem in
  let obj =
    match problem.Lp.direction with
    | Lp.Maximize -> problem.Lp.objective
    | Lp.Minimize -> Linexpr.neg problem.Lp.objective
  in
  let cost = Array.make inst.Sparse.nstruct Rat.zero in
  Array.iteri (fun i v -> cost.(i) <- Linexpr.coeff obj v) inst.Sparse.vars;
  (inst, cost)

type lp_warm = {
  children : int;
  cold_wall : float;
  warm_wall : float;
  hits : int;
  misses : int;
}

(* Branch-and-bound-style children of [problem]: tighten one positive
   structural variable's upper bound to (its optimal value - 1), which
   forces a re-optimization exactly like an [Ilp.solve] branch. *)
let lp_warm_probe problem =
  let inst, cost = lp_instance problem in
  match (Revised.solve_primal inst ~cost).Revised.verdict with
  | Revised.Infeasible | Revised.Unbounded -> None
  | Revised.Optimal sol ->
    let nstruct = inst.Sparse.nstruct in
    let candidates = ref [] in
    for j = nstruct - 1 downto 0 do
      if Rat.compare sol.Revised.xstruct.(j) Rat.one >= 0 then
        candidates := j :: !candidates
    done;
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    let children = take 32 !candidates in
    let zeros = Array.make nstruct Rat.zero in
    let acc = ref { children = List.length children; cold_wall = 0.0;
                    warm_wall = 0.0; hits = 0; misses = 0 } in
    List.iter
      (fun j ->
        let upper = Array.make nstruct None in
        upper.(j) <- Some (Rat.sub sol.Revised.xstruct.(j) Rat.one);
        let cold, cold_t =
          lp_time (fun () -> Revised.solve_primal ~upper inst ~cost)
        in
        let warm, warm_t =
          lp_time (fun () ->
            match
              Revised.solve_dual inst ~cost ~lower:zeros ~upper
                ~warm:sol.Revised.snapshot
            with
            | run -> Some run
            | exception Revised.Stuck -> None)
        in
        let a = !acc in
        let hit, miss =
          match warm with Some _ -> (1, 0) | None -> (0, 1)
        in
        (match (warm, cold.Revised.verdict) with
         | Some { Revised.verdict = Revised.Optimal w; _ },
           Revised.Optimal c ->
           if not (Rat.equal w.Revised.value c.Revised.value) then begin
             Printf.eprintf
               "bench lp: warm/cold divergence on child %d: %s vs %s\n" j
               (Rat.to_string w.Revised.value) (Rat.to_string c.Revised.value);
             exit 1
           end
         | Some { Revised.verdict = Revised.Infeasible; _ }, Revised.Infeasible
         | None, _ -> ()
         | Some _, _ ->
           Printf.eprintf "bench lp: warm/cold verdict mismatch on child %d\n" j;
           exit 1);
        acc := { a with cold_wall = a.cold_wall +. cold_t;
                        warm_wall = a.warm_wall +. warm_t;
                        hits = a.hits + hit; misses = a.misses + miss })
      children;
    Some !acc

let lp_bench ~check () =
  (* LP_SIZES_ONLY=1: print tier dimensions without solving (used to
     calibrate stmt budgets when retuning the tiers); LP_TIERS=a,b
     restricts the run to the named tiers (CI uses this to keep the
     nightly check within its time budget); LP_BUDGETS=name=N,...
     replaces the tier list entirely with ad-hoc revised-only tiers,
     for calibration runs *)
  let sizes_only = Sys.getenv_opt "LP_SIZES_ONLY" <> None in
  let tiers =
    match Sys.getenv_opt "LP_BUDGETS" with
    | Some spec ->
      List.map
        (fun entry ->
          match String.index_opt entry '=' with
          | Some i ->
            let name = String.sub entry 0 i in
            let budget =
              int_of_string
                (String.sub entry (i + 1) (String.length entry - i - 1))
            in
            (name, budget, false)
          | None ->
            Printf.eprintf "bench lp: bad LP_BUDGETS entry %S\n" entry;
            exit 1)
        (String.split_on_char ',' spec)
    | None ->
      (match Sys.getenv_opt "LP_TIERS" with
       | None -> lp_tiers
       | Some names ->
         let wanted = String.split_on_char ',' names in
         List.filter (fun (n, _, _) -> List.mem n wanted) lp_tiers)
  in
  let entries =
    List.map
      (fun (name, stmt_budget, measure_dense) ->
        let case = Ipet_fuzz.Gen.case_sized ~stmt_budget lp_seed in
        let spec = lp_spec_of_case case in
        let problems = Analysis.wcet_problems spec in
        let nvars =
          List.fold_left
            (fun acc p -> acc + List.length (Lp.variables p))
            0 problems
        in
        let nconstrs =
          List.fold_left
            (fun acc p -> acc + List.length p.Lp.constraints)
            0 problems
        in
        if sizes_only then
          Printf.printf "%-5s budget %6d: %6d vars %6d constrs (%d sets)\n%!"
            name stmt_budget nvars nconstrs (List.length problems);
        let revised, revised_wall =
          if sizes_only then ([], 0.0)
          else lp_time (fun () -> List.map Ipet_lp.Simplex.solve problems)
        in
        let dense_wall =
          if not measure_dense || sizes_only then None
          else begin
            let dense, wall =
              lp_time (fun () -> List.map Ipet_lp.Dense.solve problems)
            in
            List.iter2
              (fun d r ->
                match (d, r) with
                | Ipet_lp.Dense.Optimal { value = dv; _ },
                  Ipet_lp.Simplex.Optimal { value = rv; _ } ->
                  if not (Rat.equal dv rv) then begin
                    Printf.eprintf
                      "bench lp: dense/revised divergence in %s: %s vs %s\n"
                      name (Rat.to_string dv) (Rat.to_string rv);
                    exit 1
                  end
                | Ipet_lp.Dense.Infeasible, Ipet_lp.Simplex.Infeasible
                | Ipet_lp.Dense.Unbounded, Ipet_lp.Simplex.Unbounded -> ()
                | _ ->
                  Printf.eprintf
                    "bench lp: dense/revised verdict mismatch in %s\n" name;
                  exit 1)
              dense revised;
            Some wall
          end
        in
        let largest =
          List.fold_left
            (fun acc p ->
              match acc with
              | Some best
                when List.length (Lp.variables best)
                     >= List.length (Lp.variables p) -> acc
              | _ -> Some p)
            None problems
        in
        (* the probe's cold-solve arm re-solves each child from scratch,
           which is exactly what's intractable at jumbo sizes — warm-start
           numbers come from the dense-measured tiers *)
        let warm =
          if sizes_only || not measure_dense then None
          else Option.bind largest lp_warm_probe
        in
        let speedup =
          match dense_wall with
          | Some d when revised_wall > 0.0 -> d /. revised_wall
          | _ -> 0.0
        in
        if not sizes_only then
          Printf.printf
            "%-5s %6d vars %6d constrs: revised %7.3fs%s\n%!" name nvars
            nconstrs revised_wall
            (match dense_wall with
             | Some d -> Printf.sprintf ", dense %8.3fs (%.1fx)" d speedup
             | None -> ", dense skipped");
        (match warm with
         | Some w when w.children > 0 ->
           Printf.printf
             "      warm-start: %d children, cold %.3fs, warm %.3fs \
              (%.1fx), %d hits / %d misses\n%!"
             w.children w.cold_wall w.warm_wall
             (if w.warm_wall > 0.0 then w.cold_wall /. w.warm_wall else 0.0)
             w.hits w.misses
         | _ -> ());
        (name, stmt_budget, nvars, nconstrs, dense_wall, revised_wall,
         speedup, warm))
      tiers
  in
  let tier_json
      (name, budget, nvars, nconstrs, dense_wall, revised_wall, speedup, warm)
      =
    let warm_json =
      match warm with
      | Some w when w.children > 0 ->
        Printf.sprintf
          ",\n      \"warm_children\": %d, \"warm_cold_wall_s\": %.4f, \
           \"warm_wall_s\": %.4f, \"warm_speedup\": %.2f, \
           \"warm_hits\": %d, \"warm_misses\": %d, \"warm_hit_rate\": %.3f"
          w.children w.cold_wall w.warm_wall
          (if w.warm_wall > 0.0 then w.cold_wall /. w.warm_wall else 0.0)
          w.hits w.misses
          (float_of_int w.hits /. float_of_int w.children)
      | _ -> ""
    in
    Printf.sprintf
      "    { \"tier\": %S, \"stmt_budget\": %d, \"vars\": %d, \
       \"constrs\": %d,\n      \"dense_wall_s\": %s, \
       \"revised_wall_s\": %.4f, \"speedup\": %s%s }"
      name budget nvars nconstrs
      (match dense_wall with
       | Some d -> Printf.sprintf "%.4f" d
       | None -> "null")
      revised_wall
      (match dense_wall with
       | Some _ -> Printf.sprintf "%.2f" speedup
       | None -> "null")
      warm_json
  in
  let out =
    Printf.sprintf
      "{\n  \"suite\": \"ipet-lp\",\n  \"seed\": %d,\n  \
       \"presolve\": false,\n  \"tiers\": [\n%s\n  ]\n}\n"
      lp_seed
      (String.concat ",\n" (List.map tier_json entries))
  in
  let oc = open_out "BENCH_lp.json" in
  output_string oc out;
  close_out oc;
  print_endline "wrote BENCH_lp.json";
  if check then begin
    let floor =
      match Sys.getenv_opt "LP_CHECK_RATIO" with
      | Some s -> float_of_string s
      | None -> 5.0
    in
    (* the regression this guards — the revised solver losing its edge
       over the dense tableau — is core-count independent, so no
       single-core waiver is needed *)
    let largest_measured =
      List.fold_left
        (fun acc ((_, _, nvars, _, dense_wall, _, _, _) as e) ->
          match (dense_wall, acc) with
          | None, _ -> acc
          | Some _, Some (_, _, best, _, _, _, _, _) when best >= nvars -> acc
          | Some _, _ -> Some e)
        None entries
    in
    match largest_measured with
    | None ->
      prerr_endline "lp-check: no dense-measured tier";
      exit 1
    | Some (name, _, _, _, _, _, speedup, _) ->
      if speedup < floor then begin
        Printf.printf
          "lp-check: FAIL — %.1fx revised-vs-dense on tier %s, below the \
           %.1fx floor\n"
          speedup name floor;
        exit 1
      end
      else
        Printf.printf "lp-check: ok (%.1fx on tier %s, floor %.1fx)\n"
          speedup name floor
  end

(* --- bechamel micro-benchmarks ------------------------------------------ *)

let bechamel () =
  header "Bechamel micro-benchmarks (one per table)";
  let open Bechamel in
  let check_data = Ipet_suite.Suite.find "check_data" in
  let table1_work () =
    (* Table I content: constraint-set construction (DNF + pruning) *)
    List.iter
      (fun (b : Bspec.t) ->
        ignore
          (Ipet.Functional.prune_null_sets (Ipet.Functional.dnf b.Bspec.functional)))
      Ipet_suite.Suite.all
  in
  let table2_work () =
    (* Table II content: one full ILP analysis *)
    ignore (Analysis.analyze (Bspec.spec check_data))
  in
  let table3_work () =
    (* Table III content: one cycle-accurate worst-case simulation *)
    let compiled = Bspec.compile check_data in
    let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
    (match check_data.Bspec.worst_data with
     | d :: _ -> d.Bspec.setup m
     | [] -> ());
    Interp.flush_cache m;
    ignore (Interp.call m check_data.Bspec.root [])
  in
  let tests =
    Test.make_grouped ~name:"tables"
      [ Test.make ~name:"table1:constraint-sets" (Staged.stage table1_work);
        Test.make ~name:"table2:ilp-analysis" (Staged.stage table2_work);
        Test.make ~name:"table3:cycle-simulation" (Staged.stage table3_work) ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-32s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results

(* --- driver -------------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: main.exe [--jobs N] \
     [fig1|..|fig6|table1|table2|table3|stats|ablation-cache|ablation-refine|\
      bechamel|json|sim|sim-check|lp|lp-check|serve|serve-check|export DIR|\
      all]"

let rec run_target = function
  | "fig1" -> fig1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "stats" -> stats ()
  | "ablation-cache" -> ablation_cache ()
  | "ablation-refine" -> ablation_refine ()
  | "ablation-compile" -> ablation_compile ()
  | "ablation-dcache" -> ablation_dcache ()
  | "table-extra" -> table_extra ()
  | "json" -> json ()
  | "sim" -> sim_bench ()
  | "sim-check" -> sim_check ()
  | "lp" -> lp_bench ~check:false ()
  | "lp-check" -> lp_bench ~check:true ()
  | "bechamel" -> bechamel ()
  | "all" ->
    List.iter run_target
      [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "table1"; "table2";
        "table3"; "stats"; "table-extra"; "ablation-cache"; "ablation-refine";
        "ablation-compile"; "ablation-dcache"; "bechamel" ]
  | other ->
    Printf.printf "unknown target %s\n" other;
    usage ();
    exit 1

(* strip --jobs N / -j N and --mach ID anywhere on the command line; the
   remaining arguments dispatch as before *)
let parse_jobs argv =
  let jobs = ref (Ipet_par.Par_compat.recommended_domain_count ()) in
  let rest = ref [] in
  let rec go i =
    if i < Array.length argv then begin
      (match argv.(i) with
       | "--jobs" | "-j" when i + 1 < Array.length argv ->
         (match int_of_string_opt argv.(i + 1) with
          | Some n when n >= 1 -> jobs := n
          | Some _ | None ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
         go (i + 2) |> ignore
       | "--mach" when i + 1 < Array.length argv ->
         (match Ipet_machine.Machine.of_string argv.(i + 1) with
          | Ok m -> table_mach := m
          | Error msg ->
            prerr_endline msg;
            exit 2);
         go (i + 2) |> ignore
       | a -> rest := a :: !rest; go (i + 1) |> ignore)
    end
  in
  go 1;
  (!jobs, List.rev !rest)

let () =
  let jobs, args = parse_jobs Sys.argv in
  match args with
  (* the serve targets fork the daemon, so they must run before this
     process spawns any domain — the daemon child sets up its own pool *)
  | [ "serve" ] -> bench_serve ~jobs ~check:false
  | [ "serve-check" ] -> bench_serve ~jobs ~check:true
  | _ ->
    Pool.set_default ~jobs;
    (match args with
     | [] -> run_target "all"
     | [ "export"; dir ] -> export dir
     | [ target ] -> run_target target
     | _ ->
       usage ();
       exit 1)
