(* cinderella — the command-line timing analyzer of the paper, re-created:
   reads an MC source file and an annotation file, prints the annotated
   listing with x_i labels, the derived constraints, and the estimated
   execution-time bound.

     cinderella analyze prog.mc -a prog.ann   (also accepts .s listings)
     cinderella listing prog.mc [-f func]
     cinderella cfg prog.mc -f func           (Graphviz to stdout)
     cinderella asm prog.mc                   (E32 assembly listing)
     cinderella sim prog.mc -r func --set g=1 --profile
     cinderella attribute prog.mc -r func --set g=1

   Every subcommand accepts --trace-out FILE (Chrome trace-event spans,
   Perfetto-loadable) and --metrics-out FILE (metrics + span totals as
   JSON). Diagnostics go through Ipet_obs.Diag: exit code 2 means the
   input was wrong, 1 means the run failed. *)

module P = Ipet_isa.Prog
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine
module Obs = Ipet_obs.Obs
module Diag = Ipet_obs.Diag
module Pool = Ipet_par.Pool

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let has_suffix ~suffix path =
  let np = String.length path and ns = String.length suffix in
  np >= ns && String.sub path (np - ns) ns = suffix

(* --- observability and parallelism plumbing ------------------------------ *)

(* Writing the sinks from [at_exit] means a run that dies through
   [Diag.fail] still flushes whatever spans and metrics it collected.
   Handlers run in reverse registration order, so the pool gauges
   (registered second) are recorded before the sinks (registered first)
   render the registry. *)
let setup_obs (trace_out, metrics_out, jobs) =
  Pool.set_default ~jobs;
  if trace_out <> None || metrics_out <> None then begin
    Obs.enable ();
    at_exit (fun () ->
        Option.iter
          (fun path ->
            Obs.Sink.write_file path
              (Obs.Trace_event.to_string ~track_names:(Obs.track_names ())
                 (Obs.spans ())))
          trace_out;
        Option.iter
          (fun path ->
            Obs.Sink.write_file path
              (Obs.Sink.metrics_json ~span_totals:(Obs.span_totals ())
                 Obs.metrics))
          metrics_out);
    at_exit (fun () ->
        let pool = Pool.default () in
        let s = Pool.stats pool in
        Obs.set_gauge_int "par.jobs" (Pool.jobs pool);
        Obs.set_gauge_int "par.tasks" s.Pool.tasks;
        Obs.set_gauge_int "par.steal_count" s.Pool.steals)
  end

(* MC source is compiled; an .s file is parsed as an E32 listing (the
   paper's cinderella likewise started from object code, not source) *)
let load_program path =
  Obs.span "frontend.load" ~args:[ ("path", path) ] (fun () ->
      if has_suffix ~suffix:".s" path then begin
        let text = read_file path in
        match Ipet_isa.Asm_parser.parse text with
        | prog -> (text, { Compile.prog; Compile.init_data = [] })
        | exception Ipet_isa.Asm_parser.Error (message, line) ->
          Diag.fail ~file:path ~line ~code:Diag.exit_input "%s" message
      end
      else begin
        let src = read_file path in
        match Frontend.compile_string src with
        | Ok compiled -> (src, compiled)
        | Error { Frontend.message; line } ->
          Diag.fail ~file:path ~line ~code:Diag.exit_input "%s" message
      end)

let load_annotations = function
  | None ->
    { Ipet.Constraint_parser.root = None; loop_bounds = []; functional = [] }
  | Some path ->
    (try Ipet.Constraint_parser.parse_annotation_text (read_file path) with
     | Ipet.Constraint_parser.Parse_error msg ->
       Diag.fail ~file:path ~code:Diag.exit_input "%s" msg)

let resolve_root root_flag (annotations : Ipet.Constraint_parser.annotation_file) =
  match (root_flag, annotations.Ipet.Constraint_parser.root) with
  | Some r, _ -> r
  | None, Some r -> r
  | None, None ->
    Diag.fail ~code:Diag.exit_input
      "no analysis root: pass --root or add a 'root' line to the annotations"

let require_func prog name =
  match P.find_func_opt prog name with
  | Some f -> f
  | None -> Diag.fail ~code:Diag.exit_input "unknown function %s" name

let infer_bounds ~verbose source_path src =
  if has_suffix ~suffix:".s" source_path then
    Diag.fail ~code:Diag.exit_input
      "--auto-bounds needs MC source, not an assembly listing";
  let ast, _env = Frontend.parse_and_check src in
  let bounds = Ipet.Autobound.infer ast in
  if verbose then
    List.iter
      (fun (b : Ipet.Annotation.t) ->
        match b.Ipet.Annotation.header with
        | `Line l ->
          Printf.printf "inferred: loop %s line %d bound [%d, %d]\n"
            b.Ipet.Annotation.func l b.Ipet.Annotation.lo b.Ipet.Annotation.hi
        | `Block _ -> ())
      bounds;
  bounds

let run_analysis ?(certify = false) spec =
  match
    Obs.span "analysis.analyze" (fun () ->
        Ipet.Analysis.analyze ~certify spec)
  with
  | result -> result
  | exception Ipet.Analysis.Analysis_error msg ->
    Diag.fail ~code:Diag.exit_analysis "analysis error: %s" msg
  | exception Ipet.Functional.Resolution_error msg ->
    Diag.fail ~code:Diag.exit_input "constraint error: %s" msg
  | exception Ipet.Annotation.Bad_annotation msg ->
    Diag.fail ~code:Diag.exit_input "annotation error: %s" msg

(* Export certificates next to --dump-lp when asked, then refuse to exit
   cleanly if the trusted checker rejected either bound's proof. *)
let finish_certificates ?cert_out (result : Ipet.Analysis.result) =
  let sides =
    [ ("wcet", result.Ipet.Analysis.wcet_cert);
      ("bcet", result.Ipet.Analysis.bcet_cert) ]
  in
  (match cert_out with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     let field (side, c) =
       match c with
       | None -> None
       | Some (c : Ipet.Analysis.certificate) ->
         Some
           (Printf.sprintf "\"%s\":{\"valid\":%b,\"gap_closed\":%b,\"certificate\":%s}"
              side
              (match c.Ipet.Analysis.verdict with
               | Ipet_cert.Checker.Valid _ -> true
               | Ipet_cert.Checker.Invalid _ -> false)
              (Ipet_cert.Checker.gap_closed c.Ipet.Analysis.verdict)
              (Ipet_cert.Certificate.to_json_string c.Ipet.Analysis.cert))
     in
     output_string oc
       ("{" ^ String.concat "," (List.filter_map field sides) ^ "}\n");
     close_out oc;
     Printf.printf "certificates written to %s\n" path);
  List.iter
    (fun (side, c) ->
      match c with
      | Some (c : Ipet.Analysis.certificate) ->
        (match c.Ipet.Analysis.verdict with
         | Ipet_cert.Checker.Invalid errs ->
           Diag.fail ~code:Diag.exit_analysis
             "%s certificate rejected by the checker: %s" side
             (String.concat "; " errs)
         | Ipet_cert.Checker.Valid _ -> ())
      | None -> ())
    sides

(* the cache flags override the machine's own fetch geometry field-wise *)
let resolve_cache mach cache_size line_size miss_penalty =
  let d = Machine.fetch mach in
  { Icache.size_bytes = Option.value ~default:d.Icache.size_bytes cache_size;
    line_bytes = Option.value ~default:d.Icache.line_bytes line_size;
    miss_penalty = Option.value ~default:d.Icache.miss_penalty miss_penalty }

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd obs source_path annot_path root_flag mach cache_size line_size
    miss_penalty verbose auto_bounds dump_lp sensitivity no_presolve lp_stats
    certify cert_out =
  setup_obs obs;
  let src, compiled = load_program source_path in
  let annotations = load_annotations annot_path in
  let root = resolve_root root_flag annotations in
  let prog = compiled.Compile.prog in
  ignore (require_func prog root);
  let cache = resolve_cache mach cache_size line_size miss_penalty in
  let inferred =
    if auto_bounds then infer_bounds ~verbose source_path src else []
  in
  let spec =
    Ipet.Analysis.spec ~mach ~cache ~presolve:(not no_presolve)
      ~loop_bounds:(annotations.Ipet.Constraint_parser.loop_bounds @ inferred)
      ~functional:annotations.Ipet.Constraint_parser.functional ~root prog
  in
  (match dump_lp with
   | Some path ->
     let oc = open_out path in
     let dump kind problems =
       List.iteri
         (fun i problem ->
           output_string oc
             (Ipet_lp.Lp_format.to_string
                ~name:(Printf.sprintf "%s %s set %d" root kind i) problem))
         problems
     in
     dump "wcet" (Ipet.Analysis.wcet_problems spec);
     dump "bcet" (Ipet.Analysis.bcet_problems spec);
     close_out oc;
     Printf.printf "ILPs written to %s\n" path
   | None -> ());
  print_string (Ipet.Report.annotated_source ~source:src prog ~func:root);
  if verbose then begin
    print_endline "\nstructural constraints:";
    print_string
      (Ipet.Report.constraints_listing (Ipet.Analysis.structural_constraints spec))
  end;
  let result = run_analysis ~certify:(certify || cert_out <> None) spec in
  if Obs.enabled () then begin
    Obs.set_gauge_int "analysis.wcet_cycles"
      result.Ipet.Analysis.wcet.Ipet.Analysis.cycles;
    Obs.set_gauge_int "analysis.bcet_cycles"
      result.Ipet.Analysis.bcet.Ipet.Analysis.cycles;
    Ipet.Report.record_lp_metrics Obs.metrics result
  end;
  print_newline ();
  print_string (Ipet.Report.bound_summary result);
  if lp_stats then begin
    print_newline ();
    print_string (Ipet.Report.lp_stats result)
  end;
  if sensitivity then begin
    print_endline "\nWCET sensitivity to loop bounds (hi reduced by 1):";
    List.iter
      (fun (row : Ipet.Analysis.sensitivity_row) ->
        let ann = row.Ipet.Analysis.annotation in
        let where = match ann.Ipet.Annotation.header with
          | `Line l -> Printf.sprintf "line %d" l
          | `Block b -> Printf.sprintf "block %d" b
        in
        Printf.printf "  %s %s [%d,%d]: -%d cycles\n" ann.Ipet.Annotation.func
          where ann.Ipet.Annotation.lo ann.Ipet.Annotation.hi
          (row.Ipet.Analysis.base_wcet - row.Ipet.Analysis.tightened_wcet))
      (Ipet.Analysis.wcet_sensitivity spec)
  end;
  finish_certificates ?cert_out result

(* --- listing / cfg / asm -------------------------------------------------- *)

let listing_cmd obs source_path func =
  setup_obs obs;
  let src, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  let funcs =
    match func with
    | Some f -> [ f ]
    | None -> Array.to_list (Array.map (fun (f : P.func) -> f.P.name) prog.P.funcs)
  in
  List.iter
    (fun f ->
      Printf.printf "--- %s\n" f;
      print_string (Ipet.Report.annotated_source ~source:src prog ~func:f))
    funcs

let cfg_cmd obs source_path func annot_path root_flag auto_bounds mach
    cache_size line_size miss_penalty certify =
  setup_obs obs;
  let src, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  let f = require_func prog func in
  let cfg = Ipet_cfg.Cfg.of_func f in
  let dom = Ipet_cfg.Dominators.compute cfg in
  let loops = Ipet_cfg.Loops.detect cfg dom in
  let annotations = load_annotations annot_path in
  let root = match (root_flag, annotations.Ipet.Constraint_parser.root) with
    | Some r, _ -> Some r
    | None, r -> r
  in
  match root with
  | None ->
    print_string (Ipet_cfg.Dot.cfg_to_dot ~highlight_loops:loops cfg)
  | Some root ->
    (* with an analysis root available, annotate each node with its WCET
       witness count and per-block cost bounds, and fill the blocks on the
       worst-case path *)
    ignore (require_func prog root);
    let cache = resolve_cache mach cache_size line_size miss_penalty in
    let inferred =
      if auto_bounds then infer_bounds ~verbose:false source_path src else []
    in
    let spec =
      Ipet.Analysis.spec ~mach ~cache
        ~loop_bounds:(annotations.Ipet.Constraint_parser.loop_bounds @ inferred)
        ~functional:annotations.Ipet.Constraint_parser.functional ~root prog
    in
    let result = run_analysis ~certify spec in
    let costs = Ipet.Analysis.block_costs spec ~func in
    let count b =
      match
        List.assoc_opt (func, b) result.Ipet.Analysis.wcet.Ipet.Analysis.counts
      with
      | Some n -> n
      | None -> 0
    in
    let block_info b =
      let lines =
        if b < Array.length costs then
          [ Printf.sprintf "c=[%d,%d]" costs.(b).Ipet_machine.Cost.best
              costs.(b).Ipet_machine.Cost.worst ]
        else []
      in
      Printf.sprintf "wcet x%d" (count b) :: lines
    in
    print_string
      (Ipet_cfg.Dot.cfg_to_dot ~highlight_loops:loops ~block_info
         ~hot:(fun b -> count b > 0)
         cfg);
    finish_certificates result

let asm_cmd obs source_path =
  setup_obs obs;
  let _, compiled = load_program source_path in
  Format.printf "%a@." P.pp compiled.Compile.prog

(* --- sim ------------------------------------------------------------------ *)

(* "name=3", "name[4]=-2" or "name=2.5" *)
let parse_set spec =
  match String.index_opt spec '=' with
  | None -> Error (`Msg (spec ^ ": expected name=value"))
  | Some eq ->
    let lhs = String.sub spec 0 eq in
    let rhs = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    let name, index =
      match String.index_opt lhs '[' with
      | Some lb when lhs.[String.length lhs - 1] = ']' ->
        (String.sub lhs 0 lb,
         int_of_string (String.sub lhs (lb + 1) (String.length lhs - lb - 2)))
      | Some _ | None -> (lhs, 0)
    in
    (match int_of_string_opt rhs with
     | Some i -> Ok (name, index, Ipet_isa.Value.Vint i)
     | None ->
       (match float_of_string_opt rhs with
        | Some f -> Ok (name, index, Ipet_isa.Value.Vfloat f)
        | None -> Error (`Msg (rhs ^ ": expected a number"))))

let apply_sets m sets =
  List.iter
    (fun spec ->
      match parse_set spec with
      | Ok (name, index, v) ->
        (try Ipet_sim.Interp.write_global m name index v with
         | Ipet_sim.Interp.Runtime_error msg ->
           Diag.fail ~code:Diag.exit_input "%s" msg)
      | Error (`Msg msg) -> Diag.fail ~code:Diag.exit_input "--set %s" msg)
    sets

let run_sim m root arg_values =
  match
    Obs.span "sim.run" ~args:[ ("root", root) ] (fun () ->
        Ipet_sim.Interp.call m root arg_values)
  with
  | result -> result
  | exception Ipet_sim.Interp.Runtime_error msg ->
    Diag.fail ~code:Diag.exit_analysis "runtime error: %s" msg
  | exception Ipet_sim.Interp.Out_of_fuel ->
    Diag.fail ~code:Diag.exit_analysis
      "out of fuel: the program does not seem to terminate"

let record_sim_metrics m =
  if Obs.enabled () then begin
    Obs.set_gauge_int "sim.instructions" (Ipet_sim.Interp.instructions m);
    Obs.set_gauge_int "sim.cycles" (Ipet_sim.Interp.cycles m);
    Obs.set_gauge_int "sim.icache.hits" (Ipet_sim.Interp.cache_hits m);
    Obs.set_gauge_int "sim.icache.misses" (Ipet_sim.Interp.cache_misses m);
    Array.iteri
      (fun i (hits, misses) ->
        if hits + misses > 0 then begin
          let labels = [ ("set", string_of_int i) ] in
          Obs.set_gauge_int ~labels "sim.icache.set_hits" hits;
          Obs.set_gauge_int ~labels "sim.icache.set_misses" misses
        end)
      (Ipet_sim.Interp.icache_line_stats m)
  end

let sim_cmd obs source_path root args sets flush profile mach =
  setup_obs obs;
  let _, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  (* per-line i-cache metrics need the profiled machine; the hot loop is
     only instrumented when asked for *)
  let m =
    Ipet_sim.Interp.create ~mach ~profile:(profile || Obs.enabled ()) prog
      ~init:compiled.Compile.init_data
  in
  apply_sets m sets;
  if flush then Ipet_sim.Interp.flush_cache m;
  let arg_values = List.map (fun i -> Ipet_isa.Value.Vint i) args in
  let result =
    if profile then begin
      let result, rows = Ipet_sim.Trace.profile m (fun () -> run_sim m root arg_values) in
      Format.printf "%a@." Ipet_sim.Trace.pp_profile rows;
      result
    end
    else run_sim m root arg_values
  in
  record_sim_metrics m;
  (match result with
   | Some v -> Format.printf "result: %a@." Ipet_isa.Value.pp v
   | None -> print_endline "result: (void)");
  Printf.printf "cycles:       %d\n" (Ipet_sim.Interp.cycles m);
  Printf.printf "instructions: %d\n" (Ipet_sim.Interp.instructions m);
  Printf.printf "cache:        %d hits, %d misses\n"
    (Ipet_sim.Interp.cache_hits m) (Ipet_sim.Interp.cache_misses m);
  print_endline "hottest blocks:";
  Ipet_sim.Interp.block_counts m
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter (fun ((func, block), count) ->
    Printf.printf "  %s B%d: %d\n" func block count)

(* --- attribute ------------------------------------------------------------ *)

(* Pessimism attribution: run the IPET analysis AND a profiled simulation
   of the same program under the same cache configuration, then report per
   basic block how much of the estimate-vs-measurement gap it contributes:
   witness count x worst-case cost against measured count and self
   cycles. *)
let attribute_cmd obs source_path annot_path root_flag args sets flush
    auto_bounds mach cache_size line_size miss_penalty certify =
  setup_obs obs;
  let src, compiled = load_program source_path in
  let annotations = load_annotations annot_path in
  let root = resolve_root root_flag annotations in
  let prog = compiled.Compile.prog in
  ignore (require_func prog root);
  let cache = resolve_cache mach cache_size line_size miss_penalty in
  let inferred =
    if auto_bounds then infer_bounds ~verbose:false source_path src else []
  in
  let spec =
    Ipet.Analysis.spec ~mach ~cache
      ~loop_bounds:(annotations.Ipet.Constraint_parser.loop_bounds @ inferred)
      ~functional:annotations.Ipet.Constraint_parser.functional ~root prog
  in
  let result = run_analysis ~certify spec in
  if Obs.enabled () then Ipet.Report.record_lp_metrics Obs.metrics result;
  let m =
    Ipet_sim.Interp.create ~mach ~cache ~profile:true prog
      ~init:compiled.Compile.init_data
  in
  apply_sets m sets;
  if flush then Ipet_sim.Interp.flush_cache m;
  let arg_values = List.map (fun i -> Ipet_isa.Value.Vint i) args in
  ignore (run_sim m root arg_values);
  record_sim_metrics m;
  let cost_cache = Hashtbl.create 8 in
  let wcet_cost func block =
    let arr =
      match Hashtbl.find_opt cost_cache func with
      | Some a -> a
      | None ->
        let a = Ipet.Analysis.block_costs spec ~func in
        Hashtbl.add cost_cache func a;
        a
    in
    if block < Array.length arr then arr.(block).Ipet_machine.Cost.worst else 0
  in
  let rows =
    Ipet.Report.attribution
      ~wcet_counts:result.Ipet.Analysis.wcet.Ipet.Analysis.counts ~wcet_cost
      ~sim_counts:(Ipet_sim.Interp.block_counts m)
      ~sim_cycles:(Ipet_sim.Interp.block_cycles m)
  in
  print_string
    (Ipet.Report.pp_attribution
       ~wcet:result.Ipet.Analysis.wcet.Ipet.Analysis.cycles
       ~simulated:(Ipet_sim.Interp.cycles m) rows);
  finish_certificates result

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc")

let annot_arg =
  Arg.(value & opt (some file) None
       & info [ "a"; "annotations" ] ~docv:"FILE.ann"
           ~doc:"Annotation file (root, loop bounds, constraints).")

let root_arg =
  Arg.(value & opt (some string) None
       & info [ "r"; "root" ] ~docv:"FUNC" ~doc:"Function to analyze.")

let func_opt_arg =
  Arg.(value & opt (some string) None
       & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Restrict to one function.")

let func_req_arg =
  Arg.(required & opt (some string) None
       & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Function to dump.")

let mach_conv =
  let parse s =
    match Machine.of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Machine.id m) in
  Arg.conv (parse, print)

let mach_arg =
  Arg.(value & opt mach_conv Machine.e32
       & info [ "mach" ] ~docv:"MACH"
           ~doc:"Machine model the costs and the simulator target: \
                 $(b,e32) (the paper's i960KB-style core, default) or \
                 $(b,m7) (an ARMv7-M-style core with wait-state flash \
                 behind a prefetch buffer).")

let cache_size_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-size" ] ~docv:"BYTES"
           ~doc:"Instruction cache capacity (default: the machine's own).")

let line_size_arg =
  Arg.(value & opt (some int) None
       & info [ "line-size" ] ~docv:"BYTES"
           ~doc:"Cache line size (default: the machine's own).")

let miss_penalty_arg =
  Arg.(value & opt (some int) None
       & info [ "miss-penalty" ] ~docv:"CYCLES"
           ~doc:"Cache line fill penalty (default: the machine's own).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print derived constraints.")

let auto_bounds_arg =
  Arg.(value & flag
       & info [ "auto-bounds" ]
           ~doc:"Infer bounds for counted for-loops automatically.")

let dump_lp_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-lp" ] ~docv:"FILE"
           ~doc:"Write the WCET and BCET ILPs in CPLEX LP format.")

let sensitivity_arg =
  Arg.(value & flag
       & info [ "sensitivity" ]
           ~doc:"Report how much each loop bound contributes to the WCET.")

let no_presolve_arg =
  Arg.(value & flag
       & info [ "no-presolve" ]
           ~doc:"Hand the ILPs to the solver without presolve reductions.")

let lp_stats_arg =
  Arg.(value & flag
       & info [ "lp-stats" ]
           ~doc:"Print detailed solver statistics (LP calls, branch-and-bound \
                 nodes, simplex pivots, presolve reductions) as metric lines.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the run's spans as a Chrome trace-event file \
                 (loadable in Perfetto).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the run's metrics and span totals as JSON.")

let jobs_arg =
  Arg.(value
       & opt int (Ipet_par.Par_compat.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel analysis (default: the \
                 machine's recommended domain count; 1 disables \
                 parallelism). Results are bit-identical at any value.")

let obs_term =
  Term.(const (fun trace metrics jobs -> (trace, metrics, jobs))
        $ trace_out_arg $ metrics_out_arg $ jobs_arg)

let certify_arg =
  Arg.(value & flag
       & info [ "certify" ]
           ~doc:"Emit an exact LP-duality certificate for each reported \
                 bound and validate it with the trusted checker; exit \
                 non-zero if a certificate is rejected.")

let cert_out_arg =
  Arg.(value & opt (some string) None
       & info [ "cert-out" ] ~docv:"FILE"
           ~doc:"Write the WCET/BCET certificates as JSON (implies \
                 $(b,--certify)).")

let analyze_term =
  Term.(const analyze_cmd $ obs_term $ source_arg $ annot_arg $ root_arg
        $ mach_arg $ cache_size_arg $ line_size_arg $ miss_penalty_arg
        $ verbose_arg
        $ auto_bounds_arg $ dump_lp_arg $ sensitivity_arg $ no_presolve_arg
        $ lp_stats_arg $ certify_arg $ cert_out_arg)

let analyze =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Estimate the execution-time bound of a function (IPET).")
    analyze_term

let args_arg =
  Arg.(value & opt (list int) []
       & info [ "args" ] ~docv:"INTS" ~doc:"Integer arguments of the root call.")

let set_arg =
  Arg.(value & opt_all string []
       & info [ "set" ] ~docv:"NAME[=INDEX]=VALUE"
           ~doc:"Initialize a global before the run (repeatable).")

let flush_arg =
  Arg.(value & flag
       & info [ "cold" ] ~doc:"Flush the instruction cache before the run.")

let root_req_arg =
  Arg.(required & opt (some string) None
       & info [ "r"; "root" ] ~docv:"FUNC" ~doc:"Function to execute.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ] ~doc:"Print a per-block cycle profile of the run.")

let sim =
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Execute a function on the cycle-accurate simulator.")
    Term.(const sim_cmd $ obs_term $ source_arg $ root_req_arg $ args_arg
          $ set_arg $ flush_arg $ profile_arg $ mach_arg)

let attribute =
  Cmd.v
    (Cmd.info "attribute"
       ~doc:"Explain the gap between the WCET estimate and a simulated run: \
             per basic block, witness count x worst-case cost versus the \
             measured count and cycles, ranked by contribution.")
    Term.(const attribute_cmd $ obs_term $ source_arg $ annot_arg $ root_arg
          $ args_arg $ set_arg $ flush_arg $ auto_bounds_arg $ mach_arg
          $ cache_size_arg $ line_size_arg $ miss_penalty_arg $ certify_arg)

let listing =
  Cmd.v
    (Cmd.info "listing" ~doc:"Print the annotated source with x_i labels.")
    Term.(const listing_cmd $ obs_term $ source_arg $ func_opt_arg)

let cfg =
  Cmd.v
    (Cmd.info "cfg"
       ~doc:"Dump a function's CFG in Graphviz format. With an analysis \
             root (-r or an annotation file), nodes are annotated with \
             WCET witness counts and cost bounds, and worst-case-path \
             blocks are filled.")
    Term.(const cfg_cmd $ obs_term $ source_arg $ func_req_arg $ annot_arg
          $ root_arg $ auto_bounds_arg $ mach_arg $ cache_size_arg
          $ line_size_arg $ miss_penalty_arg $ certify_arg)

let asm =
  Cmd.v
    (Cmd.info "asm" ~doc:"Print the compiled E32 assembly.")
    Term.(const asm_cmd $ obs_term $ source_arg)

(* --- serve / query -------------------------------------------------------- *)

let serve_cmd obs socket cache_dir no_cache cache_cap timeout_ms access_log
    access_log_cap flight_cap flight_dump =
  setup_obs obs;
  let cache =
    if no_cache then None
    else Some (Ipet_serve.Cache.create ~dir:cache_dir ~cap_bytes:cache_cap)
  in
  let flight_dump =
    (* default next to the socket, so tmp-socket runs keep the dump
       contained; --flight-dump "" disables it *)
    match flight_dump with
    | Some "" -> None
    | Some path -> Some path
    | None -> Some (socket ^ ".flight.jsonl")
  in
  let config =
    { Ipet_serve.Server.socket_path = socket;
      pool = Some (Pool.default ());
      cache;
      default_timeout_ms = timeout_ms;
      max_request_bytes = 16 * 1024 * 1024;
      access_log;
      access_log_cap;
      flight_cap;
      flight_dump }
  in
  Printf.eprintf "cinderella %s serving on %s (cache: %s)\n%!"
    Ipet_serve.Version.version socket
    (match cache with
     | Some c -> Ipet_serve.Cache.dir c
     | None -> "disabled");
  Ipet_serve.Server.run config

module J = Ipet_serve.Json

let trace_fields = function
  | None -> []
  | Some id -> [ ("trace", J.Str id) ]

let query_request ?trace ~want_spans source_path annot_path root mach
    timeout_ms no_cache =
  match source_path with
  | None ->
    Diag.fail ~code:Diag.exit_input "query needs SOURCE.mc, --op or --raw"
  | Some path ->
    let source = read_file path in
    let lang = if has_suffix ~suffix:".s" path then "asm" else "mc" in
    let options =
      (if no_cache then [ ("use_cache", J.Bool false) ] else [])
      @ (if want_spans then [ ("trace_spans", J.Bool true) ] else [])
      @ (match timeout_ms with
         | Some ms -> [ ("timeout_ms", J.Int ms) ]
         | None -> [])
    in
    J.to_string
      (J.Obj
         ([ ("v", J.Int Ipet_serve.Protocol.version);
            ("op", J.Str "analyze") ]
          @ trace_fields trace
          @ [ ("mach", J.Str (Machine.id mach));
              ("lang", J.Str lang); ("source", J.Str source) ]
          @ (match annot_path with
             | Some p -> [ ("annotations", J.Str (read_file p)) ]
             | None -> [])
          @ (match root with Some r -> [ ("root", J.Str r) ] | None -> [])
          @ (if options = [] then [] else [ ("options", J.Obj options) ])))

(* pull the request's span tree out of an analyze response and write it as
   a Perfetto-loadable trace-event file (all spans on one track: the
   daemon ran them on this request's track) *)
let span_of_json j =
  match
    ( Option.bind (J.member "name" j) J.to_str,
      Option.bind (J.member "start_us" j) J.to_int,
      Option.bind (J.member "dur_us" j) J.to_int,
      Option.bind (J.member "depth" j) J.to_int )
  with
  | Some name, Some start_us, Some dur_us, Some depth ->
    let args =
      match J.member "args" j with
      | Some (J.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (J.to_str v))
          fields
      | _ -> []
    in
    Some { Ipet_obs.Span.name; args; start_us; dur_us; depth; tid = 0 }
  | _ -> None

let write_query_trace ~trace path response =
  match J.parse response with
  | Error _ -> ()
  | Ok j ->
    let spans =
      match Option.bind (J.member "trace_spans" j) J.to_list with
      | Some l -> List.filter_map span_of_json l
      | None -> []
    in
    let track_names =
      match trace with Some id -> [ (0, "req:" ^ id) ] | None -> []
    in
    Obs.Sink.write_file path (Obs.Trace_event.to_string ~track_names spans);
    Printf.eprintf "trace written to %s (%d spans)\n%!" path
      (List.length spans)

let rec pp_pretty ?(indent = 0) j =
  match j with
  | J.Obj fields ->
    List.iter
      (fun (k, v) ->
        match v with
        | J.Obj _ | J.List _ ->
          Printf.printf "%*s%s:\n" indent "" k;
          pp_pretty ~indent:(indent + 2) v
        | _ -> Printf.printf "%*s%-16s %s\n" indent "" k (J.to_string v))
      fields
  | J.List items -> List.iter (fun v -> pp_pretty ~indent v) items
  | _ -> Printf.printf "%*s%s\n" indent "" (J.to_string j)

let number_field name j =
  match J.member name j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let pretty_response response =
  match J.parse response with
  | Error _ -> print_endline response
  | Ok j ->
    (match Option.bind (J.member "op" j) J.to_str with
     | Some "metrics" ->
       (match Option.bind (J.member "prometheus" j) J.to_str with
        | Some text -> print_string text
        | None -> pp_pretty j)
     | Some "recent" ->
       (match Option.bind (J.member "events" j) J.to_list with
        | Some events ->
          Printf.printf "%6s  %-24s  %-8s  %9s  %s\n" "seq" "id" "op" "ms"
            "status";
          List.iter
            (fun e ->
              Printf.printf "%6d  %-24s  %-8s  %9.3f  %s\n"
                (Option.value ~default:0
                   (Option.bind (J.member "seq" e) J.to_int))
                (Option.value ~default:"?"
                   (Option.bind (J.member "id" e) J.to_str))
                (Option.value ~default:"?"
                   (Option.bind (J.member "op" e) J.to_str))
                (Option.value ~default:0.0 (number_field "latency_ms" e))
                (match Option.bind (J.member "error" e) J.to_str with
                 | Some code -> "error:" ^ code
                 | None -> "ok"))
            events
        | None -> pp_pretty j)
     | _ -> pp_pretty j)

let query_cmd socket source_path annot_path root mach raw op timeout_ms
    no_cache pretty trace_id trace_out =
  let trace =
    match trace_id with
    | Some _ -> trace_id
    | None ->
      Option.map
        (fun _ -> Printf.sprintf "query-%d" (Unix.getpid ()))
        trace_out
  in
  let line =
    match (raw, op) with
    | Some s, _ -> s
    | None, Some (("hello" | "stats" | "shutdown" | "metrics" | "recent") as op)
      ->
      J.to_string
        (J.Obj
           ([ ("v", J.Int Ipet_serve.Protocol.version); ("op", J.Str op) ]
            @ trace_fields trace))
    | None, Some op -> Diag.fail ~code:Diag.exit_input "unknown op %s" op
    | None, None ->
      query_request ?trace ~want_spans:(trace_out <> None) source_path
        annot_path root mach timeout_ms no_cache
  in
  match Ipet_serve.Client.one_shot ~socket line with
  | exception Unix.Unix_error (e, _, _) ->
    Diag.fail ~code:Diag.exit_input "cannot reach server at %s: %s" socket
      (Unix.error_message e)
  | None ->
    Diag.fail ~code:Diag.exit_analysis
      "server closed the connection without replying"
  | Some response ->
    if pretty then pretty_response response else print_endline response;
    Option.iter (fun path -> write_query_trace ~trace path response) trace_out;
    let failure_code =
      match J.parse response with
      | Ok j ->
        (match J.member "ok" j with
         | Some (J.Bool true) -> None
         | _ ->
           (match
              Option.bind
                (Option.bind (J.member "error" j) (J.member "code"))
                J.to_str
            with
            | Some ("proto" | "input") -> Some Diag.exit_input
            | Some _ | None -> Some Diag.exit_analysis))
      | Error _ -> Some Diag.exit_analysis
    in
    Option.iter exit failure_code

(* --- top ------------------------------------------------------------------ *)

(* refreshing operator view: totals and cache state from the stats op,
   per-op latency quantiles from the daemon-side histograms in the
   metrics op *)
let top_cmd socket interval iters plain =
  let send op =
    let line =
      J.to_string
        (J.Obj [ ("v", J.Int Ipet_serve.Protocol.version); ("op", J.Str op) ])
    in
    match Ipet_serve.Client.one_shot ~socket line with
    | exception Unix.Unix_error (e, _, _) ->
      Diag.fail ~code:Diag.exit_input "cannot reach server at %s: %s" socket
        (Unix.error_message e)
    | None ->
      Diag.fail ~code:Diag.exit_analysis
        "server closed the connection without replying"
    | Some response ->
      (match J.parse response with
       | Ok j -> j
       | Error msg ->
         Diag.fail ~code:Diag.exit_analysis "bad response from server: %s" msg)
  in
  let prev = ref None in
  let latency_rows metrics =
    match
      Option.bind
        (Option.bind (J.member "metrics" metrics) (J.member "metrics"))
        J.to_list
    with
    | None -> []
    | Some items ->
      List.filter_map
        (fun m ->
          match Option.bind (J.member "name" m) J.to_str with
          | Some "serve.latency_seconds" ->
            let op =
              Option.value ~default:"?"
                (Option.bind
                   (Option.bind (J.member "labels" m) (J.member "op"))
                   J.to_str)
            in
            Some
              ( op,
                Option.value ~default:0
                  (Option.bind (J.member "count" m) J.to_int),
                Option.value ~default:0.0 (number_field "p50" m),
                Option.value ~default:0.0 (number_field "p99" m) )
          | _ -> None)
        items
  in
  let tick () =
    let stats = send "stats" in
    let metrics = send "metrics" in
    let now = Unix.gettimeofday () in
    let requests =
      Option.value ~default:0 (Option.bind (J.member "requests" stats) J.to_int)
    in
    let rate =
      match !prev with
      | Some (t0, r0) when now > t0 ->
        float_of_int (requests - r0) /. (now -. t0)
      | _ -> 0.0
    in
    prev := Some (now, requests);
    if not plain then print_string "\027[H\027[2J";
    Printf.printf "cinderella top — %s\n" socket;
    Printf.printf "requests %d  (%.1f req/s)  errors %d  cert rejects %d\n"
      requests rate
      (Option.value ~default:0 (Option.bind (J.member "errors" stats) J.to_int))
      (Option.value ~default:0
         (Option.bind (J.member "certs_rejected" stats) J.to_int));
    (match J.member "cache" stats with
     | Some (J.Obj _ as cache) ->
       let i name =
         Option.value ~default:0 (Option.bind (J.member name cache) J.to_int)
       in
       let hits = i "hits" and misses = i "misses" in
       let ratio =
         if hits + misses = 0 then 0.0
         else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
       in
       Printf.printf
         "cache    %d entries, %d bytes  hit %.1f%%  evicted %d bytes\n"
         (i "entries") (i "bytes") ratio (i "eviction_bytes")
     | _ -> print_endline "cache    disabled");
    Printf.printf "%-10s %8s %10s %10s\n" "op" "count" "p50 ms" "p99 ms";
    List.iter
      (fun (op, count, p50, p99) ->
        Printf.printf "%-10s %8d %10.3f %10.3f\n" op count (p50 *. 1000.)
          (p99 *. 1000.))
      (latency_rows metrics);
    flush stdout
  in
  let rec loop n =
    if iters = 0 || n < iters then begin
      tick ();
      if iters = 0 || n + 1 < iters then Unix.sleepf interval;
      loop (n + 1)
    end
  in
  loop 0

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd obs seed iters no_shrink shrink_attempts quiet mach =
  setup_obs obs;
  let log line = if not quiet then Printf.eprintf "%s\n%!" line in
  let outcome =
    Ipet_fuzz.Driver.run ~log ~shrink:(not no_shrink) ~shrink_attempts ~mach
      ~seed ~iters ()
  in
  match outcome.Ipet_fuzz.Driver.report with
  | None ->
    Printf.printf "fuzz: %d/%d cases passed (seeds %d..%d)\n"
      outcome.Ipet_fuzz.Driver.passed outcome.Ipet_fuzz.Driver.iters_run seed
      (seed + iters - 1)
  | Some report ->
    Format.printf "%a@." Ipet_fuzz.Driver.pp_report report;
    exit Diag.exit_analysis

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"N"
           ~doc:"Base seed; case $(i)i$(i) uses seed N+i, so a failing seed \
                 replays alone with $(b,--seed) N+i $(b,--iters) 1.")

let iters_arg =
  Arg.(value & opt int 100
       & info [ "iters" ] ~docv:"N" ~doc:"Number of random cases to run.")

let no_shrink_arg =
  Arg.(value & flag
       & info [ "no-shrink" ] ~doc:"Report the failing program unshrunk.")

let shrink_attempts_arg =
  Arg.(value & opt int 2000
       & info [ "shrink-attempts" ] ~docv:"N"
           ~doc:"Cap on oracle runs spent shrinking a failure.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let fuzz =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the analyzer: random MC programs, \
             simulated-vs-estimated bound checks, constraint validation, \
             optimizer and presolve equivalence.")
    Term.(const fuzz_cmd $ obs_term $ seed_arg $ iters_arg $ no_shrink_arg
          $ shrink_attempts_arg $ quiet_arg $ mach_arg)

(* --- serve / query terms -------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "cinderella.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on.")

let cache_dir_arg =
  Arg.(value & opt string ".cinderella-cache"
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Directory for the persistent analysis cache.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ] ~doc:"Run without the persistent result cache.")

let cache_cap_arg =
  Arg.(value & opt int (64 * 1024 * 1024)
       & info [ "cache-cap" ] ~docv:"BYTES"
           ~doc:"Cache size cap; least-recently-used entries are evicted.")

let timeout_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Per-request analysis deadline in milliseconds.")

let access_log_arg =
  Arg.(value & opt (some string) None
       & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per request (timestamp, request id, \
                 op, outcome, latency); rotated once when the size cap is \
                 reached.")

let access_log_cap_arg =
  Arg.(value & opt int (8 * 1024 * 1024)
       & info [ "access-log-cap" ] ~docv:"BYTES"
           ~doc:"Access-log rotation threshold.")

let flight_cap_arg =
  Arg.(value & opt int 512
       & info [ "flight-cap" ] ~docv:"N"
           ~doc:"Flight-recorder ring capacity (most recent N requests).")

let flight_dump_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dump" ] ~docv:"FILE"
           ~doc:"Where the flight recorder is dumped (JSONL) on shutdown \
                 or crash. Default: SOCKET.flight.jsonl; an empty value \
                 disables the dump.")

let serve =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis daemon: line-delimited JSON requests over a \
             unix-domain socket, with per-function incremental re-analysis \
             backed by a persistent content-addressed cache. Every request \
             is recorded in an in-memory flight recorder (see the recent \
             op and $(b,--flight-dump)) and timed into live latency \
             histograms (see the metrics op and $(b,cinderella top)).")
    Term.(const serve_cmd $ obs_term $ socket_arg $ cache_dir_arg
          $ no_cache_arg $ cache_cap_arg $ timeout_ms_arg $ access_log_arg
          $ access_log_cap_arg $ flight_cap_arg $ flight_dump_arg)

let query_source_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SOURCE.mc")

let raw_arg =
  Arg.(value & opt (some string) None
       & info [ "raw" ] ~docv:"JSON"
           ~doc:"Send this exact request line instead of building one.")

let op_arg =
  Arg.(value & opt (some string) None
       & info [ "op" ] ~docv:"OP"
           ~doc:"Send a bare request: hello, stats, metrics, recent or \
                 shutdown.")

let pretty_arg =
  Arg.(value & flag
       & info [ "pretty" ]
           ~doc:"Render the response for humans instead of printing the raw \
                 JSON line (stats: aligned fields; metrics: Prometheus \
                 text; recent: a table).")

let query_trace_id_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"ID"
           ~doc:"Tag the request with this trace id; the daemon echoes it \
                 in the response and records it in the flight recorder and \
                 access log. Defaults to query-<pid> when $(b,--trace-out) \
                 is given. Ignored with $(b,--raw) (put a trace field in \
                 the raw JSON instead).")

let query_trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Tag the request with a trace id, ask the daemon for the \
                 request's span tree, and write it as a Chrome trace-event \
                 file (needs a daemon running with span tracing enabled).")

let query =
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running analysis daemon and print the \
             response line. Exit status follows the response: 0 on ok, \
             2 on protocol/input errors, 1 on analysis errors.")
    Term.(const query_cmd $ socket_arg $ query_source_arg $ annot_arg
          $ root_arg $ mach_arg $ raw_arg $ op_arg $ timeout_ms_arg
          $ no_cache_arg $ pretty_arg $ query_trace_id_arg
          $ query_trace_out_arg)

let interval_arg =
  Arg.(value & opt float 2.0
       & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")

let top_iters_arg =
  Arg.(value & opt int 0
       & info [ "iters" ] ~docv:"N"
           ~doc:"Stop after N refreshes (0: run until interrupted).")

let plain_arg =
  Arg.(value & flag
       & info [ "plain" ]
           ~doc:"Append refreshes instead of redrawing the screen (for \
                 logs and CI).")

let top =
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live daemon dashboard: request rate, error and \
             certificate-reject counts, cache occupancy and hit ratio, \
             and per-op p50/p99 latency from the daemon's own histograms.")
    Term.(const top_cmd $ socket_arg $ interval_arg $ top_iters_arg
          $ plain_arg)

let main =
  Cmd.group
    (Cmd.info "cinderella" ~version:Ipet_serve.Version.version
       ~doc:"Static execution-time analysis by implicit path enumeration.")
    [ analyze; listing; cfg; asm; sim; attribute; fuzz; serve; query; top ]

let () = exit (Cmd.eval main)
