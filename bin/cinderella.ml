(* cinderella — the command-line timing analyzer of the paper, re-created:
   reads an MC source file and an annotation file, prints the annotated
   listing with x_i labels, the derived constraints, and the estimated
   execution-time bound.

     cinderella analyze prog.mc -a prog.ann   (also accepts .s listings)
     cinderella listing prog.mc [-f func]
     cinderella cfg prog.mc -f func           (Graphviz to stdout)
     cinderella asm prog.mc                   (E32 assembly listing)
     cinderella sim prog.mc -r func --set g=1 --profile
*)

module P = Ipet_isa.Prog
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Icache = Ipet_machine.Icache

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let has_suffix ~suffix path =
  let np = String.length path and ns = String.length suffix in
  np >= ns && String.sub path (np - ns) ns = suffix

(* MC source is compiled; an .s file is parsed as an E32 listing (the
   paper's cinderella likewise started from object code, not source) *)
let load_program path =
  if has_suffix ~suffix:".s" path then begin
    let text = read_file path in
    match Ipet_isa.Asm_parser.parse text with
    | prog ->
      (text, { Compile.prog; Compile.init_data = [] })
    | exception Ipet_isa.Asm_parser.Error (message, line) ->
      Printf.eprintf "%s:%d: %s\n" path line message;
      exit 1
  end
  else begin
    let src = read_file path in
    match Frontend.compile_string src with
    | Ok compiled -> (src, compiled)
    | Error { Frontend.message; line } ->
      Printf.eprintf "%s:%d: %s\n" path line message;
      exit 1
  end

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd source_path annot_path root_flag cache_size line_size
    miss_penalty verbose auto_bounds dump_lp sensitivity no_presolve lp_stats =
  let src, compiled = load_program source_path in
  let annotations =
    match annot_path with
    | None -> { Ipet.Constraint_parser.root = None; loop_bounds = []; functional = [] }
    | Some path ->
      (try Ipet.Constraint_parser.parse_annotation_text (read_file path) with
       | Ipet.Constraint_parser.Parse_error msg ->
         Printf.eprintf "%s: %s\n" path msg;
         exit 1)
  in
  let root =
    match (root_flag, annotations.Ipet.Constraint_parser.root) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None ->
      Printf.eprintf
        "no analysis root: pass --root or add a 'root' line to the annotations\n";
      exit 1
  in
  let prog = compiled.Compile.prog in
  (match P.find_func_opt prog root with
   | Some _ -> ()
   | None ->
     Printf.eprintf "unknown function %s\n" root;
     exit 1);
  let cache = { Icache.size_bytes = cache_size; line_bytes = line_size; miss_penalty } in
  let inferred =
    if auto_bounds then begin
      if has_suffix ~suffix:".s" source_path then begin
        Printf.eprintf "--auto-bounds needs MC source, not an assembly listing\n";
        exit 1
      end;
      let ast, _env = Frontend.parse_and_check src in
      let bounds = Ipet.Autobound.infer ast in
      if verbose then
        List.iter
          (fun (b : Ipet.Annotation.t) ->
            match b.Ipet.Annotation.header with
            | `Line l ->
              Printf.printf "inferred: loop %s line %d bound [%d, %d]\n"
                b.Ipet.Annotation.func l b.Ipet.Annotation.lo b.Ipet.Annotation.hi
            | `Block _ -> ())
          bounds;
      bounds
    end
    else []
  in
  let spec =
    Ipet.Analysis.spec ~cache ~presolve:(not no_presolve)
      ~loop_bounds:(annotations.Ipet.Constraint_parser.loop_bounds @ inferred)
      ~functional:annotations.Ipet.Constraint_parser.functional ~root prog
  in
  (match dump_lp with
   | Some path ->
     let oc = open_out path in
     List.iteri
       (fun i problem ->
         output_string oc
           (Ipet_lp.Lp_format.to_string ~name:(Printf.sprintf "%s set %d" root i)
              problem))
       (Ipet.Analysis.wcet_problems spec);
     close_out oc;
     Printf.printf "ILPs written to %s\n" path
   | None -> ());
  print_string (Ipet.Report.annotated_source ~source:src prog ~func:root);
  if verbose then begin
    print_endline "\nstructural constraints:";
    print_string
      (Ipet.Report.constraints_listing (Ipet.Analysis.structural_constraints spec))
  end;
  match Ipet.Analysis.analyze spec with
  | result ->
    print_newline ();
    print_string (Ipet.Report.bound_summary result);
    if lp_stats then begin
      print_newline ();
      print_string (Ipet.Report.lp_stats result)
    end;
    if sensitivity then begin
      print_endline "\nWCET sensitivity to loop bounds (hi reduced by 1):";
      List.iter
        (fun (row : Ipet.Analysis.sensitivity_row) ->
          let ann = row.Ipet.Analysis.annotation in
          let where = match ann.Ipet.Annotation.header with
            | `Line l -> Printf.sprintf "line %d" l
            | `Block b -> Printf.sprintf "block %d" b
          in
          Printf.printf "  %s %s [%d,%d]: -%d cycles\n" ann.Ipet.Annotation.func
            where ann.Ipet.Annotation.lo ann.Ipet.Annotation.hi
            (row.Ipet.Analysis.base_wcet - row.Ipet.Analysis.tightened_wcet))
        (Ipet.Analysis.wcet_sensitivity spec)
    end
  | exception Ipet.Analysis.Analysis_error msg ->
    Printf.eprintf "analysis error: %s\n" msg;
    exit 1
  | exception Ipet.Functional.Resolution_error msg ->
    Printf.eprintf "constraint error: %s\n" msg;
    exit 1
  | exception Ipet.Annotation.Bad_annotation msg ->
    Printf.eprintf "annotation error: %s\n" msg;
    exit 1

(* --- listing / cfg / asm -------------------------------------------------- *)

let listing_cmd source_path func =
  let src, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  let funcs =
    match func with
    | Some f -> [ f ]
    | None -> Array.to_list (Array.map (fun (f : P.func) -> f.P.name) prog.P.funcs)
  in
  List.iter
    (fun f ->
      Printf.printf "--- %s\n" f;
      print_string (Ipet.Report.annotated_source ~source:src prog ~func:f))
    funcs

let cfg_cmd source_path func =
  let _, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  match P.find_func_opt prog func with
  | None ->
    Printf.eprintf "unknown function %s\n" func;
    exit 1
  | Some f ->
    let cfg = Ipet_cfg.Cfg.of_func f in
    let dom = Ipet_cfg.Dominators.compute cfg in
    let loops = Ipet_cfg.Loops.detect cfg dom in
    print_string (Ipet_cfg.Dot.cfg_to_dot ~highlight_loops:loops cfg)

let asm_cmd source_path =
  let _, compiled = load_program source_path in
  Format.printf "%a@." P.pp compiled.Compile.prog

(* --- sim -------------------------------------------------------------------- *)

(* "name=3", "name[4]=-2" or "name=2.5" *)
let parse_set spec =
  match String.index_opt spec '=' with
  | None -> Error (`Msg (spec ^ ": expected name=value"))
  | Some eq ->
    let lhs = String.sub spec 0 eq in
    let rhs = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    let name, index =
      match String.index_opt lhs '[' with
      | Some lb when lhs.[String.length lhs - 1] = ']' ->
        (String.sub lhs 0 lb,
         int_of_string (String.sub lhs (lb + 1) (String.length lhs - lb - 2)))
      | Some _ | None -> (lhs, 0)
    in
    (match int_of_string_opt rhs with
     | Some i -> Ok (name, index, Ipet_isa.Value.Vint i)
     | None ->
       (match float_of_string_opt rhs with
        | Some f -> Ok (name, index, Ipet_isa.Value.Vfloat f)
        | None -> Error (`Msg (rhs ^ ": expected a number"))))

let sim_cmd source_path root args sets flush profile =
  let _, compiled = load_program source_path in
  let prog = compiled.Compile.prog in
  let m = Ipet_sim.Interp.create prog ~init:compiled.Compile.init_data in
  List.iter
    (fun spec ->
      match parse_set spec with
      | Ok (name, index, v) ->
        (try Ipet_sim.Interp.write_global m name index v with
         | Ipet_sim.Interp.Runtime_error msg ->
           Printf.eprintf "%s\n" msg;
           exit 1)
      | Error (`Msg msg) ->
        Printf.eprintf "--set %s\n" msg;
        exit 1)
    sets;
  if flush then Ipet_sim.Interp.flush_cache m;
  let arg_values = List.map (fun i -> Ipet_isa.Value.Vint i) args in
  let call () = Ipet_sim.Interp.call m root arg_values in
  let outcome =
    try
      if profile then begin
        let result, rows = Ipet_sim.Trace.profile m call in
        Format.printf "%a@." Ipet_sim.Trace.pp_profile rows;
        Ok result
      end
      else Ok (call ())
    with
    | Ipet_sim.Interp.Runtime_error msg -> Error ("runtime error: " ^ msg)
    | Ipet_sim.Interp.Out_of_fuel ->
      Error "out of fuel: the program does not seem to terminate"
  in
  (match outcome with
   | Ok (Some v) -> Format.printf "result: %a@." Ipet_isa.Value.pp v
   | Ok None -> print_endline "result: (void)"
   | Error msg ->
     Printf.eprintf "%s\n" msg;
     exit 1);
  Printf.printf "cycles:       %d\n" (Ipet_sim.Interp.cycles m);
  Printf.printf "instructions: %d\n" (Ipet_sim.Interp.instructions m);
  Printf.printf "cache:        %d hits, %d misses\n"
    (Ipet_sim.Interp.cache_hits m) (Ipet_sim.Interp.cache_misses m);
  print_endline "hottest blocks:";
  Ipet_sim.Interp.block_counts m
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter (fun ((func, block), count) ->
    Printf.printf "  %s B%d: %d\n" func block count)

(* --- cmdliner wiring ------------------------------------------------------ *)

open Cmdliner

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc")

let annot_arg =
  Arg.(value & opt (some file) None
       & info [ "a"; "annotations" ] ~docv:"FILE.ann"
           ~doc:"Annotation file (root, loop bounds, constraints).")

let root_arg =
  Arg.(value & opt (some string) None
       & info [ "r"; "root" ] ~docv:"FUNC" ~doc:"Function to analyze.")

let func_opt_arg =
  Arg.(value & opt (some string) None
       & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Restrict to one function.")

let func_req_arg =
  Arg.(required & opt (some string) None
       & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Function to dump.")

let cache_size_arg =
  Arg.(value & opt int Icache.i960kb.Icache.size_bytes
       & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Instruction cache capacity.")

let line_size_arg =
  Arg.(value & opt int Icache.i960kb.Icache.line_bytes
       & info [ "line-size" ] ~docv:"BYTES" ~doc:"Cache line size.")

let miss_penalty_arg =
  Arg.(value & opt int Icache.i960kb.Icache.miss_penalty
       & info [ "miss-penalty" ] ~docv:"CYCLES" ~doc:"Cache line fill penalty.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print derived constraints.")

let auto_bounds_arg =
  Arg.(value & flag
       & info [ "auto-bounds" ]
           ~doc:"Infer bounds for counted for-loops automatically.")

let dump_lp_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-lp" ] ~docv:"FILE"
           ~doc:"Write the WCET ILPs in CPLEX LP format.")

let sensitivity_arg =
  Arg.(value & flag
       & info [ "sensitivity" ]
           ~doc:"Report how much each loop bound contributes to the WCET.")

let no_presolve_arg =
  Arg.(value & flag
       & info [ "no-presolve" ]
           ~doc:"Hand the ILPs to the solver without presolve reductions.")

let lp_stats_arg =
  Arg.(value & flag
       & info [ "lp-stats" ]
           ~doc:"Print detailed solver statistics (LP calls, presolve \
                 variable/constraint reductions).")

let analyze_term =
  Term.(const analyze_cmd $ source_arg $ annot_arg $ root_arg $ cache_size_arg
        $ line_size_arg $ miss_penalty_arg $ verbose_arg $ auto_bounds_arg
        $ dump_lp_arg $ sensitivity_arg $ no_presolve_arg $ lp_stats_arg)

let analyze =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Estimate the execution-time bound of a function (IPET).")
    analyze_term

let args_arg =
  Arg.(value & opt (list int) []
       & info [ "args" ] ~docv:"INTS" ~doc:"Integer arguments of the root call.")

let set_arg =
  Arg.(value & opt_all string []
       & info [ "set" ] ~docv:"NAME[=INDEX]=VALUE"
           ~doc:"Initialize a global before the run (repeatable).")

let flush_arg =
  Arg.(value & flag
       & info [ "cold" ] ~doc:"Flush the instruction cache before the run.")

let root_req_arg =
  Arg.(required & opt (some string) None
       & info [ "r"; "root" ] ~docv:"FUNC" ~doc:"Function to execute.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ] ~doc:"Print a per-block cycle profile of the run.")

let sim =
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Execute a function on the cycle-accurate simulator.")
    Term.(const sim_cmd $ source_arg $ root_req_arg $ args_arg $ set_arg
          $ flush_arg $ profile_arg)

let listing =
  Cmd.v
    (Cmd.info "listing" ~doc:"Print the annotated source with x_i labels.")
    Term.(const listing_cmd $ source_arg $ func_opt_arg)

let cfg =
  Cmd.v
    (Cmd.info "cfg" ~doc:"Dump a function's CFG in Graphviz format.")
    Term.(const cfg_cmd $ source_arg $ func_req_arg)

let asm =
  Cmd.v
    (Cmd.info "asm" ~doc:"Print the compiled E32 assembly.")
    Term.(const asm_cmd $ source_arg)

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd seed iters no_shrink shrink_attempts quiet =
  let log line = if not quiet then Printf.eprintf "%s\n%!" line in
  let outcome =
    Ipet_fuzz.Driver.run ~log ~shrink:(not no_shrink) ~shrink_attempts ~seed
      ~iters ()
  in
  match outcome.Ipet_fuzz.Driver.report with
  | None ->
    Printf.printf "fuzz: %d/%d cases passed (seeds %d..%d)\n"
      outcome.Ipet_fuzz.Driver.passed outcome.Ipet_fuzz.Driver.iters_run seed
      (seed + iters - 1)
  | Some report ->
    Format.printf "%a@." Ipet_fuzz.Driver.pp_report report;
    exit 1

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"N"
           ~doc:"Base seed; case $(i)i$(i) uses seed N+i, so a failing seed \
                 replays alone with $(b,--seed) N+i $(b,--iters) 1.")

let iters_arg =
  Arg.(value & opt int 100
       & info [ "iters" ] ~docv:"N" ~doc:"Number of random cases to run.")

let no_shrink_arg =
  Arg.(value & flag
       & info [ "no-shrink" ] ~doc:"Report the failing program unshrunk.")

let shrink_attempts_arg =
  Arg.(value & opt int 2000
       & info [ "shrink-attempts" ] ~docv:"N"
           ~doc:"Cap on oracle runs spent shrinking a failure.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let fuzz =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the analyzer: random MC programs, \
             simulated-vs-estimated bound checks, constraint validation, \
             optimizer and presolve equivalence.")
    Term.(const fuzz_cmd $ seed_arg $ iters_arg $ no_shrink_arg
          $ shrink_attempts_arg $ quiet_arg)

let main =
  Cmd.group
    (Cmd.info "cinderella" ~version:"1.0"
       ~doc:"Static execution-time analysis by implicit path enumeration.")
    [ analyze; listing; cfg; asm; sim; fuzz ]

let () = exit (Cmd.eval main)
