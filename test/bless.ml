(* Regenerates the golden files checked by [test_golden.ml] and
   [test_machine.ml].

   Run from the repository root:

     dune exec test/bless.exe                  # writes test/golden/*.txt
     dune exec test/bless.exe -- --mach m7     # writes the m7 variants
     dune exec test/bless.exe -- DIR           # writes DIR/*.txt

   [dune exec] runs the binary from the invocation directory, so the
   default relative path lands in the source tree, not in _build. *)

module Machine = Ipet_machine.Machine
module E = Ipet_suite.Experiments

let write path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let () =
  let mach = ref Machine.e32 in
  let dir = ref (Filename.concat "test" "golden") in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--mach" when i + 1 < Array.length Sys.argv ->
        (match Machine.of_string Sys.argv.(i + 1) with
         | Ok m -> mach := m
         | Error msg -> prerr_endline msg; exit 2);
        parse (i + 2)
      | d -> dir := d; parse (i + 1)
  in
  parse 1;
  (* e32 owns the unsuffixed names the seed goldens were blessed under *)
  let suffix = if Machine.id !mach = "e32" then "" else "_" ^ Machine.id !mach in
  let rows = E.run_all ~mach:!mach () in
  let table2 = Filename.concat !dir (Printf.sprintf "table2%s.txt" suffix) in
  let table3 = Filename.concat !dir (Printf.sprintf "table3%s.txt" suffix) in
  write table2 (E.render_table2 rows);
  write table3 (E.render_table3 rows);
  Printf.printf "blessed %s and %s\n" table2 table3
