(* Regenerates the golden files checked by [test_golden.ml].

   Run from the repository root:

     dune exec test/bless.exe            # writes test/golden/*.txt
     dune exec test/bless.exe -- DIR     # writes DIR/*.txt

   [dune exec] runs the binary from the invocation directory, so the
   default relative path lands in the source tree, not in _build. *)

module E = Ipet_suite.Experiments

let write path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else
      Filename.concat "test" "golden"
  in
  let rows = E.run_all () in
  let table2 = Filename.concat dir "table2.txt" in
  let table3 = Filename.concat dir "table3.txt" in
  write table2 (E.render_table2 rows);
  write table3 (E.render_table3 rows);
  Printf.printf "blessed %s and %s\n" table2 table3
