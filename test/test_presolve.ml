(* Tests for the ILP presolve engine: unit tests for the individual
   reductions, and an equivalence sweep asserting that presolve never
   changes what the analysis computes on the full benchmark suite. *)

open Ipet_num
module L = Ipet_lp.Linexpr
module P = Ipet_lp.Lp_problem
module Pre = Ipet_lp.Presolve
module I = Ipet_lp.Ilp
module Analysis = Ipet.Analysis
module Bspec = Ipet_suite.Bspec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rat_testable = Alcotest.testable Rat.pp Rat.equal

let lp_max objective constraints = P.make P.Maximize objective constraints

let reduced = function
  | Pre.Reduced r -> r
  | Pre.Proved_infeasible { reason; _ } ->
    Alcotest.failf "unexpected infeasible: %s" reason

let ilp_value p ~presolve =
  match I.solve ~presolve p with
  | I.Optimal { value; _ } -> value
  | I.Infeasible _ -> Alcotest.fail "unexpected infeasible"
  | I.Unbounded _ -> Alcotest.fail "unexpected unbounded"

(* --- substitution ------------------------------------------------------- *)

let test_substitution_chain () =
  (* flow-style chain: e = 1, x = e, y = x; only the loop-bounded tail
     survives. max 2x + 3y s.t. y <= 4y' is nonsense; use y <= 4. *)
  let open L.Infix in
  let p =
    lp_max
      ((2 * v "x") + (3 * v "y"))
      [ P.eq (v "e") (int 1);
        P.eq (v "x") (10 * v "e");
        P.eq (v "y") (v "x") ]
  in
  let r = reduced (Pre.run p) in
  check_int "all variables eliminated" 0 (P.num_variables r.Pre.problem);
  check_int "no constraints left" 0 (P.num_constraints r.Pre.problem);
  (* the reduced objective carries the whole answer as its constant *)
  Alcotest.check rat_testable "objective constant" (Rat.of_int 50)
    (L.constant r.Pre.problem.P.objective);
  (* postsolve reconstructs every original variable *)
  let full = r.Pre.postsolve [] in
  let env = Ipet_lp.Simplex.assignment_env full in
  Alcotest.check rat_testable "e" Rat.one (env "e");
  Alcotest.check rat_testable "x" (Rat.of_int 10) (env "x");
  Alcotest.check rat_testable "y" (Rat.of_int 10) (env "y");
  check_bool "reconstruction feasible" true (P.feasible env p)

let test_substitution_keeps_nonnegativity () =
  (* x = y - 3 must not lose x >= 0: without the guard, max -y would pick
     y = 0. The true optimum is y = 3 (x = 0). *)
  let open L.Infix in
  let p =
    P.make P.Minimize (v "y")
      [ P.eq (v "x") (v "y" - int 3) ]
  in
  Alcotest.check rat_testable "guarded minimum" (Rat.of_int 3)
    (ilp_value p ~presolve:true);
  Alcotest.check rat_testable "baseline agrees" (Rat.of_int 3)
    (ilp_value p ~presolve:false)

let test_substitution_skips_fractional_defs () =
  (* 2x = y would define x = y/2 — not integral, so presolve must keep it
     rather than let the reduced problem report fractional solutions *)
  let open L.Infix in
  let p =
    lp_max (v "x")
      [ P.eq (2 * v "x") (v "y"); P.le (v "y") (int 5) ]
  in
  (* optimum: y even, y = 4, x = 2 *)
  Alcotest.check rat_testable "with presolve" (Rat.of_int 2)
    (ilp_value p ~presolve:true);
  Alcotest.check rat_testable "without presolve" (Rat.of_int 2)
    (ilp_value p ~presolve:false)

(* --- bounds ------------------------------------------------------------- *)

let test_bound_tightening () =
  (* singleton rows fold into one bound; the integer bound is floored *)
  let open L.Infix in
  let p =
    lp_max (v "x")
      [ P.le (2 * v "x") (int 7); P.le (v "x") (int 9) ]
  in
  let r = reduced (Pre.run p) in
  (* x <= 7/2 floors to x <= 3 and the weaker x <= 9 is gone *)
  check_int "one bound row" 1 (P.num_constraints r.Pre.problem);
  Alcotest.check rat_testable "solved directly" (Rat.of_int 3)
    (ilp_value p ~presolve:true);
  Alcotest.check rat_testable "baseline agrees" (Rat.of_int 3)
    (ilp_value p ~presolve:false)

let test_forcing_row () =
  (* a zero loop bound: x + y <= 0 pins both counts to zero *)
  let open L.Infix in
  let p =
    lp_max
      ((5 * v "x") + (7 * v "y") + v "z")
      [ P.le (v "x" + v "y") (int 0); P.le (v "z") (int 2) ]
  in
  let r = reduced (Pre.run p) in
  check_bool "x and y eliminated" true (P.num_variables r.Pre.problem <= 1);
  Alcotest.check rat_testable "value" (Rat.of_int 2) (ilp_value p ~presolve:true);
  let full =
    match I.solve p with
    | I.Optimal { assignment; _ } -> assignment
    | _ -> Alcotest.fail "expected optimal"
  in
  let env = Ipet_lp.Simplex.assignment_env full in
  Alcotest.check rat_testable "x forced to 0" Rat.zero (env "x");
  Alcotest.check rat_testable "y forced to 0" Rat.zero (env "y")

let test_infeasible_bounds () =
  let open L.Infix in
  let p = lp_max (v "x") [ P.ge (v "x") (int 5); P.le (v "x") (int 3) ] in
  (match Pre.run p with
   | Pre.Proved_infeasible _ -> ()
   | Pre.Reduced _ -> Alcotest.fail "expected infeasibility proof");
  check_bool "Ilp agrees" true
    (match I.solve p with I.Infeasible _ -> true | _ -> false)

let test_infeasible_integer_fix () =
  (* 3 <= 2x <= 3 fixes x = 3/2: integer-infeasible, LP-feasible *)
  let open L.Infix in
  let p =
    lp_max (v "x") [ P.ge (2 * v "x") (int 3); P.le (2 * v "x") (int 3) ]
  in
  (match Pre.run p with
   | Pre.Proved_infeasible _ -> ()
   | Pre.Reduced _ -> Alcotest.fail "expected integer infeasibility");
  (match Pre.run ~integer:false p with
   | Pre.Reduced _ -> ()
   | Pre.Proved_infeasible _ -> Alcotest.fail "LP relaxation is feasible")

let test_infeasible_propagated () =
  (* x >= 4 conflicts with x <= 2y, y <= 1 only through propagation *)
  let open L.Infix in
  let p =
    lp_max (v "x")
      [ P.ge (v "x") (int 4);
        P.le (v "x" - (2 * v "y")) (int 0);
        P.le (v "y") (int 1) ]
  in
  (match Pre.run p with
   | Pre.Proved_infeasible _ -> ()
   | Pre.Reduced _ -> Alcotest.fail "expected infeasibility proof")

(* --- equivalence on the benchmark suite --------------------------------- *)

(* Every ILP of every benchmark (both extremes, every surviving conjunctive
   set) must have the same optimum with and without presolve, and the
   postsolved witness must be feasible for the original problem. *)
let test_suite_problem_equivalence () =
  let total = ref 0 in
  let reductions = ref [] in
  List.iter
    (fun (bench : Bspec.t) ->
      let spec = Bspec.spec bench in
      let problems = Analysis.wcet_problems spec @ Analysis.bcet_problems spec in
      List.iter
        (fun p ->
          incr total;
          let plain = I.solve ~presolve:false p in
          let pre = I.solve ~presolve:true p in
          (match (plain, pre) with
           | ( I.Optimal { value = v1; stats = s1; _ },
               I.Optimal { value = v2; assignment = a2; stats = s2 } ) ->
             if not (Rat.equal v1 v2) then
               Alcotest.failf "%s: value %s with presolve, %s without"
                 bench.Bspec.name (Rat.to_string v2) (Rat.to_string v1);
             check_bool
               (bench.Bspec.name ^ ": first LP integrality preserved")
               s1.I.first_lp_integral s2.I.first_lp_integral;
             let env = Ipet_lp.Simplex.assignment_env a2 in
             if not (P.feasible env p) then
               Alcotest.failf "%s: postsolved witness violates the original"
                 bench.Bspec.name;
             (match s2.I.presolve with
              | Some ps ->
                reductions :=
                  (ps.Pre.vars_before, ps.Pre.vars_after) :: !reductions
              | None -> Alcotest.fail "presolve stats missing")
           | I.Infeasible _, I.Infeasible _ -> ()
           | _ ->
             Alcotest.failf "%s: presolve changed the outcome kind"
               bench.Bspec.name))
        problems)
    Ipet_suite.Suite.all;
  check_bool "solved a meaningful number of ILPs" true (!total >= 13);
  (* the paper's flow systems are dominated by eliminable equalities: the
     median reduction must remove at least half the variables *)
  let ratios =
    List.map
      (fun (before, after) ->
        if before = 0 then 0.0
        else float_of_int (before - after) /. float_of_int before)
      !reductions
    |> List.sort compare
  in
  let median = List.nth ratios (List.length ratios / 2) in
  check_bool
    (Printf.sprintf "median variable reduction %.0f%% >= 50%%"
       (100.0 *. median))
    true (median >= 0.5)

(* The end-to-end guarantee: cycles, witness counts and solver observations
   are identical with and without presolve. *)
let test_suite_analysis_equivalence () =
  List.iter
    (fun (bench : Bspec.t) ->
      let spec = Bspec.spec bench in
      let with_pre = Analysis.analyze { spec with Analysis.presolve = true } in
      let without = Analysis.analyze { spec with Analysis.presolve = false } in
      let check_extreme what (a : Analysis.extreme) (b : Analysis.extreme) =
        check_int
          (Printf.sprintf "%s %s cycles" bench.Bspec.name what)
          b.Analysis.cycles a.Analysis.cycles;
        check_bool
          (Printf.sprintf "%s %s witness counts" bench.Bspec.name what)
          true (a.Analysis.counts = b.Analysis.counts)
      in
      check_extreme "WCET" with_pre.Analysis.wcet without.Analysis.wcet;
      check_extreme "BCET" with_pre.Analysis.bcet without.Analysis.bcet;
      check_bool
        (bench.Bspec.name ^ " first-LP integrality")
        (without.Analysis.wcet_stats.Analysis.all_first_lp_integral
         && without.Analysis.bcet_stats.Analysis.all_first_lp_integral)
        (with_pre.Analysis.wcet_stats.Analysis.all_first_lp_integral
         && with_pre.Analysis.bcet_stats.Analysis.all_first_lp_integral))
    Ipet_suite.Suite.all

let suite =
  [ ("substitution chain", `Quick, test_substitution_chain);
    ("substitution keeps x >= 0", `Quick, test_substitution_keeps_nonnegativity);
    ("substitution skips fractional defs", `Quick,
     test_substitution_skips_fractional_defs);
    ("bound tightening", `Quick, test_bound_tightening);
    ("forcing row", `Quick, test_forcing_row);
    ("infeasible bounds", `Quick, test_infeasible_bounds);
    ("integer-infeasible fix", `Quick, test_infeasible_integer_fix);
    ("propagated infeasibility", `Quick, test_infeasible_propagated);
    ("suite ILP equivalence", `Slow, test_suite_problem_equivalence);
    ("suite analysis equivalence", `Slow, test_suite_analysis_equivalence) ]
