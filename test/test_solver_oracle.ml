(* Differential oracle for the exact solvers.

   Random small problems are solved twice: once by the production code
   ({!Ipet_lp.Simplex}, {!Ipet_lp.Ilp}) and once by a brute-force method
   whose correctness is self-evident — exact-rational vertex enumeration
   for LPs, exhaustive integer-box enumeration for ILPs. Every generated
   problem carries a box constraint [Σ xᵢ <= M], so the feasible region is
   bounded (and, lying in the non-negative orthant, pointed): a non-empty
   region always has a vertex and Unbounded is impossible, which is what
   makes the naive oracles complete. *)

module L = Ipet_lp.Linexpr
module P = Ipet_lp.Lp_problem
module S = Ipet_lp.Simplex
module I = Ipet_lp.Ilp
module Rat = Ipet_num.Rat

(* --- random problem generation ----------------------------------------- *)

type shape = {
  problem : P.t;
  gvars : string list;  (** in generation order, length 2 or 3 *)
  box : int;  (** every variable is within [0..box] at any feasible point *)
}

let gen_problem rng =
  let n = 2 + Random.State.int rng 2 in
  let gvars = List.init n (fun i -> Printf.sprintf "x%d" (i + 1)) in
  let coeff () = Random.State.int rng 7 - 3 in
  let lin const =
    List.fold_left
      (fun acc v -> L.add acc (L.var ~coeff:(Rat.of_int (coeff ())) v))
      (L.of_int const) gvars
  in
  let rel () =
    match Random.State.int rng 10 with
    | 0 -> P.Eq
    | k when k < 5 -> P.Le
    | _ -> P.Ge
  in
  let n_cons = 2 + Random.State.int rng 3 in
  let random_cons =
    List.init n_cons (fun _ ->
        P.constr (lin (Random.State.int rng 13 - 6)) (rel ()))
  in
  let box = 1 + Random.State.int rng 7 in
  let box_cons =
    P.le
      (List.fold_left (fun acc v -> L.add acc (L.var v)) L.zero gvars)
      (L.of_int box)
  in
  let objective = lin 0 in
  let direction =
    if Random.State.bool rng then P.Maximize else P.Minimize
  in
  { problem = P.make direction objective (box_cons :: random_cons); gvars; box }

(* --- exact Gaussian elimination ---------------------------------------- *)

(* Solve the square system [m * x = rhs]; [None] when singular. *)
let gauss_solve (m : Rat.t array array) (rhs : Rat.t array) =
  let n = Array.length rhs in
  let a = Array.init n (fun i -> Array.append (Array.copy m.(i)) [| rhs.(i) |]) in
  let singular = ref false in
  for col = 0 to n - 1 do
    if not !singular then begin
      let pivot = ref None in
      for i = n - 1 downto col do
        if not (Rat.is_zero a.(i).(col)) then pivot := Some i
      done;
      (match !pivot with
       | None -> singular := true
       | Some p ->
         let tmp = a.(col) in
         a.(col) <- a.(p);
         a.(p) <- tmp;
         let inv = Rat.inv a.(col).(col) in
         for j = col to n do
           a.(col).(j) <- Rat.mul inv a.(col).(j)
         done;
         for i = 0 to n - 1 do
           if i <> col && not (Rat.is_zero a.(i).(col)) then begin
             let f = a.(i).(col) in
             for j = col to n do
               a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(col).(j))
             done
           end
         done)
    end
  done;
  if !singular then None else Some (Array.init n (fun i -> a.(i).(n)))

(* --- brute-force LP: vertex enumeration -------------------------------- *)

(* Candidate hyperplanes: each constraint taken at equality, plus each
   coordinate plane xᵢ = 0. Any vertex of the feasible region is the
   unique intersection of [n] of them. *)
let brute_force_lp { problem; gvars; _ } =
  let n = List.length gvars in
  let vars = Array.of_list gvars in
  let planes =
    (* (coefficient row, rhs) encoding Σ aᵢ xᵢ = rhs *)
    List.map
      (fun (c : P.constr) ->
        ( Array.map (fun v -> L.coeff c.P.expr v) vars,
          Rat.neg (L.constant c.P.expr) ))
      problem.P.constraints
    @ List.init n (fun i ->
          (Array.init n (fun j -> if i = j then Rat.one else Rat.zero), Rat.zero))
  in
  let planes = Array.of_list planes in
  let best = ref None in
  let consider point =
    let env x =
      let rec find i =
        if i >= n then Rat.zero
        else if vars.(i) = x then point.(i)
        else find (i + 1)
      in
      find 0
    in
    if P.feasible env problem then begin
      let value = L.eval env problem.P.objective in
      let better =
        match !best with
        | None -> true
        | Some (b, _) -> (
          match problem.P.direction with
          | P.Maximize -> Rat.compare value b > 0
          | P.Minimize -> Rat.compare value b < 0)
      in
      if better then best := Some (value, Array.copy point)
    end
  in
  (* all n-subsets of planes *)
  let rec choose start chosen =
    if List.length chosen = n then begin
      let rows = List.rev chosen in
      let m = Array.of_list (List.map (fun (row, _) -> row) rows) in
      let rhs = Array.of_list (List.map snd rows) in
      match gauss_solve m rhs with
      | Some point -> consider point
      | None -> ()
    end
    else
      for i = start to Array.length planes - 1 do
        choose (i + 1) (planes.(i) :: chosen)
      done
  in
  choose 0 [];
  !best

let prop_simplex_matches_vertex_enumeration =
  QCheck.Test.make ~name:"simplex agrees with exact vertex enumeration"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let shape = gen_problem rng in
      let brute = brute_force_lp shape in
      match (S.solve shape.problem, brute) with
      | S.Infeasible, None -> true
      | S.Infeasible, Some _ ->
        QCheck.Test.fail_report "simplex says infeasible, a vertex exists"
      | S.Optimal _, None ->
        QCheck.Test.fail_report "simplex says optimal, no feasible vertex"
      | S.Unbounded, _ ->
        QCheck.Test.fail_report "unbounded on a box-bounded problem"
      | S.Optimal { value; assignment }, Some (best, _) ->
        let env = S.assignment_env assignment in
        if not (P.feasible env shape.problem) then
          QCheck.Test.fail_report "simplex assignment infeasible"
        else if not (Rat.equal (L.eval env shape.problem.P.objective) value)
        then QCheck.Test.fail_report "assignment does not achieve the value"
        else if not (Rat.equal value best) then
          QCheck.Test.fail_report
            (Printf.sprintf "optimum mismatch: simplex %s, enumeration %s"
               (Rat.to_string value) (Rat.to_string best))
        else true)

(* --- brute-force ILP: integer-box enumeration --------------------------- *)

(* The box constraint gives xᵢ ∈ [0..M] at any feasible point, so the
   integer optimum is found by trying every point of the box. *)
let brute_force_ilp { problem; gvars; box } =
  let vars = Array.of_list gvars in
  let n = Array.length vars in
  let point = Array.make n Rat.zero in
  let best = ref None in
  let env x =
    let rec find i =
      if i >= n then Rat.zero
      else if vars.(i) = x then point.(i)
      else find (i + 1)
    in
    find 0
  in
  let rec enumerate i =
    if i = n then begin
      if P.feasible env problem then begin
        let value = L.eval env problem.P.objective in
        let better =
          match !best with
          | None -> true
          | Some b -> (
            match problem.P.direction with
            | P.Maximize -> Rat.compare value b > 0
            | P.Minimize -> Rat.compare value b < 0)
        in
        if better then best := Some value
      end
    end
    else
      for k = 0 to box do
        point.(i) <- Rat.of_int k;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  !best

let check_ilp_against_enumeration ~presolve shape brute =
  match (I.solve ~presolve shape.problem, brute) with
  | I.Infeasible _, None -> true
  | I.Infeasible _, Some _ ->
    QCheck.Test.fail_report "ILP says infeasible, an integer point exists"
  | I.Optimal _, None ->
    QCheck.Test.fail_report "ILP says optimal, no feasible integer point"
  | I.Unbounded _, _ ->
    QCheck.Test.fail_report "ILP unbounded on a box-bounded problem"
  | I.Optimal { value; assignment; _ }, Some best ->
    let env = S.assignment_env assignment in
    if not (List.for_all (fun (_, q) -> Rat.is_integer q) assignment) then
      QCheck.Test.fail_report "ILP assignment not integral"
    else if not (P.feasible env shape.problem) then
      QCheck.Test.fail_report "ILP assignment infeasible"
    else if not (Rat.equal (L.eval env shape.problem.P.objective) value) then
      QCheck.Test.fail_report "ILP assignment does not achieve the value"
    else if not (Rat.equal value best) then
      QCheck.Test.fail_report
        (Printf.sprintf "ILP optimum mismatch: solver %s, enumeration %s"
           (Rat.to_string value) (Rat.to_string best))
    else true

let prop_ilp_matches_box_enumeration =
  QCheck.Test.make ~name:"branch-and-bound agrees with integer enumeration"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0x11e9 |] in
      let shape = gen_problem rng in
      let brute = brute_force_ilp shape in
      check_ilp_against_enumeration ~presolve:true shape brute
      && check_ilp_against_enumeration ~presolve:false shape brute)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplex_matches_vertex_enumeration; prop_ilp_matches_box_enumeration ]
